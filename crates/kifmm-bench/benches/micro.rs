//! Criterion micro-benchmarks for the performance-critical primitives:
//! kernel P2P inner loops (the DownU microkernel), the M2L machinery
//! (FFT transforms and Hadamard accumulation vs dense GEMV), the
//! check-to-equivalent solves, and tree construction.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use kifmm::core::{num_surface_points, surface_points, RAD_INNER, RAD_OUTER};
use kifmm::kernels::assemble;
use kifmm::{Fmm, FmmOptions, Kernel, Laplace, ModifiedLaplace, Stokes};

fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("p2p");
    let targets = kifmm::geom::uniform_cube(512, 1);
    let sources = kifmm::geom::uniform_cube(512, 2);
    g.throughput(Throughput::Elements((512 * 512) as u64));
    macro_rules! bench_kernel {
        ($name:literal, $k:expr, $dim:expr) => {
            let dens = kifmm::geom::random_densities(512, $dim, 3);
            let mut out = vec![0.0; 512 * $dim];
            g.bench_function($name, |b| {
                b.iter(|| {
                    out.fill(0.0);
                    $k.p2p(&targets, &sources, &dens, &mut out);
                    std::hint::black_box(&out);
                })
            });
        };
    }
    bench_kernel!("laplace_512x512", Laplace, 1);
    bench_kernel!("mod_laplace_512x512", ModifiedLaplace::new(1.0), 1);
    bench_kernel!("stokes_512x512", Stokes::new(1.0), 3);
    g.finish();
}

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft");
    for m in [8usize, 12, 16] {
        let plan = kifmm::fft::Fft3::new([m, m, m]);
        let mut data: Vec<kifmm::fft::C64> = (0..m * m * m)
            .map(|i| kifmm::fft::C64::new((i as f64).sin(), 0.0))
            .collect();
        g.bench_function(format!("fft3_{m}cubed"), |b| {
            b.iter(|| {
                plan.forward(&mut data);
                plan.inverse(&mut data);
            })
        });
    }
    // The M2L Hadamard accumulation (DownV inner loop).
    let gsz = 12 * 12 * 12;
    let a: Vec<kifmm::fft::C64> =
        (0..gsz).map(|i| kifmm::fft::C64::new(i as f64, -(i as f64))).collect();
    let bv = a.clone();
    let mut acc = vec![kifmm::fft::C64::ZERO; gsz];
    g.bench_function("hadamard_accumulate_1728", |b| {
        b.iter(|| {
            kifmm::fft::pointwise_mul_add(&mut acc, &a, &bv);
            std::hint::black_box(&acc);
        })
    });
    g.finish();
}

fn bench_linalg(c: &mut Criterion) {
    let mut g = c.benchmark_group("linalg");
    g.sample_size(10);
    // The check-system pseudoinverse (p = 6 Laplace: 152×152).
    let p = 6;
    let uc = surface_points(p, RAD_OUTER, [0.0; 3], 0.5);
    let ue = surface_points(p, RAD_INNER, [0.0; 3], 0.5);
    let k = assemble(&Laplace, &uc, &ue);
    g.bench_function("pinv_152x152", |b| {
        b.iter(|| std::hint::black_box(kifmm::linalg::pinv(&k)))
    });
    // The translation GEMV (M2M/L2L inner op).
    let ns = num_surface_points(p);
    let x: Vec<f64> = (0..ns).map(|i| (i as f64).sin()).collect();
    let mut y = vec![0.0; ns];
    g.bench_function("gemv_152", |b| {
        b.iter(|| {
            kifmm::linalg::gemv(1.0, &k, &x, 0.0, &mut y);
            std::hint::black_box(&y);
        })
    });
    g.finish();
}

fn bench_tree(c: &mut Criterion) {
    let mut g = c.benchmark_group("tree");
    g.sample_size(10);
    let pts = kifmm::geom::sphere_grid(100_000, 8);
    g.bench_function("octree_build_100k_s60", |b| {
        b.iter(|| std::hint::black_box(kifmm::tree::Octree::build(&pts, 60, 19)))
    });
    let tree = kifmm::tree::Octree::build(&pts, 60, 19);
    g.bench_function("interaction_lists_100k", |b| {
        b.iter(|| std::hint::black_box(kifmm::tree::build_lists(&tree)))
    });
    g.finish();
}

fn bench_fmm(c: &mut Criterion) {
    let mut g = c.benchmark_group("fmm");
    g.sample_size(10);
    let pts = kifmm::geom::sphere_grid(10_000, 8);
    let dens = kifmm::geom::random_densities(10_000, 1, 1);
    let fmm = Fmm::new(Laplace, &pts, FmmOptions::default());
    g.bench_function("evaluate_laplace_10k_p6", |b| {
        b.iter(|| std::hint::black_box(fmm.evaluate(&dens)))
    });
    let fmm4 = Fmm::new(
        Laplace,
        &pts,
        FmmOptions { order: 4, ..Default::default() },
    );
    g.bench_function("evaluate_laplace_10k_p4", |b| {
        b.iter(|| std::hint::black_box(fmm4.evaluate(&dens)))
    });
    g.finish();
}

criterion_group!(benches, bench_kernels, bench_fft, bench_linalg, bench_tree, bench_fmm);
criterion_main!(benches);
