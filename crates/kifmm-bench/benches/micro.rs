//! Hand-rolled micro-benchmarks (no external harness) for the
//! performance-critical primitives: kernel P2P inner loops (the DownU
//! microkernel), the M2L machinery (FFT transforms and Hadamard
//! accumulation vs dense GEMV), the check-to-equivalent solves, and tree
//! construction.
//!
//! Each benchmark is timed with a warmup pass followed by adaptively many
//! iterations (targeting ~0.3 s of measurement); median, min, and mean
//! per-iteration times are printed. Run with
//! `cargo bench -p kifmm-bench` — or filter by substring:
//! `cargo bench -p kifmm-bench -- fft`.

use kifmm::core::{num_surface_points, surface_points, RAD_INNER, RAD_OUTER};
use kifmm::kernels::assemble;
use kifmm::{Fmm, FmmOptions, Kernel, Laplace, ModifiedLaplace, Stokes};
use std::time::{Duration, Instant};

/// Time `f` and print one result row. Returns the per-iteration median in
/// seconds (`None` when filtered out) so callers can derive throughput or
/// emit artifacts.
fn bench(filter: &str, name: &str, mut f: impl FnMut()) -> Option<f64> {
    if !name.contains(filter) {
        return None;
    }
    // Warmup: run until ~50 ms has elapsed (at least once).
    let warm_start = Instant::now();
    let mut warm_iters = 0u32;
    while warm_iters == 0 || warm_start.elapsed() < Duration::from_millis(50) {
        f();
        warm_iters += 1;
    }
    let per_iter = warm_start.elapsed() / warm_iters;
    // Measure: enough iterations for ~0.3 s, in [5, 1000] samples.
    let iters = (Duration::from_millis(300).as_nanos() / per_iter.as_nanos().max(1))
        .clamp(5, 1000) as usize;
    let mut samples: Vec<Duration> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        f();
        samples.push(t.elapsed());
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{name:<34} median {:>12} | min {:>12} | mean {:>12} | {iters} iters",
        fmt(median),
        fmt(min),
        fmt(mean)
    );
    Some(median.as_secs_f64())
}

fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn bench_kernels(filter: &str) {
    let targets = kifmm::geom::uniform_cube(512, 1);
    let sources = kifmm::geom::uniform_cube(512, 2);
    macro_rules! bench_kernel {
        ($name:literal, $k:expr, $dim:expr) => {
            let dens = kifmm::geom::random_densities(512, $dim, 3);
            let mut out = vec![0.0; 512 * $dim];
            bench(filter, $name, || {
                out.fill(0.0);
                $k.p2p(&targets, &sources, &dens, &mut out);
                std::hint::black_box(&out);
            });
        };
    }
    bench_kernel!("p2p/laplace_512x512", Laplace, 1);
    bench_kernel!("p2p/mod_laplace_512x512", ModifiedLaplace::new(1.0), 1);
    bench_kernel!("p2p/stokes_512x512", Stokes::new(1.0), 3);
}

fn bench_fft(filter: &str) {
    for m in [8usize, 12, 16] {
        let plan = kifmm::fft::Fft3::new([m, m, m]);
        let mut data: Vec<kifmm::fft::C64> =
            (0..m * m * m).map(|i| kifmm::fft::C64::new((i as f64).sin(), 0.0)).collect();
        bench(filter, &format!("fft/fft3_{m}cubed"), || {
            plan.forward(&mut data);
            plan.inverse(&mut data);
        });
    }
    // The M2L Hadamard accumulation (DownV inner loop).
    let gsz = 12 * 12 * 12;
    let a: Vec<kifmm::fft::C64> =
        (0..gsz).map(|i| kifmm::fft::C64::new(i as f64, -(i as f64))).collect();
    let bv = a.clone();
    let mut acc = vec![kifmm::fft::C64::ZERO; gsz];
    bench(filter, "fft/hadamard_accumulate_1728", || {
        kifmm::fft::pointwise_mul_add(&mut acc, &a, &bv);
        std::hint::black_box(&acc);
    });
}

fn bench_linalg(filter: &str) {
    // The check-system pseudoinverse (p = 6 Laplace: 152×152).
    let p = 6;
    let uc = surface_points(p, RAD_OUTER, [0.0; 3], 0.5);
    let ue = surface_points(p, RAD_INNER, [0.0; 3], 0.5);
    let k = assemble(&Laplace, &uc, &ue);
    bench(filter, "linalg/pinv_152x152", || {
        std::hint::black_box(kifmm::linalg::pinv(&k));
    });
    // The translation GEMV (M2M/L2L inner op).
    let ns = num_surface_points(p);
    let x: Vec<f64> = (0..ns).map(|i| (i as f64).sin()).collect();
    let mut y = vec![0.0; ns];
    bench(filter, "linalg/gemv_152", || {
        kifmm::linalg::gemv(1.0, &k, &x, 0.0, &mut y);
        std::hint::black_box(&y);
    });
}

fn bench_tree(filter: &str) {
    let pts = kifmm::geom::sphere_grid(100_000, 8);
    bench(filter, "tree/octree_build_100k_s60", || {
        std::hint::black_box(kifmm::tree::Octree::build(&pts, 60, 19));
    });
    let tree = kifmm::tree::Octree::build(&pts, 60, 19);
    bench(filter, "tree/interaction_lists_100k", || {
        std::hint::black_box(kifmm::tree::build_lists(&tree));
    });
}

fn bench_fmm(filter: &str) {
    let pts = kifmm::geom::sphere_grid(10_000, 8);
    let dens = kifmm::geom::random_densities(10_000, 1, 1);
    let fmm = Fmm::new(Laplace, &pts, FmmOptions::default());
    bench(filter, "fmm/evaluate_laplace_10k_p6", || {
        std::hint::black_box(fmm.eval(&dens).potentials);
    });
    let fmm4 = Fmm::new(Laplace, &pts, FmmOptions { order: 4, ..Default::default() });
    bench(filter, "fmm/evaluate_laplace_10k_p4", || {
        std::hint::black_box(fmm4.eval(&dens).potentials);
    });
}

/// The pass-engine batching ablation: the engine runs M2L spectra and the
/// M2M/L2L GEMVs as per-level batched operations over the flat
/// `ExpansionStore` slabs; these benches time the same math done the
/// pre-refactor way (per-node `gemv` + per-node spectrum cache) on the
/// identical tree/operators, and emit `BENCH_engine_batching.json` when
/// `KIFMM_BENCH_DIR` is set. Filter: `cargo bench -p kifmm-bench -- engine`.
fn bench_engine(filter: &str) {
    use kifmm::core::{EngineWorkspace, LocalSources, SourceProvider, FIRST_FMM_LEVEL};
    use kifmm::fft::C64;
    use kifmm::runtime::Dispatch;
    use std::collections::HashMap;

    let n = 8000;
    let pts = kifmm::geom::uniform_cube(n, 5);
    let dens = vec![1.0; n];
    let order = 6;
    let fmm = Fmm::new(
        Laplace,
        &pts,
        FmmOptions { order, max_pts_per_leaf: 60, ..Default::default() },
    );
    let tree = &fmm.tree;
    let depth = tree.depth();
    assert!(depth >= FIRST_FMM_LEVEL, "bench tree must reach FMM levels");
    let engine = fmm.engine(Dispatch::Serial);
    let dens_refs: [&[f64]; 1] = [&dens];
    let src = LocalSources { tree, points: fmm.morton_points(), dens: &dens_refs, src_dim: 1 };
    let mut store = engine.new_store();
    let mut ws = EngineWorkspace::default();
    engine.upward(&src, &mut store, &mut ws);

    // --- Upward translation (S2M + M2M + inversion): batched GEMMs vs the
    // --- pre-refactor per-node gemv chain.
    let translate_batched = bench(filter, "engine/translate_batched", || {
        std::hint::black_box(engine.upward(&src, &mut store, &mut ws));
    });
    let ops = &fmm.precomputed().ops;
    let ns = kifmm::core::num_surface_points(order);
    let (es, cs) = (ns, ns); // Laplace: SRC_DIM = TRG_DIM = 1
    let mut up_pn = vec![0.0; tree.num_nodes() * es];
    let mut chk = vec![0.0; cs];
    let translate_per_node = bench(filter, "engine/translate_per_node", || {
        for level in (FIRST_FMM_LEVEL..=depth).rev() {
            let lops = ops.at(level);
            for &ni in &tree.levels[level as usize] {
                let node = &tree.nodes[ni as usize];
                chk.fill(0.0);
                if node.is_leaf() {
                    let (p, d) = src.sources(ni, 0);
                    let c = tree.domain.box_center(&node.key);
                    let uc = surface_points(order, RAD_OUTER, c, lops.box_half);
                    Laplace.p2p(&uc, p, d, &mut chk);
                } else {
                    for (oct, &ci) in node.children.iter().enumerate() {
                        if ci != kifmm::tree::NO_NODE {
                            let child = up_pn[ci as usize * es..(ci as usize + 1) * es].to_vec();
                            kifmm::linalg::gemv(1.0, &lops.ue2uc[oct], &child, 1.0, &mut chk);
                        }
                    }
                }
                let slot = &mut up_pn[ni as usize * es..(ni as usize + 1) * es];
                kifmm::linalg::gemv(1.0, &lops.uc2ue, &chk, 0.0, slot);
            }
        }
        std::hint::black_box(&up_pn);
    });

    // --- FFT M2L: one contiguous per-level spectra slab vs the per-node
    // --- HashMap spectrum cache the serial evaluator used before.
    let m2l_batched = bench(filter, "engine/m2l_batched", || {
        let mut f = 0u64;
        for level in FIRST_FMM_LEVEL..=depth {
            f += engine.m2l_level(level, &mut store, &mut ws);
        }
        std::hint::black_box(f);
    });
    let fft = fmm.precomputed().m2l_fft.as_ref().expect("FFT mode");
    let g = fft.grid_len();
    let mut grid = vec![C64::ZERO; g];
    let mut slot = vec![0.0; cs];
    let m2l_per_node = bench(filter, "engine/m2l_per_node", || {
        for level in FIRST_FMM_LEVEL..=depth {
            let mut spectra: HashMap<u32, Vec<C64>> = HashMap::new();
            for &ni in &tree.levels[level as usize] {
                let vlist = &fmm.lists.v[ni as usize];
                if vlist.is_empty() {
                    continue;
                }
                grid.fill(C64::ZERO);
                let bkey = tree.nodes[ni as usize].key;
                for &a in vlist {
                    let spec = spectra.entry(a).or_insert_with(|| {
                        let mut s = vec![C64::ZERO; g];
                        let ue = &up_pn[a as usize * es..(a as usize + 1) * es];
                        fft.transform_source(ue, &mut s);
                        s
                    });
                    let dir = bkey.offset_to(&tree.nodes[a as usize].key);
                    fft.accumulate(level, dir, spec, &mut grid);
                }
                slot.fill(0.0);
                fft.extract_check(level, &mut grid, &mut slot);
                std::hint::black_box(&slot);
            }
        }
    });

    if let (Some(bat), Some(pn)) = (m2l_batched, m2l_per_node) {
        println!("engine/m2l speedup                 {:>8.3} x (per-node / batched)", pn / bat);
    }
    if let (Some(bat), Some(pn)) = (translate_batched, translate_per_node) {
        println!(
            "engine/translate speedup           {:>8.3} x (per-node / batched)",
            pn / bat
        );
    }
    if let Ok(dir) = std::env::var("KIFMM_BENCH_DIR") {
        if let (Some(mb), Some(mp), Some(tb), Some(tp)) =
            (m2l_batched, m2l_per_node, translate_batched, translate_per_node)
        {
            let json = format!(
                "{{\n  \"schema\": \"kifmm-engine-batching-v1\",\n  \"n_points\": {n},\n  \"order\": {order},\n  \"tree_depth\": {depth},\n  \"m2l_batched_median_s\": {mb:.9},\n  \"m2l_per_node_median_s\": {mp:.9},\n  \"m2l_speedup\": {:.4},\n  \"translate_batched_median_s\": {tb:.9},\n  \"translate_per_node_median_s\": {tp:.9},\n  \"translate_speedup\": {:.4},\n  \"batched_no_slower\": {}\n}}\n",
                mp / mb,
                tp / tb,
                mb <= mp,
            );
            let path = std::path::Path::new(&dir).join("BENCH_engine_batching.json");
            std::fs::create_dir_all(&dir).expect("create bench dir");
            std::fs::write(&path, json).expect("write bench artifact");
            println!("wrote {}", path.display());
        }
    }
}

/// Median wall seconds of one full evaluation (1 warmup + 9 samples).
fn median_eval(fmm: &Fmm<Laplace>, dens: &[f64]) -> f64 {
    std::hint::black_box(fmm.eval(dens).potentials);
    let mut s: Vec<f64> = (0..9)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(fmm.eval(dens).potentials);
            t.elapsed().as_secs_f64()
        })
        .collect();
    s.sort_by(f64::total_cmp);
    s[s.len() / 2]
}

fn bench_trace(filter: &str) {
    use kifmm::trace::{RankTracer, Tracer};
    let rt = RankTracer::disabled();
    bench(filter, "trace/disabled_span+counter_x1k", || {
        for i in 0..1000u64 {
            let _s = rt.span("Up", "bench");
            rt.add(kifmm::Counter::Flops, i);
        }
    });
    if !"trace/zero_cost_when_disabled".contains(filter) {
        return;
    }
    // Zero-cost-when-disabled assertion #1: a disabled span + counter pair
    // must be branch-cheap — no lock, no allocation, no clock read.
    let reps = 1_000_000u64;
    let t = Instant::now();
    for i in 0..reps {
        let _s = rt.span("Up", "assert");
        rt.add(kifmm::Counter::Flops, i);
        std::hint::black_box(&rt);
    }
    let per_op = t.elapsed().as_secs_f64() / reps as f64;
    println!("trace/disabled_per_op              {:>8.2} ns per span+add", per_op * 1e9);
    assert!(
        per_op < 50e-9,
        "disabled tracing must be branch-cheap, measured {:.1} ns/op",
        per_op * 1e9
    );
    // Assertion #2: even *enabled* coarse per-phase tracing stays in the
    // noise of a real evaluation, so the disabled path certainly does.
    let pts = kifmm::geom::sphere_grid(5_000, 8);
    let dens = kifmm::geom::random_densities(5_000, 1, 1);
    let base = Fmm::builder(Laplace).points(&pts).order(4).build();
    let traced =
        Fmm::builder(Laplace).points(&pts).order(4).trace(Tracer::enabled()).build();
    let ratio = median_eval(&traced, &dens) / median_eval(&base, &dens);
    println!("trace/eval_overhead                {ratio:>8.3} x (enabled / disabled)");
    // Wall-clock medians on a shared host are noisy; the bound only has
    // to catch a per-cell cost creeping into the hot loops (which would
    // show up as 2x+), not certify the ~1.00 typical reading.
    assert!(ratio < 1.25, "tracing overhead out of bounds: {ratio:.3}x");
}

fn main() {
    // `cargo bench -- <substr>` filters; `--bench`/`--exact` style flags
    // from the libtest protocol are ignored.
    let filter = std::env::args().skip(1).find(|a| !a.starts_with('-')).unwrap_or_default();
    bench_kernels(&filter);
    bench_fft(&filter);
    bench_linalg(&filter);
    bench_tree(&filter);
    bench_fmm(&filter);
    bench_engine(&filter);
    bench_trace(&filter);
}
