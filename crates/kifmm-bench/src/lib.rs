//! Reproduction harness for the evaluation section (§4) of the SC'03
//! paper: one binary per table/figure, built on a shared runner.
//!
//! # Virtual timing model
//!
//! The paper measured wall-clock on 3000 dedicated Alpha EV-68 CPUs and a
//! Quadrics interconnect. This reproduction runs its MPI ranks as threads
//! on one host, so it reports a *virtual* parallel time composed from two
//! honestly measured ingredients:
//!
//! * **computation** — per-rank, per-phase **thread CPU time** (valid
//!   under core oversubscription) over exactly the same work distribution
//!   a real cluster would execute;
//! * **communication** — the per-rank traffic (bytes, messages) actually
//!   sent through the message-passing substrate, priced by a
//!   latency/bandwidth model of the paper's interconnect
//!   ([`CommModel`]: 5 µs/message, 500 MB/s — the Quadrics figures from
//!   §4).
//!
//! `T(P) = avg_ranks(compute + comm_model)`, `Ratio = max/min` across
//! ranks — the same definitions as the paper's Table 4.1 caption. Flop
//! rates use *exact counted* flops (every kernel evaluation, GEMV, FFT and
//! Hadamard product is charged), so "Gflop/s" columns are counted-flops
//! per virtual second. Absolute numbers reflect this host, not a 2003
//! Alphaserver; the *shapes* (who wins, where efficiency decays, phase
//! mix) are the reproduction targets. See DESIGN.md §1 and EXPERIMENTS.md.

use kifmm::core::PrecomputeCache;
use kifmm::parallel::ParallelFmm;
use kifmm::tree::partition_points;
use kifmm::{FmmOptions, Kernel, Phase, PhaseStats, Point3};
use std::sync::Arc;

/// Latency/bandwidth communication model (defaults: the paper's Quadrics
/// interconnect — >500 MB/s per node, ~5 µs MPI latency).
#[derive(Clone, Copy, Debug)]
pub struct CommModel {
    /// Seconds per message.
    pub latency: f64,
    /// Bytes per second.
    pub bandwidth: f64,
}

impl Default for CommModel {
    fn default() -> Self {
        CommModel { latency: 5e-6, bandwidth: 500e6 }
    }
}

impl CommModel {
    /// Virtual seconds to move `bytes` in `msgs` messages.
    pub fn time(&self, bytes: u64, msgs: u64) -> f64 {
        msgs as f64 * self.latency + bytes as f64 / self.bandwidth
    }
}

/// Everything measured on one rank during a run.
#[derive(Clone, Debug)]
pub struct RankMetrics {
    /// Per-phase CPU seconds and counted flops (averaged over iterations).
    pub phases: PhaseStats,
    /// Bytes sent during the measured evaluations (per iteration).
    pub eval_bytes: u64,
    /// Messages sent during the measured evaluations (per iteration).
    pub eval_msgs: u64,
    /// Wall seconds in tree construction/lists/ownership/ghost exchange.
    pub setup_seconds: f64,
    /// Bytes sent during setup.
    pub setup_bytes: u64,
    /// Messages sent during setup.
    pub setup_msgs: u64,
    /// Points this rank owns.
    pub local_points: usize,
    /// Octree depth of the (globally agreed) tree.
    pub tree_depth: usize,
}

impl RankMetrics {
    /// CPU seconds of computation (everything except the Comm phase).
    pub fn compute_seconds(&self) -> f64 {
        self.phases.total_seconds() - self.phases.seconds[Phase::Comm as usize]
    }
}

/// Run one distributed interaction calculation over `ranks` virtual ranks
/// and collect per-rank metrics. The evaluation is repeated `iterations`
/// times and averaged (the paper averages "over several iterations").
pub fn run_distributed<K: Kernel>(
    kernel: K,
    all_points: &[Point3],
    ranks: usize,
    opts: FmmOptions,
    iterations: usize,
) -> Vec<RankMetrics> {
    assert!(iterations >= 1);
    let part = partition_points(all_points, ranks);
    let chunks: Arc<Vec<Vec<Point3>>> = Arc::new(
        part.groups.iter().map(|g| g.iter().map(|&i| all_points[i]).collect()).collect(),
    );
    let cache = Arc::new(PrecomputeCache::<K>::new());
    kifmm::mpi::run(ranks, move |comm| {
        let r = comm.rank();
        let local = &chunks[r];
        let dens = kifmm::geom::random_densities(local.len(), kernel.src_dim(), r as u64 + 1);
        let pfmm = ParallelFmm::with_cache(comm, kernel.clone(), local, opts, &cache);
        let after_setup = comm.stats();
        let mut phases = PhaseStats::new();
        for _ in 0..iterations {
            let stats = pfmm.eval(comm, &dens).stats;
            phases.merge(&stats);
        }
        for s in phases.seconds.iter_mut() {
            *s /= iterations as f64;
        }
        for f in phases.flops.iter_mut() {
            *f /= iterations as u64;
        }
        let after_eval = comm.stats();
        RankMetrics {
            phases,
            eval_bytes: (after_eval.bytes_sent - after_setup.bytes_sent) / iterations as u64,
            eval_msgs: (after_eval.messages_sent - after_setup.messages_sent)
                / iterations as u64,
            setup_seconds: pfmm.setup_seconds,
            setup_bytes: after_setup.bytes_sent,
            setup_msgs: after_setup.messages_sent,
            local_points: local.len(),
            tree_depth: pfmm.dtree.tree.depth() as usize,
        }
    })
}

/// Opt-in artifact emission for the table/figure binaries: when
/// `KIFMM_BENCH_DIR` is set, merge the per-rank phase stats into one
/// `BENCH_<bench>.json` (`kifmm-bench-v1`) in that directory. The
/// document is built from the same `PhaseStats` the printed tables use,
/// so artifacts and tables cannot disagree.
pub fn write_bench_summary(
    bench: &str,
    n: usize,
    order: usize,
    metrics: &[RankMetrics],
) -> Option<std::path::PathBuf> {
    let dir = std::env::var("KIFMM_BENCH_DIR").ok()?;
    let mut merged = PhaseStats::new();
    for m in metrics {
        merged.merge(&m.phases);
    }
    let summary = kifmm::trace::BenchSummary {
        bench: bench.into(),
        n,
        order,
        ranks: metrics.len(),
        tree_depth: metrics.first().map_or(0, |m| m.tree_depth),
        phases: kifmm::PHASE_NAMES
            .iter()
            .enumerate()
            .map(|(i, name)| kifmm::trace::PhaseLine {
                name: (*name).into(),
                seconds: merged.seconds[i],
                flops: merged.flops[i],
                messages: merged.comm_messages[i],
                bytes: merged.comm_bytes[i],
            })
            .collect(),
        comm_bytes: metrics.iter().map(|m| m.eval_bytes).sum(),
        comm_messages: metrics.iter().map(|m| m.eval_msgs).sum(),
        extra: vec![],
    };
    match summary.write_to(&dir) {
        Ok(path) => Some(path),
        Err(e) => {
            eprintln!("BENCH write failed for {bench}: {e}");
            None
        }
    }
}

/// One row of a Table-4.1/4.2-style report.
#[derive(Clone, Debug)]
pub struct TableRow {
    /// Rank count.
    pub p: usize,
    /// Average virtual total seconds of the interaction calculation.
    pub total: f64,
    /// Max/min virtual total across ranks (load imbalance).
    pub ratio: f64,
    /// Average virtual communication seconds.
    pub comm: f64,
    /// Average upward-pass seconds.
    pub up: f64,
    /// Average downward seconds (DownU+V+W+X+Eval).
    pub down: f64,
    /// Aggregate counted Gflop / virtual second.
    pub avg_gflops: f64,
    /// Aggregate rate scaled by the fastest rank (the paper's Peak).
    pub peak_gflops: f64,
    /// Tree generation + its communication, virtual seconds.
    pub tree: f64,
    /// Total counted flops per iteration.
    pub total_flops: u64,
    /// Global particle count.
    pub n: usize,
}

/// Reduce per-rank metrics to a table row under a communication model.
pub fn summarize(metrics: &[RankMetrics], model: &CommModel) -> TableRow {
    let p = metrics.len();
    let totals: Vec<f64> = metrics
        .iter()
        .map(|m| m.compute_seconds() + model.time(m.eval_bytes, m.eval_msgs))
        .collect();
    let avg_total = totals.iter().sum::<f64>() / p as f64;
    let max_total = totals.iter().cloned().fold(0.0f64, f64::max);
    let min_total = totals.iter().cloned().fold(f64::INFINITY, f64::min).max(1e-12);
    let comm: f64 = metrics
        .iter()
        .map(|m| model.time(m.eval_bytes, m.eval_msgs))
        .sum::<f64>()
        / p as f64;
    let up: f64 =
        metrics.iter().map(|m| m.phases.seconds[Phase::Up as usize]).sum::<f64>() / p as f64;
    let down: f64 = metrics
        .iter()
        .map(|m| m.phases.down_seconds())
        .sum::<f64>()
        / p as f64;
    let total_flops: u64 = metrics.iter().map(|m| m.phases.total_flops()).sum();
    let avg_gflops = total_flops as f64 / avg_total.max(1e-12) / 1e9;
    let peak_gflops = total_flops as f64 / max_total.max(1e-12) / 1e9 * (max_total / min_total);
    let tree: f64 = metrics
        .iter()
        .map(|m| m.setup_seconds + model.time(m.setup_bytes, m.setup_msgs))
        .sum::<f64>()
        / p as f64;
    let n: usize = metrics.iter().map(|m| m.local_points).sum();
    TableRow {
        p,
        total: avg_total,
        ratio: max_total / min_total,
        comm,
        up,
        down,
        avg_gflops,
        peak_gflops,
        tree,
        total_flops,
        n,
    }
}

/// Print the standard header of Tables 4.1–4.3.
pub fn print_table_header(title: &str) {
    println!("\n{title}");
    println!(
        "{:>5} {:>9} {:>6} {:>8} {:>8} {:>9} {:>8} {:>8} {:>9}",
        "P", "Total", "Ratio", "Comm", "Up", "Down", "Avg", "Peak", "Gen/Comm"
    );
    println!(
        "{:>5} {:>9} {:>6} {:>8} {:>8} {:>9} {:>8} {:>8} {:>9}",
        "", "(s)", "", "(s)", "(s)", "(s)", "GF/s", "GF/s", "(s)"
    );
}

/// Print one row in the paper's format.
pub fn print_table_row(row: &TableRow) {
    println!(
        "{:>5} {:>9.3} {:>6.2} {:>8.4} {:>8.3} {:>9.3} {:>8.3} {:>8.3} {:>9.3}",
        row.p, row.total, row.ratio, row.comm, row.up, row.down, row.avg_gflops,
        row.peak_gflops, row.tree
    );
}

/// Aggregate per-phase CPU microseconds per particle (the paper's
/// "aggregate CPU cycles per particle", in time units instead of cycles —
/// multiply by the clock to get cycles).
pub fn phase_us_per_particle(metrics: &[RankMetrics], n: usize) -> [f64; 7] {
    let mut out = [0.0; 7];
    for m in metrics {
        for (i, s) in m.phases.seconds.iter().enumerate() {
            out[i] += s * 1e6 / n as f64;
        }
    }
    out
}

/// Environment-variable override helper for bench sizing.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Rank counts to sweep, capped by `KIFMM_MAXP` (default `max_default`).
pub fn rank_sweep(max_default: usize) -> Vec<usize> {
    let cap = env_usize("KIFMM_MAXP", max_default);
    [1usize, 2, 4, 8, 16, 32, 64, 128]
        .into_iter()
        .filter(|&p| p <= cap)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kifmm::Laplace;

    #[test]
    fn comm_model_pricing() {
        let m = CommModel::default();
        assert!((m.time(500_000_000, 0) - 1.0).abs() < 1e-12);
        assert!((m.time(0, 200_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn harness_runs_and_summarizes() {
        let pts = kifmm::geom::sphere_grid(3000, 4);
        let opts = FmmOptions { order: 4, max_pts_per_leaf: 40, ..Default::default() };
        let metrics = run_distributed(Laplace, &pts, 2, opts, 1);
        assert_eq!(metrics.len(), 2);
        let row = summarize(&metrics, &CommModel::default());
        assert_eq!(row.p, 2);
        assert_eq!(row.n, 3000);
        assert!(row.total > 0.0);
        assert!(row.ratio >= 1.0);
        assert!(row.total_flops > 0);
        // Two ranks must have exchanged something.
        assert!(metrics.iter().map(|m| m.eval_bytes).sum::<u64>() > 0);
    }

    #[test]
    fn rank_sweep_capped() {
        std::env::remove_var("KIFMM_MAXP");
        assert_eq!(rank_sweep(8), vec![1, 2, 4, 8]);
    }
}
