//! **Figure 4.3 — isogranular scalability, per-stage breakdown.**
//!
//! Paper: for the Table 4.2 runs, aggregate CPU cycles/particle per stage
//! and MFlop/s per processor. The signature shapes: cycles/particle stays
//! roughly flat (Laplace) or drifts down (Stokes on the 512-sphere set:
//! rising local non-uniformity sheds M2L work); flop-rate efficiency
//! stays high through the largest P.
//!
//! `cargo run --release -p kifmm-bench --bin figure_4_3`
//! (`KIFMM_GRAIN`, `KIFMM_MAXP` as in table_4_2).

use kifmm::{FmmOptions, Kernel, Laplace, Phase, Stokes};
use kifmm_bench::{
    env_usize, phase_us_per_particle, rank_sweep, run_distributed, summarize, CommModel,
};

fn series<K: Kernel>(
    name: &str,
    kernel: K,
    make_points: impl Fn(usize) -> Vec<[f64; 3]>,
    grain: usize,
    ranks: &[usize],
    iters: usize,
) {
    let opts = FmmOptions { order: 6, max_pts_per_leaf: 60, ..Default::default() };
    let model = CommModel::default();
    println!("\n=== {name} ===");
    println!(
        "{:>5} {:>9} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} | {:>9} {:>9} {:>7}",
        "P", "N", "Up", "Comm", "DownU", "DownV", "DownW", "DownX", "Eval", "MF/s avg",
        "MF/s min", "flopEff"
    );
    let mut f1 = None;
    for &p in ranks {
        let n = grain * p;
        let points = make_points(n);
        let metrics = run_distributed(kernel.clone(), &points, p, opts, iters);
        let row = summarize(&metrics, &model);
        let mut us = phase_us_per_particle(&metrics, n);
        us[Phase::Comm as usize] = row.comm * p as f64 * 1e6 / n as f64;
        let rates: Vec<f64> = metrics
            .iter()
            .map(|m| {
                let t = m.compute_seconds() + model.time(m.eval_bytes, m.eval_msgs);
                m.phases.total_flops() as f64 / t.max(1e-12) / 1e6
            })
            .collect();
        let avg = rates.iter().sum::<f64>() / p as f64;
        let min = rates.iter().cloned().fold(f64::INFINITY, f64::min);
        let f1v = *f1.get_or_insert(avg);
        println!(
            "{:>5} {:>9} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} | {:>9.1} {:>9.1} {:>7.2}",
            p, n, us[0], us[1], us[2], us[3], us[4], us[5], us[6], avg, min, avg / f1v
        );
    }
}

fn main() {
    let grain = env_usize("KIFMM_GRAIN", 2_500);
    let iters = env_usize("KIFMM_ITERS", 1);
    let ranks = rank_sweep(32);
    println!(
        "Figure 4.3 reproduction — isogranular per-stage breakdown, \
         {grain} particles/rank (aggregate CPU µs/particle per stage)"
    );
    series(
        "Laplace kernel, uniform particle distribution",
        Laplace,
        |n| kifmm::geom::sphere_grid(n, 8),
        grain,
        &ranks,
        iters,
    );
    series(
        "Stokes kernel, uniform particle distribution",
        Stokes::new(1.0),
        |n| kifmm::geom::sphere_grid(n, 8),
        grain,
        &ranks,
        iters,
    );
    series(
        "Stokes kernel, non uniform particle distribution",
        Stokes::new(1.0),
        |n| kifmm::geom::corner_clusters(n, 2003),
        grain,
        &ranks,
        iters,
    );
}
