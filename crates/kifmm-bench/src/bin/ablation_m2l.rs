//! **Ablation — FFT vs dense vs SVD-compressed M2L** (paper footnote 5).
//!
//! "We could easily increase the flop rate by switching from the
//! algorithmically fast, but implementationally slower FFT M2L
//! translations to the slower direct evaluation. But the speed gains are
//! negligible compared to the algorithmic savings."
//!
//! This binary measures all three M2L execution paths on the same tree
//! and reports the DownV phase's time, counted flops, and flop rate. The
//! expected shape: dense M2L achieves a *higher flop rate* (clean GEMV
//! streams) but burns *far more flops*, so the FFT path wins on time; the
//! SVD path trades a small rank-truncation setup for GEMM-shaped
//! per-direction cores. It also plans each case once in `M2lMode::Auto`
//! and prints the plan-time autotuner's per-level verdicts (chosen mode,
//! modeled flops per candidate, measured ranks, compression).
//!
//! With `KIFMM_BENCH_DIR` set, writes `BENCH_m2l_ablation.json`
//! (schema `kifmm-m2l-ablation-v1`) containing both the measured
//! per-mode DownV numbers and the autotuner rows.
//!
//! `cargo run --release -p kifmm-bench --bin ablation_m2l`
//! (`KIFMM_N` default 40 000).

use kifmm::{Fmm, FmmOptions, Kernel, Laplace, M2lChoice, M2lMode, Phase, Stokes};
use kifmm_bench::env_usize;

/// Measured DownV numbers for one concrete mode.
struct Measured {
    mode: M2lMode,
    seconds: f64,
    flops: u64,
}

/// Everything one (kernel, order) case contributes to the artifact.
struct CaseReport {
    kernel: String,
    order: usize,
    tree_depth: usize,
    measured: Vec<Measured>,
    auto: Vec<M2lChoice>,
}

fn mode_key(mode: M2lMode) -> &'static str {
    match mode {
        M2lMode::Fft => "fft",
        M2lMode::Direct => "direct",
        M2lMode::Svd => "svd",
        M2lMode::Auto => "auto",
    }
}

fn case<K: Kernel>(kernel: K, points: &[[f64; 3]], order: usize) -> CaseReport {
    let kname = kernel.name().to_string();
    let dens = kifmm::geom::random_densities(points.len(), kernel.src_dim(), 3);
    let mut measured = Vec::new();
    let mut tree_depth = 0usize;
    for mode in [M2lMode::Fft, M2lMode::Direct, M2lMode::Svd] {
        let fmm = Fmm::new(
            kernel.clone(),
            points,
            FmmOptions { order, max_pts_per_leaf: 60, m2l_mode: mode, ..Default::default() },
        );
        tree_depth = fmm.tree.depth() as usize;
        // Warm the lazy dense cache outside the measurement.
        let _ = fmm.eval(&dens);
        let stats = fmm.eval(&dens).stats;
        let seconds = stats.seconds[Phase::DownV as usize];
        let flops = stats.flops[Phase::DownV as usize];
        println!(
            "{:>8} p={order} {:>7} M2L: DownV {:>8.3}s {:>9} Mflop {:>9.0} Mflop/s",
            kname,
            format!("{mode:?}"),
            seconds,
            flops / 1_000_000,
            flops as f64 / seconds.max(1e-12) / 1e6
        );
        measured.push(Measured { mode, seconds, flops });
    }
    let (fft, direct) = (&measured[0], &measured[1]);
    println!(
        "{:>8} p={order} summary: dense does {:.1}x the flops; FFT is {:.1}x faster in time",
        kname,
        direct.flops as f64 / fft.flops as f64,
        direct.seconds / fft.seconds
    );

    // One Auto plan per case: the autotuner's per-level verdicts.
    let auto_fmm = Fmm::new(
        kernel,
        points,
        FmmOptions { order, max_pts_per_leaf: 60, m2l_mode: M2lMode::Auto, ..Default::default() },
    );
    let auto: Vec<M2lChoice> = auto_fmm.plan().m2l_report().to_vec();
    for c in &auto {
        println!(
            "{:>8} p={order} auto level {}: {:<6} (fft {:>9} / svd {:>9} / direct {:>9} kflop, \
             rank {}x{}, stored/dense {:.3})",
            kname,
            c.level,
            format!("{:?}", c.mode),
            c.fft_flops / 1_000,
            c.svd_flops / 1_000,
            c.direct_flops / 1_000,
            c.rank_trg,
            c.rank_src,
            c.compression
        );
    }
    println!();
    CaseReport { kernel: kname, order, tree_depth, measured, auto }
}

/// Hand-rolled `kifmm-m2l-ablation-v1` document (hermetic: no serde).
/// All strings are static identifiers, so no escaping is needed.
fn to_json(n: usize, cases: &[CaseReport]) -> String {
    let mut o = String::with_capacity(1 << 12);
    o.push_str("{\n  \"schema\":\"kifmm-m2l-ablation-v1\",\n");
    o.push_str(&format!("  \"n\":{n},\n  \"cases\":["));
    for (i, c) in cases.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        o.push_str(&format!(
            "\n    {{\"kernel\":\"{}\",\"order\":{},\"tree_depth\":{},\n     \"measured\":{{",
            c.kernel, c.order, c.tree_depth
        ));
        for (j, m) in c.measured.iter().enumerate() {
            if j > 0 {
                o.push(',');
            }
            o.push_str(&format!(
                "\"{}\":{{\"seconds\":{:?},\"flops\":{}}}",
                mode_key(m.mode),
                m.seconds,
                m.flops
            ));
        }
        o.push_str("},\n     \"auto\":[");
        for (j, a) in c.auto.iter().enumerate() {
            if j > 0 {
                o.push(',');
            }
            o.push_str(&format!(
                "\n       {{\"level\":{},\"mode\":\"{}\",\"fft_flops\":{},\"svd_flops\":{},\
                 \"direct_flops\":{},\"rank_trg\":{},\"rank_src\":{},\"compression\":{:?}}}",
                a.level,
                mode_key(a.mode),
                a.fft_flops,
                a.svd_flops,
                a.direct_flops,
                a.rank_trg,
                a.rank_src,
                a.compression
            ));
        }
        o.push_str("\n     ]}");
    }
    o.push_str("\n  ]\n}\n");
    o
}

fn main() {
    let n = env_usize("KIFMM_N", 40_000);
    println!(
        "M2L ablation (paper footnote 5): FFT vs dense vs SVD translation, N = {n}\n"
    );
    let points = kifmm::geom::sphere_grid(n, 8);
    let cases = vec![
        case(Laplace, &points, 4),
        case(Laplace, &points, 6),
        case(Stokes::new(1.0), &points, 4),
    ];
    if let Ok(dir) = std::env::var("KIFMM_BENCH_DIR") {
        std::fs::create_dir_all(&dir).expect("create KIFMM_BENCH_DIR");
        let path = std::path::Path::new(&dir).join("BENCH_m2l_ablation.json");
        std::fs::write(&path, to_json(n, &cases)).expect("write BENCH_m2l_ablation.json");
        println!("wrote {}", path.display());
    }
}
