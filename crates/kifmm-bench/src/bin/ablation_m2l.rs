//! **Ablation — FFT M2L vs dense M2L** (paper footnote 5).
//!
//! "We could easily increase the flop rate by switching from the
//! algorithmically fast, but implementationally slower FFT M2L
//! translations to the slower direct evaluation. But the speed gains are
//! negligible compared to the algorithmic savings."
//!
//! This binary measures both M2L paths on the same tree and reports the
//! DownV phase's time, counted flops, and flop rate. The expected shape:
//! dense M2L achieves a *higher flop rate* (clean GEMV streams) but burns
//! *far more flops*, so the FFT path wins on time.
//!
//! `cargo run --release -p kifmm-bench --bin ablation_m2l`
//! (`KIFMM_N` default 40 000).

use kifmm::{Fmm, FmmOptions, Kernel, Laplace, M2lMode, Phase, Stokes};
use kifmm_bench::env_usize;

fn case<K: Kernel>(kernel: K, points: &[[f64; 3]], order: usize) {
    let dens = kifmm::geom::random_densities(points.len(), K::SRC_DIM, 3);
    let mut results = Vec::new();
    for mode in [M2lMode::Fft, M2lMode::Direct] {
        let fmm = Fmm::new(
            kernel.clone(),
            points,
            FmmOptions { order, max_pts_per_leaf: 60, m2l_mode: mode, ..Default::default() },
        );
        // Warm the lazy dense cache outside the measurement.
        let _ = fmm.eval(&dens);
        let stats = fmm.eval(&dens).stats;
        let secs = stats.seconds[Phase::DownV as usize];
        let flops = stats.flops[Phase::DownV as usize];
        println!(
            "{:>8} p={order} {:>7} M2L: DownV {:>8.3}s {:>9} Mflop {:>9.0} Mflop/s",
            K::NAME,
            format!("{mode:?}"),
            secs,
            flops / 1_000_000,
            flops as f64 / secs.max(1e-12) / 1e6
        );
        results.push((secs, flops));
    }
    let (fft, direct) = (&results[0], &results[1]);
    println!(
        "{:>8} p={order} summary: dense does {:.1}x the flops; FFT is {:.1}x faster in time\n",
        K::NAME,
        direct.1 as f64 / fft.1 as f64,
        direct.0 / fft.0
    );
}

fn main() {
    let n = env_usize("KIFMM_N", 40_000);
    println!(
        "M2L ablation (paper footnote 5): FFT vs dense translation, N = {n}\n"
    );
    let points = kifmm::geom::sphere_grid(n, 8);
    case(Laplace, &points, 4);
    case(Laplace, &points, 6);
    case(Stokes::new(1.0), &points, 4);
}
