//! **Table 4.2 — isogranular scalability.**
//!
//! Paper: 200 000 particles *per processor*, P = 1…2048; Laplace uniform,
//! Stokes uniform, Stokes non-uniform. Total time should stay roughly
//! flat (slightly decreasing — M2L work drops as the 512-sphere set turns
//! locally non-uniform at scale), while tree Gen/Comm grows with P.
//!
//! Reproduction: `KIFMM_GRAIN` particles per rank (default 2 500), ranks
//! up to `KIFMM_MAXP` (default 32).
//! `cargo run --release -p kifmm-bench --bin table_4_2`.

use kifmm::{FmmOptions, Kernel, Laplace, Stokes};
use kifmm_bench::{
    env_usize, print_table_header, print_table_row, rank_sweep, run_distributed, summarize,
    CommModel,
};

fn series<K: Kernel>(
    title: &str,
    kernel: K,
    make_points: impl Fn(usize) -> Vec<[f64; 3]>,
    grain: usize,
    ranks: &[usize],
    iters: usize,
) {
    let opts = FmmOptions { order: 6, max_pts_per_leaf: 60, ..Default::default() };
    let model = CommModel::default();
    print_table_header(title);
    for &p in ranks {
        let points = make_points(grain * p);
        let m = run_distributed(kernel.clone(), &points, p, opts, iters);
        print_table_row(&summarize(&m, &model));
    }
}

fn main() {
    let grain = env_usize("KIFMM_GRAIN", 2_500);
    let iters = env_usize("KIFMM_ITERS", 1);
    let ranks = rank_sweep(32);
    println!(
        "Table 4.2 reproduction — isogranular scalability, {grain} particles/rank\n\
         (paper: 200k/processor on up to 2048 CPUs)"
    );
    series(
        "Laplacian kernel, uniform particle distribution",
        Laplace,
        |n| kifmm::geom::sphere_grid(n, 8),
        grain,
        &ranks,
        iters,
    );
    series(
        "Stokes kernel, uniform particle distribution",
        Stokes::new(1.0),
        |n| kifmm::geom::sphere_grid(n, 8),
        grain,
        &ranks,
        iters,
    );
    series(
        "Stokes kernel, non-uniform particle distribution",
        Stokes::new(1.0),
        |n| kifmm::geom::corner_clusters(n, 2003),
        grain,
        &ranks,
        iters,
    );
}
