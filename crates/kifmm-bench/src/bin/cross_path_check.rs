//! Cross-path gate for `scripts/verify.sh`: a tiny problem evaluated by
//! all three drivers (serial, shared-memory pool, distributed P=4) must
//! agree — serial vs pool bit-identically (one engine, one task order),
//! distributed vs serial to 1e-12 relative l2 (owner-side summation of
//! partial equivalents reassociates additions, nothing more). The matrix
//! covers every M2L execution mode: Fft, Svd and plan-time Auto (Direct
//! rides along inside Auto's candidate set).
//!
//! Exits nonzero (panics) on any disagreement.

use kifmm::{Fmm, FmmOptions, Kernel, Laplace, M2lMode, Stokes};
use kifmm_testkit::check_matches_serial_opts;

fn check_paths<K: Kernel>(name: &str, kernel: K, pts: Vec<[f64; 3]>, mode: M2lMode) {
    let n = pts.len();
    let dens = kifmm::geom::random_densities(n, kernel.src_dim(), 9);
    let opts =
        FmmOptions { order: 4, max_pts_per_leaf: 20, m2l_mode: mode, ..Default::default() };

    let mut fmm = Fmm::new(kernel.clone(), &pts, opts);
    let serial = fmm.eval(&dens).potentials;
    fmm.set_parallel_eval(true);
    let pool = fmm.eval(&dens).potentials;
    assert_eq!(serial, pool, "{name}: pool path must be bit-identical to serial");
    println!("cross-path {name}: serial == pool (bitwise) OK");

    let sd = kernel.src_dim();
    check_matches_serial_opts(kernel, pts, 4, sd, 1e-12, opts);
    println!("cross-path {name}: distributed P=4 within 1e-12 OK");
}

fn main() {
    let uni = kifmm::geom::uniform_cube(600, 31);
    let clu = kifmm::geom::corner_clusters(450, 32);
    check_paths("laplace/uniform/fft", Laplace, uni.clone(), M2lMode::Fft);
    check_paths("laplace/uniform/svd", Laplace, uni.clone(), M2lMode::Svd);
    check_paths("laplace/uniform/auto", Laplace, uni, M2lMode::Auto);
    check_paths("stokes/clustered/fft", Stokes::default(), clu.clone(), M2lMode::Fft);
    check_paths("stokes/clustered/svd", Stokes::default(), clu, M2lMode::Svd);
    println!("cross-path gate: ALL OK");
}
