//! **Table 4.1 — fixed-size scalability.**
//!
//! Paper: 3.2 M particles, P = 1…1024, three kernels (Laplacian and
//! modified Laplacian on the uniform 512-sphere set, Stokes on the
//! non-uniform corner-clustered set), columns Total/Ratio/Comm/Up/Down/
//! Avg/Peak/Gen-Comm.
//!
//! Reproduction (1/67-scale by default): `KIFMM_N` particles
//! (default 48 000), virtual ranks up to `KIFMM_MAXP` (default 32),
//! `s = 60`, `p = 6` (the 1e-5 setting). Run with
//! `cargo run --release -p kifmm-bench --bin table_4_1`.

use kifmm::{FmmOptions, Laplace, ModifiedLaplace, Stokes};
use kifmm_bench::{
    env_usize, print_table_header, print_table_row, rank_sweep, run_distributed, summarize,
    write_bench_summary, CommModel,
};

fn main() {
    let n = env_usize("KIFMM_N", 48_000);
    let iters = env_usize("KIFMM_ITERS", 1);
    let opts = FmmOptions { order: 6, max_pts_per_leaf: 60, ..Default::default() };
    let model = CommModel::default();
    let ranks = rank_sweep(32);
    println!(
        "Table 4.1 reproduction — fixed-size scalability, N = {n}, s = 60, p = 6\n\
         (paper: 3.2M particles on the PSC TCS-1; this run: virtual ranks,\n\
         thread-CPU compute time + Quadrics-model comm time; see DESIGN.md)"
    );

    let uniform = kifmm::geom::sphere_grid(n, 8);
    let clustered = kifmm::geom::corner_clusters(n, 2003);

    print_table_header("Laplacian kernel (uniform 512-sphere distribution)");
    for &p in &ranks {
        let m = run_distributed(Laplace, &uniform, p, opts, iters);
        print_table_row(&summarize(&m, &model));
        write_bench_summary(&format!("table_4_1_laplace_P{p}"), n, opts.order, &m);
    }

    print_table_header("Modified Laplacian kernel (uniform 512-sphere distribution)");
    for &p in &ranks {
        let m = run_distributed(ModifiedLaplace::new(1.0), &uniform, p, opts, iters);
        print_table_row(&summarize(&m, &model));
        write_bench_summary(&format!("table_4_1_mod_laplace_P{p}"), n, opts.order, &m);
    }

    print_table_header("Stokes kernel (non-uniform corner-clustered distribution)");
    for &p in &ranks {
        let m = run_distributed(Stokes::new(1.0), &clustered, p, opts, iters);
        print_table_row(&summarize(&m, &model));
        write_bench_summary(&format!("table_4_1_stokes_P{p}"), n, opts.order, &m);
    }
}
