//! **Table 4.3 — largest runs.**
//!
//! Paper: 3000 processors, 512-sphere input, `s = 120` (doubled "to
//! slightly reduce the costs of tree construction"), three problems —
//! Laplace at 100 k and 230 k particles/CPU and Stokes at 230 k/CPU —
//! i.e. 0.3 B / 0.69 B / 2.07 B unknowns, sustaining 1.13 Tflop/s.
//!
//! Reproduction: `KIFMM_MAXP` ranks (default 32) with `100 k/scale`- and
//! `230 k/scale`-particle Laplace problems and a `230 k/scale`-particle
//! Stokes problem, `s = 120`. Scale with
//! `KIFMM_SCALE` (particles = base / scale, default 4).
//! `cargo run --release -p kifmm-bench --bin table_4_3`.

use kifmm::{FmmOptions, Kernel, Laplace, Stokes};
use kifmm_bench::{env_usize, run_distributed, summarize, CommModel};

fn run_case<K: Kernel>(label: &str, kernel: K, n: usize, p: usize, iters: usize) {
    let opts = FmmOptions { order: 6, max_pts_per_leaf: 120, ..Default::default() };
    let points = kifmm::geom::sphere_grid(n, 8);
    let sd = kernel.src_dim();
    let metrics = run_distributed(kernel, &points, p, opts, iters);
    let row = summarize(&metrics, &CommModel::default());
    let unknowns = n * sd;
    println!(
        "{:>10} {:>9.3}M {:>9.3} {:>6.2} {:>8.4} {:>8.3} {:>9.3} {:>8.3} {:>8.3} {:>9.3}",
        label,
        unknowns as f64 / 1e6,
        row.total,
        row.ratio,
        row.comm,
        row.up,
        row.down,
        row.avg_gflops,
        row.peak_gflops,
        row.tree
    );
}

fn main() {
    let p = env_usize("KIFMM_MAXP", 32);
    let scale = env_usize("KIFMM_SCALE", 4).max(1);
    let iters = env_usize("KIFMM_ITERS", 1);
    println!(
        "Table 4.3 reproduction — largest runs, P = {p} virtual ranks, s = 120\n\
         (paper: 3000 CPUs, 0.3/0.69/2.07 B unknowns; here scaled down by {scale}000×)\n"
    );
    println!(
        "{:>10} {:>10} {:>10} {:>6} {:>8} {:>8} {:>9} {:>8} {:>8} {:>9}",
        "kernel", "unknowns", "Total(s)", "Ratio", "Comm", "Up", "Down", "Avg", "Peak",
        "Gen/Comm"
    );
    run_case("Laplace", Laplace, 100_000 / scale, p, iters);
    run_case("Laplace", Laplace, 230_000 / scale, p, iters);
    run_case("Stokes", Stokes::new(1.0), 230_000 / scale, p, iters);
}
