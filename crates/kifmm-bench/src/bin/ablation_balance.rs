//! **Ablation — particle-count vs workload-feedback partitioning.**
//!
//! The paper partitions by particle count only and observes (§4,
//! discussion point 6) that "load imbalance for highly non-uniform
//! distributions is significant" — the Stokes corner-clustered rows of
//! Table 4.1 show Ratio growing to 1.8 while the uniform rows stay near
//! 1.2. Its stated fix (§3.1/§5): "work estimates from a previous time
//! step could be used to obtain more balanced partitioning."
//!
//! This ablation implements that fix and measures it: evaluate once with
//! the paper's count-based partition, extract per-point work estimates,
//! re-partition by estimated work, evaluate again, and compare the
//! compute-time imbalance (max/min across ranks).
//!
//! `cargo run --release -p kifmm-bench --bin ablation_balance`
//! (`KIFMM_N` default 48 000, `KIFMM_MAXP` default 16).

use kifmm::core::PrecomputeCache;
use kifmm::parallel::ParallelFmm;
use kifmm::tree::{partition_points, partition_weighted_points};
use kifmm::{FmmOptions, Kernel, Laplace, Stokes};
use kifmm_bench::env_usize;
use std::sync::Arc;

/// Evaluate on a given partition; return per-rank compute seconds and the
/// per-point work estimates (original global order).
fn run_with_partition<K: Kernel>(
    kernel: K,
    all: &[[f64; 3]],
    groups: &[Vec<usize>],
    opts: FmmOptions,
) -> (Vec<f64>, Vec<f64>) {
    let ranks = groups.len();
    let chunks: Arc<Vec<Vec<[f64; 3]>>> =
        Arc::new(groups.iter().map(|g| g.iter().map(|&i| all[i]).collect()).collect());
    let cache = Arc::new(PrecomputeCache::<K>::new());
    let out = kifmm::mpi::run(ranks, {
        let chunks = chunks.clone();
        move |comm| {
            let r = comm.rank();
            let local = &chunks[r];
            let dens = kifmm::geom::random_densities(local.len(), kernel.src_dim(), r as u64);
            let pfmm = ParallelFmm::with_cache(comm, kernel.clone(), local, opts, &cache);
            let stats = pfmm.eval(comm, &dens).stats;
            let compute = stats.total_seconds() - stats.seconds[kifmm::Phase::Comm as usize];
            (compute, pfmm.point_work_estimates())
        }
    });
    // Scatter local estimates back to global point order.
    let mut weights = vec![0.0; all.len()];
    let mut computes = Vec::with_capacity(ranks);
    for (r, (compute, west)) in out.into_iter().enumerate() {
        computes.push(compute);
        for (li, &gi) in groups[r].iter().enumerate() {
            weights[gi] = west[li];
        }
    }
    (computes, weights)
}

fn ratio(v: &[f64]) -> f64 {
    let max = v.iter().cloned().fold(0.0f64, f64::max);
    let min = v.iter().cloned().fold(f64::INFINITY, f64::min).max(1e-12);
    max / min
}

fn case<K: Kernel>(name: &str, kernel: K, all: &[[f64; 3]], ranks: usize) {
    let opts = FmmOptions { order: 6, max_pts_per_leaf: 60, ..Default::default() };
    // Pass 1: the paper's partitioning (particle counts only).
    let base = partition_points(all, ranks);
    let (t_base, weights) = run_with_partition(kernel.clone(), all, &base.groups, opts);
    // Pass 2: repartition with the measured work estimates.
    let balanced = partition_weighted_points(all, &weights, ranks);
    let (t_bal, _) = run_with_partition(kernel, all, &balanced.groups, opts);
    println!(
        "{name:>40}  P={ranks:<3} count-based Ratio {:>5.2}  work-based Ratio {:>5.2}",
        ratio(&t_base),
        ratio(&t_bal)
    );
}

fn main() {
    let n = env_usize("KIFMM_N", 48_000);
    let p = env_usize("KIFMM_MAXP", 16);
    println!(
        "Load-balancing ablation (paper §5 future work), N = {n}\n\
         Ratio = max/min compute time across ranks (1.0 = perfect)\n"
    );
    let uniform = kifmm::geom::sphere_grid(n, 8);
    let clustered = kifmm::geom::corner_clusters(n, 2003);
    case("Laplace, uniform (control)", Laplace, &uniform, p);
    case("Laplace, corner-clustered", Laplace, &clustered, p);
    case("Stokes, corner-clustered", Stokes::new(1.0), &clustered, p);
    println!(
        "\nExpected shape: the uniform control is already balanced; the\n\
         non-uniform cases improve markedly with workload feedback."
    );
}
