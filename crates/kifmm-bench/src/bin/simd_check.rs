//! SIMD-vs-scalar equivalence gate for `scripts/verify.sh`.
//!
//! The in-tree vector microkernels (`kifmm_linalg::simd`) were written to
//! be *bit-identical* to their scalar references: the scalar path uses
//! the same 4-way accumulator split and the same `(s0+s1)+(s2+s3)`
//! reduction the 4-lane path performs in registers. This binary flips
//! `set_force_scalar` in-process and asserts that identity at two levels:
//!
//! 1. the raw microkernels (`dot`, `axpy`, `recip_sqrt`) on awkward
//!    lengths (empty, sub-lane, lane-straddling remainders), and
//! 2. a full FMM evaluation (near-field P2P is the consumer) for a
//!    point-kernel and a matrix-kernel case.
//!
//! On hosts without AVX2 both runs take the scalar path and the gate is
//! vacuous — the binary says so rather than failing. Exits nonzero
//! (panics) on any divergence.

use kifmm::linalg::simd;
use kifmm::{Fmm, FmmOptions, Kernel, Laplace, Stokes};

/// Deterministic LCG doubles in `(-1, 1)`.
fn noise(n: usize, seed: u64) -> Vec<f64> {
    let mut s = seed;
    (0..n)
        .map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
        .collect()
}

fn check_microkernels() {
    // Lengths chosen to hit every remainder class of the 4-lane kernels.
    for &n in &[0usize, 1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 63, 64, 65, 1000, 1003] {
        let x = noise(n, 11 + n as u64);
        let y = noise(n, 29 + n as u64);

        simd::set_force_scalar(false);
        let dot_v = simd::dot(&x, &y);
        let mut axpy_v = y.clone();
        simd::axpy(0.37, &x, &mut axpy_v);
        let mut rsqrt_v: Vec<f64> = x.iter().map(|v| v * v + 0.01).collect();
        rsqrt_v.push(0.0); // coincident-pair sentinel lane
        simd::recip_sqrt(&mut rsqrt_v);

        simd::set_force_scalar(true);
        let dot_s = simd::dot(&x, &y);
        let mut axpy_s = y.clone();
        simd::axpy(0.37, &x, &mut axpy_s);
        let mut rsqrt_s: Vec<f64> = x.iter().map(|v| v * v + 0.01).collect();
        rsqrt_s.push(0.0);
        simd::recip_sqrt(&mut rsqrt_s);
        simd::set_force_scalar(false);

        assert!(
            dot_v.to_bits() == dot_s.to_bits(),
            "dot diverges at n={n}: {dot_v:?} vs {dot_s:?}"
        );
        assert_eq!(axpy_v, axpy_s, "axpy diverges at n={n}");
        assert_eq!(rsqrt_v, rsqrt_s, "recip_sqrt diverges at n={n}");
    }
    println!("simd-check microkernels: dot/axpy/recip_sqrt bit-identical OK");
}

fn check_fmm<K: Kernel>(kernel: K, n: usize, seed: u64) {
    let name = kernel.name().to_string();
    let pts = kifmm::geom::uniform_cube(n, seed);
    let dens = kifmm::geom::random_densities(n, kernel.src_dim(), seed + 1);
    let opts = FmmOptions { order: 4, max_pts_per_leaf: 30, ..Default::default() };

    simd::set_force_scalar(false);
    let vector = Fmm::new(kernel.clone(), &pts, opts).eval(&dens).potentials;
    simd::set_force_scalar(true);
    let scalar = Fmm::new(kernel, &pts, opts).eval(&dens).potentials;
    simd::set_force_scalar(false);

    assert_eq!(vector, scalar, "{name}: FMM potentials diverge between SIMD and scalar");
    println!("simd-check {name}: full FMM eval bit-identical OK");
}

fn main() {
    simd::set_force_scalar(false);
    if simd::simd_active() {
        println!("simd-check: vector path active (AVX2)");
    } else {
        println!("simd-check: no vector path on this host — gate is scalar-vs-scalar");
    }
    check_microkernels();
    check_fmm(Laplace, 800, 41);
    check_fmm(Stokes::default(), 500, 43);
    println!("simd-check: ALL OK");
}
