//! **Figure 4.2 — fixed-size scalability, per-stage breakdown.**
//!
//! Paper: for the Table 4.1 runs, the left column plots aggregate CPU
//! cycles per particle split into Up/Comm/DownU/DownV/DownW/DownX/Eval
//! (plus work efficiency), the right column MFlop/s per processor with
//! flop-rate efficiency and max/min.
//!
//! This binary prints the same series numerically: aggregate CPU µs per
//! particle per stage (multiply by the clock rate for cycles), work
//! efficiency `T(1)/(P·T(P))`, and per-rank MFlop/s (avg/peak/min).
//! `cargo run --release -p kifmm-bench --bin figure_4_2`.

use kifmm::{FmmOptions, Kernel, Laplace, ModifiedLaplace, Phase, Point3, Stokes};
use kifmm_bench::{
    env_usize, phase_us_per_particle, rank_sweep, run_distributed, summarize, CommModel,
};

fn series<K: Kernel>(name: &str, kernel: K, points: &[Point3], ranks: &[usize], iters: usize) {
    let n = points.len();
    let opts = FmmOptions { order: 6, max_pts_per_leaf: 60, ..Default::default() };
    let model = CommModel::default();
    println!("\n=== {name} ===");
    println!(
        "{:>5} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} | {:>7} {:>9} {:>9} {:>9} {:>7}",
        "P", "Up", "Comm", "DownU", "DownV", "DownW", "DownX", "Eval", "workEff", "MF/s avg",
        "MF/s max", "MF/s min", "flopEff"
    );
    let mut t1 = None;
    let mut f1 = None;
    for &p in ranks {
        let metrics = run_distributed(kernel.clone(), points, p, opts, iters);
        let row = summarize(&metrics, &model);
        // Aggregate CPU µs/particle per stage; Comm reported from the model.
        let mut us = phase_us_per_particle(&metrics, n);
        us[Phase::Comm as usize] = row.comm * p as f64 * 1e6 / n as f64;
        let t = row.total;
        let t1v = *t1.get_or_insert(t);
        let work_eff = t1v / (t * p as f64);
        // Per-rank flop rates over each rank's own virtual time.
        let rates: Vec<f64> = metrics
            .iter()
            .map(|m| {
                let tm = m.compute_seconds() + model.time(m.eval_bytes, m.eval_msgs);
                m.phases.total_flops() as f64 / tm.max(1e-12) / 1e6
            })
            .collect();
        let avg = rates.iter().sum::<f64>() / p as f64;
        let max = rates.iter().cloned().fold(0.0f64, f64::max);
        let min = rates.iter().cloned().fold(f64::INFINITY, f64::min);
        let f1v = *f1.get_or_insert(avg);
        println!(
            "{:>5} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} | {:>7.2} {:>9.1} {:>9.1} {:>9.1} {:>7.2}",
            p, us[0], us[1], us[2], us[3], us[4], us[5], us[6], work_eff, avg, max, min,
            avg / f1v
        );
    }
}

fn main() {
    let n = env_usize("KIFMM_N", 48_000);
    let iters = env_usize("KIFMM_ITERS", 1);
    let ranks = rank_sweep(32);
    println!(
        "Figure 4.2 reproduction — fixed-size per-stage breakdown, N = {n}\n\
         (aggregate CPU µs/particle per stage; paper plots cycles/particle)"
    );
    let uniform = kifmm::geom::sphere_grid(n, 8);
    let clustered = kifmm::geom::corner_clusters(n, 2003);
    series("Laplacian kernel, uniform particle distribution", Laplace, &uniform, &ranks, iters);
    series(
        "Modified Laplacian kernel, uniform particle distribution",
        ModifiedLaplace::new(1.0),
        &uniform,
        &ranks,
        iters,
    );
    series(
        "Stokes kernel, non-uniform particle distribution",
        Stokes::new(1.0),
        &clustered,
        &ranks,
        iters,
    );
}
