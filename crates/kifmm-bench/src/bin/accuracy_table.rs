//! **Accuracy sweep** — the paper's working accuracy ("the relative error
//! in all experiments is 1e-5") placed on the convergence curve of the
//! method: relative ℓ² error versus the surface order `p`, per kernel,
//! measured against exact direct summation. This reproduces the
//! accuracy-vs-cost tables of the companion sequential paper (Ying, Biros
//! & Zorin, TR2003-839) that the SC'03 evaluation builds on.
//!
//! `cargo run --release -p kifmm-bench --bin accuracy_table`
//! (`KIFMM_N` to change the particle count, default 10 000).

use kifmm::{
    direct_eval, rel_l2_error, Fmm, FmmOptions, Kernel, Laplace, ModifiedLaplace, Stokes,
};
use kifmm_bench::env_usize;
use std::time::Instant;

fn sweep<K: Kernel>(kernel: K, points: &[[f64; 3]], orders: &[usize]) {
    let n = points.len();
    let dens = kifmm::geom::random_densities(n, kernel.src_dim(), 7);
    let truth = direct_eval(&kernel, points, &dens);
    for &p in orders {
        let t0 = Instant::now();
        let fmm = Fmm::new(
            kernel.clone(),
            points,
            FmmOptions { order: p, max_pts_per_leaf: 60, ..Default::default() },
        );
        let setup = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let report = fmm.eval(&dens);
        let (u, stats) = (report.potentials, report.stats);
        let eval = t1.elapsed().as_secs_f64();
        let err = rel_l2_error(&u, &truth);
        println!(
            "{:>16} {:>3} {:>10.2e} {:>9.2}s {:>9.2}s {:>12}",
            kernel.name(),
            p,
            err,
            setup,
            eval,
            stats.total_flops() / 1_000_000
        );
    }
}

fn main() {
    let n = env_usize("KIFMM_N", 10_000);
    println!(
        "Accuracy vs surface order (512-sphere set, N = {n}, vs direct summation)\n\
         The paper's experiments run at 1e-5 relative error ⇒ p = 6.\n"
    );
    println!(
        "{:>16} {:>3} {:>10} {:>10} {:>10} {:>12}",
        "kernel", "p", "rel-err", "setup", "evaluate", "Mflop"
    );
    let points = kifmm::geom::sphere_grid(n, 8);
    sweep(Laplace, &points, &[4, 6, 8]);
    sweep(ModifiedLaplace::new(1.0), &points, &[4, 6, 8]);
    sweep(Stokes::new(1.0), &points, &[4, 6, 8]);
}
