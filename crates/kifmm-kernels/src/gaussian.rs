//! The Gaussian (squared-exponential / RBF) kernel
//! `G(x, y) = exp(−|x − y|²/(2σ²))`.
//!
//! Not a PDE fundamental solution: this is the covariance kernel of the
//! kernel-matrix matvec market (Gaussian-process regression, kriging,
//! RBF interpolation) that black-box FMMs like PBBFMM3D target. It is
//! smooth everywhere and rapidly decaying, so its far field is extremely
//! low-rank and the equivalent-density machinery compresses it well —
//! but the bandwidth `σ` introduces a length scale, so like
//! [`crate::ModifiedLaplace`] it is **inhomogeneous** and gets per-level
//! operator tables.
//!
//! Following the FMM convention used throughout this crate, the coincident
//! pair contributes **zero** (not `G(0) = 1`): the diagonal of a kernel
//! matrix is excluded from the N-body sum, and GP users add the
//! `1 + noise` diagonal themselves.

use crate::kernel::{displacement, with_weight_buf, Kernel};
use crate::Point3;
use kifmm_linalg::simd;

/// Squared-exponential kernel `exp(−r²/(2σ²))` with bandwidth `σ`.
#[derive(Clone, Copy, Debug)]
pub struct Gaussian {
    /// Bandwidth `σ > 0`. For FMM accuracy, `σ` should be comparable to
    /// the domain size (very small bandwidths make the kernel numerically
    /// local — dense near-field work covers it, but there is little far
    /// field left to compress).
    pub sigma: f64,
}

impl Gaussian {
    /// Gaussian kernel with bandwidth `σ`.
    pub fn new(sigma: f64) -> Self {
        assert!(sigma > 0.0, "bandwidth must be positive");
        Gaussian { sigma }
    }

    #[inline]
    fn inv_two_sigma2(&self) -> f64 {
        0.5 / (self.sigma * self.sigma)
    }

    #[inline]
    fn inv_sigma2(&self) -> f64 {
        1.0 / (self.sigma * self.sigma)
    }
}

impl Default for Gaussian {
    /// `σ = 1`: bandwidth comparable to the unit computational box.
    fn default() -> Self {
        Gaussian::new(1.0)
    }
}

impl Kernel for Gaussian {
    fn src_dim(&self) -> usize {
        1
    }

    fn trg_dim(&self) -> usize {
        1
    }

    fn name(&self) -> &str {
        "Gaussian"
    }

    /// The bandwidth `σ` sets a physical scale: not homogeneous — the
    /// operator tables are built per level (the ModifiedLaplace path).
    fn homogeneity(&self) -> Option<f64> {
        None
    }

    /// r² (8), scale (1), exp (1), multiply-accumulate (2) ⇒ 12.
    fn flops_per_eval(&self) -> u64 {
        12
    }

    /// Fused pair: the 12 of the potential plus the shared `e/σ²` factor
    /// (1) and three gradient macs (9) ⇒ 22.
    fn flops_per_grad_eval(&self) -> u64 {
        22
    }

    /// The operator tables depend on `σ`.
    fn id_bits(&self) -> u64 {
        self.sigma.to_bits()
    }

    #[inline]
    fn eval(&self, x: Point3, y: Point3, block: &mut [f64]) {
        let (_, _, _, r2) = displacement(x, y);
        block[0] = if r2 == 0.0 { 0.0 } else { (-r2 * self.inv_two_sigma2()).exp() };
    }

    /// `∂G/∂x_d = −(r_d/σ²)·exp(−r²/(2σ²))`, `r = x − y`.
    #[inline]
    fn eval_grad(&self, x: Point3, y: Point3, block: &mut [f64]) {
        debug_assert_eq!(block.len(), 3);
        let (dx, dy, dz, r2) = displacement(x, y);
        if r2 == 0.0 {
            block.fill(0.0);
            return;
        }
        let s = (-r2 * self.inv_two_sigma2()).exp() * self.inv_sigma2();
        block[0] = -dx * s;
        block[1] = -dy * s;
        block[2] = -dz * s;
    }

    /// Per target: fill the pair-weight buffer `w = e^{−r²/(2σ²)}` (the
    /// `exp` stays scalar for determinism, as in ModifiedLaplace; `w = 0`
    /// marks a coincident pair), then reduce with the vector
    /// [`simd::dot`]. [`Gaussian::p2p_many`] runs the identical chain, so
    /// results are bit-identical per RHS.
    fn p2p(
        &self,
        targets: &[Point3],
        sources: &[Point3],
        densities: &[f64],
        potentials: &mut [f64],
    ) {
        debug_assert_eq!(densities.len(), sources.len());
        debug_assert_eq!(potentials.len(), targets.len());
        let inv2s2 = self.inv_two_sigma2();
        with_weight_buf(sources.len(), |w| {
            for (ti, &x) in targets.iter().enumerate() {
                for (si, &y) in sources.iter().enumerate() {
                    let (_, _, _, r2) = displacement(x, y);
                    w[si] = if r2 > 0.0 { (-r2 * inv2s2).exp() } else { 0.0 };
                }
                potentials[ti] += simd::dot(densities, w);
            }
        });
    }

    /// Hoists the pair weight `w = e^{−r²/(2σ²)}` out of the RHS loop;
    /// bit-identical per RHS to [`Gaussian::p2p`].
    fn p2p_many(
        &self,
        targets: &[Point3],
        sources: &[Point3],
        densities: &[&[f64]],
        potentials: &mut [&mut [f64]],
    ) {
        assert_eq!(densities.len(), potentials.len(), "one potential vector per RHS");
        let inv2s2 = self.inv_two_sigma2();
        with_weight_buf(sources.len(), |w| {
            for (ti, &x) in targets.iter().enumerate() {
                for (si, &y) in sources.iter().enumerate() {
                    let (_, _, _, r2) = displacement(x, y);
                    w[si] = if r2 > 0.0 { (-r2 * inv2s2).exp() } else { 0.0 };
                }
                for (dens, pot) in densities.iter().zip(potentials.iter_mut()) {
                    pot[ti] += simd::dot(dens, w);
                }
            }
        });
    }

    /// Fused scalar loop sharing the `exp` between the potential and the
    /// three gradient components.
    fn p2p_grad(
        &self,
        targets: &[Point3],
        sources: &[Point3],
        densities: &[f64],
        potentials: &mut [f64],
        gradients: &mut [f64],
    ) {
        debug_assert_eq!(densities.len(), sources.len());
        debug_assert_eq!(potentials.len(), targets.len());
        debug_assert_eq!(gradients.len(), 3 * targets.len());
        let inv2s2 = self.inv_two_sigma2();
        let invs2 = self.inv_sigma2();
        for (ti, &x) in targets.iter().enumerate() {
            let mut u = 0.0;
            let (mut gx, mut gy, mut gz) = (0.0, 0.0, 0.0);
            for (si, &y) in sources.iter().enumerate() {
                let (dx, dy, dz, r2) = displacement(x, y);
                if r2 == 0.0 {
                    continue;
                }
                let e = (-r2 * inv2s2).exp();
                let we = e * invs2;
                let q = densities[si];
                u += q * e;
                let s = q * we;
                gx -= dx * s;
                gy -= dy * s;
                gz -= dz * s;
            }
            potentials[ti] += u;
            gradients[3 * ti] += gx;
            gradients[3 * ti + 1] += gy;
            gradients[3 * ti + 2] += gz;
        }
    }

    /// Hoisted-geometry multi-RHS variant of [`Gaussian::p2p_grad`]
    /// (bit-identical per RHS).
    fn p2p_grad_many(
        &self,
        targets: &[Point3],
        sources: &[Point3],
        densities: &[&[f64]],
        potentials: &mut [&mut [f64]],
        gradients: &mut [&mut [f64]],
    ) {
        assert_eq!(densities.len(), potentials.len(), "one potential vector per RHS");
        assert_eq!(densities.len(), gradients.len(), "one gradient vector per RHS");
        let inv2s2 = self.inv_two_sigma2();
        let invs2 = self.inv_sigma2();
        let ns = sources.len();
        let mut geo = vec![[0.0f64; 5]; ns]; // dx, dy, dz, e, e/σ²
        for (ti, &x) in targets.iter().enumerate() {
            for (si, &y) in sources.iter().enumerate() {
                let (dx, dy, dz, r2) = displacement(x, y);
                if r2 == 0.0 {
                    geo[si][3] = 0.0;
                    continue;
                }
                let e = (-r2 * inv2s2).exp();
                geo[si] = [dx, dy, dz, e, e * invs2];
            }
            for ((dens, pot), grad) in
                densities.iter().zip(potentials.iter_mut()).zip(gradients.iter_mut())
            {
                let mut u = 0.0;
                let (mut gx, mut gy, mut gz) = (0.0, 0.0, 0.0);
                for (si, g) in geo.iter().enumerate() {
                    let [dx, dy, dz, e, we] = *g;
                    if e == 0.0 {
                        continue;
                    }
                    let q = dens[si];
                    u += q * e;
                    let s = q * we;
                    gx -= dx * s;
                    gy -= dy * s;
                    gz -= dz * s;
                }
                pot[ti] += u;
                grad[3 * ti] += gx;
                grad[3 * ti + 1] += gy;
                grad[3 * ti + 2] += gz;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pointwise_value_and_self_exclusion() {
        let k = Gaussian::new(0.5);
        let mut b = [0.0];
        k.eval([1.0, 0.0, 0.0], [0.0; 3], &mut b);
        assert!((b[0] - (-2.0f64).exp()).abs() < 1e-15);
        let mut z = [1.0];
        k.eval([0.2; 3], [0.2; 3], &mut z);
        assert_eq!(z[0], 0.0, "diagonal excluded from the N-body sum");
    }

    #[test]
    fn monotone_decay_and_positivity() {
        let k = Gaussian::new(0.8);
        let mut prev = f64::INFINITY;
        for i in 1..10 {
            let mut b = [0.0];
            k.eval([0.3 * i as f64, 0.0, 0.0], [0.0; 3], &mut b);
            assert!(b[0] > 0.0 && b[0] < prev);
            prev = b[0];
        }
    }

    #[test]
    fn gradient_known_value() {
        // ∂G/∂x at (r,0,0): −(r/σ²) e^{−r²/(2σ²)}.
        let k = Gaussian::new(0.7);
        let mut g = [0.0; 3];
        k.eval_grad([0.9, 0.0, 0.0], [0.0; 3], &mut g);
        let expect = -(0.9 / (0.7 * 0.7)) * (-0.81f64 / (2.0 * 0.49)).exp();
        assert!((g[0] - expect).abs() < 1e-15);
        assert!(g[1].abs() < 1e-15 && g[2].abs() < 1e-15);
    }

    #[test]
    fn p2p_matches_eval_sum() {
        let k = Gaussian::new(0.6);
        let targets = [[0.0, 0.0, 0.0], [0.5, 0.5, 0.5]];
        let sources = [[1.0, 0.0, 0.0], [0.0, 0.7, 0.0], [0.0, 0.0, 0.4]];
        let dens = [1.0, -2.0, 0.5];
        let mut fast = vec![0.0; 2];
        k.p2p(&targets, &sources, &dens, &mut fast);
        for (ti, &x) in targets.iter().enumerate() {
            let mut expect = 0.0;
            let mut b = [0.0];
            for (si, &y) in sources.iter().enumerate() {
                k.eval(x, y, &mut b);
                expect += b[0] * dens[si];
            }
            assert!((fast[ti] - expect).abs() < 1e-14);
        }
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_sigma() {
        let _ = Gaussian::new(0.0);
    }
}
