//! The 3-D Laplace single-layer kernel `G(x, y) = 1/(4π|x − y|)`.

use crate::kernel::{displacement, with_weight_buf, Kernel};
use crate::Point3;
use kifmm_linalg::simd;

const FOUR_PI_INV: f64 = 1.0 / (4.0 * std::f64::consts::PI);

/// Fundamental solution of `−Δu = 0` in 3-D.
#[derive(Clone, Copy, Debug, Default)]
pub struct Laplace;

impl Kernel for Laplace {
    fn src_dim(&self) -> usize {
        1
    }

    fn trg_dim(&self) -> usize {
        1
    }

    fn name(&self) -> &str {
        "Laplace"
    }

    fn homogeneity(&self) -> Option<f64> {
        Some(-1.0)
    }

    /// 3 subs + 3 muls + 2 adds (r²), 1 rsqrt, 1 scale, 2 for the
    /// multiply-accumulate ⇒ 12.
    fn flops_per_eval(&self) -> u64 {
        12
    }

    /// Fused pair: r² (8), rsqrt (1), 1/r³ (2), potential mac (3),
    /// three gradient macs (9) ⇒ 23.
    fn flops_per_grad_eval(&self) -> u64 {
        23
    }

    #[inline]
    fn eval(&self, x: Point3, y: Point3, block: &mut [f64]) {
        let (_, _, _, r2) = displacement(x, y);
        block[0] = if r2 == 0.0 { 0.0 } else { FOUR_PI_INV / r2.sqrt() };
    }

    /// `∂G/∂x_d = −r_d/(4π r³)`, `r = x − y`.
    #[inline]
    fn eval_grad(&self, x: Point3, y: Point3, block: &mut [f64]) {
        debug_assert_eq!(block.len(), 3);
        let (dx, dy, dz, r2) = displacement(x, y);
        if r2 == 0.0 {
            block.fill(0.0);
            return;
        }
        let inv_r3 = FOUR_PI_INV / (r2 * r2.sqrt());
        block[0] = -dx * inv_r3;
        block[1] = -dy * inv_r3;
        block[2] = -dz * inv_r3;
    }

    /// Per target: fill the squared-distance buffer, turn it into weights
    /// `w = 1/√r²` with the vector [`simd::recip_sqrt`] microkernel
    /// (`w = 0` marks a coincident pair), then reduce with [`simd::dot`].
    /// [`Laplace::p2p_many`] runs the identical chain, so results are
    /// bit-identical per RHS.
    fn p2p(
        &self,
        targets: &[Point3],
        sources: &[Point3],
        densities: &[f64],
        potentials: &mut [f64],
    ) {
        debug_assert_eq!(densities.len(), sources.len());
        debug_assert_eq!(potentials.len(), targets.len());
        with_weight_buf(sources.len(), |w| {
            for (ti, &x) in targets.iter().enumerate() {
                for (si, &y) in sources.iter().enumerate() {
                    let (_, _, _, r2) = displacement(x, y);
                    w[si] = r2;
                }
                simd::recip_sqrt(w);
                potentials[ti] += FOUR_PI_INV * simd::dot(densities, w);
            }
        });
    }

    /// Hoists the full pair weight `w = 1/√r²` out of the RHS loop; the
    /// marginal cost of each extra RHS is one dot product over the shared
    /// weights. [`Laplace::p2p`] computes the identical weight buffer and
    /// reduction, so results are bit-identical per RHS.
    fn p2p_many(
        &self,
        targets: &[Point3],
        sources: &[Point3],
        densities: &[&[f64]],
        potentials: &mut [&mut [f64]],
    ) {
        assert_eq!(densities.len(), potentials.len(), "one potential vector per RHS");
        with_weight_buf(sources.len(), |w| {
            for (ti, &x) in targets.iter().enumerate() {
                for (si, &y) in sources.iter().enumerate() {
                    let (_, _, _, r2) = displacement(x, y);
                    w[si] = r2;
                }
                simd::recip_sqrt(w);
                for (dens, pot) in densities.iter().zip(potentials.iter_mut()) {
                    pot[ti] += FOUR_PI_INV * simd::dot(dens, w);
                }
            }
        });
    }

    /// Fused scalar loop sharing `1/r` and `1/r³` between the potential
    /// and the three gradient components.
    fn p2p_grad(
        &self,
        targets: &[Point3],
        sources: &[Point3],
        densities: &[f64],
        potentials: &mut [f64],
        gradients: &mut [f64],
    ) {
        debug_assert_eq!(densities.len(), sources.len());
        debug_assert_eq!(potentials.len(), targets.len());
        debug_assert_eq!(gradients.len(), 3 * targets.len());
        for (ti, &x) in targets.iter().enumerate() {
            let mut u = 0.0;
            let (mut gx, mut gy, mut gz) = (0.0, 0.0, 0.0);
            for (si, &y) in sources.iter().enumerate() {
                let (dx, dy, dz, r2) = displacement(x, y);
                if r2 == 0.0 {
                    continue;
                }
                let inv_r = 1.0 / r2.sqrt();
                let inv_r3 = inv_r / r2;
                let q = densities[si];
                u += q * inv_r;
                let s = q * inv_r3;
                gx -= dx * s;
                gy -= dy * s;
                gz -= dz * s;
            }
            potentials[ti] += FOUR_PI_INV * u;
            gradients[3 * ti] += FOUR_PI_INV * gx;
            gradients[3 * ti + 1] += FOUR_PI_INV * gy;
            gradients[3 * ti + 2] += FOUR_PI_INV * gz;
        }
    }

    /// Hoists the pair geometry (`dx,dy,dz,1/r,1/r³`; `1/r = 0` marks a
    /// coincident pair) out of the RHS loop; each RHS then runs the exact
    /// per-source arithmetic of [`Laplace::p2p_grad`], so results are
    /// bit-identical per RHS.
    fn p2p_grad_many(
        &self,
        targets: &[Point3],
        sources: &[Point3],
        densities: &[&[f64]],
        potentials: &mut [&mut [f64]],
        gradients: &mut [&mut [f64]],
    ) {
        assert_eq!(densities.len(), potentials.len(), "one potential vector per RHS");
        assert_eq!(densities.len(), gradients.len(), "one gradient vector per RHS");
        let ns = sources.len();
        let mut geo = vec![[0.0f64; 5]; ns]; // dx, dy, dz, inv_r, inv_r3
        for (ti, &x) in targets.iter().enumerate() {
            for (si, &y) in sources.iter().enumerate() {
                let (dx, dy, dz, r2) = displacement(x, y);
                if r2 == 0.0 {
                    geo[si][3] = 0.0;
                    continue;
                }
                let inv_r = 1.0 / r2.sqrt();
                geo[si] = [dx, dy, dz, inv_r, inv_r / r2];
            }
            for ((dens, pot), grad) in
                densities.iter().zip(potentials.iter_mut()).zip(gradients.iter_mut())
            {
                let mut u = 0.0;
                let (mut gx, mut gy, mut gz) = (0.0, 0.0, 0.0);
                for (si, g) in geo.iter().enumerate() {
                    let [dx, dy, dz, inv_r, inv_r3] = *g;
                    if inv_r == 0.0 {
                        continue;
                    }
                    let q = dens[si];
                    u += q * inv_r;
                    let s = q * inv_r3;
                    gx -= dx * s;
                    gy -= dy * s;
                    gz -= dz * s;
                }
                pot[ti] += FOUR_PI_INV * u;
                grad[3 * ti] += FOUR_PI_INV * gx;
                grad[3 * ti + 1] += FOUR_PI_INV * gy;
                grad[3 * ti + 2] += FOUR_PI_INV * gz;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pointwise_value() {
        let k = Laplace;
        let mut b = [0.0];
        k.eval([1.0, 0.0, 0.0], [0.0, 0.0, 0.0], &mut b);
        assert!((b[0] - FOUR_PI_INV).abs() < 1e-15);
        k.eval([0.0, 2.0, 0.0], [0.0, 0.0, 0.0], &mut b);
        assert!((b[0] - FOUR_PI_INV / 2.0).abs() < 1e-15);
    }

    #[test]
    fn self_interaction_is_zero() {
        let k = Laplace;
        let mut b = [1.0];
        k.eval([0.3, 0.4, 0.5], [0.3, 0.4, 0.5], &mut b);
        assert_eq!(b[0], 0.0);
    }

    #[test]
    fn gradient_known_value() {
        // u(x) = G(x, 0): ∇u at (r, 0, 0) is (−1/(4πr²), 0, 0).
        let k = Laplace;
        let mut g = [0.0; 3];
        k.eval_grad([2.0, 0.0, 0.0], [0.0; 3], &mut g);
        assert!((g[0] + FOUR_PI_INV / 4.0).abs() < 1e-15);
        assert!(g[1].abs() < 1e-15 && g[2].abs() < 1e-15);
    }

    #[test]
    fn p2p_grad_matches_eval_grad_sum() {
        let k = Laplace;
        let targets: Vec<Point3> =
            (0..4).map(|i| [i as f64 * 0.2, 0.3, -0.1 * i as f64]).collect();
        let sources: Vec<Point3> =
            (0..6).map(|i| [1.0 + 0.1 * i as f64, -0.2, 0.5]).collect();
        let dens: Vec<f64> = (0..6).map(|i| (i as f64).sin() + 0.2).collect();
        let mut pot = vec![0.0; 4];
        let mut grad = vec![0.0; 12];
        k.p2p_grad(&targets, &sources, &dens, &mut pot, &mut grad);
        let mut g = [0.0; 3];
        let mut b = [0.0];
        for (ti, &x) in targets.iter().enumerate() {
            let (mut eu, mut eg) = (0.0, [0.0; 3]);
            for (si, &y) in sources.iter().enumerate() {
                k.eval(x, y, &mut b);
                k.eval_grad(x, y, &mut g);
                eu += b[0] * dens[si];
                for d in 0..3 {
                    eg[d] += g[d] * dens[si];
                }
            }
            assert!((pot[ti] - eu).abs() < 1e-13);
            for d in 0..3 {
                assert!((grad[3 * ti + d] - eg[d]).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn harmonic_away_from_pole() {
        // Finite-difference Laplacian of u(x) = G(x, 0) vanishes off the pole.
        let k = Laplace;
        let h = 1e-4;
        let u = |p: Point3| {
            let mut b = [0.0];
            k.eval(p, [0.0, 0.0, 0.0], &mut b);
            b[0]
        };
        let c = [0.7, -0.4, 0.55];
        let mut lap = -6.0 * u(c);
        for d in 0..3 {
            let mut p = c;
            p[d] += h;
            lap += u(p);
            p[d] -= 2.0 * h;
            lap += u(p);
        }
        lap /= h * h;
        assert!(lap.abs() < 1e-4, "discrete Laplacian = {lap}");
    }

    #[test]
    fn p2p_matches_generic_path() {
        let k = Laplace;
        let targets: Vec<Point3> = (0..5)
            .map(|i| [i as f64 * 0.1, 0.2, -0.3 + i as f64 * 0.05])
            .collect();
        let sources: Vec<Point3> = (0..7)
            .map(|i| [1.0 + i as f64 * 0.2, -0.1 * i as f64, 0.4])
            .collect();
        let dens: Vec<f64> = (0..7).map(|i| (i as f64).cos()).collect();
        let mut fast = vec![0.0; 5];
        k.p2p(&targets, &sources, &dens, &mut fast);
        // Generic (eval-based) path from the trait default.
        let mut slow = vec![0.0; 5];
        struct Generic;
        impl Clone for Generic {
            fn clone(&self) -> Self {
                Generic
            }
        }
        impl Kernel for Generic {
            fn src_dim(&self) -> usize {
                1
            }
            fn trg_dim(&self) -> usize {
                1
            }
            fn name(&self) -> &str {
                "generic-laplace"
            }
            fn homogeneity(&self) -> Option<f64> {
                Some(-1.0)
            }
            fn flops_per_eval(&self) -> u64 {
                12
            }
            fn eval(&self, x: Point3, y: Point3, block: &mut [f64]) {
                Laplace.eval(x, y, block)
            }
        }
        Generic.p2p(&targets, &sources, &dens, &mut slow);
        for (a, b) in fast.iter().zip(&slow) {
            assert!((a - b).abs() < 1e-14);
        }
    }

    #[test]
    fn superposition_and_decay() {
        let k = Laplace;
        let src = [[0.0, 0.0, 0.0]];
        let mut u1 = vec![0.0];
        k.p2p(&[[10.0, 0.0, 0.0]], &src, &[2.0], &mut u1);
        let mut u2 = vec![0.0];
        k.p2p(&[[20.0, 0.0, 0.0]], &src, &[2.0], &mut u2);
        assert!((u1[0] / u2[0] - 2.0).abs() < 1e-12, "1/r decay");
    }
}
