//! The kernel-independence boundary: the [`Kernel`] trait.

use crate::Point3;

/// A fundamental solution `G(x, y)` of a second-order constant-coefficient
/// non-oscillatory elliptic PDE (the class the paper's method covers).
///
/// The FMM interacts with the PDE *only* through this trait: pairwise
/// evaluation ([`eval`](Kernel::eval)) and a fused particle-to-particle
/// accumulation ([`p2p`](Kernel::p2p)). Matrix-valued kernels (Stokes)
/// declare `SRC_DIM`/`TRG_DIM > 1` and fill a `TRG_DIM × SRC_DIM` block per
/// point pair.
///
/// Requirements inherited from the paper (§2): `G` satisfies the PDE away
/// from the pole, is smooth away from the singularity, and the underlying
/// interior/exterior Dirichlet problems are uniquely solvable — those
/// properties are what make the equivalent-density construction valid, and
/// they are the responsibility of the implementor.
pub trait Kernel: Clone + Send + Sync + 'static {
    /// Components of a source density (1 for scalar kernels, 3 for Stokes).
    const SRC_DIM: usize;
    /// Components of a target potential.
    const TRG_DIM: usize;
    /// Human-readable name used in reports.
    const NAME: &'static str;

    /// Degree `d` with `G(λ·r) = λ^d · G(r)` when the kernel is homogeneous
    /// (Laplace and Stokes: `−1`), or `None` (modified Laplace, whose
    /// screening length introduces a scale). Homogeneous kernels let the
    /// FMM precompute translation operators at one reference level and
    /// rescale; inhomogeneous ones get per-level operators.
    fn homogeneity(&self) -> Option<f64>;

    /// Exact flop count charged per `(target, source)` pair evaluation,
    /// including the accumulation into the potential. Square roots,
    /// divisions and exponentials count as one flop each (the convention
    /// used by the paper-era Gflop/s reporting).
    fn flops_per_eval(&self) -> u64;

    /// Evaluate the `TRG_DIM × SRC_DIM` kernel block for the pair `(x, y)`
    /// into `block` (row-major). A coincident pair (`|x − y| = 0`) must
    /// produce a zero block: the N-body sums of the paper exclude the
    /// self-interaction.
    fn eval(&self, x: Point3, y: Point3, block: &mut [f64]);

    /// Kernel-parameter fingerprint for cache keys: the bit patterns of
    /// every scalar parameter the translation operators depend on, folded
    /// into one word. Parameter-free kernels return 0 (the kernel *type*
    /// is pinned separately, so only same-type parameter collisions
    /// matter).
    fn id_bits(&self) -> u64 {
        0
    }

    /// Accumulate `u(x_i) += Σ_j G(x_i, y_j) φ_j` for all targets.
    ///
    /// `densities` has `SRC_DIM` interleaved components per source;
    /// `potentials` has `TRG_DIM` per target. Implementations override this
    /// with a fused loop — it is the `DownU` (dense interaction) microkernel
    /// and dominates the flop count at small `s`.
    fn p2p(
        &self,
        targets: &[Point3],
        sources: &[Point3],
        densities: &[f64],
        potentials: &mut [f64],
    ) {
        debug_assert_eq!(densities.len(), sources.len() * Self::SRC_DIM);
        debug_assert_eq!(potentials.len(), targets.len() * Self::TRG_DIM);
        let mut block = vec![0.0; Self::TRG_DIM * Self::SRC_DIM];
        for (ti, &x) in targets.iter().enumerate() {
            for (si, &y) in sources.iter().enumerate() {
                self.eval(x, y, &mut block);
                for a in 0..Self::TRG_DIM {
                    let mut acc = 0.0;
                    for b in 0..Self::SRC_DIM {
                        acc += block[a * Self::SRC_DIM + b] * densities[si * Self::SRC_DIM + b];
                    }
                    potentials[ti * Self::TRG_DIM + a] += acc;
                }
            }
        }
    }

    /// Multi-RHS [`p2p`](Kernel::p2p): accumulate the same target/source
    /// geometry against `k = densities.len()` independent density vectors
    /// into `k` potential vectors.
    ///
    /// **Bitwise contract:** `potentials[q]` must be bit-identical to what
    /// `self.p2p(targets, sources, densities[q], potentials[q])` would
    /// produce — overrides may hoist pair geometry (distances, `sqrt`,
    /// `exp`) out of the RHS loop (those values are deterministic IEEE
    /// functions of the points alone) but must replicate the per-RHS
    /// accumulation order of their `p2p` exactly. The default delegates
    /// per RHS.
    fn p2p_many(
        &self,
        targets: &[Point3],
        sources: &[Point3],
        densities: &[&[f64]],
        potentials: &mut [&mut [f64]],
    ) {
        assert_eq!(densities.len(), potentials.len(), "one potential vector per RHS");
        for (d, p) in densities.iter().zip(potentials.iter_mut()) {
            self.p2p(targets, sources, d, p);
        }
    }
}

/// Run `f` over a zeroed per-source weight buffer, stack-allocated when the
/// source box is small (the common U-list case — `max_pts_per_leaf`
/// defaults to 60) so the restructured `p2p` loops stay allocation-free.
#[inline]
pub(crate) fn with_weight_buf<R>(ns: usize, f: impl FnOnce(&mut [f64]) -> R) -> R {
    const STACK: usize = 128;
    if ns <= STACK {
        let mut buf = [0.0f64; STACK];
        f(&mut buf[..ns])
    } else {
        let mut buf = vec![0.0f64; ns];
        f(&mut buf)
    }
}

/// Squared distance plus the displacement, shared by all kernels.
#[inline(always)]
pub(crate) fn displacement(x: Point3, y: Point3) -> (f64, f64, f64, f64) {
    let dx = x[0] - y[0];
    let dy = x[1] - y[1];
    let dz = x[2] - y[2];
    (dx, dy, dz, dx * dx + dy * dy + dz * dz)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Laplace, LaplaceDipole, ModifiedLaplace, Stokes};

    /// `p2p_many` promises bitwise identity with k independent `p2p`
    /// calls — the property `eval_many` relies on. Exercised on every
    /// kernel's override, including a coincident target/source pair.
    fn check_p2p_many_bitwise<K: Kernel>(kernel: &K) {
        let nt = 7;
        let ns = 9;
        let k = 5;
        let targets: Vec<Point3> = (0..nt)
            .map(|i| {
                let t = i as f64;
                [(t * 0.31).sin(), (t * 0.17).cos() * 0.8, (t * 0.53).sin() * 0.6]
            })
            .collect();
        let mut sources: Vec<Point3> = (0..ns)
            .map(|i| {
                let t = i as f64 + 0.5;
                [(t * 0.23).cos(), (t * 0.41).sin() * 0.9, (t * 0.11).cos() * 0.7]
            })
            .collect();
        sources[4] = targets[2]; // coincident pair: the self-skip path
        let dens: Vec<Vec<f64>> = (0..k)
            .map(|q| {
                (0..ns * K::SRC_DIM)
                    .map(|i| ((i * 7 + q * 13) % 29) as f64 / 29.0 - 0.4)
                    .collect()
            })
            .collect();

        // Reference: k independent p2p calls into pre-seeded outputs.
        let seed: Vec<f64> = (0..nt * K::TRG_DIM).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut expect: Vec<Vec<f64>> = (0..k).map(|_| seed.clone()).collect();
        for q in 0..k {
            kernel.p2p(&targets, &sources, &dens[q], &mut expect[q]);
        }

        let mut got: Vec<Vec<f64>> = (0..k).map(|_| seed.clone()).collect();
        {
            let dens_refs: Vec<&[f64]> = dens.iter().map(Vec::as_slice).collect();
            let mut pot_refs: Vec<&mut [f64]> =
                got.iter_mut().map(Vec::as_mut_slice).collect();
            kernel.p2p_many(&targets, &sources, &dens_refs, &mut pot_refs);
        }
        for q in 0..k {
            assert_eq!(got[q], expect[q], "{} RHS {q} not bitwise equal", K::NAME);
        }
    }

    #[test]
    fn p2p_many_bitwise_all_kernels() {
        check_p2p_many_bitwise(&Laplace);
        check_p2p_many_bitwise(&ModifiedLaplace::new(1.3));
        check_p2p_many_bitwise(&Stokes::new(0.7));
        check_p2p_many_bitwise(&LaplaceDipole);
    }

    #[test]
    fn p2p_many_default_matches_loop() {
        // A kernel without an override goes through the default per-RHS
        // delegation.
        #[derive(Clone)]
        struct Generic;
        impl Kernel for Generic {
            const SRC_DIM: usize = 1;
            const TRG_DIM: usize = 1;
            const NAME: &'static str = "generic";
            fn homogeneity(&self) -> Option<f64> {
                Some(-1.0)
            }
            fn flops_per_eval(&self) -> u64 {
                12
            }
            fn eval(&self, x: Point3, y: Point3, block: &mut [f64]) {
                Laplace.eval(x, y, block)
            }
        }
        check_p2p_many_bitwise(&Generic);
    }

    #[test]
    fn id_bits_distinguish_parameters() {
        assert_eq!(Laplace.id_bits(), 0);
        assert_ne!(ModifiedLaplace::new(1.0).id_bits(), ModifiedLaplace::new(2.0).id_bits());
        assert_ne!(Stokes::new(1.0).id_bits(), Stokes::new(0.5).id_bits());
    }
}
