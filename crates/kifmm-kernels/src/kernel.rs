//! The kernel-independence boundary: the [`Kernel`] trait.

use crate::Point3;

/// A fundamental solution `G(x, y)` of a second-order constant-coefficient
/// non-oscillatory elliptic PDE (the class the paper's method covers).
///
/// The FMM interacts with the PDE *only* through this trait: pairwise
/// evaluation ([`eval`](Kernel::eval)) and a fused particle-to-particle
/// accumulation ([`p2p`](Kernel::p2p)). Matrix-valued kernels (Stokes)
/// declare `SRC_DIM`/`TRG_DIM > 1` and fill a `TRG_DIM × SRC_DIM` block per
/// point pair.
///
/// Requirements inherited from the paper (§2): `G` satisfies the PDE away
/// from the pole, is smooth away from the singularity, and the underlying
/// interior/exterior Dirichlet problems are uniquely solvable — those
/// properties are what make the equivalent-density construction valid, and
/// they are the responsibility of the implementor.
pub trait Kernel: Clone + Send + Sync + 'static {
    /// Components of a source density (1 for scalar kernels, 3 for Stokes).
    const SRC_DIM: usize;
    /// Components of a target potential.
    const TRG_DIM: usize;
    /// Human-readable name used in reports.
    const NAME: &'static str;

    /// Degree `d` with `G(λ·r) = λ^d · G(r)` when the kernel is homogeneous
    /// (Laplace and Stokes: `−1`), or `None` (modified Laplace, whose
    /// screening length introduces a scale). Homogeneous kernels let the
    /// FMM precompute translation operators at one reference level and
    /// rescale; inhomogeneous ones get per-level operators.
    fn homogeneity(&self) -> Option<f64>;

    /// Exact flop count charged per `(target, source)` pair evaluation,
    /// including the accumulation into the potential. Square roots,
    /// divisions and exponentials count as one flop each (the convention
    /// used by the paper-era Gflop/s reporting).
    fn flops_per_eval(&self) -> u64;

    /// Evaluate the `TRG_DIM × SRC_DIM` kernel block for the pair `(x, y)`
    /// into `block` (row-major). A coincident pair (`|x − y| = 0`) must
    /// produce a zero block: the N-body sums of the paper exclude the
    /// self-interaction.
    fn eval(&self, x: Point3, y: Point3, block: &mut [f64]);

    /// Accumulate `u(x_i) += Σ_j G(x_i, y_j) φ_j` for all targets.
    ///
    /// `densities` has `SRC_DIM` interleaved components per source;
    /// `potentials` has `TRG_DIM` per target. Implementations override this
    /// with a fused loop — it is the `DownU` (dense interaction) microkernel
    /// and dominates the flop count at small `s`.
    fn p2p(
        &self,
        targets: &[Point3],
        sources: &[Point3],
        densities: &[f64],
        potentials: &mut [f64],
    ) {
        debug_assert_eq!(densities.len(), sources.len() * Self::SRC_DIM);
        debug_assert_eq!(potentials.len(), targets.len() * Self::TRG_DIM);
        let mut block = vec![0.0; Self::TRG_DIM * Self::SRC_DIM];
        for (ti, &x) in targets.iter().enumerate() {
            for (si, &y) in sources.iter().enumerate() {
                self.eval(x, y, &mut block);
                for a in 0..Self::TRG_DIM {
                    let mut acc = 0.0;
                    for b in 0..Self::SRC_DIM {
                        acc += block[a * Self::SRC_DIM + b] * densities[si * Self::SRC_DIM + b];
                    }
                    potentials[ti * Self::TRG_DIM + a] += acc;
                }
            }
        }
    }
}

/// Squared distance plus the displacement, shared by all kernels.
#[inline(always)]
pub(crate) fn displacement(x: Point3, y: Point3) -> (f64, f64, f64, f64) {
    let dx = x[0] - y[0];
    let dy = x[1] - y[1];
    let dz = x[2] - y[2];
    (dx, dy, dz, dx * dx + dy * dy + dz * dz)
}
