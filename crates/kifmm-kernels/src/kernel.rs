//! The kernel-independence boundary: the [`Kernel`] trait.

use crate::Point3;

/// A fundamental solution `G(x, y)` of a second-order constant-coefficient
/// non-oscillatory elliptic PDE (the class the paper's method covers), or
/// more generally any smooth translation-invariant interaction kernel the
/// equivalent-density machinery can compress (e.g. the Gaussian of
/// kernel-matrix matvecs).
///
/// The FMM interacts with the PDE *only* through this trait: pairwise
/// evaluation ([`eval`](Kernel::eval)) and a fused particle-to-particle
/// accumulation ([`p2p`](Kernel::p2p)). Matrix-valued kernels (Stokes,
/// Kelvin) declare `src_dim`/`trg_dim > 1` and fill a `trg_dim × src_dim`
/// block per point pair. The dimensions are **runtime methods**, not
/// associated constants, so closure-backed kernels ([`crate::CustomKernel`])
/// with caller-chosen dimensions drive the identical pipeline — the
/// kernel-independence claim made executable.
///
/// Requirements inherited from the paper (§2): `G` is smooth away from the
/// singularity and its far field is low-rank enough for the equivalent
/// densities to represent — for PDE kernels this follows from unique
/// solvability of the underlying Dirichlet problems, and it is the
/// responsibility of the implementor.
pub trait Kernel: Clone + Send + Sync + 'static {
    /// Components of a source density (1 for scalar kernels, 3 for Stokes).
    fn src_dim(&self) -> usize;

    /// Components of a target potential.
    fn trg_dim(&self) -> usize;

    /// Human-readable name used in reports and folded (with
    /// [`id_bits`](Kernel::id_bits)) into plan-cache identity.
    fn name(&self) -> &str;

    /// Degree `d` with `G(λ·r) = λ^d · G(r)` when the kernel is homogeneous
    /// (Laplace and Stokes: `−1`), or `None` (modified Laplace and the
    /// Gaussian, whose length scales break homogeneity). Homogeneous
    /// kernels let the FMM precompute translation operators at one
    /// reference level and rescale; inhomogeneous ones get per-level
    /// operators.
    fn homogeneity(&self) -> Option<f64>;

    /// Exact flop count charged per `(target, source)` pair evaluation,
    /// including the accumulation into the potential. Square roots,
    /// divisions and exponentials count as one flop each (the convention
    /// used by the paper-era Gflop/s reporting).
    fn flops_per_eval(&self) -> u64;

    /// Flop count charged per pair for a **fused** potential + gradient
    /// accumulation ([`p2p_grad`](Kernel::p2p_grad)). The default models
    /// the generic path (one block eval plus three derivative components).
    fn flops_per_grad_eval(&self) -> u64 {
        4 * self.flops_per_eval()
    }

    /// Evaluate the `trg_dim × src_dim` kernel block for the pair `(x, y)`
    /// into `block` (row-major). A coincident pair (`|x − y| = 0`) must
    /// produce a zero block: the N-body sums of the paper exclude the
    /// self-interaction.
    fn eval(&self, x: Point3, y: Point3, block: &mut [f64]);

    /// Evaluate the target-gradient block `∇ₓG(x, y)` into `block`
    /// (row-major, `trg_dim·3` rows × `src_dim` columns): entry
    /// `[(t·3 + d)·src_dim + s] = ∂G[t, s]/∂x_d`. A coincident pair must
    /// produce a zero block, matching [`eval`](Kernel::eval).
    ///
    /// The default is a central difference of [`eval`](Kernel::eval) with
    /// a separation-scaled step — accurate to ~`h²` (≈1e-8 relative) and
    /// good enough for black-box closures; analytic kernels override.
    fn eval_grad(&self, x: Point3, y: Point3, block: &mut [f64]) {
        central_difference_grad(self, x, y, block);
    }

    /// Kernel-parameter fingerprint for cache keys: the bit patterns of
    /// every scalar parameter the translation operators depend on, folded
    /// into one word. Parameter-free kernels return 0 (the kernel *name*
    /// is hashed into cache keys separately, so only same-name parameter
    /// collisions matter).
    fn id_bits(&self) -> u64 {
        0
    }

    /// Accumulate `u(x_i) += Σ_j G(x_i, y_j) φ_j` for all targets.
    ///
    /// `densities` has `src_dim` interleaved components per source;
    /// `potentials` has `trg_dim` per target. Implementations override this
    /// with a fused loop — it is the `DownU` (dense interaction) microkernel
    /// and dominates the flop count at small `s`.
    fn p2p(
        &self,
        targets: &[Point3],
        sources: &[Point3],
        densities: &[f64],
        potentials: &mut [f64],
    ) {
        let (sd, td) = (self.src_dim(), self.trg_dim());
        debug_assert_eq!(densities.len(), sources.len() * sd);
        debug_assert_eq!(potentials.len(), targets.len() * td);
        let mut block = vec![0.0; td * sd];
        for (ti, &x) in targets.iter().enumerate() {
            for (si, &y) in sources.iter().enumerate() {
                self.eval(x, y, &mut block);
                for a in 0..td {
                    let mut acc = 0.0;
                    for b in 0..sd {
                        acc += block[a * sd + b] * densities[si * sd + b];
                    }
                    potentials[ti * td + a] += acc;
                }
            }
        }
    }

    /// Multi-RHS [`p2p`](Kernel::p2p): accumulate the same target/source
    /// geometry against `k = densities.len()` independent density vectors
    /// into `k` potential vectors.
    ///
    /// **Bitwise contract:** `potentials[q]` must be bit-identical to what
    /// `self.p2p(targets, sources, densities[q], potentials[q])` would
    /// produce — overrides may hoist pair geometry (distances, `sqrt`,
    /// `exp`) out of the RHS loop (those values are deterministic IEEE
    /// functions of the points alone) but must replicate the per-RHS
    /// accumulation order of their `p2p` exactly. The default delegates
    /// per RHS.
    fn p2p_many(
        &self,
        targets: &[Point3],
        sources: &[Point3],
        densities: &[&[f64]],
        potentials: &mut [&mut [f64]],
    ) {
        assert_eq!(densities.len(), potentials.len(), "one potential vector per RHS");
        for (d, p) in densities.iter().zip(potentials.iter_mut()) {
            self.p2p(targets, sources, d, p);
        }
    }

    /// Fused potential **and** gradient accumulation:
    /// `u(x_i) += Σ_j G(x_i, y_j) φ_j` into `potentials` (`trg_dim` per
    /// target) and `∇u(x_i) += Σ_j ∇ₓG(x_i, y_j) φ_j` into `gradients`
    /// (`trg_dim·3` per target, component-major: entry
    /// `[i·trg_dim·3 + t·3 + d] = ∂u_t/∂x_d`).
    ///
    /// The default evaluates [`eval`](Kernel::eval) and
    /// [`eval_grad`](Kernel::eval_grad) per pair; analytic kernels override
    /// with a fused loop sharing the pair geometry.
    fn p2p_grad(
        &self,
        targets: &[Point3],
        sources: &[Point3],
        densities: &[f64],
        potentials: &mut [f64],
        gradients: &mut [f64],
    ) {
        let (sd, td) = (self.src_dim(), self.trg_dim());
        debug_assert_eq!(densities.len(), sources.len() * sd);
        debug_assert_eq!(potentials.len(), targets.len() * td);
        debug_assert_eq!(gradients.len(), targets.len() * td * 3);
        let mut block = vec![0.0; td * sd];
        let mut gblock = vec![0.0; td * 3 * sd];
        for (ti, &x) in targets.iter().enumerate() {
            for (si, &y) in sources.iter().enumerate() {
                self.eval(x, y, &mut block);
                self.eval_grad(x, y, &mut gblock);
                for a in 0..td {
                    let mut acc = 0.0;
                    for b in 0..sd {
                        acc += block[a * sd + b] * densities[si * sd + b];
                    }
                    potentials[ti * td + a] += acc;
                }
                for row in 0..td * 3 {
                    let mut acc = 0.0;
                    for b in 0..sd {
                        acc += gblock[row * sd + b] * densities[si * sd + b];
                    }
                    gradients[ti * td * 3 + row] += acc;
                }
            }
        }
    }

    /// Multi-RHS [`p2p_grad`](Kernel::p2p_grad), under the same bitwise
    /// contract as [`p2p_many`](Kernel::p2p_many): `potentials[q]` /
    /// `gradients[q]` must match what `p2p_grad` on RHS `q` alone would
    /// produce. The default delegates per RHS.
    fn p2p_grad_many(
        &self,
        targets: &[Point3],
        sources: &[Point3],
        densities: &[&[f64]],
        potentials: &mut [&mut [f64]],
        gradients: &mut [&mut [f64]],
    ) {
        assert_eq!(densities.len(), potentials.len(), "one potential vector per RHS");
        assert_eq!(densities.len(), gradients.len(), "one gradient vector per RHS");
        for ((d, p), g) in densities.iter().zip(potentials.iter_mut()).zip(gradients.iter_mut())
        {
            self.p2p_grad(targets, sources, d, p, g);
        }
    }
}

/// Central-difference `∇ₓG` fallback shared by the trait default and
/// [`crate::CustomKernel`]: step `h` scaled to the pair separation
/// (`h = r·6e-6 ≈ ∛ε·r` balances truncation against cancellation), calling
/// only [`Kernel::eval`].
pub fn central_difference_grad<K: Kernel + ?Sized>(
    kernel: &K,
    x: Point3,
    y: Point3,
    block: &mut [f64],
) {
    let (sd, td) = (kernel.src_dim(), kernel.trg_dim());
    debug_assert_eq!(block.len(), td * 3 * sd);
    let (_, _, _, r2) = displacement(x, y);
    if r2 == 0.0 {
        block.fill(0.0);
        return;
    }
    let h = r2.sqrt() * 6e-6;
    let mut plus = vec![0.0; td * sd];
    let mut minus = vec![0.0; td * sd];
    for d in 0..3 {
        let mut xp = x;
        xp[d] += h;
        let mut xm = x;
        xm[d] -= h;
        kernel.eval(xp, y, &mut plus);
        kernel.eval(xm, y, &mut minus);
        let inv2h = 1.0 / (2.0 * h);
        for t in 0..td {
            for s in 0..sd {
                block[(t * 3 + d) * sd + s] = (plus[t * sd + s] - minus[t * sd + s]) * inv2h;
            }
        }
    }
}

/// Run `f` over a zeroed per-source weight buffer, stack-allocated when the
/// source box is small (the common U-list case — `max_pts_per_leaf`
/// defaults to 60) so the restructured `p2p` loops stay allocation-free.
#[inline]
pub(crate) fn with_weight_buf<R>(ns: usize, f: impl FnOnce(&mut [f64]) -> R) -> R {
    const STACK: usize = 128;
    if ns <= STACK {
        let mut buf = [0.0f64; STACK];
        f(&mut buf[..ns])
    } else {
        let mut buf = vec![0.0f64; ns];
        f(&mut buf)
    }
}

/// Squared distance plus the displacement, shared by all kernels.
#[inline(always)]
pub(crate) fn displacement(x: Point3, y: Point3) -> (f64, f64, f64, f64) {
    let dx = x[0] - y[0];
    let dy = x[1] - y[1];
    let dz = x[2] - y[2];
    (dx, dy, dz, dx * dx + dy * dy + dz * dz)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Gaussian, Kelvin, Laplace, LaplaceDipole, ModifiedLaplace, Stokes};

    /// `p2p_many` promises bitwise identity with k independent `p2p`
    /// calls — the property `eval_many` relies on. Exercised on every
    /// kernel's override, including a coincident target/source pair.
    fn check_p2p_many_bitwise<K: Kernel>(kernel: &K) {
        let nt = 7;
        let ns = 9;
        let k = 5;
        let (sd, td) = (kernel.src_dim(), kernel.trg_dim());
        let targets: Vec<Point3> = (0..nt)
            .map(|i| {
                let t = i as f64;
                [(t * 0.31).sin(), (t * 0.17).cos() * 0.8, (t * 0.53).sin() * 0.6]
            })
            .collect();
        let mut sources: Vec<Point3> = (0..ns)
            .map(|i| {
                let t = i as f64 + 0.5;
                [(t * 0.23).cos(), (t * 0.41).sin() * 0.9, (t * 0.11).cos() * 0.7]
            })
            .collect();
        sources[4] = targets[2]; // coincident pair: the self-skip path
        let dens: Vec<Vec<f64>> = (0..k)
            .map(|q| {
                (0..ns * sd)
                    .map(|i| ((i * 7 + q * 13) % 29) as f64 / 29.0 - 0.4)
                    .collect()
            })
            .collect();

        // Reference: k independent p2p calls into pre-seeded outputs.
        let seed: Vec<f64> = (0..nt * td).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut expect: Vec<Vec<f64>> = (0..k).map(|_| seed.clone()).collect();
        for q in 0..k {
            kernel.p2p(&targets, &sources, &dens[q], &mut expect[q]);
        }

        let mut got: Vec<Vec<f64>> = (0..k).map(|_| seed.clone()).collect();
        {
            let dens_refs: Vec<&[f64]> = dens.iter().map(Vec::as_slice).collect();
            let mut pot_refs: Vec<&mut [f64]> =
                got.iter_mut().map(Vec::as_mut_slice).collect();
            kernel.p2p_many(&targets, &sources, &dens_refs, &mut pot_refs);
        }
        for q in 0..k {
            assert_eq!(got[q], expect[q], "{} RHS {q} not bitwise equal", kernel.name());
        }

        // The same promise for the fused gradient accumulators.
        let gseed: Vec<f64> = (0..nt * td * 3).map(|i| (i as f64 * 0.3).cos()).collect();
        let mut pexp: Vec<Vec<f64>> = (0..k).map(|_| seed.clone()).collect();
        let mut gexp: Vec<Vec<f64>> = (0..k).map(|_| gseed.clone()).collect();
        for q in 0..k {
            kernel.p2p_grad(&targets, &sources, &dens[q], &mut pexp[q], &mut gexp[q]);
        }
        let mut pgot: Vec<Vec<f64>> = (0..k).map(|_| seed.clone()).collect();
        let mut ggot: Vec<Vec<f64>> = (0..k).map(|_| gseed.clone()).collect();
        {
            let dens_refs: Vec<&[f64]> = dens.iter().map(Vec::as_slice).collect();
            let mut pot_refs: Vec<&mut [f64]> =
                pgot.iter_mut().map(Vec::as_mut_slice).collect();
            let mut grad_refs: Vec<&mut [f64]> =
                ggot.iter_mut().map(Vec::as_mut_slice).collect();
            kernel.p2p_grad_many(&targets, &sources, &dens_refs, &mut pot_refs, &mut grad_refs);
        }
        for q in 0..k {
            assert_eq!(pgot[q], pexp[q], "{} grad-pot RHS {q}", kernel.name());
            assert_eq!(ggot[q], gexp[q], "{} grad RHS {q}", kernel.name());
        }
    }

    #[test]
    fn p2p_many_bitwise_all_kernels() {
        check_p2p_many_bitwise(&Laplace);
        check_p2p_many_bitwise(&ModifiedLaplace::new(1.3));
        check_p2p_many_bitwise(&Stokes::new(0.7));
        check_p2p_many_bitwise(&LaplaceDipole);
        check_p2p_many_bitwise(&Kelvin::new(1.1, 0.3));
        check_p2p_many_bitwise(&Gaussian::new(0.8));
    }

    #[test]
    fn p2p_many_default_matches_loop() {
        // A kernel without an override goes through the default per-RHS
        // delegation.
        #[derive(Clone)]
        struct Generic;
        impl Kernel for Generic {
            fn src_dim(&self) -> usize {
                1
            }
            fn trg_dim(&self) -> usize {
                1
            }
            fn name(&self) -> &str {
                "generic"
            }
            fn homogeneity(&self) -> Option<f64> {
                Some(-1.0)
            }
            fn flops_per_eval(&self) -> u64 {
                12
            }
            fn eval(&self, x: Point3, y: Point3, block: &mut [f64]) {
                Laplace.eval(x, y, block)
            }
        }
        check_p2p_many_bitwise(&Generic);
    }

    /// The analytic `eval_grad` overrides must agree with the generic
    /// central-difference fallback (which only calls `eval`).
    fn check_grad_against_central_difference<K: Kernel>(kernel: &K, tol: f64) {
        let (sd, td) = (kernel.src_dim(), kernel.trg_dim());
        let x = [0.62, -0.35, 0.48];
        let y = [-0.21, 0.4, -0.17];
        let mut analytic = vec![0.0; td * 3 * sd];
        kernel.eval_grad(x, y, &mut analytic);
        let mut fd = vec![0.0; td * 3 * sd];
        central_difference_grad(kernel, x, y, &mut fd);
        let scale: f64 = analytic.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1e-30);
        for (i, (a, b)) in analytic.iter().zip(&fd).enumerate() {
            assert!(
                (a - b).abs() <= tol * scale,
                "{} grad entry {i}: analytic {a} vs central-diff {b}",
                kernel.name()
            );
        }
    }

    #[test]
    fn analytic_gradients_match_central_difference() {
        check_grad_against_central_difference(&Laplace, 1e-8);
        check_grad_against_central_difference(&ModifiedLaplace::new(1.6), 1e-8);
        check_grad_against_central_difference(&Stokes::new(0.9), 1e-8);
        check_grad_against_central_difference(&Kelvin::new(1.3, 0.28), 1e-8);
        check_grad_against_central_difference(&Gaussian::new(0.7), 1e-8);
        // LaplaceDipole has no analytic override: the check is then the
        // fallback against itself and pins the zero-at-coincidence contract.
        check_grad_against_central_difference(&LaplaceDipole, 1e-12);
    }

    #[test]
    fn grad_zero_at_coincident_pair() {
        let mut b9 = vec![1.0; 3];
        Laplace.eval_grad([0.3; 3], [0.3; 3], &mut b9);
        assert!(b9.iter().all(|&v| v == 0.0));
        let mut b = vec![1.0; 27];
        Stokes::new(1.0).eval_grad([0.3; 3], [0.3; 3], &mut b);
        assert!(b.iter().all(|&v| v == 0.0));
        let mut b = vec![1.0; 27];
        Kelvin::new(1.0, 0.3).eval_grad([0.3; 3], [0.3; 3], &mut b);
        assert!(b.iter().all(|&v| v == 0.0));
        let mut b = vec![1.0; 3];
        Gaussian::new(0.5).eval_grad([0.3; 3], [0.3; 3], &mut b);
        assert!(b.iter().all(|&v| v == 0.0));
        let mut b = vec![1.0; 3];
        ModifiedLaplace::new(1.0).eval_grad([0.3; 3], [0.3; 3], &mut b);
        assert!(b.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn id_bits_distinguish_parameters() {
        assert_eq!(Laplace.id_bits(), 0);
        assert_ne!(ModifiedLaplace::new(1.0).id_bits(), ModifiedLaplace::new(2.0).id_bits());
        assert_ne!(Stokes::new(1.0).id_bits(), Stokes::new(0.5).id_bits());
        assert_ne!(Kelvin::new(1.0, 0.3).id_bits(), Kelvin::new(1.0, 0.25).id_bits());
        assert_ne!(Gaussian::new(0.5).id_bits(), Gaussian::new(0.6).id_bits());
    }
}
