//! The 3-D Stokes single-layer (Stokeslet) kernel
//! `G(x, y) = (1/(8πμ)) (I/r + r⊗r/r³)`.
//!
//! Fundamental solution of the velocity in `−μΔu + ∇p = 0, ∇·u = 0`
//! (paper Appendix A) — the kernel behind the viscous-flow and
//! fluid–structure problems that motivate the paper, including the 2.1
//! billion-unknown runs of Table 4.3 (each particle carries 3 force
//! components and receives 3 velocity components, hence "unknowns = 3N").

use crate::kernel::{displacement, Kernel};
use crate::Point3;

/// The Stokeslet: 3×3 matrix-valued kernel mapping point forces to fluid
/// velocities.
#[derive(Clone, Copy, Debug)]
pub struct Stokes {
    /// Dynamic viscosity `μ > 0`.
    pub mu: f64,
}

impl Stokes {
    /// Stokeslet with viscosity `μ`.
    pub fn new(mu: f64) -> Self {
        assert!(mu > 0.0, "viscosity must be positive");
        Stokes { mu }
    }

    #[inline]
    fn prefactor(&self) -> f64 {
        1.0 / (8.0 * std::f64::consts::PI * self.mu)
    }
}

impl Default for Stokes {
    fn default() -> Self {
        Stokes::new(1.0)
    }
}

impl Kernel for Stokes {
    const SRC_DIM: usize = 3;
    const TRG_DIM: usize = 3;
    const NAME: &'static str = "Stokes";

    fn homogeneity(&self) -> Option<f64> {
        Some(-1.0)
    }

    /// Displacement + r² (8), rsqrt + 1/r³ (4), 9 tensor entries (~12),
    /// 3×3 matvec accumulate (18) ⇒ 42 per pair (≈ the 3.5× Laplace work
    /// ratio visible in the paper's per-kernel cycle counts).
    fn flops_per_eval(&self) -> u64 {
        42
    }

    #[inline]
    fn eval(&self, x: Point3, y: Point3, block: &mut [f64]) {
        debug_assert_eq!(block.len(), 9);
        let (dx, dy, dz, r2) = displacement(x, y);
        if r2 == 0.0 {
            block.fill(0.0);
            return;
        }
        let r = r2.sqrt();
        let c = self.prefactor();
        let inv_r = c / r;
        let inv_r3 = c / (r2 * r);
        block[0] = inv_r + dx * dx * inv_r3;
        block[1] = dx * dy * inv_r3;
        block[2] = dx * dz * inv_r3;
        block[3] = block[1];
        block[4] = inv_r + dy * dy * inv_r3;
        block[5] = dy * dz * inv_r3;
        block[6] = block[2];
        block[7] = block[5];
        block[8] = inv_r + dz * dz * inv_r3;
    }

    fn p2p(
        &self,
        targets: &[Point3],
        sources: &[Point3],
        densities: &[f64],
        potentials: &mut [f64],
    ) {
        debug_assert_eq!(densities.len(), 3 * sources.len());
        debug_assert_eq!(potentials.len(), 3 * targets.len());
        let c = self.prefactor();
        for (ti, &x) in targets.iter().enumerate() {
            let (mut u0, mut u1, mut u2) = (0.0, 0.0, 0.0);
            for (si, &y) in sources.iter().enumerate() {
                let (dx, dy, dz, r2) = displacement(x, y);
                if r2 == 0.0 {
                    continue;
                }
                let r = r2.sqrt();
                let inv_r = 1.0 / r;
                let inv_r3 = inv_r / r2;
                let f0 = densities[3 * si];
                let f1 = densities[3 * si + 1];
                let f2 = densities[3 * si + 2];
                let rdotf = dx * f0 + dy * f1 + dz * f2;
                let s = rdotf * inv_r3;
                u0 += f0 * inv_r + dx * s;
                u1 += f1 * inv_r + dy * s;
                u2 += f2 * inv_r + dz * s;
            }
            potentials[3 * ti] += c * u0;
            potentials[3 * ti + 1] += c * u1;
            potentials[3 * ti + 2] += c * u2;
        }
    }

    /// The operator tables depend on `μ`.
    fn id_bits(&self) -> u64 {
        self.mu.to_bits()
    }

    /// Hoists the pair geometry (`dx,dy,dz,1/r,1/r³`; `1/r = 0` marks a
    /// coincident pair) out of the RHS loop; each RHS then runs the exact
    /// per-source arithmetic of [`Stokes::p2p`], so results are
    /// bit-identical per RHS.
    fn p2p_many(
        &self,
        targets: &[Point3],
        sources: &[Point3],
        densities: &[&[f64]],
        potentials: &mut [&mut [f64]],
    ) {
        assert_eq!(densities.len(), potentials.len(), "one potential vector per RHS");
        let c = self.prefactor();
        let ns = sources.len();
        let mut geo = vec![[0.0f64; 5]; ns]; // dx, dy, dz, inv_r, inv_r3
        for (ti, &x) in targets.iter().enumerate() {
            for (si, &y) in sources.iter().enumerate() {
                let (dx, dy, dz, r2) = displacement(x, y);
                if r2 == 0.0 {
                    geo[si][3] = 0.0;
                    continue;
                }
                let r = r2.sqrt();
                let inv_r = 1.0 / r;
                let inv_r3 = inv_r / r2;
                geo[si] = [dx, dy, dz, inv_r, inv_r3];
            }
            for (dens, pot) in densities.iter().zip(potentials.iter_mut()) {
                let (mut u0, mut u1, mut u2) = (0.0, 0.0, 0.0);
                for (si, g) in geo.iter().enumerate() {
                    let [dx, dy, dz, inv_r, inv_r3] = *g;
                    if inv_r == 0.0 {
                        continue;
                    }
                    let f0 = dens[3 * si];
                    let f1 = dens[3 * si + 1];
                    let f2 = dens[3 * si + 2];
                    let rdotf = dx * f0 + dy * f1 + dz * f2;
                    let s = rdotf * inv_r3;
                    u0 += f0 * inv_r + dx * s;
                    u1 += f1 * inv_r + dy * s;
                    u2 += f2 * inv_r + dz * s;
                }
                pot[3 * ti] += c * u0;
                pot[3 * ti + 1] += c * u1;
                pot[3 * ti + 2] += c * u2;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn velocity(k: &Stokes, x: Point3, y: Point3, f: [f64; 3]) -> [f64; 3] {
        let mut b = [0.0; 9];
        k.eval(x, y, &mut b);
        [
            b[0] * f[0] + b[1] * f[1] + b[2] * f[2],
            b[3] * f[0] + b[4] * f[1] + b[5] * f[2],
            b[6] * f[0] + b[7] * f[1] + b[8] * f[2],
        ]
    }

    #[test]
    fn block_symmetric() {
        let k = Stokes::default();
        let mut b = [0.0; 9];
        k.eval([0.3, 0.7, -0.2], [1.0, 0.1, 0.4], &mut b);
        for i in 0..3 {
            for j in 0..3 {
                assert!((b[3 * i + j] - b[3 * j + i]).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn known_axis_value() {
        // On the x-axis at distance r with force e_x:
        // u_x = (1/(8πμ)) (1/r + r²/r³) = 2/(8πμ r).
        let k = Stokes::new(2.0);
        let u = velocity(&k, [3.0, 0.0, 0.0], [0.0; 3], [1.0, 0.0, 0.0]);
        let expect = 2.0 / (8.0 * std::f64::consts::PI * 2.0 * 3.0);
        assert!((u[0] - expect).abs() < 1e-15);
        assert!(u[1].abs() < 1e-15 && u[2].abs() < 1e-15);
    }

    #[test]
    fn divergence_free() {
        // ∇·u = 0 away from the pole for any force direction.
        let k = Stokes::default();
        let f = [0.3, -1.1, 0.7];
        let h = 1e-5;
        let c = [0.8, 0.5, -0.6];
        let mut div = 0.0;
        for d in 0..3 {
            let mut p = c;
            p[d] += h;
            let up = velocity(&k, p, [0.0; 3], f)[d];
            p[d] -= 2.0 * h;
            let um = velocity(&k, p, [0.0; 3], f)[d];
            div += (up - um) / (2.0 * h);
        }
        assert!(div.abs() < 1e-8, "div u = {div}");
    }

    #[test]
    fn self_interaction_zero_block() {
        let k = Stokes::default();
        let mut b = [1.0; 9];
        k.eval([0.1, 0.2, 0.3], [0.1, 0.2, 0.3], &mut b);
        assert!(b.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn p2p_matches_eval_sum() {
        let k = Stokes::new(0.7);
        let targets = [[0.0, 0.0, 0.0], [0.2, -0.4, 0.9]];
        let sources = [[1.0, 0.2, 0.0], [0.1, 1.5, -0.3], [-0.7, 0.0, 1.1]];
        let dens = [0.5, -1.0, 0.25, 2.0, 0.0, -0.5, 1.0, 1.0, 1.0];
        let mut fast = vec![0.0; 6];
        k.p2p(&targets, &sources, &dens, &mut fast);
        let mut block = [0.0; 9];
        for (ti, &x) in targets.iter().enumerate() {
            let mut expect = [0.0; 3];
            for (si, &y) in sources.iter().enumerate() {
                k.eval(x, y, &mut block);
                for a in 0..3 {
                    for bcomp in 0..3 {
                        expect[a] += block[3 * a + bcomp] * dens[3 * si + bcomp];
                    }
                }
            }
            for a in 0..3 {
                assert!((fast[3 * ti + a] - expect[a]).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn viscosity_scales_inversely() {
        let u1 = velocity(&Stokes::new(1.0), [2.0, 1.0, 0.0], [0.0; 3], [1.0, 0.0, 0.0]);
        let u4 = velocity(&Stokes::new(4.0), [2.0, 1.0, 0.0], [0.0; 3], [1.0, 0.0, 0.0]);
        for a in 0..3 {
            assert!((u1[a] - 4.0 * u4[a]).abs() < 1e-15);
        }
    }
}
