//! Fundamental-solution kernels for the kernel-independent FMM.
//!
//! Appendix A of the SC'03 paper lists the elliptic PDEs and single-layer
//! kernels the method is evaluated on; this crate implements all of them:
//!
//! | PDE | kernel |
//! |---|---|
//! | `−Δu = 0` | [`Laplace`]: `1/(4πr)` |
//! | `αu − Δu = 0` | [`ModifiedLaplace`]: `e^{−λr}/(4πr)`, `λ = √α` |
//! | `−μΔu + ∇p = 0, ∇·u = 0` | [`Stokes`]: `(1/(8πμ))(I/r + r⊗r/r³)` |
//!
//! The FMM core is generic over the [`Kernel`] trait: it only ever calls
//! [`Kernel::eval`] / [`Kernel::p2p`], which is exactly the paper's notion
//! of kernel independence — no analytic expansions anywhere.
//!
//! Every kernel declares an exact per-evaluation flop count so the bench
//! harness can report the counted Gflop/s figures of Tables 4.1–4.3.

pub mod assemble;
pub mod kernel;
pub mod laplace;
pub mod laplace_dipole;
pub mod modified_laplace;
pub mod stokes;

pub use assemble::assemble;
pub use kernel::Kernel;
pub use laplace::Laplace;
pub use laplace_dipole::LaplaceDipole;
pub use modified_laplace::ModifiedLaplace;
pub use stokes::Stokes;

/// Convenience alias: a 3-D point.
pub type Point3 = [f64; 3];
