//! Fundamental-solution kernels for the kernel-independent FMM.
//!
//! Appendix A of the SC'03 paper lists the elliptic PDEs and single-layer
//! kernels the method is evaluated on; this crate implements all of them,
//! plus the wider kernel family the equivalent-density machinery covers:
//!
//! | PDE / setting | kernel |
//! |---|---|
//! | `−Δu = 0` | [`Laplace`]: `1/(4πr)` |
//! | `αu − Δu = 0` | [`ModifiedLaplace`]: `e^{−λr}/(4πr)`, `λ = √α` |
//! | `−μΔu + ∇p = 0, ∇·u = 0` | [`Stokes`]: `(1/(8πμ))(I/r + r⊗r/r³)` |
//! | Navier elasticity | [`Kelvin`]: `(1/(16πμ(1−ν)))((3−4ν)I/r + r⊗r/r³)` |
//! | GP / kriging covariance | [`Gaussian`]: `e^{−r²/(2σ²)}` |
//! | user black box | [`CustomKernel`]: any closure, runtime dims |
//!
//! The FMM core is generic over the [`Kernel`] trait: it only ever calls
//! [`Kernel::eval`] / [`Kernel::p2p`] (and their `_grad` variants for
//! first-class gradient outputs), which is exactly the paper's notion of
//! kernel independence — no analytic expansions anywhere. Dimensions are
//! runtime values, so closure-supplied kernels with caller-chosen block
//! shapes run the identical pipeline; [`DynKernel`]/[`BoxedKernel`] add
//! an object-safe layer for type-erased registries.
//!
//! Every kernel declares an exact per-evaluation flop count so the bench
//! harness can report the counted Gflop/s figures of Tables 4.1–4.3.

pub mod assemble;
pub mod custom;
pub mod gaussian;
pub mod kelvin;
pub mod kernel;
pub mod laplace;
pub mod laplace_dipole;
pub mod modified_laplace;
pub mod stokes;

pub use assemble::{assemble, assemble_grad};
pub use custom::{BoxedKernel, CustomKernel, DynKernel, KernelFn};
pub use gaussian::Gaussian;
pub use kelvin::Kelvin;
pub use kernel::{central_difference_grad, Kernel};
pub use laplace::Laplace;
pub use laplace_dipole::LaplaceDipole;
pub use modified_laplace::ModifiedLaplace;
pub use stokes::Stokes;

/// Convenience alias: a 3-D point.
pub type Point3 = [f64; 3];
