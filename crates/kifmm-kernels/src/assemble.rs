//! Kernel matrix assembly.
//!
//! Builds the dense interaction matrix between two point sets — the
//! discretized integral operators of equations (2.1)–(2.5) that the FMM
//! inverts or applies when constructing its translation operators.

use crate::kernel::Kernel;
use crate::Point3;
use kifmm_linalg::Mat;

/// Assemble the `(targets·TRG_DIM) × (sources·SRC_DIM)` kernel matrix
/// `K[(i,a), (j,b)] = G(x_i, y_j)[a, b]`.
pub fn assemble<K: Kernel>(kernel: &K, targets: &[Point3], sources: &[Point3]) -> Mat {
    let m = targets.len() * K::TRG_DIM;
    let n = sources.len() * K::SRC_DIM;
    let mut out = Mat::zeros(m, n);
    let mut block = vec![0.0; K::TRG_DIM * K::SRC_DIM];
    for (i, &x) in targets.iter().enumerate() {
        for (j, &y) in sources.iter().enumerate() {
            kernel.eval(x, y, &mut block);
            for a in 0..K::TRG_DIM {
                let row = i * K::TRG_DIM + a;
                for b in 0..K::SRC_DIM {
                    out[(row, j * K::SRC_DIM + b)] = block[a * K::SRC_DIM + b];
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Laplace, Stokes};

    #[test]
    fn laplace_matrix_shape_and_values() {
        let t = [[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]];
        let s = [[0.0, 2.0, 0.0], [0.0, 0.0, 3.0], [4.0, 0.0, 0.0]];
        let m = assemble(&Laplace, &t, &s);
        assert_eq!(m.shape(), (2, 3));
        let c = 1.0 / (4.0 * std::f64::consts::PI);
        assert!((m[(0, 0)] - c / 2.0).abs() < 1e-15);
        assert!((m[(0, 1)] - c / 3.0).abs() < 1e-15);
        assert!((m[(1, 2)] - c / 3.0).abs() < 1e-15);
    }

    #[test]
    fn matvec_equals_p2p() {
        let k = Stokes::default();
        let t: Vec<Point3> = (0..4).map(|i| [0.1 * i as f64, 0.0, 0.3]).collect();
        let s: Vec<Point3> = (0..3).map(|i| [1.0, 0.2 * i as f64, -0.5]).collect();
        let dens: Vec<f64> = (0..9).map(|i| (i as f64 * 0.3).sin()).collect();
        let m = assemble(&k, &t, &s);
        let via_matrix = m.matvec(&dens);
        let mut via_p2p = vec![0.0; 12];
        k.p2p(&t, &s, &dens, &mut via_p2p);
        for (a, b) in via_matrix.iter().zip(&via_p2p) {
            assert!((a - b).abs() < 1e-13);
        }
    }
}
