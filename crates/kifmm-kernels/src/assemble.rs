//! Kernel matrix assembly.
//!
//! Builds the dense interaction matrix between two point sets — the
//! discretized integral operators of equations (2.1)–(2.5) that the FMM
//! inverts or applies when constructing its translation operators.

use crate::kernel::Kernel;
use crate::Point3;
use kifmm_linalg::Mat;

/// Assemble the `(targets·trg_dim) × (sources·src_dim)` kernel matrix
/// `K[(i,a), (j,b)] = G(x_i, y_j)[a, b]`.
pub fn assemble<K: Kernel>(kernel: &K, targets: &[Point3], sources: &[Point3]) -> Mat {
    let (sd, td) = (kernel.src_dim(), kernel.trg_dim());
    let m = targets.len() * td;
    let n = sources.len() * sd;
    let mut out = Mat::zeros(m, n);
    let mut block = vec![0.0; td * sd];
    for (i, &x) in targets.iter().enumerate() {
        for (j, &y) in sources.iter().enumerate() {
            kernel.eval(x, y, &mut block);
            for a in 0..td {
                let row = i * td + a;
                for b in 0..sd {
                    out[(row, j * sd + b)] = block[a * sd + b];
                }
            }
        }
    }
    out
}

/// Assemble the `(targets·trg_dim·3) × (sources·src_dim)` gradient matrix
/// `∇K[(i,t,d), (j,b)] = ∂G(x_i, y_j)[t, b]/∂x_d` — the dense reference
/// for the FMM's gradient outputs.
pub fn assemble_grad<K: Kernel>(kernel: &K, targets: &[Point3], sources: &[Point3]) -> Mat {
    let (sd, td) = (kernel.src_dim(), kernel.trg_dim());
    let gd = td * 3;
    let m = targets.len() * gd;
    let n = sources.len() * sd;
    let mut out = Mat::zeros(m, n);
    let mut block = vec![0.0; gd * sd];
    for (i, &x) in targets.iter().enumerate() {
        for (j, &y) in sources.iter().enumerate() {
            kernel.eval_grad(x, y, &mut block);
            for a in 0..gd {
                let row = i * gd + a;
                for b in 0..sd {
                    out[(row, j * sd + b)] = block[a * sd + b];
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Laplace, Stokes};

    #[test]
    fn laplace_matrix_shape_and_values() {
        let t = [[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]];
        let s = [[0.0, 2.0, 0.0], [0.0, 0.0, 3.0], [4.0, 0.0, 0.0]];
        let m = assemble(&Laplace, &t, &s);
        assert_eq!(m.shape(), (2, 3));
        let c = 1.0 / (4.0 * std::f64::consts::PI);
        assert!((m[(0, 0)] - c / 2.0).abs() < 1e-15);
        assert!((m[(0, 1)] - c / 3.0).abs() < 1e-15);
        assert!((m[(1, 2)] - c / 3.0).abs() < 1e-15);
    }

    #[test]
    fn matvec_equals_p2p() {
        let k = Stokes::default();
        let t: Vec<Point3> = (0..4).map(|i| [0.1 * i as f64, 0.0, 0.3]).collect();
        let s: Vec<Point3> = (0..3).map(|i| [1.0, 0.2 * i as f64, -0.5]).collect();
        let dens: Vec<f64> = (0..9).map(|i| (i as f64 * 0.3).sin()).collect();
        let m = assemble(&k, &t, &s);
        let via_matrix = m.matvec(&dens);
        let mut via_p2p = vec![0.0; 12];
        k.p2p(&t, &s, &dens, &mut via_p2p);
        for (a, b) in via_matrix.iter().zip(&via_p2p) {
            assert!((a - b).abs() < 1e-13);
        }
    }

    #[test]
    fn grad_matvec_equals_p2p_grad() {
        let k = Stokes::new(0.8);
        let t: Vec<Point3> = (0..3).map(|i| [0.1 * i as f64, 0.2, 0.3]).collect();
        let s: Vec<Point3> = (0..4).map(|i| [1.0, 0.25 * i as f64, -0.4]).collect();
        let dens: Vec<f64> = (0..12).map(|i| (i as f64 * 0.7).cos()).collect();
        let m = assemble_grad(&k, &t, &s);
        assert_eq!(m.shape(), (3 * 9, 12));
        let via_matrix = m.matvec(&dens);
        let mut pot = vec![0.0; 9];
        let mut via_p2p = vec![0.0; 27];
        k.p2p_grad(&t, &s, &dens, &mut pot, &mut via_p2p);
        for (a, b) in via_matrix.iter().zip(&via_p2p) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }
}
