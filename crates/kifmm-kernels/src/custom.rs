//! The runtime kernel layer: object-safe [`DynKernel`] and the
//! closure-backed [`CustomKernel`].
//!
//! The paper's kernel-independence claim is that the FMM touches the PDE
//! only through kernel evaluations. This module makes the claim
//! executable: a user hands the library a black-box closure
//! `(x, y, block)` with *runtime* source/target dimensions and the full
//! pipeline — equivalent densities, FFT/SVD M2L, the distributed driver —
//! runs unchanged, because nothing in the pipeline ever sees a
//! compile-time dimension or an analytic expansion.

use crate::kernel::{central_difference_grad, Kernel};
use crate::Point3;
use std::sync::Arc;

/// Pairwise evaluation closure: fills the row-major kernel (or gradient)
/// block for `(x, y)`.
pub type KernelFn = Arc<dyn Fn(Point3, Point3, &mut [f64]) + Send + Sync>;

/// Object-safe mirror of [`Kernel`]: every method takes `&self` and no
/// generics, so `dyn DynKernel` works as a trait object (heterogeneous
/// kernel registries, FFI boundaries). Blanket-implemented for every
/// [`Kernel`]; wrap an `Arc<dyn DynKernel>` in [`BoxedKernel`] to feed a
/// type-erased kernel back into the generic pipeline.
pub trait DynKernel: Send + Sync {
    /// See [`Kernel::src_dim`].
    fn src_dim(&self) -> usize;
    /// See [`Kernel::trg_dim`].
    fn trg_dim(&self) -> usize;
    /// See [`Kernel::name`].
    fn name(&self) -> &str;
    /// See [`Kernel::homogeneity`].
    fn homogeneity(&self) -> Option<f64>;
    /// See [`Kernel::flops_per_eval`].
    fn flops_per_eval(&self) -> u64;
    /// See [`Kernel::flops_per_grad_eval`].
    fn flops_per_grad_eval(&self) -> u64;
    /// See [`Kernel::id_bits`].
    fn id_bits(&self) -> u64;
    /// See [`Kernel::eval`].
    fn eval(&self, x: Point3, y: Point3, block: &mut [f64]);
    /// See [`Kernel::eval_grad`].
    fn eval_grad(&self, x: Point3, y: Point3, block: &mut [f64]);
}

impl<K: Kernel> DynKernel for K {
    fn src_dim(&self) -> usize {
        Kernel::src_dim(self)
    }
    fn trg_dim(&self) -> usize {
        Kernel::trg_dim(self)
    }
    fn name(&self) -> &str {
        Kernel::name(self)
    }
    fn homogeneity(&self) -> Option<f64> {
        Kernel::homogeneity(self)
    }
    fn flops_per_eval(&self) -> u64 {
        Kernel::flops_per_eval(self)
    }
    fn flops_per_grad_eval(&self) -> u64 {
        Kernel::flops_per_grad_eval(self)
    }
    fn id_bits(&self) -> u64 {
        Kernel::id_bits(self)
    }
    fn eval(&self, x: Point3, y: Point3, block: &mut [f64]) {
        Kernel::eval(self, x, y, block)
    }
    fn eval_grad(&self, x: Point3, y: Point3, block: &mut [f64]) {
        Kernel::eval_grad(self, x, y, block)
    }
}

/// A type-erased kernel re-entering the generic pipeline: `Clone` via the
/// shared `Arc`, with the generic (eval-based) `p2p` defaults.
#[derive(Clone)]
pub struct BoxedKernel(pub Arc<dyn DynKernel>);

impl Kernel for BoxedKernel {
    fn src_dim(&self) -> usize {
        self.0.src_dim()
    }
    fn trg_dim(&self) -> usize {
        self.0.trg_dim()
    }
    fn name(&self) -> &str {
        self.0.name()
    }
    fn homogeneity(&self) -> Option<f64> {
        self.0.homogeneity()
    }
    fn flops_per_eval(&self) -> u64 {
        self.0.flops_per_eval()
    }
    fn flops_per_grad_eval(&self) -> u64 {
        self.0.flops_per_grad_eval()
    }
    fn id_bits(&self) -> u64 {
        self.0.id_bits()
    }
    fn eval(&self, x: Point3, y: Point3, block: &mut [f64]) {
        self.0.eval(x, y, block)
    }
    fn eval_grad(&self, x: Point3, y: Point3, block: &mut [f64]) {
        self.0.eval_grad(x, y, block)
    }
}

/// A user-supplied black-box kernel: pairwise closure + runtime
/// dimensions + an identity tag. Drives the *entire* FMM (serial, pooled,
/// distributed) through the generic `p2p` defaults.
///
/// ```
/// use kifmm_kernels::{CustomKernel, Kernel};
/// let inv_r = CustomKernel::new("my-inv-r", 1, 1, Some(-1.0), |x, y, block| {
///     let r2: f64 =
///         (0..3).map(|d| (x[d] - y[d]) * (x[d] - y[d])).sum();
///     block[0] = if r2 == 0.0 { 0.0 } else { 1.0 / r2.sqrt() };
/// });
/// let mut b = [0.0];
/// inv_r.eval([2.0, 0.0, 0.0], [0.0; 3], &mut b);
/// assert_eq!(b[0], 0.5);
/// ```
///
/// The `tag` is the kernel's cache identity (hashed into plan-cache keys
/// together with [`id_bits`](Kernel::id_bits)): give different closures
/// different tags, or cached plans may alias. Without
/// [`with_grad`](CustomKernel::with_grad), gradients fall back to the
/// central difference of the closure (~1e-8 relative).
#[derive(Clone)]
pub struct CustomKernel {
    src_dim: usize,
    trg_dim: usize,
    tag: Arc<str>,
    homogeneity: Option<f64>,
    flops: u64,
    grad_flops: u64,
    eval_fn: KernelFn,
    grad_fn: Option<KernelFn>,
}

impl CustomKernel {
    /// Closure kernel with the given identity `tag`, runtime block shape
    /// `trg_dim × src_dim`, and homogeneity degree (`None` ⇒ per-level
    /// operator tables, like ModifiedLaplace/Gaussian).
    pub fn new(
        tag: &str,
        src_dim: usize,
        trg_dim: usize,
        homogeneity: Option<f64>,
        eval_fn: impl Fn(Point3, Point3, &mut [f64]) + Send + Sync + 'static,
    ) -> Self {
        assert!(src_dim > 0 && trg_dim > 0, "kernel block must be non-empty");
        assert!(!tag.is_empty(), "kernel tag must be non-empty");
        let flops = (10 + 2 * src_dim as u64) * trg_dim as u64;
        CustomKernel {
            src_dim,
            trg_dim,
            tag: Arc::from(tag),
            homogeneity,
            flops,
            grad_flops: 4 * flops,
            eval_fn: Arc::new(eval_fn),
            grad_fn: None,
        }
    }

    /// Attach an analytic gradient closure filling the
    /// `trg_dim·3 × src_dim` block of [`Kernel::eval_grad`]; without it,
    /// gradients use the central-difference fallback.
    pub fn with_grad(
        mut self,
        grad_fn: impl Fn(Point3, Point3, &mut [f64]) + Send + Sync + 'static,
    ) -> Self {
        self.grad_fn = Some(Arc::new(grad_fn));
        self
    }

    /// Override the per-pair flop charges used in Gflop/s reporting
    /// (the constructor installs a generic estimate).
    pub fn with_flops(mut self, per_eval: u64, per_grad_eval: u64) -> Self {
        self.flops = per_eval;
        self.grad_flops = per_grad_eval;
        self
    }
}

impl Kernel for CustomKernel {
    fn src_dim(&self) -> usize {
        self.src_dim
    }

    fn trg_dim(&self) -> usize {
        self.trg_dim
    }

    fn name(&self) -> &str {
        &self.tag
    }

    fn homogeneity(&self) -> Option<f64> {
        self.homogeneity
    }

    fn flops_per_eval(&self) -> u64 {
        self.flops
    }

    fn flops_per_grad_eval(&self) -> u64 {
        self.grad_flops
    }

    /// FNV-1a of the tag: two closures with different tags never share
    /// cached operator tables even though both are "CustomKernel".
    fn id_bits(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for &b in self.tag.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    fn eval(&self, x: Point3, y: Point3, block: &mut [f64]) {
        (self.eval_fn)(x, y, block)
    }

    fn eval_grad(&self, x: Point3, y: Point3, block: &mut [f64]) {
        match &self.grad_fn {
            Some(g) => g(x, y, block),
            None => central_difference_grad(self, x, y, block),
        }
    }
}

#[cfg(test)]
mod tests {
    // `Kernel` and `DynKernel` share method names by design; with both
    // traits in scope (this module defines DynKernel) calls use
    // fully-qualified syntax.
    use super::*;
    use crate::Laplace;

    fn shadow_laplace() -> CustomKernel {
        CustomKernel::new("shadow-laplace", 1, 1, Some(-1.0), |x, y, block| {
            Kernel::eval(&Laplace, x, y, block)
        })
    }

    #[test]
    fn closure_matches_native_pointwise() {
        let c = shadow_laplace();
        let (mut a, mut b) = ([0.0], [0.0]);
        Kernel::eval(&c, [0.3, -0.7, 0.2], [1.0, 0.4, -0.1], &mut a);
        Kernel::eval(&Laplace, [0.3, -0.7, 0.2], [1.0, 0.4, -0.1], &mut b);
        assert_eq!(a[0], b[0]);
    }

    #[test]
    fn generic_p2p_matches_native_sum() {
        let c = shadow_laplace();
        let targets: Vec<Point3> = (0..5).map(|i| [0.1 * i as f64, 0.2, 0.0]).collect();
        let sources: Vec<Point3> = (0..6).map(|i| [1.0, 0.3 * i as f64, 0.5]).collect();
        let dens: Vec<f64> = (0..6).map(|i| i as f64 - 2.5).collect();
        let mut via_custom = vec![0.0; 5];
        c.p2p(&targets, &sources, &dens, &mut via_custom);
        let mut via_native = vec![0.0; 5];
        Laplace.p2p(&targets, &sources, &dens, &mut via_native);
        for (a, b) in via_custom.iter().zip(&via_native) {
            assert!((a - b).abs() < 1e-14 * b.abs().max(1.0));
        }
    }

    #[test]
    fn central_difference_grad_close_to_native() {
        let c = shadow_laplace();
        let (mut fd, mut exact) = ([0.0; 3], [0.0; 3]);
        Kernel::eval_grad(&c, [0.8, -0.3, 0.5], [0.0; 3], &mut fd);
        Kernel::eval_grad(&Laplace, [0.8, -0.3, 0.5], [0.0; 3], &mut exact);
        for d in 0..3 {
            assert!((fd[d] - exact[d]).abs() < 1e-8 * exact[d].abs().max(1e-3));
        }
    }

    #[test]
    fn analytic_grad_closure_is_used() {
        let c = shadow_laplace()
            .with_grad(|x, y, block| Kernel::eval_grad(&Laplace, x, y, block));
        let (mut a, mut b) = ([0.0; 3], [0.0; 3]);
        Kernel::eval_grad(&c, [0.8, -0.3, 0.5], [0.1, 0.1, 0.1], &mut a);
        Kernel::eval_grad(&Laplace, [0.8, -0.3, 0.5], [0.1, 0.1, 0.1], &mut b);
        assert_eq!(a, b, "grad closure must be exact, not differenced");
    }

    #[test]
    fn tags_give_distinct_identities() {
        let a = CustomKernel::new("k-a", 1, 1, None, |_, _, b| b[0] = 0.0);
        let b = CustomKernel::new("k-b", 1, 1, None, |_, _, b| b[0] = 0.0);
        assert_ne!(Kernel::id_bits(&a), Kernel::id_bits(&b));
        assert_eq!(Kernel::name(&a), "k-a");
    }

    #[test]
    fn boxed_kernel_round_trips() {
        let erased: Arc<dyn DynKernel> = Arc::new(Laplace);
        let k = BoxedKernel(erased);
        assert_eq!(Kernel::src_dim(&k), 1);
        assert_eq!(Kernel::name(&k), "Laplace");
        let mut b = [0.0];
        Kernel::eval(&k, [1.0, 0.0, 0.0], [0.0; 3], &mut b);
        let mut expect = [0.0];
        Kernel::eval(&Laplace, [1.0, 0.0, 0.0], [0.0; 3], &mut expect);
        assert_eq!(b[0], expect[0]);
    }

    #[test]
    fn rectangular_runtime_dims() {
        // A 2×1 closure kernel: two output components per scalar source.
        let k = CustomKernel::new("pair-out", 1, 2, Some(-1.0), |x, y, block| {
            let mut b = [0.0];
            Kernel::eval(&Laplace, x, y, &mut b);
            block[0] = b[0];
            block[1] = 2.0 * b[0];
        });
        assert_eq!((Kernel::src_dim(&k), Kernel::trg_dim(&k)), (1, 2));
        let mut pot = vec![0.0; 2];
        k.p2p(&[[1.0, 0.0, 0.0]], &[[0.0; 3]], &[3.0], &mut pot);
        assert!((pot[1] - 2.0 * pot[0]).abs() < 1e-15);
    }
}
