//! The Laplace dipole (double-layer-type) kernel
//! `G(x, y)·μ = (r·μ)/(4π|r|³)`, `r = x − y`.
//!
//! Sources carry vector dipole moments (3 components), targets receive a
//! scalar potential — the kernel of double-layer boundary integral
//! formulations. It is *not* one of the paper's three evaluation kernels;
//! it is included to stress the kernel-independence claim on a kernel
//! with faster (1/r²) decay, anisotropy, and rectangular (1×3) blocks.
//! The far field of a dipole cloud carries no monopole moment, so the
//! dipole-valued equivalent densities of the KIFMM represent it.

use crate::kernel::{displacement, Kernel};
use crate::Point3;

const FOUR_PI_INV: f64 = 1.0 / (4.0 * std::f64::consts::PI);

/// Dipole kernel of the 3-D Laplacian: gradient of the single layer with
/// respect to the source point.
#[derive(Clone, Copy, Debug, Default)]
pub struct LaplaceDipole;

impl Kernel for LaplaceDipole {
    fn src_dim(&self) -> usize {
        3
    }

    fn trg_dim(&self) -> usize {
        1
    }

    fn name(&self) -> &str {
        "LaplaceDipole"
    }

    /// `G(λr) = λ r/(λ³ r³) = λ⁻² G(r)`.
    fn homogeneity(&self) -> Option<f64> {
        Some(-2.0)
    }

    /// Displacement + r² (8), rsqrt + r³ recip (3), 3 components (3),
    /// dot-accumulate (6) ⇒ 20.
    fn flops_per_eval(&self) -> u64 {
        20
    }

    #[inline]
    fn eval(&self, x: Point3, y: Point3, block: &mut [f64]) {
        debug_assert_eq!(block.len(), 3);
        let (dx, dy, dz, r2) = displacement(x, y);
        if r2 == 0.0 {
            block.fill(0.0);
            return;
        }
        let inv_r3 = FOUR_PI_INV / (r2 * r2.sqrt());
        block[0] = dx * inv_r3;
        block[1] = dy * inv_r3;
        block[2] = dz * inv_r3;
    }

    fn p2p(
        &self,
        targets: &[Point3],
        sources: &[Point3],
        densities: &[f64],
        potentials: &mut [f64],
    ) {
        debug_assert_eq!(densities.len(), 3 * sources.len());
        debug_assert_eq!(potentials.len(), targets.len());
        for (ti, &x) in targets.iter().enumerate() {
            let mut acc = 0.0;
            for (si, &y) in sources.iter().enumerate() {
                let (dx, dy, dz, r2) = displacement(x, y);
                if r2 == 0.0 {
                    continue;
                }
                let inv_r3 = 1.0 / (r2 * r2.sqrt());
                acc += (dx * densities[3 * si]
                    + dy * densities[3 * si + 1]
                    + dz * densities[3 * si + 2])
                    * inv_r3;
            }
            potentials[ti] += FOUR_PI_INV * acc;
        }
    }

    /// Hoists `dx,dy,dz,1/r³` (`1/r³ = 0` marks a coincident pair) out of
    /// the RHS loop; each RHS then runs the exact per-source arithmetic of
    /// [`LaplaceDipole::p2p`], so results are bit-identical per RHS.
    fn p2p_many(
        &self,
        targets: &[Point3],
        sources: &[Point3],
        densities: &[&[f64]],
        potentials: &mut [&mut [f64]],
    ) {
        assert_eq!(densities.len(), potentials.len(), "one potential vector per RHS");
        let ns = sources.len();
        let mut geo = vec![[0.0f64; 4]; ns]; // dx, dy, dz, inv_r3
        for (ti, &x) in targets.iter().enumerate() {
            for (si, &y) in sources.iter().enumerate() {
                let (dx, dy, dz, r2) = displacement(x, y);
                geo[si][3] = 0.0;
                if r2 > 0.0 {
                    geo[si] = [dx, dy, dz, 1.0 / (r2 * r2.sqrt())];
                }
            }
            for (dens, pot) in densities.iter().zip(potentials.iter_mut()) {
                let mut acc = 0.0;
                for (si, g) in geo.iter().enumerate() {
                    let [dx, dy, dz, inv_r3] = *g;
                    if inv_r3 == 0.0 {
                        continue;
                    }
                    acc += (dx * dens[3 * si] + dy * dens[3 * si + 1] + dz * dens[3 * si + 2])
                        * inv_r3;
                }
                pot[ti] += FOUR_PI_INV * acc;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_gradient_of_single_layer() {
        // G_dipole(x,y)·μ = −∇_y G_single(x,y) · μ = (x−y)·μ/(4π r³),
        // checked against a finite difference of the single layer.
        let k = LaplaceDipole;
        let x = [0.7, -0.2, 0.5];
        let y = [0.1, 0.3, -0.4];
        let mu = [0.3, -1.1, 0.8];
        let mut b = [0.0; 3];
        k.eval(x, y, &mut b);
        let val = b[0] * mu[0] + b[1] * mu[1] + b[2] * mu[2];
        let single = |y: Point3| {
            let (_, _, _, r2) = crate::kernel::displacement(x, y);
            FOUR_PI_INV / r2.sqrt()
        };
        let h = 1e-6;
        let mut fd = 0.0;
        for d in 0..3 {
            let mut yp = y;
            yp[d] += h;
            let mut ym = y;
            ym[d] -= h;
            fd += -(single(yp) - single(ym)) / (2.0 * h) * mu[d] * -1.0;
        }
        // −∇_y (1/4πr) = +r̂/(4πr²)… sign bookkeeping: compare magnitudes
        // through the direct formula instead.
        let r = [x[0] - y[0], x[1] - y[1], x[2] - y[2]];
        let rn2 = r[0] * r[0] + r[1] * r[1] + r[2] * r[2];
        let expect =
            (r[0] * mu[0] + r[1] * mu[1] + r[2] * mu[2]) * FOUR_PI_INV / (rn2 * rn2.sqrt());
        assert!((val - expect).abs() < 1e-14);
        assert!((fd.abs() - expect.abs()).abs() < 1e-7, "fd {fd} vs {expect}");
    }

    #[test]
    fn harmonic_away_from_pole() {
        let k = LaplaceDipole;
        let mu = [1.0, -0.5, 0.25];
        let u = |p: Point3| {
            let mut b = [0.0; 3];
            k.eval(p, [0.0; 3], &mut b);
            b[0] * mu[0] + b[1] * mu[1] + b[2] * mu[2]
        };
        let c = [0.6, 0.5, -0.7];
        let h = 1e-4;
        let mut lap = -6.0 * u(c);
        for d in 0..3 {
            let mut p = c;
            p[d] += h;
            lap += u(p);
            p[d] -= 2.0 * h;
            lap += u(p);
        }
        lap /= h * h;
        assert!(lap.abs() < 1e-3, "discrete Laplacian {lap}");
    }

    #[test]
    fn decays_like_inverse_square() {
        let k = LaplaceDipole;
        let mut near = [0.0; 3];
        let mut far = [0.0; 3];
        k.eval([2.0, 0.0, 0.0], [0.0; 3], &mut near);
        k.eval([4.0, 0.0, 0.0], [0.0; 3], &mut far);
        assert!((near[0] / far[0] - 4.0).abs() < 1e-12, "1/r² decay");
    }

    #[test]
    fn p2p_matches_eval() {
        let k = LaplaceDipole;
        let t = [[0.0, 0.0, 0.0], [1.0, 1.0, 1.0]];
        let s = [[2.0, 0.0, 0.0], [0.0, -2.0, 1.0]];
        let dens = [0.5, -1.0, 2.0, 1.0, 0.0, -0.5];
        let mut fast = vec![0.0; 2];
        k.p2p(&t, &s, &dens, &mut fast);
        let mut block = [0.0; 3];
        for (ti, &x) in t.iter().enumerate() {
            let mut expect = 0.0;
            for (si, &y) in s.iter().enumerate() {
                k.eval(x, y, &mut block);
                for c in 0..3 {
                    expect += block[c] * dens[3 * si + c];
                }
            }
            assert!((fast[ti] - expect).abs() < 1e-14);
        }
    }

    #[test]
    fn self_interaction_zero() {
        let k = LaplaceDipole;
        let mut b = [1.0; 3];
        k.eval([0.5; 3], [0.5; 3], &mut b);
        assert!(b.iter().all(|&v| v == 0.0));
    }
}
