//! The 3-D Kelvin (elastostatics) kernel
//! `U(x, y) = (1/(16πμ(1−ν))) ((3−4ν) I/r + r⊗r/r³)`.
//!
//! Fundamental solution of the Navier (linear isotropic elasticity)
//! equations `μΔu + μ/(1−2ν) ∇(∇·u) = 0` — the displacement at `x` due to
//! a point force at `y` in an infinite elastic medium with shear modulus
//! `μ` and Poisson ratio `ν`. Structurally a Stokeslet with the factor
//! `3−4ν` on the isotropic term (Stokes is the incompressible limit
//! `ν → 1/2` up to the `1/(2μ)` prefactor), so the same equivalent-density
//! machinery applies: homogeneous of degree −1, 3×3 blocks.

use crate::kernel::{displacement, Kernel};
use crate::Point3;

/// The Kelvin solution: 3×3 matrix-valued kernel mapping point forces to
/// elastic displacements.
#[derive(Clone, Copy, Debug)]
pub struct Kelvin {
    /// Shear modulus `μ > 0`.
    pub mu: f64,
    /// Poisson ratio `ν ∈ [0, 1/2)` (the incompressible limit `ν = 1/2`
    /// degenerates to Stokes flow).
    pub nu: f64,
}

impl Kelvin {
    /// Kelvin kernel with shear modulus `μ` and Poisson ratio `ν`.
    pub fn new(mu: f64, nu: f64) -> Self {
        assert!(mu > 0.0, "shear modulus must be positive");
        assert!((0.0..0.5).contains(&nu), "Poisson ratio must lie in [0, 1/2)");
        Kelvin { mu, nu }
    }

    #[inline]
    fn prefactor(&self) -> f64 {
        1.0 / (16.0 * std::f64::consts::PI * self.mu * (1.0 - self.nu))
    }

    /// The `3−4ν` weight of the isotropic `I/r` term.
    #[inline]
    fn a(&self) -> f64 {
        3.0 - 4.0 * self.nu
    }
}

impl Default for Kelvin {
    /// Steel-like `ν = 0.3` at unit shear modulus.
    fn default() -> Self {
        Kelvin::new(1.0, 0.3)
    }
}

impl Kernel for Kelvin {
    fn src_dim(&self) -> usize {
        3
    }

    fn trg_dim(&self) -> usize {
        3
    }

    fn name(&self) -> &str {
        "Kelvin"
    }

    fn homogeneity(&self) -> Option<f64> {
        Some(-1.0)
    }

    /// Same shape as Stokes (42) plus the `3−4ν` weighting ⇒ 43.
    fn flops_per_eval(&self) -> u64 {
        43
    }

    /// Same shape as the Stokes fused pair (97) plus the weighted
    /// isotropic term ⇒ 98.
    fn flops_per_grad_eval(&self) -> u64 {
        98
    }

    /// The operator tables depend on `μ` and `ν`.
    fn id_bits(&self) -> u64 {
        self.mu.to_bits() ^ self.nu.to_bits().rotate_left(17)
    }

    #[inline]
    fn eval(&self, x: Point3, y: Point3, block: &mut [f64]) {
        debug_assert_eq!(block.len(), 9);
        let (dx, dy, dz, r2) = displacement(x, y);
        if r2 == 0.0 {
            block.fill(0.0);
            return;
        }
        let r = r2.sqrt();
        let c = self.prefactor();
        let iso = c * self.a() / r;
        let inv_r3 = c / (r2 * r);
        block[0] = iso + dx * dx * inv_r3;
        block[1] = dx * dy * inv_r3;
        block[2] = dx * dz * inv_r3;
        block[3] = block[1];
        block[4] = iso + dy * dy * inv_r3;
        block[5] = dy * dz * inv_r3;
        block[6] = block[2];
        block[7] = block[5];
        block[8] = iso + dz * dz * inv_r3;
    }

    /// `∂U_ij/∂x_k = C(−(3−4ν) δ_ij r_k/r³ + (δ_ik r_j + δ_jk r_i)/r³
    /// − 3 r_i r_j r_k/r⁵)`, `r = x − y`. Rows are `(i·3 + k)`, columns `j`.
    fn eval_grad(&self, x: Point3, y: Point3, block: &mut [f64]) {
        debug_assert_eq!(block.len(), 27);
        let (dx, dy, dz, r2) = displacement(x, y);
        if r2 == 0.0 {
            block.fill(0.0);
            return;
        }
        let r = r2.sqrt();
        let c = self.prefactor();
        let a = self.a();
        let inv_r3 = c / (r2 * r);
        let inv_r5x3 = 3.0 * inv_r3 / r2;
        let rv = [dx, dy, dz];
        for i in 0..3 {
            for k in 0..3 {
                for j in 0..3 {
                    let mut v = -inv_r5x3 * rv[i] * rv[j] * rv[k];
                    if i == j {
                        v -= a * inv_r3 * rv[k];
                    }
                    if i == k {
                        v += inv_r3 * rv[j];
                    }
                    if j == k {
                        v += inv_r3 * rv[i];
                    }
                    block[(i * 3 + k) * 3 + j] = v;
                }
            }
        }
    }

    fn p2p(
        &self,
        targets: &[Point3],
        sources: &[Point3],
        densities: &[f64],
        potentials: &mut [f64],
    ) {
        debug_assert_eq!(densities.len(), 3 * sources.len());
        debug_assert_eq!(potentials.len(), 3 * targets.len());
        let c = self.prefactor();
        let a = self.a();
        for (ti, &x) in targets.iter().enumerate() {
            let (mut u0, mut u1, mut u2) = (0.0, 0.0, 0.0);
            for (si, &y) in sources.iter().enumerate() {
                let (dx, dy, dz, r2) = displacement(x, y);
                if r2 == 0.0 {
                    continue;
                }
                let r = r2.sqrt();
                let inv_r = 1.0 / r;
                let inv_r3 = inv_r / r2;
                let f0 = densities[3 * si];
                let f1 = densities[3 * si + 1];
                let f2 = densities[3 * si + 2];
                let rdotf = dx * f0 + dy * f1 + dz * f2;
                let iso = a * inv_r;
                let s = rdotf * inv_r3;
                u0 += f0 * iso + dx * s;
                u1 += f1 * iso + dy * s;
                u2 += f2 * iso + dz * s;
            }
            potentials[3 * ti] += c * u0;
            potentials[3 * ti + 1] += c * u1;
            potentials[3 * ti + 2] += c * u2;
        }
    }

    /// Hoists the pair geometry (`dx,dy,dz,(3−4ν)/r,1/r³`; iso `= 0` marks
    /// a coincident pair) out of the RHS loop; each RHS then runs the
    /// exact per-source arithmetic of [`Kelvin::p2p`], so results are
    /// bit-identical per RHS.
    fn p2p_many(
        &self,
        targets: &[Point3],
        sources: &[Point3],
        densities: &[&[f64]],
        potentials: &mut [&mut [f64]],
    ) {
        assert_eq!(densities.len(), potentials.len(), "one potential vector per RHS");
        let c = self.prefactor();
        let a = self.a();
        let ns = sources.len();
        let mut geo = vec![[0.0f64; 5]; ns]; // dx, dy, dz, (3−4ν)/r, inv_r3
        for (ti, &x) in targets.iter().enumerate() {
            for (si, &y) in sources.iter().enumerate() {
                let (dx, dy, dz, r2) = displacement(x, y);
                if r2 == 0.0 {
                    geo[si][3] = 0.0;
                    continue;
                }
                let r = r2.sqrt();
                let inv_r = 1.0 / r;
                geo[si] = [dx, dy, dz, a * inv_r, inv_r / r2];
            }
            for (dens, pot) in densities.iter().zip(potentials.iter_mut()) {
                let (mut u0, mut u1, mut u2) = (0.0, 0.0, 0.0);
                for (si, g) in geo.iter().enumerate() {
                    let [dx, dy, dz, iso, inv_r3] = *g;
                    if iso == 0.0 {
                        continue;
                    }
                    let f0 = dens[3 * si];
                    let f1 = dens[3 * si + 1];
                    let f2 = dens[3 * si + 2];
                    let rdotf = dx * f0 + dy * f1 + dz * f2;
                    let s = rdotf * inv_r3;
                    u0 += f0 * iso + dx * s;
                    u1 += f1 * iso + dy * s;
                    u2 += f2 * iso + dz * s;
                }
                pot[3 * ti] += c * u0;
                pot[3 * ti + 1] += c * u1;
                pot[3 * ti + 2] += c * u2;
            }
        }
    }

    /// Fused displacement + displacement-gradient loop sharing `1/r`,
    /// `1/r³`, `1/r⁵` and `r·f` per pair.
    fn p2p_grad(
        &self,
        targets: &[Point3],
        sources: &[Point3],
        densities: &[f64],
        potentials: &mut [f64],
        gradients: &mut [f64],
    ) {
        debug_assert_eq!(densities.len(), 3 * sources.len());
        debug_assert_eq!(potentials.len(), 3 * targets.len());
        debug_assert_eq!(gradients.len(), 9 * targets.len());
        let c = self.prefactor();
        let a = self.a();
        for (ti, &x) in targets.iter().enumerate() {
            let mut u = [0.0f64; 3];
            let mut g = [0.0f64; 9];
            for (si, &y) in sources.iter().enumerate() {
                let (dx, dy, dz, r2) = displacement(x, y);
                if r2 == 0.0 {
                    continue;
                }
                let r = r2.sqrt();
                let inv_r = 1.0 / r;
                let inv_r3 = inv_r / r2;
                let inv_r5x3 = 3.0 * inv_r3 / r2;
                let iso = a * inv_r;
                let rv = [dx, dy, dz];
                let fv =
                    [densities[3 * si], densities[3 * si + 1], densities[3 * si + 2]];
                let rdotf = rv[0] * fv[0] + rv[1] * fv[1] + rv[2] * fv[2];
                let s = rdotf * inv_r3;
                let s5 = rdotf * inv_r5x3;
                for i in 0..3 {
                    u[i] += fv[i] * iso + rv[i] * s;
                    for k in 0..3 {
                        let mut v = (rv[i] * fv[k] - a * fv[i] * rv[k]) * inv_r3
                            - rv[i] * rv[k] * s5;
                        if i == k {
                            v += s;
                        }
                        g[i * 3 + k] += v;
                    }
                }
            }
            for i in 0..3 {
                potentials[3 * ti + i] += c * u[i];
                for k in 0..3 {
                    gradients[9 * ti + i * 3 + k] += c * g[i * 3 + k];
                }
            }
        }
    }

    /// Hoisted-geometry multi-RHS variant of [`Kelvin::p2p_grad`]
    /// (bit-identical per RHS, same contract as [`Kelvin::p2p_many`]).
    fn p2p_grad_many(
        &self,
        targets: &[Point3],
        sources: &[Point3],
        densities: &[&[f64]],
        potentials: &mut [&mut [f64]],
        gradients: &mut [&mut [f64]],
    ) {
        assert_eq!(densities.len(), potentials.len(), "one potential vector per RHS");
        assert_eq!(densities.len(), gradients.len(), "one gradient vector per RHS");
        let c = self.prefactor();
        let a = self.a();
        let ns = sources.len();
        let mut geo = vec![[0.0f64; 7]; ns]; // dx,dy,dz, inv_r, inv_r3, 3/r⁵, iso
        for (ti, &x) in targets.iter().enumerate() {
            for (si, &y) in sources.iter().enumerate() {
                let (dx, dy, dz, r2) = displacement(x, y);
                if r2 == 0.0 {
                    geo[si][3] = 0.0;
                    continue;
                }
                let r = r2.sqrt();
                let inv_r = 1.0 / r;
                let inv_r3 = inv_r / r2;
                geo[si] = [dx, dy, dz, inv_r, inv_r3, 3.0 * inv_r3 / r2, a * inv_r];
            }
            for ((dens, pot), grad) in
                densities.iter().zip(potentials.iter_mut()).zip(gradients.iter_mut())
            {
                let mut u = [0.0f64; 3];
                let mut g = [0.0f64; 9];
                for (si, geo_s) in geo.iter().enumerate() {
                    let [dx, dy, dz, inv_r, inv_r3, inv_r5x3, iso] = *geo_s;
                    if inv_r == 0.0 {
                        continue;
                    }
                    let rv = [dx, dy, dz];
                    let fv = [dens[3 * si], dens[3 * si + 1], dens[3 * si + 2]];
                    let rdotf = rv[0] * fv[0] + rv[1] * fv[1] + rv[2] * fv[2];
                    let s = rdotf * inv_r3;
                    let s5 = rdotf * inv_r5x3;
                    for i in 0..3 {
                        u[i] += fv[i] * iso + rv[i] * s;
                        for k in 0..3 {
                            let mut v = (rv[i] * fv[k] - a * fv[i] * rv[k]) * inv_r3
                                - rv[i] * rv[k] * s5;
                            if i == k {
                                v += s;
                            }
                            g[i * 3 + k] += v;
                        }
                    }
                }
                for i in 0..3 {
                    pot[3 * ti + i] += c * u[i];
                    for k in 0..3 {
                        grad[9 * ti + i * 3 + k] += c * g[i * 3 + k];
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn displacement_of(k: &Kelvin, x: Point3, y: Point3, f: [f64; 3]) -> [f64; 3] {
        let mut b = [0.0; 9];
        k.eval(x, y, &mut b);
        [
            b[0] * f[0] + b[1] * f[1] + b[2] * f[2],
            b[3] * f[0] + b[4] * f[1] + b[5] * f[2],
            b[6] * f[0] + b[7] * f[1] + b[8] * f[2],
        ]
    }

    #[test]
    fn block_symmetric_and_zero_at_pole() {
        let k = Kelvin::default();
        let mut b = [0.0; 9];
        k.eval([0.3, 0.7, -0.2], [1.0, 0.1, 0.4], &mut b);
        for i in 0..3 {
            for j in 0..3 {
                assert!((b[3 * i + j] - b[3 * j + i]).abs() < 1e-15);
            }
        }
        let mut z = [1.0; 9];
        k.eval([0.5; 3], [0.5; 3], &mut z);
        assert!(z.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn known_axis_value() {
        // On the x-axis at distance r with force e_x:
        // u_x = C ((3−4ν)/r + r²/r³) = C (4 − 4ν)/r.
        let k = Kelvin::new(2.0, 0.25);
        let u = displacement_of(&k, [3.0, 0.0, 0.0], [0.0; 3], [1.0, 0.0, 0.0]);
        let c = 1.0 / (16.0 * std::f64::consts::PI * 2.0 * 0.75);
        let expect = c * (4.0 - 4.0 * 0.25) / 3.0;
        assert!((u[0] - expect).abs() < 1e-15);
        assert!(u[1].abs() < 1e-15 && u[2].abs() < 1e-15);
    }

    #[test]
    fn satisfies_navier_equation() {
        // μ Δu + μ/(1−2ν) ∇(∇·u) = 0 away from the pole, via central
        // differences of the displacement field u(x) = U(x, 0)·f.
        let k = Kelvin::new(1.3, 0.27);
        let f = [0.4, -0.9, 0.6];
        let u = |p: Point3| displacement_of(&k, p, [0.0; 3], f);
        let c = [0.62, 0.41, -0.55];
        let h = 1e-4;
        // Δu_i and ∂_i(∇·u) by second differences.
        let mut residual: f64 = 0.0;
        for i in 0..3 {
            let mut lap = -6.0 * u(c)[i];
            for d in 0..3 {
                let mut p = c;
                p[d] += h;
                lap += u(p)[i];
                p[d] -= 2.0 * h;
                lap += u(p)[i];
            }
            lap /= h * h;
            // ∂_i (∇·u) via mixed central differences.
            let mut grad_div = 0.0;
            for d in 0..3 {
                let mut pp = c;
                pp[i] += h;
                pp[d] += h;
                let mut pm = c;
                pm[i] += h;
                pm[d] -= h;
                let mut mp = c;
                mp[i] -= h;
                mp[d] += h;
                let mut mm = c;
                mm[i] -= h;
                mm[d] -= h;
                grad_div += (u(pp)[d] - u(pm)[d] - u(mp)[d] + u(mm)[d]) / (4.0 * h * h);
            }
            residual = residual
                .max((k.mu * lap + k.mu / (1.0 - 2.0 * k.nu) * grad_div).abs());
        }
        assert!(residual < 1e-3, "Navier residual {residual}");
    }

    #[test]
    fn reduces_toward_stokes_form_at_high_nu() {
        // As ν → 1/2 the (3−4ν) factor → 1, matching the Stokeslet's
        // isotropic weight (up to the 1/(2μ(1−ν)) prefactor ratio).
        let k = Kelvin::new(1.0, 0.499999);
        let mut b = [0.0; 9];
        k.eval([2.0, 0.0, 0.0], [0.0; 3], &mut b);
        let c = 1.0 / (16.0 * std::f64::consts::PI * (1.0 - 0.499999));
        assert!((b[0] - c * (1.000004 / 2.0 + 4.0 / 8.0)).abs() < 1e-4 * b[0].abs());
    }

    #[test]
    fn p2p_matches_eval_sum() {
        let k = Kelvin::new(0.9, 0.31);
        let targets = [[0.0, 0.0, 0.0], [0.2, -0.4, 0.9]];
        let sources = [[1.0, 0.2, 0.0], [0.1, 1.5, -0.3], [-0.7, 0.0, 1.1]];
        let dens = [0.5, -1.0, 0.25, 2.0, 0.0, -0.5, 1.0, 1.0, 1.0];
        let mut fast = vec![0.0; 6];
        k.p2p(&targets, &sources, &dens, &mut fast);
        let mut block = [0.0; 9];
        for (ti, &x) in targets.iter().enumerate() {
            let mut expect = [0.0; 3];
            for (si, &y) in sources.iter().enumerate() {
                k.eval(x, y, &mut block);
                for a in 0..3 {
                    for bc in 0..3 {
                        expect[a] += block[3 * a + bc] * dens[3 * si + bc];
                    }
                }
            }
            for a in 0..3 {
                assert!((fast[3 * ti + a] - expect[a]).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn p2p_grad_matches_eval_grad_sum() {
        let k = Kelvin::new(1.2, 0.22);
        let targets = [[0.0, 0.1, 0.0], [0.3, -0.2, 0.7]];
        let sources = [[1.0, 0.4, 0.1], [-0.5, 1.1, -0.6]];
        let dens = [0.7, -0.3, 1.2, -0.8, 0.5, 0.9];
        let mut pot = vec![0.0; 6];
        let mut grad = vec![0.0; 18];
        k.p2p_grad(&targets, &sources, &dens, &mut pot, &mut grad);
        let mut gb = [0.0; 27];
        for (ti, &x) in targets.iter().enumerate() {
            let mut eg = [0.0; 9];
            for (si, &y) in sources.iter().enumerate() {
                k.eval_grad(x, y, &mut gb);
                for row in 0..9 {
                    for j in 0..3 {
                        eg[row] += gb[row * 3 + j] * dens[3 * si + j];
                    }
                }
            }
            for row in 0..9 {
                assert!(
                    (grad[9 * ti + row] - eg[row]).abs() < 1e-13,
                    "target {ti} row {row}: {} vs {}",
                    grad[9 * ti + row],
                    eg[row]
                );
            }
        }
    }
}
