//! The modified Laplace (screened Coulomb / Yukawa) kernel
//! `G(x, y) = e^{−λ|x−y|}/(4π|x−y|)`.
//!
//! This is the fundamental solution of `αu − Δu = 0` with `λ = √α`
//! (paper Appendix A) — the kernel of screened Coulombic interactions in
//! molecular dynamics, one of the motivating applications in the
//! introduction.

use crate::kernel::{displacement, with_weight_buf, Kernel};
use crate::Point3;
use kifmm_linalg::simd;

const FOUR_PI_INV: f64 = 1.0 / (4.0 * std::f64::consts::PI);

/// Fundamental solution of `αu − Δu = 0` in 3-D, `λ = √α`.
#[derive(Clone, Copy, Debug)]
pub struct ModifiedLaplace {
    /// Screening parameter `λ > 0`.
    pub lambda: f64,
}

impl ModifiedLaplace {
    /// Kernel with screening length `1/λ`.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda > 0.0, "screening parameter must be positive");
        ModifiedLaplace { lambda }
    }

    /// The PDE coefficient `α = λ²`.
    pub fn alpha(&self) -> f64 {
        self.lambda * self.lambda
    }
}

impl Default for ModifiedLaplace {
    /// `λ = 1`: screening length comparable to the unit computational box,
    /// the interesting regime (for `λ → 0` this degenerates to Laplace).
    fn default() -> Self {
        ModifiedLaplace::new(1.0)
    }
}

impl Kernel for ModifiedLaplace {
    fn src_dim(&self) -> usize {
        1
    }

    fn trg_dim(&self) -> usize {
        1
    }

    fn name(&self) -> &str {
        "ModifiedLaplace"
    }

    /// `e^{−λr}` couples the kernel to the physical scale: not homogeneous.
    fn homogeneity(&self) -> Option<f64> {
        None
    }

    /// Laplace's 12 plus `λ·r` (1), `exp` (1), extra multiply (1) ⇒ 15.
    fn flops_per_eval(&self) -> u64 {
        15
    }

    /// Fused pair: r² (8), sqrt (1), exp (1), shared factors (6),
    /// potential mac (2), three gradient macs (9) ⇒ 27.
    fn flops_per_grad_eval(&self) -> u64 {
        27
    }

    /// The operator tables depend on `λ`.
    fn id_bits(&self) -> u64 {
        self.lambda.to_bits()
    }

    #[inline]
    fn eval(&self, x: Point3, y: Point3, block: &mut [f64]) {
        let (_, _, _, r2) = displacement(x, y);
        block[0] = if r2 == 0.0 {
            0.0
        } else {
            let r = r2.sqrt();
            FOUR_PI_INV * (-self.lambda * r).exp() / r
        };
    }

    /// `∂G/∂x_d = −e^{−λr}(1 + λr)·r_d/(4π r³)`, `r = x − y`.
    #[inline]
    fn eval_grad(&self, x: Point3, y: Point3, block: &mut [f64]) {
        debug_assert_eq!(block.len(), 3);
        let (dx, dy, dz, r2) = displacement(x, y);
        if r2 == 0.0 {
            block.fill(0.0);
            return;
        }
        let r = r2.sqrt();
        let e = (-self.lambda * r).exp();
        let s = FOUR_PI_INV * e * (1.0 + self.lambda * r) / (r2 * r);
        block[0] = -dx * s;
        block[1] = -dy * s;
        block[2] = -dz * s;
    }

    /// Per target: fill the pair-weight buffer `w = e^{−λr}/r` (the `exp`
    /// stays scalar — `libm` exp is not required to be correctly rounded,
    /// so a vector variant could drift from the scalar path), then reduce
    /// with the vector [`simd::dot`]. [`ModifiedLaplace::p2p_many`] runs
    /// the identical chain, so results are bit-identical per RHS.
    fn p2p(
        &self,
        targets: &[Point3],
        sources: &[Point3],
        densities: &[f64],
        potentials: &mut [f64],
    ) {
        debug_assert_eq!(densities.len(), sources.len());
        debug_assert_eq!(potentials.len(), targets.len());
        let lambda = self.lambda;
        with_weight_buf(sources.len(), |w| {
            for (ti, &x) in targets.iter().enumerate() {
                for (si, &y) in sources.iter().enumerate() {
                    let (_, _, _, r2) = displacement(x, y);
                    w[si] = if r2 > 0.0 {
                        let r = r2.sqrt();
                        (-lambda * r).exp() / r
                    } else {
                        0.0
                    };
                }
                potentials[ti] += FOUR_PI_INV * simd::dot(densities, w);
            }
        });
    }

    /// Hoists the full pair weight `w = e^{−λr}/r` — including the
    /// expensive `exp` — out of the RHS loop (`w = 0` marks a coincident
    /// pair); the marginal cost of each extra RHS is one dot product over
    /// the shared weights. [`ModifiedLaplace::p2p`] computes the identical
    /// weight buffer and reduction, so results are bit-identical per RHS.
    fn p2p_many(
        &self,
        targets: &[Point3],
        sources: &[Point3],
        densities: &[&[f64]],
        potentials: &mut [&mut [f64]],
    ) {
        assert_eq!(densities.len(), potentials.len(), "one potential vector per RHS");
        let lambda = self.lambda;
        with_weight_buf(sources.len(), |w| {
            for (ti, &x) in targets.iter().enumerate() {
                for (si, &y) in sources.iter().enumerate() {
                    let (_, _, _, r2) = displacement(x, y);
                    w[si] = if r2 > 0.0 {
                        let r = r2.sqrt();
                        (-lambda * r).exp() / r
                    } else {
                        0.0
                    };
                }
                for (dens, pot) in densities.iter().zip(potentials.iter_mut()) {
                    pot[ti] += FOUR_PI_INV * simd::dot(dens, w);
                }
            }
        });
    }

    /// Fused scalar loop sharing `e^{−λr}` between the potential and the
    /// three gradient components.
    fn p2p_grad(
        &self,
        targets: &[Point3],
        sources: &[Point3],
        densities: &[f64],
        potentials: &mut [f64],
        gradients: &mut [f64],
    ) {
        debug_assert_eq!(densities.len(), sources.len());
        debug_assert_eq!(potentials.len(), targets.len());
        debug_assert_eq!(gradients.len(), 3 * targets.len());
        let lambda = self.lambda;
        for (ti, &x) in targets.iter().enumerate() {
            let mut u = 0.0;
            let (mut gx, mut gy, mut gz) = (0.0, 0.0, 0.0);
            for (si, &y) in sources.iter().enumerate() {
                let (dx, dy, dz, r2) = displacement(x, y);
                if r2 == 0.0 {
                    continue;
                }
                let r = r2.sqrt();
                let e = (-lambda * r).exp();
                let wp = e / r;
                let wg = e * (1.0 + lambda * r) / (r2 * r);
                let q = densities[si];
                u += q * wp;
                let s = q * wg;
                gx -= dx * s;
                gy -= dy * s;
                gz -= dz * s;
            }
            potentials[ti] += FOUR_PI_INV * u;
            gradients[3 * ti] += FOUR_PI_INV * gx;
            gradients[3 * ti + 1] += FOUR_PI_INV * gy;
            gradients[3 * ti + 2] += FOUR_PI_INV * gz;
        }
    }

    /// Hoists the pair geometry — including the expensive `exp` — out of
    /// the RHS loop (`pot-weight = 0` marks a coincident pair); each RHS
    /// then runs the exact per-source arithmetic of
    /// [`ModifiedLaplace::p2p_grad`], so results are bit-identical per RHS.
    fn p2p_grad_many(
        &self,
        targets: &[Point3],
        sources: &[Point3],
        densities: &[&[f64]],
        potentials: &mut [&mut [f64]],
        gradients: &mut [&mut [f64]],
    ) {
        assert_eq!(densities.len(), potentials.len(), "one potential vector per RHS");
        assert_eq!(densities.len(), gradients.len(), "one gradient vector per RHS");
        let lambda = self.lambda;
        let ns = sources.len();
        let mut geo = vec![[0.0f64; 5]; ns]; // dx, dy, dz, e/r, e(1+λr)/r³
        for (ti, &x) in targets.iter().enumerate() {
            for (si, &y) in sources.iter().enumerate() {
                let (dx, dy, dz, r2) = displacement(x, y);
                if r2 == 0.0 {
                    geo[si][3] = 0.0;
                    continue;
                }
                let r = r2.sqrt();
                let e = (-lambda * r).exp();
                geo[si] = [dx, dy, dz, e / r, e * (1.0 + lambda * r) / (r2 * r)];
            }
            for ((dens, pot), grad) in
                densities.iter().zip(potentials.iter_mut()).zip(gradients.iter_mut())
            {
                let mut u = 0.0;
                let (mut gx, mut gy, mut gz) = (0.0, 0.0, 0.0);
                for (si, g) in geo.iter().enumerate() {
                    let [dx, dy, dz, wp, wg] = *g;
                    if wp == 0.0 {
                        continue;
                    }
                    let q = dens[si];
                    u += q * wp;
                    let s = q * wg;
                    gx -= dx * s;
                    gy -= dy * s;
                    gz -= dz * s;
                }
                pot[ti] += FOUR_PI_INV * u;
                grad[3 * ti] += FOUR_PI_INV * gx;
                grad[3 * ti + 1] += FOUR_PI_INV * gy;
                grad[3 * ti + 2] += FOUR_PI_INV * gz;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduces_to_laplace_at_lambda_zero_limit() {
        let k = ModifiedLaplace::new(1e-12);
        let mut b = [0.0];
        k.eval([1.0, 0.0, 0.0], [0.0, 0.0, 0.0], &mut b);
        assert!((b[0] - FOUR_PI_INV).abs() < 1e-12);
    }

    #[test]
    fn satisfies_screened_pde() {
        // (α − Δ)u = 0 away from the pole, via central differences.
        let k = ModifiedLaplace::new(1.7);
        let h = 1e-4;
        let u = |p: Point3| {
            let mut b = [0.0];
            k.eval(p, [0.0, 0.0, 0.0], &mut b);
            b[0]
        };
        let c = [0.6, -0.3, 0.45];
        let mut lap = -6.0 * u(c);
        for d in 0..3 {
            let mut p = c;
            p[d] += h;
            lap += u(p);
            p[d] -= 2.0 * h;
            lap += u(p);
        }
        lap /= h * h;
        let residual = k.alpha() * u(c) - lap;
        assert!(residual.abs() < 1e-4, "PDE residual = {residual}");
    }

    #[test]
    fn decays_faster_than_laplace() {
        let k = ModifiedLaplace::new(2.0);
        let mut near = [0.0];
        let mut far = [0.0];
        k.eval([1.0, 0.0, 0.0], [0.0; 3], &mut near);
        k.eval([4.0, 0.0, 0.0], [0.0; 3], &mut far);
        // Laplace ratio would be 4; screening makes it much larger.
        assert!(near[0] / far[0] > 4.0 * (2.0f64 * 3.0).exp() * 0.9);
    }

    #[test]
    fn self_interaction_zero() {
        let k = ModifiedLaplace::default();
        let mut b = [5.0];
        k.eval([1.0, 1.0, 1.0], [1.0, 1.0, 1.0], &mut b);
        assert_eq!(b[0], 0.0);
    }

    #[test]
    fn p2p_matches_eval_sum() {
        let k = ModifiedLaplace::new(0.8);
        let targets = [[0.0, 0.0, 0.0], [0.5, 0.5, 0.5]];
        let sources = [[1.0, 0.0, 0.0], [0.0, 2.0, 0.0], [0.0, 0.0, 3.0]];
        let dens = [1.0, -2.0, 0.5];
        let mut fast = vec![0.0; 2];
        k.p2p(&targets, &sources, &dens, &mut fast);
        for (ti, &x) in targets.iter().enumerate() {
            let mut expect = 0.0;
            let mut b = [0.0];
            for (si, &y) in sources.iter().enumerate() {
                k.eval(x, y, &mut b);
                expect += b[0] * dens[si];
            }
            assert!((fast[ti] - expect).abs() < 1e-14);
        }
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_lambda() {
        let _ = ModifiedLaplace::new(0.0);
    }
}
