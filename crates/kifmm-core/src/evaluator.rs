//! The unified evaluation API: [`Evaluator`], [`EvalReport`] and
//! [`FmmBuilder`].
//!
//! The legacy surface grew one entry point per execution strategy, each
//! with its own return shape. Everything now funnels through one verb
//! ([`Evaluator::eval`], batched as [`Evaluator::eval_many`]):
//!
//! ```
//! use kifmm_core::{Evaluator, Fmm};
//! use kifmm_kernels::Laplace;
//!
//! let points: Vec<[f64; 3]> = (0..300)
//!     .map(|i| {
//!         let t = i as f64;
//!         [(t * 0.37).sin(), (t * 0.73).cos(), (t * 0.11).sin()]
//!     })
//!     .collect();
//! let fmm = Fmm::builder(Laplace).points(&points).order(4).build();
//! let report = fmm.eval(&vec![1.0; points.len()]);
//! assert_eq!(report.potentials.len(), points.len());
//! assert!(report.stats.total_flops() > 0);
//! ```
//!
//! A report carries the potentials, the per-phase [`PhaseStats`], and the
//! [`Tracer`] that observed the run — disabled by default (and then free:
//! every tracing operation short-circuits on one branch), or attached via
//! [`FmmBuilder::trace`] to capture per-rank span timelines exportable as
//! chrome-trace JSON.

use crate::fmm::{Fmm, FmmOptions};
use crate::m2l::M2lMode;
use crate::plan::{BuildError, Plan, Session};
use crate::precompute::PrecomputeCache;
use crate::stats::PhaseStats;
use kifmm_kernels::{Kernel, Point3};
use kifmm_trace::Tracer;

/// What an evaluation produces per target point.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum OutputSpec {
    /// Potentials only: `trg_dim` components per point.
    #[default]
    Potential,
    /// Potentials plus spatial gradients `∂u_t/∂x_d`: the far field comes
    /// free from the equivalent densities (the L2T/W read-off evaluates
    /// `∇G` from the same equivalent sources; only the near field runs the
    /// fused `p2p_grad`), so no new translation operators are built.
    PotentialAndGradient,
}

impl OutputSpec {
    /// Whether gradients are produced.
    pub fn wants_gradient(self) -> bool {
        matches!(self, OutputSpec::PotentialAndGradient)
    }
}

/// The result of one interaction-calculation run.
#[derive(Clone, Debug)]
pub struct EvalReport {
    /// Potentials: `trg_dim` interleaved components per point, in the
    /// caller's original point order.
    pub potentials: Vec<f64>,
    /// Gradients: `trg_dim·3` interleaved components per point
    /// (`[t·3 + d] = ∂u_t/∂x_d`), caller's original point order. Empty
    /// unless the plan was built with [`OutputSpec::PotentialAndGradient`].
    pub gradients: Vec<f64>,
    /// Per-phase seconds and exact flop counts.
    pub stats: PhaseStats,
    /// The tracer that observed the run (disabled unless one was
    /// attached; export with [`Tracer::chrome_trace_json`]).
    pub trace: Tracer,
}

/// Anything that evaluates `u_i = Σ_j G(x_i, x_j) φ_j` over a fixed
/// point set: the shared-memory [`Fmm`] or a comm-bound distributed
/// driver.
pub trait Evaluator {
    /// Evaluate potentials for `densities` (`src_dim()` interleaved
    /// components per point, original point order).
    fn eval(&self, densities: &[f64]) -> EvalReport;

    /// Evaluate a batch of `k` density vectors, returning one report per
    /// RHS. The default delegates to `k` independent [`Evaluator::eval`]
    /// calls; batching implementations (the shared-memory and distributed
    /// FMMs) override this to run all passes **once** over the batch —
    /// with bit-identical per-RHS potentials.
    fn eval_many(&self, densities: &[&[f64]]) -> Vec<EvalReport> {
        densities.iter().map(|d| self.eval(d)).collect()
    }

    /// Number of points the evaluator was built over.
    fn num_points(&self) -> usize;

    /// Density components per point.
    fn src_dim(&self) -> usize;

    /// Potential components per point.
    fn trg_dim(&self) -> usize;
}

/// Builder for [`Fmm`] (see [`Fmm::builder`]): options, execution
/// strategy and observability in one fluent chain.
///
/// ```
/// use kifmm_core::{Fmm, M2lMode};
/// use kifmm_kernels::Laplace;
/// use kifmm_trace::Tracer;
///
/// let points = vec![[0.1, 0.2, 0.3], [-0.4, 0.5, -0.6], [0.7, -0.8, 0.9]];
/// let fmm = Fmm::builder(Laplace)
///     .points(&points)
///     .order(4)
///     .m2l(M2lMode::Fft)
///     .trace(Tracer::enabled())
///     .build();
/// assert!(fmm.trace().is_enabled());
/// ```
pub struct FmmBuilder<'a, K: Kernel> {
    kernel: K,
    points: Option<&'a [Point3]>,
    opts: FmmOptions,
    trace: Tracer,
    parallel: bool,
    cache: Option<&'a PrecomputeCache<K>>,
}

impl<'a, K: Kernel> FmmBuilder<'a, K> {
    pub(crate) fn new(kernel: K) -> Self {
        FmmBuilder {
            kernel,
            points: None,
            opts: FmmOptions::default(),
            trace: Tracer::disabled(),
            parallel: false,
            cache: None,
        }
    }

    /// The point set (sources ≡ targets). Required.
    pub fn points(mut self, points: &'a [Point3]) -> Self {
        self.points = Some(points);
        self
    }

    /// Surface discretization order `p` (default 6).
    pub fn order(mut self, order: usize) -> Self {
        self.opts.order = order;
        self
    }

    /// Maximum points per leaf box (the paper's `s`; default 60).
    pub fn max_pts_per_leaf(mut self, s: usize) -> Self {
        self.opts.max_pts_per_leaf = s;
        self
    }

    /// Octree depth cap.
    pub fn max_level(mut self, level: u8) -> Self {
        self.opts.max_level = level;
        self
    }

    /// M2L execution mode (default FFT).
    pub fn m2l(mut self, mode: M2lMode) -> Self {
        self.opts.m2l_mode = mode;
        self
    }

    /// What each evaluation produces (default potentials only). With
    /// [`OutputSpec::PotentialAndGradient`], reports carry
    /// `trg_dim·3` gradient components per point alongside the
    /// potentials.
    pub fn output(mut self, output: OutputSpec) -> Self {
        self.opts.output = output;
        self
    }

    /// Pseudoinverse truncation tolerance.
    pub fn pinv_tol(mut self, tol: f64) -> Self {
        self.opts.pinv_tol = tol;
        self
    }

    /// Replace the whole option set at once.
    pub fn options(mut self, opts: FmmOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Attach a tracer; [`Evaluator::eval`] records per-phase spans into
    /// it. Default: [`Tracer::disabled`] (zero-cost).
    pub fn trace(mut self, trace: Tracer) -> Self {
        self.trace = trace;
        self
    }

    /// Use the shared-memory parallel evaluation path (worker threads
    /// from the in-tree runtime pool; results stay bit-identical to the
    /// serial path).
    pub fn parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Share particle-independent operator tables through `cache`
    /// (parameter sweeps, virtual-rank benches).
    pub fn cache(mut self, cache: &'a PrecomputeCache<K>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Decompose the builder for drivers that construct something other
    /// than a shared-memory [`Fmm`] (e.g. the distributed driver's
    /// `build_parallel`). Returns
    /// `(kernel, points, options, tracer, parallel, cache)`.
    #[doc(hidden)]
    #[allow(clippy::type_complexity)]
    pub fn into_parts(
        self,
    ) -> (K, Option<&'a [Point3]>, FmmOptions, Tracer, bool, Option<&'a PrecomputeCache<K>>)
    {
        (self.kernel, self.points, self.opts, self.trace, self.parallel, self.cache)
    }

    /// Build the evaluator, reporting configuration problems as a typed
    /// [`BuildError`] instead of panicking.
    pub fn try_build(self) -> Result<Fmm<K>, BuildError> {
        let (kernel, points, opts, trace, parallel, cache) = self.into_parts();
        let points = points.ok_or(BuildError::MissingPoints)?;
        let plan = match cache {
            Some(c) => Plan::try_new_with_cache(kernel, points, opts, c)?,
            None => Plan::try_new(kernel, points, opts)?,
        };
        let mut session = Session::from_plan(plan);
        session.set_trace(trace);
        session.set_parallel_eval(parallel);
        Ok(Fmm { session })
    }

    /// Build the evaluator: tree, interaction lists and translation
    /// operators.
    ///
    /// # Panics
    /// On any [`BuildError`] — if [`FmmBuilder::points`] was never
    /// supplied, the point set is empty, or the order is below 2. Use
    /// [`FmmBuilder::try_build`] for a `Result`.
    pub fn build(self) -> Fmm<K> {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Build only the immutable [`Plan`] (tree, lists, operator tables) —
    /// the shareable setup artifact of the plan/execute split. Execution
    /// policy set on this builder ([`FmmBuilder::trace`] /
    /// [`FmmBuilder::parallel`]) belongs to a [`Session`] and is not part
    /// of the plan; open sessions over the plan to evaluate.
    pub fn try_plan(self) -> Result<Plan<K>, BuildError> {
        let (kernel, points, opts, _trace, _parallel, cache) = self.into_parts();
        let points = points.ok_or(BuildError::MissingPoints)?;
        match cache {
            Some(c) => Plan::try_new_with_cache(kernel, points, opts, c),
            None => Plan::try_new(kernel, points, opts),
        }
    }

    /// As [`FmmBuilder::try_plan`].
    ///
    /// # Panics
    /// On any [`BuildError`].
    pub fn plan(self) -> Plan<K> {
        self.try_plan().unwrap_or_else(|e| panic!("{e}"))
    }
}

impl<K: Kernel> Evaluator for Fmm<K> {
    fn eval(&self, densities: &[f64]) -> EvalReport {
        Fmm::eval(self, densities)
    }

    fn eval_many(&self, densities: &[&[f64]]) -> Vec<EvalReport> {
        Fmm::eval_many(self, densities)
    }

    fn num_points(&self) -> usize {
        self.len()
    }

    fn src_dim(&self) -> usize {
        self.kernel.src_dim()
    }

    fn trg_dim(&self) -> usize {
        self.kernel.trg_dim()
    }
}

impl<K: Kernel> Evaluator for Session<K> {
    fn eval(&self, densities: &[f64]) -> EvalReport {
        Session::eval(self, densities)
    }

    fn eval_many(&self, densities: &[&[f64]]) -> Vec<EvalReport> {
        Session::eval_many(self, densities)
    }

    fn num_points(&self) -> usize {
        self.len()
    }

    fn src_dim(&self) -> usize {
        self.kernel().src_dim()
    }

    fn trg_dim(&self) -> usize {
        self.kernel().trg_dim()
    }
}
