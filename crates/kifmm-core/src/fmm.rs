//! The kernel-independent FMM evaluator.
//!
//! [`Fmm::new`] builds the adaptive tree, interaction lists and per-level
//! operators for a point set (sources ≡ targets, the setting of the paper's
//! experiments, where the same discretization points carry densities and
//! receive potentials across tens of Krylov iterations).
//! [`Fmm::eval`] then computes `u_i = Σ_j G(x_i, x_j) φ_j` in `O(N)`:
//!
//! 1. **Upward pass** — S2M at leaves (evaluate the upward check potential
//!    from the sources, invert to the upward equivalent density, eq. 2.1)
//!    and M2M up the tree (eq. 2.3);
//! 2. **Downward pass** — M2L over V lists (eq. 2.4, FFT-accelerated),
//!    X-list sources onto downward check surfaces, L2L down the tree
//!    (eq. 2.5);
//! 3. **Leaf evaluation** — dense U-list interactions, W-list equivalent
//!    densities, and the downward equivalent density, all evaluated at the
//!    targets.
//!
//! All pass mathematics lives in [`crate::engine`]; this type contributes
//! the tree/operator setup and a thin driver ([`Fmm::eval_impl`]) that
//! permutes densities, wraps each engine phase in its trace span and
//! timing, and un-permutes the potentials. The serial and shared-memory
//! paths are the *same driver* with a different [`Dispatch`] policy, so
//! they are bit-identical by construction.

use crate::engine::{ActiveSet, EngineWorkspace, ExpansionStore, LocalSources, PassEngine};
use crate::evaluator::{EvalReport, FmmBuilder};
use crate::m2l::M2lMode;
use crate::operators::FIRST_FMM_LEVEL;
use crate::precompute::{Precomputed, PrecomputeCache};
use crate::stats::thread_cpu_time;
use crate::stats::{Phase, PhaseStats};
use kifmm_kernels::{Kernel, Point3};
use kifmm_runtime::Dispatch;
use kifmm_trace::{Counter, Tracer};
use kifmm_tree::{build_lists, InteractionLists, Octree};
use std::sync::Mutex;
use std::time::Instant;

/// Evaluator configuration.
#[derive(Clone, Copy, Debug)]
pub struct FmmOptions {
    /// Surface discretization order `p` (points per cube edge). The
    /// paper's 10⁻⁵-accuracy experiments correspond to `p = 6`.
    pub order: usize,
    /// Maximum points per leaf box (the paper's `s`; 60 in most
    /// experiments, 120 in the 3000-processor runs).
    pub max_pts_per_leaf: usize,
    /// Depth cap for the octree.
    pub max_level: u8,
    /// M2L execution mode (FFT or dense).
    pub m2l_mode: M2lMode,
    /// Relative truncation for the check-to-equivalent pseudoinverses.
    pub pinv_tol: f64,
}

impl Default for FmmOptions {
    fn default() -> Self {
        FmmOptions {
            order: 6,
            max_pts_per_leaf: 60,
            max_level: 12,
            m2l_mode: M2lMode::Fft,
            pinv_tol: 1e-10,
        }
    }
}

impl FmmOptions {
    /// Option set with surface order `p`.
    pub fn with_order(order: usize) -> Self {
        FmmOptions { order, ..Default::default() }
    }
}

/// A prepared FMM: tree, lists and operators for one point set.
pub struct Fmm<K: Kernel> {
    pub(crate) kernel: K,
    pub(crate) opts: FmmOptions,
    /// The computation tree.
    pub tree: Octree,
    /// U/V/W/X lists per box.
    pub lists: InteractionLists,
    pub(crate) pre: std::sync::Arc<Precomputed<K>>,
    /// Points permuted into Morton order (leaf ranges contiguous).
    pub(crate) sorted_points: Vec<Point3>,
    pub(crate) num_points: usize,
    /// Every box is active: this evaluator owns the whole tree.
    pub(crate) active: ActiveSet,
    /// Pooled expansion storage + scratch, reused across evaluations so
    /// the engine allocates nothing in steady state.
    pub(crate) scratch: Mutex<Vec<(ExpansionStore, EngineWorkspace)>>,
    /// Observability sink ([`Tracer::disabled`] unless one is attached).
    pub(crate) trace: Tracer,
    /// Route [`Fmm::eval`] through the shared-memory parallel path.
    pub(crate) parallel_eval: bool,
}

impl<K: Kernel> Fmm<K> {
    /// Start a fluent [`FmmBuilder`]:
    /// `Fmm::builder(kernel).points(&pts).order(6).build()`.
    pub fn builder<'a>(kernel: K) -> FmmBuilder<'a, K> {
        FmmBuilder::new(kernel)
    }

    /// Build tree, interaction lists and translation operators.
    pub fn new(kernel: K, points: &[Point3], opts: FmmOptions) -> Self {
        let cache = PrecomputeCache::new();
        Self::with_cache(kernel, points, opts, &cache)
    }

    /// As [`Fmm::new`], but sharing particle-independent operator tables
    /// through `cache` (parameter sweeps, virtual-rank benches).
    pub fn with_cache(
        kernel: K,
        points: &[Point3],
        opts: FmmOptions,
        cache: &PrecomputeCache<K>,
    ) -> Self {
        assert!(opts.order >= 2, "surface order must be ≥ 2");
        assert!(!points.is_empty(), "empty point set");
        let tree = Octree::build(points, opts.max_pts_per_leaf, opts.max_level);
        let lists = build_lists(&tree);
        let depth = tree.depth();
        let root_half = tree.domain.half;
        let pre = cache.get_or_build(&kernel, &opts, root_half, depth);
        let sorted_points: Vec<Point3> =
            tree.perm.iter().map(|&i| points[i as usize]).collect();
        let active = ActiveSet::build(&tree, |_| true);
        Fmm {
            kernel,
            opts,
            tree,
            lists,
            pre,
            sorted_points,
            num_points: points.len(),
            active,
            scratch: Mutex::new(Vec::new()),
            trace: Tracer::disabled(),
            parallel_eval: false,
        }
    }

    /// Attach (or detach, with [`Tracer::disabled`]) an observability
    /// sink; subsequent [`Fmm::eval`] calls record per-phase spans.
    pub fn set_trace(&mut self, trace: Tracer) {
        self.trace = trace;
    }

    /// The attached tracer (disabled by default).
    pub fn trace(&self) -> &Tracer {
        &self.trace
    }

    /// Route [`Fmm::eval`] through the shared-memory parallel path
    /// (bit-identical results; wall-clock phase timing).
    pub fn set_parallel_eval(&mut self, parallel: bool) {
        self.parallel_eval = parallel;
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.num_points
    }

    /// True when empty (never; construction requires points).
    pub fn is_empty(&self) -> bool {
        self.num_points == 0
    }

    /// The kernel.
    pub fn kernel(&self) -> &K {
        &self.kernel
    }

    /// The options the evaluator was built with.
    pub fn options(&self) -> &FmmOptions {
        &self.opts
    }

    /// The precomputed operator tables (shared with the builder cache).
    pub fn precomputed(&self) -> &Precomputed<K> {
        &self.pre
    }

    /// The points in Morton order (leaf point ranges index into this).
    pub fn morton_points(&self) -> &[Point3] {
        &self.sorted_points
    }

    /// This evaluator's ownership filter (every box active).
    pub fn active_set(&self) -> &ActiveSet {
        &self.active
    }

    /// Borrow the prepared state into a [`PassEngine`] under the given
    /// thread-dispatch policy.
    pub fn engine(&self, dispatch: Dispatch) -> PassEngine<'_, K> {
        PassEngine::new(
            &self.kernel,
            &self.tree,
            &self.lists,
            &self.pre,
            &self.sorted_points,
            self.opts.order,
            self.opts.m2l_mode,
            dispatch,
            &self.active,
        )
    }

    /// Evaluate potentials for `densities` (original point order,
    /// `SRC_DIM` interleaved components per point). The report carries
    /// `TRG_DIM` components per point in the original order, the
    /// per-phase statistics, and the attached tracer.
    ///
    /// Runs the serial path unless the shared-memory parallel path was
    /// selected ([`FmmBuilder::parallel`] / [`Fmm::set_parallel_eval`]).
    pub fn eval(&self, densities: &[f64]) -> EvalReport {
        let (potentials, stats) = if self.parallel_eval {
            self.eval_impl(densities, Dispatch::Pool)
        } else {
            self.eval_impl(densities, Dispatch::Serial)
        };
        EvalReport { potentials, stats, trace: self.trace.clone() }
    }

    /// Deprecated shim over [`Fmm::eval`].
    #[deprecated(note = "use `eval(densities).potentials` (see the Evaluator trait)")]
    pub fn evaluate(&self, densities: &[f64]) -> Vec<f64> {
        self.eval_impl(densities, Dispatch::Serial).0
    }

    /// Deprecated shim over [`Fmm::eval`].
    #[deprecated(note = "use `eval(densities)` and read `.potentials` / `.stats`")]
    pub fn evaluate_with_stats(&self, densities: &[f64]) -> (Vec<f64>, PhaseStats) {
        self.eval_impl(densities, Dispatch::Serial)
    }

    /// The evaluation driver shared by the serial and shared-memory
    /// paths: permute, run the engine phases under `dispatch` with their
    /// trace spans and timings, un-permute.
    ///
    /// Phase seconds are thread-CPU time under [`Dispatch::Serial`] and
    /// wall-clock under [`Dispatch::Pool`] (work spreads across the pool;
    /// per-thread CPU time would under-count). Flop counts come from the
    /// engine and are identical for both policies.
    pub(crate) fn eval_impl(
        &self,
        densities: &[f64],
        dispatch: Dispatch,
    ) -> (Vec<f64>, PhaseStats) {
        assert_eq!(
            densities.len(),
            self.num_points * K::SRC_DIM,
            "density vector must have SRC_DIM entries per point"
        );
        let mut stats = PhaseStats::new();
        let rt = self.trace.rank(0);
        let n = self.num_points;
        // Permute densities into Morton order.
        let mut dens = vec![0.0; n * K::SRC_DIM];
        for (sorted_i, &orig) in self.tree.perm.iter().enumerate() {
            for c in 0..K::SRC_DIM {
                dens[sorted_i * K::SRC_DIM + c] = densities[orig as usize * K::SRC_DIM + c];
            }
        }

        let engine = self.engine(dispatch);
        let src = LocalSources {
            tree: &self.tree,
            points: &self.sorted_points,
            dens: &dens,
            src_dim: K::SRC_DIM,
        };
        let (mut store, mut ws) = self
            .scratch
            .lock()
            .unwrap()
            .pop()
            .unwrap_or_else(|| (engine.new_store(), EngineWorkspace::default()));
        store.reset();
        let wall = Instant::now();
        let now = || match dispatch {
            Dispatch::Serial => thread_cpu_time(),
            Dispatch::Pool => wall.elapsed().as_secs_f64(),
        };
        let depth = self.tree.depth();

        if depth >= FIRST_FMM_LEVEL {
            {
                let _span = rt.span("Up", "Up");
                let t0 = now();
                let flops = engine.upward(&src, &mut store, &mut ws);
                stats.add_seconds(Phase::Up, now() - t0);
                stats.add_flops(Phase::Up, flops);
                rt.add(Counter::Flops, flops);
                if dispatch == Dispatch::Serial {
                    rt.add(Counter::CellsTouched, engine.active_cell_count());
                }
            }
            {
                let t0 = now();
                let mut vflops = 0u64;
                for level in FIRST_FMM_LEVEL..=depth {
                    let _v = rt.span("DownV", "m2l").with_n(level as u64);
                    vflops += engine.m2l_level(level, &mut store, &mut ws);
                }
                stats.add_seconds(Phase::DownV, now() - t0);
                stats.add_flops(Phase::DownV, vflops);
                rt.add(Counter::Flops, vflops);
            }
            {
                let _span = rt.span("DownX", "x-list");
                let t0 = now();
                let flops = engine.x_pass(&src, &mut store);
                stats.add_seconds(Phase::DownX, now() - t0);
                stats.add_flops(Phase::DownX, flops);
                rt.add(Counter::Flops, flops);
            }
            {
                let _span = rt.span("Eval", "l2l");
                let t0 = now();
                let flops = engine.l2l(&mut store, &mut ws);
                stats.add_seconds(Phase::Eval, now() - t0);
                stats.add_flops(Phase::Eval, flops);
                rt.add(Counter::Flops, flops);
            }
        }

        let mut pot = vec![0.0; n * K::TRG_DIM];
        rt.add(Counter::CellsTouched, engine.active_leaves().len() as u64);
        {
            let _span = rt.span("DownU", "u-list");
            let t0 = now();
            let flops = engine.u_pass(&src, &mut pot);
            stats.add_seconds(Phase::DownU, now() - t0);
            stats.add_flops(Phase::DownU, flops);
            rt.add(Counter::Flops, flops);
        }
        {
            let _span = rt.span("DownW", "w-list");
            let t0 = now();
            let flops = engine.w_pass(&store, &mut pot);
            stats.add_seconds(Phase::DownW, now() - t0);
            stats.add_flops(Phase::DownW, flops);
            rt.add(Counter::Flops, flops);
        }
        {
            let _span = rt.span("Eval", "l2t");
            let t0 = now();
            let flops = engine.l2t(&store, &mut pot);
            stats.add_seconds(Phase::Eval, now() - t0);
            stats.add_flops(Phase::Eval, flops);
            rt.add(Counter::Flops, flops);
        }
        self.scratch.lock().unwrap().push((store, ws));

        // Un-permute potentials.
        let mut out = vec![0.0; n * K::TRG_DIM];
        for (sorted_i, &orig) in self.tree.perm.iter().enumerate() {
            for c in 0..K::TRG_DIM {
                out[orig as usize * K::TRG_DIM + c] = pot[sorted_i * K::TRG_DIM + c];
            }
        }
        (out, stats)
    }

    /// Upward + downward expansions for Morton-sorted densities, without
    /// spans or timing (the arbitrary-target evaluator reads `up`/`down`
    /// rows directly).
    pub(crate) fn compute_expansions(&self, dens: &[f64]) -> ExpansionStore {
        let engine = self.engine(Dispatch::Serial);
        let src = LocalSources {
            tree: &self.tree,
            points: &self.sorted_points,
            dens,
            src_dim: K::SRC_DIM,
        };
        let mut store = engine.new_store();
        let mut ws = EngineWorkspace::default();
        engine.upward(&src, &mut store, &mut ws);
        let depth = self.tree.depth();
        if depth >= FIRST_FMM_LEVEL {
            for level in FIRST_FMM_LEVEL..=depth {
                engine.m2l_level(level, &mut store, &mut ws);
            }
        }
        engine.x_pass(&src, &mut store);
        engine.l2l(&mut store, &mut ws);
        store
    }

    /// Sorted points and density slice of a box.
    pub(crate) fn leaf_data<'a>(&'a self, ni: u32, dens: &'a [f64]) -> (&'a [Point3], &'a [f64]) {
        let node = &self.tree.nodes[ni as usize];
        let (s, e) = (node.pt_start as usize, node.pt_end as usize);
        (&self.sorted_points[s..e], &dens[s * K::SRC_DIM..e * K::SRC_DIM])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::direct_eval;
    use kifmm_kernels::{Laplace, ModifiedLaplace, Stokes};
    use kifmm_testkit::cloud;

    fn rel_err(a: &[f64], b: &[f64]) -> f64 {
        let num: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt();
        let den: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        num / den
    }

    fn densities(n: usize, dim: usize) -> Vec<f64> {
        (0..n * dim).map(|i| ((i * 31 % 101) as f64) / 101.0).collect()
    }

    #[test]
    fn laplace_matches_direct_uniform() {
        let pts = cloud(600, 17);
        let dens = densities(600, 1);
        let fmm = Fmm::new(
            Laplace,
            &pts,
            FmmOptions { order: 6, max_pts_per_leaf: 20, ..Default::default() },
        );
        assert!(fmm.tree.depth() >= 2, "tree must be deep enough to exercise M2L");
        let u = fmm.eval(&dens).potentials;
        let truth = direct_eval(&Laplace, &pts, &dens);
        let e = rel_err(&u, &truth);
        assert!(e < 1e-5, "relative error {e}");
    }

    #[test]
    fn laplace_accuracy_improves_with_order() {
        let pts = cloud(400, 3);
        let dens = densities(400, 1);
        let truth = direct_eval(&Laplace, &pts, &dens);
        let mut last = f64::INFINITY;
        for p in [4usize, 6, 8] {
            let fmm = Fmm::new(
                Laplace,
                &pts,
                FmmOptions { order: p, max_pts_per_leaf: 15, ..Default::default() },
            );
            let e = rel_err(&fmm.eval(&dens).potentials, &truth);
            assert!(e < last, "p={p}: error {e} should beat {last}");
            last = e;
        }
        assert!(last < 1e-7, "p=8 error {last}");
    }

    #[test]
    fn modified_laplace_matches_direct() {
        let k = ModifiedLaplace::new(1.5);
        let pts = cloud(500, 29);
        let dens = densities(500, 1);
        let fmm = Fmm::new(
            k,
            &pts,
            FmmOptions { order: 6, max_pts_per_leaf: 20, ..Default::default() },
        );
        let u = fmm.eval(&dens).potentials;
        let truth = direct_eval(&k, &pts, &dens);
        let e = rel_err(&u, &truth);
        assert!(e < 1e-5, "relative error {e}");
    }

    #[test]
    fn stokes_matches_direct() {
        let k = Stokes::new(0.8);
        let pts = cloud(400, 41);
        let dens = densities(400, 3);
        let fmm = Fmm::new(
            k,
            &pts,
            FmmOptions { order: 6, max_pts_per_leaf: 20, ..Default::default() },
        );
        let u = fmm.eval(&dens).potentials;
        let truth = direct_eval(&k, &pts, &dens);
        let e = rel_err(&u, &truth);
        assert!(e < 1e-4, "relative error {e}");
    }

    #[test]
    fn clustered_distribution_exercises_w_and_x() {
        // Corner-clustered points force level jumps → nonempty W/X lists.
        let mut pts = cloud(300, 5);
        for p in cloud(300, 6) {
            pts.push([0.95 + p[0] * 0.04, 0.95 + p[1] * 0.04, 0.95 + p[2] * 0.04]);
        }
        let dens = densities(600, 1);
        let fmm = Fmm::new(
            Laplace,
            &pts,
            FmmOptions { order: 6, max_pts_per_leaf: 10, ..Default::default() },
        );
        let has_w = fmm.lists.w.iter().any(|w| !w.is_empty());
        let has_x = fmm.lists.x.iter().any(|x| !x.is_empty());
        assert!(has_w && has_x, "test geometry must exercise W and X lists");
        let u = fmm.eval(&dens).potentials;
        let truth = direct_eval(&Laplace, &pts, &dens);
        let e = rel_err(&u, &truth);
        assert!(e < 1e-5, "relative error {e}");
    }

    #[test]
    fn direct_m2l_mode_matches_fft_mode() {
        let pts = cloud(500, 77);
        let dens = densities(500, 1);
        let base = FmmOptions { order: 5, max_pts_per_leaf: 15, ..Default::default() };
        let fft = Fmm::new(Laplace, &pts, FmmOptions { m2l_mode: M2lMode::Fft, ..base });
        let dir = Fmm::new(Laplace, &pts, FmmOptions { m2l_mode: M2lMode::Direct, ..base });
        let uf = fft.eval(&dens).potentials;
        let ud = dir.eval(&dens).potentials;
        // The two paths differ only by FFT round-off accumulated over the
        // (2p)³ grids — far below the discretization error.
        let e = rel_err(&uf, &ud);
        assert!(e < 1e-9, "FFT and dense M2L must agree: {e}");
    }

    #[test]
    fn shallow_tree_falls_back_to_dense() {
        // Few points: depth < 2, everything goes through U lists.
        let pts = cloud(50, 8);
        let dens = densities(50, 1);
        let fmm = Fmm::new(
            Laplace,
            &pts,
            FmmOptions { order: 4, max_pts_per_leaf: 60, ..Default::default() },
        );
        assert!(fmm.tree.depth() < 2);
        let u = fmm.eval(&dens).potentials;
        let truth = direct_eval(&Laplace, &pts, &dens);
        let e = rel_err(&u, &truth);
        assert!(e < 1e-13, "shallow tree is exact: {e}");
    }

    #[test]
    fn linearity_of_evaluation() {
        let pts = cloud(300, 15);
        let fmm = Fmm::new(
            Laplace,
            &pts,
            FmmOptions { order: 4, max_pts_per_leaf: 20, ..Default::default() },
        );
        let d1 = densities(300, 1);
        let d2: Vec<f64> = (0..300).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let combined: Vec<f64> = d1.iter().zip(&d2).map(|(a, b)| 2.0 * a - 0.5 * b).collect();
        let u1 = fmm.eval(&d1).potentials;
        let u2 = fmm.eval(&d2).potentials;
        let uc = fmm.eval(&combined).potentials;
        for i in 0..300 {
            let expect = 2.0 * u1[i] - 0.5 * u2[i];
            assert!((uc[i] - expect).abs() < 1e-9 * expect.abs().max(1.0));
        }
    }

    #[test]
    fn stats_are_populated() {
        let pts = cloud(800, 21);
        let dens = densities(800, 1);
        let fmm = Fmm::new(
            Laplace,
            &pts,
            FmmOptions { order: 4, max_pts_per_leaf: 20, ..Default::default() },
        );
        let stats = fmm.eval(&dens).stats;
        assert!(stats.flops[Phase::Up as usize] > 0);
        assert!(stats.flops[Phase::DownU as usize] > 0);
        assert!(stats.flops[Phase::DownV as usize] > 0);
        assert!(stats.flops[Phase::Eval as usize] > 0);
        assert_eq!(stats.flops[Phase::Comm as usize], 0, "serial run has no comm");
        assert!(stats.total_seconds() > 0.0);
    }

    #[test]
    fn repeated_evaluations_reuse_scratch_and_agree() {
        // The pooled store/workspace must not leak state between calls.
        let pts = cloud(500, 91);
        let dens = densities(500, 1);
        let fmm = Fmm::new(
            Laplace,
            &pts,
            FmmOptions { order: 4, max_pts_per_leaf: 20, ..Default::default() },
        );
        let first = fmm.eval(&dens).potentials;
        for _ in 0..3 {
            assert_eq!(fmm.eval(&dens).potentials, first);
        }
    }

    #[test]
    fn zero_density_gives_zero_potential() {
        let pts = cloud(200, 33);
        let fmm = Fmm::new(Laplace, &pts, FmmOptions::with_order(4));
        let u = fmm.eval(&vec![0.0; 200]).potentials;
        assert!(u.iter().all(|&v| v == 0.0));
    }
}

#[cfg(test)]
mod dipole_tests {
    use super::*;
    use crate::direct::{direct_eval, rel_l2_error};
    use kifmm_kernels::LaplaceDipole;
    use kifmm_testkit::cloud;

    /// Kernel-independence stress test: a kernel outside the paper's
    /// evaluation set (rectangular 1×3 blocks, 1/r² decay, homogeneity
    /// degree −2) runs through the identical machinery.
    #[test]
    fn laplace_dipole_matches_direct() {
        let pts = cloud(600, 77);
        let dens: Vec<f64> = (0..600 * 3).map(|i| ((i * 19 % 23) as f64) / 23.0 - 0.4).collect();
        let fmm = Fmm::new(
            LaplaceDipole,
            &pts,
            FmmOptions { order: 6, max_pts_per_leaf: 20, ..Default::default() },
        );
        assert!(fmm.tree.depth() >= 2);
        let u = fmm.eval(&dens).potentials;
        let truth = direct_eval(&LaplaceDipole, &pts, &dens);
        let e = rel_l2_error(&u, &truth);
        assert!(e < 1e-4, "dipole kernel relative error {e}");
    }
}
