//! The kernel-independent FMM evaluator.
//!
//! [`Fmm::new`] builds the adaptive tree, interaction lists and per-level
//! operators for a point set (sources ≡ targets, the setting of the paper's
//! experiments, where the same discretization points carry densities and
//! receive potentials across tens of Krylov iterations).
//! [`Fmm::eval`] then computes `u_i = Σ_j G(x_i, x_j) φ_j` in `O(N)`:
//!
//! 1. **Upward pass** — S2M at leaves (evaluate the upward check potential
//!    from the sources, invert to the upward equivalent density, eq. 2.1)
//!    and M2M up the tree (eq. 2.3);
//! 2. **Downward pass** — M2L over V lists (eq. 2.4, FFT-accelerated),
//!    X-list sources onto downward check surfaces, L2L down the tree
//!    (eq. 2.5);
//! 3. **Leaf evaluation** — dense U-list interactions, W-list equivalent
//!    densities, and the downward equivalent density, all evaluated at the
//!    targets.

use crate::evaluator::{EvalReport, FmmBuilder};
use crate::m2l::M2lMode;
use crate::operators::FIRST_FMM_LEVEL;
use crate::precompute::{Precomputed, PrecomputeCache};
use crate::stats::{Phase, PhaseStats};
use crate::surface::{num_surface_points, surface_points, RAD_INNER, RAD_OUTER};
use kifmm_fft::C64;
use kifmm_kernels::{Kernel, Point3};
use kifmm_trace::{Counter, RankTracer, Tracer};
use kifmm_tree::{build_lists, InteractionLists, Octree, NO_NODE};
use std::collections::HashMap;
use crate::stats::thread_cpu_time;

/// Evaluator configuration.
#[derive(Clone, Copy, Debug)]
pub struct FmmOptions {
    /// Surface discretization order `p` (points per cube edge). The
    /// paper's 10⁻⁵-accuracy experiments correspond to `p = 6`.
    pub order: usize,
    /// Maximum points per leaf box (the paper's `s`; 60 in most
    /// experiments, 120 in the 3000-processor runs).
    pub max_pts_per_leaf: usize,
    /// Depth cap for the octree.
    pub max_level: u8,
    /// M2L execution mode (FFT or dense).
    pub m2l_mode: M2lMode,
    /// Relative truncation for the check-to-equivalent pseudoinverses.
    pub pinv_tol: f64,
}

impl Default for FmmOptions {
    fn default() -> Self {
        FmmOptions {
            order: 6,
            max_pts_per_leaf: 60,
            max_level: 12,
            m2l_mode: M2lMode::Fft,
            pinv_tol: 1e-10,
        }
    }
}

impl FmmOptions {
    /// Option set with surface order `p`.
    pub fn with_order(order: usize) -> Self {
        FmmOptions { order, ..Default::default() }
    }
}

/// A prepared FMM: tree, lists and operators for one point set.
pub struct Fmm<K: Kernel> {
    pub(crate) kernel: K,
    pub(crate) opts: FmmOptions,
    /// The computation tree.
    pub tree: Octree,
    /// U/V/W/X lists per box.
    pub lists: InteractionLists,
    pub(crate) pre: std::sync::Arc<Precomputed<K>>,
    /// Points permuted into Morton order (leaf ranges contiguous).
    pub(crate) sorted_points: Vec<Point3>,
    pub(crate) num_points: usize,
    /// Observability sink ([`Tracer::disabled`] unless one is attached).
    pub(crate) trace: Tracer,
    /// Route [`Fmm::eval`] through the shared-memory parallel path.
    pub(crate) parallel_eval: bool,
}

impl<K: Kernel> Fmm<K> {
    /// Start a fluent [`FmmBuilder`]:
    /// `Fmm::builder(kernel).points(&pts).order(6).build()`.
    pub fn builder<'a>(kernel: K) -> FmmBuilder<'a, K> {
        FmmBuilder::new(kernel)
    }

    /// Build tree, interaction lists and translation operators.
    pub fn new(kernel: K, points: &[Point3], opts: FmmOptions) -> Self {
        let cache = PrecomputeCache::new();
        Self::with_cache(kernel, points, opts, &cache)
    }

    /// As [`Fmm::new`], but sharing particle-independent operator tables
    /// through `cache` (parameter sweeps, virtual-rank benches).
    pub fn with_cache(
        kernel: K,
        points: &[Point3],
        opts: FmmOptions,
        cache: &PrecomputeCache<K>,
    ) -> Self {
        assert!(opts.order >= 2, "surface order must be ≥ 2");
        assert!(!points.is_empty(), "empty point set");
        let tree = Octree::build(points, opts.max_pts_per_leaf, opts.max_level);
        let lists = build_lists(&tree);
        let depth = tree.depth();
        let root_half = tree.domain.half;
        let pre = cache.get_or_build(&kernel, &opts, root_half, depth);
        let sorted_points: Vec<Point3> =
            tree.perm.iter().map(|&i| points[i as usize]).collect();
        Fmm {
            kernel,
            opts,
            tree,
            lists,
            pre,
            sorted_points,
            num_points: points.len(),
            trace: Tracer::disabled(),
            parallel_eval: false,
        }
    }

    /// Attach (or detach, with [`Tracer::disabled`]) an observability
    /// sink; subsequent [`Fmm::eval`] calls record per-phase spans.
    pub fn set_trace(&mut self, trace: Tracer) {
        self.trace = trace;
    }

    /// The attached tracer (disabled by default).
    pub fn trace(&self) -> &Tracer {
        &self.trace
    }

    /// Route [`Fmm::eval`] through the shared-memory parallel path
    /// (bit-identical results; wall-clock phase timing).
    pub fn set_parallel_eval(&mut self, parallel: bool) {
        self.parallel_eval = parallel;
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.num_points
    }

    /// True when empty (never; construction requires points).
    pub fn is_empty(&self) -> bool {
        self.num_points == 0
    }

    /// The kernel.
    pub fn kernel(&self) -> &K {
        &self.kernel
    }

    /// The options the evaluator was built with.
    pub fn options(&self) -> &FmmOptions {
        &self.opts
    }

    /// Evaluate potentials for `densities` (original point order,
    /// `SRC_DIM` interleaved components per point). The report carries
    /// `TRG_DIM` components per point in the original order, the
    /// per-phase statistics, and the attached tracer.
    ///
    /// Runs the serial path unless the shared-memory parallel path was
    /// selected ([`FmmBuilder::parallel`] / [`Fmm::set_parallel_eval`]).
    pub fn eval(&self, densities: &[f64]) -> EvalReport {
        let (potentials, stats) = if self.parallel_eval {
            self.eval_parallel_impl(densities)
        } else {
            self.eval_serial_impl(densities)
        };
        EvalReport { potentials, stats, trace: self.trace.clone() }
    }

    /// Deprecated shim over [`Fmm::eval`].
    #[deprecated(note = "use `eval(densities).potentials` (see the Evaluator trait)")]
    pub fn evaluate(&self, densities: &[f64]) -> Vec<f64> {
        self.eval_serial_impl(densities).0
    }

    /// Deprecated shim over [`Fmm::eval`].
    #[deprecated(note = "use `eval(densities)` and read `.potentials` / `.stats`")]
    pub fn evaluate_with_stats(&self, densities: &[f64]) -> (Vec<f64>, PhaseStats) {
        self.eval_serial_impl(densities)
    }

    /// The serial evaluation pipeline (tracing through the attached
    /// tracer's rank-0 buffer).
    pub(crate) fn eval_serial_impl(&self, densities: &[f64]) -> (Vec<f64>, PhaseStats) {
        assert_eq!(
            densities.len(),
            self.num_points * K::SRC_DIM,
            "density vector must have SRC_DIM entries per point"
        );
        let mut stats = PhaseStats::new();
        let rt = self.trace.rank(0);
        let n = self.num_points;
        // Permute densities into Morton order.
        let mut dens = vec![0.0; n * K::SRC_DIM];
        for (sorted_i, &orig) in self.tree.perm.iter().enumerate() {
            for c in 0..K::SRC_DIM {
                dens[sorted_i * K::SRC_DIM + c] = densities[orig as usize * K::SRC_DIM + c];
            }
        }

        let up = self.upward_pass(&dens, &mut stats, &rt);
        let down = self.downward_pass(&up, &dens, &mut stats, &rt);
        let pot = self.leaf_evaluation(&up, &down, &dens, &mut stats, &rt);

        // Un-permute potentials.
        let mut out = vec![0.0; n * K::TRG_DIM];
        for (sorted_i, &orig) in self.tree.perm.iter().enumerate() {
            for c in 0..K::TRG_DIM {
                out[orig as usize * K::TRG_DIM + c] = pot[sorted_i * K::TRG_DIM + c];
            }
        }
        (out, stats)
    }

    /// Upward equivalent densities for every box at level ≥ 2
    /// (flat, node-major; unused levels stay zero).
    pub(crate) fn upward_pass(
        &self,
        dens: &[f64],
        stats: &mut PhaseStats,
        rt: &RankTracer,
    ) -> Vec<f64> {
        let ns = num_surface_points(self.opts.order);
        let es = ns * K::SRC_DIM;
        let cs = ns * K::TRG_DIM;
        let mut up = vec![0.0; self.tree.num_nodes() * es];
        let depth = self.tree.depth();
        if depth < FIRST_FMM_LEVEL {
            return up;
        }
        let _span = rt.span("Up", "Up");
        let start = thread_cpu_time();
        let mut flops = 0u64;
        let mut cells = 0u64;
        let mut check = vec![0.0; cs];
        for level in (FIRST_FMM_LEVEL..=depth).rev() {
            let lops = self.pre.ops.at(level);
            cells += self.tree.levels[level as usize].len() as u64;
            for &ni in &self.tree.levels[level as usize] {
                let node = &self.tree.nodes[ni as usize];
                check.fill(0.0);
                if node.is_leaf() {
                    // S2M: sources → upward check potential.
                    let (pts, d) = self.leaf_data(ni, dens);
                    let c = self.tree.domain.box_center(&node.key);
                    let uc = surface_points(self.opts.order, RAD_OUTER, c, lops.box_half);
                    self.kernel.p2p(&uc, pts, d, &mut check);
                    flops += (pts.len() * ns) as u64 * self.kernel.flops_per_eval();
                } else {
                    // M2M: children equivalents → this check potential.
                    for (oct, &ci) in node.children.iter().enumerate() {
                        if ci == NO_NODE {
                            continue;
                        }
                        let child_equiv = &up[ci as usize * es..(ci as usize + 1) * es];
                        kifmm_linalg::gemv(1.0, &lops.ue2uc[oct], child_equiv, 1.0, &mut check);
                        flops += 2 * (cs * es) as u64;
                    }
                }
                // Invert to the upward equivalent density.
                let slot = &mut up[ni as usize * es..(ni as usize + 1) * es];
                kifmm_linalg::gemv(1.0, &lops.uc2ue, &check, 0.0, slot);
                flops += 2 * (cs * es) as u64;
            }
        }
        stats.add_seconds(Phase::Up, thread_cpu_time() - start);
        stats.add_flops(Phase::Up, flops);
        rt.add(Counter::Flops, flops);
        rt.add(Counter::CellsTouched, cells);
        up
    }

    /// Downward equivalent densities (flat, node-major).
    pub(crate) fn downward_pass(
        &self,
        up: &[f64],
        dens: &[f64],
        stats: &mut PhaseStats,
        rt: &RankTracer,
    ) -> Vec<f64> {
        let ns = num_surface_points(self.opts.order);
        let es = ns * K::SRC_DIM;
        let cs = ns * K::TRG_DIM;
        let nn = self.tree.num_nodes();
        let mut down = vec![0.0; nn * es];
        let depth = self.tree.depth();
        if depth < FIRST_FMM_LEVEL {
            return down;
        }
        let mut check = vec![0.0; nn * cs];

        // DownV: M2L translations, level by level.
        let v_flops_before = stats.flops[Phase::DownV as usize];
        for level in FIRST_FMM_LEVEL..=depth {
            let _v = rt.span("DownV", "m2l").with_n(level as u64);
            match self.opts.m2l_mode {
                M2lMode::Fft => self.m2l_fft_level(level, up, &mut check, stats),
                M2lMode::Direct => self.m2l_direct_level(level, up, &mut check, stats),
            }
        }
        rt.add(Counter::Flops, stats.flops[Phase::DownV as usize] - v_flops_before);

        // DownX: coarser leaves' sources onto downward check surfaces.
        let xspan = rt.span("DownX", "x-list");
        let xstart = thread_cpu_time();
        let mut xflops = 0u64;
        for level in FIRST_FMM_LEVEL..=depth {
            for &ni in &self.tree.levels[level as usize] {
                if self.lists.x[ni as usize].is_empty() {
                    continue;
                }
                let node = &self.tree.nodes[ni as usize];
                let c = self.tree.domain.box_center(&node.key);
                let half = self.pre.ops.at(level).box_half;
                let dc = surface_points(self.opts.order, RAD_INNER, c, half);
                let slot = &mut check[ni as usize * cs..(ni as usize + 1) * cs];
                for &a in &self.lists.x[ni as usize] {
                    let (pts, d) = self.leaf_data(a, dens);
                    self.kernel.p2p(&dc, pts, d, slot);
                    xflops += (pts.len() * ns) as u64 * self.kernel.flops_per_eval();
                }
            }
        }
        stats.add_seconds(Phase::DownX, thread_cpu_time() - xstart);
        stats.add_flops(Phase::DownX, xflops);
        rt.add(Counter::Flops, xflops);
        drop(xspan);

        // Eval (L2L part): parent-to-child translation + inversion,
        // top-down so parents are final before children read them.
        let lspan = rt.span("Eval", "l2l");
        let lstart = thread_cpu_time();
        let mut lflops = 0u64;
        for level in FIRST_FMM_LEVEL..=depth {
            let lops = self.pre.ops.at(level);
            for &ni in &self.tree.levels[level as usize] {
                let node = &self.tree.nodes[ni as usize];
                if level > FIRST_FMM_LEVEL {
                    let pi = node.parent as usize;
                    let parent_equiv = &down[pi * es..(pi + 1) * es];
                    let oct = node.key.octant() as usize;
                    let slot = &mut check[ni as usize * cs..(ni as usize + 1) * cs];
                    kifmm_linalg::gemv(1.0, &lops.de2dc[oct], parent_equiv, 1.0, slot);
                    lflops += 2 * (cs * es) as u64;
                }
                let slot = &check[ni as usize * cs..(ni as usize + 1) * cs];
                let out = &mut down[ni as usize * es..(ni as usize + 1) * es];
                kifmm_linalg::gemv(1.0, &lops.dc2de, slot, 0.0, out);
                lflops += 2 * (cs * es) as u64;
            }
        }
        stats.add_seconds(Phase::Eval, thread_cpu_time() - lstart);
        stats.add_flops(Phase::Eval, lflops);
        rt.add(Counter::Flops, lflops);
        drop(lspan);
        down
    }

    /// FFT M2L over one level: forward-transform every source box used by
    /// a V list, Hadamard-accumulate per target, inverse-transform.
    fn m2l_fft_level(&self, level: u8, up: &[f64], check: &mut [f64], stats: &mut PhaseStats) {
        let fft = self.pre.m2l_fft.as_ref().expect("FFT tables present in Fft mode");
        let ns = num_surface_points(self.opts.order);
        let es = ns * K::SRC_DIM;
        let cs = ns * K::TRG_DIM;
        let g = fft.grid_len();
        let start = thread_cpu_time();
        let mut flops = 0u64;

        // Which source boxes at this level feed some V list?
        let mut needed: Vec<u32> = Vec::new();
        for &ni in &self.tree.levels[level as usize] {
            needed.extend_from_slice(&self.lists.v[ni as usize]);
        }
        needed.sort_unstable();
        needed.dedup();
        if needed.is_empty() {
            return;
        }
        let mut spectra: HashMap<u32, Vec<C64>> = HashMap::with_capacity(needed.len());
        for &a in &needed {
            let mut buf = vec![C64::ZERO; K::SRC_DIM * g];
            fft.transform_source(&up[a as usize * es..(a as usize + 1) * es], &mut buf);
            flops += fft.fft_flops(K::SRC_DIM);
            spectra.insert(a, buf);
        }
        let mut acc = vec![C64::ZERO; K::TRG_DIM * g];
        for &ni in &self.tree.levels[level as usize] {
            let vlist = &self.lists.v[ni as usize];
            if vlist.is_empty() {
                continue;
            }
            acc.fill(C64::ZERO);
            let bkey = self.tree.nodes[ni as usize].key;
            for &a in vlist {
                let akey = self.tree.nodes[a as usize].key;
                let dir = bkey.offset_to(&akey);
                flops += fft.accumulate(level, dir, &spectra[&a], &mut acc);
            }
            fft.extract_check(
                level,
                &mut acc,
                &mut check[ni as usize * cs..(ni as usize + 1) * cs],
            );
            flops += fft.fft_flops(K::TRG_DIM);
        }
        stats.add_seconds(Phase::DownV, thread_cpu_time() - start);
        stats.add_flops(Phase::DownV, flops);
    }

    /// Dense M2L over one level (ablation baseline).
    fn m2l_direct_level(&self, level: u8, up: &[f64], check: &mut [f64], stats: &mut PhaseStats) {
        let direct = self.pre.m2l_direct.as_ref().expect("direct tables present in Direct mode");
        let ns = num_surface_points(self.opts.order);
        let es = ns * K::SRC_DIM;
        let cs = ns * K::TRG_DIM;
        let start = thread_cpu_time();
        let mut flops = 0u64;
        for &ni in &self.tree.levels[level as usize] {
            let bkey = self.tree.nodes[ni as usize].key;
            let slot = &mut check[ni as usize * cs..(ni as usize + 1) * cs];
            for &a in &self.lists.v[ni as usize] {
                let akey = self.tree.nodes[a as usize].key;
                let dir = bkey.offset_to(&akey);
                flops += direct.apply(
                    level,
                    dir,
                    &up[a as usize * es..(a as usize + 1) * es],
                    slot,
                );
            }
        }
        stats.add_seconds(Phase::DownV, thread_cpu_time() - start);
        stats.add_flops(Phase::DownV, flops);
    }

    /// Per-leaf evaluation: U (dense), W (equivalent densities), L2T.
    fn leaf_evaluation(
        &self,
        up: &[f64],
        down: &[f64],
        dens: &[f64],
        stats: &mut PhaseStats,
        rt: &RankTracer,
    ) -> Vec<f64> {
        let ns = num_surface_points(self.opts.order);
        let es = ns * K::SRC_DIM;
        let mut pot = vec![0.0; self.num_points * K::TRG_DIM];
        let kf = self.kernel.flops_per_eval();

        let leaves: Vec<u32> = self.tree.leaves().collect();
        rt.add(Counter::CellsTouched, leaves.len() as u64);
        // DownU: dense near interactions.
        let uspan = rt.span("DownU", "u-list");
        let ustart = thread_cpu_time();
        let mut uflops = 0u64;
        for &ni in &leaves {
            let node = &self.tree.nodes[ni as usize];
            let (trg, _) = self.leaf_data(ni, dens);
            let (s, e) = (node.pt_start as usize, node.pt_end as usize);
            let out = &mut pot[s * K::TRG_DIM..e * K::TRG_DIM];
            for &a in &self.lists.u[ni as usize] {
                let (src, d) = self.leaf_data(a, dens);
                self.kernel.p2p(trg, src, d, out);
                uflops += (trg.len() * src.len()) as u64 * kf;
            }
        }
        stats.add_seconds(Phase::DownU, thread_cpu_time() - ustart);
        stats.add_flops(Phase::DownU, uflops);
        rt.add(Counter::Flops, uflops);
        drop(uspan);

        // DownW: equivalent densities of finer separated boxes.
        let wspan = rt.span("DownW", "w-list");
        let wstart = thread_cpu_time();
        let mut wflops = 0u64;
        for &ni in &leaves {
            if self.lists.w[ni as usize].is_empty() {
                continue;
            }
            let node = &self.tree.nodes[ni as usize];
            let (trg, _) = self.leaf_data(ni, dens);
            let (s, e) = (node.pt_start as usize, node.pt_end as usize);
            let out = &mut pot[s * K::TRG_DIM..e * K::TRG_DIM];
            for &a in &self.lists.w[ni as usize] {
                let akey = self.tree.nodes[a as usize].key;
                let ac = self.tree.domain.box_center(&akey);
                let ah = self.tree.domain.box_half(akey.level);
                let ue = surface_points(self.opts.order, RAD_INNER, ac, ah);
                let equiv = &up[a as usize * es..(a as usize + 1) * es];
                self.kernel.p2p(trg, &ue, equiv, out);
                wflops += (trg.len() * ns) as u64 * kf;
            }
        }
        stats.add_seconds(Phase::DownW, thread_cpu_time() - wstart);
        stats.add_flops(Phase::DownW, wflops);
        rt.add(Counter::Flops, wflops);
        drop(wspan);

        // Eval (L2T part): downward equivalent density at the targets.
        let espan = rt.span("Eval", "l2t");
        let estart = thread_cpu_time();
        let mut eflops = 0u64;
        if self.tree.depth() >= FIRST_FMM_LEVEL {
            for &ni in &leaves {
                let node = &self.tree.nodes[ni as usize];
                if node.key.level < FIRST_FMM_LEVEL {
                    continue;
                }
                let (trg, _) = self.leaf_data(ni, dens);
                let (s, e) = (node.pt_start as usize, node.pt_end as usize);
                let out = &mut pot[s * K::TRG_DIM..e * K::TRG_DIM];
                let c = self.tree.domain.box_center(&node.key);
                let half = self.tree.domain.box_half(node.key.level);
                let de = surface_points(self.opts.order, RAD_OUTER, c, half);
                let equiv = &down[ni as usize * es..(ni as usize + 1) * es];
                self.kernel.p2p(trg, &de, equiv, out);
                eflops += (trg.len() * ns) as u64 * kf;
            }
        }
        stats.add_seconds(Phase::Eval, thread_cpu_time() - estart);
        stats.add_flops(Phase::Eval, eflops);
        rt.add(Counter::Flops, eflops);
        drop(espan);
        pot
    }

    /// Sorted points and density slice of a box.
    pub(crate) fn leaf_data<'a>(&'a self, ni: u32, dens: &'a [f64]) -> (&'a [Point3], &'a [f64]) {
        let node = &self.tree.nodes[ni as usize];
        let (s, e) = (node.pt_start as usize, node.pt_end as usize);
        (&self.sorted_points[s..e], &dens[s * K::SRC_DIM..e * K::SRC_DIM])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::direct_eval;
    use kifmm_kernels::{Laplace, ModifiedLaplace, Stokes};

    fn rel_err(a: &[f64], b: &[f64]) -> f64 {
        let num: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt();
        let den: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        num / den
    }

    fn cloud(n: usize, seed: u64) -> Vec<Point3> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                std::array::from_fn(|_| {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
                })
            })
            .collect()
    }

    fn densities(n: usize, dim: usize) -> Vec<f64> {
        (0..n * dim).map(|i| ((i * 31 % 101) as f64) / 101.0).collect()
    }

    #[test]
    fn laplace_matches_direct_uniform() {
        let pts = cloud(600, 17);
        let dens = densities(600, 1);
        let fmm = Fmm::new(
            Laplace,
            &pts,
            FmmOptions { order: 6, max_pts_per_leaf: 20, ..Default::default() },
        );
        assert!(fmm.tree.depth() >= 2, "tree must be deep enough to exercise M2L");
        let u = fmm.eval(&dens).potentials;
        let truth = direct_eval(&Laplace, &pts, &dens);
        let e = rel_err(&u, &truth);
        assert!(e < 1e-5, "relative error {e}");
    }

    #[test]
    fn laplace_accuracy_improves_with_order() {
        let pts = cloud(400, 3);
        let dens = densities(400, 1);
        let truth = direct_eval(&Laplace, &pts, &dens);
        let mut last = f64::INFINITY;
        for p in [4usize, 6, 8] {
            let fmm = Fmm::new(
                Laplace,
                &pts,
                FmmOptions { order: p, max_pts_per_leaf: 15, ..Default::default() },
            );
            let e = rel_err(&fmm.eval(&dens).potentials, &truth);
            assert!(e < last, "p={p}: error {e} should beat {last}");
            last = e;
        }
        assert!(last < 1e-7, "p=8 error {last}");
    }

    #[test]
    fn modified_laplace_matches_direct() {
        let k = ModifiedLaplace::new(1.5);
        let pts = cloud(500, 29);
        let dens = densities(500, 1);
        let fmm = Fmm::new(
            k,
            &pts,
            FmmOptions { order: 6, max_pts_per_leaf: 20, ..Default::default() },
        );
        let u = fmm.eval(&dens).potentials;
        let truth = direct_eval(&k, &pts, &dens);
        let e = rel_err(&u, &truth);
        assert!(e < 1e-5, "relative error {e}");
    }

    #[test]
    fn stokes_matches_direct() {
        let k = Stokes::new(0.8);
        let pts = cloud(400, 41);
        let dens = densities(400, 3);
        let fmm = Fmm::new(
            k,
            &pts,
            FmmOptions { order: 6, max_pts_per_leaf: 20, ..Default::default() },
        );
        let u = fmm.eval(&dens).potentials;
        let truth = direct_eval(&k, &pts, &dens);
        let e = rel_err(&u, &truth);
        assert!(e < 1e-4, "relative error {e}");
    }

    #[test]
    fn clustered_distribution_exercises_w_and_x() {
        // Corner-clustered points force level jumps → nonempty W/X lists.
        let mut pts = cloud(300, 5);
        for p in cloud(300, 6) {
            pts.push([0.95 + p[0] * 0.04, 0.95 + p[1] * 0.04, 0.95 + p[2] * 0.04]);
        }
        let dens = densities(600, 1);
        let fmm = Fmm::new(
            Laplace,
            &pts,
            FmmOptions { order: 6, max_pts_per_leaf: 10, ..Default::default() },
        );
        let has_w = fmm.lists.w.iter().any(|w| !w.is_empty());
        let has_x = fmm.lists.x.iter().any(|x| !x.is_empty());
        assert!(has_w && has_x, "test geometry must exercise W and X lists");
        let u = fmm.eval(&dens).potentials;
        let truth = direct_eval(&Laplace, &pts, &dens);
        let e = rel_err(&u, &truth);
        assert!(e < 1e-5, "relative error {e}");
    }

    #[test]
    fn direct_m2l_mode_matches_fft_mode() {
        let pts = cloud(500, 77);
        let dens = densities(500, 1);
        let base = FmmOptions { order: 5, max_pts_per_leaf: 15, ..Default::default() };
        let fft = Fmm::new(Laplace, &pts, FmmOptions { m2l_mode: M2lMode::Fft, ..base });
        let dir = Fmm::new(Laplace, &pts, FmmOptions { m2l_mode: M2lMode::Direct, ..base });
        let uf = fft.eval(&dens).potentials;
        let ud = dir.eval(&dens).potentials;
        // The two paths differ only by FFT round-off accumulated over the
        // (2p)³ grids — far below the discretization error.
        let e = rel_err(&uf, &ud);
        assert!(e < 1e-9, "FFT and dense M2L must agree: {e}");
    }

    #[test]
    fn shallow_tree_falls_back_to_dense() {
        // Few points: depth < 2, everything goes through U lists.
        let pts = cloud(50, 8);
        let dens = densities(50, 1);
        let fmm = Fmm::new(
            Laplace,
            &pts,
            FmmOptions { order: 4, max_pts_per_leaf: 60, ..Default::default() },
        );
        assert!(fmm.tree.depth() < 2);
        let u = fmm.eval(&dens).potentials;
        let truth = direct_eval(&Laplace, &pts, &dens);
        let e = rel_err(&u, &truth);
        assert!(e < 1e-13, "shallow tree is exact: {e}");
    }

    #[test]
    fn linearity_of_evaluation() {
        let pts = cloud(300, 15);
        let fmm = Fmm::new(
            Laplace,
            &pts,
            FmmOptions { order: 4, max_pts_per_leaf: 20, ..Default::default() },
        );
        let d1 = densities(300, 1);
        let d2: Vec<f64> = (0..300).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let combined: Vec<f64> = d1.iter().zip(&d2).map(|(a, b)| 2.0 * a - 0.5 * b).collect();
        let u1 = fmm.eval(&d1).potentials;
        let u2 = fmm.eval(&d2).potentials;
        let uc = fmm.eval(&combined).potentials;
        for i in 0..300 {
            let expect = 2.0 * u1[i] - 0.5 * u2[i];
            assert!((uc[i] - expect).abs() < 1e-9 * expect.abs().max(1.0));
        }
    }

    #[test]
    fn stats_are_populated() {
        let pts = cloud(800, 21);
        let dens = densities(800, 1);
        let fmm = Fmm::new(
            Laplace,
            &pts,
            FmmOptions { order: 4, max_pts_per_leaf: 20, ..Default::default() },
        );
        let stats = fmm.eval(&dens).stats;
        assert!(stats.flops[Phase::Up as usize] > 0);
        assert!(stats.flops[Phase::DownU as usize] > 0);
        assert!(stats.flops[Phase::DownV as usize] > 0);
        assert!(stats.flops[Phase::Eval as usize] > 0);
        assert_eq!(stats.flops[Phase::Comm as usize], 0, "serial run has no comm");
        assert!(stats.total_seconds() > 0.0);
    }

    #[test]
    fn zero_density_gives_zero_potential() {
        let pts = cloud(200, 33);
        let fmm = Fmm::new(Laplace, &pts, FmmOptions::with_order(4));
        let u = fmm.eval(&vec![0.0; 200]).potentials;
        assert!(u.iter().all(|&v| v == 0.0));
    }
}

#[cfg(test)]
mod dipole_tests {
    use super::*;
    use crate::direct::{direct_eval, rel_l2_error};
    use kifmm_kernels::LaplaceDipole;

    /// Kernel-independence stress test: a kernel outside the paper's
    /// evaluation set (rectangular 1×3 blocks, 1/r² decay, homogeneity
    /// degree −2) runs through the identical machinery.
    #[test]
    fn laplace_dipole_matches_direct() {
        let mut s = 77u64;
        let pts: Vec<Point3> = (0..600)
            .map(|_| {
                std::array::from_fn(|_| {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
                })
            })
            .collect();
        let dens: Vec<f64> = (0..600 * 3).map(|i| ((i * 19 % 23) as f64) / 23.0 - 0.4).collect();
        let fmm = Fmm::new(
            LaplaceDipole,
            &pts,
            FmmOptions { order: 6, max_pts_per_leaf: 20, ..Default::default() },
        );
        assert!(fmm.tree.depth() >= 2);
        let u = fmm.eval(&dens).potentials;
        let truth = direct_eval(&LaplaceDipole, &pts, &dens);
        let e = rel_l2_error(&u, &truth);
        assert!(e < 1e-4, "dipole kernel relative error {e}");
    }
}
