//! The kernel-independent FMM evaluator.
//!
//! [`Fmm::new`] builds the adaptive tree, interaction lists and per-level
//! operators for a point set (sources ≡ targets, the setting of the paper's
//! experiments, where the same discretization points carry densities and
//! receive potentials across tens of Krylov iterations).
//! [`Fmm::eval`] then computes `u_i = Σ_j G(x_i, x_j) φ_j` in `O(N)`:
//!
//! 1. **Upward pass** — S2M at leaves (evaluate the upward check potential
//!    from the sources, invert to the upward equivalent density, eq. 2.1)
//!    and M2M up the tree (eq. 2.3);
//! 2. **Downward pass** — M2L over V lists (eq. 2.4, FFT-accelerated),
//!    X-list sources onto downward check surfaces, L2L down the tree
//!    (eq. 2.5);
//! 3. **Leaf evaluation** — dense U-list interactions, W-list equivalent
//!    densities, and the downward equivalent density, all evaluated at the
//!    targets.
//!
//! All pass mathematics lives in [`crate::engine`]; the setup/execute
//! split lives in [`crate::plan`]: `Fmm` is literally a [`Session`] over a
//! privately-owned [`Plan`] (it `Deref`s through both), kept as the
//! convenient build-and-evaluate entry point. Callers that build once and
//! evaluate from many threads, batch right-hand sides, or reuse setup
//! across requests should use [`Plan`]/[`Session`]/[`PlanCache`]
//! directly.
//!
//! [`Plan`]: crate::plan::Plan
//! [`PlanCache`]: crate::plan::PlanCache

use crate::evaluator::{EvalReport, FmmBuilder, OutputSpec};
use crate::m2l::M2lMode;
use crate::plan::{Plan, Session};
use crate::precompute::PrecomputeCache;
use kifmm_kernels::{Kernel, Point3};
use kifmm_tree::TreeBuild;

/// Evaluator configuration.
#[derive(Clone, Copy, Debug)]
pub struct FmmOptions {
    /// Surface discretization order `p` (points per cube edge). The
    /// paper's 10⁻⁵-accuracy experiments correspond to `p = 6`.
    pub order: usize,
    /// Maximum points per leaf box (the paper's `s`; 60 in most
    /// experiments, 120 in the 3000-processor runs).
    pub max_pts_per_leaf: usize,
    /// Depth cap for the octree.
    pub max_level: u8,
    /// M2L execution mode (FFT or dense).
    pub m2l_mode: M2lMode,
    /// Relative truncation for the check-to-equivalent pseudoinverses.
    pub pinv_tol: f64,
    /// Distributed tree construction algorithm (sample sort vs the
    /// paper's per-level Allreduce). Both yield bitwise-identical
    /// structure; serial builds ignore this.
    pub tree_build: TreeBuild,
    /// What each evaluation produces: potentials only (default), or
    /// potentials plus gradients (far field read off the equivalent
    /// densities; see [`crate::evaluator::OutputSpec`]).
    pub output: OutputSpec,
}

impl Default for FmmOptions {
    fn default() -> Self {
        FmmOptions {
            order: 6,
            max_pts_per_leaf: 60,
            max_level: 12,
            m2l_mode: M2lMode::Fft,
            pinv_tol: 1e-10,
            tree_build: TreeBuild::default(),
            output: OutputSpec::Potential,
        }
    }
}

impl FmmOptions {
    /// Option set with surface order `p`.
    pub fn with_order(order: usize) -> Self {
        FmmOptions { order, ..Default::default() }
    }
}

/// A prepared FMM: a [`Session`] over a privately-built [`Plan`] for one
/// point set. `Deref`s to the session (execution policy) and through it
/// to the plan (tree, lists, operators), so `fmm.tree`, `fmm.eval(..)`
/// and `fmm.set_parallel_eval(..)` all resolve as before the split.
pub struct Fmm<K: Kernel> {
    pub(crate) session: Session<K>,
}

impl<K: Kernel> Fmm<K> {
    /// Start a fluent [`FmmBuilder`]:
    /// `Fmm::builder(kernel).points(&pts).order(6).build()`.
    pub fn builder<'a>(kernel: K) -> FmmBuilder<'a, K> {
        FmmBuilder::new(kernel)
    }

    /// Build tree, interaction lists and translation operators.
    ///
    /// # Panics
    /// On an empty point set or a surface order below 2; use
    /// [`FmmBuilder::try_build`] for a `Result`.
    pub fn new(kernel: K, points: &[Point3], opts: FmmOptions) -> Self {
        let cache = PrecomputeCache::new();
        Self::with_cache(kernel, points, opts, &cache)
    }

    /// As [`Fmm::new`], but sharing particle-independent operator tables
    /// through `cache` (parameter sweeps, virtual-rank benches).
    pub fn with_cache(
        kernel: K,
        points: &[Point3],
        opts: FmmOptions,
        cache: &PrecomputeCache<K>,
    ) -> Self {
        let plan = Plan::try_new_with_cache(kernel, points, opts, cache)
            .unwrap_or_else(|e| panic!("{e}"));
        Fmm { session: Session::from_plan(plan) }
    }

    /// Wrap an existing session (e.g. one opened over a [`PlanCache`]d
    /// plan) in the `Fmm` front end, for code written against `Fmm`.
    ///
    /// [`PlanCache`]: crate::plan::PlanCache
    pub fn from_session(session: Session<K>) -> Self {
        Fmm { session }
    }

    /// Evaluate potentials for `densities` (original point order,
    /// `SRC_DIM` interleaved components per point). The report carries
    /// `TRG_DIM` components per point in the original order, the
    /// per-phase statistics, and the attached tracer.
    ///
    /// Runs the serial path unless the shared-memory parallel path was
    /// selected ([`FmmBuilder::parallel`] / [`Session::set_parallel_eval`]).
    pub fn eval(&self, densities: &[f64]) -> EvalReport {
        self.session.eval(densities)
    }

    /// Evaluate a batch of `k` density vectors through **one** set of FMM
    /// passes (see [`Plan::execute`]): the per-level translation GEMMs
    /// widen `k`-fold, the FFT M2L reuses each direction tensor across
    /// the batch, and the dense passes hoist pair geometry. Each report's
    /// potentials are bit-identical to the corresponding [`Fmm::eval`].
    pub fn eval_many(&self, densities: &[&[f64]]) -> Vec<EvalReport> {
        self.session.eval_many(densities)
    }
}

impl<K: Kernel> std::ops::Deref for Fmm<K> {
    type Target = Session<K>;

    fn deref(&self) -> &Session<K> {
        &self.session
    }
}

impl<K: Kernel> std::ops::DerefMut for Fmm<K> {
    fn deref_mut(&mut self) -> &mut Session<K> {
        &mut self.session
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::direct_eval;
    use crate::stats::Phase;
    use kifmm_kernels::{Laplace, ModifiedLaplace, Stokes};
    use kifmm_testkit::cloud;

    fn rel_err(a: &[f64], b: &[f64]) -> f64 {
        let num: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt();
        let den: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        num / den
    }

    fn densities(n: usize, dim: usize) -> Vec<f64> {
        (0..n * dim).map(|i| ((i * 31 % 101) as f64) / 101.0).collect()
    }

    #[test]
    fn laplace_matches_direct_uniform() {
        let pts = cloud(600, 17);
        let dens = densities(600, 1);
        let fmm = Fmm::new(
            Laplace,
            &pts,
            FmmOptions { order: 6, max_pts_per_leaf: 20, ..Default::default() },
        );
        assert!(fmm.tree.depth() >= 2, "tree must be deep enough to exercise M2L");
        let u = fmm.eval(&dens).potentials;
        let truth = direct_eval(&Laplace, &pts, &dens);
        let e = rel_err(&u, &truth);
        assert!(e < 1e-5, "relative error {e}");
    }

    #[test]
    fn laplace_accuracy_improves_with_order() {
        let pts = cloud(400, 3);
        let dens = densities(400, 1);
        let truth = direct_eval(&Laplace, &pts, &dens);
        let mut last = f64::INFINITY;
        for p in [4usize, 6, 8] {
            let fmm = Fmm::new(
                Laplace,
                &pts,
                FmmOptions { order: p, max_pts_per_leaf: 15, ..Default::default() },
            );
            let e = rel_err(&fmm.eval(&dens).potentials, &truth);
            assert!(e < last, "p={p}: error {e} should beat {last}");
            last = e;
        }
        assert!(last < 1e-7, "p=8 error {last}");
    }

    #[test]
    fn modified_laplace_matches_direct() {
        let k = ModifiedLaplace::new(1.5);
        let pts = cloud(500, 29);
        let dens = densities(500, 1);
        let fmm = Fmm::new(
            k,
            &pts,
            FmmOptions { order: 6, max_pts_per_leaf: 20, ..Default::default() },
        );
        let u = fmm.eval(&dens).potentials;
        let truth = direct_eval(&k, &pts, &dens);
        let e = rel_err(&u, &truth);
        assert!(e < 1e-5, "relative error {e}");
    }

    #[test]
    fn stokes_matches_direct() {
        let k = Stokes::new(0.8);
        let pts = cloud(400, 41);
        let dens = densities(400, 3);
        let fmm = Fmm::new(
            k,
            &pts,
            FmmOptions { order: 6, max_pts_per_leaf: 20, ..Default::default() },
        );
        let u = fmm.eval(&dens).potentials;
        let truth = direct_eval(&k, &pts, &dens);
        let e = rel_err(&u, &truth);
        assert!(e < 1e-4, "relative error {e}");
    }

    #[test]
    fn clustered_distribution_exercises_w_and_x() {
        // Corner-clustered points force level jumps → nonempty W/X lists.
        let mut pts = cloud(300, 5);
        for p in cloud(300, 6) {
            pts.push([0.95 + p[0] * 0.04, 0.95 + p[1] * 0.04, 0.95 + p[2] * 0.04]);
        }
        let dens = densities(600, 1);
        let fmm = Fmm::new(
            Laplace,
            &pts,
            FmmOptions { order: 6, max_pts_per_leaf: 10, ..Default::default() },
        );
        let has_w = fmm.lists.w.iter().any(|w| !w.is_empty());
        let has_x = fmm.lists.x.iter().any(|x| !x.is_empty());
        assert!(has_w && has_x, "test geometry must exercise W and X lists");
        let u = fmm.eval(&dens).potentials;
        let truth = direct_eval(&Laplace, &pts, &dens);
        let e = rel_err(&u, &truth);
        assert!(e < 1e-5, "relative error {e}");
    }

    #[test]
    fn direct_m2l_mode_matches_fft_mode() {
        let pts = cloud(500, 77);
        let dens = densities(500, 1);
        let base = FmmOptions { order: 5, max_pts_per_leaf: 15, ..Default::default() };
        let fft = Fmm::new(Laplace, &pts, FmmOptions { m2l_mode: M2lMode::Fft, ..base });
        let dir = Fmm::new(Laplace, &pts, FmmOptions { m2l_mode: M2lMode::Direct, ..base });
        let uf = fft.eval(&dens).potentials;
        let ud = dir.eval(&dens).potentials;
        // The two paths differ only by FFT round-off accumulated over the
        // (2p)³ grids — far below the discretization error.
        let e = rel_err(&uf, &ud);
        assert!(e < 1e-9, "FFT and dense M2L must agree: {e}");
    }

    #[test]
    fn svd_m2l_mode_matches_fft_mode() {
        let pts = cloud(500, 77);
        let dens = densities(500, 1);
        let base = FmmOptions { order: 5, max_pts_per_leaf: 15, ..Default::default() };
        let fft = Fmm::new(Laplace, &pts, FmmOptions { m2l_mode: M2lMode::Fft, ..base });
        let svd = Fmm::new(Laplace, &pts, FmmOptions { m2l_mode: M2lMode::Svd, ..base });
        let uf = fft.eval(&dens).potentials;
        let us = svd.eval(&dens).potentials;
        // The SVD truncation sits at machine precision, so the two paths
        // differ only by round-off — the same inter-mode gate as Direct.
        let e = rel_err(&uf, &us);
        assert!(e < 1e-9, "FFT and SVD M2L must agree: {e}");
    }

    #[test]
    fn shallow_tree_falls_back_to_dense() {
        // Few points: depth < 2, everything goes through U lists.
        let pts = cloud(50, 8);
        let dens = densities(50, 1);
        let fmm = Fmm::new(
            Laplace,
            &pts,
            FmmOptions { order: 4, max_pts_per_leaf: 60, ..Default::default() },
        );
        assert!(fmm.tree.depth() < 2);
        let u = fmm.eval(&dens).potentials;
        let truth = direct_eval(&Laplace, &pts, &dens);
        let e = rel_err(&u, &truth);
        assert!(e < 1e-13, "shallow tree is exact: {e}");
    }

    #[test]
    fn linearity_of_evaluation() {
        let pts = cloud(300, 15);
        let fmm = Fmm::new(
            Laplace,
            &pts,
            FmmOptions { order: 4, max_pts_per_leaf: 20, ..Default::default() },
        );
        let d1 = densities(300, 1);
        let d2: Vec<f64> = (0..300).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let combined: Vec<f64> = d1.iter().zip(&d2).map(|(a, b)| 2.0 * a - 0.5 * b).collect();
        let u1 = fmm.eval(&d1).potentials;
        let u2 = fmm.eval(&d2).potentials;
        let uc = fmm.eval(&combined).potentials;
        for i in 0..300 {
            let expect = 2.0 * u1[i] - 0.5 * u2[i];
            assert!((uc[i] - expect).abs() < 1e-9 * expect.abs().max(1.0));
        }
    }

    #[test]
    fn stats_are_populated() {
        let pts = cloud(800, 21);
        let dens = densities(800, 1);
        let fmm = Fmm::new(
            Laplace,
            &pts,
            FmmOptions { order: 4, max_pts_per_leaf: 20, ..Default::default() },
        );
        let stats = fmm.eval(&dens).stats;
        assert!(stats.flops[Phase::Up as usize] > 0);
        assert!(stats.flops[Phase::DownU as usize] > 0);
        assert!(stats.flops[Phase::DownV as usize] > 0);
        assert!(stats.flops[Phase::Eval as usize] > 0);
        assert_eq!(stats.flops[Phase::Comm as usize], 0, "serial run has no comm");
        assert!(stats.total_seconds() > 0.0);
    }

    #[test]
    fn repeated_evaluations_reuse_scratch_and_agree() {
        // The pooled store/workspace must not leak state between calls.
        let pts = cloud(500, 91);
        let dens = densities(500, 1);
        let fmm = Fmm::new(
            Laplace,
            &pts,
            FmmOptions { order: 4, max_pts_per_leaf: 20, ..Default::default() },
        );
        let first = fmm.eval(&dens).potentials;
        for _ in 0..3 {
            assert_eq!(fmm.eval(&dens).potentials, first);
        }
    }

    #[test]
    fn zero_density_gives_zero_potential() {
        let pts = cloud(200, 33);
        let fmm = Fmm::new(Laplace, &pts, FmmOptions::with_order(4));
        let u = fmm.eval(&vec![0.0; 200]).potentials;
        assert!(u.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn eval_many_single_rhs_equals_eval() {
        let pts = cloud(400, 51);
        let dens = densities(400, 1);
        let fmm = Fmm::new(
            Laplace,
            &pts,
            FmmOptions { order: 4, max_pts_per_leaf: 20, ..Default::default() },
        );
        let single = fmm.eval(&dens).potentials;
        let batch = fmm.eval_many(&[&dens]);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].potentials, single);
    }
}

#[cfg(test)]
mod dipole_tests {
    use super::*;
    use crate::direct::{direct_eval, rel_l2_error};
    use kifmm_kernels::LaplaceDipole;
    use kifmm_testkit::cloud;

    /// Kernel-independence stress test: a kernel outside the paper's
    /// evaluation set (rectangular 1×3 blocks, 1/r² decay, homogeneity
    /// degree −2) runs through the identical machinery.
    #[test]
    fn laplace_dipole_matches_direct() {
        let pts = cloud(600, 77);
        let dens: Vec<f64> = (0..600 * 3).map(|i| ((i * 19 % 23) as f64) / 23.0 - 0.4).collect();
        let fmm = Fmm::new(
            LaplaceDipole,
            &pts,
            FmmOptions { order: 6, max_pts_per_leaf: 20, ..Default::default() },
        );
        assert!(fmm.tree.depth() >= 2);
        let u = fmm.eval(&dens).potentials;
        let truth = direct_eval(&LaplaceDipole, &pts, &dens);
        let e = rel_l2_error(&u, &truth);
        assert!(e < 1e-4, "dipole kernel relative error {e}");
    }

    /// The dipole kernel's rectangular blocks through the batched path.
    #[test]
    fn laplace_dipole_eval_many_bitwise() {
        let pts = cloud(400, 78);
        let dens: Vec<Vec<f64>> = (0..3)
            .map(|q| {
                (0..400 * 3)
                    .map(|i| (((i * 19 + q * 7) % 23) as f64) / 23.0 - 0.4)
                    .collect()
            })
            .collect();
        let fmm = Fmm::new(
            LaplaceDipole,
            &pts,
            FmmOptions { order: 4, max_pts_per_leaf: 20, ..Default::default() },
        );
        let refs: Vec<&[f64]> = dens.iter().map(Vec::as_slice).collect();
        for (q, rep) in fmm.eval_many(&refs).iter().enumerate() {
            assert_eq!(rep.potentials, fmm.eval(&dens[q]).potentials, "RHS {q}");
        }
    }
}
