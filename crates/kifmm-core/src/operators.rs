//! Per-level translation operators (paper §2.1, equations (2.1)–(2.5)).
//!
//! All boxes of one level share the same geometry up to translation, so the
//! four dense operators are precomputed once per level:
//!
//! * `UC2UE` — upward check potential → upward equivalent density: the
//!   (regularized pseudo-)inverse of the first-kind system (2.1)/(2.3);
//! * `UE2UC[oct]` — child upward equivalent → parent upward check (the
//!   forward map of the M2M translation (2.3)), one per octant;
//! * `DC2DE` — downward check potential → downward equivalent density
//!   (inverse of (2.2)/(2.4)/(2.5));
//! * `DE2DC[oct]` — parent downward equivalent → child downward check (the
//!   forward map of the L2L translation (2.5)).
//!
//! For kernels homogeneous of degree `d` (Laplace, Stokes: `d = −1`) the
//! operators are assembled once at a reference level and rescaled by
//! `(r_l/r_ref)^d` (or the reciprocal for the inverses); the modified
//! Laplace kernel carries a physical length scale and is assembled level
//! by level.

use crate::surface::{num_surface_points, surface_points, RAD_INNER, RAD_OUTER};
use kifmm_kernels::{assemble, Kernel};
use kifmm_linalg::{pinv_with_tol, Mat};

/// Operators shared by all boxes of one level.
#[derive(Clone, Debug)]
pub struct LevelOps {
    /// Box half-width at this level.
    pub box_half: f64,
    /// Upward check potential → upward equivalent density,
    /// `(n_s·SRC) × (n_s·TRG)`.
    pub uc2ue: Mat,
    /// Child (octant `o`, one level finer) upward equivalent → this box's
    /// upward check potential, `(n_s·TRG) × (n_s·SRC)`.
    pub ue2uc: Vec<Mat>,
    /// Downward check potential → downward equivalent density.
    pub dc2de: Mat,
    /// Parent (one level coarser) downward equivalent → this box's
    /// (octant `o`) downward check potential.
    pub de2dc: Vec<Mat>,
}

/// Operator tables for levels `2..=depth` (coarser levels have no
/// well-separated boxes, hence no equivalent densities — the redundant
/// near-root work the paper accepts is skipped entirely in serial).
pub struct OperatorTable {
    /// `levels[l]` is `Some` for `2 ≤ l ≤ depth`.
    pub levels: Vec<Option<LevelOps>>,
    /// Surface discretization order `p`.
    pub order: usize,
}

/// The coarsest level that carries equivalent densities.
pub const FIRST_FMM_LEVEL: u8 = 2;

impl OperatorTable {
    /// Assemble operators for a tree of the given depth whose root box has
    /// half-width `root_half`.
    pub fn build<K: Kernel>(
        kernel: &K,
        order: usize,
        root_half: f64,
        depth: u8,
        pinv_tol: f64,
    ) -> OperatorTable {
        let mut levels: Vec<Option<LevelOps>> = vec![None; depth as usize + 1];
        if depth < FIRST_FMM_LEVEL {
            return OperatorTable { levels, order };
        }
        match kernel.homogeneity() {
            Some(deg) => {
                // Reference level, then rescale.
                let ref_level = FIRST_FMM_LEVEL;
                let ref_half = root_half / (1u64 << ref_level) as f64;
                let base = build_level(kernel, order, ref_half, pinv_tol);
                for l in FIRST_FMM_LEVEL..=depth {
                    let half = root_half / (1u64 << l) as f64;
                    let lam = half / ref_half;
                    let fwd = lam.powf(deg);
                    let inv = lam.powf(-deg);
                    let mut ops = base.clone();
                    ops.box_half = half;
                    ops.uc2ue.scale(inv);
                    ops.dc2de.scale(inv);
                    for m in ops.ue2uc.iter_mut().chain(ops.de2dc.iter_mut()) {
                        m.scale(fwd);
                    }
                    levels[l as usize] = Some(ops);
                }
            }
            None => {
                for l in FIRST_FMM_LEVEL..=depth {
                    let half = root_half / (1u64 << l) as f64;
                    levels[l as usize] = Some(build_level(kernel, order, half, pinv_tol));
                }
            }
        }
        OperatorTable { levels, order }
    }

    /// Operators at `level`, or `None` when the level carries none
    /// (coarser than [`FIRST_FMM_LEVEL`], or beyond the table's depth).
    pub fn try_at(&self, level: u8) -> Option<&LevelOps> {
        self.levels.get(level as usize).and_then(Option::as_ref)
    }

    /// Operators at `level`; panics if the level carries none. Plan
    /// construction validates coverage up front (surfacing gaps as a
    /// typed `BuildError`), so reaching this panic from an engine pass
    /// means a caller bypassed that validation — use
    /// [`OperatorTable::try_at`] where absence is an expected outcome.
    pub fn at(&self, level: u8) -> &LevelOps {
        self.try_at(level).unwrap_or_else(|| {
            panic!(
                "no operators at level {level} (table covers {}..={})",
                FIRST_FMM_LEVEL,
                self.levels.len().saturating_sub(1)
            )
        })
    }

    /// Number of surface points per surface.
    pub fn num_surface(&self) -> usize {
        num_surface_points(self.order)
    }
}

/// Assemble the four operators for boxes of half-width `half`.
fn build_level<K: Kernel>(kernel: &K, order: usize, half: f64, pinv_tol: f64) -> LevelOps {
    let origin = [0.0; 3];
    // This box's surfaces.
    let ue = surface_points(order, RAD_INNER, origin, half);
    let uc = surface_points(order, RAD_OUTER, origin, half);
    let de = surface_points(order, RAD_OUTER, origin, half);
    let dc = surface_points(order, RAD_INNER, origin, half);

    let uc2ue = pinv_with_tol(&assemble(kernel, &uc, &ue), pinv_tol);
    let dc2de = pinv_with_tol(&assemble(kernel, &dc, &de), pinv_tol);

    // Children of this box (for UE2UC): half-width half/2, offset ±half/2.
    let mut ue2uc = Vec::with_capacity(8);
    for oct in 0..8u8 {
        let cc = child_center(origin, half, oct);
        let child_ue = surface_points(order, RAD_INNER, cc, half / 2.0);
        ue2uc.push(assemble(kernel, &uc, &child_ue));
    }

    // This box as a child of its parent (for DE2DC): parent half-width
    // 2·half centered so that this box sits at octant `oct`.
    let mut de2dc = Vec::with_capacity(8);
    for oct in 0..8u8 {
        let parent_center = parent_center_of(origin, half, oct);
        let parent_de = surface_points(order, RAD_OUTER, parent_center, 2.0 * half);
        de2dc.push(assemble(kernel, &dc, &parent_de));
    }

    LevelOps { box_half: half, uc2ue, ue2uc, dc2de, de2dc }
}

/// Center of child `oct` of a box at `c` with half-width `half`.
pub fn child_center(c: [f64; 3], half: f64, oct: u8) -> [f64; 3] {
    let q = half / 2.0;
    [
        c[0] + if oct & 1 == 0 { -q } else { q },
        c[1] + if oct & 2 == 0 { -q } else { q },
        c[2] + if oct & 4 == 0 { -q } else { q },
    ]
}

/// Center of the parent of a box at `c` (half-width `half`) sitting in the
/// parent's octant `oct`.
fn parent_center_of(c: [f64; 3], half: f64, oct: u8) -> [f64; 3] {
    [
        c[0] - if oct & 1 == 0 { -half } else { half },
        c[1] - if oct & 2 == 0 { -half } else { half },
        c[2] - if oct & 4 == 0 { -half } else { half },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use kifmm_kernels::{Laplace, ModifiedLaplace, Point3, Stokes};

    /// Random points strictly inside a box.
    fn points_in_box(c: Point3, half: f64, n: usize, seed: u64) -> Vec<Point3> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                std::array::from_fn(|d| {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    c[d] + (((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0) * 0.9 * half
                })
            })
            .collect()
    }

    /// End-to-end check of the S2M construction: the equivalent density on
    /// the upward equivalent surface reproduces the source potential in the
    /// far range.
    fn s2m_far_field_error<K: Kernel>(kernel: &K, order: usize) -> f64 {
        let half = 0.5;
        let srcs = points_in_box([0.0; 3], half, 40, 123);
        let dens: Vec<f64> = (0..40 * kernel.src_dim()).map(|i| ((i * 7) % 11) as f64 / 11.0).collect();
        let ue = surface_points(order, RAD_INNER, [0.0; 3], half);
        let uc = surface_points(order, RAD_OUTER, [0.0; 3], half);
        // Check potential from sources, then invert.
        let mut check = vec![0.0; uc.len() * kernel.trg_dim()];
        kernel.p2p(&uc, &srcs, &dens, &mut check);
        let uc2ue = pinv_with_tol(&assemble(kernel, &uc, &ue), 1e-10);
        let equiv = uc2ue.matvec(&check);
        // Compare fields at far points (outside the 3r near range).
        let far: Vec<Point3> = vec![
            [2.5, 0.0, 0.0],
            [0.0, -3.0, 0.5],
            [2.0, 2.0, 2.0],
            [-2.2, 1.8, -1.9],
        ];
        let mut truth = vec![0.0; far.len() * kernel.trg_dim()];
        kernel.p2p(&far, &srcs, &dens, &mut truth);
        let mut approx = vec![0.0; far.len() * kernel.trg_dim()];
        kernel.p2p(&far, &ue, &equiv, &mut approx);
        let num: f64 = truth
            .iter()
            .zip(&approx)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        let den: f64 = truth.iter().map(|v| v * v).sum::<f64>().sqrt();
        num / den
    }

    #[test]
    fn equivalent_density_converges_with_order_laplace() {
        let e4 = s2m_far_field_error(&Laplace, 4);
        let e6 = s2m_far_field_error(&Laplace, 6);
        let e8 = s2m_far_field_error(&Laplace, 8);
        assert!(e4 < 1e-3, "p=4 error {e4}");
        assert!(e6 < 1e-5, "p=6 error {e6}");
        assert!(e8 < 1e-7, "p=8 error {e8}");
        assert!(e6 < e4 && e8 < e6, "errors must decrease with p");
    }

    #[test]
    fn equivalent_density_works_for_all_kernels() {
        assert!(s2m_far_field_error(&ModifiedLaplace::new(1.0), 6) < 1e-4);
        assert!(s2m_far_field_error(&Stokes::new(1.0), 6) < 1e-4);
    }

    #[test]
    fn homogeneous_scaling_matches_direct_assembly() {
        // Operators built by rescaling must equal operators assembled at
        // the target level directly.
        let table = OperatorTable::build(&Laplace, 4, 1.0, 4, 1e-12);
        let direct = build_level(&Laplace, 4, 1.0 / 16.0, 1e-12);
        let scaled = table.at(4);
        assert!((scaled.box_half - 1.0 / 16.0).abs() < 1e-15);
        for (a, b) in [
            (&scaled.ue2uc[3], &direct.ue2uc[3]),
            (&scaled.de2dc[5], &direct.de2dc[5]),
        ] {
            let mut diff = a.clone();
            diff.add_scaled(-1.0, b);
            assert!(diff.max_abs() < 1e-10 * b.max_abs(), "forward operator mismatch");
        }
        // Pseudoinverses can differ in null directions; compare their
        // action composed with the forward map instead.
        let ue = surface_points(4, RAD_INNER, [0.0; 3], 1.0 / 16.0);
        let uc = surface_points(4, RAD_OUTER, [0.0; 3], 1.0 / 16.0);
        let k = assemble(&Laplace, &uc, &ue);
        let x: Vec<f64> = (0..ue.len()).map(|i| (i as f64 * 0.37).sin()).collect();
        let chk = k.matvec(&x);
        let a = scaled.uc2ue.matvec(&chk);
        let b = direct.uc2ue.matvec(&chk);
        // Both must reproduce the same check potential.
        let ka = k.matvec(&a);
        let kb = k.matvec(&b);
        for (u, v) in ka.iter().zip(&kb) {
            assert!((u - v).abs() < 1e-8, "pinv action mismatch {u} vs {v}");
        }
    }

    #[test]
    fn m2m_preserves_far_field() {
        // Child equivalent density translated to the parent reproduces the
        // same far potential.
        let kernel = Laplace;
        let order = 6;
        let parent_half = 0.5;
        let oct = 6u8;
        let cc = child_center([0.0; 3], parent_half, oct);
        let srcs = points_in_box(cc, parent_half / 2.0, 30, 9);
        let dens: Vec<f64> = (0..30).map(|i| 1.0 - (i as f64 * 0.05)).collect();

        // Child S2M.
        let cue = surface_points(order, RAD_INNER, cc, parent_half / 2.0);
        let cuc = surface_points(order, RAD_OUTER, cc, parent_half / 2.0);
        let c_uc2ue = pinv_with_tol(&assemble(&kernel, &cuc, &cue), 1e-12);
        let mut c_check = vec![0.0; cuc.len()];
        kernel.p2p(&cuc, &srcs, &dens, &mut c_check);
        let c_equiv = c_uc2ue.matvec(&c_check);

        // M2M via the operator table geometry.
        let ops = build_level(&kernel, order, parent_half, 1e-12);
        let p_check = ops.ue2uc[oct as usize].matvec(&c_equiv);
        let p_equiv = ops.uc2ue.matvec(&p_check);

        // Far-field comparison.
        let pue = surface_points(order, RAD_INNER, [0.0; 3], parent_half);
        let far = [[3.0, 1.0, -2.0], [-2.5, -2.5, 2.5], [0.0, 4.0, 0.0]];
        let mut truth = vec![0.0; 3];
        kernel.p2p(&far, &srcs, &dens, &mut truth);
        let mut approx = vec![0.0; 3];
        kernel.p2p(&far, &pue, &p_equiv, &mut approx);
        for (t, a) in truth.iter().zip(&approx) {
            assert!((t - a).abs() < 1e-5 * t.abs().max(1e-3), "M2M far field: {t} vs {a}");
        }
    }

    #[test]
    fn child_center_octants() {
        let c = child_center([0.0; 3], 1.0, 0);
        assert_eq!(c, [-0.5, -0.5, -0.5]);
        let c = child_center([0.0; 3], 1.0, 7);
        assert_eq!(c, [0.5, 0.5, 0.5]);
        let c = child_center([2.0, 0.0, -2.0], 1.0, 1);
        assert_eq!(c, [2.5, -0.5, -2.5]);
        // parent_center_of inverts child_center.
        for oct in 0..8 {
            let child = child_center([1.0, -1.0, 0.5], 2.0, oct);
            let back = parent_center_of(child, 1.0, oct);
            assert_eq!(back, [1.0, -1.0, 0.5]);
        }
    }

    #[test]
    fn shallow_tree_has_no_operators() {
        let t = OperatorTable::build(&Laplace, 4, 1.0, 1, 1e-12);
        assert!(t.levels.iter().all(|l| l.is_none()));
    }

    #[test]
    fn try_at_covers_exactly_the_fmm_levels() {
        let t = OperatorTable::build(&Laplace, 3, 1.0, 4, 1e-12);
        assert!(t.try_at(0).is_none() && t.try_at(1).is_none());
        for level in FIRST_FMM_LEVEL..=4 {
            assert!(t.try_at(level).is_some(), "level {level} missing");
        }
        assert!(t.try_at(5).is_none(), "beyond the table's depth");
    }

    #[test]
    #[should_panic(expected = "no operators at level 1")]
    fn at_panics_with_level_and_coverage() {
        let t = OperatorTable::build(&Laplace, 3, 1.0, 3, 1e-12);
        let _ = t.at(1);
    }
}
