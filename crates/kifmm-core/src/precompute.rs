//! Shared, immutable translation-operator tables.
//!
//! Everything the FMM precomputes — the per-level check/equivalent
//! pseudoinverses, the M2M/L2L forward maps and the 316 M2L kernel-tensor
//! FFTs — depends only on `(kernel, order, root half-width, depth,
//! m2l mode)`, not on the particle data. [`Precomputed`] bundles those
//! tables and [`PrecomputeCache`] deduplicates them across evaluators.
//!
//! The cache matters for the virtual-rank benches: on a real cluster every
//! MPI rank builds (identical) tables against its own memory, but when the
//! bench harness runs 64 virtual ranks as threads on one host, 64 copies
//! of a 78 MB Stokes M2L table would be pure waste — the tables are
//! read-only and bit-identical, so the ranks share one `Arc`.

use crate::fmm::FmmOptions;
use crate::m2l::{M2lDirect, M2lFft, M2lMode, M2lSvd};
use crate::operators::{OperatorTable, FIRST_FMM_LEVEL};
use kifmm_kernels::Kernel;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// All particle-independent tables for one FMM configuration.
pub struct Precomputed<K: Kernel> {
    /// Per-level UC2UE/UE2UC/DC2DE/DE2DC operators.
    pub ops: OperatorTable,
    /// FFT M2L tables (in [`M2lMode::Fft`] and [`M2lMode::Auto`]).
    pub m2l_fft: Option<M2lFft<K>>,
    /// Dense M2L cache (in [`M2lMode::Direct`] and [`M2lMode::Auto`] —
    /// lazy, so holding it costs nothing until a direct translation runs).
    pub m2l_direct: Option<M2lDirect<K>>,
    /// SVD-compressed M2L tables (in [`M2lMode::Svd`] and
    /// [`M2lMode::Auto`]).
    pub m2l_svd: Option<M2lSvd<K>>,
}

impl<K: Kernel> Precomputed<K> {
    /// Assemble the tables for a tree of the given depth and root size.
    /// [`M2lMode::Auto`] builds every candidate family the autotuner may
    /// pick from (the dense one is lazy, so it is always included).
    pub fn build(kernel: &K, opts: &FmmOptions, root_half: f64, depth: u8) -> Self {
        let ops = OperatorTable::build(kernel, opts.order, root_half, depth, opts.pinv_tol);
        let (m2l_fft, m2l_direct, m2l_svd) = if depth >= FIRST_FMM_LEVEL {
            match opts.m2l_mode {
                M2lMode::Fft => {
                    (Some(M2lFft::build(kernel, opts.order, root_half, depth)), None, None)
                }
                M2lMode::Direct => {
                    (None, Some(M2lDirect::new(kernel, opts.order, root_half, depth)), None)
                }
                M2lMode::Svd => {
                    (None, None, Some(M2lSvd::build(kernel, opts.order, root_half, depth)))
                }
                M2lMode::Auto => (
                    Some(M2lFft::build(kernel, opts.order, root_half, depth)),
                    Some(M2lDirect::new(kernel, opts.order, root_half, depth)),
                    Some(M2lSvd::build(kernel, opts.order, root_half, depth)),
                ),
            }
        } else {
            (None, None, None)
        };
        Precomputed { ops, m2l_fft, m2l_direct, m2l_svd }
    }
}

/// A concurrent cache of [`Precomputed`] tables keyed by configuration.
///
/// The kernel itself is *not* part of the key: one cache instance serves
/// one kernel value (the type parameter pins the kernel type; callers must
/// not mix differently-parameterized kernels in one cache).
pub struct PrecomputeCache<K: Kernel> {
    map: Mutex<HashMap<(u8, u64, usize, M2lMode), Arc<Precomputed<K>>>>,
}

impl<K: Kernel> Default for PrecomputeCache<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Kernel> PrecomputeCache<K> {
    /// Empty cache.
    pub fn new() -> Self {
        PrecomputeCache { map: Mutex::new(HashMap::new()) }
    }

    /// Fetch or build the tables for `(opts, root_half, depth)`. The first
    /// caller builds while holding the lock; concurrent callers with the
    /// same key wait and then share the result.
    pub fn get_or_build(
        &self,
        kernel: &K,
        opts: &FmmOptions,
        root_half: f64,
        depth: u8,
    ) -> Arc<Precomputed<K>> {
        // The full mode is part of the key: Fft, Direct, Svd and Auto
        // each build a different table set (the old boolean key would
        // have handed an Svd evaluator an Fft-only table).
        let key = (depth, root_half.to_bits(), opts.order, opts.m2l_mode);
        // A poisoned lock only means some other cache user panicked
        // mid-build; the map itself is always in a consistent state, so
        // recover the guard rather than cascading the panic.
        let mut map = self.map.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        map.entry(key)
            .or_insert_with(|| Arc::new(Precomputed::build(kernel, opts, root_half, depth)))
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kifmm_kernels::Laplace;

    #[test]
    fn cache_deduplicates() {
        let cache = PrecomputeCache::new();
        let opts = FmmOptions { order: 3, ..Default::default() };
        let a = cache.get_or_build(&Laplace, &opts, 1.0, 3);
        let b = cache.get_or_build(&Laplace, &opts, 1.0, 3);
        assert!(Arc::ptr_eq(&a, &b), "same key shares tables");
        let c = cache.get_or_build(&Laplace, &opts, 1.0, 4);
        assert!(!Arc::ptr_eq(&a, &c), "different depth rebuilds");
    }

    #[test]
    fn shallow_build_has_no_m2l() {
        let opts = FmmOptions { order: 3, ..Default::default() };
        let p = Precomputed::build(&Laplace, &opts, 1.0, 1);
        assert!(p.m2l_fft.is_none() && p.m2l_direct.is_none() && p.m2l_svd.is_none());
    }

    #[test]
    fn cache_keys_on_full_m2l_mode() {
        let cache = PrecomputeCache::new();
        let mk = |mode| FmmOptions { order: 3, m2l_mode: mode, ..Default::default() };
        let fft = cache.get_or_build(&Laplace, &mk(M2lMode::Fft), 1.0, 3);
        let svd = cache.get_or_build(&Laplace, &mk(M2lMode::Svd), 1.0, 3);
        let direct = cache.get_or_build(&Laplace, &mk(M2lMode::Direct), 1.0, 3);
        assert!(!Arc::ptr_eq(&fft, &svd) && !Arc::ptr_eq(&svd, &direct));
        assert!(fft.m2l_fft.is_some() && fft.m2l_svd.is_none());
        assert!(svd.m2l_svd.is_some() && svd.m2l_fft.is_none());
        assert!(direct.m2l_direct.is_some());
        // Auto holds every candidate family the tuner may pick from.
        let auto = cache.get_or_build(&Laplace, &mk(M2lMode::Auto), 1.0, 3);
        assert!(auto.m2l_fft.is_some() && auto.m2l_svd.is_some() && auto.m2l_direct.is_some());
    }
}
