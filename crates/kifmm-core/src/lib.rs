//! The kernel-independent fast multipole method (KIFMM) of Ying, Biros,
//! Zorin & Langston (SC 2003).
//!
//! Instead of analytic multipole/local expansions, the method represents
//! far fields by *equivalent densities* on cube surfaces around each octree
//! box and converts between them by solving small exterior/interior
//! integral equations ([`surface`], [`operators`]). The M2L translation —
//! the dominant cost of the downward pass — is accelerated with local FFTs
//! ([`m2l`]). The result is an `O(N)` evaluator ([`Fmm`]) that works for
//! any non-oscillatory second-order elliptic kernel implementing
//! `kifmm_kernels::Kernel`.
//!
//! ```
//! use kifmm_core::{Evaluator, Fmm};
//! use kifmm_kernels::Laplace;
//!
//! let points: Vec<[f64; 3]> = (0..500)
//!     .map(|i| {
//!         let t = i as f64;
//!         [(t * 0.37).sin(), (t * 0.73).cos(), (t * 0.11).sin()]
//!     })
//!     .collect();
//! let densities = vec![1.0; points.len()];
//! let fmm = Fmm::builder(Laplace).points(&points).build();
//! let report = fmm.eval(&densities);
//! assert_eq!(report.potentials.len(), points.len());
//! ```

pub mod direct;
pub mod engine;
pub mod evaluator;
pub mod fmm;
pub mod m2l;
pub mod operators;
pub mod par_eval;
pub mod plan;
pub mod precompute;
pub mod stats;
pub mod surface;
pub mod targets;
pub mod work;

pub use direct::{
    direct_eval, direct_eval_grad, direct_eval_grad_src_trg, direct_eval_src_trg, rel_l2_error,
};
pub use engine::{ActiveSet, EngineWorkspace, ExpansionStore, LocalSources, PassEngine, SourceProvider};
pub use evaluator::{EvalReport, Evaluator, FmmBuilder, OutputSpec};
pub use fmm::{Fmm, FmmOptions};
pub use plan::{
    geometry_hash, kernel_name_hash, resolve_m2l_modes, BuildError, M2lChoice, Plan, PlanCache,
    PlanKey, Session, UpdateError,
};
pub use kifmm_tree::TreeBuild;
pub use m2l::{v_list_directions, M2lDirect, M2lFft, M2lMode, M2lSvd, SvdSlot};
pub use operators::{LevelOps, OperatorTable, FIRST_FMM_LEVEL};
pub use precompute::{Precomputed, PrecomputeCache};
pub use stats::{thread_cpu_time, Phase, PhaseStats, PHASES, PHASE_NAMES};
pub use surface::{num_surface_points, surface_points, RAD_INNER, RAD_OUTER};
pub use work::{leaf_work_rates, point_work_estimates};
