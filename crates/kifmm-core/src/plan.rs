//! Plan/execute split: [`Plan`], [`Session`] and [`PlanCache`].
//!
//! Building an FMM is expensive (tree, interaction lists, pseudoinverse
//! inversions, M2L tensor FFTs); evaluating one is cheap and, in the
//! solver setting of the paper (tens of Krylov iterations over a fixed
//! discretization), happens many times per build. This module makes that
//! asymmetry structural:
//!
//! * a [`Plan`] is everything particle-geometry setup produces —
//!   immutable, `Send + Sync`, shareable across any number of threads;
//! * a [`Session`] is a cheap front end over an `Arc<Plan>` holding the
//!   *mutable* per-evaluation state (pooled expansion stores and
//!   workspaces, checked out lock-free from a [`Freelist`]) plus the
//!   execution policy (tracer, serial/pool dispatch);
//! * a [`PlanCache`] memoizes plans by
//!   `(kernel id, order, M2L mode, leaf capacity, depth cap, geometry)`
//!   with an LRU byte bound, so a service answering repeated requests
//!   against recurring geometries skips setup entirely on a warm hit.
//!
//! [`crate::Fmm`] is now a thin plan-then-execute wrapper (one `Session`
//! over one private plan), so existing callers keep working unchanged.

use crate::engine::{
    ActiveSet, EngineWorkspace, ExpansionStore, LocalSources, PassEngine,
};
use crate::fmm::FmmOptions;
use crate::m2l::M2lMode;
use crate::operators::FIRST_FMM_LEVEL;
use crate::precompute::{Precomputed, PrecomputeCache};
use crate::stats::{thread_cpu_time, Phase, PhaseStats};
use crate::surface::num_surface_points;
use kifmm_kernels::{Kernel, Point3};
use kifmm_runtime::{Dispatch, Freelist};
use kifmm_tree::{build_lists, build_lists_sorted, update_octree, InteractionLists, Octree};
use kifmm_trace::{Counter, Tracer};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Why a plan (or evaluator) could not be built.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// `points(..)` was never supplied to the builder.
    MissingPoints,
    /// The supplied point set is empty.
    EmptyPoints,
    /// Surface order below the minimum of 2.
    OrderTooSmall(usize),
    /// The precomputed operator table lacks a level the tree requires.
    /// Surfaced at build time as a typed error instead of the
    /// `OperatorTable::at` panic a later evaluation would hit.
    MissingOperators {
        /// First level found without operators.
        level: u8,
        /// Depth of the tree the plan was being built for.
        depth: u8,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::MissingPoints => {
                write!(f, "FmmBuilder::points(..) is required before build()")
            }
            BuildError::EmptyPoints => write!(f, "empty point set"),
            BuildError::OrderTooSmall(p) => {
                write!(f, "surface order must be ≥ 2 (got {p})")
            }
            BuildError::MissingOperators { level, depth } => {
                write!(
                    f,
                    "operator table has no level-{level} operators for a depth-{depth} tree"
                )
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Why [`Plan::update_points`] could not patch an existing plan. Every
/// variant means "rebuild from scratch" (e.g. via
/// [`PlanCache::get_or_update`], which does so automatically).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateError {
    /// A point drifted outside the plan's root cube. The Morton mapping
    /// would silently clamp it to the boundary, corrupting near/far
    /// classification — so drift is a typed error forcing a re-rooted
    /// rebuild.
    DomainOverflow {
        /// Index of the first offending point.
        point: usize,
        /// Coordinate axis (0/1/2) that left the cube.
        dim: usize,
    },
    /// The new point set has a different cardinality; an update cannot
    /// describe insertions or deletions.
    PointCountChanged {
        /// Points the plan was built over.
        old: usize,
        /// Points supplied to the update.
        new: usize,
    },
    /// The patched tree is deeper than the plan's operator tables cover
    /// (points clustered more tightly than any configuration seen at
    /// plan time).
    StructureOutgrown {
        /// Depth the updated tree reached.
        depth: u8,
        /// Deepest level the existing operator tables cover.
        covered: u8,
    },
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateError::DomainOverflow { point, dim } => write!(
                f,
                "point {point} left the plan's domain cube along axis {dim}; rebuild required"
            ),
            UpdateError::PointCountChanged { old, new } => {
                write!(f, "point count changed from {old} to {new}; rebuild required")
            }
            UpdateError::StructureOutgrown { depth, covered } => write!(
                f,
                "updated tree reaches depth {depth} but operators cover only level {covered}; \
                 rebuild required"
            ),
        }
    }
}

impl std::error::Error for UpdateError {}

impl From<kifmm_tree::UpdateError> for UpdateError {
    fn from(e: kifmm_tree::UpdateError) -> Self {
        match e {
            kifmm_tree::UpdateError::DomainOverflow { point, dim } => {
                UpdateError::DomainOverflow { point, dim }
            }
            kifmm_tree::UpdateError::PointCountChanged { old, new } => {
                UpdateError::PointCountChanged { old, new }
            }
        }
    }
}

/// Verify the operator table carries every level a depth-`depth` tree
/// executes (`FIRST_FMM_LEVEL..=depth`), turning a would-be panic deep in
/// an engine pass into a typed build-time error.
pub(crate) fn check_operator_coverage(
    ops: &crate::operators::OperatorTable,
    depth: u8,
) -> Result<(), BuildError> {
    for level in FIRST_FMM_LEVEL..=depth {
        if ops.try_at(level).is_none() {
            return Err(BuildError::MissingOperators { level, depth });
        }
    }
    Ok(())
}

/// FNV-1a over the bit patterns of a point set (length-prefixed,
/// word-granular, hashed in fixed-size chunks whose digests are folded
/// in order — deterministic for any thread count, and an update-path
/// hot spot at millions of points). Two geometries hash equal iff every
/// coordinate is bit-identical — the condition under which a plan is
/// exactly reusable.
pub fn geometry_hash(points: &[Point3]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    const CHUNK: usize = 1 << 16;
    fn digest(seed: u64, points: &[Point3]) -> u64 {
        let mut h = seed;
        for p in points {
            for c in p {
                h ^= c.to_bits();
                h = h.wrapping_mul(PRIME);
            }
        }
        h
    }
    let mut h = OFFSET ^ points.len() as u64;
    h = h.wrapping_mul(PRIME);
    if points.len() <= CHUNK {
        return digest(h, points);
    }
    let chunks = points.len().div_ceil(CHUNK);
    let partials = kifmm_runtime::par_map(chunks, |c| {
        digest(OFFSET, &points[c * CHUNK..((c + 1) * CHUNK).min(points.len())])
    });
    for d in partials {
        h ^= d;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// One level's verdict from the plan-time M2L autotuner (populated when
/// the plan was built with [`M2lMode::Auto`]).
#[derive(Clone, Copy, Debug)]
pub struct M2lChoice {
    /// Tree level the verdict applies to.
    pub level: u8,
    /// The winning execution mode for this level.
    pub mode: M2lMode,
    /// Modeled flops of one single-RHS FFT pass over the level.
    pub fft_flops: u64,
    /// Modeled flops of one single-RHS SVD pass over the level.
    pub svd_flops: u64,
    /// Modeled flops of one single-RHS dense pass over the level.
    pub direct_flops: u64,
    /// Measured SVD target-side rank at this level (out of `n_s·TRG_DIM`).
    pub rank_trg: usize,
    /// Measured SVD source-side rank at this level (out of `n_s·SRC_DIM`).
    pub rank_src: usize,
    /// Stored-entry fraction of the level's SVD tables relative to 316
    /// dense operators (smaller is better; 1.0 means no compression).
    pub compression: f64,
}

/// Resolve an [`FmmOptions`] M2L mode into the per-level execution modes a
/// [`PassEngine`] runs with, plus the autotuner report. Concrete modes pass
/// through as a one-entry slice (the engine broadcasts it to every level);
/// [`M2lMode::Auto`] scores the three candidate families per level with the
/// engine's exact single-RHS flop formulas over the full tree's V-list
/// statistics and picks the cheapest, ties resolved Svd → Fft → Direct.
///
/// The score is a deterministic function of `(kernel, order, tree, lists)`
/// and the measured SVD ranks — never wall-clock — so every rank of a
/// distributed run resolves `Auto` to the identical mode vector and the
/// cross-path equivalence gates keep holding. (Wall-clock microbenching of
/// the resolved plan lives in the `ablation_m2l` bench, which feeds
/// `BENCH_m2l_ablation.json`.)
pub fn resolve_m2l_modes<K: Kernel>(
    kernel: &K,
    pre: &Precomputed<K>,
    tree: &Octree,
    lists: &InteractionLists,
    opts: &FmmOptions,
) -> (Vec<M2lMode>, Vec<M2lChoice>) {
    if opts.m2l_mode != M2lMode::Auto {
        return (vec![opts.m2l_mode], Vec::new());
    }
    let depth = tree.depth();
    if depth < FIRST_FMM_LEVEL {
        // No M2L ever runs; any concrete mode will do.
        return (vec![M2lMode::Fft], Vec::new());
    }
    let (sd, td) = (kernel.src_dim(), kernel.trg_dim());
    let ns = num_surface_points(opts.order);
    let (es, cs) = (ns * sd, ns * td);
    let fft = pre.m2l_fft.as_ref().expect("Auto plans build FFT tables");
    let svd = pre.m2l_svd.as_ref().expect("Auto plans build SVD tables");
    let mut modes = vec![M2lMode::Fft; depth as usize + 1];
    let mut report = Vec::with_capacity((depth - FIRST_FMM_LEVEL + 1) as usize);
    let hadamard = (td * sd * fft.slab_len() * 8) as u64;
    for level in FIRST_FMM_LEVEL..=depth {
        // Deterministic level statistics: selected targets, V pairs and
        // distinct sources — the same quantities the engine's per-mode
        // flop counters charge against.
        let mut nsel = 0u64;
        let mut np = 0u64;
        let mut needed: Vec<u32> = Vec::new();
        for &ni in &tree.levels[level as usize] {
            let vlist = &lists.v[ni as usize];
            if !vlist.is_empty() {
                nsel += 1;
                np += vlist.len() as u64;
                needed.extend_from_slice(vlist);
            }
        }
        needed.sort_unstable();
        needed.dedup();
        let nneeded = needed.len() as u64;
        let fft_cost =
            nneeded * fft.fft_flops(sd) + np * hadamard + nsel * fft.fft_flops(td);
        let (slot, _) = svd.slot(level);
        let (rt, rs) = (slot.rank_trg() as u64, slot.rank_src() as u64);
        let svd_cost = 2 * rs * es as u64 * nneeded
            + 2 * rt * rs * np
            + 2 * cs as u64 * rt * nsel;
        let direct_cost = 2 * (cs * es) as u64 * np;
        let mode = if svd_cost <= fft_cost && svd_cost <= direct_cost {
            M2lMode::Svd
        } else if fft_cost <= direct_cost {
            M2lMode::Fft
        } else {
            M2lMode::Direct
        };
        modes[level as usize] = mode;
        report.push(M2lChoice {
            level,
            mode,
            fft_flops: fft_cost,
            svd_flops: svd_cost,
            direct_flops: direct_cost,
            rank_trg: rt as usize,
            rank_src: rs as usize,
            compression: slot.compression(),
        });
    }
    // Levels above FIRST_FMM_LEVEL never run M2L; fill them with the first
    // real verdict so the vector is total over the tree.
    let first = modes[FIRST_FMM_LEVEL as usize];
    for m in modes.iter_mut().take(FIRST_FMM_LEVEL as usize) {
        *m = first;
    }
    (modes, report)
}

/// FNV-1a of a kernel's [`Kernel::name`] — folded into [`PlanKey`] so two
/// kernels behind the same Rust type (type-erased [`kifmm_kernels::BoxedKernel`]s,
/// or [`kifmm_kernels::CustomKernel`] closures under one caller tag scheme) with
/// colliding [`Kernel::id_bits`] cannot share a cached plan. `id_bits`
/// defaults to 0 for parameterless kernels, so the parameter fingerprint
/// alone does not identify the kernel once the *type* no longer pins it.
pub fn kernel_name_hash(name: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// The identity of a [`Plan`] inside a [`PlanCache`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// [`Kernel::id_bits`] — parameter fingerprint.
    pub kernel_id: u64,
    /// [`kernel_name_hash`] of [`Kernel::name`] — distinguishes kernels
    /// the type parameter no longer does (boxed/closure kernels).
    pub kernel_name: u64,
    /// Surface discretization order `p`.
    pub order: usize,
    /// M2L execution mode.
    pub m2l_mode: M2lMode,
    /// What evaluations produce (potentials vs potentials + gradients).
    pub output: crate::evaluator::OutputSpec,
    /// Leaf capacity `s` (with the depth cap, determines tree depth).
    pub max_pts_per_leaf: usize,
    /// Octree depth cap.
    pub max_level: u8,
    /// [`geometry_hash`] of the point set.
    pub geometry: u64,
}

impl PlanKey {
    /// Assemble the key for `(kernel, opts, geometry)`.
    pub fn new<K: Kernel>(kernel: &K, opts: &FmmOptions, geometry: u64) -> Self {
        PlanKey {
            kernel_id: kernel.id_bits(),
            kernel_name: kernel_name_hash(kernel.name()),
            order: opts.order,
            m2l_mode: opts.m2l_mode,
            output: opts.output,
            max_pts_per_leaf: opts.max_pts_per_leaf,
            max_level: opts.max_level,
            geometry,
        }
    }
}

/// Everything FMM setup produces for one `(kernel, options, point set)`:
/// tree, interaction lists, Morton-sorted points, precomputed inversions
/// and M2L tables. Immutable and `Send + Sync` — any number of threads
/// may [`Plan::execute`] against one plan concurrently (each execution
/// brings its own [`ExpansionStore`]/[`EngineWorkspace`]).
pub struct Plan<K: Kernel> {
    pub(crate) kernel: K,
    pub(crate) opts: FmmOptions,
    /// The computation tree.
    pub tree: Octree,
    /// U/V/W/X lists per box. Behind an `Arc` so an incremental update
    /// that preserves the structure shares them instead of deep-cloning
    /// ~100k nested vectors.
    pub lists: Arc<InteractionLists>,
    pub(crate) pre: Arc<Precomputed<K>>,
    /// Points permuted into Morton order (leaf ranges contiguous).
    pub(crate) sorted_points: Vec<Point3>,
    pub(crate) num_points: usize,
    /// Every box is active: a plan covers the whole tree.
    pub(crate) active: ActiveSet,
    /// Per-level resolved M2L execution modes (see [`resolve_m2l_modes`]);
    /// a one-entry vector broadcasts one concrete mode to every level.
    pub(crate) m2l_modes: Vec<M2lMode>,
    /// Autotuner verdicts (empty unless built with [`M2lMode::Auto`]).
    pub(crate) m2l_report: Vec<M2lChoice>,
    geometry: u64,
}

impl<K: Kernel> Plan<K> {
    /// Build a plan: tree, interaction lists and translation operators.
    pub fn try_new(
        kernel: K,
        points: &[Point3],
        opts: FmmOptions,
    ) -> Result<Self, BuildError> {
        let cache = PrecomputeCache::new();
        Self::try_new_with_cache(kernel, points, opts, &cache)
    }

    /// As [`Plan::try_new`], but sharing particle-independent operator
    /// tables through `cache` (parameter sweeps, virtual-rank benches).
    pub fn try_new_with_cache(
        kernel: K,
        points: &[Point3],
        opts: FmmOptions,
        cache: &PrecomputeCache<K>,
    ) -> Result<Self, BuildError> {
        if opts.order < 2 {
            return Err(BuildError::OrderTooSmall(opts.order));
        }
        if points.is_empty() {
            return Err(BuildError::EmptyPoints);
        }
        let geometry = geometry_hash(points);
        let tree = Octree::build(points, opts.max_pts_per_leaf, opts.max_level);
        let lists = build_lists(&tree);
        let depth = tree.depth();
        let root_half = tree.domain.half;
        let pre = cache.get_or_build(&kernel, &opts, root_half, depth);
        check_operator_coverage(&pre.ops, depth)?;
        let sorted_points: Vec<Point3> =
            tree.perm.iter().map(|&i| points[i as usize]).collect();
        let active = ActiveSet::build(&tree, |_| true);
        let (m2l_modes, m2l_report) = resolve_m2l_modes(&kernel, &pre, &tree, &lists, &opts);
        Ok(Plan {
            kernel,
            opts,
            tree,
            lists: Arc::new(lists),
            pre,
            sorted_points,
            num_points: points.len(),
            active,
            m2l_modes,
            m2l_report,
            geometry,
        })
    }

    /// Patch this plan for a moved point set instead of rebuilding it:
    /// re-sort with the old permutation as a near-sorted hint, re-derive
    /// the structure, and — when the structure is unchanged, the common
    /// case for small motion — reuse the interaction lists and resolved
    /// M2L modes wholesale. The operator tables (`Arc<Precomputed>`) are
    /// always shared: they depend on the domain and depth, not on the
    /// points.
    ///
    /// Errors ([`UpdateError`]) mean the plan cannot be patched and a
    /// full rebuild is required; [`PlanCache::get_or_update`] performs
    /// that fallback automatically.
    pub fn update_points(&self, new_points: &[Point3]) -> Result<Plan<K>, UpdateError> {
        let upd = update_octree(
            &self.tree,
            new_points,
            self.opts.max_pts_per_leaf,
            self.opts.max_level,
        )?;
        let depth = upd.tree.depth();
        if check_operator_coverage(&self.pre.ops, depth).is_err() {
            return Err(UpdateError::StructureOutgrown {
                depth,
                covered: self.tree.depth(),
            });
        }
        let tree = upd.tree;
        let (lists, m2l_modes, m2l_report) = if upd.same_structure {
            // Same structure: the lists are valid verbatim — share them.
            (Arc::clone(&self.lists), self.m2l_modes.clone(), self.m2l_report.clone())
        } else {
            let lists = build_lists_sorted(&tree);
            let (modes, report) =
                resolve_m2l_modes(&self.kernel, &self.pre, &tree, &lists, &self.opts);
            (Arc::new(lists), modes, report)
        };
        let mut sorted_points = vec![[0.0f64; 3]; new_points.len()];
        const CHUNK: usize = 1 << 16;
        kifmm_runtime::par_chunks_mut(&mut sorted_points, CHUNK, |ci, chunk| {
            let base = ci * CHUNK;
            for (j, slot) in chunk.iter_mut().enumerate() {
                *slot = new_points[tree.perm[base + j] as usize];
            }
        });
        let active = ActiveSet::build(&tree, |_| true);
        let geometry = geometry_hash(new_points);
        Ok(Plan {
            kernel: self.kernel.clone(),
            opts: self.opts,
            tree,
            lists,
            pre: self.pre.clone(),
            sorted_points,
            num_points: new_points.len(),
            active,
            m2l_modes,
            m2l_report,
            geometry,
        })
    }

    /// This plan's cache identity.
    pub fn key(&self) -> PlanKey {
        PlanKey::new(&self.kernel, &self.opts, self.geometry)
    }

    /// [`geometry_hash`] of the point set the plan was built over.
    pub fn geometry_hash(&self) -> u64 {
        self.geometry
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.num_points
    }

    /// True when empty (never; construction requires points).
    pub fn is_empty(&self) -> bool {
        self.num_points == 0
    }

    /// The kernel.
    pub fn kernel(&self) -> &K {
        &self.kernel
    }

    /// The options the plan was built with.
    pub fn options(&self) -> &FmmOptions {
        &self.opts
    }

    /// The precomputed operator tables (shared with the builder cache).
    pub fn precomputed(&self) -> &Precomputed<K> {
        &self.pre
    }

    /// Per-level resolved M2L execution modes; index = level, and a
    /// one-entry slice broadcasts a single concrete mode to every level.
    pub fn m2l_modes(&self) -> &[M2lMode] {
        &self.m2l_modes
    }

    /// Per-level autotuner verdicts (modeled costs, winning mode, measured
    /// SVD ranks and compression). Empty unless the plan was built with
    /// [`M2lMode::Auto`].
    pub fn m2l_report(&self) -> &[M2lChoice] {
        &self.m2l_report
    }

    /// The points in Morton order (leaf point ranges index into this).
    pub fn morton_points(&self) -> &[Point3] {
        &self.sorted_points
    }

    /// This plan's ownership filter (every box active).
    pub fn active_set(&self) -> &ActiveSet {
        &self.active
    }

    /// Estimated resident bytes of the plan (tree, lists, points and
    /// operator tables) — the quantity [`PlanCache`] budgets its LRU
    /// bound against. An estimate: dense operator and FFT-tensor sizes
    /// are computed from their dimensions, not measured.
    pub fn approx_bytes(&self) -> usize {
        let (sd, td) = (self.kernel.src_dim(), self.kernel.trg_dim());
        let ns = crate::surface::num_surface_points(self.opts.order);
        let (es, cs) = (ns * sd, ns * td);
        let depth = self.tree.depth() as usize;
        let op_levels = depth.saturating_sub(FIRST_FMM_LEVEL as usize) + 1;
        // 8 M2M + 8 L2L forward maps and 2 inversions per level, all
        // es×cs-sized.
        let ops = op_levels * 18 * es * cs * 8;
        let mut m2l = 0usize;
        if let Some(fft) = &self.pre.m2l_fft {
            let tensor_levels =
                if self.kernel.homogeneity().is_some() { 1 } else { op_levels };
            m2l += tensor_levels * 316 * sd * td * fft.grid_len() * 16;
        }
        if let Some(svd) = &self.pre.m2l_svd {
            m2l += svd.bytes();
        }
        if self.pre.m2l_direct.is_some() {
            // Dense tables fill lazily; charge the same footprint the
            // fully-warm cache would reach.
            m2l += 316 * es * cs * 8;
        }
        let tree = self.tree.num_nodes() * 96 + self.num_points * 4;
        let lists: usize = [&self.lists.u, &self.lists.v, &self.lists.w, &self.lists.x]
            .iter()
            .map(|l| l.iter().map(Vec::len).sum::<usize>() * 4 + l.len() * 24)
            .sum();
        let points = self.sorted_points.len() * 24;
        ops + m2l + tree + lists + points
    }

    /// Borrow the prepared state into a [`PassEngine`] under the given
    /// thread-dispatch policy.
    pub fn engine(&self, dispatch: Dispatch) -> PassEngine<'_, K> {
        PassEngine::new(
            &self.kernel,
            &self.tree,
            &self.lists,
            &self.pre,
            &self.sorted_points,
            self.opts.order,
            &self.m2l_modes,
            dispatch,
            &self.active,
        )
    }

    /// Execute the plan for a batch of `k = densities.len()` charge
    /// vectors (each in original point order, `SRC_DIM` interleaved
    /// components per point), running every FMM pass **once** over the
    /// whole batch: the per-level translation GEMMs widen their column
    /// blocks `k`-fold, the FFT M2L reuses each direction tensor across
    /// the batch, and the dense passes hoist pair geometry with
    /// [`Kernel::p2p_many`]. Returns one potential vector per RHS
    /// (original point order) and the per-phase statistics of the batch.
    ///
    /// Each output vector is bit-identical to what a single-RHS execution
    /// of that density vector produces (asserted in tests), and `k = 1`
    /// takes exactly the single-RHS code path.
    ///
    /// The caller provides the mutable evaluation state; `store`/`ws` are
    /// reshaped as needed ([`Session`] pools them, so steady-state
    /// evaluations allocate only their output vectors).
    ///
    /// Phase seconds are thread-CPU time under [`Dispatch::Serial`] and
    /// wall-clock under [`Dispatch::Pool`] (work spreads across the pool;
    /// per-thread CPU time would under-count). Flop counts come from the
    /// engine and are identical for both policies.
    ///
    /// Returns `(potentials, gradients, stats)`; the gradient vectors
    /// (`trg_dim·3` interleaved per point) are produced only when the plan
    /// was built with [`crate::OutputSpec::PotentialAndGradient`] — the
    /// outer `Vec` is empty otherwise.
    pub fn execute(
        &self,
        densities: &[&[f64]],
        dispatch: Dispatch,
        trace: &Tracer,
        store: &mut ExpansionStore,
        ws: &mut EngineWorkspace,
    ) -> (Vec<Vec<f64>>, Vec<Vec<f64>>, PhaseStats) {
        let k = densities.len();
        assert!(k >= 1, "at least one density vector");
        let (sd, td) = (self.kernel.src_dim(), self.kernel.trg_dim());
        for d in densities {
            assert_eq!(
                d.len(),
                self.num_points * sd,
                "each density vector must have src_dim entries per point"
            );
        }
        let wants_grad = self.opts.output.wants_gradient();
        let mut stats = PhaseStats::new();
        let rt = trace.rank(0);
        let n = self.num_points;
        // Permute each density vector into Morton order.
        let mut dens_sorted: Vec<Vec<f64>> = Vec::with_capacity(k);
        for d in densities {
            let mut s = vec![0.0; n * sd];
            for (sorted_i, &orig) in self.tree.perm.iter().enumerate() {
                for c in 0..sd {
                    s[sorted_i * sd + c] = d[orig as usize * sd + c];
                }
            }
            dens_sorted.push(s);
        }
        let dens_refs: Vec<&[f64]> = dens_sorted.iter().map(Vec::as_slice).collect();

        let engine = self.engine(dispatch);
        engine.prepare_store(store, k);
        let src = LocalSources {
            tree: &self.tree,
            points: &self.sorted_points,
            dens: &dens_refs,
            src_dim: sd,
        };
        let wall = Instant::now();
        let now = || match dispatch {
            Dispatch::Serial => thread_cpu_time(),
            Dispatch::Pool => wall.elapsed().as_secs_f64(),
        };
        let depth = self.tree.depth();

        if depth >= FIRST_FMM_LEVEL {
            {
                let _span = rt.span("Up", "Up");
                let t0 = now();
                let flops = engine.upward(&src, store, ws);
                stats.add_seconds(Phase::Up, now() - t0);
                stats.add_flops(Phase::Up, flops);
                rt.add(Counter::Flops, flops);
                if dispatch == Dispatch::Serial {
                    rt.add(Counter::CellsTouched, engine.active_cell_count());
                }
            }
            {
                let t0 = now();
                let mut vflops = 0u64;
                for level in FIRST_FMM_LEVEL..=depth {
                    let _v = rt.span("DownV", "m2l").with_n(level as u64);
                    vflops += engine.m2l_level(level, store, ws);
                }
                stats.add_seconds(Phase::DownV, now() - t0);
                stats.add_flops(Phase::DownV, vflops);
                rt.add(Counter::Flops, vflops);
            }
            {
                let _span = rt.span("DownX", "x-list");
                let t0 = now();
                let flops = engine.x_pass(&src, store);
                stats.add_seconds(Phase::DownX, now() - t0);
                stats.add_flops(Phase::DownX, flops);
                rt.add(Counter::Flops, flops);
            }
            {
                let _span = rt.span("Eval", "l2l");
                let t0 = now();
                let flops = engine.l2l(store, ws);
                stats.add_seconds(Phase::Eval, now() - t0);
                stats.add_flops(Phase::Eval, flops);
                rt.add(Counter::Flops, flops);
            }
        }

        let mut pots: Vec<Vec<f64>> = (0..k).map(|_| vec![0.0; n * td]).collect();
        let mut pot_refs: Vec<&mut [f64]> = pots.iter_mut().map(Vec::as_mut_slice).collect();
        let mut grads: Vec<Vec<f64>> =
            if wants_grad { (0..k).map(|_| vec![0.0; n * td * 3]).collect() } else { Vec::new() };
        let mut grad_refs: Vec<&mut [f64]> =
            grads.iter_mut().map(Vec::as_mut_slice).collect();
        rt.add(Counter::CellsTouched, engine.active_leaves().len() as u64);
        {
            let _span = rt.span("DownU", "u-list");
            let t0 = now();
            let flops = if wants_grad {
                engine.u_pass_grad(&src, &mut pot_refs, &mut grad_refs)
            } else {
                engine.u_pass(&src, &mut pot_refs)
            };
            stats.add_seconds(Phase::DownU, now() - t0);
            stats.add_flops(Phase::DownU, flops);
            rt.add(Counter::Flops, flops);
        }
        {
            let _span = rt.span("DownW", "w-list");
            let t0 = now();
            let flops = if wants_grad {
                engine.w_pass_grad(store, &mut pot_refs, &mut grad_refs)
            } else {
                engine.w_pass(store, &mut pot_refs)
            };
            stats.add_seconds(Phase::DownW, now() - t0);
            stats.add_flops(Phase::DownW, flops);
            rt.add(Counter::Flops, flops);
        }
        {
            let _span = rt.span("Eval", "l2t");
            let t0 = now();
            let flops = if wants_grad {
                engine.l2t_grad(store, &mut pot_refs, &mut grad_refs)
            } else {
                engine.l2t(store, &mut pot_refs)
            };
            stats.add_seconds(Phase::Eval, now() - t0);
            stats.add_flops(Phase::Eval, flops);
            rt.add(Counter::Flops, flops);
        }
        drop(pot_refs);
        drop(grad_refs);

        // Un-permute each output vector back to the caller's point order.
        let unpermute = |v: Vec<f64>, dim: usize| {
            let mut out = vec![0.0; n * dim];
            for (sorted_i, &orig) in self.tree.perm.iter().enumerate() {
                out[orig as usize * dim..(orig as usize + 1) * dim]
                    .copy_from_slice(&v[sorted_i * dim..(sorted_i + 1) * dim]);
            }
            out
        };
        let outs = pots.into_iter().map(|pot| unpermute(pot, td)).collect();
        let grad_outs = grads.into_iter().map(|g| unpermute(g, td * 3)).collect();
        (outs, grad_outs, stats)
    }

    /// Upward + downward expansions for Morton-sorted densities, without
    /// spans or timing (the arbitrary-target evaluator reads `up`/`down`
    /// rows directly).
    pub(crate) fn compute_expansions(&self, dens: &[f64]) -> ExpansionStore {
        let engine = self.engine(Dispatch::Serial);
        let src = LocalSources {
            tree: &self.tree,
            points: &self.sorted_points,
            dens: &[dens],
            src_dim: self.kernel.src_dim(),
        };
        let mut store = engine.new_store();
        let mut ws = EngineWorkspace::default();
        engine.upward(&src, &mut store, &mut ws);
        let depth = self.tree.depth();
        if depth >= FIRST_FMM_LEVEL {
            for level in FIRST_FMM_LEVEL..=depth {
                engine.m2l_level(level, &mut store, &mut ws);
            }
        }
        engine.x_pass(&src, &mut store);
        engine.l2l(&mut store, &mut ws);
        store
    }

    /// Sorted points and density slice of a box.
    pub(crate) fn leaf_data<'a>(
        &'a self,
        ni: u32,
        dens: &'a [f64],
    ) -> (&'a [Point3], &'a [f64]) {
        let node = &self.tree.nodes[ni as usize];
        let (s, e) = (node.pt_start as usize, node.pt_end as usize);
        let sd = self.kernel.src_dim();
        (&self.sorted_points[s..e], &dens[s * sd..e * sd])
    }
}

/// Pooled per-evaluation state: one expansion store + workspace pair.
type Scratch = (ExpansionStore, EngineWorkspace);

/// Pool slots per session — concurrent evaluations beyond this many
/// allocate (and drop) their own scratch rather than block.
const POOL_SLOTS: usize = 16;

/// A client handle over a shared [`Plan`]: holds the execution policy
/// (tracer, serial/pool dispatch) and a lock-free [`Freelist`] of pooled
/// scratch, so many threads can evaluate against one plan concurrently
/// with no lock contention and no steady-state allocation beyond the
/// output vectors. `Deref`s to its plan.
pub struct Session<K: Kernel> {
    plan: Arc<Plan<K>>,
    pool: Freelist<Scratch>,
    trace: Tracer,
    parallel_eval: bool,
}

impl<K: Kernel> Session<K> {
    /// Open a session over a shared plan.
    pub fn new(plan: Arc<Plan<K>>) -> Self {
        Session {
            plan,
            pool: Freelist::new(POOL_SLOTS),
            trace: Tracer::disabled(),
            parallel_eval: false,
        }
    }

    /// Open a session over a plan this session owns exclusively.
    pub fn from_plan(plan: Plan<K>) -> Self {
        Self::new(Arc::new(plan))
    }

    /// The shared plan (clone the `Arc` to open further sessions).
    pub fn plan(&self) -> &Arc<Plan<K>> {
        &self.plan
    }

    /// Attach (or detach, with [`Tracer::disabled`]) an observability
    /// sink; subsequent evaluations record per-phase spans.
    pub fn set_trace(&mut self, trace: Tracer) {
        self.trace = trace;
    }

    /// The attached tracer (disabled by default).
    pub fn trace(&self) -> &Tracer {
        &self.trace
    }

    /// Route evaluations through the shared-memory parallel path
    /// (bit-identical results; wall-clock phase timing).
    pub fn set_parallel_eval(&mut self, parallel: bool) {
        self.parallel_eval = parallel;
    }

    fn dispatch(&self) -> Dispatch {
        if self.parallel_eval {
            Dispatch::Pool
        } else {
            Dispatch::Serial
        }
    }

    fn checkout(&self) -> Box<Scratch> {
        self.pool.checkout().unwrap_or_else(|| {
            Box::new((ExpansionStore::new(0, 1, 1), EngineWorkspace::default()))
        })
    }

    /// Evaluate potentials for one density vector (original point order,
    /// `SRC_DIM` interleaved components per point).
    pub fn eval(&self, densities: &[f64]) -> crate::evaluator::EvalReport {
        self.eval_many(&[densities]).pop().expect("one report per RHS")
    }

    /// Evaluate a batch of `k` density vectors through **one** set of FMM
    /// passes (see [`Plan::execute`]). Returns one report per RHS; the
    /// per-phase statistics describe the shared batch execution and are
    /// carried by every report.
    pub fn eval_many(&self, densities: &[&[f64]]) -> Vec<crate::evaluator::EvalReport> {
        let mut scratch = self.checkout();
        let (store, ws) = &mut *scratch;
        let (pots, mut grads, stats) =
            self.plan.execute(densities, self.dispatch(), &self.trace, store, ws);
        self.pool.checkin(scratch);
        // Gradients are per-RHS when produced, empty otherwise.
        pots.into_iter()
            .enumerate()
            .map(|(q, potentials)| crate::evaluator::EvalReport {
                potentials,
                gradients: if grads.is_empty() {
                    Vec::new()
                } else {
                    std::mem::take(&mut grads[q])
                },
                stats: stats.clone(),
                trace: self.trace.clone(),
            })
            .collect()
    }
}

impl<K: Kernel> std::ops::Deref for Session<K> {
    type Target = Plan<K>;

    fn deref(&self) -> &Plan<K> {
        &self.plan
    }
}

struct CacheEntry<K: Kernel> {
    key: PlanKey,
    plan: Arc<Plan<K>>,
    bytes: usize,
    stamp: u64,
}

/// An LRU-bounded memoization of [`Plan`]s keyed by [`PlanKey`]. One
/// cache serves one kernel *type* (the type parameter); kernel
/// *parameters* are distinguished through [`Kernel::id_bits`].
///
/// Hits and misses are counted (readable via [`PlanCache::hits`] /
/// [`PlanCache::misses`]) and, when a tracer is attached, mirrored into
/// the [`Counter::PlanCacheHits`] / [`Counter::PlanCacheMisses`] trace
/// counters.
pub struct PlanCache<K: Kernel> {
    inner: Mutex<Vec<CacheEntry<K>>>,
    clock: AtomicU64,
    max_bytes: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    updates: AtomicU64,
    trace: Tracer,
}

impl<K: Kernel> PlanCache<K> {
    /// Cache bounded to roughly `max_bytes` of resident plan memory
    /// ([`Plan::approx_bytes`]); the least-recently-used plans are evicted
    /// once the bound is exceeded (the most recent plan is always kept).
    pub fn new(max_bytes: usize) -> Self {
        PlanCache {
            inner: Mutex::new(Vec::new()),
            clock: AtomicU64::new(0),
            max_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            updates: AtomicU64::new(0),
            trace: Tracer::disabled(),
        }
    }

    /// Cache with no byte bound.
    pub fn unbounded() -> Self {
        Self::new(usize::MAX)
    }

    /// Mirror hit/miss counts into `trace`'s rank-0 counters.
    pub fn set_trace(&mut self, trace: Tracer) {
        self.trace = trace;
    }

    /// Plan-cache lookups served from a cached plan (setup skipped).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Plan-cache lookups that had to build a new plan.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Lookups served by patching an existing plan
    /// ([`PlanCache::get_or_update`]) instead of a full build.
    pub fn updates(&self) -> u64 {
        self.updates.load(Ordering::Relaxed)
    }

    /// Number of resident plans.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len()
    }

    /// True when no plan is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fetch the plan for `(kernel, points, opts)`, building it on a
    /// miss. A warm hit performs no tree construction and no operator
    /// precomputation — only the geometry hash (one linear scan of the
    /// points). Concurrent misses for the same key may build the plan
    /// more than once; one build wins insertion and the others share it.
    pub fn get_or_plan(
        &self,
        kernel: &K,
        points: &[Point3],
        opts: FmmOptions,
    ) -> Result<Arc<Plan<K>>, BuildError> {
        let key = PlanKey::new(kernel, &opts, geometry_hash(points));
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        {
            let mut inner =
                self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(e) = inner.iter_mut().find(|e| e.key == key) {
                e.stamp = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.trace.rank(0).add(Counter::PlanCacheHits, 1);
                return Ok(e.plan.clone());
            }
        }
        // Build outside the lock: a slow build must not serialize hits on
        // other keys.
        let plan = Arc::new(Plan::try_new(kernel.clone(), points, opts)?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.trace.rank(0).add(Counter::PlanCacheMisses, 1);
        Ok(self.insert_entry(key, plan, stamp))
    }

    /// Fetch the plan for `base`'s kernel/options over `new_points`,
    /// *patching* `base` via [`Plan::update_points`] on a miss instead of
    /// building from scratch — the time-stepping fast path (points move a
    /// little every step, so the tree is re-derived from a near-sorted
    /// permutation and the operator tables are shared). When the patch is
    /// impossible ([`UpdateError`]: domain drift, changed point count,
    /// deeper structure than the operators cover) this falls back to a
    /// full [`PlanCache::get_or_plan`] build.
    ///
    /// Counters: a cached plan for the new geometry counts as a hit, a
    /// successful patch as an *update* ([`PlanCache::updates`]), and the
    /// fallback as a miss.
    pub fn get_or_update(
        &self,
        base: &Arc<Plan<K>>,
        new_points: &[Point3],
    ) -> Result<Arc<Plan<K>>, BuildError> {
        let opts = *base.options();
        let key = PlanKey::new(base.kernel(), &opts, geometry_hash(new_points));
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        {
            let mut inner =
                self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(e) = inner.iter_mut().find(|e| e.key == key) {
                e.stamp = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.trace.rank(0).add(Counter::PlanCacheHits, 1);
                return Ok(e.plan.clone());
            }
        }
        match base.update_points(new_points) {
            Ok(plan) => {
                self.updates.fetch_add(1, Ordering::Relaxed);
                Ok(self.insert_entry(key, Arc::new(plan), stamp))
            }
            Err(_) => self.get_or_plan(base.kernel(), new_points, opts),
        }
    }

    /// Insert a freshly built plan (outside the lock) and run LRU
    /// eviction. If a concurrent builder won the race for `key`, its plan
    /// is shared instead.
    fn insert_entry(&self, key: PlanKey, plan: Arc<Plan<K>>, stamp: u64) -> Arc<Plan<K>> {
        let bytes = plan.approx_bytes();
        let mut inner =
            self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(e) = inner.iter_mut().find(|e| e.key == key) {
            e.stamp = stamp;
            return e.plan.clone();
        }
        inner.push(CacheEntry { key, plan: plan.clone(), bytes, stamp });
        let newest = stamp;
        let mut total: usize = inner.iter().map(|e| e.bytes).sum();
        while total > self.max_bytes && inner.len() > 1 {
            let (idx, _) = inner
                .iter()
                .enumerate()
                .filter(|(_, e)| e.stamp != newest)
                .min_by_key(|(_, e)| e.stamp)
                .expect("len > 1 so a non-newest entry exists");
            total -= inner[idx].bytes;
            inner.remove(idx);
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::Evaluator;
    use crate::fmm::Fmm;
    use kifmm_kernels::{Laplace, ModifiedLaplace, Stokes};
    use kifmm_testkit::cloud;

    fn densities(n: usize, dim: usize, seed: usize) -> Vec<f64> {
        (0..n * dim).map(|i| (((i * 31 + seed * 17) % 101) as f64) / 101.0 - 0.3).collect()
    }

    fn opts_small() -> FmmOptions {
        FmmOptions { order: 4, max_pts_per_leaf: 20, ..Default::default() }
    }

    #[test]
    fn eval_many_bitwise_equals_independent_evals_serial_and_pool() {
        let pts = cloud(900, 5);
        let k = 8;
        let dens: Vec<Vec<f64>> = (0..k).map(|q| densities(900, 1, q)).collect();
        for parallel in [false, true] {
            let mut session = Session::from_plan(
                Plan::try_new(Laplace, &pts, opts_small()).unwrap(),
            );
            session.set_parallel_eval(parallel);
            let singles: Vec<Vec<f64>> =
                dens.iter().map(|d| session.eval(d).potentials).collect();
            let refs: Vec<&[f64]> = dens.iter().map(Vec::as_slice).collect();
            let reports = session.eval_many(&refs);
            assert_eq!(reports.len(), k);
            for (q, rep) in reports.iter().enumerate() {
                assert_eq!(
                    rep.potentials, singles[q],
                    "RHS {q} (parallel={parallel}) not bitwise equal"
                );
            }
        }
    }

    /// Shrink every point toward the domain center by `factor` — motion
    /// that stays inside the root cube by construction.
    fn shrink_toward(points: &[Point3], center: Point3, factor: f64) -> Vec<Point3> {
        points
            .iter()
            .map(|p| std::array::from_fn(|d| center[d] + (p[d] - center[d]) * factor))
            .collect()
    }

    #[test]
    fn update_points_identical_geometry_preserves_everything() {
        let pts = cloud(800, 21);
        let plan = Plan::try_new(Laplace, &pts, opts_small()).unwrap();
        let upd = plan.update_points(&pts).unwrap();
        assert!(upd.tree.structure_eq(&plan.tree));
        assert_eq!(upd.lists, plan.lists);
        assert_eq!(upd.geometry_hash(), plan.geometry_hash());
        let d = densities(800, 1, 3);
        let a = Session::from_plan(plan).eval(&d).potentials;
        let b = Session::from_plan(upd).eval(&d).potentials;
        assert_eq!(a, b, "identical geometry must evaluate bitwise identically");
    }

    #[test]
    fn update_points_small_motion_matches_fresh_plan() {
        let pts = cloud(900, 22);
        let base = Plan::try_new(Laplace, &pts, opts_small()).unwrap();
        let center = base.tree.domain.center;
        let moved = shrink_toward(&pts, center, 0.999);
        let upd = base.update_points(&moved).unwrap();
        // The patched plan stays as accurate as a from-scratch build
        // against the direct sum. (The builds are not bitwise comparable:
        // a fresh build fits a slightly smaller root cube to the moved
        // points, while the patch keeps the old one.)
        let fresh = Plan::try_new(Laplace, &moved, opts_small()).unwrap();
        let d = densities(900, 1, 7);
        let exact = crate::direct::direct_eval(&Laplace, &moved, &d);
        let err_of = |plan: Plan<Laplace>| {
            let pot = Session::from_plan(plan).eval(&d).potentials;
            crate::direct::rel_l2_error(&pot, &exact)
        };
        let e_upd = err_of(upd);
        let e_fresh = err_of(fresh);
        assert!(
            e_upd < 2.0 * e_fresh.max(1e-8),
            "patched plan error {e_upd} vs fresh {e_fresh}"
        );
    }

    #[test]
    fn update_points_detects_domain_drift_and_count_change() {
        let pts = cloud(500, 23);
        let plan = Plan::try_new(Laplace, &pts, opts_small()).unwrap();
        // Push one point far outside the root cube.
        let mut out = pts.clone();
        out[137][2] += 100.0 * plan.tree.domain.half;
        assert_eq!(
            plan.update_points(&out).map(|_| ()).unwrap_err(),
            UpdateError::DomainOverflow { point: 137, dim: 2 },
        );
        // Different cardinality.
        assert_eq!(
            plan.update_points(&pts[..499]).map(|_| ()).unwrap_err(),
            UpdateError::PointCountChanged { old: 500, new: 499 },
        );
    }

    #[test]
    fn update_points_rejects_structure_deeper_than_operators() {
        let pts = cloud(600, 24);
        let plan = Plan::try_new(Laplace, &pts, opts_small()).unwrap();
        // Collapse all points into a tiny ball: the refined tree goes far
        // deeper than the original, beyond operator coverage.
        let center = plan.tree.domain.center;
        let tiny = shrink_toward(&pts, center, 1e-4);
        match plan.update_points(&tiny) {
            Err(UpdateError::StructureOutgrown { depth, covered }) => {
                assert!(depth > covered, "depth {depth} vs covered {covered}");
            }
            Ok(_) => panic!("collapsing points must outgrow the operator tables"),
            Err(e) => panic!("expected StructureOutgrown, got {e:?}"),
        }
    }

    #[test]
    fn plan_cache_get_or_update_hits_updates_and_falls_back() {
        let pts = cloud(700, 25);
        let cache = PlanCache::unbounded();
        let base = cache.get_or_plan(&Laplace, &pts, opts_small()).unwrap();
        assert_eq!((cache.hits(), cache.misses(), cache.updates()), (0, 1, 0));
        // Same geometry → hit, same Arc.
        let again = cache.get_or_update(&base, &pts).unwrap();
        assert!(Arc::ptr_eq(&base, &again));
        assert_eq!((cache.hits(), cache.misses(), cache.updates()), (1, 1, 0));
        // Small motion → patched plan, counted as an update.
        let center = base.tree.domain.center;
        let moved = shrink_toward(&pts, center, 0.999);
        let patched = cache.get_or_update(&base, &moved).unwrap();
        assert!(std::ptr::eq(patched.precomputed(), base.precomputed()));
        assert_eq!((cache.hits(), cache.misses(), cache.updates()), (1, 1, 1));
        // Re-request of the patched geometry → hit.
        let patched2 = cache.get_or_update(&base, &moved).unwrap();
        assert!(Arc::ptr_eq(&patched, &patched2));
        assert_eq!(cache.hits(), 2);
        // Out-of-domain drift → full rebuild fallback, counted as a miss.
        let mut out = pts.clone();
        for p in &mut out {
            p[0] += 10.0 * base.tree.domain.half;
        }
        let rebuilt = cache.get_or_update(&base, &out).unwrap();
        assert!(!std::ptr::eq(rebuilt.precomputed(), base.precomputed()));
        assert_eq!((cache.hits(), cache.misses(), cache.updates()), (2, 2, 1));
    }

    #[test]
    fn eval_many_bitwise_matrix_kernel() {
        // Stokes: SRC_DIM = TRG_DIM = 3 exercises the interleaved-block
        // layout; clustered points exercise W/X under the batch.
        let mut pts = cloud(300, 9);
        for p in cloud(300, 10) {
            pts.push([0.9 + p[0] * 0.05, 0.9 + p[1] * 0.05, 0.9 + p[2] * 0.05]);
        }
        let k = 3;
        let dens: Vec<Vec<f64>> = (0..k).map(|q| densities(600, 3, q)).collect();
        let session = Session::from_plan(
            Plan::try_new(
                Stokes::default(),
                &pts,
                FmmOptions { order: 4, max_pts_per_leaf: 12, ..Default::default() },
            )
            .unwrap(),
        );
        let refs: Vec<&[f64]> = dens.iter().map(Vec::as_slice).collect();
        let reports = session.eval_many(&refs);
        for (q, rep) in reports.iter().enumerate() {
            assert_eq!(rep.potentials, session.eval(&dens[q]).potentials, "RHS {q}");
        }
    }

    #[test]
    fn eval_many_dense_m2l_mode() {
        let pts = cloud(500, 77);
        let dens: Vec<Vec<f64>> = (0..4).map(|q| densities(500, 1, q)).collect();
        let session = Session::from_plan(
            Plan::try_new(
                Laplace,
                &pts,
                FmmOptions { m2l_mode: M2lMode::Direct, ..opts_small() },
            )
            .unwrap(),
        );
        let refs: Vec<&[f64]> = dens.iter().map(Vec::as_slice).collect();
        for (q, rep) in session.eval_many(&refs).iter().enumerate() {
            assert_eq!(rep.potentials, session.eval(&dens[q]).potentials, "RHS {q}");
        }
    }

    #[test]
    fn concurrent_sessions_share_one_plan_bitwise_stable() {
        // 8 threads hammer one shared plan through their own sessions;
        // every thread must see the bit-exact single-thread result.
        let pts = cloud(700, 21);
        let plan = Arc::new(Plan::try_new(Laplace, &pts, opts_small()).unwrap());
        let expect: Vec<Vec<f64>> = (0..8)
            .map(|q| Session::new(plan.clone()).eval(&densities(700, 1, q)).potentials)
            .collect();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let plan = plan.clone();
                let expect = &expect;
                scope.spawn(move || {
                    let session = Session::new(plan);
                    for round in 0..4 {
                        let q = (t + round) % 8;
                        let got = session.eval(&densities(700, 1, q)).potentials;
                        assert_eq!(got, expect[q], "thread {t} round {round}");
                    }
                });
            }
        });
    }

    #[test]
    fn one_session_used_from_many_threads() {
        // The Freelist scratch pool makes &Session usable concurrently.
        let pts = cloud(400, 33);
        let session =
            Session::from_plan(Plan::try_new(Laplace, &pts, opts_small()).unwrap());
        let d = densities(400, 1, 1);
        let expect = session.eval(&d).potentials;
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let session = &session;
                let d = &d;
                let expect = &expect;
                scope.spawn(move || {
                    for _ in 0..3 {
                        assert_eq!(&session.eval(d).potentials, expect);
                    }
                });
            }
        });
    }

    #[test]
    fn plan_cache_warm_hit_skips_setup() {
        let pts = cloud(300, 3);
        let cache = PlanCache::unbounded();
        let a = cache.get_or_plan(&Laplace, &pts, opts_small()).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let b = cache.get_or_plan(&Laplace, &pts, opts_small()).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert!(Arc::ptr_eq(&a, &b), "warm hit must return the cached plan");
        // Different geometry, order, or kernel parameters miss.
        let pts2 = cloud(300, 4);
        cache.get_or_plan(&Laplace, &pts2, opts_small()).unwrap();
        cache
            .get_or_plan(&Laplace, &pts, FmmOptions { order: 5, ..opts_small() })
            .unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 3));
    }

    #[test]
    fn plan_cache_distinguishes_kernel_parameters() {
        let pts = cloud(200, 3);
        let cache = PlanCache::unbounded();
        cache.get_or_plan(&ModifiedLaplace::new(1.0), &pts, opts_small()).unwrap();
        cache.get_or_plan(&ModifiedLaplace::new(2.0), &pts, opts_small()).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
    }

    /// Regression for the kernel-identity hole: a `PlanCache<BoxedKernel>`
    /// serves *type-erased* kernels, so the type parameter no longer pins
    /// which kernel a plan was built for — and parameterless kernels all
    /// report `id_bits() == 0`. The old key (id_bits only) made
    /// BoxedKernel(Laplace) and BoxedKernel(LaplaceDipole) collide; the
    /// name hash now keeps them apart.
    #[test]
    fn plan_cache_distinguishes_boxed_kernels_by_name() {
        use kifmm_kernels::{BoxedKernel, LaplaceDipole};
        let a = BoxedKernel(std::sync::Arc::new(Laplace));
        let b = BoxedKernel(std::sync::Arc::new(LaplaceDipole));
        // Pin the collision shape the name hash exists to break: the two
        // erased kernels are indistinguishable by parameter fingerprint…
        assert_eq!(a.id_bits(), b.id_bits(), "both erased kernels fingerprint to 0");
        // …and only the folded-in name hash separates their keys.
        let ka = PlanKey::new(&a, &opts_small(), 42);
        let kb = PlanKey::new(&b, &opts_small(), 42);
        assert_ne!(ka.kernel_name, kb.kernel_name);
        assert_ne!(ka, kb, "keys must differ despite equal id_bits");
        assert_eq!(PlanKey { kernel_name: kb.kernel_name, ..ka }, kb, "only the name separates them");

        // End to end: the second kernel must MISS, not reuse the Laplace
        // plan (whose operators would silently produce wrong physics).
        let pts = cloud(200, 3);
        let cache: PlanCache<BoxedKernel> = PlanCache::unbounded();
        cache.get_or_plan(&a, &pts, opts_small()).unwrap();
        cache.get_or_plan(&b, &pts, opts_small()).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
        cache.get_or_plan(&a, &pts, opts_small()).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
    }

    /// `OutputSpec` is part of the plan identity: a gradient-producing
    /// session must not reuse a potential-only plan entry (and vice
    /// versa), since the report shapes differ.
    #[test]
    fn plan_cache_distinguishes_output_spec() {
        let pts = cloud(200, 5);
        let cache = PlanCache::unbounded();
        cache.get_or_plan(&Laplace, &pts, opts_small()).unwrap();
        let grad_opts = FmmOptions {
            output: crate::evaluator::OutputSpec::PotentialAndGradient,
            ..opts_small()
        };
        cache.get_or_plan(&Laplace, &pts, grad_opts).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
    }

    #[test]
    fn plan_cache_lru_eviction_keeps_newest() {
        let pts = cloud(250, 3);
        // A bound below one plan's footprint: every insert evicts the
        // previous resident, but the newest always stays.
        let cache = PlanCache::new(1);
        cache.get_or_plan(&Laplace, &pts, opts_small()).unwrap();
        assert_eq!(cache.len(), 1);
        let pts2 = cloud(250, 4);
        cache.get_or_plan(&Laplace, &pts2, opts_small()).unwrap();
        assert_eq!(cache.len(), 1, "over-budget cache keeps only the newest plan");
        // The first plan was evicted: fetching it again is a miss.
        cache.get_or_plan(&Laplace, &pts, opts_small()).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 3));
    }

    #[test]
    fn missing_operator_levels_surface_as_build_error() {
        use crate::operators::OperatorTable;
        // A table built for a depth-1 tree has no level-2 operators; a
        // depth-3 tree demanding them must get a typed error, not the
        // mid-evaluation `OperatorTable::at` panic.
        let shallow = OperatorTable::build(&Laplace, 3, 1.0, 1, 1e-12);
        assert_eq!(
            check_operator_coverage(&shallow, 3),
            Err(BuildError::MissingOperators { level: 2, depth: 3 })
        );
        let err = BuildError::MissingOperators { level: 2, depth: 3 };
        assert!(err.to_string().contains("level-2"), "{err}");
        let full = OperatorTable::build(&Laplace, 3, 1.0, 3, 1e-12);
        assert_eq!(check_operator_coverage(&full, 3), Ok(()));
        // Shallow trees demand nothing and pass vacuously.
        assert_eq!(check_operator_coverage(&shallow, 1), Ok(()));
    }

    #[test]
    fn plan_cache_retains_single_oversized_plan() {
        // A plan bigger than the whole byte bound must still be usable:
        // the newest entry is exempt from eviction, so the sole resident
        // plan stays and the next lookup is a warm hit — the cache never
        // thrashes by evicting the only thing it holds.
        let pts = cloud(250, 3);
        let cache = PlanCache::new(1);
        let a = cache.get_or_plan(&Laplace, &pts, opts_small()).unwrap();
        assert!(a.approx_bytes() > 1, "plan must exceed the bound");
        assert_eq!(cache.len(), 1);
        let b = cache.get_or_plan(&Laplace, &pts, opts_small()).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn plan_cache_evicts_least_recently_used_not_oldest() {
        // Insert A and B, touch A, then insert C over budget: the victim
        // must be B (least recently used), not A (oldest inserted).
        let pts_a = cloud(250, 3);
        let pts_b = cloud(250, 4);
        let pts_c = cloud(250, 5);
        let one = Plan::try_new(Laplace, &pts_a, opts_small()).unwrap().approx_bytes();
        let cache = PlanCache::new(one * 2 + one / 2);
        cache.get_or_plan(&Laplace, &pts_a, opts_small()).unwrap();
        cache.get_or_plan(&Laplace, &pts_b, opts_small()).unwrap();
        cache.get_or_plan(&Laplace, &pts_a, opts_small()).unwrap(); // touch A
        cache.get_or_plan(&Laplace, &pts_c, opts_small()).unwrap(); // evicts B
        assert_eq!(cache.len(), 2);
        assert_eq!((cache.hits(), cache.misses()), (1, 3));
        cache.get_or_plan(&Laplace, &pts_a, opts_small()).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (2, 3), "A survived the eviction");
        cache.get_or_plan(&Laplace, &pts_b, opts_small()).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (2, 4), "B was the victim");
    }

    #[test]
    fn plan_cache_keys_on_m2l_mode_including_auto() {
        // Auto and Fft resolve to different table sets; sharing a cache
        // slot would hand one mode the other's plan. They must miss each
        // other and hit themselves.
        let pts = cloud(300, 3);
        let cache = PlanCache::unbounded();
        let auto_opts = FmmOptions { m2l_mode: M2lMode::Auto, ..opts_small() };
        let a = cache.get_or_plan(&Laplace, &pts, auto_opts).unwrap();
        let f = cache.get_or_plan(&Laplace, &pts, opts_small()).unwrap();
        assert!(!Arc::ptr_eq(&a, &f));
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
        let a2 = cache.get_or_plan(&Laplace, &pts, auto_opts).unwrap();
        assert!(Arc::ptr_eq(&a, &a2));
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
    }

    #[test]
    fn auto_mode_resolves_per_level_and_matches_fft() {
        let pts = cloud(800, 19);
        let d = densities(800, 1, 0);
        let auto_plan = Plan::try_new(
            Laplace,
            &pts,
            FmmOptions { m2l_mode: M2lMode::Auto, ..opts_small() },
        )
        .unwrap();
        // The tuner resolved Auto away: every executed level carries a
        // concrete mode and a report row with real ranks.
        assert!(!auto_plan.m2l_modes().contains(&M2lMode::Auto));
        assert_eq!(auto_plan.m2l_modes().len(), auto_plan.tree.depth() as usize + 1);
        assert!(!auto_plan.m2l_report().is_empty());
        let (_, es, _) = {
            let ns = num_surface_points(4);
            (ns, ns, ns)
        };
        for c in auto_plan.m2l_report() {
            assert!(c.rank_trg > 0 && c.rank_src > 0, "level {}: empty basis", c.level);
            assert!(c.rank_trg <= es && c.rank_src <= es, "rank exceeds dimension");
            // The machine-precision truncation keeps SVD results inside
            // the 1e-12 cross-mode gate; at order 4 the kernel matrices
            // are numerically full-rank, so the worst case is the dense
            // footprint plus the two shared bases: 318/316 ≈ 1.0064.
            assert!(
                c.compression < 1.01,
                "level {}: SVD stores more than full rank allows ({})",
                c.level,
                c.compression
            );
            assert_ne!(c.mode, M2lMode::Auto);
        }
        let fft_plan = Plan::try_new(Laplace, &pts, opts_small()).unwrap();
        let auto_pot = Session::from_plan(auto_plan).eval(&d).potentials;
        let fft_pot = Session::from_plan(fft_plan).eval(&d).potentials;
        let err = crate::direct::rel_l2_error(&auto_pot, &fft_pot);
        assert!(err < 1e-12, "Auto vs Fft rel error {err}");
    }

    #[test]
    fn plan_cache_counters_reach_the_tracer() {
        let pts = cloud(200, 7);
        let mut cache = PlanCache::unbounded();
        let trace = Tracer::enabled();
        cache.set_trace(trace.clone());
        cache.get_or_plan(&Laplace, &pts, opts_small()).unwrap();
        cache.get_or_plan(&Laplace, &pts, opts_small()).unwrap();
        let json = trace.chrome_trace_json();
        assert!(json.contains("plan_cache_hits"), "hit counter exported: {json}");
        assert!(json.contains("plan_cache_misses"), "miss counter exported");
    }

    #[test]
    fn session_pool_reuses_scratch() {
        let pts = cloud(300, 11);
        let session =
            Session::from_plan(Plan::try_new(Laplace, &pts, opts_small()).unwrap());
        let d = densities(300, 1, 0);
        let first = session.eval(&d).potentials;
        for _ in 0..3 {
            assert_eq!(session.eval(&d).potentials, first);
        }
    }

    #[test]
    fn eval_many_matches_fmm_wrapper() {
        // Fmm::eval (plan-then-execute wrapper) and a standalone Session
        // over an identical plan agree bitwise.
        let pts = cloud(350, 13);
        let d = densities(350, 1, 2);
        let fmm = Fmm::new(Laplace, &pts, opts_small());
        let session =
            Session::from_plan(Plan::try_new(Laplace, &pts, opts_small()).unwrap());
        assert_eq!(fmm.eval(&d).potentials, session.eval(&d).potentials);
        assert_eq!(Evaluator::eval(&fmm, &d).potentials, session.eval(&d).potentials);
    }
}
