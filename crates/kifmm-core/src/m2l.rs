//! Multipole-to-local (M2L) translation, FFT-accelerated (paper §1:
//! "the multipole-to-local translations are accelerated using local FFTs")
//! with a dense fallback used as the ablation baseline (paper footnote 5).
//!
//! Because the upward-equivalent points of a source box `A` and the
//! downward-check points of a target box `B` are translates of the same
//! regular `p³`-lattice cube-surface grid, the check potential
//! `u[i] = Σ_j K(x_i − y_j) φ[j]` is a discrete correlation. Embedding the
//! surface density into a zero-padded `(2p)³` volume grid turns it into a
//! circular convolution: one forward 3-D FFT per source box, one Hadamard
//! product per V-list interaction (using a precomputed kernel-tensor FFT
//! per each of the 316 relative directions), and one inverse FFT per
//! target box.
//!
//! For homogeneous kernels the 316 tensors are built once at a reference
//! level and the level scale `λ^deg` is applied when the check potential
//! is read off the grid; for inhomogeneous kernels they are built per
//! level.

use crate::surface::{surface_grid_indices, surface_points, RAD_INNER};
use kifmm_fft::{pointwise_mul_add, C64, Fft3};
use kifmm_kernels::{assemble, Kernel};
use kifmm_linalg::{axpy, dot, gemm, gemm_tn, gemv, svd, Mat};
use std::collections::HashMap;

/// How M2L translations are executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum M2lMode {
    /// FFT-accelerated (the paper's production path).
    #[default]
    Fft,
    /// Dense matrix application per interaction (the ablation baseline:
    /// higher flop rate, far more flops — paper footnote 5).
    Direct,
    /// SVD-compressed: every direction's translation matrix is projected
    /// onto shared low-rank bases at plan time, and the V-list pass runs
    /// small per-direction cores as BLAS-3 over the whole level.
    Svd,
    /// Plan-time autotune: micro-benchmark the three explicit modes per
    /// level and record the winner in the plan (never survives into an
    /// executing engine — plans resolve it to a concrete mode per level).
    Auto,
}

/// All 316 V-list directions: offsets `v ∈ [−3, 3]³` with `max|v_i| > 1`.
pub fn v_list_directions() -> Vec<[i32; 3]> {
    let mut out = Vec::with_capacity(316);
    for x in -3i32..=3 {
        for y in -3i32..=3 {
            for z in -3i32..=3 {
                if x.abs() > 1 || y.abs() > 1 || z.abs() > 1 {
                    out.push([x, y, z]);
                }
            }
        }
    }
    debug_assert_eq!(out.len(), 316);
    out
}

/// Precomputed FFT M2L data for one kernel and surface order.
pub struct M2lFft<K: Kernel> {
    /// Padded grid side `m = 2p`.
    m: usize,
    /// 3-D FFT plan on the `m³` grid.
    pub plan: Fft3,
    /// Volume-grid linear index of each surface point.
    surf_idx: Vec<usize>,
    /// Kernel tensor FFTs: `tensors[slot][dir] → [TRG·SRC][m³]`
    /// concatenated. One slot for homogeneous kernels (reference level),
    /// one per level otherwise.
    tensors: Vec<HashMap<[i32; 3], Vec<C64>>>,
    /// Level → (slot, scale) lookup.
    level_slot: Vec<(usize, f64)>,
    /// Hermitian mirror pairs `(dst, src)` covering every grid index with
    /// `w₂ > m/2`: all inputs are real, so `X[−w] = conj(X[w])` and the
    /// Hadamard stage only touches the half-spectrum slab `w₂ ≤ m/2`;
    /// [`M2lFft::extract_check`] reconstructs the rest via this table.
    mirror: Vec<(u32, u32)>,
    /// Kernel block dims, captured at build (dims are runtime values so
    /// closure kernels flow through the same machinery).
    src_dim: usize,
    trg_dim: usize,
    _kernel: std::marker::PhantomData<K>,
}

impl<K: Kernel> M2lFft<K> {
    /// Build tensors for levels `2..=depth` of a tree with root half-width
    /// `root_half`.
    pub fn build(kernel: &K, p: usize, root_half: f64, depth: u8) -> Self {
        let m = 2 * p;
        let plan = Fft3::new([m, m, m]);
        let surf_idx = surface_grid_indices(p)
            .into_iter()
            .map(|[i, j, k]| (i * m + j) * m + k)
            .collect();
        let dirs = v_list_directions();
        let mut tensors = Vec::new();
        let mut level_slot = vec![(usize::MAX, 0.0); depth as usize + 1];
        if depth >= 2 {
            match kernel.homogeneity() {
                Some(deg) => {
                    let ref_half = root_half / 4.0; // level 2
                    tensors.push(build_tensors(kernel, p, m, &plan, ref_half, &dirs));
                    for l in 2..=depth as usize {
                        let half = root_half / (1u64 << l) as f64;
                        level_slot[l] = (0, (half / ref_half).powf(deg));
                    }
                }
                None => {
                    for l in 2..=depth as usize {
                        let half = root_half / (1u64 << l) as f64;
                        level_slot[l] = (tensors.len(), 1.0);
                        tensors.push(build_tensors(kernel, p, m, &plan, half, &dirs));
                    }
                }
            }
        }
        let mut mirror = Vec::with_capacity(m * m * (m / 2 - 1));
        for w0 in 0..m {
            for w1 in 0..m {
                let row = (w0 * m + w1) * m;
                let mrow = (((m - w0) % m) * m + (m - w1) % m) * m;
                for w2 in m / 2 + 1..m {
                    mirror.push(((row + w2) as u32, (mrow + (m - w2)) as u32));
                }
            }
        }
        M2lFft {
            m,
            plan,
            surf_idx,
            tensors,
            level_slot,
            mirror,
            src_dim: kernel.src_dim(),
            trg_dim: kernel.trg_dim(),
            _kernel: std::marker::PhantomData,
        }
    }

    /// Grid volume `m³`.
    pub fn grid_len(&self) -> usize {
        self.m * self.m * self.m
    }

    /// Entries of the half-spectrum slab `w₂ ≤ m/2` the Hadamard stage
    /// actually multiplies (the rest of each length-`m` row is implied by
    /// Hermitian symmetry).
    pub fn slab_len(&self) -> usize {
        self.m * self.m * (self.m / 2 + 1)
    }

    /// Forward-transform a box's upward equivalent density
    /// (`n_s·SRC_DIM`, point-major) into `SRC_DIM` spectral grids.
    pub fn transform_source(&self, equiv: &[f64], out: &mut [C64]) {
        let g = self.grid_len();
        let sd = self.src_dim;
        debug_assert_eq!(equiv.len(), self.surf_idx.len() * sd);
        debug_assert_eq!(out.len(), sd * g);
        out.fill(C64::ZERO);
        for (pt, &vi) in self.surf_idx.iter().enumerate() {
            for s in 0..sd {
                out[s * g + vi] = C64::real(equiv[pt * sd + s]);
            }
        }
        for s in 0..sd {
            self.plan.forward(&mut out[s * g..(s + 1) * g]);
        }
    }

    /// Accumulate one V-list interaction in frequency space:
    /// `acc[t] += K̂_dir[t][s] ⊙ src[s]`, touching only the Hermitian
    /// half-spectrum slab `w₂ ≤ m/2` of each grid (both factors transform
    /// real data, so the skipped mirror half is determined by conjugation
    /// and filled in once per target by [`M2lFft::extract_check`] — not
    /// once per source). Returns the flop count charged.
    pub fn accumulate(&self, level: u8, dir: [i32; 3], src: &[C64], acc: &mut [C64]) -> u64 {
        let g = self.grid_len();
        let (m, h) = (self.m, self.m / 2 + 1);
        let (slot, _) = self.level_slot[level as usize];
        let tensor = self.tensors[slot]
            .get(&dir)
            .unwrap_or_else(|| panic!("missing M2L tensor for direction {dir:?}"));
        let (sd, td) = (self.src_dim, self.trg_dim);
        for t in 0..td {
            for s in 0..sd {
                let a = &mut acc[t * g..(t + 1) * g];
                let tn = &tensor[(t * sd + s) * g..(t * sd + s + 1) * g];
                let sr = &src[s * g..(s + 1) * g];
                for row in 0..m * m {
                    let b = row * m;
                    pointwise_mul_add(&mut a[b..b + h], &tn[b..b + h], &sr[b..b + h]);
                }
            }
        }
        (td * sd * self.slab_len() * 8) as u64
    }

    /// Inverse-transform an accumulated spectrum and scatter the surface
    /// values into a downward check potential (`n_s·TRG_DIM`, point-major),
    /// applying the homogeneity scale for `level`. The mirror half of the
    /// spectrum ([`M2lFft::accumulate`] writes only `w₂ ≤ m/2`) is
    /// reconstructed by Hermitian symmetry first.
    pub fn extract_check(&self, level: u8, acc: &mut [C64], check: &mut [f64]) {
        let g = self.grid_len();
        let td = self.trg_dim;
        debug_assert_eq!(check.len(), self.surf_idx.len() * td);
        let (_, scale) = self.level_slot[level as usize];
        // Only the embedded surface cube `[0, p)³` is read back, so the
        // inverse transform is pruned to that corner.
        let p = self.m / 2;
        let inv = 1.0 / g as f64;
        for t in 0..td {
            let a = &mut acc[t * g..(t + 1) * g];
            for &(dst, src) in &self.mirror {
                a[dst as usize] = a[src as usize].conj();
            }
            self.plan.inverse_corner_unnormalized(a, [p, p, p]);
        }
        for (pt, &vi) in self.surf_idx.iter().enumerate() {
            for t in 0..td {
                check[pt * td + t] += scale * (acc[t * g + vi].re * inv);
            }
        }
    }

    /// Nominal flop count of one forward or inverse FFT batch
    /// (`dim` transforms of `m³` points, 5·n·log₂n each).
    pub fn fft_flops(&self, dim: usize) -> u64 {
        let n = self.grid_len() as f64;
        (dim as f64 * 5.0 * n * n.log2()) as u64
    }
}

/// Build the 316 kernel-tensor FFTs for boxes of half-width `half`.
///
/// For direction `v` (target-to-source offset in box widths), the tensor on
/// the wrapped `(2p)³` grid holds `K(d·h − 2r·v)` where `d ∈ (−p, p)³` is
/// the (check-point − equivalent-point) lattice displacement and
/// `h = 2·RAD_INNER·r/(p−1)` the lattice spacing.
fn build_tensors<K: Kernel>(
    kernel: &K,
    p: usize,
    m: usize,
    plan: &Fft3,
    half: f64,
    dirs: &[[i32; 3]],
) -> HashMap<[i32; 3], Vec<C64>> {
    let g = m * m * m;
    let h = 2.0 * RAD_INNER * half / (p - 1) as f64;
    let side = 2.0 * half;
    let kdim = kernel.trg_dim() * kernel.src_dim();
    let mut out = HashMap::with_capacity(dirs.len());
    let mut block = vec![0.0; kdim];
    // Map a wrapped grid coordinate to the displacement it represents:
    // w ∈ [0, p) → d = w; w ∈ (m−p, m) → d = w − m; w = p unused (m = 2p).
    let unwrap = |w: usize| -> Option<i64> {
        if w < p {
            Some(w as i64)
        } else if w > m - p {
            Some(w as i64 - m as i64)
        } else {
            None
        }
    };
    for &v in dirs {
        let mut grids = vec![C64::ZERO; kdim * g];
        for w0 in 0..m {
            let Some(d0) = unwrap(w0) else { continue };
            for w1 in 0..m {
                let Some(d1) = unwrap(w1) else { continue };
                for w2 in 0..m {
                    let Some(d2) = unwrap(w2) else { continue };
                    // x − y for check point of B minus equivalent point of
                    // A, with c_A − c_B = side·v.
                    let x = [
                        d0 as f64 * h - side * v[0] as f64,
                        d1 as f64 * h - side * v[1] as f64,
                        d2 as f64 * h - side * v[2] as f64,
                    ];
                    kernel.eval(x, [0.0; 3], &mut block);
                    let vi = (w0 * m + w1) * m + w2;
                    for c in 0..kdim {
                        grids[c * g + vi] = C64::real(block[c]);
                    }
                }
            }
        }
        for c in 0..kdim {
            plan.forward(&mut grids[c * g..(c + 1) * g]);
        }
        out.insert(v, grids);
    }
    out
}

/// Dense M2L operators, assembled lazily per (level, direction) — the
/// ablation baseline.
pub struct M2lDirect<K: Kernel> {
    kernel: K,
    p: usize,
    /// Cache: (level, direction) → `(n_s·TRG) × (n_s·SRC)` matrix. For
    /// homogeneous kernels the cache key uses level `u8::MAX` (reference)
    /// plus a per-level scale.
    cache: std::sync::Mutex<HashMap<(u8, [i32; 3]), std::sync::Arc<Mat>>>,
    level_scale: Vec<(u8, f64)>,
    root_half: f64,
}

impl<K: Kernel> M2lDirect<K> {
    /// Set up the lazy cache for levels `2..=depth`.
    pub fn new(kernel: &K, p: usize, root_half: f64, depth: u8) -> Self {
        let mut level_scale = vec![(0u8, 1.0); depth as usize + 1];
        match kernel.homogeneity() {
            Some(deg) => {
                let ref_half = root_half / 4.0;
                for l in 2..=depth as usize {
                    let half = root_half / (1u64 << l) as f64;
                    level_scale[l] = (2, (half / ref_half).powf(deg));
                }
            }
            None => {
                for l in 2..=depth as usize {
                    level_scale[l] = (l as u8, 1.0);
                }
            }
        }
        M2lDirect {
            kernel: kernel.clone(),
            p,
            cache: std::sync::Mutex::new(HashMap::new()),
            level_scale,
            root_half,
        }
    }

    /// Apply one dense M2L interaction: `check += scale · K_dir · equiv`.
    /// Returns the flop count charged.
    pub fn apply(&self, level: u8, dir: [i32; 3], equiv: &[f64], check: &mut [f64]) -> u64 {
        let (cache_level, scale) = self.level_scale[level as usize];
        let mat = {
            // Recover from poisoning: the map is consistent even if a
            // concurrent assembler panicked.
            let mut cache =
                self.cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            cache
                .entry((cache_level, dir))
                .or_insert_with(|| {
                    let half = self.root_half / (1u64 << cache_level) as f64;
                    let dc = surface_points(self.p, RAD_INNER, [0.0; 3], half);
                    let side = 2.0 * half;
                    let src_center =
                        [side * dir[0] as f64, side * dir[1] as f64, side * dir[2] as f64];
                    let ue = surface_points(self.p, RAD_INNER, src_center, half);
                    std::sync::Arc::new(assemble(&self.kernel, &dc, &ue))
                })
                .clone()
        };
        let mut tmp = vec![0.0; check.len()];
        kifmm_linalg::gemv(scale, &mat, equiv, 0.0, &mut tmp);
        for (c, t) in check.iter_mut().zip(&tmp) {
            *c += t;
        }
        (2 * mat.rows() * mat.cols()) as u64
    }
}

/// Absorb a block of rows into the triangular factor of an incremental
/// (TSQR-style) R-only Householder QR.
///
/// `r` is the running `n × n` upper-triangular factor; `bt` holds the new
/// block *transposed* (`n × nb`: row `j` of `bt` is column `j` of the
/// absorbed block), so every Householder update is a contiguous
/// dot/axpy pair over `bt` rows. After the call, `r` is the triangular
/// factor of the stack `[R; Bᵀᵗ]` and `bt`'s contents are destroyed.
///
/// Why R-only: the shared M2L bases only need the row space of the
/// stacked kernel matrices, which the small `R` carries exactly — unlike
/// the Gram-matrix shortcut (`AᵀA`), which squares the condition number
/// and loses the small singular values the truncation test inspects.
fn qr_absorb(r: &mut Mat, bt: &mut Mat) {
    let n = r.rows();
    debug_assert_eq!(r.cols(), n, "R must be square");
    debug_assert_eq!(bt.rows(), n, "transposed block must have n rows");
    let nb = bt.cols();
    let data = bt.as_mut_slice();
    for j in 0..n {
        // Split so row j (the Householder tail) and rows k > j (the
        // columns it updates) borrow disjointly.
        let (head, tail) = data.split_at_mut((j + 1) * nb);
        let row_j = &mut head[j * nb..];
        let normsq = dot(row_j, row_j);
        if normsq == 0.0 {
            continue; // column already triangular
        }
        let rjj = r[(j, j)];
        // Sign opposite the diagonal for a well-conditioned reflector.
        let alpha = -rjj.signum() * (rjj * rjj + normsq).sqrt();
        let v0 = rjj - alpha;
        let inv = 2.0 / (v0 * v0 + normsq);
        r[(j, j)] = alpha;
        for k in j + 1..n {
            let row_k = &mut tail[(k - j - 1) * nb..(k - j) * nb];
            let w = inv * (v0 * r[(j, k)] + dot(row_j, row_k));
            r[(j, k)] -= w * v0;
            axpy(-w, row_j, row_k);
        }
    }
}

/// The orthonormal row basis of `r` truncated at `σ ≥ tol·σ₀` (at least
/// rank 1): the leading rows of `svd(r).vt`, returned as a `rank × n`
/// matrix.
fn truncated_row_basis(r: &Mat, tol: f64) -> Mat {
    let f = svd(r);
    let s0 = f.s.first().copied().unwrap_or(0.0);
    let rank = f.s.iter().take_while(|&&s| s >= tol * s0).count().max(1);
    Mat::from_fn(rank, r.cols(), |i, j| f.vt[(i, j)])
}

/// One level slot of the SVD-compressed M2L family: shared bases plus a
/// small core per V-list direction.
pub struct SvdSlot {
    /// Target (check-surface) basis, `cs × r_t`, orthonormal columns:
    /// check potentials are expanded as `check += scale · U · w`.
    pub u: Mat,
    /// Source (equivalent-surface) projector, `r_s × es`: equivalent
    /// densities are compressed as `y = Vᵀ · equiv`.
    pub vt: Mat,
    /// Compressed cores `C_d = Uᵀ K_d V`, one per direction in the
    /// canonical sorted order of [`M2lSvd::dirs`], each `r_t × r_s`.
    pub cores: Vec<Mat>,
}

impl SvdSlot {
    /// Retained target rank `r_t`.
    pub fn rank_trg(&self) -> usize {
        self.u.cols()
    }

    /// Retained source rank `r_s`.
    pub fn rank_src(&self) -> usize {
        self.vt.rows()
    }

    /// Stored floats of this slot (bases + all cores) over the dense
    /// family it replaces (316 full matrices) — below 1 when the shared
    /// bases actually compress.
    pub fn compression(&self) -> f64 {
        let (cs, rt) = self.u.shape();
        let (rs, es) = self.vt.shape();
        let nd = self.cores.len();
        let stored = cs * rt + rs * es + nd * rt * rs;
        stored as f64 / (nd * cs * es) as f64
    }

    /// Bytes held by this slot.
    pub fn bytes(&self) -> usize {
        let (cs, rt) = self.u.shape();
        let (rs, es) = self.vt.shape();
        (cs * rt + rs * es + self.cores.len() * rt * rs) * std::mem::size_of::<f64>()
    }
}

/// SVD-compressed M2L operators with bases shared across all 316
/// directions of a level.
///
/// At plan time, the per-direction dense translation matrices
/// `K_d` (`cs × es`) are swept twice through an incremental R-only QR
/// ([`qr_absorb`]): the row space of `[K_1; …; K_316]` gives the shared
/// source basis, the row space of `[K_1ᵀ; …; K_316ᵀ]` the shared target
/// basis. Each sweep reduces to one small `R` whose SVD is truncated at
/// `σ ≥ ns·ε·σ₀` (`ns` surface points, `ε = 2⁻⁵²` roundoff) — a
/// tolerance tied to the surface order, far below the discretization
/// error, so the compressed path stays within the cross-mode agreement
/// gates. The V-list pass then runs per-direction `r_t × r_s` cores as
/// BLAS-3 over the whole level (see the engine's SVD M2L stage).
///
/// Homogeneous kernels share one slot built at the level-2 reference
/// half-width with a per-level scale, exactly like [`M2lFft`].
pub struct M2lSvd<K: Kernel> {
    /// The 316 directions in canonical sorted order — the engine
    /// accumulates per-direction contributions in exactly this order, so
    /// serial and pool executions sum identically.
    dirs: Vec<[i32; 3]>,
    /// Direction → index into `dirs` / `SvdSlot::cores`.
    dir_index: HashMap<[i32; 3], u32>,
    /// One slot for homogeneous kernels, one per level otherwise.
    slots: Vec<SvdSlot>,
    /// Level → (slot, scale) lookup.
    level_slot: Vec<(usize, f64)>,
    _kernel: std::marker::PhantomData<K>,
}

impl<K: Kernel> M2lSvd<K> {
    /// Build compressed operators for levels `2..=depth` of a tree with
    /// root half-width `root_half`.
    pub fn build(kernel: &K, p: usize, root_half: f64, depth: u8) -> Self {
        let mut dirs = v_list_directions();
        dirs.sort_unstable();
        let dir_index: HashMap<[i32; 3], u32> =
            dirs.iter().enumerate().map(|(i, &d)| (d, i as u32)).collect();
        let mut slots = Vec::new();
        let mut level_slot = vec![(usize::MAX, 0.0); depth as usize + 1];
        if depth >= 2 {
            match kernel.homogeneity() {
                Some(deg) => {
                    let ref_half = root_half / 4.0; // level 2
                    slots.push(build_svd_slot(kernel, p, &dirs, ref_half));
                    for l in 2..=depth as usize {
                        let half = root_half / (1u64 << l) as f64;
                        level_slot[l] = (0, (half / ref_half).powf(deg));
                    }
                }
                None => {
                    for l in 2..=depth as usize {
                        let half = root_half / (1u64 << l) as f64;
                        level_slot[l] = (slots.len(), 1.0);
                        slots.push(build_svd_slot(kernel, p, &dirs, half));
                    }
                }
            }
        }
        M2lSvd { dirs, dir_index, slots, level_slot, _kernel: std::marker::PhantomData }
    }

    /// The directions in canonical (sorted) accumulation order.
    pub fn dirs(&self) -> &[[i32; 3]] {
        &self.dirs
    }

    /// Index of `dir` in the canonical order (`None` for non-V offsets).
    pub fn dir_index(&self, dir: [i32; 3]) -> Option<u32> {
        self.dir_index.get(&dir).copied()
    }

    /// The slot and homogeneity scale serving `level`.
    pub fn slot(&self, level: u8) -> (&SvdSlot, f64) {
        let (si, scale) = self.level_slot[level as usize];
        (&self.slots[si], scale)
    }

    /// Total bytes held by all slots.
    pub fn bytes(&self) -> usize {
        self.slots.iter().map(SvdSlot::bytes).sum()
    }

    /// Apply one compressed interaction,
    /// `check += scale · U (C_d (Vᵀ equiv))` — the per-pair reference
    /// path used by tests and flop accounting. Returns the flops charged.
    pub fn apply(&self, level: u8, dir: [i32; 3], equiv: &[f64], check: &mut [f64]) -> u64 {
        let (slot, scale) = self.slot(level);
        let di = self.dir_index[&dir] as usize;
        let core = &slot.cores[di];
        let y = slot.vt.matvec(equiv);
        let z = core.matvec(&y);
        gemv(scale, &slot.u, &z, 1.0, check);
        let (cs, rt) = slot.u.shape();
        let (rs, es) = slot.vt.shape();
        (2 * (rs * es + rt * rs + cs * rt)) as u64
    }
}

/// Build one [`SvdSlot`] for boxes of half-width `half`: two QR sweeps
/// over the 316 dense matrices (assembled on the fly — memory stays
/// `O(cs·es)`), SVD-truncate the small triangular factors, then a third
/// sweep forms the cores against the retained bases.
fn build_svd_slot<K: Kernel>(kernel: &K, p: usize, dirs: &[[i32; 3]], half: f64) -> SvdSlot {
    let dc = surface_points(p, RAD_INNER, [0.0; 3], half);
    let ns = dc.len();
    let cs = ns * kernel.trg_dim();
    let es = ns * kernel.src_dim();
    let side = 2.0 * half;
    let src_surface = |v: [i32; 3]| {
        let c = [side * v[0] as f64, side * v[1] as f64, side * v[2] as f64];
        surface_points(p, RAD_INNER, c, half)
    };
    let mut r_row = Mat::zeros(cs, cs); // QR of the stacked K_dᵀ blocks
    let mut r_col = Mat::zeros(es, es); // QR of the stacked K_d blocks
    for &v in dirs {
        let kd = assemble(kernel, &dc, &src_surface(v));
        // Absorbing block K_dᵀ: its transpose is K_d itself.
        let mut bt = kd.clone();
        qr_absorb(&mut r_row, &mut bt);
        let mut bt = kd.transpose();
        qr_absorb(&mut r_col, &mut bt);
    }
    let tol = ns as f64 * f64::EPSILON / 2.0; // ns · 2⁻⁵³ ≈ ns·1.1e-16
    let u = truncated_row_basis(&r_row, tol).transpose(); // cs × r_t
    let vt = truncated_row_basis(&r_col, tol); // r_s × es
    let (rt, rs) = (u.cols(), vt.rows());
    let v = vt.transpose(); // es × r_s
    let mut cores = Vec::with_capacity(dirs.len());
    for &dir in dirs {
        let kd = assemble(kernel, &dc, &src_surface(dir));
        let mut kv = Mat::zeros(cs, rs);
        gemm(1.0, &kd, &v, 0.0, &mut kv);
        let mut core = Mat::zeros(rt, rs);
        gemm_tn(1.0, &u, &kv, 0.0, &mut core);
        cores.push(core);
    }
    SvdSlot { u, vt, cores }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kifmm_kernels::{Laplace, Stokes};

    #[test]
    fn directions_exclude_near_field() {
        let dirs = v_list_directions();
        assert_eq!(dirs.len(), 316);
        for d in &dirs {
            assert!(d.iter().any(|&v| v.abs() > 1));
            assert!(d.iter().all(|&v| v.abs() <= 3));
        }
    }

    /// The FFT path must agree with the dense path to near machine
    /// precision — they compute the same discrete sum.
    #[test]
    fn fft_matches_direct_laplace() {
        fft_matches_direct(&Laplace, 4, [2, 0, 0]);
        fft_matches_direct(&Laplace, 4, [-3, 2, 1]);
        fft_matches_direct(&Laplace, 6, [2, -1, 0]);
        fft_matches_direct(&Laplace, 5, [3, 3, 3]);
    }

    #[test]
    fn fft_matches_direct_stokes() {
        fft_matches_direct(&Stokes::default(), 4, [0, 2, -2]);
        fft_matches_direct(&Stokes::default(), 4, [-2, 0, 3]);
    }

    fn fft_matches_direct<K: Kernel>(kernel: &K, p: usize, dir: [i32; 3]) {
        let root_half = 1.0;
        let depth = 3u8;
        let level = 3u8;
        let (sd, td) = (kernel.src_dim(), kernel.trg_dim());
        let ns = crate::surface::num_surface_points(p);
        let equiv: Vec<f64> =
            (0..ns * sd).map(|i| ((i * 13 % 17) as f64) / 17.0 - 0.4).collect();

        // FFT path.
        let fft = M2lFft::build(kernel, p, root_half, depth);
        let g = fft.grid_len();
        let mut src = vec![C64::ZERO; sd * g];
        fft.transform_source(&equiv, &mut src);
        let mut acc = vec![C64::ZERO; td * g];
        fft.accumulate(level, dir, &src, &mut acc);
        let mut check_fft = vec![0.0; ns * td];
        fft.extract_check(level, &mut acc, &mut check_fft);

        // Dense path.
        let direct = M2lDirect::new(kernel, p, root_half, depth);
        let mut check_dir = vec![0.0; ns * td];
        direct.apply(level, dir, &equiv, &mut check_dir);

        let scale = check_dir.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        for (a, b) in check_fft.iter().zip(&check_dir) {
            assert!(
                (a - b).abs() < 1e-10 * scale.max(1e-30),
                "FFT {a} vs direct {b} (dir {dir:?}, p={p})"
            );
        }
    }

    #[test]
    fn homogeneous_levels_share_tensors() {
        let fft = M2lFft::build(&Laplace, 4, 1.0, 6);
        assert_eq!(fft.tensors.len(), 1, "Laplace shares one tensor slot");
        // Scales follow λ^{-1}: deeper level → half halves → scale doubles.
        let (s2, sc2) = fft.level_slot[2];
        let (s3, sc3) = fft.level_slot[3];
        assert_eq!(s2, s3);
        assert!((sc3 / sc2 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn inhomogeneous_levels_get_own_tensors() {
        let k = kifmm_kernels::ModifiedLaplace::new(1.0);
        let fft = M2lFft::build(&k, 3, 1.0, 4);
        assert_eq!(fft.tensors.len(), 3, "levels 2, 3, 4");
        for l in 2..=4 {
            assert!((fft.level_slot[l].1 - 1.0).abs() < 1e-15);
        }
    }

    /// The Gaussian reports `homogeneity() == None` (no power law relates
    /// scales), so it must take the per-level branch ModifiedLaplace
    /// pioneered: one tensor slab per level, all scales exactly 1.
    #[test]
    fn gaussian_gets_per_level_tensors() {
        let k = kifmm_kernels::Gaussian::new(0.8);
        assert_eq!(k.homogeneity(), None, "Gaussian is inhomogeneous");
        let fft = M2lFft::build(&k, 3, 1.0, 5);
        assert_eq!(fft.tensors.len(), 4, "own tensors for levels 2, 3, 4, 5");
        for l in 2..=5 {
            assert_eq!(fft.level_slot[l].0, l - 2, "level {l} maps to its own slot");
            assert!((fft.level_slot[l].1 - 1.0).abs() < 1e-15, "no rescale for level {l}");
        }
    }

    /// `qr_absorb` keeps the defining invariant of a triangular factor:
    /// after absorbing blocks `B₁, B₂, …`, `RᵀR = Σ BᵢᵀBᵢ`.
    #[test]
    fn qr_absorb_preserves_gram() {
        let n = 6;
        let blocks: Vec<Mat> = (0..3)
            .map(|b| Mat::from_fn(4 + b, n, |i, j| ((i * 7 + j * 3 + b * 11) as f64).sin()))
            .collect();
        let mut r = Mat::zeros(n, n);
        for blk in &blocks {
            let mut bt = blk.transpose();
            qr_absorb(&mut r, &mut bt);
        }
        let mut gram = Mat::zeros(n, n);
        for blk in &blocks {
            gemm_tn(1.0, blk, blk, 1.0, &mut gram);
        }
        let rtr = r.transpose().matmul(&r);
        let scale = gram.max_abs().max(1.0);
        for (a, b) in rtr.as_slice().iter().zip(gram.as_slice()) {
            assert!((a - b).abs() < 1e-12 * scale, "RᵀR {a} vs Gram {b}");
        }
        // R is upper triangular.
        for i in 0..n {
            for j in 0..i {
                assert_eq!(r[(i, j)], 0.0, "subdiagonal ({i},{j})");
            }
        }
    }

    /// The compressed path must agree with the dense path to near machine
    /// precision — the truncation tolerance sits far below it.
    #[test]
    fn svd_matches_direct_laplace() {
        svd_matches_direct(&Laplace, 4, &[[2, 0, 0], [-3, 2, 1], [3, 3, 3]]);
    }

    #[test]
    fn svd_matches_direct_stokes() {
        svd_matches_direct(&Stokes::default(), 3, &[[0, 2, -2], [-2, 0, 3]]);
    }

    fn svd_matches_direct<K: Kernel>(kernel: &K, p: usize, dirs: &[[i32; 3]]) {
        let root_half = 1.0;
        let depth = 3u8;
        let (sd, td) = (kernel.src_dim(), kernel.trg_dim());
        let ns = crate::surface::num_surface_points(p);
        let equiv: Vec<f64> =
            (0..ns * sd).map(|i| ((i * 13 % 17) as f64) / 17.0 - 0.4).collect();
        let svdm = M2lSvd::build(kernel, p, root_half, depth);
        let direct = M2lDirect::new(kernel, p, root_half, depth);
        for &dir in dirs {
            for level in 2..=depth {
                let mut check_svd = vec![0.0; ns * td];
                svdm.apply(level, dir, &equiv, &mut check_svd);
                let mut check_dir = vec![0.0; ns * td];
                direct.apply(level, dir, &equiv, &mut check_dir);
                let scale = check_dir.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
                for (a, b) in check_svd.iter().zip(&check_dir) {
                    assert!(
                        (a - b).abs() < 1e-12 * scale.max(1e-30),
                        "SVD {a} vs direct {b} (dir {dir:?}, p={p}, level {level})"
                    );
                }
            }
        }
    }

    #[test]
    fn svd_homogeneous_levels_share_one_slot() {
        let m = M2lSvd::build(&Laplace, 3, 1.0, 6);
        assert_eq!(m.slots.len(), 1, "Laplace shares one compressed slot");
        let (s2, sc2) = m.level_slot[2];
        let (s3, sc3) = m.level_slot[3];
        assert_eq!(s2, s3);
        assert!((sc3 / sc2 - 2.0).abs() < 1e-12, "λ^{{-1}} level scaling");
        let (slot, _) = m.slot(3);
        assert!(slot.rank_trg() >= 1 && slot.rank_trg() <= slot.u.rows());
        assert!(slot.compression() > 0.0);
        assert!(m.bytes() > 0);
    }

    #[test]
    fn svd_inhomogeneous_levels_get_own_slots() {
        let k = kifmm_kernels::ModifiedLaplace::new(1.0);
        let m = M2lSvd::build(&k, 3, 1.0, 4);
        assert_eq!(m.slots.len(), 3, "levels 2, 3, 4");
        for l in 2..=4u8 {
            assert!((m.slot(l).1 - 1.0).abs() < 1e-15);
        }
    }

    #[test]
    fn direct_cache_reuses_matrices() {
        let direct = M2lDirect::new(&Laplace, 3, 1.0, 5);
        let ns = crate::surface::num_surface_points(3);
        let equiv = vec![1.0; ns];
        let mut check = vec![0.0; ns];
        direct.apply(3, [2, 0, 0], &equiv, &mut check);
        direct.apply(4, [2, 0, 0], &equiv, &mut check);
        direct.apply(5, [2, 0, 0], &equiv, &mut check);
        assert_eq!(direct.cache.lock().unwrap().len(), 1, "homogeneous: one cached matrix");
    }
}
