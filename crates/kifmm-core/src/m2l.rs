//! Multipole-to-local (M2L) translation, FFT-accelerated (paper §1:
//! "the multipole-to-local translations are accelerated using local FFTs")
//! with a dense fallback used as the ablation baseline (paper footnote 5).
//!
//! Because the upward-equivalent points of a source box `A` and the
//! downward-check points of a target box `B` are translates of the same
//! regular `p³`-lattice cube-surface grid, the check potential
//! `u[i] = Σ_j K(x_i − y_j) φ[j]` is a discrete correlation. Embedding the
//! surface density into a zero-padded `(2p)³` volume grid turns it into a
//! circular convolution: one forward 3-D FFT per source box, one Hadamard
//! product per V-list interaction (using a precomputed kernel-tensor FFT
//! per each of the 316 relative directions), and one inverse FFT per
//! target box.
//!
//! For homogeneous kernels the 316 tensors are built once at a reference
//! level and the level scale `λ^deg` is applied when the check potential
//! is read off the grid; for inhomogeneous kernels they are built per
//! level.

use crate::surface::{surface_grid_indices, surface_points, RAD_INNER};
use kifmm_fft::{pointwise_mul_add, C64, Fft3};
use kifmm_kernels::{assemble, Kernel};
use kifmm_linalg::Mat;
use std::collections::HashMap;

/// How M2L translations are executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum M2lMode {
    /// FFT-accelerated (the paper's production path).
    #[default]
    Fft,
    /// Dense matrix application per interaction (the ablation baseline:
    /// higher flop rate, far more flops — paper footnote 5).
    Direct,
}

/// All 316 V-list directions: offsets `v ∈ [−3, 3]³` with `max|v_i| > 1`.
pub fn v_list_directions() -> Vec<[i32; 3]> {
    let mut out = Vec::with_capacity(316);
    for x in -3i32..=3 {
        for y in -3i32..=3 {
            for z in -3i32..=3 {
                if x.abs() > 1 || y.abs() > 1 || z.abs() > 1 {
                    out.push([x, y, z]);
                }
            }
        }
    }
    debug_assert_eq!(out.len(), 316);
    out
}

/// Precomputed FFT M2L data for one kernel and surface order.
pub struct M2lFft<K: Kernel> {
    /// Padded grid side `m = 2p`.
    m: usize,
    /// 3-D FFT plan on the `m³` grid.
    pub plan: Fft3,
    /// Volume-grid linear index of each surface point.
    surf_idx: Vec<usize>,
    /// Kernel tensor FFTs: `tensors[slot][dir] → [TRG·SRC][m³]`
    /// concatenated. One slot for homogeneous kernels (reference level),
    /// one per level otherwise.
    tensors: Vec<HashMap<[i32; 3], Vec<C64>>>,
    /// Level → (slot, scale) lookup.
    level_slot: Vec<(usize, f64)>,
    /// Hermitian mirror pairs `(dst, src)` covering every grid index with
    /// `w₂ > m/2`: all inputs are real, so `X[−w] = conj(X[w])` and the
    /// Hadamard stage only touches the half-spectrum slab `w₂ ≤ m/2`;
    /// [`M2lFft::extract_check`] reconstructs the rest via this table.
    mirror: Vec<(u32, u32)>,
    _kernel: std::marker::PhantomData<K>,
}

impl<K: Kernel> M2lFft<K> {
    /// Build tensors for levels `2..=depth` of a tree with root half-width
    /// `root_half`.
    pub fn build(kernel: &K, p: usize, root_half: f64, depth: u8) -> Self {
        let m = 2 * p;
        let plan = Fft3::new([m, m, m]);
        let surf_idx = surface_grid_indices(p)
            .into_iter()
            .map(|[i, j, k]| (i * m + j) * m + k)
            .collect();
        let dirs = v_list_directions();
        let mut tensors = Vec::new();
        let mut level_slot = vec![(usize::MAX, 0.0); depth as usize + 1];
        if depth >= 2 {
            match kernel.homogeneity() {
                Some(deg) => {
                    let ref_half = root_half / 4.0; // level 2
                    tensors.push(build_tensors(kernel, p, m, &plan, ref_half, &dirs));
                    for l in 2..=depth as usize {
                        let half = root_half / (1u64 << l) as f64;
                        level_slot[l] = (0, (half / ref_half).powf(deg));
                    }
                }
                None => {
                    for l in 2..=depth as usize {
                        let half = root_half / (1u64 << l) as f64;
                        level_slot[l] = (tensors.len(), 1.0);
                        tensors.push(build_tensors(kernel, p, m, &plan, half, &dirs));
                    }
                }
            }
        }
        let mut mirror = Vec::with_capacity(m * m * (m / 2 - 1));
        for w0 in 0..m {
            for w1 in 0..m {
                let row = (w0 * m + w1) * m;
                let mrow = (((m - w0) % m) * m + (m - w1) % m) * m;
                for w2 in m / 2 + 1..m {
                    mirror.push(((row + w2) as u32, (mrow + (m - w2)) as u32));
                }
            }
        }
        M2lFft { m, plan, surf_idx, tensors, level_slot, mirror, _kernel: std::marker::PhantomData }
    }

    /// Grid volume `m³`.
    pub fn grid_len(&self) -> usize {
        self.m * self.m * self.m
    }

    /// Entries of the half-spectrum slab `w₂ ≤ m/2` the Hadamard stage
    /// actually multiplies (the rest of each length-`m` row is implied by
    /// Hermitian symmetry).
    pub fn slab_len(&self) -> usize {
        self.m * self.m * (self.m / 2 + 1)
    }

    /// Forward-transform a box's upward equivalent density
    /// (`n_s·SRC_DIM`, point-major) into `SRC_DIM` spectral grids.
    pub fn transform_source(&self, equiv: &[f64], out: &mut [C64]) {
        let g = self.grid_len();
        debug_assert_eq!(equiv.len(), self.surf_idx.len() * K::SRC_DIM);
        debug_assert_eq!(out.len(), K::SRC_DIM * g);
        out.fill(C64::ZERO);
        for (pt, &vi) in self.surf_idx.iter().enumerate() {
            for s in 0..K::SRC_DIM {
                out[s * g + vi] = C64::real(equiv[pt * K::SRC_DIM + s]);
            }
        }
        for s in 0..K::SRC_DIM {
            self.plan.forward(&mut out[s * g..(s + 1) * g]);
        }
    }

    /// Accumulate one V-list interaction in frequency space:
    /// `acc[t] += K̂_dir[t][s] ⊙ src[s]`, touching only the Hermitian
    /// half-spectrum slab `w₂ ≤ m/2` of each grid (both factors transform
    /// real data, so the skipped mirror half is determined by conjugation
    /// and filled in once per target by [`M2lFft::extract_check`] — not
    /// once per source). Returns the flop count charged.
    pub fn accumulate(&self, level: u8, dir: [i32; 3], src: &[C64], acc: &mut [C64]) -> u64 {
        let g = self.grid_len();
        let (m, h) = (self.m, self.m / 2 + 1);
        let (slot, _) = self.level_slot[level as usize];
        let tensor = self.tensors[slot]
            .get(&dir)
            .unwrap_or_else(|| panic!("missing M2L tensor for direction {dir:?}"));
        for t in 0..K::TRG_DIM {
            for s in 0..K::SRC_DIM {
                let a = &mut acc[t * g..(t + 1) * g];
                let tn = &tensor[(t * K::SRC_DIM + s) * g..(t * K::SRC_DIM + s + 1) * g];
                let sr = &src[s * g..(s + 1) * g];
                for row in 0..m * m {
                    let b = row * m;
                    pointwise_mul_add(&mut a[b..b + h], &tn[b..b + h], &sr[b..b + h]);
                }
            }
        }
        (K::TRG_DIM * K::SRC_DIM * self.slab_len() * 8) as u64
    }

    /// Inverse-transform an accumulated spectrum and scatter the surface
    /// values into a downward check potential (`n_s·TRG_DIM`, point-major),
    /// applying the homogeneity scale for `level`. The mirror half of the
    /// spectrum ([`M2lFft::accumulate`] writes only `w₂ ≤ m/2`) is
    /// reconstructed by Hermitian symmetry first.
    pub fn extract_check(&self, level: u8, acc: &mut [C64], check: &mut [f64]) {
        let g = self.grid_len();
        debug_assert_eq!(check.len(), self.surf_idx.len() * K::TRG_DIM);
        let (_, scale) = self.level_slot[level as usize];
        // Only the embedded surface cube `[0, p)³` is read back, so the
        // inverse transform is pruned to that corner.
        let p = self.m / 2;
        let inv = 1.0 / g as f64;
        for t in 0..K::TRG_DIM {
            let a = &mut acc[t * g..(t + 1) * g];
            for &(dst, src) in &self.mirror {
                a[dst as usize] = a[src as usize].conj();
            }
            self.plan.inverse_corner_unnormalized(a, [p, p, p]);
        }
        for (pt, &vi) in self.surf_idx.iter().enumerate() {
            for t in 0..K::TRG_DIM {
                check[pt * K::TRG_DIM + t] += scale * (acc[t * g + vi].re * inv);
            }
        }
    }

    /// Nominal flop count of one forward or inverse FFT batch
    /// (`dim` transforms of `m³` points, 5·n·log₂n each).
    pub fn fft_flops(&self, dim: usize) -> u64 {
        let n = self.grid_len() as f64;
        (dim as f64 * 5.0 * n * n.log2()) as u64
    }
}

/// Build the 316 kernel-tensor FFTs for boxes of half-width `half`.
///
/// For direction `v` (target-to-source offset in box widths), the tensor on
/// the wrapped `(2p)³` grid holds `K(d·h − 2r·v)` where `d ∈ (−p, p)³` is
/// the (check-point − equivalent-point) lattice displacement and
/// `h = 2·RAD_INNER·r/(p−1)` the lattice spacing.
fn build_tensors<K: Kernel>(
    kernel: &K,
    p: usize,
    m: usize,
    plan: &Fft3,
    half: f64,
    dirs: &[[i32; 3]],
) -> HashMap<[i32; 3], Vec<C64>> {
    let g = m * m * m;
    let h = 2.0 * RAD_INNER * half / (p - 1) as f64;
    let side = 2.0 * half;
    let kdim = K::TRG_DIM * K::SRC_DIM;
    let mut out = HashMap::with_capacity(dirs.len());
    let mut block = vec![0.0; kdim];
    // Map a wrapped grid coordinate to the displacement it represents:
    // w ∈ [0, p) → d = w; w ∈ (m−p, m) → d = w − m; w = p unused (m = 2p).
    let unwrap = |w: usize| -> Option<i64> {
        if w < p {
            Some(w as i64)
        } else if w > m - p {
            Some(w as i64 - m as i64)
        } else {
            None
        }
    };
    for &v in dirs {
        let mut grids = vec![C64::ZERO; kdim * g];
        for w0 in 0..m {
            let Some(d0) = unwrap(w0) else { continue };
            for w1 in 0..m {
                let Some(d1) = unwrap(w1) else { continue };
                for w2 in 0..m {
                    let Some(d2) = unwrap(w2) else { continue };
                    // x − y for check point of B minus equivalent point of
                    // A, with c_A − c_B = side·v.
                    let x = [
                        d0 as f64 * h - side * v[0] as f64,
                        d1 as f64 * h - side * v[1] as f64,
                        d2 as f64 * h - side * v[2] as f64,
                    ];
                    kernel.eval(x, [0.0; 3], &mut block);
                    let vi = (w0 * m + w1) * m + w2;
                    for c in 0..kdim {
                        grids[c * g + vi] = C64::real(block[c]);
                    }
                }
            }
        }
        for c in 0..kdim {
            plan.forward(&mut grids[c * g..(c + 1) * g]);
        }
        out.insert(v, grids);
    }
    out
}

/// Dense M2L operators, assembled lazily per (level, direction) — the
/// ablation baseline.
pub struct M2lDirect<K: Kernel> {
    kernel: K,
    p: usize,
    /// Cache: (level, direction) → `(n_s·TRG) × (n_s·SRC)` matrix. For
    /// homogeneous kernels the cache key uses level `u8::MAX` (reference)
    /// plus a per-level scale.
    cache: std::sync::Mutex<HashMap<(u8, [i32; 3]), std::sync::Arc<Mat>>>,
    level_scale: Vec<(u8, f64)>,
    root_half: f64,
}

impl<K: Kernel> M2lDirect<K> {
    /// Set up the lazy cache for levels `2..=depth`.
    pub fn new(kernel: &K, p: usize, root_half: f64, depth: u8) -> Self {
        let mut level_scale = vec![(0u8, 1.0); depth as usize + 1];
        match kernel.homogeneity() {
            Some(deg) => {
                let ref_half = root_half / 4.0;
                for l in 2..=depth as usize {
                    let half = root_half / (1u64 << l) as f64;
                    level_scale[l] = (2, (half / ref_half).powf(deg));
                }
            }
            None => {
                for l in 2..=depth as usize {
                    level_scale[l] = (l as u8, 1.0);
                }
            }
        }
        M2lDirect {
            kernel: kernel.clone(),
            p,
            cache: std::sync::Mutex::new(HashMap::new()),
            level_scale,
            root_half,
        }
    }

    /// Apply one dense M2L interaction: `check += scale · K_dir · equiv`.
    /// Returns the flop count charged.
    pub fn apply(&self, level: u8, dir: [i32; 3], equiv: &[f64], check: &mut [f64]) -> u64 {
        let (cache_level, scale) = self.level_scale[level as usize];
        let mat = {
            // Recover from poisoning: the map is consistent even if a
            // concurrent assembler panicked.
            let mut cache =
                self.cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            cache
                .entry((cache_level, dir))
                .or_insert_with(|| {
                    let half = self.root_half / (1u64 << cache_level) as f64;
                    let dc = surface_points(self.p, RAD_INNER, [0.0; 3], half);
                    let side = 2.0 * half;
                    let src_center =
                        [side * dir[0] as f64, side * dir[1] as f64, side * dir[2] as f64];
                    let ue = surface_points(self.p, RAD_INNER, src_center, half);
                    std::sync::Arc::new(assemble(&self.kernel, &dc, &ue))
                })
                .clone()
        };
        let mut tmp = vec![0.0; check.len()];
        kifmm_linalg::gemv(scale, &mat, equiv, 0.0, &mut tmp);
        for (c, t) in check.iter_mut().zip(&tmp) {
            *c += t;
        }
        (2 * mat.rows() * mat.cols()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kifmm_kernels::{Laplace, Stokes};

    #[test]
    fn directions_exclude_near_field() {
        let dirs = v_list_directions();
        assert_eq!(dirs.len(), 316);
        for d in &dirs {
            assert!(d.iter().any(|&v| v.abs() > 1));
            assert!(d.iter().all(|&v| v.abs() <= 3));
        }
    }

    /// The FFT path must agree with the dense path to near machine
    /// precision — they compute the same discrete sum.
    #[test]
    fn fft_matches_direct_laplace() {
        fft_matches_direct(&Laplace, 4, [2, 0, 0]);
        fft_matches_direct(&Laplace, 4, [-3, 2, 1]);
        fft_matches_direct(&Laplace, 6, [2, -1, 0]);
        fft_matches_direct(&Laplace, 5, [3, 3, 3]);
    }

    #[test]
    fn fft_matches_direct_stokes() {
        fft_matches_direct(&Stokes::default(), 4, [0, 2, -2]);
        fft_matches_direct(&Stokes::default(), 4, [-2, 0, 3]);
    }

    fn fft_matches_direct<K: Kernel>(kernel: &K, p: usize, dir: [i32; 3]) {
        let root_half = 1.0;
        let depth = 3u8;
        let level = 3u8;
        let ns = crate::surface::num_surface_points(p);
        let equiv: Vec<f64> =
            (0..ns * K::SRC_DIM).map(|i| ((i * 13 % 17) as f64) / 17.0 - 0.4).collect();

        // FFT path.
        let fft = M2lFft::build(kernel, p, root_half, depth);
        let g = fft.grid_len();
        let mut src = vec![C64::ZERO; K::SRC_DIM * g];
        fft.transform_source(&equiv, &mut src);
        let mut acc = vec![C64::ZERO; K::TRG_DIM * g];
        fft.accumulate(level, dir, &src, &mut acc);
        let mut check_fft = vec![0.0; ns * K::TRG_DIM];
        fft.extract_check(level, &mut acc, &mut check_fft);

        // Dense path.
        let direct = M2lDirect::new(kernel, p, root_half, depth);
        let mut check_dir = vec![0.0; ns * K::TRG_DIM];
        direct.apply(level, dir, &equiv, &mut check_dir);

        let scale = check_dir.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        for (a, b) in check_fft.iter().zip(&check_dir) {
            assert!(
                (a - b).abs() < 1e-10 * scale.max(1e-30),
                "FFT {a} vs direct {b} (dir {dir:?}, p={p})"
            );
        }
    }

    #[test]
    fn homogeneous_levels_share_tensors() {
        let fft = M2lFft::build(&Laplace, 4, 1.0, 6);
        assert_eq!(fft.tensors.len(), 1, "Laplace shares one tensor slot");
        // Scales follow λ^{-1}: deeper level → half halves → scale doubles.
        let (s2, sc2) = fft.level_slot[2];
        let (s3, sc3) = fft.level_slot[3];
        assert_eq!(s2, s3);
        assert!((sc3 / sc2 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn inhomogeneous_levels_get_own_tensors() {
        let k = kifmm_kernels::ModifiedLaplace::new(1.0);
        let fft = M2lFft::build(&k, 3, 1.0, 4);
        assert_eq!(fft.tensors.len(), 3, "levels 2, 3, 4");
        for l in 2..=4 {
            assert!((fft.level_slot[l].1 - 1.0).abs() < 1e-15);
        }
    }

    #[test]
    fn direct_cache_reuses_matrices() {
        let direct = M2lDirect::new(&Laplace, 3, 1.0, 5);
        let ns = crate::surface::num_surface_points(3);
        let equiv = vec![1.0; ns];
        let mut check = vec![0.0; ns];
        direct.apply(3, [2, 0, 0], &equiv, &mut check);
        direct.apply(4, [2, 0, 0], &equiv, &mut check);
        direct.apply(5, [2, 0, 0], &equiv, &mut check);
        assert_eq!(direct.cache.lock().unwrap().len(), 1, "homogeneous: one cached matrix");
    }
}
