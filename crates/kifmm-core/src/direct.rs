//! Direct `O(N²)` summation — the exact reference the FMM approximates,
//! used for accuracy measurements and as the small-`N` baseline in the
//! benches. Parallelized over targets with the in-tree runtime (targets
//! are embarrassingly parallel).

use kifmm_kernels::{Kernel, Point3};

/// `u_i = Σ_j G(x_i, x_j) φ_j` with the self term excluded, exactly.
pub fn direct_eval<K: Kernel>(kernel: &K, points: &[Point3], densities: &[f64]) -> Vec<f64> {
    direct_eval_src_trg(kernel, points, densities, points)
}

/// Direct summation with distinct source and target sets.
pub fn direct_eval_src_trg<K: Kernel>(
    kernel: &K,
    sources: &[Point3],
    densities: &[f64],
    targets: &[Point3],
) -> Vec<f64> {
    let (sd, td) = (kernel.src_dim(), kernel.trg_dim());
    assert_eq!(densities.len(), sources.len() * sd);
    let mut out = vec![0.0; targets.len() * td];
    // Chunk targets so tasks have useful grain without per-target overhead.
    let chunk = 64;
    kifmm_runtime::par_chunks_mut(&mut out, chunk * td, |i, o| {
        let t = &targets[i * chunk..(i * chunk + o.len() / td)];
        kernel.p2p(t, sources, densities, o);
    });
    out
}

/// Exact potentials *and* gradients: `(u_i, ∇u_i)` with the self term
/// excluded — the reference for the FMM's `PotentialAndGradient` output.
/// Returns `(potentials, gradients)` with `trg_dim` and `trg_dim·3`
/// components per target respectively.
pub fn direct_eval_grad<K: Kernel>(
    kernel: &K,
    points: &[Point3],
    densities: &[f64],
) -> (Vec<f64>, Vec<f64>) {
    direct_eval_grad_src_trg(kernel, points, densities, points)
}

/// Direct gradient summation with distinct source and target sets.
pub fn direct_eval_grad_src_trg<K: Kernel>(
    kernel: &K,
    sources: &[Point3],
    densities: &[f64],
    targets: &[Point3],
) -> (Vec<f64>, Vec<f64>) {
    let (sd, td) = (kernel.src_dim(), kernel.trg_dim());
    assert_eq!(densities.len(), sources.len() * sd);
    let mut pots = vec![0.0; targets.len() * td];
    let mut grads = vec![0.0; targets.len() * td * 3];
    // Parallelize over target chunks; both output buffers are carved with
    // matching strides so each task owns one disjoint target range.
    let chunk = 64;
    kifmm_runtime::par_chunks2_mut(&mut pots, chunk * td, &mut grads, chunk * td * 3, |i, p, g| {
        let t = &targets[i * chunk..(i * chunk + p.len() / td)];
        kernel.p2p_grad(t, sources, densities, p, g);
    });
    (pots, grads)
}

/// Relative ℓ² error between an approximation and a reference.
pub fn rel_l2_error(approx: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(approx.len(), truth.len());
    let num: f64 = approx.iter().zip(truth).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
    let den: f64 = truth.iter().map(|v| v * v).sum::<f64>().sqrt();
    if den == 0.0 {
        num
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kifmm_kernels::{Laplace, Stokes};

    #[test]
    fn two_body_laplace() {
        let pts = [[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]];
        let u = direct_eval(&Laplace, &pts, &[1.0, 2.0]);
        let c = 1.0 / (4.0 * std::f64::consts::PI);
        assert!((u[0] - 2.0 * c).abs() < 1e-15);
        assert!((u[1] - c).abs() < 1e-15);
    }

    #[test]
    fn matches_sequential_summation() {
        let pts: Vec<[f64; 3]> = (0..137)
            .map(|i| {
                let t = i as f64;
                [t.sin(), (t * 0.7).cos(), (t * 0.3).sin()]
            })
            .collect();
        let dens: Vec<f64> = (0..137 * 3).map(|i| (i as f64 * 0.01).cos()).collect();
        let k = Stokes::default();
        let par = direct_eval(&k, &pts, &dens);
        let mut seq = vec![0.0; 137 * 3];
        k.p2p(&pts, &pts, &dens, &mut seq);
        for (a, b) in par.iter().zip(&seq) {
            assert!((a - b).abs() < 1e-14);
        }
    }

    #[test]
    fn rel_error_basics() {
        assert_eq!(rel_l2_error(&[1.0, 0.0], &[1.0, 0.0]), 0.0);
        assert!((rel_l2_error(&[1.1, 0.0], &[1.0, 0.0]) - 0.1).abs() < 1e-12);
        assert_eq!(rel_l2_error(&[0.5], &[0.0]), 0.5);
    }

    #[test]
    fn grad_matches_sequential_fused_loop() {
        let pts: Vec<[f64; 3]> = (0..97)
            .map(|i| {
                let t = i as f64;
                [(t * 0.9).sin(), (t * 0.4).cos(), (t * 0.2).sin()]
            })
            .collect();
        let dens: Vec<f64> = (0..97 * 3).map(|i| (i as f64 * 0.05).sin()).collect();
        let k = Stokes::default();
        let (pu, pg) = direct_eval_grad(&k, &pts, &dens);
        let mut su = vec![0.0; 97 * 3];
        let mut sg = vec![0.0; 97 * 9];
        k.p2p_grad(&pts, &pts, &dens, &mut su, &mut sg);
        for (a, b) in pu.iter().zip(&su) {
            assert!((a - b).abs() < 1e-14);
        }
        for (a, b) in pg.iter().zip(&sg) {
            assert!((a - b).abs() < 1e-13);
        }
    }

    #[test]
    fn separate_targets() {
        let src = [[0.0, 0.0, 0.0]];
        let trg = [[2.0, 0.0, 0.0], [0.0, 4.0, 0.0]];
        let u = direct_eval_src_trg(&Laplace, &src, &[8.0], &trg);
        let c = 1.0 / (4.0 * std::f64::consts::PI);
        assert!((u[0] - 4.0 * c).abs() < 1e-14);
        assert!((u[1] - 2.0 * c).abs() < 1e-14);
    }
}
