//! Direct `O(N²)` summation — the exact reference the FMM approximates,
//! used for accuracy measurements and as the small-`N` baseline in the
//! benches. Parallelized over targets with the in-tree runtime (targets
//! are embarrassingly parallel).

use kifmm_kernels::{Kernel, Point3};

/// `u_i = Σ_j G(x_i, x_j) φ_j` with the self term excluded, exactly.
pub fn direct_eval<K: Kernel>(kernel: &K, points: &[Point3], densities: &[f64]) -> Vec<f64> {
    direct_eval_src_trg(kernel, points, densities, points)
}

/// Direct summation with distinct source and target sets.
pub fn direct_eval_src_trg<K: Kernel>(
    kernel: &K,
    sources: &[Point3],
    densities: &[f64],
    targets: &[Point3],
) -> Vec<f64> {
    assert_eq!(densities.len(), sources.len() * K::SRC_DIM);
    let mut out = vec![0.0; targets.len() * K::TRG_DIM];
    // Chunk targets so tasks have useful grain without per-target overhead.
    let chunk = 64;
    kifmm_runtime::par_chunks_mut(&mut out, chunk * K::TRG_DIM, |i, o| {
        let t = &targets[i * chunk..(i * chunk + o.len() / K::TRG_DIM)];
        kernel.p2p(t, sources, densities, o);
    });
    out
}

/// Relative ℓ² error between an approximation and a reference.
pub fn rel_l2_error(approx: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(approx.len(), truth.len());
    let num: f64 = approx.iter().zip(truth).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
    let den: f64 = truth.iter().map(|v| v * v).sum::<f64>().sqrt();
    if den == 0.0 {
        num
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kifmm_kernels::{Laplace, Stokes};

    #[test]
    fn two_body_laplace() {
        let pts = [[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]];
        let u = direct_eval(&Laplace, &pts, &[1.0, 2.0]);
        let c = 1.0 / (4.0 * std::f64::consts::PI);
        assert!((u[0] - 2.0 * c).abs() < 1e-15);
        assert!((u[1] - c).abs() < 1e-15);
    }

    #[test]
    fn matches_sequential_summation() {
        let pts: Vec<[f64; 3]> = (0..137)
            .map(|i| {
                let t = i as f64;
                [t.sin(), (t * 0.7).cos(), (t * 0.3).sin()]
            })
            .collect();
        let dens: Vec<f64> = (0..137 * 3).map(|i| (i as f64 * 0.01).cos()).collect();
        let k = Stokes::default();
        let par = direct_eval(&k, &pts, &dens);
        let mut seq = vec![0.0; 137 * 3];
        k.p2p(&pts, &pts, &dens, &mut seq);
        for (a, b) in par.iter().zip(&seq) {
            assert!((a - b).abs() < 1e-14);
        }
    }

    #[test]
    fn rel_error_basics() {
        assert_eq!(rel_l2_error(&[1.0, 0.0], &[1.0, 0.0]), 0.0);
        assert!((rel_l2_error(&[1.1, 0.0], &[1.0, 0.0]) - 0.1).abs() < 1e-12);
        assert_eq!(rel_l2_error(&[0.5], &[0.0]), 0.5);
    }

    #[test]
    fn separate_targets() {
        let src = [[0.0, 0.0, 0.0]];
        let trg = [[2.0, 0.0, 0.0], [0.0, 4.0, 0.0]];
        let u = direct_eval_src_trg(&Laplace, &src, &[8.0], &trg);
        let c = 1.0 / (4.0 * std::f64::consts::PI);
        assert!((u[0] - 4.0 * c).abs() < 1e-14);
        assert!((u[1] - 2.0 * c).abs() < 1e-14);
    }
}
