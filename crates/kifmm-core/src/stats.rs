//! Phase instrumentation: wall/CPU time and exact flop counts.
//!
//! The paper reports its scalability numbers per *stage* of the interaction
//! calculation (Figures 4.2/4.3): `Up`, `Comm`, `DownU`, `DownV`, `DownW`,
//! `DownX` and `Eval`. The evaluator charges every operation to one of
//! these phases:
//!
//! * `Up` — S2M (source → upward check → upward equivalent) and M2M,
//!   including the check-to-equivalent inversions;
//! * `Comm` — message passing (zero in the shared-memory evaluator;
//!   populated by `kifmm-parallel`);
//! * `DownU` — dense near interactions (U lists);
//! * `DownV` — M2L translations (FFT or direct);
//! * `DownW` — W-list equivalent-to-target evaluations;
//! * `DownX` — X-list source-to-check evaluations;
//! * `Eval` — L2L (parent-to-child), downward check-to-equivalent
//!   inversions, and the final L2T evaluation at the targets.

/// Seconds of CPU time consumed by the calling thread
/// (`CLOCK_THREAD_CPUTIME_ID`, re-exported from the in-tree runtime's
/// raw-syscall binding — no libc).
///
/// The compute phases are timed with this clock rather than wall time:
/// the bench harness runs many virtual MPI ranks as threads on a few
/// cores, and thread CPU time stays meaningful under that oversubscription
/// while wall time would charge a rank for time it spent descheduled. On a
/// dedicated core the two clocks agree.
pub use kifmm_runtime::thread_cpu_time;

/// The seven instrumented stages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// Upward pass (S2M + M2M).
    Up = 0,
    /// Communication (distributed driver only).
    Comm = 1,
    /// Dense near-field interactions.
    DownU = 2,
    /// M2L translations.
    DownV = 3,
    /// W-list evaluations.
    DownW = 4,
    /// X-list evaluations.
    DownX = 5,
    /// L2L + final target evaluation.
    Eval = 6,
}

impl Phase {
    /// Number of instrumented phases.
    pub const COUNT: usize = 7;
}

/// All phases, in reporting order.
pub const PHASES: [Phase; Phase::COUNT] =
    [Phase::Up, Phase::Comm, Phase::DownU, Phase::DownV, Phase::DownW, Phase::DownX, Phase::Eval];

/// Short labels matching the paper's figures.
pub const PHASE_NAMES: [&str; Phase::COUNT] =
    ["Up", "Comm", "DownU", "DownV", "DownW", "DownX", "Eval"];

/// Per-phase timing and flop accounting for one interaction calculation.
#[derive(Clone, Debug, Default)]
pub struct PhaseStats {
    /// Seconds charged per phase. Compute phases charge **thread-CPU
    /// time** (see [`thread_cpu_time`]); the parallel evaluator's
    /// fork-join stages and the distributed driver's `Comm` phase charge
    /// wall-clock time and document that choice at the charging site.
    pub seconds: [f64; Phase::COUNT],
    /// Exact counted floating-point operations per phase.
    pub flops: [u64; Phase::COUNT],
    /// Messages sent while work was charged to each phase (zero in the
    /// shared-memory evaluators; populated by the distributed driver).
    pub comm_messages: [u64; Phase::COUNT],
    /// Bytes sent while work was charged to each phase.
    pub comm_bytes: [u64; Phase::COUNT],
}

impl PhaseStats {
    /// New, zeroed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total seconds across phases.
    pub fn total_seconds(&self) -> f64 {
        self.seconds.iter().sum()
    }

    /// Total flops across phases.
    pub fn total_flops(&self) -> u64 {
        self.flops.iter().sum()
    }

    /// Upward-pass seconds (the paper's `Up` column).
    pub fn up_seconds(&self) -> f64 {
        self.seconds[Phase::Up as usize]
    }

    /// Downward seconds (the paper's `Down` column: everything after the
    /// communication step).
    pub fn down_seconds(&self) -> f64 {
        self.seconds[Phase::DownU as usize]
            + self.seconds[Phase::DownV as usize]
            + self.seconds[Phase::DownW as usize]
            + self.seconds[Phase::DownX as usize]
            + self.seconds[Phase::Eval as usize]
    }

    /// Aggregate flop rate in Gflop/s over the measured wall time.
    pub fn gflops_rate(&self) -> f64 {
        let t = self.total_seconds();
        if t > 0.0 {
            self.total_flops() as f64 / t / 1e9
        } else {
            0.0
        }
    }

    /// Accumulate another run's stats (used by the distributed driver to
    /// merge rank-local stats).
    pub fn merge(&mut self, other: &PhaseStats) {
        for i in 0..PHASES.len() {
            self.seconds[i] += other.seconds[i];
            self.flops[i] += other.flops[i];
            self.comm_messages[i] += other.comm_messages[i];
            self.comm_bytes[i] += other.comm_bytes[i];
        }
    }

    /// Charge sent traffic to a phase (distributed driver only).
    pub fn add_comm(&mut self, phase: Phase, messages: u64, bytes: u64) {
        self.comm_messages[phase as usize] += messages;
        self.comm_bytes[phase as usize] += bytes;
    }

    /// Total messages sent across phases.
    pub fn total_messages(&self) -> u64 {
        self.comm_messages.iter().sum()
    }

    /// Total bytes sent across phases.
    pub fn total_comm_bytes(&self) -> u64 {
        self.comm_bytes.iter().sum()
    }

    /// Charge `f(…)`'s thread-CPU time and returned flop count to
    /// `phase`. Producers that deliberately want wall time (fork-join
    /// stages, communication waits) use [`PhaseStats::add_seconds`] with
    /// their own clock instead.
    pub fn timed<T>(&mut self, phase: Phase, f: impl FnOnce(&mut u64) -> T) -> T {
        let start = thread_cpu_time();
        let mut flops = 0u64;
        let out = f(&mut flops);
        self.seconds[phase as usize] += (thread_cpu_time() - start).max(0.0);
        self.flops[phase as usize] += flops;
        out
    }

    /// Add flops to a phase without timing (inner loops time themselves at
    /// a coarser granularity).
    pub fn add_flops(&mut self, phase: Phase, flops: u64) {
        self.flops[phase as usize] += flops;
    }

    /// Add seconds to a phase.
    pub fn add_seconds(&mut self, phase: Phase, secs: f64) {
        self.seconds[phase as usize] += secs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_accumulates() {
        let mut s = PhaseStats::new();
        let v = s.timed(Phase::Up, |fl| {
            *fl = 100;
            42
        });
        assert_eq!(v, 42);
        assert_eq!(s.flops[0], 100);
        assert!(s.seconds[0] >= 0.0);
        s.timed(Phase::Up, |fl| *fl = 50);
        assert_eq!(s.flops[0], 150);
    }

    #[test]
    fn down_and_totals() {
        let mut s = PhaseStats::new();
        s.add_seconds(Phase::DownU, 1.0);
        s.add_seconds(Phase::DownV, 2.0);
        s.add_seconds(Phase::Eval, 0.5);
        s.add_seconds(Phase::Up, 4.0);
        s.add_seconds(Phase::Comm, 1.5);
        assert!((s.down_seconds() - 3.5).abs() < 1e-15);
        assert!((s.total_seconds() - 9.0).abs() < 1e-15);
    }

    #[test]
    fn merge_sums() {
        let mut a = PhaseStats::new();
        a.add_flops(Phase::DownV, 10);
        let mut b = PhaseStats::new();
        b.add_flops(Phase::DownV, 5);
        b.add_seconds(Phase::Comm, 2.0);
        b.add_comm(Phase::Comm, 3, 400);
        a.add_comm(Phase::DownV, 1, 16);
        a.merge(&b);
        assert_eq!(a.flops[Phase::DownV as usize], 15);
        assert_eq!(a.seconds[Phase::Comm as usize], 2.0);
        assert_eq!(a.comm_messages[Phase::Comm as usize], 3);
        assert_eq!(a.total_messages(), 4);
        assert_eq!(a.total_comm_bytes(), 416);
    }

    #[test]
    fn gflops_rate_zero_time() {
        let s = PhaseStats::new();
        assert_eq!(s.gflops_rate(), 0.0);
    }

    #[test]
    fn timed_charges_cpu_not_wall() {
        // The documented clock: a sleeping thread consumes no thread-CPU
        // time, so timed() must not charge the 20 ms nap to the phase.
        let mut s = PhaseStats::new();
        s.timed(Phase::Comm, |_| {
            std::thread::sleep(std::time::Duration::from_millis(20));
        });
        assert!(
            s.seconds[Phase::Comm as usize] < 0.010,
            "sleep charged to phase: {}s",
            s.seconds[Phase::Comm as usize]
        );
    }

    #[test]
    fn phase_count_matches_tables() {
        assert_eq!(PHASES.len(), Phase::COUNT);
        assert_eq!(PHASE_NAMES.len(), Phase::COUNT);
        for (i, p) in PHASES.iter().enumerate() {
            assert_eq!(*p as usize, i);
        }
    }
}
