//! Shared-memory parallel evaluation (in-tree `kifmm-runtime`).
//!
//! Selected with `Fmm::builder(..).parallel(true)`, this path runs the
//! same passes as the serial [`Fmm::eval`] with intra-node data
//! parallelism, exploiting two structural facts:
//!
//! * boxes of one level occupy a **contiguous index range** (BFS
//!   construction), so the flat node-major equivalent/check arrays can be
//!   split at level boundaries — a pass writes its level's segment with
//!   `par_chunks_mut` while reading other levels immutably;
//! * leaves own **disjoint contiguous target ranges** in Morton order, so
//!   the potential vector splits into per-leaf `&mut` slices.
//!
//! Within a rank of the distributed driver the paper exploits no threads
//! (one MPI rank per CPU, 4 per ES45 node); this evaluator is the natural
//! hybrid extension for today's many-core nodes. Results are identical to
//! the serial path up to floating-point associativity in *no* place —
//! each output element is computed by exactly one task in the same order,
//! so the results are bit-identical (asserted in tests).
//!
//! Phase timing here is **wall-clock** (work spreads across the pool;
//! per-thread CPU time would under-count); flop counts stay exact.

use crate::fmm::Fmm;
use crate::operators::FIRST_FMM_LEVEL;
use crate::stats::{Phase, PhaseStats};
use crate::surface::{num_surface_points, surface_points, RAD_INNER, RAD_OUTER};
use kifmm_fft::C64;
use kifmm_kernels::Kernel;
use kifmm_runtime::{par_chunks2_mut, par_chunks_mut, par_chunks_mut_init, par_for_each, par_map};
use kifmm_trace::Counter;
use kifmm_tree::NO_NODE;
use std::collections::HashMap;
use std::time::Instant;

impl<K: Kernel> Fmm<K> {
    /// Deprecated shim over the parallel path; prefer
    /// `Fmm::builder(..).parallel(true)` and [`Fmm::eval`].
    #[deprecated(note = "build with FmmBuilder::parallel(true) and call eval()")]
    pub fn evaluate_parallel(&self, densities: &[f64]) -> Vec<f64> {
        self.eval_parallel_impl(densities).0
    }

    /// Deprecated shim over the parallel path; prefer
    /// `Fmm::builder(..).parallel(true)` and [`Fmm::eval`].
    #[deprecated(note = "build with FmmBuilder::parallel(true) and call eval()")]
    pub fn evaluate_parallel_with_stats(&self, densities: &[f64]) -> (Vec<f64>, PhaseStats) {
        self.eval_parallel_impl(densities)
    }

    /// The fork-join evaluation pipeline. Phase seconds are wall-clock
    /// (work spreads across the pool; per-thread CPU time would
    /// under-count); flop counts are exact and identical to the serial
    /// path.
    pub(crate) fn eval_parallel_impl(&self, densities: &[f64]) -> (Vec<f64>, PhaseStats) {
        let n = self.len();
        assert_eq!(densities.len(), n * K::SRC_DIM, "density length");
        let mut stats = PhaseStats::new();
        let rt = self.trace.rank(0);
        let tree = &self.tree;
        let ns = num_surface_points(self.options().order);
        let es = ns * K::SRC_DIM;
        let cs = ns * K::TRG_DIM;
        let nn = tree.num_nodes();
        let depth = tree.depth();
        let kf = self.kernel().flops_per_eval();

        // Morton-sort densities.
        let mut dens = vec![0.0; n * K::SRC_DIM];
        for (si, &orig) in tree.perm.iter().enumerate() {
            for c in 0..K::SRC_DIM {
                dens[si * K::SRC_DIM + c] = densities[orig as usize * K::SRC_DIM + c];
            }
        }

        let mut up = vec![0.0; nn * es];
        let mut down = vec![0.0; nn * es];
        let mut check = vec![0.0; nn * cs];

        if depth >= FIRST_FMM_LEVEL {
            // ---- Upward pass -------------------------------------------------
            let span = rt.span("Up", "Up");
            let t = Instant::now();
            let mut up_flops = 0u64;
            for level in (FIRST_FMM_LEVEL..=depth).rev() {
                let (ls, le) = self.level_range(level);
                let lops = self.pre.ops.at(level);
                // Check potentials for the whole level, in parallel; `up`
                // is only read (children live at deeper indices).
                let mut checks = vec![0.0; (le - ls) * cs];
                let up_ro: &[f64] = &up;
                par_chunks_mut(&mut checks, cs, |i, chk| {
                    let ni = (ls + i) as u32;
                    let node = &tree.nodes[ni as usize];
                    if node.is_leaf() {
                        let (s, e) = (node.pt_start as usize, node.pt_end as usize);
                        let pts = &self.sorted_points[s..e];
                        let d = &dens[s * K::SRC_DIM..e * K::SRC_DIM];
                        let c = tree.domain.box_center(&node.key);
                        let uc = surface_points(self.options().order, RAD_OUTER, c, lops.box_half);
                        self.kernel().p2p(&uc, pts, d, chk);
                    } else {
                        for (oct, &ci) in node.children.iter().enumerate() {
                            if ci == NO_NODE {
                                continue;
                            }
                            let child = &up_ro[ci as usize * es..(ci as usize + 1) * es];
                            kifmm_linalg::gemv(1.0, &lops.ue2uc[oct], child, 1.0, chk);
                        }
                    }
                });
                // Invert the whole level in parallel.
                par_chunks_mut(&mut up[ls * es..le * es], es, |i, slot| {
                    let chk = &checks[i * cs..(i + 1) * cs];
                    kifmm_linalg::gemv(1.0, &lops.uc2ue, chk, 0.0, slot);
                });
                // Exact flop accounting (sequential scan; negligible).
                for i in ls..le {
                    let node = &tree.nodes[i];
                    if node.is_leaf() {
                        up_flops += (node.num_points() * ns) as u64 * kf;
                    } else {
                        let kids =
                            node.children.iter().filter(|&&c| c != NO_NODE).count() as u64;
                        up_flops += kids * 2 * (cs * es) as u64;
                    }
                    up_flops += 2 * (cs * es) as u64;
                }
            }
            stats.add_seconds(Phase::Up, t.elapsed().as_secs_f64());
            stats.add_flops(Phase::Up, up_flops);
            rt.add(Counter::Flops, up_flops);
            drop(span);

            // ---- DownV: FFT M2L ---------------------------------------------
            let t = Instant::now();
            let mut v_flops = 0u64;
            for level in FIRST_FMM_LEVEL..=depth {
                let _v = rt.span("DownV", "m2l").with_n(level as u64);
                v_flops += self.m2l_fft_level_parallel(level, &up, &mut check);
            }
            stats.add_seconds(Phase::DownV, t.elapsed().as_secs_f64());
            stats.add_flops(Phase::DownV, v_flops);
            rt.add(Counter::Flops, v_flops);

            // ---- DownX --------------------------------------------------------
            let span = rt.span("DownX", "x-list");
            let t = Instant::now();
            let mut x_flops = 0u64;
            for level in FIRST_FMM_LEVEL..=depth {
                let (ls, le) = self.level_range(level);
                let half = self.pre.ops.at(level).box_half;
                par_chunks_mut(&mut check[ls * cs..le * cs], cs, |i, slot| {
                    let ni = ls + i;
                    if self.lists.x[ni].is_empty() {
                        return;
                    }
                    let node = &tree.nodes[ni];
                    let c = tree.domain.box_center(&node.key);
                    let dc = surface_points(self.options().order, RAD_INNER, c, half);
                    for &a in &self.lists.x[ni] {
                        let an = &tree.nodes[a as usize];
                        let (s, e) = (an.pt_start as usize, an.pt_end as usize);
                        self.kernel().p2p(
                            &dc,
                            &self.sorted_points[s..e],
                            &dens[s * K::SRC_DIM..e * K::SRC_DIM],
                            slot,
                        );
                    }
                });
                for i in ls..le {
                    for &a in &self.lists.x[i] {
                        x_flops +=
                            (tree.nodes[a as usize].num_points() * ns) as u64 * kf;
                    }
                }
            }
            stats.add_seconds(Phase::DownX, t.elapsed().as_secs_f64());
            stats.add_flops(Phase::DownX, x_flops);
            rt.add(Counter::Flops, x_flops);
            drop(span);

            // ---- Eval: L2L + inversion, level by level ------------------------
            let span = rt.span("Eval", "l2l");
            let t = Instant::now();
            let mut l_flops = 0u64;
            for level in FIRST_FMM_LEVEL..=depth {
                let (ls, le) = self.level_range(level);
                let lops = self.pre.ops.at(level);
                // Parents live strictly below index ls.
                let (parents, rest) = down.split_at_mut(ls * es);
                let level_down = &mut rest[..(le - ls) * es];
                let level_check = &mut check[ls * cs..le * cs];
                par_chunks2_mut(level_down, es, level_check, cs, |i, out, chk| {
                    let node = &tree.nodes[ls + i];
                    if level > FIRST_FMM_LEVEL {
                        let pi = node.parent as usize;
                        let parent = &parents[pi * es..(pi + 1) * es];
                        let oct = node.key.octant() as usize;
                        kifmm_linalg::gemv(1.0, &lops.de2dc[oct], parent, 1.0, chk);
                    }
                    kifmm_linalg::gemv(1.0, &lops.dc2de, chk, 0.0, out);
                });
                let per_node = if level > FIRST_FMM_LEVEL { 4 } else { 2 };
                l_flops += (le - ls) as u64 * per_node * (cs * es) as u64;
            }
            stats.add_seconds(Phase::Eval, t.elapsed().as_secs_f64());
            stats.add_flops(Phase::Eval, l_flops);
            rt.add(Counter::Flops, l_flops);
            drop(span);
        }

        // ---- Leaf phases: U, W, L2T ------------------------------------------
        let mut pot = vec![0.0; n * K::TRG_DIM];
        let leaves = self.leaves_by_point_order();
        rt.add(Counter::CellsTouched, leaves.len() as u64);

        let uspan = rt.span("DownU", "u-list");
        let t = Instant::now();
        self.for_each_leaf_parallel(&leaves, &mut pot, |ni, trg, out| {
            for &a in &self.lists.u[ni as usize] {
                let an = &tree.nodes[a as usize];
                let (s, e) = (an.pt_start as usize, an.pt_end as usize);
                self.kernel().p2p(
                    trg,
                    &self.sorted_points[s..e],
                    &dens[s * K::SRC_DIM..e * K::SRC_DIM],
                    out,
                );
            }
        });
        let u_flops: u64 = leaves
            .iter()
            .map(|&ni| {
                let t = tree.nodes[ni as usize].num_points() as u64;
                self.lists.u[ni as usize]
                    .iter()
                    .map(|&a| t * tree.nodes[a as usize].num_points() as u64 * kf)
                    .sum::<u64>()
            })
            .sum();
        stats.add_seconds(Phase::DownU, t.elapsed().as_secs_f64());
        stats.add_flops(Phase::DownU, u_flops);
        rt.add(Counter::Flops, u_flops);
        drop(uspan);

        let wspan = rt.span("DownW", "w-list");
        let t = Instant::now();
        self.for_each_leaf_parallel(&leaves, &mut pot, |ni, trg, out| {
            for &a in &self.lists.w[ni as usize] {
                let akey = tree.nodes[a as usize].key;
                let ac = tree.domain.box_center(&akey);
                let ah = tree.domain.box_half(akey.level);
                let ue = surface_points(self.options().order, RAD_INNER, ac, ah);
                let equiv = &up[a as usize * es..(a as usize + 1) * es];
                self.kernel().p2p(trg, &ue, equiv, out);
            }
        });
        let w_flops: u64 = leaves
            .iter()
            .map(|&ni| {
                (tree.nodes[ni as usize].num_points()
                    * self.lists.w[ni as usize].len()
                    * ns) as u64
                    * kf
            })
            .sum();
        stats.add_seconds(Phase::DownW, t.elapsed().as_secs_f64());
        stats.add_flops(Phase::DownW, w_flops);
        rt.add(Counter::Flops, w_flops);
        drop(wspan);

        let espan = rt.span("Eval", "l2t");
        let t = Instant::now();
        let mut e_flops = 0u64;
        if depth >= FIRST_FMM_LEVEL {
            self.for_each_leaf_parallel(&leaves, &mut pot, |ni, trg, out| {
                let node = &tree.nodes[ni as usize];
                if node.key.level < FIRST_FMM_LEVEL {
                    return;
                }
                let c = tree.domain.box_center(&node.key);
                let half = tree.domain.box_half(node.key.level);
                let de = surface_points(self.options().order, RAD_OUTER, c, half);
                let equiv = &down[ni as usize * es..(ni as usize + 1) * es];
                self.kernel().p2p(trg, &de, equiv, out);
            });
            e_flops = leaves
                .iter()
                .filter(|&&ni| tree.nodes[ni as usize].key.level >= FIRST_FMM_LEVEL)
                .map(|&ni| (tree.nodes[ni as usize].num_points() * ns) as u64 * kf)
                .sum();
        }
        stats.add_seconds(Phase::Eval, t.elapsed().as_secs_f64());
        stats.add_flops(Phase::Eval, e_flops);
        rt.add(Counter::Flops, e_flops);
        drop(espan);

        // Un-permute.
        let mut out = vec![0.0; n * K::TRG_DIM];
        for (si, &orig) in tree.perm.iter().enumerate() {
            for c in 0..K::TRG_DIM {
                out[orig as usize * K::TRG_DIM + c] = pot[si * K::TRG_DIM + c];
            }
        }
        (out, stats)
    }

    /// Contiguous node-index range `[start, end)` of one level (BFS
    /// construction guarantees contiguity; asserted in debug builds).
    fn level_range(&self, level: u8) -> (usize, usize) {
        let idxs = &self.tree.levels[level as usize];
        let start = idxs[0] as usize;
        debug_assert!(idxs.windows(2).all(|w| w[1] == w[0] + 1), "level not contiguous");
        (start, start + idxs.len())
    }

    /// Leaves ordered by their point ranges (which partition `[0, N)`).
    fn leaves_by_point_order(&self) -> Vec<u32> {
        let mut leaves: Vec<u32> = self.tree.leaves().collect();
        leaves.sort_by_key(|&l| self.tree.nodes[l as usize].pt_start);
        leaves
    }

    /// Split `pot` into per-leaf disjoint `&mut` slices and run `f` on
    /// every leaf in parallel.
    fn for_each_leaf_parallel(
        &self,
        leaves: &[u32],
        pot: &mut [f64],
        f: impl Fn(u32, &[kifmm_kernels::Point3], &mut [f64]) + Sync,
    ) {
        let mut slices: Vec<(u32, &[kifmm_kernels::Point3], &mut [f64])> =
            Vec::with_capacity(leaves.len());
        let mut rest: &mut [f64] = pot;
        for &ni in leaves {
            let node = &self.tree.nodes[ni as usize];
            let (s, e) = (node.pt_start as usize, node.pt_end as usize);
            let (head, tail) =
                std::mem::take(&mut rest).split_at_mut((e - s) * K::TRG_DIM);
            slices.push((ni, &self.sorted_points[s..e], head));
            rest = tail;
        }
        debug_assert!(rest.is_empty(), "leaves must partition the targets");
        par_for_each(slices, |_, (ni, trg, out)| f(ni, trg, out));
    }

    /// Parallel FFT M2L over one level; returns the flop count.
    fn m2l_fft_level_parallel(&self, level: u8, up: &[f64], check: &mut [f64]) -> u64 {
        let fft = self.pre.m2l_fft.as_ref().expect("FFT tables present");
        let ns = num_surface_points(self.options().order);
        let es = ns * K::SRC_DIM;
        let cs = ns * K::TRG_DIM;
        let g = fft.grid_len();
        let (ls, le) = self.level_range(level);
        let mut needed: Vec<u32> = Vec::new();
        for ni in ls..le {
            needed.extend_from_slice(&self.lists.v[ni]);
        }
        needed.sort_unstable();
        needed.dedup();
        if needed.is_empty() {
            return 0;
        }
        // Forward transforms in parallel (ordered par_map, then a cheap
        // sequential collect into the lookup map).
        let spectra: HashMap<u32, Vec<C64>> = par_map(needed.len(), |idx| {
            let a = needed[idx];
            let mut buf = vec![C64::ZERO; K::SRC_DIM * g];
            fft.transform_source(&up[a as usize * es..(a as usize + 1) * es], &mut buf);
            (a, buf)
        })
        .into_iter()
        .collect();
        // Per-target accumulation with a reusable per-thread scratch.
        let tree = &self.tree;
        let mut flops = (needed.len() as u64) * fft.fft_flops(K::SRC_DIM);
        par_chunks_mut_init(
            &mut check[ls * cs..le * cs],
            cs,
            || vec![C64::ZERO; K::TRG_DIM * g],
            |acc, i, slot| {
                let ni = ls + i;
                let vlist = &self.lists.v[ni];
                if vlist.is_empty() {
                    return;
                }
                acc.fill(C64::ZERO);
                let bkey = tree.nodes[ni].key;
                for &a in vlist {
                    let dir = bkey.offset_to(&tree.nodes[a as usize].key);
                    fft.accumulate(level, dir, &spectra[&a], acc);
                }
                fft.extract_check(level, acc, slot);
            },
        );
        for ni in ls..le {
            let nv = self.lists.v[ni].len() as u64;
            if nv > 0 {
                flops += nv * (K::TRG_DIM * K::SRC_DIM * g * 8) as u64
                    + fft.fft_flops(K::TRG_DIM);
            }
        }
        flops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fmm::FmmOptions;
    use kifmm_kernels::{Laplace, Stokes};

    fn cloud(n: usize, seed: u64) -> Vec<[f64; 3]> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                std::array::from_fn(|_| {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
                })
            })
            .collect()
    }

    #[test]
    fn parallel_equals_serial_laplace() {
        let pts = cloud(1500, 4);
        let dens: Vec<f64> = (0..1500).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
        let mut fmm = Fmm::new(
            Laplace,
            &pts,
            FmmOptions { order: 5, max_pts_per_leaf: 20, ..Default::default() },
        );
        let serial = fmm.eval(&dens).potentials;
        fmm.set_parallel_eval(true);
        let parallel = fmm.eval(&dens).potentials;
        assert_eq!(serial, parallel, "parallel path must be bit-identical");
    }

    #[test]
    fn parallel_equals_serial_stokes_clustered() {
        let mut pts = cloud(400, 9);
        for p in cloud(400, 10) {
            pts.push([0.9 + p[0] * 0.05, 0.9 + p[1] * 0.05, 0.9 + p[2] * 0.05]);
        }
        let dens = kifmm_geom::random_densities(800, 3, 3);
        let fmm = Fmm::builder(Stokes::default())
            .points(&pts)
            .order(4)
            .max_pts_per_leaf(12)
            .build();
        let par = Fmm::builder(Stokes::default())
            .points(&pts)
            .order(4)
            .max_pts_per_leaf(12)
            .parallel(true)
            .build();
        assert_eq!(fmm.eval(&dens).potentials, par.eval(&dens).potentials);
    }

    #[test]
    fn parallel_flop_counts_match_serial() {
        let pts = cloud(1200, 77);
        let dens = vec![1.0; 1200];
        let mut fmm = Fmm::new(
            Laplace,
            &pts,
            FmmOptions { order: 4, max_pts_per_leaf: 15, ..Default::default() },
        );
        let s = fmm.eval(&dens).stats;
        fmm.set_parallel_eval(true);
        let p = fmm.eval(&dens).stats;
        assert_eq!(s.flops, p.flops, "flop accounting must agree exactly");
    }

    #[test]
    fn parallel_shallow_tree() {
        let pts = cloud(40, 3);
        let dens = vec![1.0; 40];
        let mut fmm = Fmm::new(Laplace, &pts, FmmOptions::with_order(4));
        let serial = fmm.eval(&dens).potentials;
        fmm.set_parallel_eval(true);
        assert_eq!(serial, fmm.eval(&dens).potentials);
    }
}
