//! Shared-memory parallel evaluation (in-tree `kifmm-runtime`).
//!
//! Selected with `Fmm::builder(..).parallel(true)`. Since the pass-engine
//! refactor this path is the *same driver* as the serial one
//! (`Plan::execute`) run under `Dispatch::Pool`: every engine loop fans
//! out over the worker pool, exploiting two structural facts:
//!
//! * boxes of one level occupy a **contiguous index range** (BFS
//!   construction), so the flat node-major slabs of the `ExpansionStore`
//!   split at level boundaries — a pass writes its level's segment in
//!   parallel chunks while reading other levels immutably;
//! * leaves own **disjoint contiguous target ranges** in Morton order, so
//!   the potential vector splits into per-leaf `&mut` slices.
//!
//! Within a rank of the distributed driver the paper exploits no threads
//! (one MPI rank per CPU, 4 per ES45 node); this evaluator is the natural
//! hybrid extension for today's many-core nodes. Each output element is
//! computed by exactly one task with the serial instruction order, so the
//! results are **bit-identical** to the serial path (asserted in tests).
//!
//! Phase timing here is **wall-clock** (work spreads across the pool;
//! per-thread CPU time would under-count); flop counts stay exact.

#[cfg(test)]
mod tests {
    use crate::fmm::{Fmm, FmmOptions};
    use kifmm_kernels::{Laplace, Stokes};
    use kifmm_testkit::cloud;

    #[test]
    fn parallel_equals_serial_laplace() {
        let pts = cloud(1500, 4);
        let dens: Vec<f64> = (0..1500).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
        let mut fmm = Fmm::new(
            Laplace,
            &pts,
            FmmOptions { order: 5, max_pts_per_leaf: 20, ..Default::default() },
        );
        let serial = fmm.eval(&dens).potentials;
        fmm.set_parallel_eval(true);
        let parallel = fmm.eval(&dens).potentials;
        assert_eq!(serial, parallel, "parallel path must be bit-identical");
    }

    #[test]
    fn parallel_equals_serial_stokes_clustered() {
        let mut pts = cloud(400, 9);
        for p in cloud(400, 10) {
            pts.push([0.9 + p[0] * 0.05, 0.9 + p[1] * 0.05, 0.9 + p[2] * 0.05]);
        }
        let dens = kifmm_geom::random_densities(800, 3, 3);
        let fmm = Fmm::builder(Stokes::default())
            .points(&pts)
            .order(4)
            .max_pts_per_leaf(12)
            .build();
        let par = Fmm::builder(Stokes::default())
            .points(&pts)
            .order(4)
            .max_pts_per_leaf(12)
            .parallel(true)
            .build();
        assert_eq!(fmm.eval(&dens).potentials, par.eval(&dens).potentials);
    }

    #[test]
    fn parallel_flop_counts_match_serial() {
        let pts = cloud(1200, 77);
        let dens = vec![1.0; 1200];
        let mut fmm = Fmm::new(
            Laplace,
            &pts,
            FmmOptions { order: 4, max_pts_per_leaf: 15, ..Default::default() },
        );
        let s = fmm.eval(&dens).stats;
        fmm.set_parallel_eval(true);
        let p = fmm.eval(&dens).stats;
        assert_eq!(s.flops, p.flops, "flop accounting must agree exactly");
    }

    #[test]
    fn parallel_shallow_tree() {
        let pts = cloud(40, 3);
        let dens = vec![1.0; 40];
        let mut fmm = Fmm::new(Laplace, &pts, FmmOptions::with_order(4));
        let serial = fmm.eval(&dens).potentials;
        fmm.set_parallel_eval(true);
        assert_eq!(serial, fmm.eval(&dens).potentials);
    }

    #[test]
    fn parallel_direct_m2l_mode_equals_serial() {
        // The engine supports dense M2L under pool dispatch too (the old
        // shared-memory path was FFT-only).
        let pts = cloud(700, 12);
        let dens: Vec<f64> = (0..700).map(|i| ((i % 11) as f64) - 5.0).collect();
        let mut fmm = Fmm::new(
            Laplace,
            &pts,
            FmmOptions {
                order: 4,
                max_pts_per_leaf: 20,
                m2l_mode: crate::m2l::M2lMode::Direct,
                ..Default::default()
            },
        );
        let serial = fmm.eval(&dens).potentials;
        fmm.set_parallel_eval(true);
        assert_eq!(serial, fmm.eval(&dens).potentials);
    }
}
