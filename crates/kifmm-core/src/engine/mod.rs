//! The single pass engine behind all three evaluation drivers.
//!
//! The paper's central structural claim is that the KIFMM passes (S2M/M2M,
//! M2L, L2L/L2T, dense U/W/X) are the *same computation* whether the boxes
//! involved are owned by one process or scattered across ranks. This module
//! makes that literal: one implementation of each pass, parameterized by
//!
//! * an **ownership filter** ([`ActiveSet`]) — the serial and shared-memory
//!   drivers activate every box, the distributed driver activates the boxes
//!   this rank contributes to;
//! * a **source provider** ([`SourceProvider`]) — local Morton-sorted
//!   points for shared-memory evaluation, ghost-exchanged geometry for the
//!   distributed driver;
//! * a **thread-dispatch hook** ([`Dispatch`] from `kifmm-runtime`) —
//!   `Serial` runs inline, `Pool` fans each level over the worker pool.
//!   Both produce bit-identical results (each output element is computed by
//!   exactly one task with the serial instruction order).
//!
//! Expansions live in a flat per-level-contiguous [`ExpansionStore`], which
//! lets the translation passes run as **per-level batched operators**: the
//! M2M/L2L GEMVs of one level collapse into a handful of multi-RHS GEMMs
//! ([`kifmm_linalg::gemm_slices`]), and the FFT M2L transforms a whole
//! level's source spectra into one contiguous slab. The drivers contribute
//! only orchestration — permutation, spans, timing, and (for the
//! distributed path) the two overlapped exchanges.
//!
//! ## Multi-RHS batches
//!
//! Every pass also runs for `k > 1` simultaneous charge vectors (see
//! `eval_many`): the store interleaves `k` rows per node, the per-level
//! GEMMs simply widen their column blocks by `k` (each output column of
//! [`kifmm_linalg::gemm_slices`] accumulates independently in identical
//! `p`-order, so widening is bitwise-safe per column), the FFT M2L loops
//! RHS **innermost** per `(source, direction)` so the direction tensors
//! stay cache-hot, and the dense passes use [`Kernel::p2p_many`] which
//! hoists pair geometry across the batch. With `k = 1` every pass takes
//! exactly the original single-RHS code path.

mod store;

pub use store::{EngineWorkspace, ExpansionStore};

use crate::m2l::M2lMode;
use crate::operators::FIRST_FMM_LEVEL;
use crate::precompute::Precomputed;
use crate::surface::{num_surface_points, surface_points, RAD_INNER, RAD_OUTER};
use kifmm_fft::C64;
use kifmm_kernels::{Kernel, Point3};
use kifmm_linalg::{gemm_slices, Mat};
use kifmm_runtime::{
    par_chunks_mut_init_with, par_chunks_mut_with, par_for_each_with, Dispatch,
};
use kifmm_tree::{InteractionLists, Octree, NO_NODE};
use std::sync::atomic::{AtomicU64, Ordering};

/// Where a pass reads the source points and densities of a leaf box: the
/// local Morton-sorted arrays (serial/shared-memory, and the distributed
/// upward pass) or the ghost-exchanged copies (distributed U/X passes).
pub trait SourceProvider: Sync {
    /// Number of simultaneous charge vectors.
    fn nrhs(&self) -> usize;
    /// Points and `SRC_DIM`-interleaved densities of box `ni` for RHS
    /// `rhs` (the points are the same for every RHS).
    fn sources(&self, ni: u32, rhs: usize) -> (&[Point3], &[f64]);
}

/// [`SourceProvider`] over the local Morton-sorted point/density arrays.
pub struct LocalSources<'a> {
    /// The computation tree (for leaf point ranges).
    pub tree: &'a Octree,
    /// Morton-sorted points.
    pub points: &'a [Point3],
    /// One Morton-sorted density vector per RHS, `src_dim` per point.
    pub dens: &'a [&'a [f64]],
    /// Kernel source dimension.
    pub src_dim: usize,
}

impl SourceProvider for LocalSources<'_> {
    fn nrhs(&self) -> usize {
        self.dens.len()
    }

    fn sources(&self, ni: u32, rhs: usize) -> (&[Point3], &[f64]) {
        let node = &self.tree.nodes[ni as usize];
        let (s, e) = (node.pt_start as usize, node.pt_end as usize);
        (&self.points[s..e], &self.dens[rhs][s * self.src_dim..e * self.src_dim])
    }
}

/// The node-ownership filter of one driver, in the shapes the passes need:
/// a membership mask, per-level active id lists, and the active leaves in
/// target-point order.
pub struct ActiveSet {
    /// `mask[ni]` — box `ni` is computed by this driver.
    pub mask: Vec<bool>,
    /// Active node ids per level, ascending.
    pub levels: Vec<Vec<u32>>,
    /// Active leaves ordered by `pt_start` (they partition the local
    /// target range).
    pub leaves: Vec<u32>,
}

impl ActiveSet {
    /// Classify every box of `tree` with `filter` (serial/shared-memory
    /// drivers pass `|_| true`; the distributed driver passes its
    /// "contributed" predicate).
    pub fn build(tree: &Octree, filter: impl Fn(u32) -> bool) -> Self {
        let nn = tree.num_nodes();
        let mut mask = vec![false; nn];
        let mut levels: Vec<Vec<u32>> = vec![Vec::new(); tree.depth() as usize + 1];
        for (ni, node) in tree.nodes.iter().enumerate() {
            if filter(ni as u32) {
                mask[ni] = true;
                levels[node.key.level as usize].push(ni as u32);
            }
        }
        let mut leaves: Vec<u32> = tree.leaves().filter(|&l| mask[l as usize]).collect();
        leaves.sort_by_key(|&l| tree.nodes[l as usize].pt_start);
        ActiveSet { mask, levels, leaves }
    }
}

/// One set of FMM passes over a prepared tree. Stateless between calls:
/// expansions live in the caller's [`ExpansionStore`], scratch in the
/// caller's [`EngineWorkspace`]. Every pass returns its exact flop count
/// (the same accounting the three drivers used individually).
pub struct PassEngine<'a, K: Kernel> {
    kernel: &'a K,
    tree: &'a Octree,
    lists: &'a InteractionLists,
    pre: &'a Precomputed<K>,
    /// Morton-sorted local target points (leaf ranges index into this).
    targets: &'a [Point3],
    order: usize,
    /// Resolved M2L execution mode per level (index = level). Drivers
    /// resolve [`M2lMode::Auto`] before constructing an engine; a slice
    /// shorter than the tree depth falls back to its last entry.
    m2l_modes: &'a [M2lMode],
    dispatch: Dispatch,
    active: &'a ActiveSet,
}

impl<'a, K: Kernel> PassEngine<'a, K> {
    /// Borrow a driver's prepared state into an engine. `m2l_modes` holds
    /// the resolved per-level M2L mode (a uniform mode is a one-element
    /// slice).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        kernel: &'a K,
        tree: &'a Octree,
        lists: &'a InteractionLists,
        pre: &'a Precomputed<K>,
        targets: &'a [Point3],
        order: usize,
        m2l_modes: &'a [M2lMode],
        dispatch: Dispatch,
        active: &'a ActiveSet,
    ) -> Self {
        assert!(!m2l_modes.is_empty(), "at least one M2L mode");
        PassEngine { kernel, tree, lists, pre, targets, order, m2l_modes, dispatch, active }
    }

    /// The resolved M2L mode executing `level`.
    pub fn m2l_mode_at(&self, level: u8) -> M2lMode {
        *self
            .m2l_modes
            .get(level as usize)
            .unwrap_or_else(|| self.m2l_modes.last().expect("nonempty mode slice"))
    }

    /// `(n_s, es, cs)`: surface points per box, equivalent row length,
    /// check row length.
    pub fn dims(&self) -> (usize, usize, usize) {
        let ns = num_surface_points(self.order);
        (ns, ns * self.kernel.src_dim(), ns * self.kernel.trg_dim())
    }

    /// A zeroed single-RHS [`ExpansionStore`] sized for this tree.
    pub fn new_store(&self) -> ExpansionStore {
        self.new_store_many(1)
    }

    /// A zeroed [`ExpansionStore`] sized for this tree and `nrhs`
    /// simultaneous charge vectors.
    pub fn new_store_many(&self, nrhs: usize) -> ExpansionStore {
        let (_, es, cs) = self.dims();
        ExpansionStore::with_nrhs(self.tree.num_nodes(), es, cs, nrhs)
    }

    /// Reshape a pooled store for this tree and `nrhs`, zeroing it.
    pub fn prepare_store(&self, store: &mut ExpansionStore, nrhs: usize) {
        let (_, es, cs) = self.dims();
        store.ensure(self.tree.num_nodes(), es, cs, nrhs);
    }

    /// Active leaves in target-point order.
    pub fn active_leaves(&self) -> &[u32] {
        &self.active.leaves
    }

    /// Number of active boxes the upward pass touches (levels ≥ 2).
    pub fn active_cell_count(&self) -> u64 {
        let depth = self.tree.depth();
        if depth < FIRST_FMM_LEVEL {
            return 0;
        }
        (FIRST_FMM_LEVEL..=depth)
            .map(|l| self.active.levels[l as usize].len() as u64)
            .sum()
    }

    /// Contiguous node-id range `[start, end)` of one level (BFS
    /// construction guarantees contiguity; asserted in debug builds).
    fn level_range(&self, level: u8) -> (usize, usize) {
        let idxs = &self.tree.levels[level as usize];
        let start = idxs[0] as usize;
        debug_assert!(idxs.windows(2).all(|w| w[1] == w[0] + 1), "level not contiguous");
        (start, start + idxs.len())
    }

    /// Dense accumulation of box `a`'s sources into per-RHS output rows:
    /// single-RHS calls take the kernel's fused [`Kernel::p2p`] (the
    /// historical instruction stream), batches take [`Kernel::p2p_many`]
    /// whose contract makes each RHS bit-identical to the former.
    fn p2p_box<S: SourceProvider>(
        &self,
        src: &S,
        a: u32,
        targets: &[Point3],
        outs: &mut [&mut [f64]],
    ) {
        if outs.len() == 1 {
            let (pts, d) = src.sources(a, 0);
            self.kernel.p2p(targets, pts, d, outs[0]);
        } else {
            let (pts, _) = src.sources(a, 0);
            let dens: Vec<&[f64]> = (0..outs.len()).map(|q| src.sources(a, q).1).collect();
            self.kernel.p2p_many(targets, pts, &dens, outs);
        }
    }

    /// Fused potential+gradient analogue of [`PassEngine::p2p_box`]:
    /// single-RHS calls take [`Kernel::p2p_grad`], batches take
    /// [`Kernel::p2p_grad_many`] (same bitwise-per-RHS contract).
    fn p2p_grad_box<S: SourceProvider>(
        &self,
        src: &S,
        a: u32,
        targets: &[Point3],
        outs: &mut [&mut [f64]],
        gouts: &mut [&mut [f64]],
    ) {
        if outs.len() == 1 {
            let (pts, d) = src.sources(a, 0);
            self.kernel.p2p_grad(targets, pts, d, outs[0], gouts[0]);
        } else {
            let (pts, _) = src.sources(a, 0);
            let dens: Vec<&[f64]> = (0..outs.len()).map(|q| src.sources(a, q).1).collect();
            self.kernel.p2p_grad_many(targets, pts, &dens, outs, gouts);
        }
    }

    /// Upward pass: S2M at active leaves, M2M at active internal boxes,
    /// bottom-up, ending with the check → equivalent inversion. M2M
    /// translations and the inversions run as per-level multi-RHS GEMMs
    /// (a batch of `k` charge vectors widens each column block `k`-fold).
    /// Writes `store.up` blocks of active boxes; returns the flop count.
    pub fn upward<S: SourceProvider>(
        &self,
        src: &S,
        store: &mut ExpansionStore,
        ws: &mut EngineWorkspace,
    ) -> u64 {
        let depth = self.tree.depth();
        if depth < FIRST_FMM_LEVEL {
            return 0;
        }
        let (ns, es, cs) = self.dims();
        let nrhs = src.nrhs();
        assert_eq!(store.nrhs(), nrhs, "store shaped for the batch width");
        let csb = cs * nrhs;
        let kf = self.kernel.flops_per_eval();
        let threads = self.dispatch.threads();
        let mut flops = 0u64;
        for level in (FIRST_FMM_LEVEL..=depth).rev() {
            let act = &self.active.levels[level as usize];
            let nb = act.len();
            if nb == 0 {
                continue;
            }
            let lops = self.pre.ops.at(level);
            // S2M: leaf sources → upward check potentials, one batch block
            // (`nrhs` rows) per active box (internal boxes stay zero for
            // M2M below). The upward surface is built once per box and
            // shared by the whole batch.
            ws.rows.clear();
            ws.rows.resize(nb * csb, 0.0);
            par_chunks_mut_with(threads, &mut ws.rows, csb, |i, chk| {
                let ni = act[i];
                let node = &self.tree.nodes[ni as usize];
                if node.is_leaf() {
                    let c = self.tree.domain.box_center(&node.key);
                    let uc = surface_points(self.order, RAD_OUTER, c, lops.box_half);
                    let mut outs: Vec<&mut [f64]> = chk.chunks_mut(cs).collect();
                    self.p2p_box(src, ni, &uc, &mut outs);
                }
            });
            for &ni in act {
                if self.tree.nodes[ni as usize].is_leaf() {
                    flops += (src.sources(ni, 0).0.len() * ns * nrhs) as u64 * kf;
                }
            }
            // M2M: one multi-RHS GEMM per child octant over all active
            // (parent, child) pairs of this level; the sequential
            // octant-order scatter-add keeps parent sums deterministic.
            for oct in 0..8 {
                ws.pairs.clear();
                for (i, &ni) in act.iter().enumerate() {
                    let ci = self.tree.nodes[ni as usize].children[oct];
                    if ci != NO_NODE && self.active.mask[ci as usize] {
                        ws.pairs.push((i as u32, ci));
                    }
                }
                let nbo = ws.pairs.len();
                if nbo == 0 {
                    continue;
                }
                let ncols = nbo * nrhs;
                ws.xin.clear();
                ws.xin.resize(es * ncols, 0.0);
                for (j, &(_, ci)) in ws.pairs.iter().enumerate() {
                    for q in 0..nrhs {
                        let child = store.up_rhs(ci, q);
                        for r in 0..es {
                            ws.xin[r * ncols + j * nrhs + q] = child[r];
                        }
                    }
                }
                ws.yout.clear();
                ws.yout.resize(cs * ncols, 0.0);
                self.apply_op_cols(&lops.ue2uc[oct], &ws.xin, &mut ws.yout, ncols);
                for (j, &(i, _)) in ws.pairs.iter().enumerate() {
                    let blk = &mut ws.rows[i as usize * csb..(i as usize + 1) * csb];
                    for q in 0..nrhs {
                        for r in 0..cs {
                            blk[q * cs + r] += ws.yout[r * ncols + j * nrhs + q];
                        }
                    }
                }
                flops += ncols as u64 * 2 * (cs * es) as u64;
            }
            // Level-wide check → equivalent inversion, one GEMM.
            let ncols = nb * nrhs;
            ws.xin.clear();
            ws.xin.resize(cs * ncols, 0.0);
            for j in 0..nb {
                for q in 0..nrhs {
                    for r in 0..cs {
                        ws.xin[r * ncols + j * nrhs + q] = ws.rows[j * csb + q * cs + r];
                    }
                }
            }
            ws.yout.clear();
            ws.yout.resize(es * ncols, 0.0);
            self.apply_op_cols(&lops.uc2ue, &ws.xin, &mut ws.yout, ncols);
            for (j, &ni) in act.iter().enumerate() {
                let slot = store.up_mut(ni);
                for q in 0..nrhs {
                    for r in 0..es {
                        slot[q * es + r] = ws.yout[r * ncols + j * nrhs + q];
                    }
                }
            }
            flops += ncols as u64 * 2 * (cs * es) as u64;
        }
        flops
    }

    /// Apply operator `op` (`m × k`) to `ncols` column vectors packed
    /// column-major in `xin` (`k × ncols`), writing `yout = op · xin`
    /// (`m × ncols`). Pool dispatch row-blocks the output; per-element
    /// results are identical for any blocking, so serial and pool agree
    /// bitwise.
    fn apply_op_cols(&self, op: &Mat, xin: &[f64], yout: &mut [f64], ncols: usize) {
        let (m, k) = (op.rows(), op.cols());
        debug_assert_eq!(xin.len(), k * ncols);
        debug_assert_eq!(yout.len(), m * ncols);
        let threads = self.dispatch.threads();
        if threads <= 1 || m * ncols < 4096 {
            gemm_slices(1.0, op.as_slice(), xin, 0.0, yout, m, k, ncols);
        } else {
            let rows_per = m.div_ceil(threads);
            par_chunks_mut_with(threads, yout, rows_per * ncols, |blk, y| {
                let r0 = blk * rows_per;
                let rows = y.len() / ncols;
                gemm_slices(
                    1.0,
                    &op.as_slice()[r0 * k..(r0 + rows) * k],
                    xin,
                    0.0,
                    y,
                    rows,
                    k,
                    ncols,
                );
            });
        }
    }

    /// M2L over one level: active targets accumulate the check-potential
    /// contributions of their V-list sources from `store.up`, into
    /// `store.check`. Returns the flop count.
    pub fn m2l_level(
        &self,
        level: u8,
        store: &mut ExpansionStore,
        ws: &mut EngineWorkspace,
    ) -> u64 {
        self.m2l_level_where(level, store, ws, &|_| true)
    }

    /// M2L over the subset of a level's active targets selected by
    /// `pred` (by node index). Each target's accumulation is independent
    /// of every other's, so running a level as two complementary subsets
    /// produces bitwise the results of one full pass — this is what lets
    /// the distributed driver evaluate interior targets while the ghost
    /// equivalents their boundary peers need are still in flight. Only
    /// the selected targets' V-list sources are transformed, so a
    /// no-match call costs one scan of the level.
    pub fn m2l_level_where(
        &self,
        level: u8,
        store: &mut ExpansionStore,
        ws: &mut EngineWorkspace,
        pred: &(dyn Fn(usize) -> bool + Sync),
    ) -> u64 {
        if self.tree.depth() < FIRST_FMM_LEVEL {
            return 0;
        }
        match self.m2l_mode_at(level) {
            M2lMode::Fft => self.m2l_fft_level(level, store, ws, pred),
            M2lMode::Direct => self.m2l_direct_level(level, store, pred),
            M2lMode::Svd => self.m2l_svd_level(level, store, ws, pred),
            M2lMode::Auto => {
                unreachable!("drivers resolve Auto to a concrete mode before engine construction")
            }
        }
    }

    /// FFT M2L: forward-transform every V-list source of the level's
    /// selected targets into one contiguous spectra slab (one slab per
    /// `(source, RHS)`), then Hadamard-accumulate and inverse-transform
    /// per selected target. The RHS loop sits **innermost** per
    /// `(source, direction)` pair, so one direction tensor load serves
    /// the whole batch.
    fn m2l_fft_level(
        &self,
        level: u8,
        store: &mut ExpansionStore,
        ws: &mut EngineWorkspace,
        pred: &(dyn Fn(usize) -> bool + Sync),
    ) -> u64 {
        let fft = self.pre.m2l_fft.as_ref().expect("FFT tables present in Fft mode");
        let (_, es, cs) = self.dims();
        let nrhs = store.nrhs();
        let (esb, csb) = (es * nrhs, cs * nrhs);
        let g = fft.grid_len();
        let (sd, td) = (self.kernel.src_dim(), self.kernel.trg_dim());
        let sg = sd * g;
        let tg = td * g;
        let (ls, le) = self.level_range(level);
        let mask = &self.active.mask;
        ws.needed.clear();
        for &ni in &self.active.levels[level as usize] {
            if pred(ni as usize) {
                ws.needed.extend_from_slice(&self.lists.v[ni as usize]);
            }
        }
        ws.needed.sort_unstable();
        ws.needed.dedup();
        if ws.needed.is_empty() {
            return 0;
        }
        let EngineWorkspace { needed, spectra, acc, .. } = ws;
        let threads = self.dispatch.threads();
        // No zero-fill on reuse: `transform_source` overwrites every slot.
        let nslabs = needed.len() * nrhs;
        if spectra.len() < nslabs * sg {
            spectra.resize(nslabs * sg, C64::ZERO);
        } else {
            spectra.truncate(nslabs * sg);
        }
        let up: &[f64] = &store.up;
        par_chunks_mut_with(threads, spectra, sg, |idx, buf| {
            let a = needed[idx / nrhs] as usize;
            let q = idx % nrhs;
            fft.transform_source(&up[a * esb + q * es..a * esb + (q + 1) * es], buf);
        });
        let needed: &[u32] = needed;
        let spectra: &[C64] = spectra;
        let accumulate = |grid: &mut [C64], i: usize, slot: &mut [f64]| {
            let ni = ls + i;
            if !mask[ni] || !pred(ni) {
                return;
            }
            let vlist = &self.lists.v[ni];
            if vlist.is_empty() {
                return;
            }
            grid.fill(C64::ZERO);
            let bkey = self.tree.nodes[ni].key;
            for &a in vlist {
                let akey = self.tree.nodes[a as usize].key;
                let dir = bkey.offset_to(&akey);
                let si = needed.binary_search(&a).expect("V source in needed set");
                for q in 0..nrhs {
                    let sp = (si * nrhs + q) * sg;
                    fft.accumulate(level, dir, &spectra[sp..sp + sg], &mut grid[q * tg..(q + 1) * tg]);
                }
            }
            for (q, sl) in slot.chunks_mut(cs).enumerate() {
                fft.extract_check(level, &mut grid[q * tg..(q + 1) * tg], sl);
            }
        };
        let check = &mut store.check[ls * csb..le * csb];
        if threads <= 1 {
            acc.clear();
            acc.resize(tg * nrhs, C64::ZERO);
            for (i, slot) in check.chunks_mut(csb).enumerate() {
                accumulate(acc, i, slot);
            }
        } else {
            par_chunks_mut_init_with(
                threads,
                check,
                csb,
                || vec![C64::ZERO; tg * nrhs],
                |grid, i, slot| accumulate(grid, i, slot),
            );
        }
        // Exact accounting, matching the per-call counters of
        // `transform_source`/`accumulate`/`extract_check`, `nrhs`-fold.
        let mut flops = nslabs as u64 * fft.fft_flops(sd);
        for &ni in &self.active.levels[level as usize] {
            if !pred(ni as usize) {
                continue;
            }
            let nv = self.lists.v[ni as usize].len() as u64;
            if nv > 0 {
                flops += nrhs as u64
                    * (nv * (td * sd * fft.slab_len() * 8) as u64 + fft.fft_flops(td));
            }
        }
        flops
    }

    /// Dense M2L over one level (ablation baseline). The RHS loop is
    /// innermost per `(source, direction)`, reusing the cached dense
    /// operator across the batch.
    fn m2l_direct_level(
        &self,
        level: u8,
        store: &mut ExpansionStore,
        pred: &(dyn Fn(usize) -> bool + Sync),
    ) -> u64 {
        let direct =
            self.pre.m2l_direct.as_ref().expect("direct tables present in Direct mode");
        let (_, es, cs) = self.dims();
        let nrhs = store.nrhs();
        let (esb, csb) = (es * nrhs, cs * nrhs);
        let (ls, _) = self.level_range(level);
        let mask = &self.active.mask;
        let threads = self.dispatch.threads();
        let flops = AtomicU64::new(0);
        let (ls_cs, le_cs) = {
            let (s, e) = self.level_range(level);
            (s * csb, e * csb)
        };
        let ExpansionStore { up, check, .. } = store;
        let up: &[f64] = up;
        par_chunks_mut_with(threads, &mut check[ls_cs..le_cs], csb, |i, slot| {
            let ni = ls + i;
            if !mask[ni] || !pred(ni) {
                return;
            }
            let bkey = self.tree.nodes[ni].key;
            let mut f = 0u64;
            for &a in &self.lists.v[ni] {
                let akey = self.tree.nodes[a as usize].key;
                let dir = bkey.offset_to(&akey);
                for q in 0..nrhs {
                    let eq = a as usize * esb + q * es;
                    f += direct.apply(
                        level,
                        dir,
                        &up[eq..eq + es],
                        &mut slot[q * cs..(q + 1) * cs],
                    );
                }
            }
            flops.fetch_add(f, Ordering::Relaxed);
        });
        flops.into_inner()
    }

    /// SVD-compressed M2L over one level, in three BLAS-3 stages over the
    /// level-contiguous store:
    ///
    /// 1. **project** — gather the level's needed upward equivalents into
    ///    one column-major block and compress through the shared source
    ///    basis (`Y = Vᵀ·X`, one wide GEMM);
    /// 2. **cores** — for each of the 316 directions, one small
    ///    `r_t × r_s` GEMM over every `(target, source)` pair sharing
    ///    that direction, scatter-added into per-target compressed check
    ///    rows;
    /// 3. **expand** — per selected target, expand through the shared
    ///    target basis (`check += scale · U · w`).
    ///
    /// Determinism: a target box has at most **one** V-list source at any
    /// given relative direction, so accumulating directions in the
    /// canonical sorted order of [`crate::m2l::M2lSvd::dirs`] gives every
    /// target one well-defined addition sequence — independent of how
    /// targets are blocked across threads. Together with the column
    /// independence of [`gemm_slices`], serial and pool execution are
    /// bit-identical, and a level split into complementary `pred` subsets
    /// reproduces the unsplit results exactly.
    fn m2l_svd_level(
        &self,
        level: u8,
        store: &mut ExpansionStore,
        ws: &mut EngineWorkspace,
        pred: &(dyn Fn(usize) -> bool + Sync),
    ) -> u64 {
        let svd = self.pre.m2l_svd.as_ref().expect("SVD tables present in Svd mode");
        let (_, es, cs) = self.dims();
        let nrhs = store.nrhs();
        let csb = cs * nrhs;
        let (ls, le) = self.level_range(level);
        let (slot, scale) = svd.slot(level);
        let (rt, rs) = (slot.rank_trg(), slot.rank_src());
        let EngineWorkspace { rows, xin, yout, needed, .. } = ws;
        // Selected targets (active ∧ pred ∧ nonempty V list) and the
        // sorted union of their V sources.
        needed.clear();
        let mut sel: Vec<u32> = Vec::new();
        for &ni in &self.active.levels[level as usize] {
            if pred(ni as usize) && !self.lists.v[ni as usize].is_empty() {
                sel.push(ni);
                needed.extend_from_slice(&self.lists.v[ni as usize]);
            }
        }
        needed.sort_unstable();
        needed.dedup();
        if sel.is_empty() {
            return 0;
        }
        // Stage 1: project. Columns are (source, RHS) pairs; each output
        // column depends on its own input column only, so the projection
        // of a source is identical whichever pred subset requests it.
        let ncols = needed.len() * nrhs;
        xin.clear();
        xin.resize(es * ncols, 0.0);
        for (j, &a) in needed.iter().enumerate() {
            let blk = store.up(a);
            for q in 0..nrhs {
                for r in 0..es {
                    xin[r * ncols + j * nrhs + q] = blk[q * es + r];
                }
            }
        }
        yout.clear();
        yout.resize(rs * ncols, 0.0);
        self.apply_op_cols(&slot.vt, xin, yout, ncols);
        // Stage 2: per-direction cores. Each target's V pairs as
        // (canonical direction index, source column), sorted by direction.
        let needed: &[u32] = needed;
        let pairs: Vec<Vec<(u32, u32)>> = sel
            .iter()
            .map(|&ni| {
                let bkey = self.tree.nodes[ni as usize].key;
                let mut v: Vec<(u32, u32)> = self.lists.v[ni as usize]
                    .iter()
                    .map(|&a| {
                        let akey = self.tree.nodes[a as usize].key;
                        let di = svd
                            .dir_index(bkey.offset_to(&akey))
                            .expect("V offset is one of the 316 directions");
                        let si =
                            needed.binary_search(&a).expect("V source in needed set") as u32;
                        (di, si)
                    })
                    .collect();
                v.sort_unstable();
                v
            })
            .collect();
        let np_total: u64 = pairs.iter().map(|p| p.len() as u64).sum();
        let rtb = rt * nrhs;
        let nsel = sel.len();
        rows.clear();
        rows.resize(nsel * rtb, 0.0);
        let threads = self.dispatch.threads();
        let tb = nsel.div_ceil(threads.max(1));
        let ndirs = svd.dirs().len();
        let y: &[f64] = yout;
        let cores = &slot.cores;
        par_chunks_mut_with(threads, rows, tb * rtb, |blk, wchunk| {
            let t0 = blk * tb;
            let nt = wchunk.len() / rtb;
            let mut groups: Vec<Vec<(u32, u32)>> = vec![Vec::new(); ndirs];
            for t in 0..nt {
                for &(di, si) in &pairs[t0 + t] {
                    groups[di as usize].push((t as u32, si));
                }
            }
            let mut yd: Vec<f64> = Vec::new();
            let mut zd: Vec<f64> = Vec::new();
            for (di, grp) in groups.iter().enumerate() {
                if grp.is_empty() {
                    continue;
                }
                let npn = grp.len() * nrhs;
                yd.clear();
                yd.resize(rs * npn, 0.0);
                for (j, &(_, si)) in grp.iter().enumerate() {
                    let si = si as usize;
                    for r in 0..rs {
                        yd[r * npn + j * nrhs..r * npn + (j + 1) * nrhs].copy_from_slice(
                            &y[r * ncols + si * nrhs..r * ncols + (si + 1) * nrhs],
                        );
                    }
                }
                zd.clear();
                zd.resize(rt * npn, 0.0);
                gemm_slices(1.0, cores[di].as_slice(), &yd, 0.0, &mut zd, rt, rs, npn);
                for (j, &(t, _)) in grp.iter().enumerate() {
                    let w = &mut wchunk[t as usize * rtb..(t as usize + 1) * rtb];
                    for r in 0..rt {
                        for q in 0..nrhs {
                            w[r * nrhs + q] += zd[r * npn + j * nrhs + q];
                        }
                    }
                }
            }
        });
        // Stage 3: expand per selected target into its check block.
        let mut sel_of: Vec<Option<u32>> = vec![None; le - ls];
        for (t, &ni) in sel.iter().enumerate() {
            sel_of[ni as usize - ls] = Some(t as u32);
        }
        let w: &[f64] = rows;
        let u = &slot.u;
        let expand = |tmp: &mut Vec<f64>, i: usize, chk: &mut [f64]| {
            let Some(t) = sel_of[i] else { return };
            let wt = &w[t as usize * rtb..(t as usize + 1) * rtb];
            tmp.clear();
            tmp.resize(cs * nrhs, 0.0);
            gemm_slices(1.0, u.as_slice(), wt, 0.0, tmp, cs, rt, nrhs);
            for q in 0..nrhs {
                for r in 0..cs {
                    chk[q * cs + r] += scale * tmp[r * nrhs + q];
                }
            }
        };
        let check = &mut store.check[ls * csb..le * csb];
        if threads <= 1 {
            let mut tmp = Vec::new();
            for (i, chk) in check.chunks_mut(csb).enumerate() {
                expand(&mut tmp, i, chk);
            }
        } else {
            par_chunks_mut_init_with(threads, check, csb, Vec::new, |tmp, i, chk| {
                expand(tmp, i, chk)
            });
        }
        // Exact accounting: one basis projection per needed (source, RHS)
        // column, one core column per (pair, RHS), one expansion per
        // selected (target, RHS).
        (2 * rs * es) as u64 * ncols as u64
            + (2 * rt * rs * nrhs) as u64 * np_total
            + (2 * cs * rt) as u64 * (nsel * nrhs) as u64
    }

    /// X-list pass: sources of coarser leaves onto the downward check
    /// surfaces of active boxes (`store.check`). Returns the flop count.
    pub fn x_pass<S: SourceProvider>(&self, src: &S, store: &mut ExpansionStore) -> u64 {
        let depth = self.tree.depth();
        if depth < FIRST_FMM_LEVEL {
            return 0;
        }
        let (ns, _, cs) = self.dims();
        let nrhs = src.nrhs();
        assert_eq!(store.nrhs(), nrhs, "store shaped for the batch width");
        let csb = cs * nrhs;
        let kf = self.kernel.flops_per_eval();
        let threads = self.dispatch.threads();
        let mask = &self.active.mask;
        let mut flops = 0u64;
        for level in FIRST_FMM_LEVEL..=depth {
            let (ls, le) = self.level_range(level);
            let half = self.pre.ops.at(level).box_half;
            par_chunks_mut_with(threads, &mut store.check[ls * csb..le * csb], csb, |i, slot| {
                let ni = ls + i;
                if !mask[ni] || self.lists.x[ni].is_empty() {
                    return;
                }
                let node = &self.tree.nodes[ni];
                let c = self.tree.domain.box_center(&node.key);
                let dc = surface_points(self.order, RAD_INNER, c, half);
                let mut outs: Vec<&mut [f64]> = slot.chunks_mut(cs).collect();
                for &a in &self.lists.x[ni] {
                    self.p2p_box(src, a, &dc, &mut outs);
                }
            });
            for &ni in &self.active.levels[level as usize] {
                for &a in &self.lists.x[ni as usize] {
                    flops += (src.sources(a, 0).0.len() * ns * nrhs) as u64 * kf;
                }
            }
        }
        flops
    }

    /// L2L pass, top-down: parent downward equivalents onto child check
    /// surfaces (batched per octant), then the level-wide check →
    /// equivalent inversion into `store.down`. Returns the flop count.
    pub fn l2l(&self, store: &mut ExpansionStore, ws: &mut EngineWorkspace) -> u64 {
        let depth = self.tree.depth();
        if depth < FIRST_FMM_LEVEL {
            return 0;
        }
        let (_, es, cs) = self.dims();
        let nrhs = store.nrhs();
        let csb = cs * nrhs;
        let mut flops = 0u64;
        for level in FIRST_FMM_LEVEL..=depth {
            let act = &self.active.levels[level as usize];
            let nb = act.len();
            if nb == 0 {
                continue;
            }
            let lops = self.pre.ops.at(level);
            if level > FIRST_FMM_LEVEL {
                // L2L translation, batched per octant. (An active box's
                // parent is active too: it contains the box's points.)
                for oct in 0..8 {
                    ws.pairs.clear();
                    for (i, &ni) in act.iter().enumerate() {
                        let node = &self.tree.nodes[ni as usize];
                        if node.key.octant() as usize == oct {
                            ws.pairs.push((i as u32, node.parent));
                        }
                    }
                    let nbo = ws.pairs.len();
                    if nbo == 0 {
                        continue;
                    }
                    let ncols = nbo * nrhs;
                    ws.xin.clear();
                    ws.xin.resize(es * ncols, 0.0);
                    for (j, &(_, pi)) in ws.pairs.iter().enumerate() {
                        for q in 0..nrhs {
                            let parent = store.down_rhs(pi, q);
                            for r in 0..es {
                                ws.xin[r * ncols + j * nrhs + q] = parent[r];
                            }
                        }
                    }
                    ws.yout.clear();
                    ws.yout.resize(cs * ncols, 0.0);
                    self.apply_op_cols(&lops.de2dc[oct], &ws.xin, &mut ws.yout, ncols);
                    for (j, &(i, _)) in ws.pairs.iter().enumerate() {
                        let ni = act[i as usize] as usize;
                        let blk = &mut store.check[ni * csb..(ni + 1) * csb];
                        for q in 0..nrhs {
                            for r in 0..cs {
                                blk[q * cs + r] += ws.yout[r * ncols + j * nrhs + q];
                            }
                        }
                    }
                }
                flops += (nb * nrhs) as u64 * 2 * (cs * es) as u64;
            }
            // Check → downward equivalent inversion, one GEMM per level.
            let ncols = nb * nrhs;
            ws.xin.clear();
            ws.xin.resize(cs * ncols, 0.0);
            for (j, &ni) in act.iter().enumerate() {
                let blk = store.check_row(ni);
                for q in 0..nrhs {
                    for r in 0..cs {
                        ws.xin[r * ncols + j * nrhs + q] = blk[q * cs + r];
                    }
                }
            }
            ws.yout.clear();
            ws.yout.resize(es * ncols, 0.0);
            self.apply_op_cols(&lops.dc2de, &ws.xin, &mut ws.yout, ncols);
            for (j, &ni) in act.iter().enumerate() {
                let slot = store.down_mut(ni);
                for q in 0..nrhs {
                    for r in 0..es {
                        slot[q * es + r] = ws.yout[r * ncols + j * nrhs + q];
                    }
                }
            }
            flops += ncols as u64 * 2 * (cs * es) as u64;
        }
        flops
    }

    /// Split each of the `k` potential vectors into disjoint
    /// per-active-leaf `&mut` slices (the active leaves partition the
    /// local target range in point order) and run `f` on every leaf under
    /// the engine's dispatch, handing it the leaf's `k` output rows.
    fn for_each_active_leaf(
        &self,
        pots: &mut [&mut [f64]],
        f: impl Fn(u32, &[Point3], &mut [&mut [f64]]) + Sync,
    ) {
        // Leaves of different levels interleave in BFS id order, so sort
        // by point range before carving the potential vectors into
        // disjoint per-leaf slices.
        let mut order: Vec<u32> = self.active.leaves.to_vec();
        order.sort_unstable_by_key(|&ni| self.tree.nodes[ni as usize].pt_start);
        let carved = self.carve_leaf_slices(pots, self.kernel.trg_dim(), &order);
        let items: Vec<(u32, &[Point3], Vec<&mut [f64]>)> = order
            .iter()
            .zip(carved)
            .map(|(&ni, outs)| {
                let node = &self.tree.nodes[ni as usize];
                (ni, &self.targets[node.pt_start as usize..node.pt_end as usize], outs)
            })
            .collect();
        par_for_each_with(self.dispatch.threads(), items, |_, (ni, trg, mut outs)| {
            f(ni, trg, &mut outs)
        });
    }

    /// As [`PassEngine::for_each_active_leaf`], but carving a second set
    /// of per-RHS gradient vectors (stride `trg_dim·3` per point) in
    /// lockstep with the potentials, for the fused gradient passes.
    fn for_each_active_leaf_grad(
        &self,
        pots: &mut [&mut [f64]],
        grads: &mut [&mut [f64]],
        f: impl Fn(u32, &[Point3], &mut [&mut [f64]], &mut [&mut [f64]]) + Sync,
    ) {
        let td = self.kernel.trg_dim();
        let mut order: Vec<u32> = self.active.leaves.to_vec();
        order.sort_unstable_by_key(|&ni| self.tree.nodes[ni as usize].pt_start);
        let pcarved = self.carve_leaf_slices(pots, td, &order);
        let gcarved = self.carve_leaf_slices(grads, td * 3, &order);
        let items: Vec<(u32, &[Point3], Vec<&mut [f64]>, Vec<&mut [f64]>)> = order
            .iter()
            .zip(pcarved.into_iter().zip(gcarved))
            .map(|(&ni, (outs, gouts))| {
                let node = &self.tree.nodes[ni as usize];
                (ni, &self.targets[node.pt_start as usize..node.pt_end as usize], outs, gouts)
            })
            .collect();
        par_for_each_with(
            self.dispatch.threads(),
            items,
            |_, (ni, trg, mut outs, mut gouts)| f(ni, trg, &mut outs, &mut gouts),
        );
    }

    /// Carve each of the `k` per-RHS vectors in `bufs` into disjoint
    /// per-leaf `&mut` slices following `order` (leaves sorted by
    /// `pt_start`), `dim` components per point. Reborrows (does not take):
    /// the caller's vectors stay intact for the next pass.
    fn carve_leaf_slices<'b>(
        &self,
        bufs: &'b mut [&mut [f64]],
        dim: usize,
        order: &[u32],
    ) -> Vec<Vec<&'b mut [f64]>> {
        let nrhs = bufs.len();
        let mut rests: Vec<&mut [f64]> = bufs.iter_mut().map(|p| &mut **p).collect();
        let mut consumed = 0usize;
        let mut carved: Vec<Vec<&'b mut [f64]>> = Vec::with_capacity(order.len());
        for &ni in order {
            let node = &self.tree.nodes[ni as usize];
            let (s, e) = (node.pt_start as usize, node.pt_end as usize);
            let skip = s * dim - consumed;
            let len = (e - s) * dim;
            let mut outs = Vec::with_capacity(nrhs);
            for rest in rests.iter_mut() {
                let (head, tail) = std::mem::take(rest).split_at_mut(skip + len);
                outs.push(&mut head[skip..]);
                *rest = tail;
            }
            consumed += skip + len;
            carved.push(outs);
        }
        carved
    }

    /// Dense U-list pass onto the local potentials (`k` vectors, one per
    /// RHS). Returns the flop count.
    pub fn u_pass<S: SourceProvider>(&self, src: &S, pots: &mut [&mut [f64]]) -> u64 {
        let nrhs = src.nrhs();
        assert_eq!(pots.len(), nrhs, "one potential vector per RHS");
        let kf = self.kernel.flops_per_eval();
        self.for_each_active_leaf(pots, |ni, trg, outs| {
            for &a in &self.lists.u[ni as usize] {
                self.p2p_box(src, a, trg, outs);
            }
        });
        let mut flops = 0u64;
        for &ni in &self.active.leaves {
            let t = self.tree.nodes[ni as usize].num_points() as u64;
            for &a in &self.lists.u[ni as usize] {
                flops += t * (src.sources(a, 0).0.len() * nrhs) as u64 * kf;
            }
        }
        flops
    }

    /// W-list pass: upward equivalents of finer separated boxes onto the
    /// local potentials. The equivalent surface is built once per
    /// `(leaf, W source)` and shared by the batch. Returns the flop count.
    pub fn w_pass(&self, store: &ExpansionStore, pots: &mut [&mut [f64]]) -> u64 {
        let (ns, _, _) = self.dims();
        let nrhs = store.nrhs();
        assert_eq!(pots.len(), nrhs, "one potential vector per RHS");
        let kf = self.kernel.flops_per_eval();
        self.for_each_active_leaf(pots, |ni, trg, outs| {
            for &a in &self.lists.w[ni as usize] {
                let akey = self.tree.nodes[a as usize].key;
                let ac = self.tree.domain.box_center(&akey);
                let ah = self.tree.domain.box_half(akey.level);
                let ue = surface_points(self.order, RAD_INNER, ac, ah);
                if nrhs == 1 {
                    self.kernel.p2p(trg, &ue, store.up(a), outs[0]);
                } else {
                    let dens: Vec<&[f64]> = (0..nrhs).map(|q| store.up_rhs(a, q)).collect();
                    self.kernel.p2p_many(trg, &ue, &dens, outs);
                }
            }
        });
        self.active
            .leaves
            .iter()
            .map(|&ni| {
                (self.tree.nodes[ni as usize].num_points()
                    * self.lists.w[ni as usize].len()
                    * ns
                    * nrhs) as u64
                    * kf
            })
            .sum()
    }

    /// L2T pass: downward equivalent densities at the local targets.
    /// Returns the flop count.
    pub fn l2t(&self, store: &ExpansionStore, pots: &mut [&mut [f64]]) -> u64 {
        if self.tree.depth() < FIRST_FMM_LEVEL {
            return 0;
        }
        let (ns, _, _) = self.dims();
        let nrhs = store.nrhs();
        assert_eq!(pots.len(), nrhs, "one potential vector per RHS");
        let kf = self.kernel.flops_per_eval();
        self.for_each_active_leaf(pots, |ni, trg, outs| {
            let node = &self.tree.nodes[ni as usize];
            if node.key.level < FIRST_FMM_LEVEL {
                return;
            }
            let c = self.tree.domain.box_center(&node.key);
            let half = self.tree.domain.box_half(node.key.level);
            let de = surface_points(self.order, RAD_OUTER, c, half);
            if nrhs == 1 {
                self.kernel.p2p(trg, &de, store.down(ni), outs[0]);
            } else {
                let dens: Vec<&[f64]> = (0..nrhs).map(|q| store.down_rhs(ni, q)).collect();
                self.kernel.p2p_many(trg, &de, &dens, outs);
            }
        });
        self.active
            .leaves
            .iter()
            .filter(|&&ni| self.tree.nodes[ni as usize].key.level >= FIRST_FMM_LEVEL)
            .map(|&ni| {
                (self.tree.nodes[ni as usize].num_points() * ns * nrhs) as u64 * kf
            })
            .sum()
    }

    /// Fused potential+gradient U-list pass
    /// ([`crate::evaluator::OutputSpec::PotentialAndGradient`]): same
    /// source traversal as [`PassEngine::u_pass`], dispatching the fused
    /// [`Kernel::p2p_grad`] / [`Kernel::p2p_grad_many`]. The near field is
    /// the only place real sources are differentiated; everything else
    /// reads `∇G` off equivalent densities. Returns the flop count.
    pub fn u_pass_grad<S: SourceProvider>(
        &self,
        src: &S,
        pots: &mut [&mut [f64]],
        grads: &mut [&mut [f64]],
    ) -> u64 {
        let nrhs = src.nrhs();
        assert_eq!(pots.len(), nrhs, "one potential vector per RHS");
        assert_eq!(grads.len(), nrhs, "one gradient vector per RHS");
        let kf = self.kernel.flops_per_grad_eval();
        self.for_each_active_leaf_grad(pots, grads, |ni, trg, outs, gouts| {
            for &a in &self.lists.u[ni as usize] {
                self.p2p_grad_box(src, a, trg, outs, gouts);
            }
        });
        let mut flops = 0u64;
        for &ni in &self.active.leaves {
            let t = self.tree.nodes[ni as usize].num_points() as u64;
            for &a in &self.lists.u[ni as usize] {
                flops += t * (src.sources(a, 0).0.len() * nrhs) as u64 * kf;
            }
        }
        flops
    }

    /// Fused potential+gradient W-list pass: `∇G` evaluated from the W
    /// sources' **upward equivalent densities** — the same densities the
    /// potential read, no new operators. Returns the flop count.
    pub fn w_pass_grad(
        &self,
        store: &ExpansionStore,
        pots: &mut [&mut [f64]],
        grads: &mut [&mut [f64]],
    ) -> u64 {
        let (ns, _, _) = self.dims();
        let nrhs = store.nrhs();
        assert_eq!(pots.len(), nrhs, "one potential vector per RHS");
        assert_eq!(grads.len(), nrhs, "one gradient vector per RHS");
        let kf = self.kernel.flops_per_grad_eval();
        self.for_each_active_leaf_grad(pots, grads, |ni, trg, outs, gouts| {
            for &a in &self.lists.w[ni as usize] {
                let akey = self.tree.nodes[a as usize].key;
                let ac = self.tree.domain.box_center(&akey);
                let ah = self.tree.domain.box_half(akey.level);
                let ue = surface_points(self.order, RAD_INNER, ac, ah);
                if nrhs == 1 {
                    self.kernel.p2p_grad(trg, &ue, store.up(a), outs[0], gouts[0]);
                } else {
                    let dens: Vec<&[f64]> = (0..nrhs).map(|q| store.up_rhs(a, q)).collect();
                    self.kernel.p2p_grad_many(trg, &ue, &dens, outs, gouts);
                }
            }
        });
        self.active
            .leaves
            .iter()
            .map(|&ni| {
                (self.tree.nodes[ni as usize].num_points()
                    * self.lists.w[ni as usize].len()
                    * ns
                    * nrhs) as u64
                    * kf
            })
            .sum()
    }

    /// Fused potential+gradient L2T pass: `∇G` evaluated from the leaf's
    /// **downward equivalent densities** at the `RAD_OUTER` surface —
    /// the entire V+X far field arrives differentiated through the local
    /// expansion, with no gradient-specific translation operators.
    /// Returns the flop count.
    pub fn l2t_grad(
        &self,
        store: &ExpansionStore,
        pots: &mut [&mut [f64]],
        grads: &mut [&mut [f64]],
    ) -> u64 {
        if self.tree.depth() < FIRST_FMM_LEVEL {
            return 0;
        }
        let (ns, _, _) = self.dims();
        let nrhs = store.nrhs();
        assert_eq!(pots.len(), nrhs, "one potential vector per RHS");
        assert_eq!(grads.len(), nrhs, "one gradient vector per RHS");
        let kf = self.kernel.flops_per_grad_eval();
        self.for_each_active_leaf_grad(pots, grads, |ni, trg, outs, gouts| {
            let node = &self.tree.nodes[ni as usize];
            if node.key.level < FIRST_FMM_LEVEL {
                return;
            }
            let c = self.tree.domain.box_center(&node.key);
            let half = self.tree.domain.box_half(node.key.level);
            let de = surface_points(self.order, RAD_OUTER, c, half);
            if nrhs == 1 {
                self.kernel.p2p_grad(trg, &de, store.down(ni), outs[0], gouts[0]);
            } else {
                let dens: Vec<&[f64]> = (0..nrhs).map(|q| store.down_rhs(ni, q)).collect();
                self.kernel.p2p_grad_many(trg, &de, &dens, outs, gouts);
            }
        });
        self.active
            .leaves
            .iter()
            .filter(|&&ni| self.tree.nodes[ni as usize].key.level >= FIRST_FMM_LEVEL)
            .map(|&ni| {
                (self.tree.nodes[ni as usize].num_points() * ns * nrhs) as u64 * kf
            })
            .sum()
    }
}
