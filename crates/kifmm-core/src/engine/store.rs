//! Flat SoA expansion storage and reusable pass scratch.
//!
//! Because the octree is built breadth-first, node ids of one level occupy
//! a contiguous range, so the flat node-major slabs below are per-level
//! contiguous: a pass over level `l` works on one dense sub-slice of each
//! array. All three evaluation drivers (serial, shared-memory, distributed)
//! hand the same [`ExpansionStore`] to the pass engine; the distributed
//! driver additionally overwrites `up` rows with globally summed
//! equivalents between the engine phases.

use kifmm_fft::C64;

/// Expansion state of one evaluation: upward equivalents, downward check
/// potentials and downward equivalents, node-major (`row(ni)` = node `ni`).
pub struct ExpansionStore {
    es: usize,
    cs: usize,
    /// Upward equivalent densities, `[num_nodes × es]`.
    pub up: Vec<f64>,
    /// Downward equivalent densities, `[num_nodes × es]`.
    pub down: Vec<f64>,
    /// Downward check potentials, `[num_nodes × cs]`.
    pub check: Vec<f64>,
}

impl ExpansionStore {
    /// Zeroed storage for `num_nodes` boxes with equivalent rows of `es`
    /// and check rows of `cs` values.
    pub fn new(num_nodes: usize, es: usize, cs: usize) -> Self {
        ExpansionStore {
            es,
            cs,
            up: vec![0.0; num_nodes * es],
            down: vec![0.0; num_nodes * es],
            check: vec![0.0; num_nodes * cs],
        }
    }

    /// Zero every slab for a fresh evaluation (capacity is retained, so a
    /// pooled store allocates nothing in steady state).
    pub fn reset(&mut self) {
        self.up.fill(0.0);
        self.down.fill(0.0);
        self.check.fill(0.0);
    }

    /// Equivalent row length (`n_s · SRC_DIM`).
    pub fn equiv_len(&self) -> usize {
        self.es
    }

    /// Check row length (`n_s · TRG_DIM`).
    pub fn check_len(&self) -> usize {
        self.cs
    }

    /// Upward equivalent density of box `ni`.
    pub fn up(&self, ni: u32) -> &[f64] {
        &self.up[ni as usize * self.es..(ni as usize + 1) * self.es]
    }

    /// Mutable upward equivalent density of box `ni`.
    pub fn up_mut(&mut self, ni: u32) -> &mut [f64] {
        &mut self.up[ni as usize * self.es..(ni as usize + 1) * self.es]
    }

    /// Overwrite box `ni`'s upward equivalent (the distributed driver
    /// installs globally summed equivalents this way).
    pub fn set_up(&mut self, ni: u32, values: &[f64]) {
        self.up_mut(ni).copy_from_slice(values);
    }

    /// Downward equivalent density of box `ni`.
    pub fn down(&self, ni: u32) -> &[f64] {
        &self.down[ni as usize * self.es..(ni as usize + 1) * self.es]
    }

    /// Mutable downward equivalent density of box `ni`.
    pub fn down_mut(&mut self, ni: u32) -> &mut [f64] {
        &mut self.down[ni as usize * self.es..(ni as usize + 1) * self.es]
    }

    /// Downward check potential of box `ni`.
    pub fn check_row(&self, ni: u32) -> &[f64] {
        &self.check[ni as usize * self.cs..(ni as usize + 1) * self.cs]
    }
}

/// Reusable scratch for the batched passes. Every buffer is grown with
/// `clear` + `resize`, so after the first evaluation at a given problem
/// size the engine performs no steady-state allocations (the pool-dispatch
/// M2L additionally keeps one accumulator grid per worker, as before).
#[derive(Default)]
pub struct EngineWorkspace {
    /// Node-major check-potential batch rows for one level.
    pub rows: Vec<f64>,
    /// Column-major multi-RHS input block (`k × ncols`).
    pub xin: Vec<f64>,
    /// Column-major multi-RHS output block (`m × ncols`).
    pub yout: Vec<f64>,
    /// `(batch row, related node)` pairs of one octant batch.
    pub pairs: Vec<(u32, u32)>,
    /// Sorted, deduplicated V-list source boxes of one level.
    pub needed: Vec<u32>,
    /// Forward-transformed source spectra, one `SRC_DIM·(2p)³` slab per
    /// entry of `needed`.
    pub spectra: Vec<C64>,
    /// Hadamard accumulator grid (serial dispatch).
    pub acc: Vec<C64>,
}
