//! Flat SoA expansion storage and reusable pass scratch.
//!
//! Because the octree is built breadth-first, node ids of one level occupy
//! a contiguous range, so the flat node-major slabs below are per-level
//! contiguous: a pass over level `l` works on one dense sub-slice of each
//! array. All three evaluation drivers (serial, shared-memory, distributed)
//! hand the same [`ExpansionStore`] to the pass engine; the distributed
//! driver additionally overwrites `up` rows with globally summed
//! equivalents between the engine phases.
//!
//! ## Multi-RHS layout
//!
//! A store sized for `nrhs = k` charge vectors keeps **one block of `k`
//! consecutive rows per node**: `up[ni·es·k + q·es + r]` is row `r` of
//! RHS `q` for node `ni` (and likewise `down`/`check` with `cs`). The
//! node-major ordering is unchanged, so per-level contiguity — the
//! property the batched per-level passes rely on — holds for any `k`,
//! and `k = 1` reduces to the original single-RHS layout exactly.

use kifmm_fft::C64;

/// Expansion state of one evaluation: upward equivalents, downward check
/// potentials and downward equivalents, node-major (`block(ni)` = the
/// `nrhs` rows of node `ni`).
pub struct ExpansionStore {
    es: usize,
    cs: usize,
    nrhs: usize,
    /// Upward equivalent densities, `[num_nodes × nrhs × es]`.
    pub up: Vec<f64>,
    /// Downward equivalent densities, `[num_nodes × nrhs × es]`.
    pub down: Vec<f64>,
    /// Downward check potentials, `[num_nodes × nrhs × cs]`.
    pub check: Vec<f64>,
}

impl ExpansionStore {
    /// Zeroed single-RHS storage for `num_nodes` boxes with equivalent
    /// rows of `es` and check rows of `cs` values.
    pub fn new(num_nodes: usize, es: usize, cs: usize) -> Self {
        Self::with_nrhs(num_nodes, es, cs, 1)
    }

    /// Zeroed storage for `nrhs` simultaneous charge vectors.
    pub fn with_nrhs(num_nodes: usize, es: usize, cs: usize, nrhs: usize) -> Self {
        assert!(nrhs >= 1, "at least one right-hand side");
        ExpansionStore {
            es,
            cs,
            nrhs,
            up: vec![0.0; num_nodes * es * nrhs],
            down: vec![0.0; num_nodes * es * nrhs],
            check: vec![0.0; num_nodes * cs * nrhs],
        }
    }

    /// Reshape (if needed) for the given geometry and RHS count, then
    /// zero every slab. Pooled stores are routed through this so one
    /// pooled allocation serves evaluations of any batch width.
    pub fn ensure(&mut self, num_nodes: usize, es: usize, cs: usize, nrhs: usize) {
        assert!(nrhs >= 1, "at least one right-hand side");
        self.es = es;
        self.cs = cs;
        self.nrhs = nrhs;
        self.up.clear();
        self.up.resize(num_nodes * es * nrhs, 0.0);
        self.down.clear();
        self.down.resize(num_nodes * es * nrhs, 0.0);
        self.check.clear();
        self.check.resize(num_nodes * cs * nrhs, 0.0);
    }

    /// Zero every slab for a fresh evaluation (capacity is retained, so a
    /// pooled store allocates nothing in steady state).
    pub fn reset(&mut self) {
        self.up.fill(0.0);
        self.down.fill(0.0);
        self.check.fill(0.0);
    }

    /// Equivalent row length (`n_s · SRC_DIM`).
    pub fn equiv_len(&self) -> usize {
        self.es
    }

    /// Check row length (`n_s · TRG_DIM`).
    pub fn check_len(&self) -> usize {
        self.cs
    }

    /// Number of simultaneous charge vectors this store is shaped for.
    pub fn nrhs(&self) -> usize {
        self.nrhs
    }

    /// Upward equivalent block of box `ni`: `nrhs` consecutive rows
    /// (`nrhs·es` values). With one RHS this is the node's single row.
    pub fn up(&self, ni: u32) -> &[f64] {
        let b = self.es * self.nrhs;
        &self.up[ni as usize * b..(ni as usize + 1) * b]
    }

    /// Mutable upward equivalent block of box `ni`.
    pub fn up_mut(&mut self, ni: u32) -> &mut [f64] {
        let b = self.es * self.nrhs;
        &mut self.up[ni as usize * b..(ni as usize + 1) * b]
    }

    /// Upward equivalent row of box `ni` for RHS `q`.
    pub fn up_rhs(&self, ni: u32, q: usize) -> &[f64] {
        debug_assert!(q < self.nrhs);
        let o = ni as usize * self.es * self.nrhs + q * self.es;
        &self.up[o..o + self.es]
    }

    /// Overwrite box `ni`'s upward equivalent block (the distributed
    /// driver installs globally summed equivalents this way).
    pub fn set_up(&mut self, ni: u32, values: &[f64]) {
        self.up_mut(ni).copy_from_slice(values);
    }

    /// Downward equivalent block of box `ni` (`nrhs·es` values).
    pub fn down(&self, ni: u32) -> &[f64] {
        let b = self.es * self.nrhs;
        &self.down[ni as usize * b..(ni as usize + 1) * b]
    }

    /// Mutable downward equivalent block of box `ni`.
    pub fn down_mut(&mut self, ni: u32) -> &mut [f64] {
        let b = self.es * self.nrhs;
        &mut self.down[ni as usize * b..(ni as usize + 1) * b]
    }

    /// Downward equivalent row of box `ni` for RHS `q`.
    pub fn down_rhs(&self, ni: u32, q: usize) -> &[f64] {
        debug_assert!(q < self.nrhs);
        let o = ni as usize * self.es * self.nrhs + q * self.es;
        &self.down[o..o + self.es]
    }

    /// Downward check block of box `ni` (`nrhs·cs` values).
    pub fn check_row(&self, ni: u32) -> &[f64] {
        let b = self.cs * self.nrhs;
        &self.check[ni as usize * b..(ni as usize + 1) * b]
    }
}

/// Reusable scratch for the batched passes. Every buffer is grown with
/// `clear` + `resize`, so after the first evaluation at a given problem
/// size the engine performs no steady-state allocations (the pool-dispatch
/// M2L additionally keeps one accumulator grid per worker, as before).
#[derive(Default)]
pub struct EngineWorkspace {
    /// Node-major check-potential batch rows for one level.
    pub rows: Vec<f64>,
    /// Column-major multi-RHS input block (`k × ncols`).
    pub xin: Vec<f64>,
    /// Column-major multi-RHS output block (`m × ncols`).
    pub yout: Vec<f64>,
    /// `(batch row, related node)` pairs of one octant batch.
    pub pairs: Vec<(u32, u32)>,
    /// Sorted, deduplicated V-list source boxes of one level.
    pub needed: Vec<u32>,
    /// Forward-transformed source spectra, one `SRC_DIM·(2p)³` slab per
    /// `(needed box, RHS)`.
    pub spectra: Vec<C64>,
    /// Hadamard accumulator grids (serial dispatch), `nrhs` per target.
    pub acc: Vec<C64>,
}
