//! Equivalent and check surfaces (paper §2.1, Figure 2.1).
//!
//! Surfaces are discretized cubes with `p` points per edge, giving
//! `n_s = 6(p−1)² + 2` points (`p³ − (p−2)³`). For a box of half-width `r`:
//!
//! * upward equivalent / downward check surface: radius [`RAD_INNER`]`·r`,
//! * upward check / downward equivalent surface: radius [`RAD_OUTER`]`·r`.
//!
//! These radii satisfy all five constraints listed at the end of the
//! paper's §2: the inner surface encloses the box, the outer surface stays
//! inside the near range `N_B` (the `3r` cube), a parent's inner surface
//! (`2.1r`) encloses its children's (`≤ 2.05r`), and the outer/downward
//! surfaces nest correctly across levels.
//!
//! Crucially, the inner surface is a **regular grid** on the cube: the
//! upward-equivalent points of a source box and the downward-check points
//! of a target box live on translates of the same lattice, which is what
//! turns the M2L translation into a discrete convolution and lets the FFT
//! accelerate it (§1, "the multipole-to-local translations are accelerated
//! using local FFTs").

use kifmm_geom::Point3;

/// Scale of the upward-equivalent / downward-check surface relative to the
/// box half-width.
pub const RAD_INNER: f64 = 1.05;
/// Scale of the upward-check / downward-equivalent surface.
pub const RAD_OUTER: f64 = 2.95;

/// Number of surface points for discretization order `p` (points per cube
/// edge): `p³ − (p−2)³ = 6(p−1)² + 2`.
pub fn num_surface_points(p: usize) -> usize {
    debug_assert!(p >= 2);
    p * p * p - (p - 2) * (p - 2) * (p - 2)
}

/// Grid index triples `(i, j, k) ∈ [0, p)³` lying on the cube surface
/// (at least one index equal to `0` or `p−1`), in lexicographic order.
///
/// The ordering here defines the canonical surface-point ordering used by
/// every operator in the crate and maps surface points into the volume
/// grid for the FFT M2L.
pub fn surface_grid_indices(p: usize) -> Vec<[usize; 3]> {
    assert!(p >= 2, "surface order must be at least 2");
    let mut out = Vec::with_capacity(num_surface_points(p));
    for i in 0..p {
        for j in 0..p {
            for k in 0..p {
                if i == 0 || i == p - 1 || j == 0 || j == p - 1 || k == 0 || k == p - 1 {
                    out.push([i, j, k]);
                }
            }
        }
    }
    out
}

/// Physical surface points for a box with center `c` and half-width `r`,
/// scaled by `radius` (one of [`RAD_INNER`]/[`RAD_OUTER`]): a `p`-per-edge
/// grid on the cube of half-width `radius·r` centered at `c`.
pub fn surface_points(p: usize, radius: f64, c: Point3, r: f64) -> Vec<Point3> {
    let half = radius * r;
    let step = 2.0 * half / (p - 1) as f64;
    surface_grid_indices(p)
        .into_iter()
        .map(|[i, j, k]| {
            [
                c[0] - half + step * i as f64,
                c[1] - half + step * j as f64,
                c[2] - half + step * k as f64,
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_formula() {
        for p in 2..=10 {
            let n = surface_grid_indices(p).len();
            assert_eq!(n, num_surface_points(p));
            assert_eq!(n, 6 * (p - 1) * (p - 1) + 2);
        }
        // The paper-accuracy setting p = 6 gives 152 points.
        assert_eq!(num_surface_points(6), 152);
    }

    #[test]
    fn indices_on_surface_and_unique() {
        let p = 5;
        let idx = surface_grid_indices(p);
        let mut seen = std::collections::HashSet::new();
        for t in &idx {
            assert!(t.iter().any(|&v| v == 0 || v == p - 1));
            assert!(seen.insert(*t));
        }
    }

    #[test]
    fn points_on_cube_of_correct_radius() {
        let c = [1.0, -2.0, 0.5];
        let r = 0.25;
        let pts = surface_points(6, RAD_INNER, c, r);
        let half = RAD_INNER * r;
        for pt in &pts {
            let d = (0..3).map(|d| (pt[d] - c[d]).abs()).fold(0.0_f64, f64::max);
            assert!((d - half).abs() < 1e-12, "point must lie on the cube surface");
        }
    }

    #[test]
    fn surface_constraints_hold() {
        // Constraint checks from paper §2 summary, for a unit box (r = 1):
        // inner surface encloses the box…
        assert!(RAD_INNER > 1.0);
        // …outer stays strictly inside the near range (3r)…
        assert!(RAD_OUTER < 3.0);
        // …check encloses equivalent with a gap…
        assert!(RAD_OUTER > RAD_INNER + 1.0);
        // …parent inner surface (2·1.05 r) encloses child inner surfaces
        // (offset r, radius 1.05·r/… children have half-width r/2 at offset
        // r/2: extent 0.5 + 1.05·0.5 = 1.025 < 1.05·… at parent scale:
        let parent_inner = 2.0 * RAD_INNER; // in child-half-width units… r_p = 1
        let child_extent = 1.0 + RAD_INNER; // offset r_c + radius·r_c, r_c = 1
        assert!(parent_inner > child_extent / 1.0 * 1.0 - 1e-9);
        // …V-list separation: nearest V offset is 2 parent-level boxes =
        // 4r; equivalent (1.05r) and check (1.05r) surfaces stay disjoint.
        assert!(4.0 - RAD_INNER - RAD_INNER > 0.0);
    }

    #[test]
    fn lattice_property_for_fft() {
        // Surface points of two boxes at the same level differ by an exact
        // lattice translation: (c_A − c_B) is a multiple of 2r and the
        // local grids are identical.
        let pa = surface_points(4, RAD_INNER, [0.0, 0.0, 0.0], 0.5);
        let pb = surface_points(4, RAD_INNER, [2.0, -1.0, 3.0], 0.5);
        for (a, b) in pa.iter().zip(&pb) {
            assert!((b[0] - a[0] - 2.0).abs() < 1e-12);
            assert!((b[1] - a[1] + 1.0).abs() < 1e-12);
            assert!((b[2] - a[2] - 3.0).abs() < 1e-12);
        }
    }
}
