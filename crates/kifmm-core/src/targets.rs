//! Evaluation at arbitrary target points.
//!
//! The paper's experiments take sources ≡ targets (§2 footnote 1: "in
//! general {x_i} and {y_i} can be the same set of points"), but its
//! applications need fields *off* the source set too — e.g. evaluating the
//! fluid velocity at observation points after a boundary-integral solve.
//!
//! The far-field decomposition is geometric, not point-specific: any
//! point inside a leaf box `B` receives the complete potential as
//!
//! `u(t) = Σ_{A∈U(B)} direct + Σ_{A∈W(B)} equivalent + L2T(φ^{B,d})`,
//!
//! so arbitrary targets reuse the already-computed upward/downward
//! equivalent densities. Targets that fall in a region with no source
//! boxes (their deepest existing box is internal, or they lie outside the
//! computational domain) fall back to exact direct summation — correct
//! always, and rare when targets live near the geometry.

use crate::fmm::Fmm;
use crate::operators::FIRST_FMM_LEVEL;
use crate::surface::{surface_points, RAD_INNER, RAD_OUTER};
use kifmm_kernels::{Kernel, Point3};
use kifmm_tree::{point_key, MAX_LEVEL};

impl<K: Kernel> Fmm<K> {
    /// Evaluate the potential at arbitrary `targets` (not necessarily the
    /// source points). Returns `TRG_DIM` components per target.
    pub fn evaluate_at(&self, densities: &[f64], targets: &[Point3]) -> Vec<f64> {
        let (sd, td) = (self.kernel.src_dim(), self.kernel.trg_dim());
        assert_eq!(densities.len(), self.num_points * sd, "density length");
        let tree = &self.tree;

        // Morton-sort densities and run the standard two passes.
        let mut dens = vec![0.0; densities.len()];
        for (si, &orig) in tree.perm.iter().enumerate() {
            for c in 0..sd {
                dens[si * sd + c] = densities[orig as usize * sd + c];
            }
        }
        let store = self.compute_expansions(&dens);

        let mut out = vec![0.0; targets.len() * td];
        let domain = tree.domain;
        for (ti, &t) in targets.iter().enumerate() {
            let slot = &mut out[ti * td..(ti + 1) * td];
            // Outside the domain cube: everything is far in an unindexed
            // direction — fall back to the exact sum.
            let inside = (0..3).all(|d| (t[d] - domain.center[d]).abs() <= domain.half);
            if !inside {
                self.direct_all(t, &dens, slot);
                continue;
            }
            let key = point_key(t, domain.center, domain.half, MAX_LEVEL);
            let ni = tree.deepest_ancestor(&key);
            let node = &tree.nodes[ni as usize];
            if !node.is_leaf() {
                // Source-free pocket inside an internal box: exact sum.
                self.direct_all(t, &dens, slot);
                continue;
            }
            // U: direct near-field.
            for &a in &self.lists.u[ni as usize] {
                let (pts, d) = self.leaf_data(a, &dens);
                self.kernel.p2p(std::slice::from_ref(&t), pts, d, slot);
            }
            // W: separated finer boxes via their upward equivalents.
            for &a in &self.lists.w[ni as usize] {
                let akey = tree.nodes[a as usize].key;
                let ac = domain.box_center(&akey);
                let ah = domain.box_half(akey.level);
                let ue = surface_points(self.opts.order, RAD_INNER, ac, ah);
                self.kernel.p2p(std::slice::from_ref(&t), &ue, store.up(a), slot);
            }
            // L2T: the rest of the far field.
            if node.key.level >= FIRST_FMM_LEVEL {
                let c = domain.box_center(&node.key);
                let half = domain.box_half(node.key.level);
                let de = surface_points(self.opts.order, RAD_OUTER, c, half);
                self.kernel.p2p(std::slice::from_ref(&t), &de, store.down(ni), slot);
            }
        }
        out
    }

    /// Exact summation over all sources for one target (fallback path).
    fn direct_all(&self, t: Point3, sorted_dens: &[f64], slot: &mut [f64]) {
        self.kernel.p2p(std::slice::from_ref(&t), &self.sorted_points, sorted_dens, slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::{direct_eval_src_trg, rel_l2_error};
    use crate::fmm::FmmOptions;
    use kifmm_kernels::{Laplace, Stokes};
    use kifmm_testkit::cloud;

    #[test]
    fn interleaved_targets_match_direct() {
        let srcs = cloud(1000, 3);
        let dens: Vec<f64> = (0..1000).map(|i| ((i % 13) as f64) / 13.0).collect();
        // Targets scattered through the same volume (but distinct points).
        let targets: Vec<Point3> =
            cloud(200, 99).iter().map(|p| [p[0] * 0.95, p[1] * 0.95, p[2] * 0.95]).collect();
        let fmm = Fmm::new(
            Laplace,
            &srcs,
            FmmOptions { order: 6, max_pts_per_leaf: 25, ..Default::default() },
        );
        let u = fmm.evaluate_at(&dens, &targets);
        let truth = direct_eval_src_trg(&Laplace, &srcs, &dens, &targets);
        let e = rel_l2_error(&u, &truth);
        assert!(e < 1e-5, "off-source targets error {e}");
    }

    #[test]
    fn exterior_targets_fall_back_to_exact() {
        let srcs = cloud(500, 7);
        let dens = vec![1.0; 500];
        let targets = vec![[5.0, 0.0, 0.0], [-3.0, 4.0, 2.0], [0.0, 0.0, 100.0]];
        let fmm = Fmm::new(Laplace, &srcs, FmmOptions::with_order(4));
        let u = fmm.evaluate_at(&dens, &targets);
        let truth = direct_eval_src_trg(&Laplace, &srcs, &dens, &targets);
        for (a, b) in u.iter().zip(&truth) {
            assert!((a - b).abs() < 1e-12 * b.abs().max(1e-12), "exterior exact: {a} vs {b}");
        }
    }

    #[test]
    fn targets_at_source_locations_match_evaluate() {
        let srcs = cloud(800, 21);
        let dens: Vec<f64> = (0..800).map(|i| (i as f64 * 0.37).sin()).collect();
        let fmm = Fmm::new(
            Laplace,
            &srcs,
            FmmOptions { order: 5, max_pts_per_leaf: 20, ..Default::default() },
        );
        let via_eval = fmm.eval(&dens).potentials;
        let via_at = fmm.evaluate_at(&dens, &srcs);
        let e = rel_l2_error(&via_at, &via_eval);
        assert!(e < 1e-12, "consistency between evaluate and evaluate_at: {e}");
    }

    #[test]
    fn stokes_targets_in_source_free_pockets() {
        // Sources on two clusters; targets in the empty middle — many hit
        // internal boxes and use the exact fallback.
        let mut srcs: Vec<Point3> = cloud(300, 1)
            .iter()
            .map(|p| [0.8 + p[0] * 0.1, 0.8 + p[1] * 0.1, 0.8 + p[2] * 0.1])
            .collect();
        srcs.extend(
            cloud(300, 2)
                .iter()
                .map(|p| [-0.8 + p[0] * 0.1, -0.8 + p[1] * 0.1, -0.8 + p[2] * 0.1]),
        );
        let dens = kifmm_geom::random_densities(600, 3, 5);
        let targets: Vec<Point3> = (0..50).map(|i| [0.0, i as f64 * 0.01, 0.0]).collect();
        let fmm = Fmm::new(
            Stokes::default(),
            &srcs,
            FmmOptions { order: 5, max_pts_per_leaf: 15, ..Default::default() },
        );
        let u = fmm.evaluate_at(&dens, &targets);
        let truth = direct_eval_src_trg(&Stokes::default(), &srcs, &dens, &targets);
        let e = rel_l2_error(&u, &truth);
        assert!(e < 1e-4, "pocket targets error {e}");
    }
}
