//! Per-point workload estimation — the paper's stated future work.
//!
//! §3.1: "No additional load balancing information is used besides the
//! number of particles. Work estimates from a previous time step could be
//! used to obtain more balanced partitioning." §5 lists the "inefficient
//! load balancing algorithm" as one of the two known problems and plans to
//! "use workload information from previous time steps for load balancing".
//!
//! This module supplies those work estimates: given a built tree and its
//! interaction lists, it predicts the flops each *point* will cost in one
//! interaction evaluation — U-list density (the term particle counts miss
//! entirely), V/X traffic of every ancestor box, W-list and translation
//! overheads. Feeding the result into the weighted Morton partitioner
//! (`kifmm_tree::partition_weighted_points`) re-balances the next
//! evaluation; the `ablation_balance` bench measures the improvement on
//! the paper's non-uniform corner-clustered workload.

use crate::surface::num_surface_points;
use kifmm_kernels::Kernel;
use kifmm_tree::{InteractionLists, Octree, NO_NODE};

/// Predicted flops per point of each *leaf*, indexed by node id (zero for
/// internal boxes). `count` supplies the per-box point count — pass global
/// counts in the distributed setting, where the local tree only holds this
/// rank's ranges.
pub fn leaf_work_rates<K: Kernel>(
    kernel: &K,
    tree: &Octree,
    lists: &InteractionLists,
    order: usize,
    count: impl Fn(u32) -> f64,
) -> Vec<f64> {
    let ns = num_surface_points(order) as f64;
    let kf = kernel.flops_per_eval() as f64;
    let es = ns * kernel.src_dim() as f64;
    let cs = ns * kernel.trg_dim() as f64;
    let m3 = (2 * order).pow(3) as f64;
    let hadamard = (kernel.src_dim() * kernel.trg_dim()) as f64 * m3 * 8.0;
    let nn = tree.num_nodes();

    // Box-level work spread over the box's points, accumulated down the
    // tree so a leaf's rate includes every ancestor's share.
    let mut rate = vec![0.0_f64; nn];
    for ni in 0..nn as u32 {
        let node = &tree.nodes[ni as usize];
        let cnt = count(ni).max(1.0);
        let mut w = 0.0;
        // Up + down check-to-equivalent inversions and L2L/M2M shares.
        w += 6.0 * cs * es;
        // M2L: Hadamard products plus amortized FFTs.
        let nv = lists.v[ni as usize].len() as f64;
        if nv > 0.0 {
            w += nv * hadamard + 10.0 * m3 * m3.log2();
        }
        // X list: sources of coarser leaves onto this box's check surface.
        for &a in &lists.x[ni as usize] {
            w += count(a) * ns * kf;
        }
        let parent_rate =
            if node.parent == NO_NODE { 0.0 } else { rate[node.parent as usize] };
        rate[ni as usize] = parent_rate + w / cnt;
    }

    // Leaf-level per-point terms.
    let mut out = vec![0.0_f64; nn];
    for ni in tree.leaves() {
        let mut w = rate[ni as usize];
        // S2M + L2T per point.
        w += 2.0 * ns * kf;
        // Dense U interactions: each target visits every source of every
        // U member — the dominant term for crowded leaves.
        for &a in &lists.u[ni as usize] {
            w += count(a) * kf;
        }
        // W members evaluated at each target.
        w += lists.w[ni as usize].len() as f64 * ns * kf;
        out[ni as usize] = w;
    }
    out
}

/// Per-point work estimates in the caller's original point order
/// (the weights to hand to `partition_weighted_points`).
pub fn point_work_estimates<K: Kernel>(
    kernel: &K,
    tree: &Octree,
    lists: &InteractionLists,
    order: usize,
    count: impl Fn(u32) -> f64,
) -> Vec<f64> {
    let rates = leaf_work_rates(kernel, tree, lists, order, count);
    let mut sorted = vec![0.0; tree.perm.len()];
    for ni in tree.leaves() {
        let node = &tree.nodes[ni as usize];
        for i in node.pt_start..node.pt_end {
            sorted[i as usize] = rates[ni as usize];
        }
    }
    // Un-permute to the original order.
    let mut out = vec![0.0; tree.perm.len()];
    for (si, &orig) in tree.perm.iter().enumerate() {
        out[orig as usize] = sorted[si];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kifmm_kernels::Laplace;
    use kifmm_tree::build_lists;

    fn clustered(n: usize) -> Vec<[f64; 3]> {
        let mut s = 5u64;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut pts = Vec::with_capacity(n);
        for i in 0..n {
            if i % 2 == 0 {
                pts.push([next(), next(), next()]);
            } else {
                pts.push([0.9 + next() * 0.05, 0.9 + next() * 0.05, 0.9 + next() * 0.05]);
            }
        }
        pts
    }

    #[test]
    fn estimates_cover_every_point_and_are_positive() {
        let pts = clustered(2000);
        let tree = Octree::build(&pts, 20, 19);
        let lists = build_lists(&tree);
        let w = point_work_estimates(&Laplace, &tree, &lists, 6, |b| {
            tree.nodes[b as usize].num_points() as f64
        });
        assert_eq!(w.len(), 2000);
        assert!(w.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn clustered_points_cost_more() {
        // Points in the dense corner cluster sit in crowded leaves with
        // fat U lists; their per-point estimate must exceed the sparse
        // bulk's median.
        let pts = clustered(4000);
        let tree = Octree::build(&pts, 30, 19);
        let lists = build_lists(&tree);
        let w = point_work_estimates(&Laplace, &tree, &lists, 6, |b| {
            tree.nodes[b as usize].num_points() as f64
        });
        let cluster: Vec<f64> = pts
            .iter()
            .zip(&w)
            .filter(|(p, _)| p[0] > 0.8 && p[1] > 0.8 && p[2] > 0.8)
            .map(|(_, &v)| v)
            .collect();
        let bulk: Vec<f64> = pts
            .iter()
            .zip(&w)
            .filter(|(p, _)| p[0] < 0.5)
            .map(|(_, &v)| v)
            .collect();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&cluster) > 1.5 * mean(&bulk),
            "cluster {} vs bulk {}",
            mean(&cluster),
            mean(&bulk)
        );
    }

    #[test]
    fn estimates_track_total_measured_flops() {
        // The summed estimate should land within a factor ~2 of the real
        // counted flops (it is an a-priori model, not an exact charge).
        let pts = clustered(3000);
        let dens = vec![1.0; 3000];
        let fmm = crate::Fmm::new(
            Laplace,
            &pts,
            crate::FmmOptions { order: 6, max_pts_per_leaf: 30, ..Default::default() },
        );
        let lists = build_lists(&fmm.tree);
        let w = point_work_estimates(&Laplace, &fmm.tree, &lists, 6, |b| {
            fmm.tree.nodes[b as usize].num_points() as f64
        });
        let predicted: f64 = w.iter().sum();
        let stats = fmm.eval(&dens).stats;
        let measured = stats.total_flops() as f64;
        let ratio = predicted / measured;
        assert!(
            (0.4..2.5).contains(&ratio),
            "prediction {predicted:.3e} vs measured {measured:.3e} (ratio {ratio:.2})"
        );
    }
}
