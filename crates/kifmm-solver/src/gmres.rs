//! Restarted GMRES.
//!
//! The paper runs its FMM inside "a Krylov method" (PETSc's solvers; §3,
//! §4: "at each time step we solve a linear system that requires tens of
//! interaction calculations"). This is that Krylov method: GMRES(m) with
//! modified Gram–Schmidt Arnoldi and Givens-rotation least squares, taking
//! the operator as a closure so an [`kifmm_core::Fmm`] matvec plugs in
//! directly.

/// GMRES configuration.
#[derive(Clone, Copy, Debug)]
pub struct GmresOptions {
    /// Restart length `m`.
    pub restart: usize,
    /// Maximum total matvecs.
    pub max_iter: usize,
    /// Relative residual target `‖b − Ax‖/‖b‖`.
    pub tol: f64,
}

impl Default for GmresOptions {
    fn default() -> Self {
        GmresOptions { restart: 50, max_iter: 500, tol: 1e-8 }
    }
}

/// Solver outcome.
#[derive(Clone, Debug)]
pub struct GmresResult {
    /// The (approximate) solution.
    pub x: Vec<f64>,
    /// Matvecs performed.
    pub iterations: usize,
    /// Final relative residual.
    pub residual: f64,
    /// True when `residual ≤ tol`.
    pub converged: bool,
}

/// Solve `A x = b` with `A` given as a matvec closure.
pub fn gmres(
    matvec: impl Fn(&[f64]) -> Vec<f64>,
    b: &[f64],
    x0: Option<&[f64]>,
    opts: GmresOptions,
) -> GmresResult {
    let n = b.len();
    let bnorm = norm(b);
    if bnorm == 0.0 {
        return GmresResult { x: vec![0.0; n], iterations: 0, residual: 0.0, converged: true };
    }
    let mut x = x0.map(|v| v.to_vec()).unwrap_or_else(|| vec![0.0; n]);
    let m = opts.restart.max(1);
    let mut total_iters = 0usize;
    let mut rel = f64::INFINITY;

    'outer: while total_iters < opts.max_iter {
        // r = b − A x
        let ax = matvec(&x);
        total_iters += 1;
        let mut r: Vec<f64> = b.iter().zip(&ax).map(|(bi, ai)| bi - ai).collect();
        let beta = norm(&r);
        rel = beta / bnorm;
        if rel <= opts.tol {
            break;
        }
        for v in &mut r {
            *v /= beta;
        }
        // Arnoldi basis and Hessenberg factors.
        let mut basis: Vec<Vec<f64>> = vec![r];
        let mut h: Vec<Vec<f64>> = Vec::new(); // h[j] has j+2 entries
        let mut cs: Vec<f64> = Vec::new();
        let mut sn: Vec<f64> = Vec::new();
        let mut g = vec![0.0; m + 1];
        g[0] = beta;
        let mut k_used = 0;

        for j in 0..m {
            if total_iters >= opts.max_iter {
                break;
            }
            let mut w = matvec(&basis[j]);
            total_iters += 1;
            // Modified Gram–Schmidt.
            let mut hj = vec![0.0; j + 2];
            for (i, vi) in basis.iter().enumerate() {
                let hij = dot(&w, vi);
                hj[i] = hij;
                for (wv, vv) in w.iter_mut().zip(vi) {
                    *wv -= hij * vv;
                }
            }
            let hlast = norm(&w);
            hj[j + 1] = hlast;
            // Apply existing Givens rotations to the new column.
            for i in 0..j {
                let t = cs[i] * hj[i] + sn[i] * hj[i + 1];
                hj[i + 1] = -sn[i] * hj[i] + cs[i] * hj[i + 1];
                hj[i] = t;
            }
            // New rotation to annihilate hj[j+1].
            let (c, s) = givens(hj[j], hj[j + 1]);
            cs.push(c);
            sn.push(s);
            hj[j] = c * hj[j] + s * hj[j + 1];
            hj[j + 1] = 0.0;
            g[j + 1] = -s * g[j];
            g[j] *= c;
            h.push(hj);
            k_used = j + 1;
            rel = g[j + 1].abs() / bnorm;
            let breakdown = hlast < 1e-14 * bnorm;
            if rel <= opts.tol || breakdown {
                break;
            }
            if !breakdown {
                for v in &mut w {
                    *v /= hlast;
                }
                basis.push(w);
            }
        }
        // Back-substitute y from the triangularized system.
        let mut y = vec![0.0; k_used];
        for i in (0..k_used).rev() {
            let mut s = g[i];
            for j in (i + 1)..k_used {
                s -= h[j][i] * y[j];
            }
            y[i] = s / h[i][i];
        }
        for (j, yj) in y.iter().enumerate() {
            for (xv, vv) in x.iter_mut().zip(&basis[j]) {
                *xv += yj * vv;
            }
        }
        if rel <= opts.tol {
            // Recompute the true residual to guard against drift.
            let ax = matvec(&x);
            total_iters += 1;
            let r: f64 =
                b.iter().zip(&ax).map(|(bi, ai)| (bi - ai) * (bi - ai)).sum::<f64>().sqrt();
            rel = r / bnorm;
            if rel <= opts.tol {
                break 'outer;
            }
        }
    }
    GmresResult { x, iterations: total_iters, residual: rel, converged: rel <= opts.tol }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

fn givens(a: f64, b: f64) -> (f64, f64) {
    if b == 0.0 {
        (1.0, 0.0)
    } else if a.abs() < b.abs() {
        let t = a / b;
        let s = 1.0 / (1.0 + t * t).sqrt();
        (s * t, s)
    } else {
        let t = b / a;
        let c = 1.0 / (1.0 + t * t).sqrt();
        (c, c * t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kifmm_linalg::Mat;

    fn solve_mat(a: &Mat, b: &[f64], opts: GmresOptions) -> GmresResult {
        gmres(|x| a.matvec(x), b, None, opts)
    }

    #[test]
    fn identity_converges_immediately() {
        let a = Mat::eye(5);
        let b = vec![1.0, -2.0, 3.0, 0.0, 0.5];
        let r = solve_mat(&a, &b, GmresOptions::default());
        assert!(r.converged);
        for (x, e) in r.x.iter().zip(&b) {
            assert!((x - e).abs() < 1e-10);
        }
    }

    #[test]
    fn diagonally_dominant_system() {
        let n = 30;
        let mut a = Mat::from_fn(n, n, |i, j| 0.3 / (1.0 + (i as f64 - j as f64).abs()));
        for i in 0..n {
            a[(i, i)] += 5.0;
        }
        let xt: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let b = a.matvec(&xt);
        let r = solve_mat(&a, &b, GmresOptions { tol: 1e-12, ..Default::default() });
        assert!(r.converged, "residual {}", r.residual);
        for (x, e) in r.x.iter().zip(&xt) {
            assert!((x - e).abs() < 1e-9);
        }
    }

    #[test]
    fn restart_still_converges() {
        let n = 40;
        let mut a = Mat::from_fn(n, n, |i, j| if i == j { 0.0 } else { 0.5 / (1.0 + ((i * 7 + j * 3) % 11) as f64) });
        for i in 0..n {
            a[(i, i)] = 10.0 + (i % 3) as f64;
        }
        let b = vec![1.0; n];
        let r = solve_mat(&a, &b, GmresOptions { restart: 5, max_iter: 400, tol: 1e-10 });
        assert!(r.converged, "residual {}", r.residual);
        let ax = a.matvec(&r.x);
        for (u, v) in ax.iter().zip(&b) {
            assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn zero_rhs() {
        let a = Mat::eye(3);
        let r = solve_mat(&a, &[0.0; 3], GmresOptions::default());
        assert!(r.converged);
        assert_eq!(r.x, vec![0.0; 3]);
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn respects_initial_guess() {
        let a = Mat::eye(4);
        let b = vec![2.0; 4];
        let x0 = vec![2.0; 4];
        let r = gmres(|x| a.matvec(x), &b, Some(&x0), GmresOptions::default());
        assert!(r.converged);
        assert!(r.iterations <= 1, "exact guess needs no Arnoldi steps");
    }

    #[test]
    fn nonconvergence_reported() {
        // A rotation-like, poorly conditioned system with a tiny budget.
        let n = 50;
        let a = Mat::from_fn(n, n, |i, j| {
            if (i + 1) % n == j {
                1.0
            } else if i == j {
                1e-6
            } else {
                0.0
            }
        });
        // b = e_0: the shift structure forces GMRES to walk the whole
        // cycle, impossible within a 6-matvec budget.
        let mut b = vec![0.0; n];
        b[0] = 1.0;
        let r = solve_mat(&a, &b, GmresOptions { restart: 3, max_iter: 6, tol: 1e-14 });
        assert!(!r.converged, "residual {}", r.residual);
        assert!(r.iterations <= 7);
    }
}
