//! Krylov solvers and boundary integral formulations on top of the KIFMM.
//!
//! The paper's driving applications (viscous flows, fluid–structure
//! interaction, Figure 4.1) solve boundary integral equations whose
//! matrix-vector products are particle interaction evaluations — the exact
//! workload the FMM accelerates. This crate supplies:
//!
//! * [`gmres()`](gmres::gmres) — restarted GMRES taking the operator as a closure
//!   (standing in for the PETSc Krylov solvers the paper used);
//! * [`bie`] — Nyström surface quadratures, the FMM-backed single-layer
//!   operator, rigid-body boundary conditions and force functionals used
//!   by the Stokes sedimentation example.

pub mod bie;
pub mod gmres;

pub use bie::{
    apply_single_layer_direct, net_force, rigid_body_velocity, SingleLayerOperator,
    SurfaceQuadrature,
};
pub use gmres::{gmres, GmresOptions, GmresResult};
