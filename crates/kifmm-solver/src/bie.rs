//! Boundary integral equations driven by FMM matvecs.
//!
//! The paper's applications solve boundary integral formulations of the
//! Stokes equations: "the particle positions and densities are associated
//! to discretizations of integral equations, and at each time step the
//! interaction computation (matrix vector multiplication within a Krylov
//! method) is carried out multiple times" (§3). This module provides that
//! setup at library scale: a Nyström-discretized single-layer operator
//! whose matvec is one FMM interaction evaluation, plus the rigid-body
//! velocity BVP used by the sedimentation example (the paper's Figure 4.1
//! scenario).

use crate::gmres::{gmres, GmresOptions, GmresResult};
use kifmm_core::{direct_eval, Fmm, FmmOptions, PlanCache, Session};
use kifmm_geom::{fibonacci_sphere, Point3};
use kifmm_kernels::Kernel;

/// A Nyström discretization of a closed surface: quadrature points and
/// weights.
#[derive(Clone, Debug)]
pub struct SurfaceQuadrature {
    /// Quadrature nodes on the surface.
    pub points: Vec<Point3>,
    /// Quadrature weight per node (sums to the surface area).
    pub weights: Vec<f64>,
}

impl SurfaceQuadrature {
    /// Quasi-uniform sphere quadrature: Fibonacci nodes with equal weights
    /// `4πR²/n`.
    pub fn sphere(center: Point3, radius: f64, n: usize) -> Self {
        let points = fibonacci_sphere(center, radius, n);
        let w = 4.0 * std::f64::consts::PI * radius * radius / n as f64;
        SurfaceQuadrature { points, weights: vec![w; n] }
    }

    /// Concatenate several surfaces into one quadrature (multi-body
    /// problems).
    pub fn union(parts: &[SurfaceQuadrature]) -> Self {
        let mut points = Vec::new();
        let mut weights = Vec::new();
        for p in parts {
            points.extend_from_slice(&p.points);
            weights.extend_from_slice(&p.weights);
        }
        SurfaceQuadrature { points, weights }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the quadrature holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Total surface area represented.
    pub fn area(&self) -> f64 {
        self.weights.iter().sum()
    }
}

/// The discretized single-layer operator `(Sφ)(x_i) = Σ_j G(x_i, y_j) w_j
/// φ_j` with the FMM as the summation engine.
pub struct SingleLayerOperator<K: Kernel> {
    fmm: Fmm<K>,
    quad: SurfaceQuadrature,
    /// Matvecs performed so far (the paper's "tens of interaction
    /// calculations per solve").
    pub matvecs: std::cell::Cell<usize>,
}

impl<K: Kernel> SingleLayerOperator<K> {
    /// Build the FMM over the quadrature nodes.
    pub fn new(kernel: K, quad: SurfaceQuadrature, opts: FmmOptions) -> Self {
        let fmm = Fmm::new(kernel, &quad.points, opts);
        SingleLayerOperator { fmm, quad, matvecs: std::cell::Cell::new(0) }
    }

    /// As [`SingleLayerOperator::new`], but resolving the evaluation plan
    /// through a [`PlanCache`]: a geometry the cache has seen before
    /// (same kernel, order, M2L mode, leaf bound and point set — e.g. a
    /// rigid body expressed in its own body frame at every time step)
    /// skips tree, list and operator setup entirely and shares the cached
    /// plan's memory.
    ///
    /// # Panics
    /// On invalid build inputs (empty quadrature, order < 2).
    pub fn with_plan_cache(
        kernel: K,
        quad: SurfaceQuadrature,
        opts: FmmOptions,
        cache: &PlanCache<K>,
    ) -> Self {
        let plan = cache
            .get_or_plan(&kernel, &quad.points, opts)
            .unwrap_or_else(|e| panic!("{e}"));
        let fmm = Fmm::from_session(Session::new(plan));
        SingleLayerOperator { fmm, quad, matvecs: std::cell::Cell::new(0) }
    }

    /// Wrap an already-resolved plan (e.g. one obtained from
    /// [`PlanCache::get_or_update`] after patching a previous time step's
    /// plan for the moved quadrature nodes). The plan must have been
    /// built over exactly `quad.points`.
    pub fn with_plan(quad: SurfaceQuadrature, plan: std::sync::Arc<kifmm_core::Plan<K>>) -> Self {
        assert_eq!(
            plan.len(),
            quad.len(),
            "plan was built over a different number of points than the quadrature"
        );
        let fmm = Fmm::from_session(Session::new(plan));
        SingleLayerOperator { fmm, quad, matvecs: std::cell::Cell::new(0) }
    }

    /// The quadrature.
    pub fn quadrature(&self) -> &SurfaceQuadrature {
        &self.quad
    }

    /// Apply the operator: weight the density, evaluate one FMM
    /// interaction.
    pub fn apply(&self, density: &[f64]) -> Vec<f64> {
        let sd = self.fmm.kernel().src_dim();
        assert_eq!(density.len(), self.quad.len() * sd);
        let weighted: Vec<f64> = density
            .iter()
            .enumerate()
            .map(|(i, &v)| v * self.quad.weights[i / sd])
            .collect();
        self.matvecs.set(self.matvecs.get() + 1);
        self.fmm.eval(&weighted).potentials
    }

    /// Solve the first-kind equation `Sφ = u_bc` by GMRES.
    pub fn solve(&self, u_bc: &[f64], opts: GmresOptions) -> GmresResult {
        gmres(|x| self.apply(x), u_bc, None, opts)
    }

    /// Evaluate the layer potential at off-surface points, reusing the
    /// FMM's equivalent densities (`Fmm::evaluate_at`).
    pub fn evaluate_off_surface(&self, density: &[f64], targets: &[Point3]) -> Vec<f64> {
        let sd = self.fmm.kernel().src_dim();
        let weighted: Vec<f64> = density
            .iter()
            .enumerate()
            .map(|(i, &v)| v * self.quad.weights[i / sd])
            .collect();
        self.fmm.evaluate_at(&weighted, targets)
    }
}

/// Rigid-body boundary condition `u(x) = U + Ω × (x − c)` sampled at the
/// quadrature nodes (3 components per node).
pub fn rigid_body_velocity(
    quad: &SurfaceQuadrature,
    center: Point3,
    linear: [f64; 3],
    angular: [f64; 3],
) -> Vec<f64> {
    let mut u = Vec::with_capacity(quad.len() * 3);
    for p in &quad.points {
        let r = [p[0] - center[0], p[1] - center[1], p[2] - center[2]];
        u.push(linear[0] + angular[1] * r[2] - angular[2] * r[1]);
        u.push(linear[1] + angular[2] * r[0] - angular[0] * r[2]);
        u.push(linear[2] + angular[0] * r[1] - angular[1] * r[0]);
    }
    u
}

/// Net traction force `F = Σ_j w_j φ_j` of a single-layer density
/// (3-vector kernels).
pub fn net_force(quad: &SurfaceQuadrature, density: &[f64]) -> [f64; 3] {
    let mut f = [0.0; 3];
    for (j, w) in quad.weights.iter().enumerate() {
        for c in 0..3 {
            f[c] += w * density[3 * j + c];
        }
    }
    f
}

/// Reference matvec without the FMM (small problems / validation).
pub fn apply_single_layer_direct<K: Kernel>(
    kernel: &K,
    quad: &SurfaceQuadrature,
    density: &[f64],
) -> Vec<f64> {
    let sd = kernel.src_dim();
    let weighted: Vec<f64> = density
        .iter()
        .enumerate()
        .map(|(i, &v)| v * quad.weights[i / sd])
        .collect();
    direct_eval(kernel, &quad.points, &weighted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kifmm_kernels::{Laplace, Stokes};

    #[test]
    fn sphere_quadrature_area() {
        let q = SurfaceQuadrature::sphere([0.0; 3], 2.0, 500);
        let expect = 4.0 * std::f64::consts::PI * 4.0;
        assert!((q.area() - expect).abs() < 1e-10);
        assert_eq!(q.len(), 500);
    }

    #[test]
    fn fmm_matvec_matches_direct_matvec() {
        let q = SurfaceQuadrature::sphere([0.1, -0.2, 0.3], 1.0, 800);
        let density: Vec<f64> = (0..800).map(|i| (i as f64 * 0.01).sin()).collect();
        let op = SingleLayerOperator::new(
            Laplace,
            q.clone(),
            FmmOptions { order: 6, max_pts_per_leaf: 30, ..Default::default() },
        );
        let via_fmm = op.apply(&density);
        let via_direct = apply_single_layer_direct(&Laplace, &q, &density);
        let err = kifmm_core::rel_l2_error(&via_fmm, &via_direct);
        assert!(err < 1e-5, "FMM matvec error {err}");
        assert_eq!(op.matvecs.get(), 1);
    }

    /// Physics regression: Stokes drag on a translating sphere is
    /// `F = −6πμRU` (we solve for the traction that *produces* velocity U,
    /// so the net single-layer force equals +6πμRU).
    #[test]
    fn stokes_drag_of_translating_sphere() {
        let mu = 1.3;
        let radius = 0.8;
        let u_inf = [0.0, 0.0, 1.0];
        let q = SurfaceQuadrature::sphere([0.0; 3], radius, 400);
        let op = SingleLayerOperator::new(
            Stokes::new(mu),
            q.clone(),
            FmmOptions { order: 6, max_pts_per_leaf: 40, ..Default::default() },
        );
        let bc = rigid_body_velocity(&q, [0.0; 3], u_inf, [0.0; 3]);
        // First-kind Fredholm systems stagnate in GMRES near the quadrature
        // noise floor; a 1e-4 residual already determines the net force far
        // better than the O(1/√n) Nyström error does.
        let res = op.solve(&bc, GmresOptions { tol: 1e-4, max_iter: 250, restart: 60 });
        assert!(res.converged, "GMRES residual {}", res.residual);
        let f = net_force(&q, &res.x);
        let expect = 6.0 * std::f64::consts::PI * mu * radius;
        assert!(f[0].abs() < 0.05 * expect, "no lateral force: {f:?}");
        assert!(f[1].abs() < 0.05 * expect);
        // The plain Nyström rule (singular self-term excluded) carries an
        // O(h) quadrature bias, ~6% at 400 nodes.
        let rel = (f[2] - expect).abs() / expect;
        assert!(rel < 0.08, "drag {} vs Stokes law {expect} (rel {rel})", f[2]);
    }

    /// The drag error is quadrature-limited and must shrink as the surface
    /// is refined.
    #[test]
    fn stokes_drag_converges_with_refinement() {
        let mu = 1.0;
        let radius = 1.0;
        let expect = 6.0 * std::f64::consts::PI * mu * radius;
        let mut errs = Vec::new();
        for n in [100usize, 400] {
            let q = SurfaceQuadrature::sphere([0.0; 3], radius, n);
            let op = SingleLayerOperator::new(
                Stokes::new(mu),
                q.clone(),
                FmmOptions { order: 6, max_pts_per_leaf: 40, ..Default::default() },
            );
            let bc = rigid_body_velocity(&q, [0.0; 3], [0.0, 0.0, 1.0], [0.0; 3]);
            // 1e-3 residual suffices: the force comparison is dominated by
            // the quadrature bias (~12% at n=100, ~6% at n=400).
            let res = op.solve(&bc, GmresOptions { tol: 1e-3, max_iter: 250, restart: 60 });
            assert!(res.converged, "n={n}: residual {}", res.residual);
            let f = net_force(&q, &res.x);
            errs.push((f[2] - expect).abs() / expect);
        }
        assert!(
            errs[1] < errs[0],
            "drag error must decrease with refinement: {errs:?}"
        );
    }

    /// Two operators over the same quadrature share one cached plan: the
    /// second construction is a cache hit (no setup) and both produce
    /// bit-identical matvecs.
    #[test]
    fn plan_cache_reuse_across_operators() {
        let cache = PlanCache::unbounded();
        let q = SurfaceQuadrature::sphere([0.0; 3], 1.0, 300);
        let opts = FmmOptions { order: 4, max_pts_per_leaf: 40, ..Default::default() };
        let op1 = SingleLayerOperator::with_plan_cache(Laplace, q.clone(), opts, &cache);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let op2 = SingleLayerOperator::with_plan_cache(Laplace, q.clone(), opts, &cache);
        assert_eq!((cache.hits(), cache.misses()), (1, 1), "second build is a warm hit");
        let density: Vec<f64> = (0..300).map(|i| (i as f64 * 0.01).cos()).collect();
        assert_eq!(op1.apply(&density), op2.apply(&density));
    }

    #[test]
    fn rigid_body_velocity_rotation() {
        let q = SurfaceQuadrature::sphere([0.0; 3], 1.0, 10);
        let u = rigid_body_velocity(&q, [0.0; 3], [0.0; 3], [0.0, 0.0, 2.0]);
        // Ω = 2ẑ: u = Ω × r = (−2y, 2x, 0).
        for (j, p) in q.points.iter().enumerate() {
            assert!((u[3 * j] + 2.0 * p[1]).abs() < 1e-12);
            assert!((u[3 * j + 1] - 2.0 * p[0]).abs() < 1e-12);
            assert!(u[3 * j + 2].abs() < 1e-12);
        }
    }

    #[test]
    fn union_concatenates() {
        let a = SurfaceQuadrature::sphere([0.0; 3], 1.0, 10);
        let b = SurfaceQuadrature::sphere([3.0, 0.0, 0.0], 0.5, 20);
        let u = SurfaceQuadrature::union(&[a.clone(), b.clone()]);
        assert_eq!(u.len(), 30);
        assert!((u.area() - a.area() - b.area()).abs() < 1e-12);
    }
}
