//! 3-D complex FFT built from 1-D plans.

use crate::c64::C64;
use crate::fft1d::FftPlan;

/// A 3-D FFT over an `n0 × n1 × n2` row-major grid
/// (index `(i, j, k) → (i·n1 + j)·n2 + k`).
pub struct Fft3 {
    dims: [usize; 3],
    plans: [FftPlan; 3],
}

impl Fft3 {
    /// Plan for the given grid dimensions.
    pub fn new(dims: [usize; 3]) -> Self {
        Fft3 {
            dims,
            plans: [FftPlan::new(dims[0]), FftPlan::new(dims[1]), FftPlan::new(dims[2])],
        }
    }

    /// Grid dimensions.
    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    /// Total number of grid points.
    pub fn len(&self) -> usize {
        self.dims[0] * self.dims[1] * self.dims[2]
    }

    /// True when any dimension is zero (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// In-place forward transform (unnormalized).
    pub fn forward(&self, data: &mut [C64]) {
        self.apply(data, false);
    }

    /// In-place inverse transform, normalized by `1/(n0·n1·n2)`.
    pub fn inverse(&self, data: &mut [C64]) {
        self.apply(data, true);
        let inv = 1.0 / self.len() as f64;
        for v in data.iter_mut() {
            *v = v.scale(inv);
        }
    }

    /// In-place **unnormalized** inverse transform pruned to the output
    /// corner `[0, keep₀) × [0, keep₁) × [0, keep₂)`: pass lines whose
    /// results cannot reach the corner are skipped entirely. Entries
    /// outside the corner are left in an unspecified intermediate state —
    /// callers read only the corner (and normalize themselves). With
    /// `keep = dims` this computes the full unnormalized inverse.
    ///
    /// This is the classic pruned-FFT trick for convolution grids where
    /// only a sub-volume (here: the embedded surface cube) is read back.
    pub fn inverse_corner_unnormalized(&self, data: &mut [C64], keep: [usize; 3]) {
        assert_eq!(data.len(), self.len(), "buffer must match grid size");
        let [n0, n1, n2] = self.dims;
        debug_assert!(keep[0] <= n0 && keep[1] <= n1 && keep[2] <= n2);
        // Axis 2 (contiguous): every line feeds some kept k.
        for line in data.chunks_exact_mut(n2) {
            self.plans[2].inverse_unnormalized(line);
        }
        // Axis 1: lines are (i, k); only k < keep₂ can reach the corner.
        let mut buf = vec![C64::ZERO; n1];
        for i in 0..n0 {
            let slab = &mut data[i * n1 * n2..(i + 1) * n1 * n2];
            for k in 0..keep[2] {
                for j in 0..n1 {
                    buf[j] = slab[j * n2 + k];
                }
                self.plans[1].inverse_unnormalized(&mut buf);
                for j in 0..n1 {
                    slab[j * n2 + k] = buf[j];
                }
            }
        }
        // Axis 0: columns are (j, k); only j < keep₁, k < keep₂ matter.
        let stride = n1 * n2;
        let mut buf0 = vec![C64::ZERO; n0];
        for j in 0..keep[1] {
            for k in 0..keep[2] {
                let jk = j * n2 + k;
                for i in 0..n0 {
                    buf0[i] = data[i * stride + jk];
                }
                self.plans[0].inverse_unnormalized(&mut buf0);
                for i in 0..n0 {
                    data[i * stride + jk] = buf0[i];
                }
            }
        }
    }

    fn apply(&self, data: &mut [C64], inverse: bool) {
        assert_eq!(data.len(), self.len(), "buffer must match grid size");
        let [n0, n1, n2] = self.dims;
        let run = |plan: &FftPlan, line: &mut [C64]| {
            if inverse {
                plan.inverse_unnormalized(line)
            } else {
                plan.forward(line)
            }
        };
        // Forward inputs are typically zero-padded embeddings (a cube
        // surface in a (2p)³ volume): most lines of the first two passes
        // are identically zero, and the transform of a zero line is a zero
        // line — skip them. (Inverse inputs are dense spectra; the scan
        // would be pure overhead.)
        let live = |line: &[C64]| inverse || line.iter().any(|v| v.re != 0.0 || v.im != 0.0);
        // Axis 2 (contiguous lines).
        for line in data.chunks_exact_mut(n2) {
            if live(line) {
                run(&self.plans[2], line);
            }
        }
        // Axis 1 (stride n2 within each i-slab).
        let mut buf = vec![C64::ZERO; n1];
        for i in 0..n0 {
            let slab = &mut data[i * n1 * n2..(i + 1) * n1 * n2];
            for k in 0..n2 {
                for j in 0..n1 {
                    buf[j] = slab[j * n2 + k];
                }
                if live(&buf) {
                    run(&self.plans[1], &mut buf);
                    for j in 0..n1 {
                        slab[j * n2 + k] = buf[j];
                    }
                }
            }
        }
        // Axis 0 (stride n1*n2).
        let stride = n1 * n2;
        let mut buf0 = vec![C64::ZERO; n0];
        for jk in 0..stride {
            for i in 0..n0 {
                buf0[i] = data[i * stride + jk];
            }
            if live(&buf0) {
                run(&self.plans[0], &mut buf0);
                for i in 0..n0 {
                    data[i * stride + jk] = buf0[i];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(dims: [usize; 3]) -> Vec<C64> {
        let n = dims[0] * dims[1] * dims[2];
        (0..n)
            .map(|i| C64::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos() - 0.4))
            .collect()
    }

    fn naive_dft3(x: &[C64], dims: [usize; 3]) -> Vec<C64> {
        let [n0, n1, n2] = dims;
        let mut out = vec![C64::ZERO; x.len()];
        let w = |num: usize, den: usize| {
            C64::cis(-2.0 * std::f64::consts::PI * (num % den) as f64 / den as f64)
        };
        for a in 0..n0 {
            for b in 0..n1 {
                for c in 0..n2 {
                    let mut s = C64::ZERO;
                    for i in 0..n0 {
                        for j in 0..n1 {
                            for k in 0..n2 {
                                let ww = w(a * i, n0) * w(b * j, n1) * w(c * k, n2);
                                s = s.mul_add(ww, x[(i * n1 + j) * n2 + k]);
                            }
                        }
                    }
                    out[(a * n1 + b) * n2 + c] = s;
                }
            }
        }
        out
    }

    #[test]
    fn matches_naive_3d() {
        for dims in [[2usize, 3, 4], [4, 4, 4], [3, 5, 2], [1, 6, 4]] {
            let x = grid(dims);
            let mut y = x.clone();
            Fft3::new(dims).forward(&mut y);
            let expect = naive_dft3(&x, dims);
            for (u, v) in y.iter().zip(&expect) {
                assert!((*u - *v).abs() < 1e-9, "{dims:?}");
            }
        }
    }

    #[test]
    fn roundtrip() {
        for dims in [[4usize, 4, 4], [8, 8, 8], [2, 7, 5], [12, 12, 12]] {
            let x = grid(dims);
            let mut y = x.clone();
            let plan = Fft3::new(dims);
            plan.forward(&mut y);
            plan.inverse(&mut y);
            for (u, v) in y.iter().zip(&x) {
                assert!((*u - *v).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn convolution_theorem_3d() {
        // Circular convolution of two random grids: FFT path == direct path.
        let dims = [4usize, 4, 4];
        let (n0, n1, n2) = (dims[0], dims[1], dims[2]);
        let a = grid(dims);
        let b: Vec<C64> = grid(dims).iter().map(|v| v.conj().scale(0.5)).collect();
        // Direct circular convolution.
        let mut direct = vec![C64::ZERO; a.len()];
        for i in 0..n0 {
            for j in 0..n1 {
                for k in 0..n2 {
                    let mut s = C64::ZERO;
                    for p in 0..n0 {
                        for q in 0..n1 {
                            for r in 0..n2 {
                                let ai = (p * n1 + q) * n2 + r;
                                let bi = (((i + n0 - p) % n0) * n1 + ((j + n1 - q) % n1)) * n2
                                    + ((k + n2 - r) % n2);
                                s = s.mul_add(a[ai], b[bi]);
                            }
                        }
                    }
                    direct[(i * n1 + j) * n2 + k] = s;
                }
            }
        }
        // FFT path.
        let plan = Fft3::new(dims);
        let mut fa = a.clone();
        plan.forward(&mut fa);
        let mut fb = b.clone();
        plan.forward(&mut fb);
        let mut fc: Vec<C64> = fa.iter().zip(&fb).map(|(x, y)| *x * *y).collect();
        plan.inverse(&mut fc);
        for (u, v) in fc.iter().zip(&direct) {
            assert!((*u - *v).abs() < 1e-9);
        }
    }
}
