//! Mixed-radix 1-D complex FFT with a Bluestein fallback.
//!
//! The M2L grids have side `2p` with `p` the surface order, so the lengths
//! that actually occur are small and smooth (8, 12, 16, 20, …). The
//! recursive Cooley–Tukey below handles any smooth length directly and
//! falls back to Bluestein's algorithm for lengths with a prime factor
//! larger than 13, making the planner total.

use crate::c64::C64;

/// A reusable FFT plan for a fixed length.
pub struct FftPlan {
    n: usize,
    /// Twiddle table: `w[t] = e^{-2πi t / n}` (forward sign).
    twiddle: Vec<C64>,
    /// Prime factorization of `n`, smallest first.
    factors: Vec<usize>,
    /// Bluestein machinery when `n` has a prime factor > [`MAX_DIRECT_RADIX`].
    bluestein: Option<Box<Bluestein>>,
}

/// Largest prime handled by direct mixed-radix butterflies.
const MAX_DIRECT_RADIX: usize = 13;

struct Bluestein {
    /// Padded power-of-two length `m ≥ 2n − 1`.
    m: usize,
    /// Chirp `a_k = e^{-πi k²/n}`.
    chirp: Vec<C64>,
    /// FFT of the zero-padded conjugate chirp, premultiplied by `1/m`.
    bhat: Vec<C64>,
    /// Power-of-two sub-plan of length `m`.
    sub: FftPlan,
}

impl FftPlan {
    /// Plan an FFT of length `n` (`n ≥ 1`).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "FFT length must be positive");
        let factors = factorize(n);
        let bluestein = if factors.iter().any(|&f| f > MAX_DIRECT_RADIX) {
            Some(Box::new(Bluestein::new(n)))
        } else {
            None
        };
        let twiddle = (0..n)
            .map(|t| C64::cis(-2.0 * std::f64::consts::PI * t as f64 / n as f64))
            .collect();
        FftPlan { n, twiddle, factors, bluestein }
    }

    /// Transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the plan length is 1.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// In-place forward transform (`X_k = Σ_j x_j e^{-2πi jk/n}`),
    /// unnormalized.
    pub fn forward(&self, data: &mut [C64]) {
        assert_eq!(data.len(), self.n, "buffer length must match plan");
        if let Some(b) = &self.bluestein {
            b.run(data, false);
            return;
        }
        self.run_mixed_radix(data, false);
    }

    /// In-place inverse transform, normalized by `1/n`
    /// (`forward` then `inverse` is the identity).
    pub fn inverse(&self, data: &mut [C64]) {
        assert_eq!(data.len(), self.n, "buffer length must match plan");
        if let Some(b) = &self.bluestein {
            b.run(data, true);
        } else {
            self.run_mixed_radix(data, true);
        }
        let inv = 1.0 / self.n as f64;
        for v in data.iter_mut() {
            *v = v.scale(inv);
        }
    }

    /// Unnormalized inverse (conjugate-exponent) transform.
    pub fn inverse_unnormalized(&self, data: &mut [C64]) {
        assert_eq!(data.len(), self.n, "buffer length must match plan");
        if let Some(b) = &self.bluestein {
            b.run(data, true);
        } else {
            self.run_mixed_radix(data, true);
        }
    }

    /// Dispatch to [`FftPlan::rec`] with a single scratch buffer — on the
    /// stack for the short lines of volume grids (an FMM M2L line is
    /// `2p ≤ 64` points, where a per-call heap allocation would cost more
    /// than the butterflies).
    fn run_mixed_radix(&self, data: &mut [C64], inverse: bool) {
        if self.n <= 64 {
            let mut buf = [C64::ZERO; 64];
            self.rec(data, &mut buf[..self.n], 0, inverse);
        } else {
            let mut buf = vec![C64::ZERO; self.n];
            self.rec(data, &mut buf, 0, inverse);
        }
    }

    /// Twiddle lookup with direction. `t` is taken modulo `n` by the caller.
    #[inline]
    fn w(&self, t: usize, inverse: bool) -> C64 {
        let w = self.twiddle[t % self.n];
        if inverse {
            w.conj()
        } else {
            w
        }
    }

    /// Recursive decimation-in-time Cooley–Tukey on a contiguous slice.
    /// `fdepth` indexes into the factor list (the product of the remaining
    /// factors equals `data.len()`). `scratch` is a caller-provided buffer
    /// of the same length; recursion ping-pongs the two (a child uses its
    /// parent's `data` block as scratch), so no level allocates.
    fn rec(&self, data: &mut [C64], scratch: &mut [C64], fdepth: usize, inverse: bool) {
        let len = data.len();
        if len == 1 {
            return;
        }
        let r = self.factors[fdepth];
        let m = len / r;
        // Gather the r interleaved subsequences into contiguous blocks and
        // transform each recursively.
        for q in 0..r {
            for k in 0..m {
                scratch[q * m + k] = data[q + k * r];
            }
        }
        for q in 0..r {
            self.rec(
                &mut scratch[q * m..(q + 1) * m],
                &mut data[q * m..(q + 1) * m],
                fdepth + 1,
                inverse,
            );
        }
        // Combine: X[k + p·m] = Σ_q w_len^{q(k+p·m)} A_q[k]; the shared
        // length-n table is indexed by scaling with n/len.
        let scale = self.n / len;
        for p in 0..r {
            for k in 0..m {
                let mut acc = C64::ZERO;
                for q in 0..r {
                    let t = (q * (k + p * m)) % len;
                    acc = acc.mul_add(self.w(t * scale, inverse), scratch[q * m + k]);
                }
                data[k + p * m] = acc;
            }
        }
    }
}

impl Bluestein {
    fn new(n: usize) -> Self {
        let m = (2 * n - 1).next_power_of_two();
        let mut chirp = Vec::with_capacity(n);
        for k in 0..n {
            // k² mod 2n to keep the angle argument small and exact.
            let k2 = (k * k) % (2 * n);
            chirp.push(C64::cis(-std::f64::consts::PI * k2 as f64 / n as f64));
        }
        let sub = FftPlan::new(m);
        let mut b = vec![C64::ZERO; m];
        b[0] = chirp[0].conj();
        for k in 1..n {
            b[k] = chirp[k].conj();
            b[m - k] = chirp[k].conj();
        }
        sub.forward(&mut b);
        let invm = 1.0 / m as f64;
        for v in &mut b {
            *v = v.scale(invm);
        }
        Bluestein { m, chirp, bhat: b, sub }
    }

    /// DFT by chirp-z: x_k ← chirp-modulate, convolve with conjugate chirp,
    /// demodulate. `inverse` conjugates the chirp (unnormalized inverse).
    fn run(&self, data: &mut [C64], inverse: bool) {
        let n = data.len();
        let mut a = vec![C64::ZERO; self.m];
        for k in 0..n {
            let c = if inverse { self.chirp[k].conj() } else { self.chirp[k] };
            a[k] = data[k] * c;
        }
        self.sub.forward(&mut a);
        if inverse {
            // Convolution kernel must also be conjugated for the inverse
            // transform; conj(bhat) corresponds to the reversed spectrum,
            // so build it on the fly from the forward spectrum.
            for (av, bv) in a.iter_mut().zip(self.bhat.iter()) {
                // conj(FFT(b)) = FFT(conj(b) reversed); here b is symmetric
                // so conjugating the spectrum is exact.
                *av = *av * bv.conj();
            }
        } else {
            for (av, bv) in a.iter_mut().zip(self.bhat.iter()) {
                *av = *av * *bv;
            }
        }
        self.sub.inverse_unnormalized(&mut a);
        for k in 0..n {
            let c = if inverse { self.chirp[k].conj() } else { self.chirp[k] };
            data[k] = a[k] * c;
        }
    }
}

/// Prime factorization, smallest factors first.
fn factorize(mut n: usize) -> Vec<usize> {
    let mut f = Vec::new();
    let mut d = 2;
    while d * d <= n {
        while n % d == 0 {
            f.push(d);
            n /= d;
        }
        d += 1;
    }
    if n > 1 {
        f.push(n);
    }
    if f.is_empty() {
        f.push(1);
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(x: &[C64], inverse: bool) -> Vec<C64> {
        let n = x.len();
        let sign = if inverse { 1.0 } else { -1.0 };
        (0..n)
            .map(|k| {
                let mut s = C64::ZERO;
                for (j, &v) in x.iter().enumerate() {
                    let w = C64::cis(sign * 2.0 * std::f64::consts::PI * (j * k % n) as f64 / n as f64);
                    s = s.mul_add(w, v);
                }
                s
            })
            .collect()
    }

    fn ramp(n: usize) -> Vec<C64> {
        (0..n).map(|i| C64::new((i as f64).sin() + 0.3, (i as f64 * 0.7).cos())).collect()
    }

    fn assert_close(a: &[C64], b: &[C64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((*x - *y).abs() < tol, "{x:?} vs {y:?}");
        }
    }

    #[test]
    fn matches_naive_dft_smooth_sizes() {
        for n in [1usize, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16, 20, 24, 27, 32, 36, 48] {
            let x = ramp(n);
            let mut y = x.clone();
            FftPlan::new(n).forward(&mut y);
            assert_close(&y, &naive_dft(&x, false), 1e-9 * n as f64);
        }
    }

    #[test]
    fn matches_naive_dft_prime_sizes_via_bluestein() {
        for n in [17usize, 19, 23, 29, 31, 37, 97] {
            let x = ramp(n);
            let mut y = x.clone();
            let plan = FftPlan::new(n);
            assert!(plan.bluestein.is_some(), "n={n} should use Bluestein");
            plan.forward(&mut y);
            assert_close(&y, &naive_dft(&x, false), 1e-8 * n as f64);
        }
    }

    #[test]
    fn forward_inverse_roundtrip() {
        for n in [1usize, 4, 6, 12, 16, 17, 30, 64, 100] {
            let x = ramp(n);
            let mut y = x.clone();
            let plan = FftPlan::new(n);
            plan.forward(&mut y);
            plan.inverse(&mut y);
            assert_close(&y, &x, 1e-10 * (n as f64 + 1.0));
        }
    }

    #[test]
    fn parseval() {
        let n = 24;
        let x = ramp(n);
        let mut y = x.clone();
        FftPlan::new(n).forward(&mut y);
        let ex: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let ey: f64 = y.iter().map(|v| v.norm_sqr()).sum();
        assert!((ey - n as f64 * ex).abs() < 1e-9 * ey.abs());
    }

    #[test]
    fn impulse_gives_flat_spectrum() {
        let n = 12;
        let mut x = vec![C64::ZERO; n];
        x[0] = C64::ONE;
        FftPlan::new(n).forward(&mut x);
        for v in &x {
            assert!((*v - C64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn linearity() {
        let n = 20;
        let a = ramp(n);
        let b: Vec<C64> = (0..n).map(|i| C64::new(i as f64, -(i as f64) * 0.5)).collect();
        let plan = FftPlan::new(n);
        let mut fa = a.clone();
        plan.forward(&mut fa);
        let mut fb = b.clone();
        plan.forward(&mut fb);
        let mut fab: Vec<C64> = a.iter().zip(&b).map(|(x, y)| *x + y.scale(2.0)).collect();
        plan.forward(&mut fab);
        for i in 0..n {
            let expect = fa[i] + fb[i].scale(2.0);
            assert!((fab[i] - expect).abs() < 1e-9);
        }
    }
}
