//! A minimal `f64` complex number.

use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Complex number with `f64` parts. `#[repr(C)]` so slices of `C64` can be
/// reinterpreted as interleaved re/im buffers if ever needed.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[repr(C)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// Zero.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };

    /// Construct from parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// A purely real value.
    #[inline]
    pub const fn real(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// `e^{iθ}`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        C64 { re: c, im: s }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        C64 { re: self.re, im: -self.im }
    }

    /// Squared modulus.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Multiply by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        C64 { re: self.re * s, im: self.im * s }
    }

    /// Fused multiply-accumulate: `self + a * b`.
    #[inline]
    pub fn mul_add(self, a: C64, b: C64) -> Self {
        C64 {
            re: self.re + a.re * b.re - a.im * b.im,
            im: self.im + a.re * b.im + a.im * b.re,
        }
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, o: C64) -> C64 {
        C64 { re: self.re + o.re, im: self.im + o.im }
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, o: C64) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, o: C64) -> C64 {
        C64 { re: self.re - o.re, im: self.im - o.im }
    }
}

impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, o: C64) {
        self.re -= o.re;
        self.im -= o.im;
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, o: C64) -> C64 {
        C64 {
            re: self.re * o.re - self.im * o.im,
            im: self.re * o.im + self.im * o.re,
        }
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, o: C64) {
        *self = *self * o;
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64 { re: -self.re, im: -self.im }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(3.0, -1.0);
        assert_eq!(a + b, C64::new(4.0, 1.0));
        assert_eq!(a - b, C64::new(-2.0, 3.0));
        assert_eq!(a * b, C64::new(5.0, 5.0));
        assert_eq!(-a, C64::new(-1.0, -2.0));
        assert_eq!(a.conj(), C64::new(1.0, -2.0));
        assert_eq!(a.norm_sqr(), 5.0);
    }

    #[test]
    fn cis_unit_circle() {
        let w = C64::cis(std::f64::consts::FRAC_PI_2);
        assert!((w.re).abs() < 1e-15);
        assert!((w.im - 1.0).abs() < 1e-15);
        assert!((C64::cis(0.3).abs() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn mul_add_matches_separate_ops() {
        let acc = C64::new(0.5, -0.25);
        let a = C64::new(2.0, 1.0);
        let b = C64::new(-1.0, 3.0);
        let r = acc.mul_add(a, b);
        let expect = acc + a * b;
        assert!((r.re - expect.re).abs() < 1e-15);
        assert!((r.im - expect.im).abs() < 1e-15);
    }
}
