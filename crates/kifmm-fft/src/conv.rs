//! Hadamard (frequency-space) product helpers.
//!
//! An FFT-accelerated M2L translation is, per target box, an accumulation
//! of `K̂_offset · φ̂_source` products over the V list. These two tight
//! loops are the hottest lines of the `DownV` phase, so they live here and
//! are shared by the benches.

use crate::c64::C64;

/// `out[i] = a[i] * b[i]`.
#[inline]
pub fn pointwise_mul(out: &mut [C64], a: &[C64], b: &[C64]) {
    debug_assert_eq!(out.len(), a.len());
    debug_assert_eq!(out.len(), b.len());
    for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
        *o = *x * *y;
    }
}

/// `out[i] += a[i] * b[i]` — the M2L Hadamard accumulation
/// (6 real multiplies + 4 adds per element; see the flop model in
/// `kifmm-core`).
#[inline]
pub fn pointwise_mul_add(out: &mut [C64], a: &[C64], b: &[C64]) {
    debug_assert_eq!(out.len(), a.len());
    debug_assert_eq!(out.len(), b.len());
    for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
        *o = o.mul_add(*x, *y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_and_mul_add() {
        let a = [C64::new(1.0, 1.0), C64::new(2.0, 0.0)];
        let b = [C64::new(0.0, 1.0), C64::new(-1.0, 3.0)];
        let mut out = [C64::new(10.0, 0.0); 2];
        pointwise_mul(&mut out, &a, &b);
        assert_eq!(out[0], C64::new(-1.0, 1.0));
        assert_eq!(out[1], C64::new(-2.0, 6.0));
        pointwise_mul_add(&mut out, &a, &b);
        assert_eq!(out[0], C64::new(-2.0, 2.0));
        assert_eq!(out[1], C64::new(-4.0, 12.0));
    }
}
