//! FFT substrate for `kifmm-rs`.
//!
//! The SC'03 kernel-independent FMM accelerates its M2L translations with
//! local FFTs (the paper used FFTW): equivalent densities live on regular
//! cube-surface grids, so a multipole-to-local interaction is a discrete
//! correlation that becomes a Hadamard product in frequency space. This
//! crate provides the transforms from scratch:
//!
//! * [`C64`] — a minimal complex number type,
//! * [`FftPlan`] — a cached mixed-radix (any smooth factor, Bluestein
//!   fallback for large primes) complex FFT of any length,
//! * [`Fft3`] — 3-D transforms built from 1-D plans,
//! * [`conv`] — Hadamard-product helpers used by the M2L operator.

pub mod c64;
pub mod conv;
pub mod fft1d;
pub mod fft3;

pub use c64::C64;
pub use conv::{pointwise_mul, pointwise_mul_add};
pub use fft1d::FftPlan;
pub use fft3::Fft3;
