//! Property-based tests for the FFT substrate.

use kifmm_fft::{C64, Fft3, FftPlan};
use kifmm_testkit::{check, prop_assert, Gen};

fn signal(g: &mut Gen, len: usize) -> Vec<C64> {
    (0..len).map(|_| C64::new(g.f64(-5.0, 5.0), g.f64(-5.0, 5.0))).collect()
}

/// Roundtrip for every length 1..=64 (smooth, prime, mixed).
#[test]
fn roundtrip_any_length() {
    check("roundtrip_any_length", 30, |g| {
        let n = g.usize(1, 65);
        let seed = g.u64_range(0, 100);
        let x: Vec<C64> = (0..n)
            .map(|i| {
                let t = (i as u64).wrapping_mul(seed + 1) as f64;
                C64::new((t * 0.01).sin(), (t * 0.007).cos())
            })
            .collect();
        let plan = FftPlan::new(n);
        let mut y = x.clone();
        plan.forward(&mut y);
        plan.inverse(&mut y);
        for (a, b) in y.iter().zip(&x) {
            prop_assert!((*a - *b).abs() < 1e-9 * (n as f64 + 1.0));
        }
    });
}

/// Parseval for random signals.
#[test]
fn parseval() {
    check("parseval", 30, |g| {
        let x = signal(g, 24);
        let plan = FftPlan::new(24);
        let mut y = x.clone();
        plan.forward(&mut y);
        let ex: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let ey: f64 = y.iter().map(|v| v.norm_sqr()).sum();
        prop_assert!((ey - 24.0 * ex).abs() < 1e-8 * (1.0 + ey));
    });
}

/// Time shift ⇔ spectral phase ramp.
#[test]
fn shift_theorem() {
    check("shift_theorem", 30, |g| {
        let n = 16;
        let x = signal(g, n);
        let shift = g.usize(0, n);
        let plan = FftPlan::new(n);
        let mut fx = x.clone();
        plan.forward(&mut fx);
        let shifted: Vec<C64> = (0..n).map(|i| x[(i + shift) % n]).collect();
        let mut fs = shifted;
        plan.forward(&mut fs);
        for (k, (a, b)) in fs.iter().zip(&fx).enumerate() {
            let phase = C64::cis(2.0 * std::f64::consts::PI * (k * shift % n) as f64 / n as f64);
            let expect = *b * phase;
            prop_assert!((*a - expect).abs() < 1e-8, "bin {k}");
        }
    });
}

/// 3-D convolution theorem on random grids.
#[test]
fn convolution_theorem() {
    check("convolution_theorem", 30, |g| {
        let a = signal(g, 27);
        let b = signal(g, 27);
        let dims = [3usize, 3, 3];
        let plan = Fft3::new(dims);
        let mut fa = a.clone();
        plan.forward(&mut fa);
        let mut fb = b.clone();
        plan.forward(&mut fb);
        let mut prod: Vec<C64> = fa.iter().zip(&fb).map(|(x, y)| *x * *y).collect();
        plan.inverse(&mut prod);
        // Direct circular convolution.
        for i in 0..3 {
            for j in 0..3 {
                for k in 0..3 {
                    let mut s = C64::ZERO;
                    for p in 0..3 {
                        for q in 0..3 {
                            for r in 0..3 {
                                let ai = (p * 3 + q) * 3 + r;
                                let bi = (((i + 3 - p) % 3) * 3 + ((j + 3 - q) % 3)) * 3
                                    + ((k + 3 - r) % 3);
                                s = s.mul_add(a[ai], b[bi]);
                            }
                        }
                    }
                    let got = prod[(i * 3 + j) * 3 + k];
                    prop_assert!((got - s).abs() < 1e-8 * (1.0 + s.abs()));
                }
            }
        }
    });
}
