//! Round-trip the chrome-trace exporter through the hand-rolled JSON
//! parser in `kifmm-testkit` and check the structural invariants the
//! viewer relies on: every span event is well-formed, durations are
//! non-negative, and spans are *strictly nested* per rank (a child's
//! wall interval lies inside its parent's — the RAII guards make this
//! true by construction, and the export must preserve it).

use kifmm_testkit::json::Json;
use kifmm_trace::{Counter, Tracer};

/// Build a tracer with a realistic little span forest on two ranks.
fn traced_run() -> Tracer {
    let t = Tracer::enabled();
    for rank in 0..2usize {
        let rt = t.rank(rank);
        rt.async_begin("dens-exchange", 1);
        {
            let _up = rt.span("Up", "Up");
            {
                let _s2m = rt.span("Up", "s2m");
            }
            {
                let _m2m = rt.span("Up", "m2m").with_n(3);
            }
        }
        rt.async_end("dens-exchange", 1);
        {
            let _v = rt.span("DownV", "m2l").with_n(2);
        }
        rt.add(Counter::Flops, 1000 + rank as u64);
        rt.add(Counter::BytesSent, 64);
    }
    t
}

/// Collected "X" events for one tid: (ts, dur, name), in document order.
fn spans_by_tid(doc: &Json) -> Vec<(f64, Vec<(f64, f64, String)>)> {
    let events = doc.get("traceEvents").and_then(Json::as_arr).expect("traceEvents");
    let mut by_tid: Vec<(f64, Vec<(f64, f64, String)>)> = Vec::new();
    for ev in events {
        if ev.get("ph").and_then(Json::as_str) != Some("X") {
            continue;
        }
        let tid = ev.get("tid").and_then(Json::as_f64).expect("tid");
        let ts = ev.get("ts").and_then(Json::as_f64).expect("ts");
        let dur = ev.get("dur").and_then(Json::as_f64).expect("dur");
        let name = ev.get("name").and_then(Json::as_str).expect("name").to_string();
        match by_tid.iter_mut().find(|(t, _)| *t == tid) {
            Some((_, v)) => v.push((ts, dur, name)),
            None => by_tid.push((tid, vec![(ts, dur, name)])),
        }
    }
    by_tid
}

#[test]
fn export_is_valid_json_with_nested_nonnegative_spans() {
    let t = traced_run();
    let text = t.chrome_trace_json();
    let doc = Json::parse(&text).expect("exporter must emit valid JSON");

    let by_tid = spans_by_tid(&doc);
    assert_eq!(by_tid.len(), 2, "one span track per rank");

    for (tid, spans) in &by_tid {
        assert_eq!(spans.len(), 4, "rank {tid}: Up, s2m, m2m, m2l");
        // Non-negative timestamps and durations.
        for (ts, dur, name) in spans {
            assert!(*ts >= 0.0 && *dur >= 0.0, "rank {tid} span {name}: ts={ts} dur={dur}");
        }
        // Strict nesting: spans are exported in open (pre-order) order, so
        // walking with an interval stack must never find a span that
        // straddles its enclosing span's boundary.
        let mut stack: Vec<(f64, f64)> = Vec::new();
        // Tolerate 1 ns of float round-off from the µs conversion.
        let eps = 1e-3;
        for (ts, dur, name) in spans {
            while let Some(&(_, pend)) = stack.last() {
                if *ts >= pend - eps {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&(pstart, pend)) = stack.last() {
                assert!(
                    *ts >= pstart - eps && ts + dur <= pend + eps,
                    "rank {tid} span {name} [{ts}, {}] straddles parent [{pstart}, {pend}]",
                    ts + dur
                );
            }
            stack.push((*ts, ts + dur));
        }
    }
}

#[test]
fn export_carries_metadata_async_and_counters() {
    let t = traced_run();
    let doc = Json::parse(&t.chrome_trace_json()).unwrap();
    let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();

    let mut thread_names = Vec::new();
    let mut async_ids = Vec::new();
    let mut counter_flops = Vec::new();
    for ev in events {
        match ev.get("ph").and_then(Json::as_str) {
            Some("M") if ev.get("name").and_then(Json::as_str) == Some("thread_name") => {
                let name = ev
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .unwrap()
                    .to_string();
                thread_names.push(name);
            }
            Some("b") | Some("e") => {
                async_ids.push(ev.get("id").and_then(Json::as_str).unwrap().to_string());
            }
            Some("I") => {
                let f = ev
                    .get("args")
                    .and_then(|a| a.get("flops"))
                    .and_then(Json::as_f64)
                    .unwrap();
                counter_flops.push(f);
            }
            _ => {}
        }
    }
    assert_eq!(thread_names, vec!["rank 0", "rank 1"]);
    // Async ids are namespaced per rank so bars never pair across ranks.
    assert_eq!(async_ids, vec!["r0-1", "r0-1", "r1-1", "r1-1"]);
    assert_eq!(counter_flops, vec![1000.0, 1001.0]);
}

#[test]
fn disabled_tracer_exports_empty_valid_document() {
    let doc = Json::parse(&Tracer::disabled().chrome_trace_json()).unwrap();
    assert_eq!(doc.get("traceEvents").and_then(Json::as_arr).unwrap().len(), 0);
}
