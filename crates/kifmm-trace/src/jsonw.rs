//! Minimal JSON writing helpers (hermetic build: no serde).
//!
//! Only what the two exporters need: string escaping and finite-number
//! formatting. Rust's shortest-round-trip `f64` display is valid JSON for
//! every finite value; non-finite values are clamped to `0` so an
//! exporter can never emit an unparseable document.

/// Append `s` as a JSON string literal (with quotes) to `out`.
pub(crate) fn push_str_lit(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a finite `f64` (non-finite clamps to 0).
pub(crate) fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` gives the shortest representation that round-trips; it
        // always contains a '.' or exponent, never "inf"/"NaN" here.
        out.push_str(&format!("{v:?}"));
    } else {
        out.push('0');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut s = String::new();
        push_str_lit(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn clamps_non_finite() {
        let mut s = String::new();
        push_f64(&mut s, f64::INFINITY);
        push_f64(&mut s, f64::NAN);
        assert_eq!(s, "00");
        s.clear();
        push_f64(&mut s, 1.5);
        assert_eq!(s, "1.5");
    }
}
