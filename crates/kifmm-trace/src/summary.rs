//! The flat `BENCH_*.json` summary schema.
//!
//! One document per benchmark configuration, designed so a plot script
//! (or `scripts/verify.sh`) can consume a perf trajectory without parsing
//! human tables:
//!
//! ```json
//! {
//!   "schema": "kifmm-bench-v1",
//!   "bench": "parallel_scaling",
//!   "n": 40000, "order": 6, "ranks": 4, "tree_depth": 5,
//!   "phases": {
//!     "Up":    {"seconds": 0.81, "flops": 123456, "gflops": 0.15,
//!               "messages": 0,  "bytes": 0},
//!     "Comm":  {"seconds": 0.02, "flops": 0,      "gflops": 0.0,
//!               "messages": 48, "bytes": 1048000},
//!     ...
//!   },
//!   "total_seconds": 1.9, "total_flops": 456789, "gflops": 0.24,
//!   "comm": {"bytes_sent": 1048576, "messages_sent": 96},
//!   "extra": {"iterations": 1}
//! }
//! ```
//!
//! `phases` keys are the paper's seven stages in reporting order; the
//! per-phase `gflops` rate is `flops / seconds / 1e9` (0 when the phase
//! took no measurable time). Seconds are whatever clock the producer
//! charged (thread-CPU for the virtual-rank harness — see
//! `kifmm-core::stats`).

use crate::jsonw::{push_f64, push_str_lit};
use std::io;
use std::path::{Path, PathBuf};

/// Schema identifier embedded in every document.
pub const SCHEMA: &str = "kifmm-bench-v1";

/// One phase line of the summary.
#[derive(Clone, Debug, Default)]
pub struct PhaseLine {
    /// Phase name (`"Up"`, `"Comm"`, …).
    pub name: String,
    /// Seconds charged to the phase.
    pub seconds: f64,
    /// Counted flops charged to the phase.
    pub flops: u64,
    /// Messages sent while work was charged to the phase (the
    /// comm-regression gate reads these — O(peers), never O(boxes)).
    pub messages: u64,
    /// Bytes sent while work was charged to the phase.
    pub bytes: u64,
}

/// A complete `BENCH_*.json` document.
#[derive(Clone, Debug)]
pub struct BenchSummary {
    /// Benchmark name; the artifact file is `BENCH_<bench>.json`.
    pub bench: String,
    /// Global particle count.
    pub n: usize,
    /// Surface order `p`.
    pub order: usize,
    /// Virtual rank count.
    pub ranks: usize,
    /// Octree depth of the run.
    pub tree_depth: usize,
    /// Per-phase accounting, in reporting order.
    pub phases: Vec<PhaseLine>,
    /// Bytes pushed through the message-passing substrate.
    pub comm_bytes: u64,
    /// Messages pushed through the message-passing substrate.
    pub comm_messages: u64,
    /// Freeform numeric extras (`iterations`, model parameters, …).
    pub extra: Vec<(String, f64)>,
}

impl BenchSummary {
    /// Total seconds across phases.
    pub fn total_seconds(&self) -> f64 {
        self.phases.iter().map(|p| p.seconds).sum()
    }

    /// Total flops across phases.
    pub fn total_flops(&self) -> u64 {
        self.phases.iter().map(|p| p.flops).sum()
    }

    /// Serialize to the `kifmm-bench-v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut o = String::with_capacity(1 << 10);
        o.push_str("{\n  \"schema\":");
        push_str_lit(&mut o, SCHEMA);
        o.push_str(",\n  \"bench\":");
        push_str_lit(&mut o, &self.bench);
        o.push_str(&format!(
            ",\n  \"n\":{},\n  \"order\":{},\n  \"ranks\":{},\n  \"tree_depth\":{}",
            self.n, self.order, self.ranks, self.tree_depth
        ));
        o.push_str(",\n  \"phases\":{");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push_str("\n    ");
            push_str_lit(&mut o, &p.name);
            o.push_str(":{\"seconds\":");
            push_f64(&mut o, p.seconds);
            o.push_str(&format!(",\"flops\":{},\"gflops\":", p.flops));
            push_f64(&mut o, rate(p.flops, p.seconds));
            o.push_str(&format!(",\"messages\":{},\"bytes\":{}", p.messages, p.bytes));
            o.push('}');
        }
        o.push_str("\n  }");
        let (ts, tf) = (self.total_seconds(), self.total_flops());
        o.push_str(",\n  \"total_seconds\":");
        push_f64(&mut o, ts);
        o.push_str(&format!(",\n  \"total_flops\":{tf},\n  \"gflops\":"));
        push_f64(&mut o, rate(tf, ts));
        o.push_str(&format!(
            ",\n  \"comm\":{{\"bytes_sent\":{},\"messages_sent\":{}}}",
            self.comm_bytes, self.comm_messages
        ));
        o.push_str(",\n  \"extra\":{");
        for (i, (k, v)) in self.extra.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            push_str_lit(&mut o, k);
            o.push(':');
            push_f64(&mut o, *v);
        }
        o.push_str("}\n}\n");
        o
    }

    /// Write `BENCH_<bench>.json` into `dir` (created if missing) and
    /// return the artifact path.
    pub fn write_to(&self, dir: impl AsRef<Path>) -> io::Result<PathBuf> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.bench));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

fn rate(flops: u64, seconds: f64) -> f64 {
    if seconds > 0.0 {
        flops as f64 / seconds / 1e9
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchSummary {
        BenchSummary {
            bench: "unit".into(),
            n: 100,
            order: 4,
            ranks: 2,
            tree_depth: 3,
            phases: vec![
                PhaseLine { name: "Up".into(), seconds: 0.5, flops: 1_000_000_000, ..Default::default() },
                PhaseLine { name: "Comm".into(), messages: 12, bytes: 3456, ..Default::default() },
            ],
            comm_bytes: 42,
            comm_messages: 7,
            extra: vec![("iterations".into(), 3.0)],
        }
    }

    #[test]
    fn totals_and_rates() {
        let s = sample();
        assert_eq!(s.total_flops(), 1_000_000_000);
        assert!((s.total_seconds() - 0.5).abs() < 1e-15);
        let j = s.to_json();
        assert!(j.contains("\"gflops\":2.0"), "{j}");
        assert!(j.contains("\"bytes_sent\":42"));
        assert!(j.contains("\"messages\":12"), "{j}");
        assert!(j.contains("\"bytes\":3456"), "{j}");
        assert!(j.contains("\"schema\":\"kifmm-bench-v1\""));
    }

    #[test]
    fn writes_artifact_file() {
        let dir = std::env::temp_dir().join("kifmm_trace_summary_test");
        let path = sample().write_to(&dir).unwrap();
        assert!(path.ends_with("BENCH_unit.json"));
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, sample().to_json());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
