//! # kifmm-trace — span-based tracing & metrics for the FMM
//!
//! The paper's entire evaluation is per-phase, per-rank accounting: the
//! Up/Comm/Down stage times of Figures 4.2/4.3 and the communication
//! volumes of Tables 4.1–4.3. This crate is the observability spine that
//! produces those numbers as machine-readable artifacts instead of ad-hoc
//! text dumps:
//!
//! * [`Tracer`] — a cheaply cloneable sink handle. [`Tracer::disabled`]
//!   is a no-op sink (a `None` inside; every operation short-circuits on
//!   one branch, so an untraced evaluation pays nothing measurable);
//!   [`Tracer::enabled`] records into **per-rank ring buffers**.
//! * [`RankTracer`] — one virtual rank's (thread's) handle, obtained via
//!   [`Tracer::rank`]. Spans and counters recorded through it land in
//!   that rank's buffer only, so rank threads never contend.
//! * [`Span`] — an RAII guard from [`RankTracer::span`] charging **wall
//!   time and thread-CPU time** to a `(category, name)` pair. Guards are
//!   strictly nested by construction (scope-based drop on one thread).
//! * [`Counter`] — integer metrics (flops, bytes/messages sent and
//!   received, tree cells touched) accumulated per rank.
//! * Exporters: [`Tracer::chrome_trace_json`] (load in `about://tracing`
//!   or [Perfetto](https://ui.perfetto.dev), one track per virtual rank,
//!   async bars for in-flight exchanges showing the paper's comm/compute
//!   overlap) and [`summary::BenchSummary`] (the flat `BENCH_*.json`
//!   schema consumed by `scripts/verify.sh` and plotting).
//!
//! Ring buffers have a fixed capacity (default [`DEFAULT_CAPACITY`] spans
//! per rank); once full, the oldest spans are overwritten and
//! [`Tracer::dropped_spans`] reports how many were lost — tracing never
//! reallocates unboundedly inside a solve loop.

mod chrome;
mod jsonw;
pub mod summary;

pub use summary::{BenchSummary, PhaseLine};

use kifmm_runtime::thread_cpu_time;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Default per-rank ring-buffer capacity (spans).
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// Integer metrics accumulated per rank.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Counted floating-point operations.
    Flops = 0,
    /// Bytes handed to the message-passing substrate.
    BytesSent = 1,
    /// Bytes received from the message-passing substrate.
    BytesRecv = 2,
    /// Messages sent.
    MessagesSent = 3,
    /// Messages received.
    MessagesRecv = 4,
    /// Tree cells (boxes) touched by compute phases.
    CellsTouched = 5,
    /// Plan-cache lookups served from a cached plan (precompute
    /// skipped entirely).
    PlanCacheHits = 6,
    /// Plan-cache lookups that had to build a fresh plan.
    PlanCacheMisses = 7,
}

impl Counter {
    /// Number of counters.
    pub const COUNT: usize = 8;

    /// All counters, in export order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::Flops,
        Counter::BytesSent,
        Counter::BytesRecv,
        Counter::MessagesSent,
        Counter::MessagesRecv,
        Counter::CellsTouched,
        Counter::PlanCacheHits,
        Counter::PlanCacheMisses,
    ];

    /// Stable snake_case key used in JSON exports.
    pub fn name(self) -> &'static str {
        match self {
            Counter::Flops => "flops",
            Counter::BytesSent => "bytes_sent",
            Counter::BytesRecv => "bytes_recv",
            Counter::MessagesSent => "messages_sent",
            Counter::MessagesRecv => "messages_recv",
            Counter::CellsTouched => "cells_touched",
            Counter::PlanCacheHits => "plan_cache_hits",
            Counter::PlanCacheMisses => "plan_cache_misses",
        }
    }
}

/// One completed span, as stored in a rank's ring buffer.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Per-rank sequence number assigned when the span *opened* (sorting
    /// by `seq` recovers open order, i.e. pre-order of the span tree).
    pub seq: u64,
    /// Nesting depth at open (0 = top level).
    pub depth: u32,
    /// Category — by convention the phase name (`"Up"`, `"Comm"`, …).
    pub cat: &'static str,
    /// Label within the category.
    pub name: &'static str,
    /// Optional numeric detail (e.g. tree level), exported as `"n"`.
    pub n: Option<u64>,
    /// Wall-clock start, seconds since the tracer epoch.
    pub t0: f64,
    /// Wall-clock duration in seconds (non-negative).
    pub wall: f64,
    /// Thread-CPU time consumed between open and close, seconds.
    pub cpu: f64,
}

impl SpanRecord {
    /// The structural identity of the span — everything except the
    /// timings. Two runs of the same deterministic computation produce
    /// identical structural-key sequences (asserted in tests).
    pub fn structural_key(&self) -> (u64, u32, &'static str, &'static str, Option<u64>) {
        (self.seq, self.depth, self.cat, self.name, self.n)
    }
}

/// One async (overlap) event: a begin/end pair drawn as a bar above the
/// rank's track in the chrome trace viewer, visualizing an exchange that
/// is in flight while compute spans run underneath it.
#[derive(Clone, Debug)]
pub struct AsyncRecord {
    /// Pairing id (unique per rank; the exporter namespaces it by rank).
    pub id: u64,
    /// Event name (e.g. `"dens-exchange"`).
    pub name: &'static str,
    /// `true` for begin, `false` for end.
    pub begin: bool,
    /// Wall-clock timestamp, seconds since the tracer epoch.
    pub ts: f64,
}

/// Mutable portion of a rank's buffer (only the rank's own thread writes).
struct RankState {
    /// Completed spans; a ring once `capacity` is reached.
    spans: Vec<SpanRecord>,
    /// Next ring slot to overwrite when full.
    head: usize,
    /// Spans overwritten after the ring filled.
    dropped: u64,
    /// Current nesting depth (open spans).
    depth: u32,
    /// Next span sequence number.
    seq: u64,
    /// Async begin/end events (bounded by the same capacity).
    asyncs: Vec<AsyncRecord>,
}

/// One virtual rank's buffer: ring of spans + counters.
struct RankBuf {
    rank: usize,
    capacity: usize,
    state: Mutex<RankState>,
    counters: [AtomicU64; Counter::COUNT],
}

impl RankBuf {
    fn new(rank: usize, capacity: usize) -> Self {
        RankBuf {
            rank,
            capacity,
            state: Mutex::new(RankState {
                spans: Vec::new(),
                head: 0,
                dropped: 0,
                depth: 0,
                seq: 0,
                asyncs: Vec::new(),
            }),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn lock(&self) -> MutexGuard<'_, RankState> {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Shared sink state behind an enabled [`Tracer`].
struct TraceSink {
    epoch: Instant,
    capacity: usize,
    ranks: Mutex<Vec<Arc<RankBuf>>>,
}

impl TraceSink {
    /// Rank buffers sorted by rank id.
    fn sorted_ranks(&self) -> Vec<Arc<RankBuf>> {
        let mut bufs: Vec<Arc<RankBuf>> =
            self.ranks.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone();
        bufs.sort_by_key(|b| b.rank);
        bufs
    }
}

/// The tracer handle: either a live sink or the no-op disabled sink.
///
/// Cloning shares the sink (an `Arc`), so a `Tracer` can be handed to
/// every virtual rank of a run and exported once at the end.
#[derive(Clone)]
pub struct Tracer {
    inner: Option<Arc<TraceSink>>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::disabled()
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "Tracer(disabled)"),
            Some(s) => write!(
                f,
                "Tracer(enabled, {} ranks)",
                s.ranks.lock().map(|r| r.len()).unwrap_or(0)
            ),
        }
    }
}

impl Tracer {
    /// The no-op sink: every span/counter operation is a single branch.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// A live sink with the default per-rank capacity.
    pub fn enabled() -> Tracer {
        Tracer::with_capacity(DEFAULT_CAPACITY)
    }

    /// A live sink with an explicit per-rank span capacity (≥ 16).
    pub fn with_capacity(capacity: usize) -> Tracer {
        Tracer {
            inner: Some(Arc::new(TraceSink {
                epoch: Instant::now(),
                capacity: capacity.max(16),
                ranks: Mutex::new(Vec::new()),
            })),
        }
    }

    /// Whether this tracer records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// This rank's recording handle (creates the buffer on first use; a
    /// disabled tracer returns a no-op handle).
    pub fn rank(&self, rank: usize) -> RankTracer {
        let Some(sink) = &self.inner else {
            return RankTracer { inner: None };
        };
        let mut ranks = sink.ranks.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let buf = match ranks.iter().find(|b| b.rank == rank) {
            Some(b) => b.clone(),
            None => {
                let b = Arc::new(RankBuf::new(rank, sink.capacity));
                ranks.push(b.clone());
                b
            }
        };
        drop(ranks);
        RankTracer { inner: Some(RankHandle { epoch: sink.epoch, buf }) }
    }

    /// Rank ids with buffers, ascending.
    pub fn rank_ids(&self) -> Vec<usize> {
        match &self.inner {
            None => Vec::new(),
            Some(s) => s.sorted_ranks().iter().map(|b| b.rank).collect(),
        }
    }

    /// Completed spans per rank (ascending rank id), each sorted by open
    /// order (`seq`). Empty when disabled.
    pub fn span_records(&self) -> Vec<Vec<SpanRecord>> {
        let Some(sink) = &self.inner else {
            return Vec::new();
        };
        sink.sorted_ranks()
            .iter()
            .map(|b| {
                let st = b.lock();
                let mut spans = st.spans.clone();
                spans.sort_by_key(|s| s.seq);
                spans
            })
            .collect()
    }

    /// A counter summed over all ranks.
    pub fn counter_total(&self, c: Counter) -> u64 {
        match &self.inner {
            None => 0,
            Some(s) => s
                .sorted_ranks()
                .iter()
                .map(|b| b.counters[c as usize].load(Ordering::Relaxed))
                .sum(),
        }
    }

    /// A counter for one rank (0 if the rank has no buffer).
    pub fn rank_counter(&self, rank: usize, c: Counter) -> u64 {
        match &self.inner {
            None => 0,
            Some(s) => s
                .sorted_ranks()
                .iter()
                .find(|b| b.rank == rank)
                .map_or(0, |b| b.counters[c as usize].load(Ordering::Relaxed)),
        }
    }

    /// Spans lost to ring-buffer overwrite, summed over ranks.
    pub fn dropped_spans(&self) -> u64 {
        match &self.inner {
            None => 0,
            Some(s) => s.sorted_ranks().iter().map(|b| b.lock().dropped).sum(),
        }
    }

    /// Serialize everything recorded so far as chrome-trace JSON
    /// (`about://tracing` / Perfetto). One `tid` per virtual rank.
    pub fn chrome_trace_json(&self) -> String {
        chrome::export(self)
    }

    pub(crate) fn sink(&self) -> Option<&TraceSink> {
        self.inner.as_deref()
    }
}

// Crate-internal accessors for the chrome exporter.
pub(crate) struct RankDump {
    pub(crate) rank: usize,
    pub(crate) spans: Vec<SpanRecord>,
    pub(crate) asyncs: Vec<AsyncRecord>,
    pub(crate) counters: [u64; Counter::COUNT],
}

impl TraceSink {
    pub(crate) fn dump(&self) -> Vec<RankDump> {
        self.sorted_ranks()
            .iter()
            .map(|b| {
                let st = b.lock();
                let mut spans = st.spans.clone();
                spans.sort_by_key(|s| s.seq);
                RankDump {
                    rank: b.rank,
                    spans,
                    asyncs: st.asyncs.clone(),
                    counters: std::array::from_fn(|i| b.counters[i].load(Ordering::Relaxed)),
                }
            })
            .collect()
    }
}

/// A rank-bound recording handle (see [`Tracer::rank`]). Cloning is cheap
/// (two `Arc` bumps) and the clone records into the same rank buffer.
#[derive(Clone)]
pub struct RankTracer {
    inner: Option<RankHandle>,
}

#[derive(Clone)]
struct RankHandle {
    epoch: Instant,
    buf: Arc<RankBuf>,
}

impl Default for RankTracer {
    fn default() -> Self {
        RankTracer::disabled()
    }
}

impl RankTracer {
    /// A no-op handle (what a disabled [`Tracer`] hands out).
    pub fn disabled() -> RankTracer {
        RankTracer { inner: None }
    }

    /// Whether spans recorded through this handle are kept.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open a span; wall and thread-CPU time between now and the guard's
    /// drop are charged to `(cat, name)`. Disabled: a branch and nothing
    /// else.
    #[inline]
    pub fn span(&self, cat: &'static str, name: &'static str) -> Span {
        let Some(h) = &self.inner else {
            return Span { inner: None };
        };
        let (seq, depth) = {
            let mut st = h.buf.lock();
            let seq = st.seq;
            st.seq += 1;
            let depth = st.depth;
            st.depth += 1;
            (seq, depth)
        };
        Span {
            inner: Some(SpanInner {
                handle: h.clone(),
                cat,
                name,
                n: None,
                seq,
                depth,
                t0: h.epoch.elapsed().as_secs_f64(),
                cpu0: thread_cpu_time(),
            }),
        }
    }

    /// Add `v` to counter `c` on this rank.
    #[inline]
    pub fn add(&self, c: Counter, v: u64) {
        if let Some(h) = &self.inner {
            h.buf.counters[c as usize].fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Record the begin of an async (overlap) bar. `id` must be unique
    /// among this rank's in-flight async events and must be matched by an
    /// [`RankTracer::async_end`] with the same `name` and `id`.
    #[inline]
    pub fn async_begin(&self, name: &'static str, id: u64) {
        self.async_event(name, id, true);
    }

    /// Record the end of an async (overlap) bar.
    #[inline]
    pub fn async_end(&self, name: &'static str, id: u64) {
        self.async_event(name, id, false);
    }

    fn async_event(&self, name: &'static str, id: u64, begin: bool) {
        if let Some(h) = &self.inner {
            let ts = h.epoch.elapsed().as_secs_f64();
            let cap = h.buf.capacity;
            let mut st = h.buf.lock();
            if st.asyncs.len() < cap {
                st.asyncs.push(AsyncRecord { id, name, begin, ts });
            }
        }
    }
}

/// RAII span guard (see [`RankTracer::span`]).
pub struct Span {
    inner: Option<SpanInner>,
}

struct SpanInner {
    handle: RankHandle,
    cat: &'static str,
    name: &'static str,
    n: Option<u64>,
    seq: u64,
    depth: u32,
    t0: f64,
    cpu0: f64,
}

impl Span {
    /// Attach a numeric detail (e.g. tree level) exported as `"n"`.
    #[inline]
    pub fn with_n(mut self, n: u64) -> Span {
        if let Some(i) = &mut self.inner {
            i.n = Some(n);
        }
        self
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(i) = self.inner.take() else {
            return;
        };
        let wall = (i.handle.epoch.elapsed().as_secs_f64() - i.t0).max(0.0);
        let cpu = (thread_cpu_time() - i.cpu0).max(0.0);
        let rec = SpanRecord {
            seq: i.seq,
            depth: i.depth,
            cat: i.cat,
            name: i.name,
            n: i.n,
            t0: i.t0,
            wall,
            cpu,
        };
        let cap = i.handle.buf.capacity;
        let mut st = i.handle.buf.lock();
        st.depth = st.depth.saturating_sub(1);
        if st.spans.len() < cap {
            st.spans.push(rec);
        } else {
            let head = st.head;
            st.spans[head] = rec;
            st.head = (head + 1) % cap;
            st.dropped += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        let rt = t.rank(0);
        assert!(!t.is_enabled() && !rt.is_enabled());
        {
            let _g = rt.span("Up", "upward").with_n(3);
        }
        rt.add(Counter::Flops, 123);
        rt.async_begin("x", 1);
        rt.async_end("x", 1);
        assert!(t.span_records().is_empty());
        assert_eq!(t.counter_total(Counter::Flops), 0);
        assert_eq!(t.chrome_trace_json(), "{\"traceEvents\":[]}");
    }

    #[test]
    fn spans_nest_and_order_by_seq() {
        let t = Tracer::enabled();
        let rt = t.rank(0);
        {
            let _a = rt.span("Up", "outer");
            {
                let _b = rt.span("Up", "inner").with_n(7);
            }
            {
                let _c = rt.span("DownV", "inner2");
            }
        }
        let ranks = t.span_records();
        assert_eq!(ranks.len(), 1);
        let spans = &ranks[0];
        assert_eq!(spans.len(), 3);
        // seq order = open order (pre-order): outer, inner, inner2.
        assert_eq!(spans[0].name, "outer");
        assert_eq!(spans[0].depth, 0);
        assert_eq!(spans[1].name, "inner");
        assert_eq!(spans[1].depth, 1);
        assert_eq!(spans[1].n, Some(7));
        assert_eq!(spans[2].name, "inner2");
        assert_eq!(spans[2].depth, 1);
        // Children are contained in the parent's wall interval.
        for child in &spans[1..] {
            assert!(child.t0 >= spans[0].t0 - 1e-9);
            assert!(child.t0 + child.wall <= spans[0].t0 + spans[0].wall + 1e-9);
        }
        for s in spans {
            assert!(s.wall >= 0.0 && s.cpu >= 0.0);
        }
    }

    #[test]
    fn counters_accumulate_per_rank() {
        let t = Tracer::enabled();
        t.rank(0).add(Counter::Flops, 10);
        t.rank(1).add(Counter::Flops, 32);
        t.rank(1).add(Counter::BytesSent, 7);
        assert_eq!(t.counter_total(Counter::Flops), 42);
        assert_eq!(t.rank_counter(1, Counter::Flops), 32);
        assert_eq!(t.rank_counter(0, Counter::BytesSent), 0);
        assert_eq!(t.rank_counter(1, Counter::BytesSent), 7);
        assert_eq!(t.rank_ids(), vec![0, 1]);
    }

    #[test]
    fn cpu_time_not_charged_while_sleeping() {
        let t = Tracer::enabled();
        let rt = t.rank(0);
        {
            let _g = rt.span("Comm", "sleep");
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        let spans = &t.span_records()[0];
        assert!(spans[0].wall >= 0.015, "wall time sees the sleep: {}", spans[0].wall);
        assert!(spans[0].cpu < 0.010, "thread-CPU time does not: {}", spans[0].cpu);
    }

    #[test]
    fn ring_buffer_drops_oldest_not_newest() {
        let cap = 32;
        let t = Tracer::with_capacity(cap);
        let rt = t.rank(0);
        let total = cap + 10;
        for _ in 0..total {
            let _g = rt.span("Up", "tick");
        }
        assert_eq!(t.dropped_spans(), 10);
        let spans = &t.span_records()[0];
        assert_eq!(spans.len(), cap);
        // The newest span survived; the 10 oldest are gone.
        assert_eq!(spans.last().unwrap().seq, total as u64 - 1);
        assert_eq!(spans.first().unwrap().seq, 10);
    }
}
