//! Chrome-trace ("Trace Event Format") exporter.
//!
//! The emitted document loads in `about://tracing` and
//! [Perfetto](https://ui.perfetto.dev). Layout:
//!
//! * one process (`pid` 0) named `kifmm`;
//! * one thread track per virtual rank (`tid` = rank id, named
//!   `rank N`);
//! * every completed span as a complete event (`"ph":"X"`) with `ts`/
//!   `dur` in microseconds of wall time and `args` carrying the
//!   thread-CPU microseconds (plus the optional `n` detail), so the
//!   viewer shows wall nesting while CPU time stays inspectable;
//! * every async begin/end pair (`"ph":"b"` / `"ph":"e"`) as an overlap
//!   bar above the rank's track — the in-flight gather/scatter exchanges
//!   rendered *across* the compute spans they overlap with, which is the
//!   paper's §3.2 picture;
//! * one counter summary instant event per rank (`"ph":"I"`) carrying
//!   the final counter values.

use crate::jsonw::{push_f64, push_str_lit};
use crate::{Counter, Tracer};

/// Microseconds with sub-ns kept as fraction (chrome accepts float ts).
fn us(seconds: f64) -> f64 {
    seconds * 1e6
}

pub(crate) fn export(tracer: &Tracer) -> String {
    let Some(sink) = tracer.sink() else {
        return "{\"traceEvents\":[]}".to_string();
    };
    let dumps = sink.dump();
    let mut out = String::with_capacity(1 << 16);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push_str(",\n");
        }
    };

    // Process metadata.
    sep(&mut out);
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
         \"args\":{\"name\":\"kifmm\"}}",
    );

    for d in &dumps {
        // Thread (rank track) metadata.
        sep(&mut out);
        out.push_str(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\
             \"args\":{{\"name\":\"rank {}\"}}}}",
            d.rank, d.rank
        ));

        for s in &d.spans {
            sep(&mut out);
            out.push_str("{\"name\":");
            push_str_lit(&mut out, s.name);
            out.push_str(",\"cat\":");
            push_str_lit(&mut out, s.cat);
            out.push_str(",\"ph\":\"X\",\"ts\":");
            push_f64(&mut out, us(s.t0));
            out.push_str(",\"dur\":");
            push_f64(&mut out, us(s.wall));
            out.push_str(&format!(",\"pid\":0,\"tid\":{}", d.rank));
            out.push_str(",\"args\":{\"cpu_us\":");
            push_f64(&mut out, us(s.cpu));
            if let Some(n) = s.n {
                out.push_str(&format!(",\"n\":{n}"));
            }
            out.push_str("}}");
        }

        for a in &d.asyncs {
            sep(&mut out);
            out.push_str("{\"name\":");
            push_str_lit(&mut out, a.name);
            // Ids are namespaced by rank so bars never pair across ranks.
            out.push_str(&format!(
                ",\"cat\":\"comm\",\"ph\":\"{}\",\"id\":\"r{}-{}\",\"ts\":",
                if a.begin { 'b' } else { 'e' },
                d.rank,
                a.id
            ));
            push_f64(&mut out, us(a.ts));
            out.push_str(&format!(",\"pid\":0,\"tid\":{}}}", d.rank));
        }

        // Final counter values as one instant event per rank.
        sep(&mut out);
        out.push_str(&format!(
            "{{\"name\":\"counters\",\"cat\":\"meta\",\"ph\":\"I\",\"s\":\"t\",\
             \"ts\":0,\"pid\":0,\"tid\":{},\"args\":{{",
            d.rank
        ));
        for (i, c) in Counter::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", c.name(), d.counters[*c as usize]));
        }
        out.push_str("}}");
    }
    out.push_str("\n]}");
    out
}
