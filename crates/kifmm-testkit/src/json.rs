//! Hand-rolled JSON parser (hermetic build: no serde).
//!
//! Strict enough to validate the tracer's exports: rejects trailing
//! garbage, unterminated strings/containers, bad escapes and malformed
//! numbers. Object keys keep their document order (the chrome-trace
//! format is order-insensitive, but determinism tests compare documents
//! structurally).

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish int/float).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, in document key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete document (trailing whitespace only).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { b: text.as_bytes(), i: 0 };
        p.ws();
        let v = p.value()?;
        p.ws();
        if p.i != p.b.len() {
            return Err(format!("trailing garbage at byte {}", p.i));
        }
        Ok(v)
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Number accessor.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Boolean accessor.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array accessor.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Object accessor (members in document order).
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.i))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, self.i)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.ws();
            out.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut out = Vec::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            let val = self.value()?;
            out.push((key, val));
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.i + 4 > self.b.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.b[self.i..self.i + 4])
                                .map_err(|_| "bad \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.i))?;
                            self.i += 4;
                            // Surrogate pairs are not needed by our exporters;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        c => return Err(format!("bad escape '\\{}'", c as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this
                    // byte walk always lands on boundaries).
                    let start = self.i;
                    self.i += 1;
                    while self.i < self.b.len() && (self.b[self.i] & 0xC0) == 0x80 {
                        self.i += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.b[start..self.i]).map_err(|_| "bad utf8")?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.i += 1;
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.i += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).map_err(|_| "bad number")?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-1.5e3").unwrap(), Json::Num(-1500.0));
        assert_eq!(Json::parse(r#""a\nb""#).unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_containers() {
        let v = Json::parse(r#"{"a":[1,{"b":"x"},[]],"c":{}}"#).unwrap();
        let a = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].get("b").unwrap().as_str(), Some("x"));
        assert_eq!(a[2], Json::Arr(vec![]));
        assert_eq!(v.get("c").unwrap(), &Json::Obj(vec![]));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "{\"a\":}", "\"unterminated", "tru", "1.2.3", "[] []",
            "{\"a\":1,}",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn unicode_and_escapes_round_trip() {
        let v = Json::parse(r#""π A ok""#).unwrap();
        assert_eq!(v.as_str(), Some("π A ok"));
    }
}
