//! CI gate for the tracing artifacts.
//!
//! ```text
//! validate_json <file>                      # parse check only
//! validate_json <file> --bench-summary [--max-eval-messages N]
//!                                           # kifmm-bench-v1 invariants;
//!                                           # optionally cap the summed
//!                                           # per-phase message count
//!                                           # (the comm-regression gate)
//! validate_json <file> --chrome [min_ranks]# chrome-trace invariants
//! validate_json <file> --service-throughput [--max-batch-ratio R]
//!                                           # kifmm-service-v1 invariants;
//!                                           # optionally require
//!                                           # batch.ratio <= R (the
//!                                           # multi-RHS amortization gate)
//! validate_json <file> --m2l-ablation      # kifmm-m2l-ablation-v1
//!                                           # invariants: measured modes
//!                                           # + coherent autotuner rows
//! validate_json <file> --kernel-suite [--max-overhead R]
//!                                           # kifmm-kernel-suite-v1
//!                                           # invariants: a row per kernel
//!                                           # with plausible timings and
//!                                           # accuracy; optionally cap the
//!                                           # gradient/potential overhead
//!                                           # ratio (the fused-output gate)
//! validate_json <file> --tree-build [--max-update-ratio R]
//!                                           # kifmm-tree-build-v1
//!                                           # invariants: every rank count
//!                                           # built bitwise-identical
//!                                           # sample-sort/paper trees;
//!                                           # optionally require the
//!                                           # incremental plan update to
//!                                           # cost <= R of a full rebuild
//! ```
//!
//! Exits nonzero with a diagnostic on the first violated invariant, so
//! `scripts/verify.sh` can gate on artifact shape without serde or
//! python in the image.

use kifmm_testkit::json::Json;
use std::process::ExitCode;

const PHASE_KEYS: [&str; 7] = ["Up", "Comm", "DownU", "DownV", "DownW", "DownX", "Eval"];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(msg) => {
            println!("{msg}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("validate_json: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<String, String> {
    let path = args.first().ok_or_else(usage)?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    match args.get(1).map(String::as_str) {
        None => Ok(format!("{path}: valid JSON")),
        Some("--bench-summary") => {
            let max_eval_messages: Option<u64> = match args.get(2).map(String::as_str) {
                Some("--max-eval-messages") => {
                    Some(args.get(3).and_then(|v| v.parse().ok()).ok_or_else(usage)?)
                }
                Some(_) => return Err(usage()),
                None => None,
            };
            let eval_msgs =
                check_bench_summary(&doc, max_eval_messages).map_err(|e| format!("{path}: {e}"))?;
            Ok(format!(
                "{path}: valid kifmm-bench-v1 summary ({eval_msgs} eval messages)"
            ))
        }
        Some("--service-throughput") => {
            let max_ratio: Option<f64> = match args.get(2).map(String::as_str) {
                Some("--max-batch-ratio") => {
                    Some(args.get(3).and_then(|v| v.parse().ok()).ok_or_else(usage)?)
                }
                Some(_) => return Err(usage()),
                None => None,
            };
            let ratio =
                check_service(&doc, max_ratio).map_err(|e| format!("{path}: {e}"))?;
            Ok(format!(
                "{path}: valid kifmm-service-v1 summary (batch ratio {ratio:.3})"
            ))
        }
        Some("--m2l-ablation") => {
            let (cases, rows) = check_m2l_ablation(&doc).map_err(|e| format!("{path}: {e}"))?;
            Ok(format!(
                "{path}: valid kifmm-m2l-ablation-v1 summary ({cases} cases, {rows} autotuner rows)"
            ))
        }
        Some("--tree-build") => {
            let max_ratio: Option<f64> = match args.get(2).map(String::as_str) {
                Some("--max-update-ratio") => {
                    Some(args.get(3).and_then(|v| v.parse().ok()).ok_or_else(usage)?)
                }
                Some(_) => return Err(usage()),
                None => None,
            };
            let (builds, ratio) =
                check_tree_build(&doc, max_ratio).map_err(|e| format!("{path}: {e}"))?;
            Ok(format!(
                "{path}: valid kifmm-tree-build-v1 summary ({builds} rank counts, \
                 update ratio {ratio:.3})"
            ))
        }
        Some("--kernel-suite") => {
            let max_overhead: Option<f64> = match args.get(2).map(String::as_str) {
                Some("--max-overhead") => {
                    Some(args.get(3).and_then(|v| v.parse().ok()).ok_or_else(usage)?)
                }
                Some(_) => return Err(usage()),
                None => None,
            };
            let (rows, worst) =
                check_kernel_suite(&doc, max_overhead).map_err(|e| format!("{path}: {e}"))?;
            Ok(format!(
                "{path}: valid kifmm-kernel-suite-v1 summary ({rows} kernels, worst \
                 overhead {worst:.3})"
            ))
        }
        Some("--chrome") => {
            let min_ranks: usize = match args.get(2) {
                Some(v) => v.parse().map_err(|_| usage())?,
                None => 1,
            };
            let ranks = check_chrome(&doc, min_ranks).map_err(|e| format!("{path}: {e}"))?;
            Ok(format!("{path}: valid chrome trace with {ranks} rank tracks"))
        }
        Some(other) => Err(format!("unknown mode '{other}'\n{}", usage())),
    }
}

fn usage() -> String {
    "usage: validate_json <file> [--bench-summary [--max-eval-messages N] | \
     --chrome [min_ranks] | --service-throughput [--max-batch-ratio R] | \
     --m2l-ablation | --tree-build [--max-update-ratio R] | \
     --kernel-suite [--max-overhead R]]"
        .to_string()
}

/// `BENCH_tree_build.json` invariants: schema tag, a nonempty `builds`
/// array where every rank count reports positive build times, a plausible
/// node count/depth, and `structure_equal == true` — the sample-sort and
/// paper Allreduce builds must be bitwise identical, the PR's central
/// equivalence gate. The `update` block must show a coherent
/// patch-vs-rebuild measurement (`ratio` consistent with its timings,
/// `moved_fraction` in (0, 1]); when `max_ratio` is given the incremental
/// update must cost at most that fraction of a full rebuild — the
/// time-stepping amortization gate. Returns (build rows, update ratio).
fn check_tree_build(doc: &Json, max_ratio: Option<f64>) -> Result<(usize, f64), String> {
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing string field 'schema'")?;
    if schema != "kifmm-tree-build-v1" {
        return Err(format!("unexpected schema '{schema}'"));
    }
    let n = doc.get("n").and_then(Json::as_f64).ok_or("missing numeric field 'n'")?;
    if n < 1.0 {
        return Err(format!("implausible n = {n}"));
    }
    let builds = doc.get("builds").and_then(Json::as_arr).ok_or("missing 'builds' array")?;
    if builds.is_empty() {
        return Err("empty 'builds' array".into());
    }
    for (i, row) in builds.iter().enumerate() {
        let at = |key: &str| {
            row.get(key)
                .and_then(Json::as_f64)
                .ok_or(format!("builds[{i}] missing numeric '{key}'"))
        };
        let ranks = at("ranks")?;
        let t_sample = at("sample_sort_seconds")?;
        let t_paper = at("paper_seconds")?;
        let nodes = at("nodes")?;
        let depth = at("depth")?;
        if ranks < 1.0 || t_sample <= 0.0 || t_paper <= 0.0 || nodes < 1.0 || depth < 0.0 {
            return Err(format!(
                "builds[{i}]: implausible row (ranks={ranks}, sample={t_sample}, \
                 paper={t_paper}, nodes={nodes}, depth={depth})"
            ));
        }
        let equal = row
            .get("structure_equal")
            .and_then(Json::as_bool)
            .ok_or(format!("builds[{i}] missing bool 'structure_equal'"))?;
        if !equal {
            return Err(format!(
                "builds[{i}]: sample-sort and paper builds disagree at P={ranks} \
                 (the bitwise equivalence gate failed)"
            ));
        }
    }
    let upd = doc.get("update").ok_or("missing 'update' object")?;
    let at = |key: &str| {
        upd.get(key)
            .and_then(Json::as_f64)
            .ok_or(format!("update missing numeric '{key}'"))
    };
    let build = at("build_seconds")?;
    let update = at("update_seconds")?;
    let ratio = at("ratio")?;
    let moved = at("moved_fraction")?;
    if build <= 0.0 || update <= 0.0 || ratio <= 0.0 {
        return Err(format!(
            "implausible update block (build={build}, update={update}, ratio={ratio})"
        ));
    }
    if (ratio - update / build).abs() > 0.01 * ratio.max(1e-9) {
        return Err(format!("update.ratio {ratio} inconsistent with {update}/{build}"));
    }
    if !(moved > 0.0 && moved <= 1.0) {
        return Err(format!("update.moved_fraction {moved} outside (0, 1]"));
    }
    if let Some(bound) = max_ratio {
        if ratio > bound {
            return Err(format!(
                "incremental-update regression: patching the plan took {ratio:.3}× a full \
                 rebuild (bound {bound}) — time-stepping no longer amortizes setup"
            ));
        }
    }
    Ok((builds.len(), ratio))
}

/// `BENCH_m2l_ablation.json` invariants: schema tag, a nonempty `cases`
/// array where every case measured all three concrete M2L modes (fft,
/// direct, svd) with positive flop counts, and a nonempty `auto` block
/// of plan-time autotuner rows whose verdicts are *coherent*: the chosen
/// mode's modeled flops is the minimum of the three candidates, ranks
/// are positive, and the SVD storage ratio stays below 1.01 (full rank
/// stores dense + two shared bases, (316+2)/316 ≈ 1.0064; anything more
/// means the truncation is broken). Returns (cases, autotuner rows).
fn check_m2l_ablation(doc: &Json) -> Result<(usize, usize), String> {
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing string field 'schema'")?;
    if schema != "kifmm-m2l-ablation-v1" {
        return Err(format!("unexpected schema '{schema}'"));
    }
    let n = doc.get("n").and_then(Json::as_f64).ok_or("missing numeric field 'n'")?;
    if n < 1.0 {
        return Err(format!("implausible n = {n}"));
    }
    let cases = doc.get("cases").and_then(Json::as_arr).ok_or("missing 'cases' array")?;
    if cases.is_empty() {
        return Err("empty 'cases' array".into());
    }
    let mut rows = 0usize;
    for (i, case) in cases.iter().enumerate() {
        case.get("kernel")
            .and_then(Json::as_str)
            .ok_or(format!("cases[{i}] missing string 'kernel'"))?;
        for key in ["order", "tree_depth"] {
            case.get(key)
                .and_then(Json::as_f64)
                .ok_or(format!("cases[{i}] missing numeric '{key}'"))?;
        }
        let measured = case.get("measured").ok_or(format!("cases[{i}] missing 'measured'"))?;
        for mode in ["fft", "direct", "svd"] {
            let m = measured
                .get(mode)
                .ok_or(format!("cases[{i}].measured missing mode '{mode}'"))?;
            let secs = m
                .get("seconds")
                .and_then(Json::as_f64)
                .ok_or(format!("cases[{i}].measured.{mode} missing 'seconds'"))?;
            let flops = m
                .get("flops")
                .and_then(Json::as_f64)
                .ok_or(format!("cases[{i}].measured.{mode} missing 'flops'"))?;
            if !(secs >= 0.0) || flops <= 0.0 {
                return Err(format!(
                    "cases[{i}].measured.{mode}: implausible seconds={secs} flops={flops}"
                ));
            }
        }
        let auto = case
            .get("auto")
            .and_then(Json::as_arr)
            .ok_or(format!("cases[{i}] missing 'auto' array"))?;
        if auto.is_empty() {
            return Err(format!("cases[{i}].auto is empty (autotuner produced no verdicts)"));
        }
        for (j, row) in auto.iter().enumerate() {
            let at = |key: &str| {
                row.get(key)
                    .and_then(Json::as_f64)
                    .ok_or(format!("cases[{i}].auto[{j}] missing numeric '{key}'"))
            };
            let fft = at("fft_flops")?;
            let svd = at("svd_flops")?;
            let direct = at("direct_flops")?;
            let level = at("level")?;
            let (rt, rs) = (at("rank_trg")?, at("rank_src")?);
            let comp = at("compression")?;
            let mode = row
                .get("mode")
                .and_then(Json::as_str)
                .ok_or(format!("cases[{i}].auto[{j}] missing string 'mode'"))?;
            let chosen = match mode {
                "fft" => fft,
                "svd" => svd,
                "direct" => direct,
                other => {
                    return Err(format!(
                        "cases[{i}].auto[{j}]: unresolved mode '{other}' (Auto must not survive \
                         planning)"
                    ))
                }
            };
            if fft <= 0.0 || svd <= 0.0 || direct <= 0.0 {
                return Err(format!("cases[{i}].auto[{j}]: non-positive modeled flops"));
            }
            if chosen > fft.min(svd).min(direct) {
                return Err(format!(
                    "cases[{i}].auto[{j}]: incoherent verdict — chose '{mode}' ({chosen} flop) \
                     over a cheaper candidate (fft {fft} / svd {svd} / direct {direct})"
                ));
            }
            if level < 2.0 || rt < 1.0 || rs < 1.0 {
                return Err(format!(
                    "cases[{i}].auto[{j}]: implausible level/ranks ({level}, {rt}x{rs})"
                ));
            }
            if !(comp > 0.0 && comp < 1.01) {
                return Err(format!(
                    "cases[{i}].auto[{j}]: compression {comp} outside (0, 1.01) — SVD stores \
                     more than dense plus the shared bases"
                ));
            }
            rows += 1;
        }
    }
    Ok((cases.len(), rows))
}

/// `BENCH_kernel_suite.json` invariants: schema tag, a `kernels` array
/// covering the full five-kernel family (the scalar, screened, and the
/// three matrix/RBF additions), each row with positive dims and timings,
/// an `overhead_ratio` consistent with its own timings, and accuracy
/// columns inside the order-6 envelope (potentials ≤ 1e-3, gradients
/// ≤ 1e-2 — gradients differentiate the representation, losing roughly
/// one order). When `max_overhead` is given, every kernel's fused
/// gradient eval must cost at most that multiple of its potential-only
/// eval — the "gradients ride the same equivalents" gate. Returns
/// (rows, worst overhead ratio).
fn check_kernel_suite(doc: &Json, max_overhead: Option<f64>) -> Result<(usize, f64), String> {
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing string field 'schema'")?;
    if schema != "kifmm-kernel-suite-v1" {
        return Err(format!("unexpected schema '{schema}'"));
    }
    for key in ["n", "order", "sample_targets"] {
        let v = doc.get(key).and_then(Json::as_f64).ok_or(format!("missing numeric '{key}'"))?;
        if v < 1.0 {
            return Err(format!("implausible {key} = {v}"));
        }
    }
    let kernels = doc.get("kernels").and_then(Json::as_arr).ok_or("missing 'kernels' array")?;
    if kernels.len() < 5 {
        return Err(format!("{} kernel rows (the suite sweeps all 5)", kernels.len()));
    }
    let mut worst = 0.0f64;
    for (i, row) in kernels.iter().enumerate() {
        let name = row
            .get("kernel")
            .and_then(Json::as_str)
            .ok_or(format!("kernels[{i}] missing string 'kernel'"))?;
        let at = |key: &str| {
            row.get(key)
                .and_then(Json::as_f64)
                .ok_or(format!("kernels[{i}] ({name}) missing numeric '{key}'"))
        };
        let (sd, td) = (at("src_dim")?, at("trg_dim")?);
        let pot_s = at("potential_seconds")?;
        let grad_s = at("gradient_seconds")?;
        let ratio = at("overhead_ratio")?;
        let pot_err = at("pot_rel_err")?;
        let grad_err = at("grad_rel_err")?;
        row.get("homogeneous")
            .and_then(Json::as_bool)
            .ok_or(format!("kernels[{i}] ({name}) missing bool 'homogeneous'"))?;
        if sd < 1.0 || td < 1.0 || pot_s <= 0.0 || grad_s <= 0.0 {
            return Err(format!(
                "kernels[{i}] ({name}): implausible row (dims {sd}x{td}, pot {pot_s}s, \
                 grad {grad_s}s)"
            ));
        }
        if (ratio - grad_s / pot_s).abs() > 0.01 * ratio.max(1e-9) {
            return Err(format!(
                "kernels[{i}] ({name}): overhead_ratio {ratio} inconsistent with \
                 {grad_s}/{pot_s}"
            ));
        }
        if !(pot_err >= 0.0 && pot_err < 1e-3) {
            return Err(format!(
                "kernels[{i}] ({name}): potential error {pot_err} outside the order-6 \
                 envelope (< 1e-3)"
            ));
        }
        if !(grad_err >= 0.0 && grad_err < 1e-2) {
            return Err(format!(
                "kernels[{i}] ({name}): gradient error {grad_err} outside the order-6 \
                 envelope (< 1e-2)"
            ));
        }
        worst = worst.max(ratio);
    }
    if let Some(bound) = max_overhead {
        if worst > bound {
            return Err(format!(
                "gradient-overhead regression: worst fused eval took {worst:.3}× the \
                 potential-only eval (bound {bound}) — gradients must ride the existing \
                 equivalents, not recompute the pipeline"
            ));
        }
    }
    Ok((kernels.len(), worst))
}

/// `BENCH_service_throughput.json` invariants: schema tag, a plan-cache
/// block that proves a warm hit happened (`hits >= 1`), a batch block
/// whose `ratio` is consistent with its timings, and a nonempty
/// throughput array with positive request rates for every batch width.
/// Returns `batch.ratio`; when `max_ratio` is given, the ratio must not
/// exceed it — the multi-RHS sweep must actually amortize the passes.
fn check_service(doc: &Json, max_ratio: Option<f64>) -> Result<f64, String> {
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing string field 'schema'")?;
    if schema != "kifmm-service-v1" {
        return Err(format!("unexpected schema '{schema}'"));
    }
    doc.get("bench").and_then(Json::as_str).ok_or("missing string field 'bench'")?;
    for key in ["n", "order", "clients"] {
        doc.get(key).and_then(Json::as_f64).ok_or(format!("missing numeric field '{key}'"))?;
    }
    let kernels = doc.get("kernels").and_then(Json::as_arr).ok_or("missing 'kernels' array")?;
    if kernels.len() < 2 {
        return Err(format!("{} kernels (the service bench mixes >= 2)", kernels.len()));
    }
    let pc = doc.get("plan_cache").ok_or("missing 'plan_cache' object")?;
    let hits =
        pc.get("hits").and_then(Json::as_f64).ok_or("missing 'plan_cache.hits'")?;
    pc.get("misses").and_then(Json::as_f64).ok_or("missing 'plan_cache.misses'")?;
    if hits < 1.0 {
        return Err("plan_cache.hits = 0 (the warm-hit path was never exercised)".into());
    }
    let batch = doc.get("batch").ok_or("missing 'batch' object")?;
    let k = batch.get("k").and_then(Json::as_f64).ok_or("missing 'batch.k'")?;
    let seq = batch
        .get("sequential_seconds")
        .and_then(Json::as_f64)
        .ok_or("missing 'batch.sequential_seconds'")?;
    let bat = batch
        .get("batched_seconds")
        .and_then(Json::as_f64)
        .ok_or("missing 'batch.batched_seconds'")?;
    let ratio = batch.get("ratio").and_then(Json::as_f64).ok_or("missing 'batch.ratio'")?;
    if k < 2.0 || seq <= 0.0 || bat <= 0.0 || ratio <= 0.0 {
        return Err(format!("implausible batch block (k={k}, seq={seq}, batched={bat})"));
    }
    if (ratio - bat / seq).abs() > 0.01 * ratio.max(1e-9) {
        return Err(format!("batch.ratio {ratio} inconsistent with {bat}/{seq}"));
    }
    if let Some(bound) = max_ratio {
        if ratio > bound {
            return Err(format!(
                "batch amortization regression: eval_many(k={k}) took {ratio:.3}× the \
                 sequential evals (bound {bound})"
            ));
        }
    }
    let tp = doc.get("throughput").and_then(Json::as_arr).ok_or("missing 'throughput' array")?;
    if tp.is_empty() {
        return Err("empty 'throughput' array".into());
    }
    for (i, e) in tp.iter().enumerate() {
        for key in ["k", "requests", "rhs", "seconds", "requests_per_second", "rhs_per_second"] {
            let v = e
                .get(key)
                .and_then(Json::as_f64)
                .ok_or(format!("throughput[{i}] missing '{key}'"))?;
            if v <= 0.0 {
                return Err(format!("throughput[{i}].{key} = {v} (expected > 0)"));
            }
        }
    }
    Ok(ratio)
}

/// `BENCH_*.json` invariants: schema tag, all seven phase keys with
/// non-negative seconds and per-phase message/byte counters, and — when
/// ranks > 1 — nonzero comm bytes. Returns the summed per-phase message
/// count (the messages sent *during evaluation*, as opposed to
/// `comm.messages_sent`, which may include setup collectives); when
/// `max_eval_messages` is given, that sum must not exceed it — the
/// coalesced exchange sends O(peers) messages, so the caller passes a
/// ranks-based bound, never a boxes-based one.
fn check_bench_summary(doc: &Json, max_eval_messages: Option<u64>) -> Result<u64, String> {
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing string field 'schema'")?;
    if schema != "kifmm-bench-v1" {
        return Err(format!("unexpected schema '{schema}'"));
    }
    for key in ["bench"] {
        doc.get(key).and_then(Json::as_str).ok_or(format!("missing string field '{key}'"))?;
    }
    for key in ["n", "order", "ranks", "tree_depth", "total_seconds", "total_flops", "gflops"] {
        doc.get(key).and_then(Json::as_f64).ok_or(format!("missing numeric field '{key}'"))?;
    }
    let phases = doc.get("phases").ok_or("missing 'phases' object")?;
    let mut eval_msgs = 0u64;
    for key in PHASE_KEYS {
        let p = phases.get(key).ok_or(format!("missing phase '{key}'"))?;
        let secs = p
            .get("seconds")
            .and_then(Json::as_f64)
            .ok_or(format!("phase '{key}' missing 'seconds'"))?;
        if !(secs >= 0.0) {
            return Err(format!("phase '{key}' has negative seconds {secs}"));
        }
        p.get("flops").and_then(Json::as_f64).ok_or(format!("phase '{key}' missing 'flops'"))?;
        p.get("gflops")
            .and_then(Json::as_f64)
            .ok_or(format!("phase '{key}' missing 'gflops'"))?;
        let msgs = p
            .get("messages")
            .and_then(Json::as_f64)
            .ok_or(format!("phase '{key}' missing 'messages'"))?;
        p.get("bytes").and_then(Json::as_f64).ok_or(format!("phase '{key}' missing 'bytes'"))?;
        if !(msgs >= 0.0) {
            return Err(format!("phase '{key}' has negative messages {msgs}"));
        }
        eval_msgs += msgs as u64;
    }
    if let Some(bound) = max_eval_messages {
        if eval_msgs > bound {
            return Err(format!(
                "comm regression: {eval_msgs} eval messages exceed the coalesced bound {bound} \
                 (per-peer packing should send O(peers), not O(boxes))"
            ));
        }
    }
    let ranks = doc.get("ranks").and_then(Json::as_f64).unwrap_or(0.0);
    let comm = doc.get("comm").ok_or("missing 'comm' object")?;
    let bytes = comm
        .get("bytes_sent")
        .and_then(Json::as_f64)
        .ok_or("missing 'comm.bytes_sent'")?;
    comm.get("messages_sent").and_then(Json::as_f64).ok_or("missing 'comm.messages_sent'")?;
    if ranks > 1.0 && bytes <= 0.0 {
        return Err(format!("ranks={ranks} but comm.bytes_sent={bytes} (expected > 0)"));
    }
    Ok(eval_msgs)
}

/// Chrome-trace invariants: well-formed events, at least `min_ranks`
/// distinct rank tracks carrying complete ("X") spans with non-negative
/// durations, an "Up" phase span somewhere, and — when more than one
/// rank is expected — async comm bars ("b"/"e") demonstrating overlap.
fn check_chrome(doc: &Json, min_ranks: usize) -> Result<usize, String> {
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing 'traceEvents' array")?;
    let mut rank_tids: Vec<f64> = Vec::new();
    let mut saw_up = false;
    let mut async_begins = 0usize;
    let mut async_ends = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: missing 'ph'"))?;
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: missing 'name'"))?;
        match ph {
            "X" => {
                let tid = ev
                    .get("tid")
                    .and_then(Json::as_f64)
                    .ok_or(format!("event {i}: X without 'tid'"))?;
                let dur = ev
                    .get("dur")
                    .and_then(Json::as_f64)
                    .ok_or(format!("event {i}: X without 'dur'"))?;
                let ts = ev
                    .get("ts")
                    .and_then(Json::as_f64)
                    .ok_or(format!("event {i}: X without 'ts'"))?;
                if dur < 0.0 || ts < 0.0 {
                    return Err(format!("event {i} '{name}': negative ts/dur ({ts}/{dur})"));
                }
                if !rank_tids.contains(&tid) {
                    rank_tids.push(tid);
                }
                if name == "Up" {
                    saw_up = true;
                }
            }
            "b" => async_begins += 1,
            "e" => async_ends += 1,
            "M" | "I" => {}
            other => return Err(format!("event {i} '{name}': unknown ph '{other}'")),
        }
    }
    if rank_tids.len() < min_ranks {
        return Err(format!(
            "only {} rank tracks with spans (expected >= {min_ranks})",
            rank_tids.len()
        ));
    }
    if !saw_up {
        return Err("no 'Up' phase span in any rank track".to_string());
    }
    if min_ranks > 1 {
        if async_begins == 0 {
            return Err("no async comm begin events ('ph':'b') — overlap not captured".into());
        }
        if async_begins != async_ends {
            return Err(format!(
                "unbalanced async events: {async_begins} begins vs {async_ends} ends"
            ));
        }
    }
    Ok(rank_tids.len())
}
