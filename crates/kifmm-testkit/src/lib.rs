//! # kifmm-testkit — deterministic property testing without proptest
//!
//! A shrinking-free replacement for the slice of proptest this workspace
//! used: run a test body against `cases` pseudorandom inputs drawn from a
//! seeded generator, and report the failing case's seed on panic so the
//! exact input can be replayed.
//!
//! ```
//! use kifmm_testkit::{check, prop_assert};
//!
//! check("abs_is_nonnegative", 64, |g| {
//!     let x = g.f64(-100.0, 100.0);
//!     prop_assert!(x.abs() >= 0.0, "abs({x})");
//! });
//! ```
//!
//! Determinism: case `i` of a named property always sees the same input
//! stream (the base seed is fixed; override it with `KIFMM_PROP_SEED` to
//! explore a different region of the input space, or to replay the seed a
//! failure report printed). There is no shrinking — the generator favors
//! small sizes, and failing inputs are reproducible, which has proven
//! enough for these numeric properties.

use kifmm_geom::rng::{splitmix64, Rng};

pub mod fixtures;
pub mod json;

pub use fixtures::{
    check_matches_serial, check_matches_serial_opts, check_matches_serial_tol, cloud,
    serial_reference, split_points,
};

/// Per-case input generator: thin convenience layer over [`Rng`].
pub struct Gen {
    rng: Rng,
}

impl Gen {
    /// Generator for an explicit seed (usually [`check`] makes these).
    pub fn from_seed(seed: u64) -> Self {
        Gen { rng: Rng::seed_from_u64(seed) }
    }

    /// Uniform 64 random bits.
    pub fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform `u64` in `[lo, hi)`.
    pub fn u64_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.rng.below((hi - lo) as usize) as u64
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.range_f64(lo, hi)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize(&mut self, lo: usize, hi: usize) -> usize {
        self.rng.range_usize(lo, hi)
    }

    /// Uniform `u8` in `[lo, hi)`.
    pub fn u8(&mut self, lo: u8, hi: u8) -> u8 {
        self.rng.range_usize(lo as usize, hi as usize) as u8
    }

    /// Vector of `len` uniform `f64`s in `[lo, hi)`.
    pub fn vec_f64(&mut self, lo: f64, hi: f64, len: usize) -> Vec<f64> {
        (0..len).map(|_| self.rng.range_f64(lo, hi)).collect()
    }

    /// Shuffle a slice in place.
    pub fn shuffle<T>(&mut self, data: &mut [T]) {
        self.rng.shuffle(data);
    }
}

/// Fixed per-name base seed (FNV-1a over the name keeps distinct
/// properties on distinct input streams).
fn base_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Run `body` against `cases` deterministic pseudorandom inputs. On a
/// failing case the case index and per-case seed are printed before the
/// panic propagates; setting `KIFMM_PROP_SEED=<seed>` replays exactly
/// that input as the single case of every property.
pub fn check(name: &str, cases: usize, body: impl Fn(&mut Gen)) {
    let replay: Option<u64> =
        std::env::var("KIFMM_PROP_SEED").ok().and_then(|v| v.trim().parse().ok());
    let base = base_seed(name);
    let total = if replay.is_some() { 1 } else { cases };
    for case in 0..total {
        let seed = replay.unwrap_or_else(|| {
            let mut state = base.wrapping_add(case as u64);
            splitmix64(&mut state)
        });
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut gen = Gen::from_seed(seed);
            body(&mut gen);
        }));
        if let Err(payload) = result {
            eprintln!(
                "property '{name}' failed at case {case}/{total}; \
                 replay with KIFMM_PROP_SEED={seed}"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// `prop_assert!(cond)` / `prop_assert!(cond, fmt, args…)` — assert
/// inside a property body (plain panic; [`check`] adds replay info).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// `prop_assert_eq!(a, b)` — equality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(, $($fmt:tt)+)?) => {
        assert_eq!($a, $b $(, $($fmt)+)?)
    };
}

/// `prop_assert_ne!(a, b)` — inequality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(, $($fmt:tt)+)?) => {
        assert_ne!($a, $b $(, $($fmt)+)?)
    };
}

/// `prop_assume!(cond)` — discard the current case when the precondition
/// fails (the body must return `()`; the case counts as passed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic() {
        // Same property name ⇒ same case inputs. (check takes Fn, so
        // stash results through RefCells.)
        let first = std::cell::RefCell::new(Vec::new());
        check("determinism", 5, |g| first.borrow_mut().push(g.u64()));
        let second = std::cell::RefCell::new(Vec::new());
        check("determinism", 5, |g| second.borrow_mut().push(g.u64()));
        assert_eq!(first.into_inner(), second.into_inner());
    }

    #[test]
    fn distinct_names_get_distinct_streams() {
        let a = std::cell::RefCell::new(Vec::new());
        check("stream-a", 4, |g| a.borrow_mut().push(g.u64()));
        let b = std::cell::RefCell::new(Vec::new());
        check("stream-b", 4, |g| b.borrow_mut().push(g.u64()));
        assert_ne!(a.into_inner(), b.into_inner());
    }

    #[test]
    fn failing_case_propagates_panic() {
        let res = std::panic::catch_unwind(|| {
            check("fails", 10, |g| {
                let v = g.usize(0, 100);
                prop_assert!(v < usize::MAX, "unreachable");
                panic!("boom");
            });
        });
        assert!(res.is_err());
    }

    #[test]
    fn assume_discards_without_failing() {
        check("assume", 20, |g| {
            let v = g.usize(0, 10);
            prop_assume!(v < 5);
            prop_assert!(v < 5);
        });
    }

    #[test]
    fn generators_respect_ranges() {
        check("ranges", 50, |g| {
            let x = g.f64(-2.0, 3.0);
            prop_assert!((-2.0..3.0).contains(&x));
            let n = g.usize(1, 12);
            prop_assert!((1..12).contains(&n));
            let b = g.u8(3, 9);
            prop_assert!((3..9).contains(&b));
            let v = g.vec_f64(0.0, 1.0, n);
            prop_assert_eq!(v.len(), n);
        });
    }
}
