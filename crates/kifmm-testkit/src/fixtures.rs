//! Shared test fixtures: deterministic point clouds, rank partitioning,
//! and the serial-reference cross-check used by every evaluator path.
//!
//! These used to be duplicated in the test modules of `kifmm-core` and
//! `kifmm-parallel`; they live here so all three evaluation paths (serial,
//! shared-memory, distributed) validate against the *same* fixtures.

use kifmm_core::{rel_l2_error, Fmm, FmmOptions};
use kifmm_geom::random_densities;
use kifmm_kernels::{Kernel, Point3};
use kifmm_mpi::run;
use kifmm_parallel::ParallelFmm;
use kifmm_tree::partition_points;

/// Deterministic pseudo-random point cloud in `[-1, 1]^3` (LCG; stable
/// across platforms, no global RNG state). This exact sequence is baked
/// into many test tolerances — do not change the constants.
pub fn cloud(n: usize, seed: u64) -> Vec<Point3> {
    let mut s = seed;
    (0..n)
        .map(|_| {
            std::array::from_fn(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            })
        })
        .collect()
}

/// Partition a global cloud into per-rank chunks the way a real run
/// would: Morton-ordered parallel partitioning (paper §3.1).
pub fn split_points(all: &[Point3], ranks: usize) -> Vec<Vec<Point3>> {
    let part = partition_points(all, ranks);
    part.groups.iter().map(|g| g.iter().map(|&i| all[i]).collect()).collect()
}

/// Evaluate the concatenated problem with the serial [`Fmm`] and split
/// the potentials back into per-rank slices — ground truth for the
/// distributed driver's tests.
pub fn serial_reference<K: Kernel>(
    kernel: K,
    chunks: &[Vec<Point3>],
    densities: &[Vec<f64>],
    opts: FmmOptions,
) -> Vec<Vec<f64>> {
    let all_points: Vec<Point3> = chunks.iter().flatten().copied().collect();
    let all_dens: Vec<f64> = densities.iter().flatten().copied().collect();
    let td = kernel.trg_dim();
    let fmm = Fmm::new(kernel, &all_points, opts);
    let all_pot = fmm.eval(&all_dens).potentials;
    // Split back per rank.
    let mut out = Vec::with_capacity(chunks.len());
    let mut cursor = 0;
    for c in chunks {
        let len = c.len() * td;
        out.push(all_pot[cursor..cursor + len].to_vec());
        cursor += len;
    }
    out
}

/// Run `all` through the distributed driver on `ranks` virtual ranks and
/// assert the per-rank potentials match [`serial_reference`] to `tol`
/// relative l2 error, with every nonempty rank reporting work.
pub fn check_matches_serial_tol<K: Kernel>(
    kernel: K,
    all: Vec<Point3>,
    ranks: usize,
    dim: usize,
    tol: f64,
) {
    let opts = FmmOptions { order: 4, max_pts_per_leaf: 20, ..Default::default() };
    check_matches_serial_opts(kernel, all, ranks, dim, tol, opts);
}

/// As [`check_matches_serial_tol`], with caller-chosen [`FmmOptions`]
/// (e.g. a specific M2L mode) applied to both paths.
pub fn check_matches_serial_opts<K: Kernel>(
    kernel: K,
    all: Vec<Point3>,
    ranks: usize,
    dim: usize,
    tol: f64,
    opts: FmmOptions,
) {
    let chunks = split_points(&all, ranks);
    let dens: Vec<Vec<f64>> = chunks
        .iter()
        .enumerate()
        .map(|(r, c)| random_densities(c.len(), dim, r as u64 + 1))
        .collect();
    let serial = serial_reference(kernel.clone(), &chunks, &dens, opts);
    let chunks2 = chunks.clone();
    let dens2 = dens.clone();
    let out = run(ranks, move |comm| {
        let r = comm.rank();
        let pfmm = ParallelFmm::new(comm, kernel.clone(), &chunks2[r], opts);
        let report = pfmm.eval(comm, &dens2[r]);
        (report.potentials, report.stats.total_flops())
    });
    for (r, (pot, flops)) in out.into_iter().enumerate() {
        let e = rel_l2_error(&pot, &serial[r]);
        assert!(e < tol, "rank {r}: parallel vs serial error {e} (tol {tol})");
        if !chunks[r].is_empty() {
            assert!(flops > 0, "rank {r} did work");
        }
    }
}

/// [`check_matches_serial_tol`] at the historical 1e-9 accuracy gate.
pub fn check_matches_serial<K: Kernel>(kernel: K, all: Vec<Point3>, ranks: usize, dim: usize) {
    check_matches_serial_tol(kernel, all, ranks, dim, 1e-9);
}
