//! Particle distributions and surface patches for the SC'03 evaluation.
//!
//! §4 of the paper uses two particle sets inside the cube `[−1, 1]³`:
//!
//! 1. points sampled from **512 spheres centered on an 8×8×8 Cartesian
//!    grid** — approximately uniform at low sampling rates, locally
//!    non-uniform at high rates because the per-sphere (latitude/longitude)
//!    sampling is non-uniform ([`sphere_grid`]);
//! 2. a **non-uniform distribution clustered at the eight corners** of the
//!    cube ([`corner_clusters`]).
//!
//! Densities are random in `[0, 1]` ([`random_densities`]), as in the paper.
//! The partitioner in `kifmm-tree` consumes [`SurfacePatch`]es — the paper
//! partitions input surface patches by weight rather than raw particles.

pub mod distributions;
pub mod patch;
pub mod rng;

pub use distributions::{
    corner_clusters, ellipsoid_surface, fibonacci_sphere, latlong_sphere, random_densities,
    sphere_grid, sphere_grid_patches, uniform_cube,
};
pub use patch::SurfacePatch;
pub use rng::Rng;

/// A 3-D point (matches `kifmm_kernels::Point3`).
pub type Point3 = [f64; 3];
