//! Surface patches — the partitioning granularity of the paper.
//!
//! §3.1: "our input is a set of surface patches on which the particles are
//! generated. We first gather all input surface patches on a single
//! processor, and assign to each patch a weight which in the simplest case
//! is equal to the number of particles in that patch." The Morton-curve
//! partitioner in `kifmm-tree` splits patches into equal-weight groups.

use crate::Point3;

/// A group of particles generated from one input surface (e.g. one of the
/// 512 spheres), carrying the weight used for load balancing.
#[derive(Clone, Debug)]
pub struct SurfacePatch {
    /// Particles sampled from this patch.
    pub points: Vec<Point3>,
    /// Load-balancing weight; the simplest choice (and the paper's) is the
    /// particle count, but work estimates from a previous time step can be
    /// plugged in here.
    pub weight: f64,
}

impl SurfacePatch {
    /// Patch with weight = particle count (the paper's default).
    pub fn from_points(points: Vec<Point3>) -> Self {
        let weight = points.len() as f64;
        SurfacePatch { points, weight }
    }

    /// Patch with an explicit weight (e.g. a work estimate from a previous
    /// time step).
    pub fn with_weight(points: Vec<Point3>, weight: f64) -> Self {
        SurfacePatch { points, weight }
    }

    /// Centroid of the patch (used as its Morton-curve key).
    pub fn centroid(&self) -> Point3 {
        if self.points.is_empty() {
            return [0.0; 3];
        }
        let mut c = [0.0; 3];
        for p in &self.points {
            c[0] += p[0];
            c[1] += p[1];
            c[2] += p[2];
        }
        let inv = 1.0 / self.points.len() as f64;
        [c[0] * inv, c[1] * inv, c[2] * inv]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_defaults_to_count() {
        let p = SurfacePatch::from_points(vec![[0.0; 3], [1.0, 0.0, 0.0]]);
        assert_eq!(p.weight, 2.0);
    }

    #[test]
    fn centroid() {
        let p = SurfacePatch::from_points(vec![[0.0, 0.0, 0.0], [2.0, 4.0, -2.0]]);
        assert_eq!(p.centroid(), [1.0, 2.0, -1.0]);
        assert_eq!(SurfacePatch::from_points(vec![]).centroid(), [0.0; 3]);
    }
}
