//! Deterministic in-tree PRNG: splitmix64 seeding + xoshiro256++.
//!
//! Replaces the `rand` crate for the hermetic build. The generators are
//! the published reference algorithms (Blackman & Vigna): [`splitmix64`]
//! expands a 64-bit seed into the 256-bit xoshiro state (and is a fine
//! standalone mixer), and [`Rng`] is xoshiro256++ — fast, equidistributed
//! in all 64-bit sub-sequences, with a 2²⁵⁶−1 period. Fixed-seed output
//! is pinned by golden-value tests, so every distribution in this crate
//! is reproducible byte-for-byte across platforms and releases.

/// One step of the splitmix64 sequence: advances `state` and returns the
/// mixed output.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// xoshiro256++ generator.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seed the 256-bit state from a 64-bit seed via splitmix64 (the
    /// seeding procedure the xoshiro authors recommend).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Rng { s: std::array::from_fn(|_| splitmix64(&mut sm)) }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with the full 53 bits of mantissa.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform `usize` in `[0, n)` by rejection (no modulo bias).
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        let n = n as u64;
        // Reject the partial top interval so every residue is equally
        // likely. Zone is the largest multiple of n that fits in u64.
        let zone = u64::MAX - u64::MAX % n;
        loop {
            let v = self.next_u64();
            if v < zone {
                return (v % n) as usize;
            }
        }
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.below(hi - lo)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, data: &mut [T]) {
        for i in (1..data.len()).rev() {
            data.swap(i, self.below(i + 1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// splitmix64 reference vectors (state 0 and the canonical 0x…42 seed
    /// checked against the published reference implementation).
    #[test]
    fn splitmix64_golden() {
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xe220_a839_7b1d_cdaf);
        assert_eq!(splitmix64(&mut s), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(splitmix64(&mut s), 0x06c4_5d18_8009_454f);
    }

    /// Fixed-seed xoshiro256++ output, pinned so the distributions built
    /// on it can never drift silently.
    #[test]
    fn xoshiro_golden() {
        let mut rng = Rng::seed_from_u64(0);
        let got: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                0x53175d61490b23df,
                0x61da6f3dc380d507,
                0x5c0fdf91ec9a7bfc,
                0x02eebf8c3bbe5e1a,
            ]
        );
        let mut rng = Rng::seed_from_u64(42);
        let got: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            vec![0xd0764d4f4476689f, 0x519e4174576f3791, 0xfbe07cfb0c24ed8c]
        );
    }

    #[test]
    fn f64_in_unit_interval_and_deterministic() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        // Golden first draw for seed 7 (pins the u64→f64 conversion too).
        assert_eq!(a.next_f64(), 0.05536043647833311);
        b.next_f64();
        for _ in 0..1000 {
            let x = a.next_f64();
            assert!((0.0..1.0).contains(&x));
            assert_eq!(x, b.next_f64());
        }
    }

    #[test]
    fn below_is_in_range_and_hits_everything() {
        let mut rng = Rng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..200 {
            seen[rng.below(8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "200 draws must hit all 8 residues");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements almost surely move");
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
