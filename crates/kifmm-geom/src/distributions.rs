//! Point generators.

use crate::rng::Rng;
use crate::Point3;

/// Uniform random points in the cube `[−1, 1]³`.
pub fn uniform_cube(n: usize, seed: u64) -> Vec<Point3> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            [rng.range_f64(-1.0, 1.0), rng.range_f64(-1.0, 1.0), rng.range_f64(-1.0, 1.0)]
        })
        .collect()
}

/// Random source densities in `[0, 1]` — the density distribution used
/// throughout the paper's experiments ("densities are chosen randomly from
/// `[0, 1]`"). `components` is the kernel's source dimension.
pub fn random_densities(n: usize, components: usize, seed: u64) -> Vec<f64> {
    let mut rng = Rng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
    (0..n * components).map(|_| rng.next_f64()).collect()
}

/// Latitude/longitude sampling of a sphere — deliberately non-uniform
/// (points crowd at the poles), reproducing the paper's note that "the
/// sampling over a single sphere is non-uniform" at high rates.
pub fn latlong_sphere(center: Point3, radius: f64, n: usize) -> Vec<Point3> {
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![[center[0], center[1], center[2] + radius]];
    }
    // Choose rings ~ sqrt(n) and points per ring ~ sqrt(n).
    let rings = ((n as f64).sqrt().round() as usize).max(2);
    let per_ring = n.div_ceil(rings);
    // The ring grid overshoots (rings · per_ring ≥ n); truncate to the
    // requested count rather than returning the padded grid.
    let mut pts = Vec::with_capacity(rings * per_ring);
    for i in 0..rings {
        let theta = std::f64::consts::PI * (i as f64 + 0.5) / rings as f64;
        let (st, ct) = theta.sin_cos();
        for j in 0..per_ring {
            let phi = 2.0 * std::f64::consts::PI * j as f64 / per_ring as f64;
            let (sp, cp) = phi.sin_cos();
            pts.push([
                center[0] + radius * st * cp,
                center[1] + radius * st * sp,
                center[2] + radius * ct,
            ]);
        }
    }
    pts.truncate(n);
    assert_eq!(pts.len(), n, "latlong_sphere must return exactly n points");
    pts
}

/// Near-uniform Fibonacci-spiral sphere sampling (used by the
/// boundary-integral solver where a quasi-uniform quadrature is wanted).
pub fn fibonacci_sphere(center: Point3, radius: f64, n: usize) -> Vec<Point3> {
    let golden = (1.0 + 5f64.sqrt()) / 2.0;
    (0..n)
        .map(|i| {
            let z = 1.0 - (2.0 * i as f64 + 1.0) / n as f64;
            let r = (1.0 - z * z).max(0.0).sqrt();
            let phi = 2.0 * std::f64::consts::PI * (i as f64 / golden).fract();
            let (s, c) = phi.sin_cos();
            [center[0] + radius * r * c, center[1] + radius * r * s, center[2] + radius * z]
        })
        .collect()
}

/// Surface points of an axis-aligned ellipsoid (Fibonacci parametrization
/// scaled per axis).
pub fn ellipsoid_surface(center: Point3, semi_axes: [f64; 3], n: usize) -> Vec<Point3> {
    fibonacci_sphere([0.0; 3], 1.0, n)
        .into_iter()
        .map(|p| {
            [
                center[0] + semi_axes[0] * p[0],
                center[1] + semi_axes[1] * p[1],
                center[2] + semi_axes[2] * p[2],
            ]
        })
        .collect()
}

/// The paper's first particle set: `total` points distributed over 512
/// spheres centered on an 8×8×8 Cartesian grid in `[−1, 1]³`
/// (lat/long-sampled, so locally non-uniform at high rates).
///
/// Returns one point set; use [`sphere_grid_patches`] when the partitioner
/// needs the per-sphere structure.
pub fn sphere_grid(total: usize, grid: usize) -> Vec<Point3> {
    sphere_grid_patches(total, grid).into_iter().flatten().collect()
}

/// Per-sphere point sets for the sphere-grid distribution; `grid = 8`
/// reproduces the paper's 512-sphere input.
pub fn sphere_grid_patches(total: usize, grid: usize) -> Vec<Vec<Point3>> {
    assert!(grid >= 1);
    let spheres = grid * grid * grid;
    let per = total / spheres;
    let mut rem = total % spheres;
    // Sphere radius: a bit less than half the grid spacing so neighbors
    // don't touch. Grid spacing in [-1,1] is 2/grid.
    let spacing = 2.0 / grid as f64;
    let radius = 0.4 * spacing;
    let mut out = Vec::with_capacity(spheres);
    for i in 0..grid {
        for j in 0..grid {
            for k in 0..grid {
                let c = [
                    -1.0 + spacing * (i as f64 + 0.5),
                    -1.0 + spacing * (j as f64 + 0.5),
                    -1.0 + spacing * (k as f64 + 0.5),
                ];
                let n = per + usize::from(rem > 0);
                rem = rem.saturating_sub(1);
                out.push(latlong_sphere(c, radius, n));
            }
        }
    }
    out
}

/// The paper's second particle set: points clustered at the eight corners
/// of `[−1, 1]³`. Each point is drawn at a power-law distance from a
/// randomly chosen corner, giving strong local refinement.
pub fn corner_clusters(n: usize, seed: u64) -> Vec<Point3> {
    let mut rng = Rng::seed_from_u64(seed ^ 0xc0ffee);
    let corners: Vec<Point3> = (0..8)
        .map(|c| {
            [
                if c & 1 == 0 { -1.0 } else { 1.0 },
                if c & 2 == 0 { -1.0 } else { 1.0 },
                if c & 4 == 0 { -1.0 } else { 1.0 },
            ]
        })
        .collect();
    (0..n)
        .map(|_| {
            let corner = corners[rng.below(8)];
            // Power-law radius: heavy clustering at the corner, tail across
            // the cube.
            let u: f64 = rng.next_f64().max(1e-12);
            let r = 0.9 * u * u * u;
            // Random direction pointing into the cube.
            let dir = loop {
                let v = [
                    rng.range_f64(-1.0, 1.0),
                    rng.range_f64(-1.0, 1.0),
                    rng.range_f64(-1.0, 1.0),
                ];
                let n2 = v[0] * v[0] + v[1] * v[1] + v[2] * v[2];
                if n2 > 1e-12 && n2 <= 1.0 {
                    let inv = 1.0 / n2.sqrt();
                    break [v[0] * inv, v[1] * inv, v[2] * inv];
                }
            };
            let mut p = [
                corner[0] - corner[0].signum() * r * dir[0].abs() * 2.0,
                corner[1] - corner[1].signum() * r * dir[1].abs() * 2.0,
                corner[2] - corner[2].signum() * r * dir[2].abs() * 2.0,
            ];
            for v in &mut p {
                *v = v.clamp(-1.0, 1.0);
            }
            p
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_cube_in_bounds_and_deterministic() {
        let a = uniform_cube(100, 42);
        let b = uniform_cube(100, 42);
        assert_eq!(a, b);
        assert!(a.iter().all(|p| p.iter().all(|&v| (-1.0..1.0).contains(&v))));
        let c = uniform_cube(100, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn densities_in_unit_interval() {
        let d = random_densities(50, 3, 7);
        assert_eq!(d.len(), 150);
        assert!(d.iter().all(|&v| (0.0..1.0).contains(&v)));
    }

    #[test]
    fn spheres_have_correct_radius() {
        for gen in [latlong_sphere as fn(Point3, f64, usize) -> Vec<Point3>, fibonacci_sphere] {
            let pts = gen([1.0, -2.0, 0.5], 0.7, 200);
            assert_eq!(pts.len(), 200);
            for p in &pts {
                let r = ((p[0] - 1.0).powi(2) + (p[1] + 2.0).powi(2) + (p[2] - 0.5).powi(2)).sqrt();
                assert!((r - 0.7).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn sphere_grid_count_and_bounds() {
        let pts = sphere_grid(10_000, 8);
        assert_eq!(pts.len(), 10_000);
        assert!(pts.iter().all(|p| p.iter().all(|&v| (-1.0..=1.0).contains(&v))));
        let patches = sphere_grid_patches(10_000, 8);
        assert_eq!(patches.len(), 512);
        let total: usize = patches.iter().map(|p| p.len()).sum();
        assert_eq!(total, 10_000);
    }

    #[test]
    fn sphere_grid_spheres_disjoint() {
        // Neighboring sphere centers are spacing apart with radius 0.4*spacing,
        // so patches cannot overlap.
        let patches = sphere_grid_patches(4096, 4);
        let spacing = 2.0 / 4.0;
        for (a, pa) in patches.iter().enumerate() {
            for pt in pa {
                // Every point is within 0.4*spacing + eps of its own center.
                let ci = [a / 16, (a / 4) % 4, a % 4];
                let c = [
                    -1.0 + spacing * (ci[0] as f64 + 0.5),
                    -1.0 + spacing * (ci[1] as f64 + 0.5),
                    -1.0 + spacing * (ci[2] as f64 + 0.5),
                ];
                let r = ((pt[0] - c[0]).powi(2) + (pt[1] - c[1]).powi(2) + (pt[2] - c[2]).powi(2))
                    .sqrt();
                assert!(r <= 0.4 * spacing + 1e-12);
            }
        }
    }

    #[test]
    fn corner_clusters_cluster() {
        let pts = corner_clusters(4000, 1);
        assert_eq!(pts.len(), 4000);
        assert!(pts.iter().all(|p| p.iter().all(|&v| (-1.0..=1.0).contains(&v))));
        // Most points lie near some corner: median distance-to-nearest-corner
        // must be much smaller than for a uniform cloud (~0.96).
        let mut d: Vec<f64> = pts
            .iter()
            .map(|p| {
                let mut best = f64::INFINITY;
                for c in 0..8 {
                    let corner = [
                        if c & 1 == 0 { -1.0 } else { 1.0 },
                        if c & 2 == 0 { -1.0f64 } else { 1.0 },
                        if c & 4 == 0 { -1.0 } else { 1.0 },
                    ];
                    let dist = ((p[0] - corner[0]) as f64).hypot(p[1] - corner[1]).hypot(p[2] - corner[2]);
                    best = best.min(dist);
                }
                best
            })
            .collect();
        d.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(d[2000] < 0.5, "median corner distance {}", d[2000]);
    }

    #[test]
    fn ellipsoid_on_surface() {
        let pts = ellipsoid_surface([0.0; 3], [2.0, 1.0, 0.5], 100);
        for p in &pts {
            let v = (p[0] / 2.0).powi(2) + p[1].powi(2) + (p[2] / 0.5).powi(2);
            assert!((v - 1.0).abs() < 1e-12);
        }
    }
}
