//! Property-based tests for the linear algebra substrate.

use kifmm_linalg::{gemv, gemv_t, householder_qr, lstsq, lu_factor, lu_solve, nrm2, pinv, svd, Mat};
use kifmm_testkit::{check, prop_assert, prop_assume, Gen};

fn gen_mat(g: &mut Gen, max_dim: usize) -> Mat {
    let m = g.usize(1, max_dim + 1);
    let n = g.usize(1, max_dim + 1);
    Mat::from_vec(m, n, g.vec_f64(-10.0, 10.0, m * n))
}

#[test]
fn svd_reconstructs_any_matrix() {
    check("svd_reconstructs_any_matrix", 40, |g| {
        let a = gen_mat(g, 12);
        let f = svd(&a);
        let r = f.reconstruct();
        let scale = a.max_abs().max(1.0);
        for (x, y) in r.as_slice().iter().zip(a.as_slice()) {
            prop_assert!((x - y).abs() < 1e-9 * scale);
        }
        // Singular values nonnegative descending.
        prop_assert!(f.s.iter().all(|&s| s >= 0.0));
        prop_assert!(f.s.windows(2).all(|w| w[0] >= w[1]));
    });
}

#[test]
fn pinv_satisfies_moore_penrose() {
    check("pinv_satisfies_moore_penrose", 40, |g| {
        let a = gen_mat(g, 10);
        let p = pinv(&a);
        let apa = a.matmul(&p).matmul(&a);
        let scale = a.max_abs().max(1.0);
        for (x, y) in apa.as_slice().iter().zip(a.as_slice()) {
            prop_assert!((x - y).abs() < 1e-7 * scale, "A A+ A = A");
        }
        let pap = p.matmul(&a).matmul(&p);
        let pscale = p.max_abs().max(1.0);
        for (x, y) in pap.as_slice().iter().zip(p.as_slice()) {
            prop_assert!((x - y).abs() < 1e-7 * pscale, "A+ A A+ = A+");
        }
    });
}

#[test]
fn nrm2_nan_propagates_at_any_position() {
    check("nrm2_nan_propagates_at_any_position", 40, |g| {
        let n = g.usize(1, 40);
        let mut v = g.vec_f64(-1e5, 1e5, n);
        let pos = g.usize(0, n);
        v[pos] = f64::NAN;
        prop_assert!(nrm2(&v).is_nan(), "NaN at index {pos} must poison the norm");
    });
}

#[test]
fn nrm2_inf_without_nan_is_inf() {
    check("nrm2_inf_without_nan_is_inf", 40, |g| {
        let n = g.usize(1, 40);
        let mut v = g.vec_f64(-1e5, 1e5, n);
        let pos = g.usize(0, n);
        v[pos] = if g.usize(0, 2) == 0 { f64::INFINITY } else { f64::NEG_INFINITY };
        prop_assert!(nrm2(&v) == f64::INFINITY);
    });
}

#[test]
fn nrm2_scales_past_overflow_and_underflow() {
    check("nrm2_scales_past_overflow_and_underflow", 40, |g| {
        // Exact powers of two: rescaling by them is lossless, so the norm
        // of 2^e·v must equal 2^e·‖v‖ to high relative accuracy even when
        // the squares over/underflow f64.
        let n = g.usize(1, 20);
        let v = g.vec_f64(-1.0, 1.0, n);
        let base = nrm2(&v);
        prop_assume!(base > 0.0);
        for e in [600i32, -600] {
            let scale = (e as f64).exp2();
            let scaled: Vec<f64> = v.iter().map(|&x| x * scale).collect();
            let got = nrm2(&scaled);
            prop_assert!(got.is_finite(), "norm must not overflow: {got}");
            let rel = (got / scale - base).abs() / base;
            prop_assert!(rel < 1e-14, "relative error {rel} at 2^{e}");
        }
    });
}

#[test]
fn lu_solves_diagonally_dominant() {
    check("lu_solves_diagonally_dominant", 40, |g| {
        let v = g.vec_f64(-1.0, 1.0, 36);
        let rhs = g.vec_f64(-5.0, 5.0, 6);
        let mut a = Mat::from_vec(6, 6, v);
        for i in 0..6 {
            let off: f64 = (0..6).filter(|&j| j != i).map(|j| a[(i, j)].abs()).sum();
            a[(i, i)] = off + 1.0;
        }
        let f = lu_factor(&a).expect("diagonally dominant ⇒ nonsingular");
        let x = lu_solve(&f, &rhs);
        let r = a.matvec(&x);
        for (u, w) in r.iter().zip(&rhs) {
            prop_assert!((u - w).abs() < 1e-9);
        }
    });
}

#[test]
fn gemv_transpose_consistency() {
    check("gemv_transpose_consistency", 40, |g| {
        let a = gen_mat(g, 9);
        // x'(A y) == (A' x)' y for random vectors.
        let (m, n) = a.shape();
        let x: Vec<f64> = (0..m).map(|i| (i as f64 * 0.7).sin()).collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).cos()).collect();
        let mut ay = vec![0.0; m];
        gemv(1.0, &a, &y, 0.0, &mut ay);
        let mut atx = vec![0.0; n];
        gemv_t(1.0, &a, &x, 0.0, &mut atx);
        let lhs: f64 = x.iter().zip(&ay).map(|(u, v)| u * v).sum();
        let rhs: f64 = atx.iter().zip(&y).map(|(u, v)| u * v).sum();
        prop_assert!((lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()));
    });
}

#[test]
fn qr_orthogonality() {
    check("qr_orthogonality", 40, |g| {
        let a = gen_mat(g, 10);
        let (m, n) = a.shape();
        prop_assume!(m >= n);
        let (q, r) = householder_qr(&a);
        let qr = q.matmul(&r);
        let scale = a.max_abs().max(1.0);
        for (x, y) in qr.as_slice().iter().zip(a.as_slice()) {
            prop_assert!((x - y).abs() < 1e-9 * scale);
        }
    });
}

#[test]
fn lstsq_residual_orthogonal_to_columns() {
    check("lstsq_residual_orthogonal_to_columns", 40, |g| {
        let a = gen_mat(g, 8);
        let seed = g.u64_range(0, 50);
        let (m, n) = a.shape();
        prop_assume!(m > n);
        // Require decent conditioning so the solve is well posed.
        let f = svd(&a);
        prop_assume!(f.s[0] > 0.0 && f.s.last().unwrap() / f.s[0] > 1e-6);
        let b: Vec<f64> = (0..m).map(|i| ((i as u64 * 37 + seed) % 11) as f64 - 5.0).collect();
        let x = lstsq(&a, &b);
        // Residual must be orthogonal to the column space: Aᵀ(b − Ax) = 0.
        let ax = a.matvec(&x);
        let res: Vec<f64> = b.iter().zip(&ax).map(|(u, v)| u - v).collect();
        let mut atr = vec![0.0; n];
        gemv_t(1.0, &a, &res, 0.0, &mut atr);
        let bn = b.iter().map(|v| v * v).sum::<f64>().sqrt().max(1.0);
        for v in atr {
            prop_assert!(v.abs() < 1e-6 * bn, "normal equations violated: {v}");
        }
    });
}
