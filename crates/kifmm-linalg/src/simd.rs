//! In-tree 4-wide SIMD microkernels (`std::arch`, no external crates).
//!
//! Every routine here has a scalar twin with the **same floating-point
//! contraction tree**, so the vector and scalar paths are bit-identical:
//!
//! * [`dot`] — four vertical lane accumulators reduced as
//!   `(s0+s1) + (s2+s3)`, exactly the 4-way accumulator split the scalar
//!   code has always used (no FMA: explicit mul then add, both correctly
//!   rounded).
//! * [`axpy`] — elementwise `y[i] += alpha·x[i]`; one rounding per element
//!   either way.
//! * [`recip_sqrt`] — `v[i] → 1/√v[i]` (0 where `v[i] ≤ 0`); IEEE-754
//!   requires `sqrt` and `div` to be correctly rounded, so the vector
//!   lanes equal the scalar results bit-for-bit.
//!
//! Dispatch is resolved once per process: compiled out entirely under the
//! `portable` cargo feature or on non-x86_64 targets, otherwise gated on
//! `is_x86_feature_detected!("avx2")` and on the `KIFMM_SIMD` environment
//! variable (`KIFMM_SIMD=0` forces scalar). [`set_force_scalar`] flips the
//! decision at runtime so one process can check SIMD ≡ scalar bitwise —
//! the `simd_equivalence_check` gate in `scripts/verify.sh` does exactly
//! that.

use std::sync::atomic::{AtomicU8, Ordering};

/// Tri-state dispatch mode: 0 = undecided, 1 = SIMD, 2 = scalar.
static MODE: AtomicU8 = AtomicU8::new(0);

const MODE_SIMD: u8 = 1;
const MODE_SCALAR: u8 = 2;

fn detect() -> u8 {
    #[cfg(all(target_arch = "x86_64", not(feature = "portable")))]
    {
        let env_off = std::env::var("KIFMM_SIMD").map(|v| v == "0").unwrap_or(false);
        if !env_off && std::arch::is_x86_feature_detected!("avx2") {
            return MODE_SIMD;
        }
    }
    MODE_SCALAR
}

/// Whether the vector code path is active for this process right now.
#[inline]
pub fn simd_active() -> bool {
    match MODE.load(Ordering::Relaxed) {
        0 => {
            let m = detect();
            MODE.store(m, Ordering::Relaxed);
            m == MODE_SIMD
        }
        m => m == MODE_SIMD,
    }
}

/// Force the scalar path (`true`) or re-run detection (`false`). The
/// switch exists for equivalence gating — both paths are bit-identical,
/// so flipping it mid-process is observable only through timing.
pub fn set_force_scalar(on: bool) {
    if on {
        MODE.store(MODE_SCALAR, Ordering::Relaxed);
    } else {
        MODE.store(detect(), Ordering::Relaxed);
    }
}

/// Scalar reference for [`dot`]: 4-way accumulator split, reduced as
/// `(s0+s1) + (s2+s3)`, scalar remainder appended left-to-right.
#[inline]
pub fn dot_scalar(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    let n = x.len();
    let chunks = n / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    for c in 0..chunks {
        let i = 4 * c;
        s0 += x[i] * y[i];
        s1 += x[i + 1] * y[i + 1];
        s2 += x[i + 2] * y[i + 2];
        s3 += x[i + 3] * y[i + 3];
    }
    let mut s = (s0 + s1) + (s2 + s3);
    for i in 4 * chunks..n {
        s += x[i] * y[i];
    }
    s
}

/// Scalar reference for [`axpy`].
#[inline]
pub fn axpy_scalar(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Scalar reference for [`recip_sqrt`].
#[inline]
pub fn recip_sqrt_scalar(v: &mut [f64]) {
    for r2 in v.iter_mut() {
        *r2 = if *r2 > 0.0 { 1.0 / r2.sqrt() } else { 0.0 };
    }
}

#[cfg(all(target_arch = "x86_64", not(feature = "portable")))]
mod x86 {
    use core::arch::x86_64::*;

    /// # Safety
    /// Caller must have verified AVX2 support ([`super::simd_active`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot(x: &[f64], y: &[f64]) -> f64 {
        let n = x.len();
        let chunks = n / 4;
        let (xp, yp) = (x.as_ptr(), y.as_ptr());
        // One vector accumulator = the scalar path's four lane sums.
        let mut acc = _mm256_setzero_pd();
        for c in 0..chunks {
            let i = 4 * c;
            let xv = _mm256_loadu_pd(xp.add(i));
            let yv = _mm256_loadu_pd(yp.add(i));
            acc = _mm256_add_pd(acc, _mm256_mul_pd(xv, yv));
        }
        let lo = _mm256_castpd256_pd128(acc); // lanes s0, s1
        let hi = _mm256_extractf128_pd::<1>(acc); // lanes s2, s3
        let s01 = _mm_add_sd(lo, _mm_unpackhi_pd(lo, lo));
        let s23 = _mm_add_sd(hi, _mm_unpackhi_pd(hi, hi));
        let mut s = _mm_cvtsd_f64(_mm_add_sd(s01, s23));
        for i in 4 * chunks..n {
            s += *xp.add(i) * *yp.add(i);
        }
        s
    }

    /// # Safety
    /// Caller must have verified AVX2 support ([`super::simd_active`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
        let n = x.len();
        let chunks = n / 4;
        let av = _mm256_set1_pd(alpha);
        let xp = x.as_ptr();
        let yp = y.as_mut_ptr();
        for c in 0..chunks {
            let i = 4 * c;
            let xv = _mm256_loadu_pd(xp.add(i));
            let yv = _mm256_loadu_pd(yp.add(i));
            _mm256_storeu_pd(yp.add(i), _mm256_add_pd(yv, _mm256_mul_pd(av, xv)));
        }
        for i in 4 * chunks..n {
            *yp.add(i) += alpha * *xp.add(i);
        }
    }

    /// # Safety
    /// Caller must have verified AVX2 support ([`super::simd_active`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn recip_sqrt(v: &mut [f64]) {
        let n = v.len();
        let chunks = n / 4;
        let one = _mm256_set1_pd(1.0);
        let zero = _mm256_setzero_pd();
        let p = v.as_mut_ptr();
        for c in 0..chunks {
            let i = 4 * c;
            let vv = _mm256_loadu_pd(p.add(i));
            let w = _mm256_div_pd(one, _mm256_sqrt_pd(vv));
            // Zero out the w ≤ 0 lanes (1/√0 = ∞ masked to +0.0 bits).
            let mask = _mm256_cmp_pd::<_CMP_GT_OQ>(vv, zero);
            _mm256_storeu_pd(p.add(i), _mm256_and_pd(w, mask));
        }
        for i in 4 * chunks..n {
            let r2 = *p.add(i);
            *p.add(i) = if r2 > 0.0 { 1.0 / r2.sqrt() } else { 0.0 };
        }
    }
}

/// Dot product with four-way accumulator splitting; vector and scalar
/// paths are bit-identical.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    #[cfg(all(target_arch = "x86_64", not(feature = "portable")))]
    if simd_active() {
        return unsafe { x86::dot(x, y) };
    }
    dot_scalar(x, y)
}

/// `y += alpha * x`; vector and scalar paths are bit-identical.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    #[cfg(all(target_arch = "x86_64", not(feature = "portable")))]
    if simd_active() {
        return unsafe { x86::axpy(alpha, x, y) };
    }
    axpy_scalar(alpha, x, y)
}

/// In place `v[i] → 1/√v[i]`, with `v[i] ≤ 0` mapped to 0 (the branchless
/// coincident-pair convention of the kernel `p2p` loops); vector and
/// scalar paths are bit-identical because IEEE `sqrt`/`div` are correctly
/// rounded.
#[inline]
pub fn recip_sqrt(v: &mut [f64]) {
    #[cfg(all(target_arch = "x86_64", not(feature = "portable")))]
    if simd_active() {
        return unsafe { x86::recip_sqrt(v) };
    }
    recip_sqrt_scalar(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs(n: usize) -> (Vec<f64>, Vec<f64>) {
        let x: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) as f64).sin() * 1e3).collect();
        let y: Vec<f64> = (0..n).map(|i| ((i * 13 + 1) as f64).cos() / 7.0).collect();
        (x, y)
    }

    #[test]
    fn dot_simd_matches_scalar_bitwise() {
        for n in [0, 1, 3, 4, 5, 8, 17, 64, 1023] {
            let (x, y) = vecs(n);
            let s = dot_scalar(&x, &y);
            let v = dot(&x, &y);
            assert_eq!(s.to_bits(), v.to_bits(), "n = {n}");
        }
    }

    #[test]
    fn axpy_simd_matches_scalar_bitwise() {
        for n in [0, 1, 4, 7, 33, 1000] {
            let (x, y0) = vecs(n);
            let mut ys = y0.clone();
            axpy_scalar(-1.75, &x, &mut ys);
            let mut yv = y0.clone();
            axpy(-1.75, &x, &mut yv);
            for (a, b) in ys.iter().zip(&yv) {
                assert_eq!(a.to_bits(), b.to_bits(), "n = {n}");
            }
        }
    }

    #[test]
    fn recip_sqrt_simd_matches_scalar_bitwise() {
        for n in [0, 1, 4, 6, 31, 257] {
            let v0: Vec<f64> = (0..n)
                .map(|i| if i % 5 == 0 { 0.0 } else { ((i * 11 + 1) as f64).fract() + i as f64 })
                .collect();
            let mut vs = v0.clone();
            recip_sqrt_scalar(&mut vs);
            let mut vv = v0.clone();
            recip_sqrt(&mut vv);
            for (a, b) in vs.iter().zip(&vv) {
                assert_eq!(a.to_bits(), b.to_bits(), "n = {n}");
            }
        }
    }

    #[test]
    fn force_scalar_switch_round_trips() {
        let (x, y) = vecs(100);
        let auto = dot(&x, &y);
        set_force_scalar(true);
        assert!(!simd_active());
        let forced = dot(&x, &y);
        set_force_scalar(false);
        assert_eq!(auto.to_bits(), forced.to_bits());
        assert_eq!(dot(&x, &y).to_bits(), forced.to_bits());
    }
}
