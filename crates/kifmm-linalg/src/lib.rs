//! Dense linear algebra substrate for `kifmm-rs`.
//!
//! The kernel-independent FMM (Ying, Biros, Zorin & Langston, SC 2003)
//! replaces analytic multipole expansions with *equivalent densities* that
//! are obtained by inverting small, ill-conditioned integral-equation
//! systems on check surfaces. The paper's implementation leaned on LAPACK /
//! CXML for this; this crate provides the same functionality from scratch:
//!
//! * [`Mat`] — a row-major dense matrix with the usual arithmetic,
//! * [`gemm`]/[`gemv`] — cache-friendly matrix products used by every FMM
//!   translation,
//! * [`svd()`](svd::svd) — a one-sided Jacobi SVD (backward stable, accurate for the
//!   small systems KIFMM builds, up to ~10³ unknowns),
//! * [`pinv()`](pinv::pinv) — the truncated-SVD pseudoinverse that regularizes the
//!   check-to-equivalent inversions,
//! * [`lu_factor`]/[`lu_solve`] — LU with partial pivoting for general
//!   square solves,
//! * [`lstsq`] — Householder-QR least squares.

pub mod blas;
pub mod lu;
pub mod matrix;
pub mod pinv;
pub mod qr;
pub mod simd;
pub mod svd;

pub use blas::{axpy, dot, gemm, gemm_slices, gemm_tn, gemv, gemv_t, nrm2};
pub use lu::{lu_factor, lu_solve, LuFactors};
pub use matrix::Mat;
pub use pinv::{pinv, pinv_with_tol};
pub use qr::{householder_qr, lstsq};
pub use svd::{svd, Svd};
