//! BLAS-like building blocks.
//!
//! These are the only routines that appear in the FMM's inner loops outside
//! of raw kernel evaluation, so they are written to vectorize: contiguous
//! row-major access, 4-wide accumulator splitting for reductions, and a
//! blocked `k`-outer GEMM that keeps the `b` row hot in cache.

use crate::matrix::Mat;

/// Dot product with four-way accumulator splitting (explicit AVX2 lanes
/// where available — see [`crate::simd`]; the scalar path is bit-identical).
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    crate::simd::dot(x, y)
}

/// Euclidean norm, computed with scaling to avoid overflow/underflow.
///
/// NaN elements propagate: `f64::max` would silently drop them (making a
/// poisoned vector look finite and corrupting QR/SVD rank decisions
/// downstream), so the scan checks explicitly. Any ±∞ element yields +∞.
pub fn nrm2(x: &[f64]) -> f64 {
    let mut amax = 0.0_f64;
    for &v in x {
        let a = v.abs();
        if a.is_nan() {
            return f64::NAN;
        }
        if a > amax {
            amax = a;
        }
    }
    if amax == 0.0 || !amax.is_finite() {
        return amax;
    }
    let mut s = 0.0;
    for &v in x {
        let t = v / amax;
        s += t * t;
    }
    amax * s.sqrt()
}

/// `y += alpha * x` (explicit AVX2 lanes where available — see
/// [`crate::simd`]; the scalar path is bit-identical).
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    crate::simd::axpy(alpha, x, y)
}

/// `y = alpha * A * x + beta * y` for row-major `A`.
pub fn gemv(alpha: f64, a: &Mat, x: &[f64], beta: f64, y: &mut [f64]) {
    assert_eq!(a.cols(), x.len(), "gemv: A.cols != x.len");
    assert_eq!(a.rows(), y.len(), "gemv: A.rows != y.len");
    for i in 0..a.rows() {
        let r = dot(a.row(i), x);
        y[i] = alpha * r + beta * y[i];
    }
}

/// `y = alpha * A^T * x + beta * y` for row-major `A` (treats rows of `A` as
/// update directions so memory access stays contiguous).
pub fn gemv_t(alpha: f64, a: &Mat, x: &[f64], beta: f64, y: &mut [f64]) {
    assert_eq!(a.rows(), x.len(), "gemv_t: A.rows != x.len");
    assert_eq!(a.cols(), y.len(), "gemv_t: A.cols != y.len");
    if beta != 1.0 {
        for v in y.iter_mut() {
            *v *= beta;
        }
    }
    for i in 0..a.rows() {
        axpy(alpha * x[i], a.row(i), y);
    }
}

/// `C = alpha * A * B + beta * C`, all row-major.
///
/// Uses the `i-k-j` loop order: the innermost loop streams over a row of `B`
/// and a row of `C`, both contiguous, which is the standard cache-friendly
/// ordering for row-major GEMM.
pub fn gemm(alpha: f64, a: &Mat, b: &Mat, beta: f64, c: &mut Mat) {
    assert_eq!(a.cols(), b.rows(), "gemm: inner dims");
    assert_eq!(c.rows(), a.rows(), "gemm: C rows");
    assert_eq!(c.cols(), b.cols(), "gemm: C cols");
    let (m, k) = (a.rows(), a.cols());
    if beta != 1.0 {
        for v in c.as_mut_slice() {
            *v *= beta;
        }
    }
    for i in 0..m {
        let arow = a.row(i);
        // Split borrows: c row is disjoint from a and b.
        let crow = c.row_mut(i);
        for p in 0..k {
            let aip = alpha * arow[p];
            if aip == 0.0 {
                continue;
            }
            axpy(aip, b.row(p), crow);
        }
    }
}

/// `C = alpha * A * B + beta * C` over raw row-major slices: `A` is
/// `m×k`, `B` is `k×n`, `C` is `m×n`.
///
/// This is the multi-RHS entry point used by the FMM pass engine to apply
/// one translation operator to a whole level of expansion vectors at once
/// (the columns of `B`). Same `i-k-j` loop order — and hence the same
/// floating-point result per output element — as [`gemm`], so callers may
/// compute disjoint row blocks of `C` on different threads and still get
/// results bit-identical to the single-call execution.
pub fn gemm_slices(
    alpha: f64,
    a: &[f64],
    b: &[f64],
    beta: f64,
    c: &mut [f64],
    m: usize,
    k: usize,
    n: usize,
) {
    assert_eq!(a.len(), m * k, "gemm_slices: A size");
    assert_eq!(b.len(), k * n, "gemm_slices: B size");
    assert_eq!(c.len(), m * n, "gemm_slices: C size");
    if beta != 1.0 {
        for v in c.iter_mut() {
            *v *= beta;
        }
    }
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for p in 0..k {
            let aip = alpha * arow[p];
            if aip == 0.0 {
                continue;
            }
            axpy(aip, &b[p * n..(p + 1) * n], crow);
        }
    }
}

/// `C = alpha * A^T * B + beta * C`, all row-major.
pub fn gemm_tn(alpha: f64, a: &Mat, b: &Mat, beta: f64, c: &mut Mat) {
    assert_eq!(a.rows(), b.rows(), "gemm_tn: inner dims");
    assert_eq!(c.rows(), a.cols(), "gemm_tn: C rows");
    assert_eq!(c.cols(), b.cols(), "gemm_tn: C cols");
    if beta != 1.0 {
        for v in c.as_mut_slice() {
            *v *= beta;
        }
    }
    for p in 0..a.rows() {
        let arow = a.row(p);
        let brow = b.row(p);
        for i in 0..a.cols() {
            let w = alpha * arow[i];
            if w == 0.0 {
                continue;
            }
            axpy(w, brow, c.row_mut(i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_mm(a: &Mat, b: &Mat) -> Mat {
        let mut c = Mat::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for p in 0..a.cols() {
                    s += a[(i, p)] * b[(p, j)];
                }
                c[(i, j)] = s;
            }
        }
        c
    }

    #[test]
    fn dot_matches_naive() {
        let x: Vec<f64> = (0..13).map(|i| i as f64 * 0.3 - 1.0).collect();
        let y: Vec<f64> = (0..13).map(|i| (i * i) as f64 * 0.01).collect();
        let naive: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!((dot(&x, &y) - naive).abs() < 1e-12);
    }

    #[test]
    fn nrm2_scaling_safe() {
        assert_eq!(nrm2(&[]), 0.0);
        assert_eq!(nrm2(&[0.0, 0.0]), 0.0);
        assert!((nrm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        // Values whose squares overflow f64.
        let big = 1e200;
        assert!((nrm2(&[big, big]) - big * 2f64.sqrt()).abs() / big < 1e-14);
    }

    #[test]
    fn nrm2_propagates_nan_and_inf() {
        // NaN anywhere — including after a larger finite element, where the
        // old `fold(max)` scan silently dropped it — must poison the norm.
        assert!(nrm2(&[f64::NAN]).is_nan());
        assert!(nrm2(&[1.0, f64::NAN, 2.0]).is_nan());
        assert!(nrm2(&[1e300, f64::NAN]).is_nan());
        assert!(nrm2(&[f64::NAN, f64::INFINITY]).is_nan());
        // Infinities (no NaN present) give +∞, regardless of sign/position.
        assert_eq!(nrm2(&[f64::INFINITY]), f64::INFINITY);
        assert_eq!(nrm2(&[1.0, f64::NEG_INFINITY, 3.0]), f64::INFINITY);
    }

    #[test]
    fn gemv_and_transpose_agree_with_matmul() {
        let a = Mat::from_fn(5, 7, |i, j| ((3 * i + j) % 5) as f64 - 2.0);
        let x: Vec<f64> = (0..7).map(|i| (i as f64).sin()).collect();
        let mut y = vec![1.0; 5];
        gemv(2.0, &a, &x, -1.0, &mut y);
        for i in 0..5 {
            let expect = 2.0 * dot(a.row(i), &x) - 1.0;
            assert!((y[i] - expect).abs() < 1e-12);
        }
        let xt: Vec<f64> = (0..5).map(|i| (i as f64).cos()).collect();
        let mut yt = vec![0.5; 7];
        gemv_t(1.5, &a, &xt, 2.0, &mut yt);
        let at = a.transpose();
        for j in 0..7 {
            let expect = 1.5 * dot(at.row(j), &xt) + 1.0;
            assert!((yt[j] - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn gemm_matches_naive() {
        let a = Mat::from_fn(6, 4, |i, j| (i as f64 - j as f64) * 0.5);
        let b = Mat::from_fn(4, 9, |i, j| ((i * j) as f64).sqrt());
        let c0 = Mat::from_fn(6, 9, |i, j| (i + j) as f64);
        let mut c = c0.clone();
        // expectation for alpha=1, beta=-0.5
        let mut expect = naive_mm(&a, &b);
        expect.add_scaled(-0.5, &c0);
        gemm(1.0, &a, &b, -0.5, &mut c);
        for (x, y) in c.as_slice().iter().zip(expect.as_slice()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn gemm_slices_matches_gemm_bitwise() {
        let (m, k, n) = (7, 5, 11);
        let a = Mat::from_fn(m, k, |i, j| ((i * 3 + j) as f64).sin());
        let b = Mat::from_fn(k, n, |i, j| ((i + 2 * j) as f64).cos());
        let c0 = Mat::from_fn(m, n, |i, j| (i as f64) - 0.25 * (j as f64));
        let mut c_mat = c0.clone();
        gemm(1.3, &a, &b, -0.5, &mut c_mat);
        let mut c_sl: Vec<f64> = c0.as_slice().to_vec();
        gemm_slices(1.3, a.as_slice(), b.as_slice(), -0.5, &mut c_sl, m, k, n);
        assert_eq!(c_mat.as_slice(), &c_sl[..]);
        // Row-blocked application must be bit-identical to one call.
        let mut c_blk: Vec<f64> = c0.as_slice().to_vec();
        for (bi, rows) in [(0usize, 3usize), (3, 4)] {
            gemm_slices(
                1.3,
                &a.as_slice()[bi * k..(bi + rows) * k],
                b.as_slice(),
                -0.5,
                &mut c_blk[bi * n..(bi + rows) * n],
                rows,
                k,
                n,
            );
        }
        assert_eq!(c_mat.as_slice(), &c_blk[..]);
    }

    #[test]
    fn gemm_tn_matches_explicit_transpose() {
        let a = Mat::from_fn(5, 3, |i, j| (2 * i + 3 * j) as f64 * 0.1);
        let b = Mat::from_fn(5, 4, |i, j| (i as f64) - (j as f64) * 0.7);
        let mut c = Mat::zeros(3, 4);
        gemm_tn(1.0, &a, &b, 0.0, &mut c);
        let expect = a.transpose().matmul(&b);
        for (x, y) in c.as_slice().iter().zip(expect.as_slice()) {
            assert!((x - y).abs() < 1e-12);
        }
    }
}
