//! One-sided Jacobi singular value decomposition.
//!
//! The check-to-equivalent systems KIFMM inverts are small (≤ ~10³) but
//! severely ill-conditioned — the singular values decay geometrically, which
//! is exactly the regime where Jacobi SVD shines: it computes even the tiny
//! singular values to high *relative* accuracy, unlike bidiagonalization
//! approaches. The O(n³) cost with a handful of sweeps is irrelevant here
//! because every operator is precomputed once per tree level.

use crate::matrix::Mat;

/// Thin singular value decomposition `A = U Σ Vᵀ`.
///
/// For an `m × n` input with `k = min(m, n)`: `u` is `m × k` with
/// orthonormal columns, `s` holds the `k` singular values in descending
/// order, and `vt` is `k × n` with orthonormal rows.
#[derive(Clone, Debug)]
pub struct Svd {
    /// Left singular vectors, `m × k`.
    pub u: Mat,
    /// Singular values, descending.
    pub s: Vec<f64>,
    /// Transposed right singular vectors, `k × n`.
    pub vt: Mat,
}

impl Svd {
    /// Reconstruct `U Σ Vᵀ` (mainly for testing).
    pub fn reconstruct(&self) -> Mat {
        let k = self.s.len();
        let mut us = self.u.clone();
        for i in 0..us.rows() {
            for j in 0..k {
                us[(i, j)] *= self.s[j];
            }
        }
        us.matmul(&self.vt)
    }

    /// 2-norm condition number `σ_max / σ_min` (∞ when `σ_min == 0`).
    pub fn cond(&self) -> f64 {
        match (self.s.first(), self.s.last()) {
            (Some(&hi), Some(&lo)) if lo > 0.0 => hi / lo,
            (Some(_), Some(_)) => f64::INFINITY,
            _ => 0.0,
        }
    }
}

/// Compute the thin SVD of `a` by one-sided Jacobi iteration.
///
/// Always converges for finite inputs; panics on NaN/∞ entries.
pub fn svd(a: &Mat) -> Svd {
    assert!(
        a.as_slice().iter().all(|v| v.is_finite()),
        "svd: input must be finite"
    );
    if a.rows() >= a.cols() {
        svd_tall(a)
    } else {
        // SVD of the transpose, then swap the factors.
        let t = svd_tall(&a.transpose());
        Svd { u: t.vt.transpose(), s: t.s, vt: t.u.transpose() }
    }
}

/// One-sided Jacobi on a tall (m ≥ n) matrix.
///
/// Works on `Gᵀ` so that the columns being orthogonalized are contiguous
/// rows in memory; accumulates `Vᵀ` the same way.
fn svd_tall(a: &Mat) -> Svd {
    let (m, n) = a.shape();
    debug_assert!(m >= n);
    let mut gt = a.transpose(); // n × m, row i == column i of A
    let mut vt = Mat::eye(n); // row i == column i of V

    let eps = f64::EPSILON;
    let max_sweeps = 60;
    for _sweep in 0..max_sweeps {
        let mut rotated = false;
        for p in 0..n {
            for q in (p + 1)..n {
                // Gather the 2x2 Gram block of columns p, q.
                let (app, aqq, apq) = {
                    let gp = gt.row(p);
                    let gq = gt.row(q);
                    (crate::blas::dot(gp, gp), crate::blas::dot(gq, gq), crate::blas::dot(gp, gq))
                };
                if app == 0.0 || aqq == 0.0 {
                    continue;
                }
                if apq.abs() <= eps * (app * aqq).sqrt() {
                    continue;
                }
                rotated = true;
                // Jacobi rotation that zeroes the (p,q) Gram entry.
                let zeta = (aqq - app) / (2.0 * apq);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let cs = 1.0 / (1.0 + t * t).sqrt();
                let sn = cs * t;
                rotate_rows(&mut gt, p, q, cs, sn);
                rotate_rows(&mut vt, p, q, cs, sn);
            }
        }
        if !rotated {
            break;
        }
    }

    // Singular values are the column norms; sort descending.
    let mut order: Vec<usize> = (0..n).collect();
    let norms: Vec<f64> = (0..n).map(|i| crate::blas::nrm2(gt.row(i))).collect();
    order.sort_by(|&i, &j| norms[j].partial_cmp(&norms[i]).unwrap());

    let mut u = Mat::zeros(m, n);
    let mut s = Vec::with_capacity(n);
    let mut vt_sorted = Mat::zeros(n, n);
    for (col, &i) in order.iter().enumerate() {
        let sigma = norms[i];
        s.push(sigma);
        if sigma > 0.0 {
            let inv = 1.0 / sigma;
            for r in 0..m {
                u[(r, col)] = gt[(i, r)] * inv;
            }
        } else {
            // Null column: leave U column zero; it is never used because
            // the pseudoinverse truncates zero singular values.
        }
        vt_sorted.row_mut(col).copy_from_slice(vt.row(i));
    }
    Svd { u, s, vt: vt_sorted }
}

/// Apply the rotation `[c -s; s c]` to rows `p`, `q` (mixing them).
#[inline]
fn rotate_rows(m: &mut Mat, p: usize, q: usize, cs: f64, sn: f64) {
    debug_assert!(p < q);
    let cols = m.cols();
    let data = m.as_mut_slice();
    let (head, tail) = data.split_at_mut(q * cols);
    let rp = &mut head[p * cols..(p + 1) * cols];
    let rq = &mut tail[..cols];
    for (a, b) in rp.iter_mut().zip(rq.iter_mut()) {
        let x = *a;
        let y = *b;
        *a = cs * x - sn * y;
        *b = sn * x + cs * y;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_factorization(a: &Mat, tol: f64) {
        let f = svd(a);
        let r = f.reconstruct();
        let scale = a.max_abs().max(1.0);
        for (x, y) in r.as_slice().iter().zip(a.as_slice()) {
            assert!((x - y).abs() <= tol * scale, "reconstruction off: {x} vs {y}");
        }
        // U'U = I, V'V = I on the thin factors.
        let k = f.s.len();
        let utu = f.u.transpose().matmul(&f.u);
        let vvt = f.vt.matmul(&f.vt.transpose());
        for i in 0..k {
            for j in 0..k {
                let expect = if i == j { 1.0 } else { 0.0 };
                // Zero singular values leave zero U columns.
                if f.s[i] > 0.0 && f.s[j] > 0.0 {
                    assert!((utu[(i, j)] - expect).abs() < 1e-10, "UtU[{i},{j}]");
                }
                assert!((vvt[(i, j)] - expect).abs() < 1e-10, "VVt[{i},{j}]");
            }
        }
        // Descending order.
        for w in f.s.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn diagonal_matrix() {
        let mut a = Mat::zeros(3, 3);
        a[(0, 0)] = 3.0;
        a[(1, 1)] = -5.0;
        a[(2, 2)] = 1.0;
        let f = svd(&a);
        assert!((f.s[0] - 5.0).abs() < 1e-12);
        assert!((f.s[1] - 3.0).abs() < 1e-12);
        assert!((f.s[2] - 1.0).abs() < 1e-12);
        check_factorization(&a, 1e-12);
    }

    #[test]
    fn known_2x2() {
        // A = [[3, 0], [4, 5]] has singular values sqrt(45±... ) = (3√5, √5).
        let a = Mat::from_vec(2, 2, vec![3., 0., 4., 5.]);
        let f = svd(&a);
        assert!((f.s[0] - 3.0 * 5f64.sqrt()).abs() < 1e-12);
        assert!((f.s[1] - 5f64.sqrt()).abs() < 1e-12);
        check_factorization(&a, 1e-13);
    }

    #[test]
    fn tall_wide_and_random() {
        let mut seed = 0x12345u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for &(m, n) in &[(7usize, 3usize), (3, 7), (10, 10), (1, 5), (5, 1)] {
            let a = Mat::from_fn(m, n, |_, _| next());
            check_factorization(&a, 1e-11);
            let f = svd(&a);
            assert_eq!(f.u.shape(), (m, m.min(n)));
            assert_eq!(f.vt.shape(), (m.min(n), n));
        }
    }

    #[test]
    fn rank_deficient() {
        // Rank-1 outer product.
        let u = [1.0, 2.0, -1.0, 0.5];
        let v = [2.0, -3.0, 1.0];
        let a = Mat::from_fn(4, 3, |i, j| u[i] * v[j]);
        let f = svd(&a);
        let nu = crate::blas::nrm2(&u);
        let nv = crate::blas::nrm2(&v);
        assert!((f.s[0] - nu * nv).abs() < 1e-10);
        assert!(f.s[1].abs() < 1e-10);
        assert!(f.s[2].abs() < 1e-10);
        check_factorization(&a, 1e-11);
    }

    #[test]
    fn ill_conditioned_hilbert() {
        // Hilbert 8x8: condition ~1e10; reconstruction should still be good.
        let a = Mat::from_fn(8, 8, |i, j| 1.0 / ((i + j + 1) as f64));
        check_factorization(&a, 1e-12);
        let f = svd(&a);
        assert!(f.cond() > 1e9);
    }

    #[test]
    fn zero_matrix() {
        let a = Mat::zeros(4, 2);
        let f = svd(&a);
        assert!(f.s.iter().all(|&s| s == 0.0));
    }
}
