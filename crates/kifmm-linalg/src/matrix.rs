//! Row-major dense matrix type.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major, `f64` matrix.
///
/// Row-major storage keeps the inner loops of the FMM translation operators
/// (`potential = K * density`) contiguous over matrix rows, matching how
/// [`crate::blas::gemv`] walks memory.
#[derive(Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// The `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from an existing row-major buffer. Panics when the buffer
    /// length does not equal `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length must be rows*cols");
        Mat { rows, cols, data }
    }

    /// Build by evaluating `f(i, j)` at every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Mat { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable contiguous slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Column `j` copied into a new vector (columns are strided).
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// The transpose as a new matrix.
    pub fn transpose(&self) -> Mat {
        let mut t = Mat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    pub fn matmul(&self, rhs: &Mat) -> Mat {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        let mut out = Mat::zeros(self.rows, rhs.cols);
        crate::blas::gemm(1.0, self, rhs, 0.0, &mut out);
        out
    }

    /// Matrix-vector product `self * x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, x.len(), "dimension mismatch");
        let mut y = vec![0.0; self.rows];
        crate::blas::gemv(1.0, self, x, 0.0, &mut y);
        y
    }

    /// Scale every entry in place.
    pub fn scale(&mut self, alpha: f64) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// `self += alpha * other` entrywise. Panics on shape mismatch.
    pub fn add_scaled(&mut self, alpha: f64, other: &Mat) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry, or 0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        for i in 0..show_rows {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:>12.5e} ", self[(i, j)])?;
            }
            if self.cols > 8 {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_eye() {
        let z = Mat::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Mat::eye(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i.fro_norm(), 3f64.sqrt());
    }

    #[test]
    fn from_fn_indexing() {
        let m = Mat::from_fn(3, 4, |i, j| (i * 10 + j) as f64);
        assert_eq!(m[(2, 3)], 23.0);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0, 13.0]);
        assert_eq!(m.col(2), vec![2.0, 12.0, 22.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = Mat::from_fn(3, 5, |i, j| (i + 2 * j) as f64);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(4, 2)], m[(2, 4)]);
    }

    #[test]
    fn matmul_identity() {
        let m = Mat::from_fn(4, 4, |i, j| ((i * j) % 7) as f64 - 3.0);
        let i = Mat::eye(4);
        assert_eq!(m.matmul(&i), m);
        assert_eq!(i.matmul(&m), m);
    }

    #[test]
    fn matmul_known() {
        let a = Mat::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Mat::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matvec_known() {
        let a = Mat::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.matvec(&[1., 0., -1.]), vec![-2., -2.]);
    }

    #[test]
    fn add_scaled_and_scale() {
        let mut a = Mat::eye(2);
        let b = Mat::from_vec(2, 2, vec![1., 2., 3., 4.]);
        a.add_scaled(2.0, &b);
        assert_eq!(a.as_slice(), &[3., 4., 6., 9.]);
        a.scale(0.5);
        assert_eq!(a.as_slice(), &[1.5, 2., 3., 4.5]);
    }

    #[test]
    #[should_panic]
    fn matmul_shape_mismatch_panics() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
