//! Householder QR and least squares.
//!
//! GMRES (in `kifmm-solver`) keeps its own rolling Givens rotations; this
//! module provides the generic dense least-squares solve used in tests and
//! by the boundary-integral setup code.

use crate::matrix::Mat;

/// QR factorization `A = Q R` of a tall matrix (`m ≥ n`), with `Q` returned
/// explicitly (`m × n`, orthonormal columns) and `R` upper triangular
/// (`n × n`).
pub fn householder_qr(a: &Mat) -> (Mat, Mat) {
    let (m, n) = a.shape();
    assert!(m >= n, "householder_qr expects a tall matrix");
    let mut r = a.clone();
    // Store the Householder vectors to build Q afterwards.
    let mut vs: Vec<Vec<f64>> = Vec::with_capacity(n);
    for k in 0..n {
        // v = x + sign(x0)*||x|| e1 on the trailing column block.
        let mut v: Vec<f64> = (k..m).map(|i| r[(i, k)]).collect();
        let alpha = crate::blas::nrm2(&v);
        if alpha == 0.0 {
            vs.push(v);
            continue;
        }
        let s = if v[0] >= 0.0 { alpha } else { -alpha };
        v[0] += s;
        let vn2 = crate::blas::dot(&v, &v);
        // Apply H = I - 2 v vᵀ / (vᵀv) to the trailing block of R.
        for j in k..n {
            let mut w = 0.0;
            for i in k..m {
                w += v[i - k] * r[(i, j)];
            }
            let w = 2.0 * w / vn2;
            for i in k..m {
                r[(i, j)] -= w * v[i - k];
            }
        }
        vs.push(v);
    }
    // R is the leading n×n upper triangle.
    let mut rr = Mat::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            rr[(i, j)] = r[(i, j)];
        }
    }
    // Q = H_0 H_1 ... H_{n-1} * [I; 0]: apply reflectors in reverse to the
    // thin identity.
    let mut q = Mat::zeros(m, n);
    for j in 0..n {
        q[(j, j)] = 1.0;
    }
    for k in (0..n).rev() {
        let v = &vs[k];
        if v.is_empty() {
            continue;
        }
        let vn2 = crate::blas::dot(v, v);
        if vn2 == 0.0 {
            continue;
        }
        for j in 0..n {
            let mut w = 0.0;
            for i in k..m {
                w += v[i - k] * q[(i, j)];
            }
            let w = 2.0 * w / vn2;
            for i in k..m {
                q[(i, j)] -= w * v[i - k];
            }
        }
    }
    (q, rr)
}

/// Minimum-norm least squares `min ‖A x − b‖₂` for a tall full-rank `A`.
pub fn lstsq(a: &Mat, b: &[f64]) -> Vec<f64> {
    let (m, n) = a.shape();
    assert_eq!(b.len(), m, "lstsq: rhs length");
    let (q, r) = householder_qr(a);
    // x = R⁻¹ Qᵀ b
    let mut qtb = vec![0.0; n];
    crate::blas::gemv_t(1.0, &q, b, 0.0, &mut qtb);
    // Back substitution on R.
    let mut x = qtb;
    for i in (0..n).rev() {
        let mut s = x[i];
        for j in (i + 1)..n {
            s -= r[(i, j)] * x[j];
        }
        let d = r[(i, i)];
        x[i] = if d.abs() > 0.0 { s / d } else { 0.0 };
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qr_reconstructs() {
        let a = Mat::from_fn(6, 4, |i, j| ((i * 3 + j * 7) % 11) as f64 - 5.0);
        let (q, r) = householder_qr(&a);
        let qr = q.matmul(&r);
        for (x, y) in qr.as_slice().iter().zip(a.as_slice()) {
            assert!((x - y).abs() < 1e-12);
        }
        // Orthonormal columns.
        let qtq = q.transpose().matmul(&q);
        for i in 0..4 {
            for j in 0..4 {
                let e = if i == j { 1.0 } else { 0.0 };
                assert!((qtq[(i, j)] - e).abs() < 1e-12);
            }
        }
        // R upper triangular.
        for i in 0..4 {
            for j in 0..i {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn lstsq_exact_for_square() {
        let a = Mat::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let x = lstsq(&a, &[5., 6.]);
        let r = a.matvec(&x);
        assert!((r[0] - 5.0).abs() < 1e-12 && (r[1] - 6.0).abs() < 1e-12);
    }

    #[test]
    fn lstsq_minimizes_residual() {
        // Overdetermined: fit a line through (0,1), (1,2), (2,2).
        let a = Mat::from_vec(3, 2, vec![1., 0., 1., 1., 1., 2.]);
        let b = [1., 2., 2.];
        let x = lstsq(&a, &b);
        // Normal-equation solution: intercept 7/6, slope 1/2.
        assert!((x[0] - 7.0 / 6.0).abs() < 1e-12);
        assert!((x[1] - 0.5).abs() < 1e-12);
    }
}
