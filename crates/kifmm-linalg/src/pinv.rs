//! Truncated-SVD pseudoinverse.
//!
//! The kernel-independent FMM obtains equivalent densities by inverting the
//! first-kind integral equation `∫ G(x, y) φ(y) dy = u(x)` discretized on
//! check/equivalent surfaces (paper §2.1, equations (2.1)–(2.5)). These
//! systems are exponentially ill-conditioned in the surface resolution `p`,
//! so a plain solve would amplify noise; the paper regularizes by inverting
//! with a (truncated) pseudoinverse. Singular values below
//! `tol · σ_max` are treated as exact zeros.

use crate::matrix::Mat;
use crate::svd::svd;

/// Default relative truncation threshold.
///
/// Chosen empirically as the sweet spot of the regularization tradeoff for
/// the KIFMM check systems: keeping singular values below ~1e-10·σ_max
/// amplifies rounding noise in the check potentials faster than it adds
/// far-field resolution (measured: at p = 8/10 the far-field error is
/// ~5e-9 with this cutoff but *degrades* to 1.8e-6/4e-3 at 1e-16).
pub const DEFAULT_PINV_TOL: f64 = 1e-10;

/// Moore–Penrose pseudoinverse with the [`DEFAULT_PINV_TOL`] truncation.
pub fn pinv(a: &Mat) -> Mat {
    pinv_with_tol(a, DEFAULT_PINV_TOL)
}

/// Moore–Penrose pseudoinverse: `A⁺ = V Σ⁺ Uᵀ`, zeroing singular values
/// below `tol * σ_max`. Returns an `n × m` matrix for an `m × n` input.
pub fn pinv_with_tol(a: &Mat, tol: f64) -> Mat {
    let f = svd(a);
    let (m, n) = a.shape();
    let k = f.s.len();
    let cutoff = f.s.first().copied().unwrap_or(0.0) * tol;
    // B = Σ⁺ Uᵀ (k × m), then A⁺ = Vᵀᵀ B = V B.
    let mut b = f.u.transpose();
    for i in 0..k {
        let s = f.s[i];
        let w = if s > cutoff { 1.0 / s } else { 0.0 };
        for v in b.row_mut(i) {
            *v *= w;
        }
    }
    let mut out = Mat::zeros(n, m);
    crate::blas::gemm_tn(1.0, &f.vt, &b, 0.0, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_eq(a: &Mat, b: &Mat, tol: f64) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn inverse_of_invertible() {
        let a = Mat::from_vec(2, 2, vec![4., 7., 2., 6.]);
        let p = pinv(&a);
        approx_eq(&a.matmul(&p), &Mat::eye(2), 1e-12);
        approx_eq(&p.matmul(&a), &Mat::eye(2), 1e-12);
    }

    #[test]
    fn moore_penrose_conditions() {
        let mut seed = 7u64;
        let mut next = move || {
            seed = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for &(m, n) in &[(6usize, 4usize), (4, 6), (5, 5)] {
            let a = Mat::from_fn(m, n, |_, _| next());
            let p = pinv(&a);
            assert_eq!(p.shape(), (n, m));
            // A A⁺ A = A
            approx_eq(&a.matmul(&p).matmul(&a), &a, 1e-10);
            // A⁺ A A⁺ = A⁺
            approx_eq(&p.matmul(&a).matmul(&p), &p, 1e-10);
            // (A A⁺)ᵀ = A A⁺ and (A⁺ A)ᵀ = A⁺ A
            let ap = a.matmul(&p);
            approx_eq(&ap.transpose(), &ap, 1e-10);
            let pa = p.matmul(&a);
            approx_eq(&pa.transpose(), &pa, 1e-10);
        }
    }

    #[test]
    fn truncation_regularizes_rank_deficiency() {
        // Rank-1 matrix: pinv must not blow up.
        let a = Mat::from_fn(4, 4, |i, j| ((i + 1) * (j + 1)) as f64);
        let p = pinv(&a);
        assert!(p.max_abs() < 1.0, "truncated pinv stays bounded");
        // A A⁺ A = A still holds for the rank-deficient case.
        approx_eq(&a.matmul(&p).matmul(&a), &a, 1e-9);
    }

    #[test]
    fn solves_consistent_system() {
        let a = Mat::from_vec(3, 2, vec![1., 0., 0., 1., 1., 1.]);
        let x_true = [2.0, -1.0];
        let b = a.matvec(&x_true);
        let x = pinv(&a).matvec(&b);
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] + 1.0).abs() < 1e-12);
    }
}
