//! LU factorization with partial pivoting.
//!
//! Used for well-conditioned square solves (quadrature weights, small test
//! systems); the ill-conditioned FMM inversions go through [`crate::pinv()`](crate::pinv::pinv)
//! instead.

use crate::matrix::Mat;

/// Packed LU factors of a square matrix, `P A = L U`.
#[derive(Clone, Debug)]
pub struct LuFactors {
    /// `L` (unit lower, implicit diagonal) and `U` packed in one matrix.
    pub lu: Mat,
    /// Row permutation: row `i` of `U` came from row `piv[i]` of `A`.
    pub piv: Vec<usize>,
    /// Sign of the permutation (for determinants).
    pub sign: f64,
}

/// Factor a square matrix. Returns `None` when a pivot is exactly zero
/// (the matrix is singular to working precision).
pub fn lu_factor(a: &Mat) -> Option<LuFactors> {
    assert_eq!(a.rows(), a.cols(), "lu_factor: matrix must be square");
    let n = a.rows();
    let mut lu = a.clone();
    let mut piv: Vec<usize> = (0..n).collect();
    let mut sign = 1.0;

    for k in 0..n {
        // Partial pivoting: largest |entry| in column k at or below row k.
        let mut p = k;
        let mut pmax = lu[(k, k)].abs();
        for i in (k + 1)..n {
            let v = lu[(i, k)].abs();
            if v > pmax {
                pmax = v;
                p = i;
            }
        }
        if pmax == 0.0 {
            return None;
        }
        if p != k {
            swap_rows(&mut lu, p, k);
            piv.swap(p, k);
            sign = -sign;
        }
        let pivot = lu[(k, k)];
        for i in (k + 1)..n {
            let m = lu[(i, k)] / pivot;
            lu[(i, k)] = m;
            if m != 0.0 {
                // Row update: rows are contiguous, split to satisfy borrowck.
                let cols = lu.cols();
                let data = lu.as_mut_slice();
                let (head, tail) = data.split_at_mut(i * cols);
                let krow = &head[k * cols..(k + 1) * cols];
                let irow = &mut tail[..cols];
                for j in (k + 1)..n {
                    irow[j] -= m * krow[j];
                }
            }
        }
    }
    Some(LuFactors { lu, piv, sign })
}

/// Solve `A x = b` from precomputed factors.
pub fn lu_solve(f: &LuFactors, b: &[f64]) -> Vec<f64> {
    let n = f.lu.rows();
    assert_eq!(b.len(), n, "lu_solve: rhs length");
    // Apply permutation.
    let mut x: Vec<f64> = f.piv.iter().map(|&p| b[p]).collect();
    // Forward substitution (unit lower).
    for i in 1..n {
        let mut s = x[i];
        let row = f.lu.row(i);
        for j in 0..i {
            s -= row[j] * x[j];
        }
        x[i] = s;
    }
    // Back substitution.
    for i in (0..n).rev() {
        let row = f.lu.row(i);
        let mut s = x[i];
        for j in (i + 1)..n {
            s -= row[j] * x[j];
        }
        x[i] = s / row[i];
    }
    x
}

impl LuFactors {
    /// Determinant of the factored matrix.
    pub fn det(&self) -> f64 {
        let n = self.lu.rows();
        let mut d = self.sign;
        for i in 0..n {
            d *= self.lu[(i, i)];
        }
        d
    }
}

fn swap_rows(m: &mut Mat, a: usize, b: usize) {
    if a == b {
        return;
    }
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    let cols = m.cols();
    let data = m.as_mut_slice();
    let (head, tail) = data.split_at_mut(hi * cols);
    head[lo * cols..(lo + 1) * cols].swap_with_slice(&mut tail[..cols]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_known_system() {
        let a = Mat::from_vec(3, 3, vec![2., 1., 1., 4., -6., 0., -2., 7., 2.]);
        let f = lu_factor(&a).expect("nonsingular");
        let x = lu_solve(&f, &[5., -2., 9.]);
        let r = a.matvec(&x);
        assert!((r[0] - 5.0).abs() < 1e-12);
        assert!((r[1] + 2.0).abs() < 1e-12);
        assert!((r[2] - 9.0).abs() < 1e-12);
    }

    #[test]
    fn det_matches_known() {
        let a = Mat::from_vec(2, 2, vec![3., 8., 4., 6.]);
        let f = lu_factor(&a).unwrap();
        assert!((f.det() + 14.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = Mat::from_vec(2, 2, vec![1., 2., 2., 4.]);
        assert!(lu_factor(&a).is_none());
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Mat::from_vec(2, 2, vec![0., 1., 1., 0.]);
        let f = lu_factor(&a).unwrap();
        let x = lu_solve(&f, &[3., 7.]);
        assert_eq!(x, vec![7., 3.]);
    }

    #[test]
    fn random_roundtrip() {
        let mut seed = 99u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let n = 12;
        let mut a = Mat::from_fn(n, n, |_, _| next());
        // Diagonal dominance for a guaranteed-nonsingular test matrix.
        for i in 0..n {
            a[(i, i)] += 4.0;
        }
        let xt: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let b = a.matvec(&xt);
        let x = lu_solve(&lu_factor(&a).unwrap(), &b);
        for (u, v) in x.iter().zip(&xt) {
            assert!((u - v).abs() < 1e-10);
        }
    }
}
