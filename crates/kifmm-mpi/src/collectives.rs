//! Collective operations, built on point-to-point messaging.
//!
//! The paper's tree construction leans on `MPI_Allreduce` over the global
//! tree array (§3.1) and its owner assignment on an allreduce of "taken"
//! flags (§3.2); the exchange steps need gathers/scatters. All collectives
//! here use a rank-0 root with linear fan-in/fan-out — the same asymptotic
//! traffic pattern the paper's own (admittedly non-scalable, see their §4
//! discussion point 5) tree-construction phase exhibits.
//!
//! Every rank must call collectives in the same order; tags are drawn from
//! a reserved per-rank sequence so collectives never collide with user
//! messages.

use crate::comm::Comm;
use crate::datatypes::{decode_f64s, decode_u64s, encode_f64s, encode_u64s};

/// Reduction operators for [`allreduce_f64`]/[`allreduce_u64`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceOp {
    /// Elementwise sum.
    Sum,
    /// Elementwise maximum.
    Max,
    /// Elementwise minimum.
    Min,
    /// Bitwise OR (rank-set masks; `f64` allreduce rejects it).
    BitOr,
}

/// Block until every rank has entered the barrier.
pub fn barrier(comm: &Comm) {
    let tag = comm.next_collective_tag();
    let root = 0;
    if comm.rank() == root {
        for src in 1..comm.size() {
            comm.recv_raw(src, tag);
        }
        for dst in 1..comm.size() {
            comm.send_raw(dst, tag, Vec::new());
        }
    } else {
        comm.send_raw(root, tag, Vec::new());
        comm.recv_raw(root, tag);
    }
}

/// Broadcast `data` from `root`; returns the payload on every rank.
pub fn bcast(comm: &Comm, root: usize, data: Vec<u8>) -> Vec<u8> {
    let tag = comm.next_collective_tag();
    if comm.rank() == root {
        for dst in 0..comm.size() {
            if dst != root {
                comm.send_raw(dst, tag, data.clone());
            }
        }
        data
    } else {
        comm.recv_raw(root, tag)
    }
}

/// In-place elementwise allreduce over `f64` buffers of identical length.
///
/// `ReduceOp::BitOr` is rejected on *every* rank at entry, with the rank in
/// the message. The old check sat inside root's reduce loop, so only rank 0
/// panicked — with no rank context — while non-root ranks blocked on a
/// reply that never came, and a single-rank run silently "succeeded".
pub fn allreduce_f64(comm: &Comm, data: &mut [f64], op: ReduceOp) {
    assert!(
        op != ReduceOp::BitOr,
        "kifmm-mpi: rank {}: ReduceOp::BitOr is only defined for integer reductions — \
         use allreduce_u64",
        comm.rank()
    );
    let tag = comm.next_collective_tag();
    let root = 0;
    if comm.rank() == root {
        for src in 1..comm.size() {
            let other = decode_f64s(&comm.recv_raw(src, tag));
            assert_eq!(other.len(), data.len(), "allreduce length mismatch");
            for (a, b) in data.iter_mut().zip(other) {
                *a = match op {
                    ReduceOp::Sum => *a + b,
                    ReduceOp::Max => a.max(b),
                    ReduceOp::Min => a.min(b),
                    ReduceOp::BitOr => unreachable!("rejected at entry"),
                };
            }
        }
        let payload = encode_f64s(data);
        for dst in 1..comm.size() {
            comm.send_raw(dst, tag, payload.clone());
        }
    } else {
        comm.send_raw(root, tag, encode_f64s(data));
        let reduced = decode_f64s(&comm.recv_raw(root, tag));
        data.copy_from_slice(&reduced);
    }
}

/// In-place elementwise allreduce over `u64` buffers (the global tree
/// array's point counts).
pub fn allreduce_u64(comm: &Comm, data: &mut [u64], op: ReduceOp) {
    let tag = comm.next_collective_tag();
    let root = 0;
    if comm.rank() == root {
        for src in 1..comm.size() {
            let other = decode_u64s(&comm.recv_raw(src, tag));
            assert_eq!(other.len(), data.len(), "allreduce length mismatch");
            for (a, b) in data.iter_mut().zip(other) {
                *a = match op {
                    ReduceOp::Sum => *a + b,
                    ReduceOp::Max => (*a).max(b),
                    ReduceOp::Min => (*a).min(b),
                    ReduceOp::BitOr => *a | b,
                };
            }
        }
        let payload = encode_u64s(data);
        for dst in 1..comm.size() {
            comm.send_raw(dst, tag, payload.clone());
        }
    } else {
        comm.send_raw(root, tag, encode_u64s(data));
        let reduced = decode_u64s(&comm.recv_raw(root, tag));
        data.copy_from_slice(&reduced);
    }
}

/// Gather a variable-length payload from every rank onto all ranks;
/// returns `size` payloads indexed by source rank.
pub fn allgatherv(comm: &Comm, data: &[u8]) -> Vec<Vec<u8>> {
    let tag = comm.next_collective_tag();
    let root = 0;
    if comm.rank() == root {
        let mut all = vec![Vec::new(); comm.size()];
        all[root] = data.to_vec();
        for src in 1..comm.size() {
            all[src] = comm.recv_raw(src, tag);
        }
        // Flatten with a length prefix per rank, then broadcast.
        let mut flat = Vec::new();
        for part in &all {
            flat.extend_from_slice(&(part.len() as u64).to_le_bytes());
            flat.extend_from_slice(part);
        }
        for dst in 1..comm.size() {
            comm.send_raw(dst, tag, flat.clone());
        }
        all
    } else {
        comm.send_raw(root, tag, data.to_vec());
        let flat = comm.recv_raw(root, tag);
        split_length_prefixed(&flat, comm.size())
    }
}

/// Personalized all-to-all: `send[d]` goes to rank `d`; returns the
/// payloads received, indexed by source rank.
pub fn alltoallv(comm: &Comm, send: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
    assert_eq!(send.len(), comm.size(), "one payload per destination");
    let tag = comm.next_collective_tag();
    let me = comm.rank();
    let mut out = vec![Vec::new(); comm.size()];
    for (dst, payload) in send.into_iter().enumerate() {
        if dst == me {
            out[me] = payload;
        } else {
            comm.send_raw(dst, tag, payload);
        }
    }
    for src in 0..comm.size() {
        if src != me {
            out[src] = comm.recv_raw(src, tag);
        }
    }
    out
}

/// Typed `u64` allgatherv: gather each rank's slice onto every rank.
pub fn allgatherv_u64(comm: &Comm, data: &[u64]) -> Vec<Vec<u64>> {
    allgatherv(comm, &encode_u64s(data)).iter().map(|p| decode_u64s(p)).collect()
}

/// Typed `u64` personalized all-to-all.
pub fn alltoallv_u64(comm: &Comm, send: Vec<Vec<u64>>) -> Vec<Vec<u64>> {
    let raw: Vec<Vec<u8>> = send.iter().map(|v| encode_u64s(v)).collect();
    alltoallv(comm, raw).iter().map(|p| decode_u64s(p)).collect()
}

/// Parallel sample sort of `u64` keys (regular sampling).
///
/// Input: this rank's keys, **already locally sorted**. Output: this
/// rank's *chunk* of the globally sorted key array — chunks are
/// contiguous in value space and ascending by rank, i.e. concatenating
/// the outputs over ranks 0..P yields the sorted multiset union of all
/// inputs, and keys comparing equal never straddle a chunk boundary.
///
/// Three steps, O(1) collectives total (the point of the sample-sort
/// tree construction — the paper's per-level `Allreduce` build needs
/// O(depth) of them): each rank contributes P regular samples
/// (one allgatherv); every rank sorts the sample union identically and
/// picks the same P−1 splitters; keys are bucketed by binary search and
/// exchanged (one alltoallv); received sorted runs are merged locally.
pub fn sample_sort_u64(comm: &Comm, local_sorted: &[u64]) -> Vec<u64> {
    let p = comm.size();
    debug_assert!(local_sorted.windows(2).all(|w| w[0] <= w[1]), "input must be locally sorted");
    if p == 1 {
        return local_sorted.to_vec();
    }
    // 1. Regular sampling: P evenly spaced local samples per rank.
    let n = local_sorted.len();
    let samples: Vec<u64> =
        (0..p).filter_map(|i| local_sorted.get((i + 1) * n / (p + 1)).copied()).collect();
    let mut all_samples: Vec<u64> = allgatherv_u64(comm, &samples).concat();
    all_samples.sort_unstable();
    // 2. Deterministic splitters: every rank picks the same P−1 quantiles
    //    of the sample union. A key `k` belongs to bucket r iff
    //    splitters[r-1] <= k < splitters[r], so duplicates of one value
    //    all land in one bucket.
    let m = all_samples.len();
    if m == 0 {
        // Every rank is empty: nothing to exchange.
        return Vec::new();
    }
    let splitters: Vec<u64> = (1..p).map(|r| all_samples[r * m / p]).collect();
    let mut send: Vec<Vec<u64>> = Vec::with_capacity(p);
    let mut lo = 0usize;
    for &s in &splitters {
        let hi = local_sorted.partition_point(|&k| k < s);
        send.push(local_sorted[lo..hi.max(lo)].to_vec());
        lo = hi.max(lo);
    }
    send.push(local_sorted[lo..].to_vec());
    // 3. Exchange buckets; merge the received sorted runs.
    let mut chunk: Vec<u64> = alltoallv_u64(comm, send).concat();
    chunk.sort_unstable();
    chunk
}

fn split_length_prefixed(flat: &[u8], parts: usize) -> Vec<Vec<u8>> {
    let mut out = Vec::with_capacity(parts);
    let mut cursor = 0usize;
    for _ in 0..parts {
        let len = u64::from_le_bytes(flat[cursor..cursor + 8].try_into().unwrap()) as usize;
        cursor += 8;
        out.push(flat[cursor..cursor + len].to_vec());
        cursor += len;
    }
    assert_eq!(cursor, flat.len(), "corrupt length-prefixed payload");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::run;

    #[test]
    fn barrier_completes() {
        run(4, |comm| {
            for _ in 0..5 {
                barrier(comm);
            }
        });
    }

    #[test]
    fn bcast_delivers_everywhere() {
        let out = run(5, |comm| {
            let payload = if comm.rank() == 2 { b"hello".to_vec() } else { Vec::new() };
            bcast(comm, 2, payload)
        });
        for o in out {
            assert_eq!(o, b"hello");
        }
    }

    #[test]
    fn allreduce_sum_max_min() {
        let out = run(6, |comm| {
            let r = comm.rank() as f64;
            let mut v = vec![r, -r, 1.0];
            allreduce_f64(comm, &mut v, ReduceOp::Sum);
            let mut w = vec![r];
            allreduce_f64(comm, &mut w, ReduceOp::Max);
            let mut m = vec![r];
            allreduce_f64(comm, &mut m, ReduceOp::Min);
            (v, w, m)
        });
        for (v, w, m) in out {
            assert_eq!(v, vec![15.0, -15.0, 6.0]);
            assert_eq!(w, vec![5.0]);
            assert_eq!(m, vec![0.0]);
        }
    }

    #[test]
    fn allreduce_u64_tree_counts() {
        // The paper's use case: summing local box point counts.
        let out = run(4, |comm| {
            let mut counts = vec![comm.rank() as u64; 8];
            allreduce_u64(comm, &mut counts, ReduceOp::Sum);
            counts
        });
        for c in out {
            assert_eq!(c, vec![6u64; 8]);
        }
    }

    #[test]
    fn allreduce_bitor_rank_masks() {
        let out = run(5, |comm| {
            let mut mask = vec![1u64 << comm.rank()];
            allreduce_u64(comm, &mut mask, ReduceOp::BitOr);
            mask[0]
        });
        for m in out {
            assert_eq!(m, 0b11111);
        }
    }

    /// Satellite regression: float BitOr must fail loudly on every rank
    /// with the rank id in the message — including the single-rank path,
    /// which previously never reached the check and silently succeeded.
    #[test]
    fn float_bitor_panics_with_rank_context_single_rank() {
        let res = std::panic::catch_unwind(|| {
            run(1, |comm| {
                let mut v = vec![1.0];
                allreduce_f64(comm, &mut v, ReduceOp::BitOr);
            });
        });
        let payload = res.expect_err("P=1 float BitOr must panic too");
        let msg = payload.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("rank 0"), "message carries the rank: {msg}");
        assert!(msg.contains("BitOr"), "message names the operator: {msg}");
    }

    /// Multi-rank: every rank rejects at entry, so no rank is left blocked
    /// waiting for a root reply, and the propagated panic names a rank.
    #[test]
    fn float_bitor_panics_with_rank_context_multi_rank() {
        let res = std::panic::catch_unwind(|| {
            run(3, |comm| {
                let mut v = vec![f64::from(comm.rank() as u32)];
                allreduce_f64(comm, &mut v, ReduceOp::BitOr);
            });
        });
        let payload = res.expect_err("P=3 float BitOr must panic");
        let msg = payload.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("rank"), "message carries a rank id: {msg}");
        assert!(msg.contains("allreduce_u64"), "message points at the fix: {msg}");
    }

    #[test]
    fn allgatherv_variable_sizes() {
        let out = run(4, |comm| {
            let mine = vec![comm.rank() as u8; comm.rank() + 1];
            allgatherv(comm, &mine)
        });
        for parts in out {
            assert_eq!(parts.len(), 4);
            for (r, p) in parts.iter().enumerate() {
                assert_eq!(p, &vec![r as u8; r + 1]);
            }
        }
    }

    #[test]
    fn alltoallv_personalized() {
        let out = run(3, |comm| {
            let send: Vec<Vec<u8>> =
                (0..3).map(|d| vec![(10 * comm.rank() + d) as u8; d + 1]).collect();
            alltoallv(comm, send)
        });
        for (me, received) in out.into_iter().enumerate() {
            for (src, payload) in received.into_iter().enumerate() {
                assert_eq!(payload, vec![(10 * src + me) as u8; me + 1]);
            }
        }
    }

    /// Runs `sample_sort_u64` over per-rank inputs and checks the output
    /// contract: chunk concatenation == sorted union, each chunk sorted,
    /// chunks ascending by rank, and no equal keys straddling a boundary.
    fn check_sample_sort(inputs: Vec<Vec<u64>>) {
        let p = inputs.len();
        let mut expected: Vec<u64> = inputs.concat();
        expected.sort_unstable();
        let inputs2 = inputs.clone();
        let chunks = run(p, move |comm| {
            let mut mine = inputs2[comm.rank()].clone();
            mine.sort_unstable();
            sample_sort_u64(comm, &mine)
        });
        for c in &chunks {
            assert!(c.windows(2).all(|w| w[0] <= w[1]), "chunk not sorted");
        }
        for w in chunks.windows(2) {
            if let (Some(&last), Some(&first)) = (w[0].last(), w[1].first()) {
                assert!(
                    last < first,
                    "equal keys must not straddle a chunk boundary: {last} vs {first}"
                );
            }
        }
        assert_eq!(chunks.concat(), expected, "inputs {inputs:?}");
    }

    #[test]
    fn sample_sort_matches_serial_sort() {
        // Deterministic pseudo-random inputs, uneven sizes.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let inputs: Vec<Vec<u64>> =
            (0..4).map(|r| (0..(500 + 137 * r)).map(|_| next() % 1000).collect()).collect();
        check_sample_sort(inputs);
    }

    #[test]
    fn sample_sort_handles_empty_and_skewed_ranks() {
        // One rank hoards everything; others are empty.
        check_sample_sort(vec![(0..2000).collect(), vec![], vec![], vec![]]);
        // All ranks empty.
        check_sample_sort(vec![vec![]; 4]);
        // Single element total.
        check_sample_sort(vec![vec![], vec![7], vec![], vec![]]);
        // Single rank degenerates to a local sort.
        check_sample_sort(vec![(0..100).rev().map(|i| i * 3).collect()]);
    }

    #[test]
    fn sample_sort_all_equal_keys_land_on_one_rank() {
        // Heavy duplication: every key identical. The whole multiset must
        // land on exactly one rank (no-straddle rule).
        let inputs = vec![vec![42u64; 300]; 4];
        let chunks = run(4, |comm| sample_sort_u64(comm, &vec![42u64; 300]));
        let nonempty = chunks.iter().filter(|c| !c.is_empty()).count();
        assert_eq!(nonempty, 1, "all duplicates of one value go to one rank");
        assert_eq!(chunks.concat().len(), 4 * 300);
        check_sample_sort(inputs);
    }

    #[test]
    fn typed_u64_collectives_roundtrip() {
        let out = run(3, |comm| {
            let r = comm.rank() as u64;
            let gathered = allgatherv_u64(comm, &[r, r + 10]);
            let send: Vec<Vec<u64>> = (0..3).map(|d| vec![100 * r + d as u64]).collect();
            let received = alltoallv_u64(comm, send);
            (gathered, received)
        });
        for (me, (gathered, received)) in out.into_iter().enumerate() {
            assert_eq!(gathered, vec![vec![0, 10], vec![1, 11], vec![2, 12]]);
            let expect: Vec<Vec<u64>> =
                (0..3).map(|src| vec![100 * src as u64 + me as u64]).collect();
            assert_eq!(received, expect);
        }
    }

    #[test]
    fn collectives_interleave_with_p2p() {
        run(3, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 42, b"user");
            }
            barrier(comm);
            let mut v = vec![1.0];
            allreduce_f64(comm, &mut v, ReduceOp::Sum);
            assert_eq!(v[0], 3.0);
            if comm.rank() == 1 {
                assert_eq!(comm.recv(0, 42), b"user");
            }
        });
    }
}
