//! Typed payload helpers: encode/decode numeric slices to byte messages.

use bytes::{Buf, BufMut};

/// Encode `f64`s little-endian.
pub fn encode_f64s(v: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() * 8);
    for &x in v {
        out.put_f64_le(x);
    }
    out
}

/// Decode `f64`s little-endian.
pub fn decode_f64s(mut b: &[u8]) -> Vec<f64> {
    assert_eq!(b.len() % 8, 0, "payload is not a whole number of f64s");
    let mut out = Vec::with_capacity(b.len() / 8);
    while b.has_remaining() {
        out.push(b.get_f64_le());
    }
    out
}

/// Encode `u64`s little-endian.
pub fn encode_u64s(v: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() * 8);
    for &x in v {
        out.put_u64_le(x);
    }
    out
}

/// Decode `u64`s little-endian.
pub fn decode_u64s(mut b: &[u8]) -> Vec<u64> {
    assert_eq!(b.len() % 8, 0, "payload is not a whole number of u64s");
    let mut out = Vec::with_capacity(b.len() / 8);
    while b.has_remaining() {
        out.push(b.get_u64_le());
    }
    out
}

/// Encode `u32`s little-endian.
pub fn encode_u32s(v: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() * 4);
    for &x in v {
        out.put_u32_le(x);
    }
    out
}

/// Decode `u32`s little-endian.
pub fn decode_u32s(mut b: &[u8]) -> Vec<u32> {
    assert_eq!(b.len() % 4, 0, "payload is not a whole number of u32s");
    let mut out = Vec::with_capacity(b.len() / 4);
    while b.has_remaining() {
        out.push(b.get_u32_le());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_roundtrip() {
        let v = vec![0.0, -1.5, f64::MAX, f64::MIN_POSITIVE, 3.25];
        assert_eq!(decode_f64s(&encode_f64s(&v)), v);
        assert!(decode_f64s(&[]).is_empty());
    }

    #[test]
    fn u64_u32_roundtrip() {
        let v = vec![0u64, 1, u64::MAX, 42];
        assert_eq!(decode_u64s(&encode_u64s(&v)), v);
        let w = vec![0u32, u32::MAX, 7];
        assert_eq!(decode_u32s(&encode_u32s(&w)), w);
    }

    #[test]
    #[should_panic]
    fn ragged_payload_rejected() {
        decode_f64s(&[1, 2, 3]);
    }
}
