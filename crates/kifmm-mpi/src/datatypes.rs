//! Typed payload helpers: encode/decode numeric slices to byte messages.
//! Plain `{to,from}_le_bytes` — no external byte-buffer crate.

/// Encode `f64`s little-endian.
pub fn encode_f64s(v: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() * 8);
    for &x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

/// Decode `f64`s little-endian.
pub fn decode_f64s(b: &[u8]) -> Vec<f64> {
    assert_eq!(b.len() % 8, 0, "payload is not a whole number of f64s");
    b.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().unwrap())).collect()
}

/// Encode `u64`s little-endian.
pub fn encode_u64s(v: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() * 8);
    for &x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

/// Decode `u64`s little-endian.
pub fn decode_u64s(b: &[u8]) -> Vec<u64> {
    assert_eq!(b.len() % 8, 0, "payload is not a whole number of u64s");
    b.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect()
}

/// Encode `u32`s little-endian.
pub fn encode_u32s(v: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() * 4);
    for &x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

/// Decode `u32`s little-endian.
pub fn decode_u32s(b: &[u8]) -> Vec<u32> {
    assert_eq!(b.len() % 4, 0, "payload is not a whole number of u32s");
    b.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().unwrap())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_roundtrip() {
        let v = vec![0.0, -1.5, f64::MAX, f64::MIN_POSITIVE, 3.25];
        assert_eq!(decode_f64s(&encode_f64s(&v)), v);
        assert!(decode_f64s(&[]).is_empty());
    }

    #[test]
    fn u64_u32_roundtrip() {
        let v = vec![0u64, 1, u64::MAX, 42];
        assert_eq!(decode_u64s(&encode_u64s(&v)), v);
        let w = vec![0u32, u32::MAX, 7];
        assert_eq!(decode_u32s(&encode_u32s(&w)), w);
    }

    #[test]
    fn byte_layout_is_little_endian() {
        assert_eq!(encode_u32s(&[0x0403_0201]), vec![1, 2, 3, 4]);
        assert_eq!(encode_u64s(&[1]), vec![1, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!(encode_f64s(&[1.0])[7], 0x3f);
    }

    #[test]
    #[should_panic]
    fn ragged_payload_rejected() {
        decode_f64s(&[1, 2, 3]);
    }
}
