//! Ranks, mailboxes and point-to-point messaging.
//!
//! [`run`] spawns one OS thread per rank and hands each a [`Comm`]. Send
//! is eager-buffered (enqueue and return, like a buffered `MPI_Send`);
//! receive blocks until a message matching `(source, tag)` arrives. This
//! is exactly the messaging model the paper's Algorithm 1 needs, and the
//! buffered semantics are what allow its computation/communication
//! overlap: a rank can post all its gather sends and immediately proceed
//! with the upward pass.

use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Message envelope key: (source rank, tag).
type MatchKey = (usize, u64);

/// One rank's mailbox.
#[derive(Default)]
struct Mailbox {
    queues: Mutex<HashMap<MatchKey, VecDeque<Vec<u8>>>>,
    signal: Condvar,
}

/// State shared by all ranks of one run.
pub(crate) struct Shared {
    pub(crate) size: usize,
    mailboxes: Vec<Mailbox>,
    /// Total bytes pushed through p2p sends (collectives are built on p2p
    /// and therefore included).
    bytes_sent: AtomicU64,
    messages_sent: AtomicU64,
}

/// Per-rank communication statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct CommStats {
    /// Bytes this rank sent.
    pub bytes_sent: u64,
    /// Messages this rank sent.
    pub messages_sent: u64,
    /// Wall-clock seconds this rank spent blocked in receive or
    /// synchronizing inside collectives.
    pub comm_seconds: f64,
}

/// A rank's handle to the communicator (one per thread; not shared).
pub struct Comm {
    rank: usize,
    shared: Arc<Shared>,
    /// Sequence numbers making collective tags unique per call site order.
    collective_seq: std::cell::Cell<u64>,
    stats: std::cell::Cell<CommStats>,
}

/// Tags at or above this value are reserved for collectives.
pub const RESERVED_TAG_BASE: u64 = 1 << 60;

impl Comm {
    /// This rank's id in `[0, size)`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.shared.size
    }

    /// Statistics accumulated so far by this rank.
    pub fn stats(&self) -> CommStats {
        self.stats.get()
    }

    /// Send `data` to `dest` with `tag` (eager-buffered: returns
    /// immediately).
    pub fn send(&self, dest: usize, tag: u64, data: &[u8]) {
        assert!(dest < self.size(), "destination rank out of range");
        assert!(tag < RESERVED_TAG_BASE, "user tags must stay below the reserved range");
        self.send_raw(dest, tag, data.to_vec());
    }

    pub(crate) fn send_raw(&self, dest: usize, tag: u64, data: Vec<u8>) {
        let mut st = self.stats.get();
        st.bytes_sent += data.len() as u64;
        st.messages_sent += 1;
        self.stats.set(st);
        self.shared.bytes_sent.fetch_add(data.len() as u64, Ordering::Relaxed);
        self.shared.messages_sent.fetch_add(1, Ordering::Relaxed);
        let mb = &self.shared.mailboxes[dest];
        let mut q = mb.queues.lock();
        q.entry((self.rank, tag)).or_default().push_back(data);
        drop(q);
        mb.signal.notify_all();
    }

    /// Blocking receive of the next message from `source` with `tag`.
    pub fn recv(&self, source: usize, tag: u64) -> Vec<u8> {
        assert!(tag < RESERVED_TAG_BASE, "user tags must stay below the reserved range");
        self.recv_raw(source, tag)
    }

    pub(crate) fn recv_raw(&self, source: usize, tag: u64) -> Vec<u8> {
        let start = Instant::now();
        let mb = &self.shared.mailboxes[self.rank];
        let key = (source, tag);
        let mut q = mb.queues.lock();
        loop {
            if let Some(queue) = q.get_mut(&key) {
                if let Some(msg) = queue.pop_front() {
                    let mut st = self.stats.get();
                    st.comm_seconds += start.elapsed().as_secs_f64();
                    self.stats.set(st);
                    return msg;
                }
            }
            mb.signal.wait(&mut q);
        }
    }

    /// Non-blocking probe: take a waiting message from `(source, tag)` if
    /// one is queued.
    pub fn try_recv(&self, source: usize, tag: u64) -> Option<Vec<u8>> {
        let mb = &self.shared.mailboxes[self.rank];
        let mut q = mb.queues.lock();
        q.get_mut(&(source, tag)).and_then(|queue| queue.pop_front())
    }

    pub(crate) fn next_collective_tag(&self) -> u64 {
        let seq = self.collective_seq.get();
        self.collective_seq.set(seq + 1);
        RESERVED_TAG_BASE + seq
    }

}

/// Run `f` on `size` ranks (one thread each) and collect each rank's
/// return value, ordered by rank.
///
/// Panics in any rank propagate after all threads are joined.
pub fn run<R: Send>(size: usize, f: impl Fn(&Comm) -> R + Send + Sync) -> Vec<R> {
    assert!(size >= 1, "need at least one rank");
    let shared = Arc::new(Shared {
        size,
        mailboxes: (0..size).map(|_| Mailbox::default()).collect(),
        bytes_sent: AtomicU64::new(0),
        messages_sent: AtomicU64::new(0),
    });
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..size)
            .map(|rank| {
                let shared = shared.clone();
                let f = &f;
                scope.spawn(move || {
                    let comm = Comm {
                        rank,
                        shared,
                        collective_seq: std::cell::Cell::new(0),
                        stats: std::cell::Cell::new(CommStats::default()),
                    };
                    f(&comm)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_pong() {
        let out = run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, b"ping");
                comm.recv(1, 8)
            } else {
                let m = comm.recv(0, 7);
                assert_eq!(m, b"ping");
                comm.send(0, 8, b"pong");
                m
            }
        });
        assert_eq!(out[0], b"pong");
        assert_eq!(out[1], b"ping");
    }

    #[test]
    fn messages_ordered_per_key() {
        let out = run(2, |comm| {
            if comm.rank() == 0 {
                for i in 0..10u8 {
                    comm.send(1, 1, &[i]);
                }
                vec![]
            } else {
                (0..10).map(|_| comm.recv(0, 1)[0]).collect::<Vec<u8>>()
            }
        });
        assert_eq!(out[1], (0..10).collect::<Vec<u8>>());
    }

    #[test]
    fn tags_demultiplex() {
        let out = run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 5, b"five");
                comm.send(1, 3, b"three");
                vec![]
            } else {
                // Receive in the opposite order of sending.
                let a = comm.recv(0, 3);
                let b = comm.recv(0, 5);
                vec![a, b]
            }
        });
        assert_eq!(out[1], vec![b"three".to_vec(), b"five".to_vec()]);
    }

    #[test]
    fn try_recv_nonblocking() {
        run(2, |comm| {
            if comm.rank() == 1 {
                // Wrong-source and wrong-tag probes never match.
                assert!(comm.try_recv(1, 9).is_none());
                assert!(comm.try_recv(0, 8).is_none());
                // Poll until the message lands, without blocking.
                let m = loop {
                    if let Some(m) = comm.try_recv(0, 9) {
                        break m;
                    }
                    std::thread::yield_now();
                };
                assert_eq!(m, b"x");
                // Consumed: no duplicate delivery.
                assert!(comm.try_recv(0, 9).is_none());
            } else {
                comm.send(1, 9, b"x");
            }
        });
    }

    #[test]
    fn stats_count_traffic() {
        let out = run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, &[0u8; 100]);
                comm.send(1, 2, &[0u8; 50]);
            } else {
                comm.recv(0, 1);
                comm.recv(0, 2);
            }
            comm.stats()
        });
        assert_eq!(out[0].bytes_sent, 150);
        assert_eq!(out[0].messages_sent, 2);
        assert_eq!(out[1].bytes_sent, 0);
    }

    #[test]
    fn single_rank_runs() {
        let out = run(1, |comm| comm.rank() + comm.size());
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn many_to_one() {
        let out = run(8, |comm| {
            if comm.rank() == 0 {
                let mut total = 0u64;
                for src in 1..8 {
                    let m = comm.recv(src, 4);
                    total += m[0] as u64;
                }
                total
            } else {
                comm.send(0, 4, &[comm.rank() as u8]);
                0
            }
        });
        assert_eq!(out[0], (1..8).sum::<u64>());
    }
}
