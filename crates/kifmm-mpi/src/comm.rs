//! Ranks, mailboxes and point-to-point messaging.
//!
//! [`run`] spawns one OS thread per rank and hands each a [`Comm`]. Send
//! is eager-buffered (enqueue and return, like a buffered `MPI_Send`);
//! receive blocks until a message matching `(source, tag)` arrives. This
//! is exactly the messaging model the paper's Algorithm 1 needs, and the
//! buffered semantics are what allow its computation/communication
//! overlap: a rank can post all its gather sends and immediately proceed
//! with the upward pass.
//!
//! ## Panic containment
//!
//! A panicking virtual rank must not deadlock peers blocked in [`Comm::recv`]
//! waiting for a message that will now never arrive. Each rank body runs
//! under `catch_unwind`: the first panic is stashed, an abort flag is
//! raised, and every mailbox is signalled so blocked receivers wake and
//! abort with a recognizable panic ("a peer rank panicked"). [`run`] then
//! rethrows the *original* panic.
//!
//! A mailbox `Mutex` poisoned by a panic inside the lock is *recovered*,
//! not rethrown: every mailbox operation is a push/pop on an
//! otherwise-consistent `HashMap` of queues, so the inner state is valid
//! even when the poison flag is set. Recovering keeps in-flight payloads
//! deliverable — a surviving rank can still drain messages that were
//! eagerly buffered before a peer died, instead of losing them to a bare
//! `PoisonError` unwrap racing the exchange's sends. Receivers check their
//! queue *before* the abort flag for the same reason: queued data is
//! delivered first, and only a wait that would now never finish aborts.

use kifmm_trace::{Counter, RankTracer};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

/// Message envelope key: (source rank, tag).
type MatchKey = (usize, u64);

/// One rank's mailbox.
#[derive(Default)]
struct Mailbox {
    queues: Mutex<HashMap<MatchKey, VecDeque<Vec<u8>>>>,
    signal: Condvar,
}

impl Mailbox {
    /// Lock the queues, recovering from a poisoned lock (a peer panicked
    /// while holding it). Every critical section here is a single queue
    /// push or pop that cannot leave the map half-updated, so the inner
    /// state is consistent and in-flight payloads stay deliverable.
    fn lock(&self) -> MutexGuard<'_, HashMap<MatchKey, VecDeque<Vec<u8>>>> {
        self.queues.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Messages still queued (undelivered) in this mailbox.
    fn undelivered(&self) -> usize {
        self.lock().values().map(VecDeque::len).sum()
    }
}

/// State shared by all ranks of one run.
pub(crate) struct Shared {
    pub(crate) size: usize,
    mailboxes: Vec<Mailbox>,
    /// Total bytes pushed through p2p sends (collectives are built on p2p
    /// and therefore included).
    bytes_sent: AtomicU64,
    messages_sent: AtomicU64,
    /// Raised when any rank panics, so peers blocked in `recv` abort
    /// instead of waiting forever.
    aborted: AtomicBool,
}

/// Per-rank communication statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct CommStats {
    /// Bytes this rank sent.
    pub bytes_sent: u64,
    /// Messages this rank sent.
    pub messages_sent: u64,
    /// Bytes this rank received.
    pub bytes_received: u64,
    /// Messages this rank received.
    pub messages_received: u64,
    /// Wall-clock seconds this rank spent blocked in receive or
    /// synchronizing inside collectives.
    pub comm_seconds: f64,
}

/// Traffic between this rank and one peer (see [`Comm::peer_traffic`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PeerTraffic {
    /// Bytes sent to the peer.
    pub bytes_sent: u64,
    /// Messages sent to the peer.
    pub messages_sent: u64,
    /// Bytes received from the peer.
    pub bytes_received: u64,
    /// Messages received from the peer.
    pub messages_received: u64,
}

/// A rank's handle to the communicator (one per thread; not shared).
pub struct Comm {
    rank: usize,
    shared: Arc<Shared>,
    /// Sequence numbers making collective tags unique per call site order.
    collective_seq: std::cell::Cell<u64>,
    stats: std::cell::Cell<CommStats>,
    /// Per-peer traffic, indexed by peer rank.
    peers: std::cell::RefCell<Vec<PeerTraffic>>,
    /// Observability hook: byte/message counters charged per send/recv
    /// (a disabled tracer unless [`Comm::attach_tracer`] was called).
    tracer: std::cell::RefCell<RankTracer>,
}

/// Tags at or above this value are reserved for collectives.
pub const RESERVED_TAG_BASE: u64 = 1 << 60;

impl Comm {
    /// This rank's id in `[0, size)`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.shared.size
    }

    /// Statistics accumulated so far by this rank.
    pub fn stats(&self) -> CommStats {
        self.stats.get()
    }

    /// Traffic between this rank and every peer, indexed by peer rank.
    pub fn peer_traffic(&self) -> Vec<PeerTraffic> {
        self.peers.borrow().clone()
    }

    /// Attach a rank tracer: every subsequent send/receive charges the
    /// `BytesSent`/`MessagesSent`/`BytesRecv`/`MessagesRecv` counters.
    pub fn attach_tracer(&self, tracer: RankTracer) {
        *self.tracer.borrow_mut() = tracer;
    }

    /// Send `data` to `dest` with `tag` (eager-buffered: returns
    /// immediately).
    pub fn send(&self, dest: usize, tag: u64, data: &[u8]) {
        assert!(dest < self.size(), "destination rank out of range");
        assert!(tag < RESERVED_TAG_BASE, "user tags must stay below the reserved range");
        self.send_raw(dest, tag, data.to_vec());
    }

    pub(crate) fn send_raw(&self, dest: usize, tag: u64, data: Vec<u8>) {
        let len = data.len() as u64;
        let mut st = self.stats.get();
        st.bytes_sent += len;
        st.messages_sent += 1;
        self.stats.set(st);
        {
            let mut peers = self.peers.borrow_mut();
            peers[dest].bytes_sent += len;
            peers[dest].messages_sent += 1;
        }
        {
            let tr = self.tracer.borrow();
            tr.add(Counter::BytesSent, len);
            tr.add(Counter::MessagesSent, 1);
        }
        self.shared.bytes_sent.fetch_add(len, Ordering::Relaxed);
        self.shared.messages_sent.fetch_add(1, Ordering::Relaxed);
        let mb = &self.shared.mailboxes[dest];
        let mut q = mb.lock();
        q.entry((self.rank, tag)).or_default().push_back(data);
        drop(q);
        mb.signal.notify_all();
    }

    /// Blocking receive of the next message from `source` with `tag`.
    pub fn recv(&self, source: usize, tag: u64) -> Vec<u8> {
        assert!(tag < RESERVED_TAG_BASE, "user tags must stay below the reserved range");
        self.recv_raw(source, tag)
    }

    pub(crate) fn recv_raw(&self, source: usize, tag: u64) -> Vec<u8> {
        let start = Instant::now();
        let mb = &self.shared.mailboxes[self.rank];
        let key = (source, tag);
        let mut q = mb.lock();
        loop {
            if let Some(queue) = q.get_mut(&key) {
                if let Some(msg) = queue.pop_front() {
                    let mut st = self.stats.get();
                    st.comm_seconds += start.elapsed().as_secs_f64();
                    self.stats.set(st);
                    self.count_received(source, msg.len() as u64);
                    return msg;
                }
            }
            // Never sleep through a peer's panic: the message this rank is
            // waiting for may now never be sent.
            if self.shared.aborted.load(Ordering::Acquire) {
                panic!(
                    "kifmm-mpi: rank {} aborting recv(source={source}, tag={tag}) —                      a peer rank panicked",
                    self.rank
                );
            }
            q = mb.signal.wait(q).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Block until at least one of `keys` (`(source, tag)` pairs) has a
    /// queued message, and return the index of the first ready key.
    ///
    /// The message is *not* consumed — follow up with [`Comm::try_recv`].
    /// This is the completion-polling primitive behind overlapped
    /// exchanges: a driver that has run out of compute parks here instead
    /// of spinning, and wakes on whichever peer's packet lands first.
    /// Blocked time is charged to `comm_seconds`, and a peer panic aborts
    /// the wait exactly like [`Comm::recv`].
    pub fn wait_any(&self, keys: &[(usize, u64)]) -> usize {
        assert!(!keys.is_empty(), "wait_any needs at least one key");
        let start = Instant::now();
        let mb = &self.shared.mailboxes[self.rank];
        let mut q = mb.lock();
        loop {
            if let Some(i) = keys
                .iter()
                .position(|key| q.get(key).is_some_and(|queue| !queue.is_empty()))
            {
                let mut st = self.stats.get();
                st.comm_seconds += start.elapsed().as_secs_f64();
                self.stats.set(st);
                return i;
            }
            if self.shared.aborted.load(Ordering::Acquire) {
                panic!(
                    "kifmm-mpi: rank {} aborting wait_any over {} keys — a peer rank panicked",
                    self.rank,
                    keys.len()
                );
            }
            q = mb.signal.wait(q).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Non-blocking probe: take a waiting message from `(source, tag)` if
    /// one is queued.
    pub fn try_recv(&self, source: usize, tag: u64) -> Option<Vec<u8>> {
        let mb = &self.shared.mailboxes[self.rank];
        let mut q = mb.lock();
        let msg = q.get_mut(&(source, tag)).and_then(|queue| queue.pop_front());
        drop(q);
        if let Some(m) = &msg {
            self.count_received(source, m.len() as u64);
        }
        msg
    }

    /// Charge one delivered message to the receive-side accounting.
    fn count_received(&self, source: usize, len: u64) {
        let mut st = self.stats.get();
        st.bytes_received += len;
        st.messages_received += 1;
        self.stats.set(st);
        {
            let mut peers = self.peers.borrow_mut();
            peers[source].bytes_received += len;
            peers[source].messages_received += 1;
        }
        let tr = self.tracer.borrow();
        tr.add(Counter::BytesRecv, len);
        tr.add(Counter::MessagesRecv, 1);
    }

    pub(crate) fn next_collective_tag(&self) -> u64 {
        let seq = self.collective_seq.get();
        self.collective_seq.set(seq + 1);
        RESERVED_TAG_BASE + seq
    }

}

/// Run `f` on `size` ranks (one thread each) and collect each rank's
/// return value, ordered by rank.
///
/// If any rank panics, peers blocked in `recv` are woken and aborted (no
/// deadlock), and the *first* rank's original panic payload is rethrown
/// after all threads are joined.
pub fn run<R: Send>(size: usize, f: impl Fn(&Comm) -> R + Send + Sync) -> Vec<R> {
    assert!(size >= 1, "need at least one rank");
    let shared = Arc::new(Shared {
        size,
        mailboxes: (0..size).map(|_| Mailbox::default()).collect(),
        bytes_sent: AtomicU64::new(0),
        messages_sent: AtomicU64::new(0),
        aborted: AtomicBool::new(false),
    });
    // First panic payload across ranks (secondary "peer panicked" aborts
    // are discarded in favor of the root cause).
    let first_panic: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    let results = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..size)
            .map(|rank| {
                let shared = shared.clone();
                let f = &f;
                let first_panic = &first_panic;
                scope.spawn(move || {
                    let comm = Comm {
                        rank,
                        shared: shared.clone(),
                        collective_seq: std::cell::Cell::new(0),
                        stats: std::cell::Cell::new(CommStats::default()),
                        peers: std::cell::RefCell::new(vec![PeerTraffic::default(); size]),
                        tracer: std::cell::RefCell::new(RankTracer::disabled()),
                    };
                    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&comm))) {
                        Ok(v) => Some(v),
                        Err(payload) => {
                            let mut slot =
                                first_panic.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                            slot.get_or_insert(payload);
                            drop(slot);
                            // Wake every blocked receiver so it can abort.
                            shared.aborted.store(true, Ordering::Release);
                            for mb in &shared.mailboxes {
                                mb.signal.notify_all();
                            }
                            None
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread itself never panics"))
            .collect::<Vec<_>>()
    });
    if let Some(payload) =
        first_panic.lock().unwrap_or_else(std::sync::PoisonError::into_inner).take()
    {
        // All ranks are joined: report what died in flight before
        // rethrowing, so a lost-payload bug is visible in the panic output
        // instead of silently discarded with the mailboxes.
        let stranded: usize = shared.mailboxes.iter().map(Mailbox::undelivered).sum();
        if stranded > 0 {
            eprintln!(
                "kifmm-mpi: aborting run with {stranded} undelivered message(s) \
                 still queued in mailboxes"
            );
        }
        std::panic::resume_unwind(payload);
    }
    results.into_iter().map(|r| r.expect("no panic recorded, all ranks returned")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_pong() {
        let out = run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, b"ping");
                comm.recv(1, 8)
            } else {
                let m = comm.recv(0, 7);
                assert_eq!(m, b"ping");
                comm.send(0, 8, b"pong");
                m
            }
        });
        assert_eq!(out[0], b"pong");
        assert_eq!(out[1], b"ping");
    }

    #[test]
    fn messages_ordered_per_key() {
        let out = run(2, |comm| {
            if comm.rank() == 0 {
                for i in 0..10u8 {
                    comm.send(1, 1, &[i]);
                }
                vec![]
            } else {
                (0..10).map(|_| comm.recv(0, 1)[0]).collect::<Vec<u8>>()
            }
        });
        assert_eq!(out[1], (0..10).collect::<Vec<u8>>());
    }

    #[test]
    fn tags_demultiplex() {
        let out = run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 5, b"five");
                comm.send(1, 3, b"three");
                vec![]
            } else {
                // Receive in the opposite order of sending.
                let a = comm.recv(0, 3);
                let b = comm.recv(0, 5);
                vec![a, b]
            }
        });
        assert_eq!(out[1], vec![b"three".to_vec(), b"five".to_vec()]);
    }

    #[test]
    fn try_recv_nonblocking() {
        run(2, |comm| {
            if comm.rank() == 1 {
                // Wrong-source and wrong-tag probes never match.
                assert!(comm.try_recv(1, 9).is_none());
                assert!(comm.try_recv(0, 8).is_none());
                // Poll until the message lands, without blocking.
                let m = loop {
                    if let Some(m) = comm.try_recv(0, 9) {
                        break m;
                    }
                    std::thread::yield_now();
                };
                assert_eq!(m, b"x");
                // Consumed: no duplicate delivery.
                assert!(comm.try_recv(0, 9).is_none());
            } else {
                comm.send(1, 9, b"x");
            }
        });
    }

    #[test]
    fn stats_count_traffic() {
        let out = run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, &[0u8; 100]);
                comm.send(1, 2, &[0u8; 50]);
            } else {
                comm.recv(0, 1);
                comm.recv(0, 2);
            }
            comm.stats()
        });
        assert_eq!(out[0].bytes_sent, 150);
        assert_eq!(out[0].messages_sent, 2);
        assert_eq!(out[1].bytes_sent, 0);
    }

    #[test]
    fn single_rank_runs() {
        let out = run(1, |comm| comm.rank() + comm.size());
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn many_to_one() {
        let out = run(8, |comm| {
            if comm.rank() == 0 {
                let mut total = 0u64;
                for src in 1..8 {
                    let m = comm.recv(src, 4);
                    total += m[0] as u64;
                }
                total
            } else {
                comm.send(0, 4, &[comm.rank() as u8]);
                0
            }
        });
        assert_eq!(out[0], (1..8).sum::<u64>());
    }

    /// Receive-side and per-peer traffic accounting: every delivered
    /// message is charged to both the aggregate stats and the
    /// sender-indexed [`PeerTraffic`] table, and an attached tracer sees
    /// the same byte/message totals.
    #[test]
    fn peer_traffic_and_recv_accounting() {
        let tracer = kifmm_trace::Tracer::enabled();
        let out = run(3, {
            let tracer = tracer.clone();
            move |comm| {
                comm.attach_tracer(tracer.rank(comm.rank()));
                if comm.rank() == 0 {
                    comm.send(1, 7, &[0u8; 10]);
                    comm.send(2, 7, &[0u8; 20]);
                    comm.send(2, 8, &[0u8; 5]);
                    (comm.stats(), comm.peer_traffic())
                } else {
                    let from0: Vec<Vec<u8>> = if comm.rank() == 1 {
                        vec![comm.recv(0, 7)]
                    } else {
                        vec![comm.recv(0, 7), comm.recv(0, 8)]
                    };
                    let _ = from0;
                    (comm.stats(), comm.peer_traffic())
                }
            }
        });
        let (st0, peers0) = &out[0];
        assert_eq!(st0.bytes_sent, 35);
        assert_eq!(st0.messages_sent, 3);
        assert_eq!(st0.bytes_received, 0);
        assert_eq!(peers0[1], PeerTraffic { bytes_sent: 10, messages_sent: 1, ..Default::default() });
        assert_eq!(peers0[2], PeerTraffic { bytes_sent: 25, messages_sent: 2, ..Default::default() });
        let (st2, peers2) = &out[2];
        assert_eq!(st2.bytes_received, 25);
        assert_eq!(st2.messages_received, 2);
        assert_eq!(
            peers2[0],
            PeerTraffic { bytes_received: 25, messages_received: 2, ..Default::default() }
        );
        // Tracer counters agree with the stats totals.
        use kifmm_trace::Counter;
        assert_eq!(tracer.counter_total(Counter::BytesSent), 35);
        assert_eq!(tracer.counter_total(Counter::MessagesSent), 3);
        assert_eq!(tracer.counter_total(Counter::BytesRecv), 35);
        assert_eq!(tracer.counter_total(Counter::MessagesRecv), 3);
        assert_eq!(tracer.rank_counter(2, Counter::BytesRecv), 25);
    }

    /// Satellite regression: a panicking rank must not deadlock peers
    /// blocked in `recv`, and `run` must rethrow the *original* panic
    /// payload, not a secondary "peer panicked" abort.
    #[test]
    fn rank_panic_does_not_deadlock_blocked_receivers() {
        let res = std::panic::catch_unwind(|| {
            run(4, |comm| {
                if comm.rank() == 2 {
                    panic!("rank 2 exploded");
                }
                // Every other rank blocks on a message rank 2 will never
                // send; without abort signalling this waits forever.
                comm.recv(2, 9);
            });
        });
        let payload = res.expect_err("run must propagate the panic");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "rank 2 exploded");
    }

    /// `wait_any` parks until one of several keys is ready, reports which,
    /// and leaves the message queued for a subsequent `try_recv`.
    #[test]
    fn wait_any_reports_ready_key_without_consuming() {
        let out = run(3, |comm| {
            match comm.rank() {
                0 => {
                    let keys = [(1usize, 21u64), (2usize, 22u64)];
                    let first = comm.wait_any(&keys);
                    let (src, tag) = keys[first];
                    let m = comm.try_recv(src, tag).expect("wait_any saw a queued message");
                    // Unblock the slower sender's handshake, then drain it.
                    let second = comm.wait_any(&keys);
                    assert_ne!(second, first, "second wake is the other peer");
                    let (src2, tag2) = keys[second];
                    let m2 = comm.try_recv(src2, tag2).expect("second message queued");
                    let mut both = vec![m[0], m2[0]];
                    both.sort_unstable();
                    both
                }
                1 => {
                    comm.send(0, 21, &[1]);
                    vec![]
                }
                _ => {
                    comm.send(0, 22, &[2]);
                    vec![]
                }
            }
        });
        assert_eq!(out[0], vec![1, 2]);
    }

    /// Satellite regression: a mailbox poisoned by a panic inside the lock
    /// must not strand in-flight payloads. Rank 2 poisons rank 1's mailbox
    /// mutex and later panics; rank 0's eager send into the poisoned
    /// mailbox still succeeds, and rank 1's receive recovers the lock and
    /// delivers the payload. `run` still rethrows rank 2's original panic.
    #[test]
    fn poisoned_mailbox_still_delivers_inflight_payloads() {
        let delivered: Arc<Mutex<Option<Vec<u8>>>> = Arc::new(Mutex::new(None));
        let delivered2 = delivered.clone();
        let res = std::panic::catch_unwind(move || {
            run(3, move |comm| match comm.rank() {
                0 => {
                    // Wait until rank 2 has poisoned rank 1's mailbox...
                    comm.recv(2, 6);
                    // ...then race an eager send into the poisoned mailbox
                    // (this is the payload that used to be lost)...
                    comm.send(1, 5, b"survives poison");
                    // ...and only now let rank 2 go panic. The payload is
                    // queued before the abort flag can possibly rise, so
                    // delivery is deterministic.
                    comm.send(2, 7, &[]);
                }
                1 => {
                    let payload = comm.recv(0, 5);
                    *delivered2.lock().unwrap() = Some(payload);
                }
                _ => {
                    // Poison rank 1's mailbox: panic while holding its lock.
                    let poison = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let _guard = comm.shared.mailboxes[1].queues.lock().unwrap();
                        panic!("poison injection");
                    }));
                    assert!(poison.is_err());
                    assert!(comm.shared.mailboxes[1].queues.is_poisoned());
                    comm.send(0, 6, &[]);
                    comm.recv(0, 7);
                    panic!("rank 2 exploded");
                }
            });
        });
        let payload = res.expect_err("run must propagate rank 2's panic");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "rank 2 exploded");
        assert_eq!(
            delivered.lock().unwrap().as_deref(),
            Some(b"survives poison".as_slice()),
            "in-flight payload crossed the poisoned mailbox"
        );
    }

    /// The abort flag must also wake a receiver that was already asleep in
    /// the condvar before the panic happened (rendezvous, then panic).
    #[test]
    fn late_panic_wakes_sleeping_receiver() {
        let res = std::panic::catch_unwind(|| {
            run(2, |comm| {
                if comm.rank() == 1 {
                    // Let rank 0 reach its recv first.
                    comm.recv(0, 1);
                    std::thread::sleep(std::time::Duration::from_millis(50));
                    panic!("late failure");
                }
                comm.send(1, 1, &[1]);
                comm.recv(1, 2);
            });
        });
        let payload = res.expect_err("run must propagate the panic");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "late failure");
    }
}
