//! Checked message-tag encoding.
//!
//! User tags are a single `u64` below [`RESERVED_TAG_BASE`](crate::comm::RESERVED_TAG_BASE)
//! (`1 << 60`). Early exchange code built tags by *addition* —
//! `TAG_GATHER + salt + box_id` — which silently collides once a box id
//! crosses the salt stride: `(salt=0, box=2³²)` and `(salt=2³², box=0)`
//! produce the same tag, so a gather message for one payload kind can be
//! matched by a receive for another. This module replaces the arithmetic
//! with disjoint *bitfields*, checked at encode time:
//!
//! ```text
//! bit 59………56  55………40  39……………………0
//!   namespace     salt       sub
//!    (4 bits)  (16 bits)  (40 bits)
//! ```
//!
//! * `namespace` — message family (gather vs scatter vs anything else a
//!   protocol defines). Must be nonzero so every encoded tag stays out of
//!   the plain-small-integer tag space used by ad-hoc sends.
//! * `salt` — concurrent-exchange discriminator (points vs densities vs
//!   equivalents).
//! * `sub` — free payload-id field (a box id for per-box protocols, 0 for
//!   per-peer packed protocols).
//!
//! Width overflow is a *bug* in the caller, never a value to wrap: each
//! field is asserted against its width (debug and release — the check is
//! three compares against constants, irrelevant next to a message send).

/// Bits of the `sub` field (payload id).
pub const TAG_SUB_BITS: u32 = 40;
/// Bits of the `salt` field (exchange discriminator).
pub const TAG_SALT_BITS: u32 = 16;
/// Bits of the `namespace` field.
pub const TAG_NS_BITS: u32 = 4;

/// Exclusive upper bound of the `sub` field.
pub const TAG_SUB_LIMIT: u64 = 1 << TAG_SUB_BITS;
/// Exclusive upper bound of the `salt` field.
pub const TAG_SALT_LIMIT: u64 = 1 << TAG_SALT_BITS;
/// Exclusive upper bound of the `namespace` field.
pub const TAG_NS_LIMIT: u64 = 1 << TAG_NS_BITS;

/// Pack `(namespace, salt, sub)` into one collision-free user tag.
///
/// Distinct argument triples yield distinct tags (the fields occupy
/// disjoint bits), and every encoded tag is below the collective-reserved
/// range. Panics if any field exceeds its width or `namespace` is zero.
#[inline]
pub fn encode_tag(namespace: u64, salt: u64, sub: u64) -> u64 {
    assert!(
        namespace > 0 && namespace < TAG_NS_LIMIT,
        "tag namespace {namespace} outside [1, {TAG_NS_LIMIT})"
    );
    assert!(salt < TAG_SALT_LIMIT, "tag salt {salt} overflows {TAG_SALT_BITS} bits");
    assert!(sub < TAG_SUB_LIMIT, "tag sub-id {sub} overflows {TAG_SUB_BITS} bits");
    namespace << (TAG_SALT_BITS + TAG_SUB_BITS) | salt << TAG_SUB_BITS | sub
}

/// Unpack a tag produced by [`encode_tag`] into `(namespace, salt, sub)`.
#[inline]
pub fn decode_tag(tag: u64) -> (u64, u64, u64) {
    (
        tag >> (TAG_SALT_BITS + TAG_SUB_BITS) & (TAG_NS_LIMIT - 1),
        tag >> TAG_SUB_BITS & (TAG_SALT_LIMIT - 1),
        tag & (TAG_SUB_LIMIT - 1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::RESERVED_TAG_BASE;

    #[test]
    fn roundtrip_and_below_reserved() {
        for &(ns, salt, sub) in &[
            (1u64, 0u64, 0u64),
            (2, 7, 123),
            (TAG_NS_LIMIT - 1, TAG_SALT_LIMIT - 1, TAG_SUB_LIMIT - 1),
            (1, 2, 1 << 32),
        ] {
            let tag = encode_tag(ns, salt, sub);
            assert_eq!(decode_tag(tag), (ns, salt, sub));
            assert!(tag < RESERVED_TAG_BASE, "user tags stay below collectives");
        }
    }

    /// Regression for the additive scheme: with `TAG_GATHER + salt + b`
    /// and a salt stride of 2³², box `2³²` under salt 0 collided with box
    /// 0 under the next salt. The bitfield encoding keeps them distinct
    /// and round-trips both.
    #[test]
    fn previously_colliding_ids_roundtrip() {
        const OLD_TAG_GATHER: u64 = 1 << 40;
        const OLD_SALT_STRIDE: u64 = 1 << 32;
        // The old arithmetic really collided:
        assert_eq!(
            OLD_TAG_GATHER + 0 + OLD_SALT_STRIDE,
            OLD_TAG_GATHER + OLD_SALT_STRIDE + 0,
        );
        // The bitfield encoding does not, and each side round-trips.
        let a = encode_tag(1, 0, OLD_SALT_STRIDE); // salt 0, box 2³²
        let b = encode_tag(1, 1, 0); // next salt, box 0
        assert_ne!(a, b);
        assert_eq!(decode_tag(a), (1, 0, OLD_SALT_STRIDE));
        assert_eq!(decode_tag(b), (1, 1, 0));
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn sub_width_overflow_is_rejected() {
        encode_tag(1, 0, TAG_SUB_LIMIT);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn salt_width_overflow_is_rejected() {
        encode_tag(1, TAG_SALT_LIMIT, 0);
    }

    #[test]
    #[should_panic(expected = "namespace")]
    fn zero_namespace_is_rejected() {
        encode_tag(0, 0, 0);
    }
}
