//! In-process message-passing substrate ("mini-MPI").
//!
//! The paper's parallel algorithm is expressed against MPI on the
//! Pittsburgh Supercomputing Center's TCS-1 Alphaserver. This crate
//! provides the same programming model with ranks as OS threads on one
//! machine, so the *algorithm* — local essential trees, the level-by-level
//! `Allreduce`d global tree array, the owner-coordinated gather/scatter of
//! Algorithm 1, and the computation/communication overlap — runs
//! unmodified:
//!
//! * [`run`] — spawn `P` ranks and collect their results;
//! * [`Comm`] — tagged, eager-buffered [`Comm::send`]/[`Comm::recv`]
//!   point-to-point messaging;
//! * [`collectives`] — barrier, broadcast, allreduce, allgatherv,
//!   alltoallv;
//! * [`CommStats`] — per-rank bytes/messages/blocked-time accounting,
//!   which the bench harness combines with a latency/bandwidth model of
//!   the paper's Quadrics interconnect to produce virtual communication
//!   times (see DESIGN.md).

pub mod collectives;
pub mod comm;
pub mod datatypes;
pub mod packet;
pub mod tag;

pub use collectives::{
    allgatherv, allgatherv_u64, allreduce_f64, allreduce_u64, alltoallv, alltoallv_u64, barrier,
    bcast, sample_sort_u64, ReduceOp,
};
pub use comm::{run, Comm, CommStats, PeerTraffic};
pub use datatypes::{decode_f64s, decode_u32s, decode_u64s, encode_f64s, encode_u32s, encode_u64s};
pub use packet::{decode_packet, encode_packet};
pub use tag::{decode_tag, encode_tag};
