//! `PeerPacket` — the coalesced per-peer wire format.
//!
//! Posting one message *per box* is the many-small-messages anti-pattern:
//! each message pays a mailbox lock, a map insertion and a condvar signal
//! (latency and per-message overhead on a real interconnect). A
//! `PeerPacket` carries every box payload a `(phase, peer)` pair exchanges
//! in **one** contiguous message:
//!
//! ```text
//! [count: u32]
//! [(box_id: u32, len: u32) × count]     — the header records
//! [payload: f64 × Σ len]               — all box payloads, concatenated
//! ```
//!
//! `len` counts `f64`s, not bytes. All integers and floats are
//! little-endian, matching [`crate::datatypes`]. Encode and decode are
//! exact inverses; a truncated or ragged buffer panics with a diagnostic
//! rather than yielding garbage payloads.

/// Encode one packed per-peer message from `(box id, payload)` entries.
pub fn encode_packet(entries: &[(u32, &[f64])]) -> Vec<u8> {
    let floats: usize = entries.iter().map(|(_, p)| p.len()).sum();
    let mut out = Vec::with_capacity(4 + entries.len() * 8 + floats * 8);
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (b, p) in entries {
        let len = u32::try_from(p.len()).expect("box payload exceeds u32::MAX f64s");
        out.extend_from_slice(&b.to_le_bytes());
        out.extend_from_slice(&len.to_le_bytes());
    }
    for (_, p) in entries {
        for &x in *p {
            out.extend_from_slice(&x.to_le_bytes());
        }
    }
    out
}

/// Decode a message produced by [`encode_packet`] back into
/// `(box id, payload)` entries, in the sender's entry order.
pub fn decode_packet(bytes: &[u8]) -> Vec<(u32, Vec<f64>)> {
    let word = |at: usize| -> u32 {
        u32::from_le_bytes(bytes[at..at + 4].try_into().expect("truncated packet header"))
    };
    assert!(bytes.len() >= 4, "packet shorter than its count field");
    let count = word(0) as usize;
    let header_end = 4 + count * 8;
    assert!(bytes.len() >= header_end, "packet shorter than its header");
    let mut entries = Vec::with_capacity(count);
    let mut cursor = header_end;
    for i in 0..count {
        let b = word(4 + i * 8);
        let len = word(4 + i * 8 + 4) as usize;
        let end = cursor + len * 8;
        assert!(bytes.len() >= end, "packet payload truncated at box {b}");
        let payload = bytes[cursor..end]
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        entries.push((b, payload));
        cursor = end;
    }
    assert_eq!(cursor, bytes.len(), "trailing bytes after the last box payload");
    entries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_order_and_values() {
        let a = vec![1.5, -2.25, 0.0];
        let b: Vec<f64> = Vec::new();
        let c = vec![f64::MAX, f64::MIN_POSITIVE];
        let entries: Vec<(u32, &[f64])> = vec![(7, &a), (0, &b), (u32::MAX, &c)];
        let wire = encode_packet(&entries);
        let back = decode_packet(&wire);
        assert_eq!(back.len(), 3);
        assert_eq!(back[0], (7, a));
        assert_eq!(back[1], (0, b));
        assert_eq!(back[2], (u32::MAX, c));
    }

    #[test]
    fn empty_packet_roundtrips() {
        let wire = encode_packet(&[]);
        assert_eq!(wire, vec![0, 0, 0, 0]);
        assert!(decode_packet(&wire).is_empty());
    }

    #[test]
    fn one_message_regardless_of_box_count() {
        // The point of the format: n boxes, one contiguous buffer.
        let payloads: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64; 3]).collect();
        let entries: Vec<(u32, &[f64])> =
            payloads.iter().enumerate().map(|(i, p)| (i as u32, p.as_slice())).collect();
        let wire = encode_packet(&entries);
        assert_eq!(wire.len(), 4 + 100 * 8 + 300 * 8);
        let back = decode_packet(&wire);
        for (i, (b, p)) in back.iter().enumerate() {
            assert_eq!(*b as usize, i);
            assert_eq!(p, &payloads[i]);
        }
    }

    #[test]
    #[should_panic(expected = "truncated")]
    fn truncated_payload_rejected() {
        let p = vec![1.0, 2.0];
        let mut wire = encode_packet(&[(3, &p)]);
        wire.truncate(wire.len() - 1);
        decode_packet(&wire);
    }

    #[test]
    #[should_panic(expected = "trailing")]
    fn trailing_garbage_rejected() {
        let p = vec![1.0];
        let mut wire = encode_packet(&[(3, &p)]);
        wire.push(0);
        decode_packet(&wire);
    }
}
