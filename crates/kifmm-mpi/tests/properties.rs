//! Property-based tests for the message-passing substrate: collectives
//! must agree with their sequential definitions for arbitrary payloads and
//! rank counts, and arbitrary p2p traffic patterns must deliver exactly
//! once, in order.

use kifmm_mpi::{allgatherv, allreduce_f64, allreduce_u64, alltoallv, run, ReduceOp};
use kifmm_testkit::{check, prop_assert, prop_assert_eq};

#[test]
fn allreduce_f64_matches_reference() {
    check("allreduce_f64_matches_reference", 20, |g| {
        let ranks = g.usize(1, 6);
        let len = g.usize(1, 20);
        let seed = g.u64_range(0, 1000);
        // Deterministic per-rank data derived from (rank, seed).
        let data = |r: usize| -> Vec<f64> {
            (0..len).map(|i| ((r * 31 + i * 7) as f64 + seed as f64 * 0.1).sin()).collect()
        };
        for op in [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min] {
            let expect: Vec<f64> = (0..len)
                .map(|i| {
                    let vals = (0..ranks).map(|r| data(r)[i]);
                    match op {
                        ReduceOp::Sum => vals.sum(),
                        ReduceOp::Max => vals.fold(f64::NEG_INFINITY, f64::max),
                        ReduceOp::Min => vals.fold(f64::INFINITY, f64::min),
                        ReduceOp::BitOr => unreachable!(),
                    }
                })
                .collect();
            let out = run(ranks, |comm| {
                let mut v = data(comm.rank());
                allreduce_f64(comm, &mut v, op);
                v
            });
            for v in out {
                for (a, b) in v.iter().zip(&expect) {
                    prop_assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()) * ranks as f64);
                }
            }
        }
    });
}

#[test]
fn allreduce_u64_sum_and_bitor() {
    check("allreduce_u64_sum_and_bitor", 20, |g| {
        let ranks = g.usize(1, 7);
        let len = g.usize(1, 16);
        let out = run(ranks, |comm| {
            let mut sum: Vec<u64> = (0..len as u64).map(|i| i + comm.rank() as u64).collect();
            allreduce_u64(comm, &mut sum, ReduceOp::Sum);
            let mut mask = vec![1u64 << comm.rank(); len];
            allreduce_u64(comm, &mut mask, ReduceOp::BitOr);
            (sum, mask)
        });
        let rank_sum: u64 = (0..ranks as u64).sum();
        let full_mask = (1u64 << ranks) - 1;
        for (sum, mask) in out {
            for (i, &s) in sum.iter().enumerate() {
                prop_assert_eq!(s, i as u64 * ranks as u64 + rank_sum);
            }
            prop_assert!(mask.iter().all(|&m| m == full_mask));
        }
    });
}

#[test]
fn alltoallv_delivers_exactly() {
    check("alltoallv_delivers_exactly", 20, |g| {
        let ranks = g.usize(1, 6);
        let base = g.u8(0, 200);
        let out = run(ranks, move |comm| {
            let me = comm.rank();
            let send: Vec<Vec<u8>> = (0..ranks)
                .map(|d| vec![base.wrapping_add((me * 16 + d) as u8); (me + d) % 5 + 1])
                .collect();
            alltoallv(comm, send)
        });
        for (me, recv) in out.into_iter().enumerate() {
            for (src, payload) in recv.into_iter().enumerate() {
                prop_assert_eq!(payload.len(), (src + me) % 5 + 1);
                let expect = base.wrapping_add((src * 16 + me) as u8);
                prop_assert!(payload.iter().all(|&b| b == expect));
            }
        }
    });
}

#[test]
fn allgatherv_preserves_payloads() {
    check("allgatherv_preserves_payloads", 20, |g| {
        let ranks = g.usize(1, 6);
        let scale = g.usize(1, 8);
        let out = run(ranks, move |comm| {
            let mine: Vec<u8> = (0..comm.rank() * scale + 1).map(|i| i as u8).collect();
            allgatherv(comm, &mine)
        });
        for parts in out {
            for (r, p) in parts.iter().enumerate() {
                let expect: Vec<u8> = (0..r * scale + 1).map(|i| i as u8).collect();
                prop_assert_eq!(p, &expect);
            }
        }
    });
}

/// Random many-to-many p2p pattern: every rank sends a deterministic
/// sequence to every other; receivers observe exact FIFO order.
#[test]
fn p2p_fifo_per_channel() {
    check("p2p_fifo_per_channel", 20, |g| {
        let ranks = g.usize(2, 6);
        let msgs = g.usize(1, 12);
        run(ranks, move |comm| {
            let me = comm.rank();
            for dst in 0..comm.size() {
                if dst == me {
                    continue;
                }
                for k in 0..msgs {
                    comm.send(dst, 9, &[(me * 32 + k) as u8]);
                }
            }
            for src in 0..comm.size() {
                if src == me {
                    continue;
                }
                for k in 0..msgs {
                    let m = comm.recv(src, 9);
                    assert_eq!(m, vec![(src * 32 + k) as u8], "FIFO violated");
                }
            }
        });
    });
}
