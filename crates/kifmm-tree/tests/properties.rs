//! Property-based tests for Morton keys and partitioning.

use kifmm_testkit::{check, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, Gen};
use kifmm_tree::{point_key, split_by_weight, MortonKey, MAX_LEVEL};

fn gen_key(g: &mut Gen) -> MortonKey {
    let level = g.u8(0, 9);
    let n = 1u32 << level;
    let x = g.usize(0, n as usize) as u32;
    let y = g.usize(0, n as usize) as u32;
    let z = g.usize(0, n as usize) as u32;
    MortonKey::new(level, [x, y, z])
}

#[test]
fn parent_child_inverse() {
    check("parent_child_inverse", 64, |g| {
        let k = gen_key(g);
        let oct = g.u8(0, 8);
        prop_assume!(k.level < MAX_LEVEL);
        let c = k.child(oct);
        prop_assert_eq!(c.parent(), Some(k));
        prop_assert_eq!(c.octant(), oct);
        prop_assert!(k.contains(&c));
    });
}

#[test]
fn adjacency_is_symmetric() {
    check("adjacency_is_symmetric", 64, |g| {
        let a = gen_key(g);
        let b = gen_key(g);
        prop_assert_eq!(a.is_adjacent(&b), b.is_adjacent(&a));
    });
}

#[test]
fn ancestors_contain_and_are_adjacent() {
    check("ancestors_contain_and_are_adjacent", 64, |g| {
        let k = gen_key(g);
        let lvl = g.u8(0, 9);
        prop_assume!(lvl <= k.level);
        let a = k.ancestor_at(lvl);
        prop_assert!(a.contains(&k));
        // Overlapping closures ⇒ adjacent by the FMM definition.
        prop_assert!(a.is_adjacent(&k));
    });
}

#[test]
fn morton_codes_are_unique_per_key() {
    check("morton_codes_are_unique_per_key", 64, |g| {
        let a = gen_key(g);
        let b = gen_key(g);
        if a != b {
            prop_assert_ne!(a.morton_code(), b.morton_code());
        } else {
            prop_assert_eq!(a.morton_code(), b.morton_code());
        }
    });
}

#[test]
fn neighbors_are_adjacent_distinct_same_level() {
    check("neighbors_are_adjacent_distinct_same_level", 64, |g| {
        let k = gen_key(g);
        for n in k.neighbors() {
            prop_assert_eq!(n.level, k.level);
            prop_assert!(n != k);
            prop_assert!(k.is_adjacent(&n));
        }
    });
}

#[test]
fn point_key_respects_containment() {
    check("point_key_respects_containment", 64, |g| {
        let x = g.f64(-1.0, 1.0);
        let y = g.f64(-1.0, 1.0);
        let z = g.f64(-1.0, 1.0);
        let level = g.u8(1, 11);
        let k = point_key([x, y, z], [0.0; 3], 1.0, level);
        // The key at a coarser level is the ancestor of the fine key.
        let coarse = point_key([x, y, z], [0.0; 3], 1.0, level - 1);
        prop_assert_eq!(k.parent().map(|p| p.ancestor_at(level - 1)), Some(coarse));
    });
}

#[test]
fn split_by_weight_is_balanced() {
    check("split_by_weight_is_balanced", 64, |g| {
        let len = g.usize(1, 200);
        let weights = g.vec_f64(0.1, 5.0, len);
        let parts = g.usize(1, 12);
        let cuts = split_by_weight(&weights, parts);
        prop_assert_eq!(cuts.len(), parts);
        // Exact cover, in order.
        let mut cursor = 0;
        for c in &cuts {
            prop_assert_eq!(c.start, cursor);
            cursor = c.end;
        }
        prop_assert_eq!(cursor, weights.len());
        // No part exceeds the ideal share by more than the largest item.
        let total: f64 = weights.iter().sum();
        let ideal = total / parts as f64;
        let wmax = weights.iter().cloned().fold(0.0f64, f64::max);
        for c in &cuts {
            let w: f64 = weights[c.clone()].iter().sum();
            prop_assert!(w <= ideal + wmax + 1e-9, "part weight {w} vs ideal {ideal}");
        }
    });
}
