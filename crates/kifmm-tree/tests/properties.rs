//! Property-based tests for Morton keys and partitioning.

use kifmm_tree::{point_key, split_by_weight, MortonKey, MAX_LEVEL};
use proptest::prelude::*;

fn key_strategy() -> impl Strategy<Value = MortonKey> {
    (0u8..=8).prop_flat_map(|level| {
        let n = 1u32 << level;
        (0..n, 0..n, 0..n).prop_map(move |(x, y, z)| MortonKey::new(level, [x, y, z]))
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn parent_child_inverse(k in key_strategy(), oct in 0u8..8) {
        prop_assume!(k.level < MAX_LEVEL);
        let c = k.child(oct);
        prop_assert_eq!(c.parent(), Some(k));
        prop_assert_eq!(c.octant(), oct);
        prop_assert!(k.contains(&c));
    }

    #[test]
    fn adjacency_is_symmetric(a in key_strategy(), b in key_strategy()) {
        prop_assert_eq!(a.is_adjacent(&b), b.is_adjacent(&a));
    }

    #[test]
    fn ancestors_contain_and_are_adjacent(k in key_strategy(), lvl in 0u8..=8) {
        prop_assume!(lvl <= k.level);
        let a = k.ancestor_at(lvl);
        prop_assert!(a.contains(&k));
        // Overlapping closures ⇒ adjacent by the FMM definition.
        prop_assert!(a.is_adjacent(&k));
    }

    #[test]
    fn morton_codes_are_unique_per_key(a in key_strategy(), b in key_strategy()) {
        if a != b {
            prop_assert_ne!(a.morton_code(), b.morton_code());
        } else {
            prop_assert_eq!(a.morton_code(), b.morton_code());
        }
    }

    #[test]
    fn neighbors_are_adjacent_distinct_same_level(k in key_strategy()) {
        for n in k.neighbors() {
            prop_assert_eq!(n.level, k.level);
            prop_assert!(n != k);
            prop_assert!(k.is_adjacent(&n));
        }
    }

    #[test]
    fn point_key_respects_containment(
        x in -1.0f64..1.0, y in -1.0f64..1.0, z in -1.0f64..1.0,
        level in 1u8..=10,
    ) {
        let k = point_key([x, y, z], [0.0; 3], 1.0, level);
        // The key at a coarser level is the ancestor of the fine key.
        let coarse = point_key([x, y, z], [0.0; 3], 1.0, level - 1);
        prop_assert_eq!(k.parent().map(|p| p.ancestor_at(level - 1)), Some(coarse));
    }

    #[test]
    fn split_by_weight_is_balanced(
        weights in proptest::collection::vec(0.1f64..5.0, 1..200),
        parts in 1usize..12,
    ) {
        let cuts = split_by_weight(&weights, parts);
        prop_assert_eq!(cuts.len(), parts);
        // Exact cover, in order.
        let mut cursor = 0;
        for c in &cuts {
            prop_assert_eq!(c.start, cursor);
            cursor = c.end;
        }
        prop_assert_eq!(cursor, weights.len());
        // No part exceeds the ideal share by more than the largest item.
        let total: f64 = weights.iter().sum();
        let ideal = total / parts as f64;
        let wmax = weights.iter().cloned().fold(0.0f64, f64::max);
        for c in &cuts {
            let w: f64 = weights[c.clone()].iter().sum();
            prop_assert!(w <= ideal + wmax + 1e-9, "part weight {w} vs ideal {ideal}");
        }
    }
}
