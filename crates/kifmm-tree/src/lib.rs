//! Octree substrate for the kernel-independent FMM.
//!
//! Implements the hierarchical computation tree of the SC'03 paper:
//! [`MortonKey`]s ([Warren & Salmon]-style hashed keys along the Z-order
//! curve), the adaptive [`Octree`] (boxes refined until they hold at most
//! `s` points), the four adaptive interaction lists
//! ([`build_lists`]: U/V/W/X), and the Morton-curve [`partition`]er used
//! for distributing surface patches across ranks.
//!
//! (Warren & Salmon's SC'92/SC'93 parallel hashed octree papers are cited
//! as references 23 and 24 in the reproduction target.)

pub mod lists;
pub mod morton;
pub mod octree;
pub mod partition;

pub use lists::{build_lists, InteractionLists};
pub use morton::{point_key, MortonKey, MAX_LEVEL};
pub use octree::{Domain, Node, Octree, NO_NODE};
pub use partition::{
    partition_patches, partition_points, partition_weighted_points, split_by_weight, Partition,
};
