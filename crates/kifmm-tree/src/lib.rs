//! Octree substrate for the kernel-independent FMM.
//!
//! Implements the hierarchical computation tree of the SC'03 paper:
//! [`MortonKey`]s ([Warren & Salmon]-style hashed keys along the Z-order
//! curve), the adaptive [`Octree`] (boxes refined until they hold at most
//! `s` points), the four adaptive interaction lists
//! ([`build_lists`]: U/V/W/X), and the Morton-curve [`partition`]er used
//! for distributing surface patches across ranks.
//!
//! Beyond the paper, the [`linearize`] module derives the same structure
//! from a sorted Morton-code array (the Hu–Gumerov–Duraiswami sample-sort
//! construction used by the distributed driver), [`lists::build_lists_sorted`]
//! derives the interaction lists by binary search over the sorted level
//! arrays, and [`update`] patches an existing tree for slightly moved
//! points instead of rebuilding it.
//!
//! (Warren & Salmon's SC'92/SC'93 parallel hashed octree papers are cited
//! as references 23 and 24 in the reproduction target.)

pub mod linearize;
pub mod lists;
pub mod morton;
pub mod octree;
pub mod partition;
pub mod update;

pub use linearize::{
    chunk_summary, code_range, structure_from_sorted_codes, GlobalCounts, SummaryEntry, TreeBuild,
};
pub use lists::{build_lists, build_lists_sorted, InteractionLists, SortedKeyIndex};
pub use morton::{point_in_domain, point_key, try_point_key, MortonKey, MAX_LEVEL};
pub use octree::{Domain, Node, Octree, NO_NODE};
pub use partition::{
    partition_patches, partition_points, partition_weighted_points, split_by_weight, Partition,
};
pub use update::{update_octree, TreeUpdate, UpdateError};
