//! Linearized-octree derivation from sorted Morton codes.
//!
//! The paper builds the global tree level by level with one `Allreduce`
//! per level (§3.1) — O(depth) collectives. Following Hu, Gumerov &
//! Duraiswami (arXiv:1301.1704), the same structure can be derived from a
//! *parallel sample sort* of the max-depth Morton codes with O(1)
//! collectives: after the sort, rank `r` holds a contiguous chunk of the
//! global code array, summarizes it into a small set of disjoint
//! (box, count) entries, and one Allgather of those summaries gives every
//! rank an exact global-count oracle. This module holds the shared,
//! communication-free pieces:
//!
//! * [`structure_from_sorted_codes`] — the level-by-level BFS that turns a
//!   sorted code array into the node/level arrays (also used by the serial
//!   [`crate::Octree::build`] and the incremental update);
//! * [`code_range`] — the half-open max-depth code interval a box covers;
//! * [`chunk_summary`] — one rank's compressed view of its sorted chunk;
//! * [`GlobalCounts`] — the exact global-count oracle over the merged
//!   summaries.
//!
//! The distributed driver (`kifmm-parallel::global_tree`) wires these to
//! the `kifmm-mpi` sample-sort collective, and keeps the paper's
//! Allreduce algorithm behind [`TreeBuild::Paper`] as the ablation path.

use crate::morton::{MortonKey, MAX_LEVEL};
use crate::octree::{Node, NO_NODE};

/// Which distributed tree-construction algorithm to run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum TreeBuild {
    /// Morton sample-sort construction (Hu–Gumerov–Duraiswami): O(1)
    /// collectives regardless of tree depth. The default.
    #[default]
    SampleSort,
    /// The paper's level-by-level construction: one `Allreduce` of
    /// candidate-child counts per level (§3.1). Kept as the Table 4.2
    /// ablation path; produces bitwise-identical structure.
    Paper,
}

/// Half-open interval `[base, end)` of max-depth point codes covered by
/// box `key`. Valid because point codes carry `MAX_LEVEL` in their low 5
/// bits, and `MAX_LEVEL < 32 ≤ end − base` for every box level.
pub fn code_range(key: &MortonKey) -> (u64, u64) {
    let span = 1u64 << (3 * (MAX_LEVEL - key.level) as u32 + 5);
    let base = (key.morton_code() >> 5) << 5;
    (base, base + span)
}

/// Derive the node and level arrays from a Morton-sorted max-depth code
/// array: subdivide while a box holds more than `max_pts_per_leaf` codes,
/// up to `max_level`, materializing only nonempty children. Identical
/// order and shape to the paper's level-by-level construction — this *is*
/// the serial reference structure, shared by [`crate::Octree::build`],
/// both distributed paths, and the incremental update.
///
/// Octant boundaries inside a box's contiguous range are found by binary
/// search, so the whole derivation is O(boxes · log s) after the sort.
pub fn structure_from_sorted_codes(
    sorted_codes: &[u64],
    max_pts_per_leaf: usize,
    max_level: u8,
) -> (Vec<Node>, Vec<Vec<u32>>) {
    assert!(max_pts_per_leaf >= 1, "s must be at least 1");
    debug_assert!(sorted_codes.windows(2).all(|w| w[0] <= w[1]), "codes must be sorted");
    let max_level = max_level.min(MAX_LEVEL);
    let n = sorted_codes.len();
    let mut nodes = vec![Node {
        key: MortonKey::ROOT,
        parent: NO_NODE,
        children: [NO_NODE; 8],
        pt_start: 0,
        pt_end: n as u32,
    }];
    let mut levels: Vec<Vec<u32>> = vec![vec![0]];
    let mut frontier: Vec<u32> = vec![0];
    for level in 0..max_level {
        let mut next = Vec::new();
        for &ni in &frontier {
            let (start, end, key) = {
                let nd = &nodes[ni as usize];
                (nd.pt_start, nd.pt_end, nd.key)
            };
            if (end - start) as usize <= max_pts_per_leaf {
                continue;
            }
            let depth = level + 1;
            let shift = 3 * (MAX_LEVEL - depth) as u32 + 5;
            let mut lo = start as usize;
            for oct in 0..8u8 {
                // Within the parent's range the octant digit is
                // non-decreasing, so the end of this octant's run is a
                // partition point.
                let hi = lo
                    + sorted_codes[lo..end as usize]
                        .partition_point(|&c| ((c >> shift) & 7) as u8 <= oct);
                if hi > lo {
                    let child_idx = nodes.len() as u32;
                    nodes.push(Node {
                        key: key.child(oct),
                        parent: ni,
                        children: [NO_NODE; 8],
                        pt_start: lo as u32,
                        pt_end: hi as u32,
                    });
                    nodes[ni as usize].children[oct as usize] = child_idx;
                    next.push(child_idx);
                    lo = hi;
                }
            }
            debug_assert_eq!(lo, end as usize, "children must partition the parent range");
        }
        if next.is_empty() {
            break;
        }
        levels.push(next.clone());
        frontier = next;
    }
    (nodes, levels)
}

/// One entry of a rank's chunk summary: a box and the exact number of
/// chunk codes inside it. Wire format: two `u64`s (`key.morton_code()`,
/// `count`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SummaryEntry {
    /// The summarized box.
    pub key: MortonKey,
    /// Number of this chunk's codes inside the box.
    pub count: u64,
}

/// Compress a sorted, *value-contiguous* chunk of the global code array
/// into disjoint (box, count) entries, recursing from the root:
///
/// * an empty box publishes nothing;
/// * a box at `max_level` publishes a leaf entry (the global build never
///   examines anything deeper);
/// * a box with ≤ `max_pts_per_leaf` codes publishes a leaf entry *iff*
///   `chunk_private(base, end)` — no other rank's chunk intersects its
///   code range, so the local count is already the global count;
/// * every other box recurses into its children.
///
/// The split-until-private rule is what makes [`GlobalCounts`] exact: a
/// published leaf can never strictly contain a box the global build
/// examines (such a box's parent would have global count > s while lying
/// inside a ≤ s private leaf — a contradiction), so every oracle query
/// decomposes into whole entries.
pub fn chunk_summary(
    chunk: &[u64],
    max_pts_per_leaf: usize,
    max_level: u8,
    chunk_private: &dyn Fn(u64, u64) -> bool,
) -> Vec<SummaryEntry> {
    debug_assert!(chunk.windows(2).all(|w| w[0] <= w[1]), "chunk must be sorted");
    let max_level = max_level.min(MAX_LEVEL);
    let mut out = Vec::new();
    descend(chunk, MortonKey::ROOT, max_pts_per_leaf, max_level, chunk_private, &mut out);
    out
}

/// DFS worker for [`chunk_summary`]: `slice` is the sub-range of the
/// chunk inside `key`. Emits entries in ascending code-range order.
fn descend(
    slice: &[u64],
    key: MortonKey,
    s: usize,
    max_level: u8,
    chunk_private: &dyn Fn(u64, u64) -> bool,
    out: &mut Vec<SummaryEntry>,
) {
    if slice.is_empty() {
        return;
    }
    let (base, end) = code_range(&key);
    if key.level == max_level || (slice.len() <= s && chunk_private(base, end)) {
        out.push(SummaryEntry { key, count: slice.len() as u64 });
        return;
    }
    let shift = 3 * (MAX_LEVEL - (key.level + 1)) as u32 + 5;
    let mut lo = 0usize;
    for oct in 0..8u8 {
        let hi = lo + slice[lo..].partition_point(|&c| ((c >> shift) & 7) as u8 <= oct);
        if hi > lo {
            descend(&slice[lo..hi], key.child(oct), s, max_level, chunk_private, out);
            lo = hi;
        }
    }
    debug_assert_eq!(lo, slice.len());
}

/// Exact global-count oracle over the merged chunk summaries of all
/// ranks. Entries from different ranks are pairwise disjoint except for
/// identical `max_level` boxes straddling a chunk boundary, whose counts
/// are additive — so every query that respects the split contract (see
/// [`chunk_summary`]) decomposes into whole entries and a prefix-sum
/// range gives the exact answer.
pub struct GlobalCounts {
    /// Entry code-range starts, ascending.
    bases: Vec<u64>,
    /// Entry code-range ends, aligned with `bases` (ascending too, since
    /// entries are disjoint-or-equal).
    ends: Vec<u64>,
    /// Prefix sums of entry counts; `prefix[i]` = total count of entries
    /// `..i`.
    prefix: Vec<u64>,
}

impl GlobalCounts {
    /// Merge the gathered summaries of all ranks into the oracle.
    pub fn new(mut entries: Vec<SummaryEntry>) -> GlobalCounts {
        entries.sort_unstable_by_key(|e| code_range(&e.key).0);
        let mut bases = Vec::with_capacity(entries.len());
        let mut ends = Vec::with_capacity(entries.len());
        let mut prefix = Vec::with_capacity(entries.len() + 1);
        prefix.push(0u64);
        for e in &entries {
            let (b, en) = code_range(&e.key);
            bases.push(b);
            ends.push(en);
            prefix.push(prefix.last().unwrap() + e.count);
        }
        debug_assert!(
            bases.windows(2).zip(ends.windows(2)).all(|(b, e)| b[0] == b[1] || e[0] <= b[1]),
            "summary entries must be pairwise disjoint or identical"
        );
        GlobalCounts { bases, ends, prefix }
    }

    /// Total code count across all entries (the global point count).
    pub fn total(&self) -> u64 {
        *self.prefix.last().unwrap()
    }

    /// Number of merged entries (diagnostics: the compressed size the
    /// Allgather actually moved).
    pub fn num_entries(&self) -> usize {
        self.bases.len()
    }

    /// Exact number of global codes inside `key`. Only valid for boxes
    /// the global build examines (children of boxes with global count
    /// > s) — the split contract guarantees no entry strictly contains
    /// such a box, which debug builds verify.
    pub fn count(&self, key: &MortonKey) -> u64 {
        let (lo, hi) = code_range(key);
        let a = self.bases.partition_point(|&b| b < lo);
        let b = self.bases.partition_point(|&b| b < hi);
        debug_assert!(
            a == 0 || self.ends[a - 1] <= lo,
            "summary entry strictly contains queried box {key:?}"
        );
        debug_assert!(
            b == a || self.ends[b - 1] <= hi,
            "summary entry straddles queried box {key:?}"
        );
        self.prefix[b] - self.prefix[a]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::morton::point_key;
    use crate::octree::{Domain, Octree};

    fn cloud(n: usize, mut seed: u64) -> Vec<[f64; 3]> {
        (0..n)
            .map(|_| {
                std::array::from_fn(|_| {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
                })
            })
            .collect()
    }

    fn sorted_codes(pts: &[[f64; 3]], domain: &Domain) -> Vec<u64> {
        let mut codes: Vec<u64> = pts
            .iter()
            .map(|&p| point_key(p, domain.center, domain.half, MAX_LEVEL).morton_code())
            .collect();
        codes.sort_unstable();
        codes
    }

    #[test]
    fn code_range_contains_exactly_the_descendant_point_codes() {
        let key = MortonKey::new(3, [5, 2, 7]);
        let (base, end) = code_range(&key);
        // Every max-depth descendant's code is in range; a sibling's is not.
        let descendant_code = {
            let mut kk = key;
            while kk.level < MAX_LEVEL {
                kk = kk.child(6);
            }
            kk.morton_code()
        };
        assert!(descendant_code >= base && descendant_code < end);
        let sibling_code = {
            let mut kk = MortonKey::new(3, [5, 2, 6]);
            while kk.level < MAX_LEVEL {
                kk = kk.child(0);
            }
            kk.morton_code()
        };
        assert!(!(sibling_code >= base && sibling_code < end));
        // The box's own (non-max-depth) code also lies in its range.
        let own = key.morton_code();
        assert!(own >= base && own < end);
    }

    #[test]
    fn structure_matches_octree_build() {
        // Octree::build delegates here, so this pins the delegation: the
        // derived structure must satisfy every from_parts invariant and
        // reproduce the level-loop reference counts.
        for (n, s) in [(500, 20), (2000, 60), (64, 1)] {
            let pts = cloud(n, 0x5eed + n as u64);
            let t = Octree::build(&pts, s, MAX_LEVEL);
            assert_eq!(Octree::check_parts(&t.nodes, &t.perm, &t.levels), Ok(()));
            for i in t.leaves() {
                let nd = &t.nodes[i as usize];
                assert!(nd.num_points() <= s || nd.key.level == MAX_LEVEL);
            }
        }
    }

    #[test]
    fn whole_array_summary_reproduces_exact_counts() {
        // A single chunk covering everything, always private: the oracle
        // must agree with a linear count for every box of the real tree.
        let pts = cloud(1500, 42);
        let t = Octree::build(&pts, 30, MAX_LEVEL);
        let codes = sorted_codes(&pts, &t.domain);
        let summary = chunk_summary(&codes, 30, t.depth(), &|_, _| true);
        let counts = GlobalCounts::new(summary);
        assert_eq!(counts.total(), pts.len() as u64);
        for nd in &t.nodes {
            let (lo, hi) = code_range(&nd.key);
            let expect = codes.iter().filter(|&&c| c >= lo && c < hi).count() as u64;
            assert_eq!(counts.count(&nd.key), expect, "box {:?}", nd.key);
            assert_eq!(expect, nd.num_points() as u64);
        }
    }

    #[test]
    fn split_summaries_merge_to_exact_counts() {
        // Cut the sorted array into value-contiguous chunks (as the sample
        // sort would) and verify the merged per-chunk summaries stay exact,
        // including for boxes whose range straddles chunk boundaries.
        let pts = cloud(2400, 7);
        let s = 25;
        let t = Octree::build(&pts, s, MAX_LEVEL);
        let codes = sorted_codes(&pts, &t.domain);
        for cuts in [vec![800, 1600], vec![1, 2399], vec![1200]] {
            let mut bounds = vec![0];
            bounds.extend(&cuts);
            bounds.push(codes.len());
            // Value-contiguity: advance cuts past duplicate runs.
            let bounds: Vec<usize> = bounds
                .iter()
                .map(|&b| codes.partition_point(|&c| c < codes.get(b).copied().unwrap_or(u64::MAX)))
                .collect();
            let chunks: Vec<&[u64]> =
                bounds.windows(2).map(|w| &codes[w[0]..w[1]]).collect();
            let ranges: Vec<Option<(u64, u64)>> = chunks
                .iter()
                .map(|c| c.first().map(|&f| (f, *c.last().unwrap())))
                .collect();
            let mut entries = Vec::new();
            for (ci, chunk) in chunks.iter().enumerate() {
                let others: Vec<(u64, u64)> = ranges
                    .iter()
                    .enumerate()
                    .filter(|&(i, r)| i != ci && r.is_some())
                    .map(|(_, r)| r.unwrap())
                    .collect();
                let private =
                    move |lo: u64, hi: u64| others.iter().all(|&(f, l)| l < lo || f >= hi);
                entries.extend(chunk_summary(chunk, s, t.depth(), &private));
            }
            let counts = GlobalCounts::new(entries);
            assert_eq!(counts.total(), pts.len() as u64);
            for nd in &t.nodes {
                assert_eq!(
                    counts.count(&nd.key),
                    nd.num_points() as u64,
                    "box {:?} with cuts {cuts:?}",
                    nd.key
                );
            }
        }
    }

    #[test]
    fn coincident_codes_summarize_at_max_level() {
        // All codes equal: the summary must bottom out at max_level with
        // one entry holding everything, never an infinite recursion.
        let codes = vec![point_key([0.1, 0.2, 0.3], [0.0; 3], 1.0, MAX_LEVEL).morton_code(); 100];
        let summary = chunk_summary(&codes, 10, 4, &|_, _| false);
        assert_eq!(summary.len(), 1);
        assert_eq!(summary[0].count, 100);
        assert_eq!(summary[0].key.level, 4);
        let counts = GlobalCounts::new(summary);
        assert_eq!(counts.total(), 100);
    }

    #[test]
    fn tree_build_default_is_sample_sort() {
        assert_eq!(TreeBuild::default(), TreeBuild::SampleSort);
        assert_ne!(TreeBuild::SampleSort, TreeBuild::Paper);
    }
}
