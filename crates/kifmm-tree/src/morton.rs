//! Morton (Z-order) keys for hierarchical octrees.
//!
//! A key identifies one box of the octree by its refinement level and its
//! integer anchor coordinates at that level. The linear order of keys at
//! the maximum depth is the Morton space-filling curve the paper uses for
//! partitioning and load balancing (§3.1, following Warren & Salmon).

/// Maximum refinement level representable: the linearized code packs
/// 3·`MAX_LEVEL` interleaved coordinate bits plus 5 level bits into a
/// `u64`, so 19 is the deepest level that fits (3·19 + 5 = 62).
pub const MAX_LEVEL: u8 = 19;

/// One octree box: a refinement level and integer coordinates in
/// `[0, 2^level)³`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct MortonKey {
    /// Refinement level; the root is level 0.
    pub level: u8,
    /// Anchor coordinates at `level` (x, y, z).
    pub coords: [u32; 3],
}

impl MortonKey {
    /// The root box.
    pub const ROOT: MortonKey = MortonKey { level: 0, coords: [0, 0, 0] };

    /// Construct, asserting validity in debug builds.
    #[inline]
    pub fn new(level: u8, coords: [u32; 3]) -> Self {
        debug_assert!(level <= MAX_LEVEL);
        debug_assert!(coords.iter().all(|&c| c < (1u32 << level) || level == 0 && c == 0));
        MortonKey { level, coords }
    }

    /// The parent box (None for the root).
    #[inline]
    pub fn parent(&self) -> Option<MortonKey> {
        if self.level == 0 {
            return None;
        }
        Some(MortonKey {
            level: self.level - 1,
            coords: [self.coords[0] >> 1, self.coords[1] >> 1, self.coords[2] >> 1],
        })
    }

    /// Child `octant ∈ [0, 8)`: bit 0 → x, bit 1 → y, bit 2 → z.
    #[inline]
    pub fn child(&self, octant: u8) -> MortonKey {
        debug_assert!(octant < 8);
        debug_assert!(self.level < MAX_LEVEL);
        MortonKey {
            level: self.level + 1,
            coords: [
                (self.coords[0] << 1) | u32::from(octant & 1),
                (self.coords[1] << 1) | u32::from((octant >> 1) & 1),
                (self.coords[2] << 1) | u32::from((octant >> 2) & 1),
            ],
        }
    }

    /// Which child of its parent this box is.
    #[inline]
    pub fn octant(&self) -> u8 {
        ((self.coords[0] & 1) | ((self.coords[1] & 1) << 1) | ((self.coords[2] & 1) << 2)) as u8
    }

    /// All 8 children.
    pub fn children(&self) -> [MortonKey; 8] {
        std::array::from_fn(|i| self.child(i as u8))
    }

    /// True when `self` is an ancestor of `other` (strict) or equal.
    pub fn contains(&self, other: &MortonKey) -> bool {
        if other.level < self.level {
            return false;
        }
        let shift = other.level - self.level;
        (0..3).all(|d| (other.coords[d] >> shift) == self.coords[d])
    }

    /// The ancestor of this key at `level` (≤ self.level).
    pub fn ancestor_at(&self, level: u8) -> MortonKey {
        assert!(level <= self.level);
        let shift = self.level - level;
        MortonKey {
            level,
            coords: [self.coords[0] >> shift, self.coords[1] >> shift, self.coords[2] >> shift],
        }
    }

    /// Same-level boxes whose closed cubes touch this one (≤ 26, fewer at
    /// domain boundaries); does not include `self`.
    pub fn neighbors(&self) -> Vec<MortonKey> {
        let mut out = Vec::with_capacity(26);
        let n = 1i64 << self.level;
        for dx in -1i64..=1 {
            for dy in -1i64..=1 {
                for dz in -1i64..=1 {
                    if dx == 0 && dy == 0 && dz == 0 {
                        continue;
                    }
                    let x = self.coords[0] as i64 + dx;
                    let y = self.coords[1] as i64 + dy;
                    let z = self.coords[2] as i64 + dz;
                    if x < 0 || y < 0 || z < 0 || x >= n || y >= n || z >= n {
                        continue;
                    }
                    out.push(MortonKey {
                        level: self.level,
                        coords: [x as u32, y as u32, z as u32],
                    });
                }
            }
        }
        out
    }

    /// True when the closed cubes of the two boxes (possibly at different
    /// levels) intersect — the FMM notion of *adjacent*. A box is adjacent
    /// to itself and to its ancestors/descendants.
    pub fn is_adjacent(&self, other: &MortonKey) -> bool {
        // Compare the integer extents scaled to the finer level.
        let lvl = self.level.max(other.level);
        let (a_lo, a_hi) = self.extent_at(lvl);
        let (b_lo, b_hi) = other.extent_at(lvl);
        (0..3).all(|d| a_lo[d] <= b_hi[d] && b_lo[d] <= a_hi[d])
    }

    /// Closed integer extent `[lo, hi]` of this box at a finer level
    /// (grid-cell units: the box covers cells `lo..=hi-? `); returns
    /// half-open converted to inclusive bounds `[lo, hi]` with
    /// `hi = (c+1)·2^Δ` so touching boxes share a coordinate.
    fn extent_at(&self, level: u8) -> ([u64; 3], [u64; 3]) {
        let shift = level - self.level;
        let lo = [
            (self.coords[0] as u64) << shift,
            (self.coords[1] as u64) << shift,
            (self.coords[2] as u64) << shift,
        ];
        let hi = [
            ((self.coords[0] as u64) + 1) << shift,
            ((self.coords[1] as u64) + 1) << shift,
            ((self.coords[2] as u64) + 1) << shift,
        ];
        (lo, hi)
    }

    /// Interleaved 63-bit Morton code of the box anchor at [`MAX_LEVEL`],
    /// with the level in the low bits — totally ordered along the
    /// space-filling curve, ancestors sorting before descendants.
    pub fn morton_code(&self) -> u64 {
        let shift = MAX_LEVEL - self.level;
        let x = (self.coords[0] as u64) << shift;
        let y = (self.coords[1] as u64) << shift;
        let z = (self.coords[2] as u64) << shift;
        (interleave3(x) | (interleave3(y) << 1) | (interleave3(z) << 2)) << 5
            | self.level as u64
    }

    /// Inverse of [`MortonKey::morton_code`]: recover the key from its
    /// linearized code (used to decode keys off the communication wire).
    pub fn from_code(code: u64) -> MortonKey {
        let level = (code & 31) as u8;
        debug_assert!(level <= MAX_LEVEL, "invalid level bits in Morton code");
        let interleaved = code >> 5;
        let shift = MAX_LEVEL - level;
        MortonKey {
            level,
            coords: [
                (deinterleave3(interleaved) >> shift) as u32,
                (deinterleave3(interleaved >> 1) >> shift) as u32,
                (deinterleave3(interleaved >> 2) >> shift) as u32,
            ],
        }
    }

    /// Offset `(other − self)` in units of this box's side, when both boxes
    /// are at the same level (used to index the 316 M2L directions).
    pub fn offset_to(&self, other: &MortonKey) -> [i32; 3] {
        debug_assert_eq!(self.level, other.level);
        [
            other.coords[0] as i32 - self.coords[0] as i32,
            other.coords[1] as i32 - self.coords[1] as i32,
            other.coords[2] as i32 - self.coords[2] as i32,
        ]
    }
}

/// Spread the low 21 bits of `v` so consecutive bits land 3 apart.
#[inline]
fn interleave3(mut v: u64) -> u64 {
    v &= (1 << 21) - 1;
    v = (v | (v << 32)) & 0x1f00000000ffff;
    v = (v | (v << 16)) & 0x1f0000ff0000ff;
    v = (v | (v << 8)) & 0x100f00f00f00f00f;
    v = (v | (v << 4)) & 0x10c30c30c30c30c3;
    v = (v | (v << 2)) & 0x1249249249249249;
    v
}

/// Inverse of [`interleave3`]: gather every third bit back into the low 21.
#[inline]
fn deinterleave3(mut v: u64) -> u64 {
    v &= 0x1249249249249249;
    v = (v | (v >> 2)) & 0x10c30c30c30c30c3;
    v = (v | (v >> 4)) & 0x100f00f00f00f00f;
    v = (v | (v >> 8)) & 0x1f0000ff0000ff;
    v = (v | (v >> 16)) & 0x1f00000000ffff;
    v = (v | (v >> 32)) & 0x1fffff;
    v
}

/// Map a point in the unit domain cube to its Morton key at `level`.
///
/// `center`/`half` describe the computational domain (a cube containing
/// all points); coordinates are clamped so boundary points stay inside.
pub fn point_key(p: [f64; 3], center: [f64; 3], half: f64, level: u8) -> MortonKey {
    let n = 1u32 << level;
    let coords = std::array::from_fn(|d| {
        let t = (p[d] - (center[d] - half)) / (2.0 * half);
        ((t * n as f64) as i64).clamp(0, n as i64 - 1) as u32
    });
    MortonKey { level, coords }
}

/// True when `p` lies inside the closed domain cube `center ± half`.
/// `NaN` coordinates count as outside.
pub fn point_in_domain(p: [f64; 3], center: [f64; 3], half: f64) -> bool {
    (0..3).all(|d| (p[d] - center[d]).abs() <= half)
}

/// As [`point_key`], but refusing points outside the domain cube instead
/// of silently clamping them into boundary boxes. Returns the first
/// offending dimension on failure.
///
/// The static build clamps on purpose: its domain is computed to contain
/// every point, so the clamp only rescues boundary points from rounding.
/// The incremental-update path (`kifmm_tree::update`) must not clamp — a
/// point that drifted outside the original domain would be silently
/// folded into a boundary box, corrupting the tree while every invariant
/// check still passes.
pub fn try_point_key(
    p: [f64; 3],
    center: [f64; 3],
    half: f64,
    level: u8,
) -> Result<MortonKey, usize> {
    for d in 0..3 {
        if !((p[d] - center[d]).abs() <= half) {
            return Err(d);
        }
    }
    Ok(point_key(p, center, half, level))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parent_child_roundtrip() {
        let k = MortonKey::new(3, [5, 2, 7]);
        for oct in 0..8 {
            let c = k.child(oct);
            assert_eq!(c.parent(), Some(k));
            assert_eq!(c.octant(), oct);
            assert!(k.contains(&c));
            assert!(!c.contains(&k));
        }
        assert_eq!(MortonKey::ROOT.parent(), None);
    }

    #[test]
    fn containment_and_ancestors() {
        let k = MortonKey::new(4, [9, 3, 14]);
        assert!(MortonKey::ROOT.contains(&k));
        assert!(k.contains(&k));
        assert_eq!(k.ancestor_at(0), MortonKey::ROOT);
        assert_eq!(k.ancestor_at(4), k);
        let a2 = k.ancestor_at(2);
        assert_eq!(a2.coords, [2, 0, 3]);
        assert!(a2.contains(&k));
    }

    #[test]
    fn neighbor_counts() {
        // Interior box: 26 neighbors.
        assert_eq!(MortonKey::new(2, [1, 1, 1]).neighbors().len(), 26);
        // Corner box: 7.
        assert_eq!(MortonKey::new(2, [0, 0, 0]).neighbors().len(), 7);
        // Face-center box on a 4-grid boundary: depends; level-1 corner: 7.
        assert_eq!(MortonKey::new(1, [0, 0, 0]).neighbors().len(), 7);
        // Root has no neighbors.
        assert!(MortonKey::ROOT.neighbors().is_empty());
    }

    #[test]
    fn adjacency_same_level() {
        let a = MortonKey::new(2, [1, 1, 1]);
        assert!(a.is_adjacent(&a));
        assert!(a.is_adjacent(&MortonKey::new(2, [2, 2, 2]))); // corner touch
        assert!(a.is_adjacent(&MortonKey::new(2, [1, 1, 2]))); // face
        assert!(!a.is_adjacent(&MortonKey::new(2, [1, 1, 3]))); // gap
        assert!(!a.is_adjacent(&MortonKey::new(2, [3, 1, 1])));
    }

    #[test]
    fn adjacency_cross_level() {
        let coarse = MortonKey::new(1, [0, 0, 0]); // covers [0,2)^3 at level 2
        let fine_touching = MortonKey::new(2, [2, 0, 0]); // shares the x=2 face
        let fine_far = MortonKey::new(2, [3, 0, 0]);
        assert!(coarse.is_adjacent(&fine_touching));
        assert!(!coarse.is_adjacent(&fine_far));
        // A box is adjacent to its descendants (overlapping closures).
        assert!(coarse.is_adjacent(&MortonKey::new(2, [1, 1, 1])));
    }

    #[test]
    fn morton_order_groups_children() {
        // The children of a box, at max-depth code, sort within the parent's
        // curve segment and outside no other's.
        let p = MortonKey::new(2, [1, 2, 3]);
        let sibling = MortonKey::new(2, [1, 2, 2]);
        for c in p.children() {
            let code = c.morton_code() >> 5;
            let lo = p.morton_code() >> 5;
            let hi = lo + (1 << (3 * (MAX_LEVEL - 2)));
            assert!(code >= lo && code < hi);
            let slo = sibling.morton_code() >> 5;
            let shi = slo + (1 << (3 * (MAX_LEVEL - 2)));
            assert!(!(code >= slo && code < shi));
        }
    }

    #[test]
    fn point_key_mapping() {
        let c = [0.0, 0.0, 0.0];
        let h = 1.0;
        assert_eq!(point_key([-1.0, -1.0, -1.0], c, h, 3).coords, [0, 0, 0]);
        assert_eq!(point_key([1.0, 1.0, 1.0], c, h, 3).coords, [7, 7, 7]);
        assert_eq!(point_key([0.0, 0.0, 0.0], c, h, 1).coords, [1, 1, 1]);
        // A point is always inside the box of its key.
        let k = point_key([0.3, -0.7, 0.9], c, h, 5);
        assert!(k.coords.iter().all(|&v| v < 32));
    }

    #[test]
    fn offset_to() {
        let a = MortonKey::new(3, [2, 3, 4]);
        let b = MortonKey::new(3, [5, 1, 4]);
        assert_eq!(a.offset_to(&b), [3, -2, 0]);
        assert_eq!(b.offset_to(&a), [-3, 2, 0]);
    }

    #[test]
    fn interleave_bit_pattern() {
        assert_eq!(interleave3(0b11), 0b1001);
        assert_eq!(interleave3(0b101), 0b1000001);
    }

    #[test]
    fn morton_code_roundtrips_through_from_code() {
        let mut seed = 0x5eedu64;
        let mut rnd = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (seed >> 33) as u32
        };
        for _ in 0..2000 {
            let level = (rnd() % (MAX_LEVEL as u32 + 1)) as u8;
            let mask = if level == 0 { 0 } else { (1u32 << level) - 1 };
            let k = MortonKey::new(level, [rnd() & mask, rnd() & mask, rnd() & mask]);
            assert_eq!(MortonKey::from_code(k.morton_code()), k);
        }
        assert_eq!(MortonKey::from_code(MortonKey::ROOT.morton_code()), MortonKey::ROOT);
    }

    #[test]
    fn try_point_key_accepts_boundary_rejects_drift() {
        let c = [0.5, -0.5, 0.0];
        let h = 2.0;
        // Interior and exact-boundary points succeed and agree with the
        // clamping map.
        for p in [[0.5, -0.5, 0.0], [2.5, 1.5, 2.0], [-1.5, -2.5, -2.0]] {
            assert!(point_in_domain(p, c, h));
            assert_eq!(try_point_key(p, c, h, 4), Ok(point_key(p, c, h, 4)));
        }
        // Drift outside reports the first offending dimension; the clamping
        // map would have silently folded these into boundary boxes.
        assert_eq!(try_point_key([2.5 + 1e-9, 0.0, 0.0], c, h, 4), Err(0));
        assert_eq!(try_point_key([0.5, -2.6, 0.0], c, h, 4), Err(1));
        assert_eq!(try_point_key([0.5, 0.0, 2.1], c, h, 4), Err(2));
        assert!(!point_in_domain([0.5, 0.0, 2.1], c, h));
        // NaN is never inside.
        assert_eq!(try_point_key([0.5, f64::NAN, 0.0], c, h, 4), Err(1));
    }
}
