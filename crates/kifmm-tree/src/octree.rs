//! Adaptive octree construction.
//!
//! The computation tree of the paper (§2.1): a cube large enough to contain
//! all points, refined so that no box holds more than `s` points. Leaves
//! exist only where points are — the tree is fully adaptive, with no 2:1
//! balance constraint (the U/V/W/X lists of [`crate::lists`] handle
//! arbitrary level jumps).

use crate::morton::{point_key, MortonKey, MAX_LEVEL};
use std::collections::HashMap;

/// Sentinel for "no child".
pub const NO_NODE: u32 = u32::MAX;

/// The cubic computational domain.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Domain {
    /// Cube center.
    pub center: [f64; 3],
    /// Half side length.
    pub half: f64,
}

impl Domain {
    /// Smallest axis-aligned cube containing all points (with a hair of
    /// padding so boundary points land strictly inside).
    pub fn containing(points: &[[f64; 3]]) -> Domain {
        assert!(!points.is_empty(), "domain of an empty point set");
        let mut lo = [f64::INFINITY; 3];
        let mut hi = [f64::NEG_INFINITY; 3];
        for p in points {
            for d in 0..3 {
                lo[d] = lo[d].min(p[d]);
                hi[d] = hi[d].max(p[d]);
            }
        }
        let center = std::array::from_fn(|d| 0.5 * (lo[d] + hi[d]));
        let mut half = (0..3).map(|d| 0.5 * (hi[d] - lo[d])).fold(0.0_f64, f64::max);
        if half == 0.0 {
            half = 0.5; // degenerate single-point cloud
        }
        Domain { center, half: half * (1.0 + 1e-12) }
    }

    /// Center of the box identified by `key`.
    pub fn box_center(&self, key: &MortonKey) -> [f64; 3] {
        let h = self.box_half(key.level);
        std::array::from_fn(|d| {
            self.center[d] - self.half + (2.0 * key.coords[d] as f64 + 1.0) * h
        })
    }

    /// Half side length of boxes at `level`.
    pub fn box_half(&self, level: u8) -> f64 {
        self.half / (1u64 << level) as f64
    }
}

/// One box of the tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Node {
    /// The box identity.
    pub key: MortonKey,
    /// Index of the parent node ([`NO_NODE`] for the root).
    pub parent: u32,
    /// Child node index per octant; [`NO_NODE`] where no child exists
    /// (empty octants are not materialized).
    pub children: [u32; 8],
    /// Start of this box's points in [`Octree::perm`].
    pub pt_start: u32,
    /// One past the end of this box's points in [`Octree::perm`].
    pub pt_end: u32,
}

impl Node {
    /// True when the box was not subdivided.
    pub fn is_leaf(&self) -> bool {
        self.children.iter().all(|&c| c == NO_NODE)
    }

    /// Number of points in the box's subtree.
    pub fn num_points(&self) -> usize {
        (self.pt_end - self.pt_start) as usize
    }
}

/// An adaptive octree over a point set.
///
/// Points are not stored; the tree keeps a permutation [`Octree::perm`]
/// sorting the caller's point indices into Morton order so that every box
/// owns a contiguous index range.
pub struct Octree {
    /// The computational domain.
    pub domain: Domain,
    /// All boxes, root first, in level-by-level (BFS) order.
    pub nodes: Vec<Node>,
    /// `perm[i]` = original index of the i-th point in Morton order.
    pub perm: Vec<u32>,
    /// Node indices per level.
    pub levels: Vec<Vec<u32>>,
    /// Key → node index.
    map: HashMap<MortonKey, u32>,
}

impl Octree {
    /// Build the adaptive tree: subdivide while a box holds more than
    /// `max_pts_per_leaf` points (the paper's `s`), up to `max_level`.
    pub fn build(points: &[[f64; 3]], max_pts_per_leaf: usize, max_level: u8) -> Octree {
        let domain = Domain::containing(points);
        Self::build_in_domain(domain, points, max_pts_per_leaf, max_level)
    }

    /// Build within a caller-specified domain (the distributed driver uses
    /// the globally agreed domain).
    pub fn build_in_domain(
        domain: Domain,
        points: &[[f64; 3]],
        max_pts_per_leaf: usize,
        max_level: u8,
    ) -> Octree {
        assert!(max_pts_per_leaf >= 1, "s must be at least 1");
        let max_level = max_level.min(MAX_LEVEL);
        let n = points.len();
        // Morton-sort the point indices by their max-depth codes.
        let codes: Vec<u64> = points
            .iter()
            .map(|&p| point_key(p, domain.center, domain.half, MAX_LEVEL).morton_code())
            .collect();
        let mut perm: Vec<u32> = (0..n as u32).collect();
        perm.sort_unstable_by_key(|&i| codes[i as usize]);
        let sorted_codes: Vec<u64> = perm.iter().map(|&i| codes[i as usize]).collect();

        // Level-by-level structure derivation from the sorted code array
        // (shared with the distributed builds and the incremental update).
        let (nodes, levels) =
            crate::linearize::structure_from_sorted_codes(&sorted_codes, max_pts_per_leaf, max_level);
        Self::from_parts(domain, nodes, perm, levels)
    }

    /// Assemble a tree from prebuilt parts (used by the distributed driver,
    /// whose box structure comes from globally `Allreduce`d counts while the
    /// point ranges refer to rank-local points).
    ///
    /// Invariants assumed: `nodes[0]` is the root; `levels[l]` lists the
    /// node indices of level `l`; child point ranges partition their
    /// parent's range. Debug builds validate them ([`Octree::check_parts`])
    /// instead of trusting the caller.
    pub fn from_parts(
        domain: Domain,
        nodes: Vec<Node>,
        perm: Vec<u32>,
        levels: Vec<Vec<u32>>,
    ) -> Octree {
        #[cfg(debug_assertions)]
        if let Err(e) = Self::check_parts(&nodes, &perm, &levels) {
            panic!("Octree::from_parts: invariant violated: {e}");
        }
        let map = nodes.iter().enumerate().map(|(i, nd)| (nd.key, i as u32)).collect();
        Octree { domain, nodes, perm, levels, map }
    }

    /// Validate the structural invariants [`Octree::from_parts`] documents:
    /// a root node covering the whole permutation, level arrays consistent
    /// with node key levels and covering every node exactly once,
    /// parent/child links mutual and key-consistent, child point ranges
    /// partitioning their parent's range in octant order, and `perm` an
    /// actual permutation.
    pub fn check_parts(nodes: &[Node], perm: &[u32], levels: &[Vec<u32>]) -> Result<(), String> {
        if nodes.is_empty() {
            return Err("no nodes (the root must exist)".into());
        }
        let root = &nodes[0];
        if root.key != MortonKey::ROOT || root.parent != NO_NODE {
            return Err(format!("nodes[0] is not a parentless root: {root:?}"));
        }
        if (root.pt_start, root.pt_end) != (0, perm.len() as u32) {
            return Err(format!(
                "root range {}..{} does not cover the {} permuted points",
                root.pt_start,
                root.pt_end,
                perm.len()
            ));
        }
        if levels.is_empty() || levels[0] != [0] {
            return Err("levels[0] must be exactly [root]".into());
        }
        let mut seen_in_levels = vec![false; nodes.len()];
        for (l, idxs) in levels.iter().enumerate() {
            for &i in idxs {
                let nd = nodes.get(i as usize).ok_or_else(|| {
                    format!("levels[{l}] references node {i} out of bounds")
                })?;
                if nd.key.level as usize != l {
                    return Err(format!(
                        "node {i} (key level {}) listed in levels[{l}]",
                        nd.key.level
                    ));
                }
                if std::mem::replace(&mut seen_in_levels[i as usize], true) {
                    return Err(format!("node {i} appears twice in the level arrays"));
                }
            }
        }
        if let Some(i) = seen_in_levels.iter().position(|&b| !b) {
            return Err(format!("node {i} missing from the level arrays"));
        }
        for (i, nd) in nodes.iter().enumerate() {
            if nd.pt_start > nd.pt_end || nd.pt_end as usize > perm.len() {
                return Err(format!("node {i} has invalid point range"));
            }
            let mut cursor = nd.pt_start;
            let mut any_child = false;
            for (oct, &c) in nd.children.iter().enumerate() {
                if c == NO_NODE {
                    continue;
                }
                any_child = true;
                let ch = nodes.get(c as usize).ok_or_else(|| {
                    format!("node {i} child {oct} references node {c} out of bounds")
                })?;
                if ch.key != nd.key.child(oct as u8) {
                    return Err(format!(
                        "node {i} child slot {oct} holds key {:?}, expected {:?}",
                        ch.key,
                        nd.key.child(oct as u8)
                    ));
                }
                if ch.parent != i as u32 {
                    return Err(format!("child {c} does not point back to parent {i}"));
                }
                if ch.pt_start != cursor {
                    return Err(format!(
                        "node {i} children do not tile the parent range: child {c} starts at {} but cursor is {cursor}",
                        ch.pt_start
                    ));
                }
                cursor = ch.pt_end;
            }
            if any_child && cursor != nd.pt_end {
                return Err(format!(
                    "node {i} children cover ..{cursor}, parent range ends at {}",
                    nd.pt_end
                ));
            }
        }
        let mut seen = vec![false; perm.len()];
        for &p in perm {
            match seen.get_mut(p as usize) {
                Some(slot) if !*slot => *slot = true,
                _ => return Err(format!("perm is not a permutation (index {p})")),
            }
        }
        Ok(())
    }

    /// True when two trees have identical structure *and* identical local
    /// point assignment: same domain, node array (keys, links, point
    /// ranges), level arrays, and permutation. This is the bitwise gate
    /// between the sample-sort and paper construction paths.
    pub fn structure_eq(&self, other: &Octree) -> bool {
        self.domain == other.domain
            && self.nodes == other.nodes
            && self.levels == other.levels
            && self.perm == other.perm
    }

    /// Number of boxes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Depth (deepest populated level).
    pub fn depth(&self) -> u8 {
        (self.levels.len() - 1) as u8
    }

    /// Node index for a key, if the box exists.
    pub fn find(&self, key: &MortonKey) -> Option<u32> {
        self.map.get(key).copied()
    }

    /// The deepest existing box containing `key` (i.e. `key` itself if
    /// present, else its nearest existing ancestor; the root always exists).
    pub fn deepest_ancestor(&self, key: &MortonKey) -> u32 {
        let mut k = *key;
        loop {
            if let Some(i) = self.find(&k) {
                return i;
            }
            k = k.parent().expect("root always exists");
        }
    }

    /// Iterator over leaf node indices.
    pub fn leaves(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.nodes.len() as u32).filter(move |&i| self.nodes[i as usize].is_leaf())
    }

    /// The original point indices owned by a box.
    pub fn point_indices(&self, node: u32) -> &[u32] {
        let nd = &self.nodes[node as usize];
        &self.perm[nd.pt_start as usize..nd.pt_end as usize]
    }

    /// Same-level adjacent boxes that exist in the tree ("colleagues").
    pub fn colleagues(&self, node: u32) -> Vec<u32> {
        let key = self.nodes[node as usize].key;
        key.neighbors().iter().filter_map(|k| self.find(k)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud(n: usize) -> Vec<[f64; 3]> {
        // Deterministic pseudo-random cloud.
        let mut seed = 0xabcdefu64;
        (0..n)
            .map(|_| {
                std::array::from_fn(|_| {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
                })
            })
            .collect()
    }

    #[test]
    fn domain_contains_all_points() {
        let pts = cloud(500);
        let d = Domain::containing(&pts);
        for p in &pts {
            for dim in 0..3 {
                assert!((p[dim] - d.center[dim]).abs() <= d.half);
            }
        }
    }

    #[test]
    fn leaf_capacity_respected() {
        let pts = cloud(2000);
        let s = 40;
        let t = Octree::build(&pts, s, MAX_LEVEL);
        for i in t.leaves() {
            assert!(t.nodes[i as usize].num_points() <= s, "leaf over capacity");
        }
        // Internal boxes exceed s (that is why they were split).
        for (i, nd) in t.nodes.iter().enumerate() {
            if !nd.is_leaf() {
                assert!(nd.num_points() > s, "internal node {i} should exceed s");
            }
        }
    }

    #[test]
    fn children_partition_parent_ranges() {
        let pts = cloud(3000);
        let t = Octree::build(&pts, 25, MAX_LEVEL);
        for nd in &t.nodes {
            if nd.is_leaf() {
                continue;
            }
            let mut covered = 0;
            let mut cursor = nd.pt_start;
            for &c in &nd.children {
                if c == NO_NODE {
                    continue;
                }
                let ch = &t.nodes[c as usize];
                assert_eq!(ch.pt_start, cursor, "child ranges must be contiguous");
                cursor = ch.pt_end;
                covered += ch.num_points();
            }
            assert_eq!(cursor, nd.pt_end);
            assert_eq!(covered, nd.num_points());
        }
    }

    #[test]
    fn points_inside_their_boxes() {
        let pts = cloud(1500);
        let t = Octree::build(&pts, 30, MAX_LEVEL);
        for (i, nd) in t.nodes.iter().enumerate() {
            let c = t.domain.box_center(&nd.key);
            let h = t.domain.box_half(nd.key.level);
            for &pi in t.point_indices(i as u32) {
                let p = pts[pi as usize];
                for d in 0..3 {
                    assert!(
                        (p[d] - c[d]).abs() <= h * (1.0 + 1e-9),
                        "point {pi} escapes box {i} in dim {d}"
                    );
                }
            }
        }
    }

    #[test]
    fn perm_is_permutation() {
        let pts = cloud(800);
        let t = Octree::build(&pts, 20, MAX_LEVEL);
        let mut seen = vec![false; 800];
        for &i in &t.perm {
            assert!(!seen[i as usize]);
            seen[i as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn find_and_deepest_ancestor() {
        let pts = cloud(1000);
        let t = Octree::build(&pts, 10, MAX_LEVEL);
        for (i, nd) in t.nodes.iter().enumerate() {
            assert_eq!(t.find(&nd.key), Some(i as u32));
        }
        // A key far below any leaf resolves to an existing ancestor.
        let leaf = t.leaves().next().unwrap();
        let mut k = t.nodes[leaf as usize].key;
        k = k.child(0).child(0);
        let anc = t.deepest_ancestor(&k);
        assert!(t.nodes[anc as usize].key.contains(&k));
    }

    #[test]
    fn single_box_tree_when_under_capacity() {
        let pts = cloud(10);
        let t = Octree::build(&pts, 64, MAX_LEVEL);
        assert_eq!(t.num_nodes(), 1);
        assert!(t.nodes[0].is_leaf());
        assert_eq!(t.depth(), 0);
    }

    #[test]
    fn max_level_caps_depth() {
        // Identical points cannot be separated: depth must stop at max_level.
        let pts = vec![[0.25, 0.25, 0.25]; 100];
        let t = Octree::build(&pts, 10, 4);
        assert!(t.depth() <= 4);
        for i in t.leaves() {
            // The capacity cannot be honored here; all points share a leaf.
            assert_eq!(t.nodes[i as usize].num_points(), 100);
        }
    }

    #[test]
    fn check_parts_accepts_built_trees_and_catches_corruption() {
        let pts = cloud(900);
        let t = Octree::build(&pts, 25, MAX_LEVEL);
        assert_eq!(Octree::check_parts(&t.nodes, &t.perm, &t.levels), Ok(()));

        // Child range no longer tiling the parent.
        let mut bad = t.nodes.clone();
        let victim = bad
            .iter()
            .position(|nd| !nd.is_leaf())
            .and_then(|i| bad[i].children.iter().find(|&&c| c != NO_NODE).copied())
            .unwrap() as usize;
        bad[victim].pt_start += 1;
        assert!(Octree::check_parts(&bad, &t.perm, &t.levels).is_err());

        // Wrong key in a child slot.
        let mut bad = t.nodes.clone();
        bad[victim].key = bad[victim].key.parent().unwrap();
        assert!(Octree::check_parts(&bad, &t.perm, &t.levels).is_err());

        // Broken back-link.
        let mut bad = t.nodes.clone();
        bad[victim].parent = NO_NODE;
        assert!(Octree::check_parts(&bad, &t.perm, &t.levels).is_err());

        // Level array listing a node at the wrong level.
        let mut bad_levels = t.levels.clone();
        let moved = bad_levels[1].pop().unwrap();
        bad_levels[0].push(moved);
        assert!(Octree::check_parts(&t.nodes, &t.perm, &bad_levels).is_err());

        // A node missing from the level arrays.
        let mut bad_levels = t.levels.clone();
        bad_levels.last_mut().unwrap().pop();
        assert!(Octree::check_parts(&t.nodes, &t.perm, &bad_levels).is_err());

        // perm with a duplicated index.
        let mut bad_perm = t.perm.clone();
        bad_perm[0] = bad_perm[1];
        assert!(Octree::check_parts(&t.nodes, &bad_perm, &t.levels).is_err());
    }

    #[test]
    fn structure_eq_flags_any_difference() {
        let pts = cloud(600);
        let a = Octree::build(&pts, 30, MAX_LEVEL);
        let b = Octree::build(&pts, 30, MAX_LEVEL);
        assert!(a.structure_eq(&b));
        let mut perm2 = a.perm.clone();
        perm2.swap(0, 1);
        let c = Octree::from_parts(a.domain, a.nodes.clone(), perm2, a.levels.clone());
        assert!(!a.structure_eq(&c), "a permuted point order must not compare equal");
    }

    #[test]
    fn levels_index_is_consistent() {
        let pts = cloud(1200);
        let t = Octree::build(&pts, 15, MAX_LEVEL);
        let mut count = 0;
        for (l, idxs) in t.levels.iter().enumerate() {
            for &i in idxs {
                assert_eq!(t.nodes[i as usize].key.level as usize, l);
                count += 1;
            }
        }
        assert_eq!(count, t.num_nodes());
    }
}
