//! Morton-curve partitioning (paper §3.1).
//!
//! Input surface patches are ordered along the Morton space-filling curve
//! by their centroids and then cut into contiguous groups of (nearly)
//! equal weight, one group per processor. A direct point-level partitioner
//! is also provided ("alternatively, we could use Morton curve partitioning
//! directly on the particles").

use crate::morton::{point_key, MAX_LEVEL};
use crate::octree::Domain;
use kifmm_geom::SurfacePatch;

/// Assignment of items to `num_parts` contiguous Morton-curve segments.
#[derive(Clone, Debug)]
pub struct Partition {
    /// `groups[r]` = indices of the items owned by rank `r`.
    pub groups: Vec<Vec<usize>>,
}

impl Partition {
    /// Load imbalance: max group weight / average group weight.
    pub fn imbalance(&self, weight: impl Fn(usize) -> f64) -> f64 {
        let w: Vec<f64> =
            self.groups.iter().map(|g| g.iter().map(|&i| weight(i)).sum()).collect();
        let total: f64 = w.iter().sum();
        if total == 0.0 {
            return 1.0;
        }
        let avg = total / w.len() as f64;
        w.iter().fold(0.0_f64, |m, &v| m.max(v)) / avg
    }
}

/// Partition weighted items, already ordered along the curve, into
/// `num_parts` contiguous groups with nearly equal weight (greedy
/// prefix-sum cuts).
pub fn split_by_weight(weights: &[f64], num_parts: usize) -> Vec<std::ops::Range<usize>> {
    assert!(num_parts >= 1);
    let total: f64 = weights.iter().sum();
    let n = weights.len();
    if !(total > 0.0) {
        // All-zero (or otherwise degenerate) total: every greedy target
        // collapses to 0 and the first part would swallow nearly all
        // items. Fall back to an even count split, which is the balanced
        // answer when weights carry no information.
        return (0..num_parts).map(|p| n * p / num_parts..n * (p + 1) / num_parts).collect();
    }
    let mut cuts = Vec::with_capacity(num_parts);
    let mut start = 0usize;
    let mut acc = 0.0;
    for part in 0..num_parts {
        let target = total * (part as f64 + 1.0) / num_parts as f64;
        let mut end = start;
        // Advance while we are below this part's cumulative target; always
        // leave enough items for the remaining parts when possible.
        while end < n && (acc + weights[end] <= target || end == start) {
            let remaining_parts = num_parts - part - 1;
            if n - (end + 1) < remaining_parts && end > start {
                break;
            }
            acc += weights[end];
            end += 1;
        }
        if part == num_parts - 1 {
            while end < n {
                acc += weights[end];
                end += 1;
            }
        }
        cuts.push(start..end);
        start = end;
    }
    cuts
}

/// Partition surface patches across `num_parts` ranks: sort by centroid
/// Morton code, cut by weight.
pub fn partition_patches(patches: &[SurfacePatch], num_parts: usize) -> Partition {
    let all_points: Vec<[f64; 3]> =
        patches.iter().flat_map(|p| p.points.iter().copied()).collect();
    assert!(!all_points.is_empty(), "cannot partition empty input");
    let domain = Domain::containing(&all_points);
    let mut order: Vec<usize> = (0..patches.len()).collect();
    order.sort_by_key(|&i| {
        point_key(patches[i].centroid(), domain.center, domain.half, MAX_LEVEL).morton_code()
    });
    let weights: Vec<f64> = order.iter().map(|&i| patches[i].weight).collect();
    let cuts = split_by_weight(&weights, num_parts);
    Partition {
        groups: cuts.into_iter().map(|r| r.map(|k| order[k]).collect()).collect(),
    }
}

/// Partition points with per-point weights (e.g. the work estimates of
/// `kifmm_core::point_work_estimates` from a previous evaluation — the
/// paper's planned use of "workload information from previous time
/// steps").
pub fn partition_weighted_points(
    points: &[[f64; 3]],
    weights: &[f64],
    num_parts: usize,
) -> Partition {
    assert!(!points.is_empty(), "cannot partition empty input");
    assert_eq!(points.len(), weights.len(), "one weight per point");
    let domain = Domain::containing(points);
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by_key(|&i| {
        point_key(points[i], domain.center, domain.half, MAX_LEVEL).morton_code()
    });
    let w: Vec<f64> = order.iter().map(|&i| weights[i]).collect();
    let cuts = split_by_weight(&w, num_parts);
    Partition {
        groups: cuts.into_iter().map(|r| r.map(|k| order[k]).collect()).collect(),
    }
}

/// Partition raw points directly (weight 1 each).
pub fn partition_points(points: &[[f64; 3]], num_parts: usize) -> Partition {
    assert!(!points.is_empty(), "cannot partition empty input");
    let domain = Domain::containing(points);
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by_key(|&i| {
        point_key(points[i], domain.center, domain.half, MAX_LEVEL).morton_code()
    });
    let weights = vec![1.0; points.len()];
    let cuts = split_by_weight(&weights, num_parts);
    Partition {
        groups: cuts.into_iter().map(|r| r.map(|k| order[k]).collect()).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kifmm_geom::{sphere_grid_patches, uniform_cube};

    #[test]
    fn split_exact_when_divisible() {
        let w = vec![1.0; 12];
        let cuts = split_by_weight(&w, 4);
        assert_eq!(cuts, vec![0..3, 3..6, 6..9, 9..12]);
    }

    #[test]
    fn split_covers_everything_once() {
        let w: Vec<f64> = (0..37).map(|i| 1.0 + (i % 5) as f64).collect();
        for parts in [1, 2, 3, 5, 8, 37, 50] {
            let cuts = split_by_weight(&w, parts);
            assert_eq!(cuts.len(), parts);
            let mut expect = 0;
            for c in &cuts {
                assert_eq!(c.start, expect);
                expect = c.end;
            }
            assert_eq!(expect, w.len());
        }
    }

    #[test]
    fn patch_partition_balances_weight() {
        let patches: Vec<_> = sphere_grid_patches(8192, 8)
            .into_iter()
            .map(kifmm_geom::SurfacePatch::from_points)
            .collect();
        let p = partition_patches(&patches, 16);
        assert_eq!(p.groups.len(), 16);
        let total: usize = p.groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, 512);
        let imb = p.imbalance(|i| patches[i].weight);
        assert!(imb < 1.2, "imbalance {imb}");
    }

    #[test]
    fn point_partition_is_contiguous_in_space() {
        let pts = uniform_cube(4000, 9);
        let p = partition_points(&pts, 8);
        let total: usize = p.groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, 4000);
        // Every point appears exactly once.
        let mut seen = vec![false; 4000];
        for g in &p.groups {
            for &i in g {
                assert!(!seen[i]);
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
        // Weight balance within one point.
        for g in &p.groups {
            assert!((g.len() as i64 - 500).abs() <= 1, "group size {}", g.len());
        }
    }

    #[test]
    fn more_parts_than_items() {
        let w = vec![1.0; 3];
        let cuts = split_by_weight(&w, 5);
        assert_eq!(cuts.len(), 5);
        let nonempty = cuts.iter().filter(|c| !c.is_empty()).count();
        assert_eq!(nonempty, 3);
    }

    /// Ranges must tile `0..n` exactly, in order.
    fn assert_covers(cuts: &[std::ops::Range<usize>], n: usize) {
        let mut expect = 0;
        for c in cuts {
            assert_eq!(c.start, expect, "ranges must be contiguous");
            assert!(c.end >= c.start);
            expect = c.end;
        }
        assert_eq!(expect, n, "ranges must cover all items");
    }

    #[test]
    fn all_zero_weights_split_evenly() {
        // Regression: the greedy targets all collapse to 0 on a zero
        // total, which used to hand part 0 nearly every item.
        for (n, parts) in [(10, 4), (7, 3), (3, 5), (0, 2), (16, 1)] {
            let w = vec![0.0; n];
            let cuts = split_by_weight(&w, parts);
            assert_eq!(cuts.len(), parts);
            assert_covers(&cuts, n);
            let max = cuts.iter().map(|c| c.len()).max().unwrap();
            let min_expected = n / parts;
            assert!(
                max <= min_expected + 1,
                "zero weights must split evenly: {n} items over {parts} parts gave a group of {max}"
            );
        }
    }

    #[test]
    fn single_heavy_item_keeps_ranges_valid() {
        let mut w = vec![0.0; 9];
        w[4] = 100.0;
        for parts in [1, 2, 3, 9, 12] {
            let cuts = split_by_weight(&w, parts);
            assert_eq!(cuts.len(), parts);
            assert_covers(&cuts, w.len());
            // Exactly one part holds the heavy item.
            let holders = cuts.iter().filter(|c| c.contains(&4)).count();
            assert_eq!(holders, 1);
        }
        // Heavy item first/last (boundary positions).
        for pos in [0, 8] {
            let mut w = vec![0.0; 9];
            w[pos] = 5.0;
            let cuts = split_by_weight(&w, 4);
            assert_covers(&cuts, 9);
        }
    }

    #[test]
    fn zero_weights_with_more_parts_than_items() {
        let cuts = split_by_weight(&[0.0, 0.0], 6);
        assert_eq!(cuts.len(), 6);
        assert_covers(&cuts, 2);
    }
}
