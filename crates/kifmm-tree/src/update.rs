//! Incremental octree update for time-stepping workloads.
//!
//! When points move a little between time steps (the sedimentation
//! example's spheres), rebuilding the tree from scratch repeats a full
//! sort and structure derivation whose answer is almost unchanged. This
//! module re-sorts the new Morton codes using the *old permutation as a
//! near-sorted hint* — points that stayed in Morton order ride along for
//! free, only the displaced minority is sorted and merged back — and then
//! re-derives the linearized structure from the sorted array
//! ([`crate::linearize::structure_from_sorted_codes`]).
//!
//! Out-of-domain drift is a hard error, not a clamp: the old domain is
//! fixed (operator tables are scaled to it), so a point outside it must
//! force a re-root/rebuild. See [`crate::morton::try_point_key`].

use crate::linearize::structure_from_sorted_codes;
use crate::morton::{try_point_key, MAX_LEVEL};
use crate::octree::Octree;
use std::sync::atomic::{AtomicU64, Ordering};

/// Why an incremental update could not be applied. Both cases mean the
/// caller must fall back to a full rebuild over a fresh domain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateError {
    /// `points[point]` drifted outside the tree's computational domain in
    /// dimension `dim`; the domain (and the operator tables scaled to it)
    /// no longer covers the cloud.
    DomainOverflow {
        /// Index of the first offending point.
        point: usize,
        /// Dimension (0/1/2) in which it left the cube.
        dim: usize,
    },
    /// The update re-bins the *same* point set; the count changed.
    PointCountChanged {
        /// Points the tree was built over.
        old: usize,
        /// Points handed to the update.
        new: usize,
    },
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateError::DomainOverflow { point, dim } => write!(
                f,
                "point {point} drifted outside the computational domain in dimension {dim}; \
                 rebuild over a fresh containing domain"
            ),
            UpdateError::PointCountChanged { old, new } => write!(
                f,
                "incremental update re-bins the same point set: tree has {old} points, got {new}"
            ),
        }
    }
}

impl std::error::Error for UpdateError {}

/// Result of a successful [`update_octree`].
pub struct TreeUpdate {
    /// The patched tree (same domain as the old one).
    pub tree: Octree,
    /// True when the box structure — keys, levels, parent/child links —
    /// is unchanged, so interaction lists derived from the old tree
    /// remain valid wholesale. (Point ranges and the permutation may
    /// still differ.)
    pub same_structure: bool,
    /// Number of points displaced out of the old Morton order (0 means
    /// the re-sort was a single verification pass).
    pub moved: usize,
}

/// Above this displaced fraction (percent) the near-sorted merge loses to
/// a plain full sort, so the update falls back to one.
const FULL_SORT_PERCENT: usize = 25;

/// Patch `old` for the moved point set `new_points` (same length, same
/// identity — `new_points[i]` is the new position of point `i`).
///
/// The old permutation orders the new codes almost-sorted; a greedy
/// backbone scan keeps the in-order majority, sorts only the displaced
/// points, and merges. Structure is re-derived from the sorted codes, so
/// the result is exactly the tree a fresh build over `new_points` in the
/// *same domain* would produce (up to permutation order among coincident
/// codes).
pub fn update_octree(
    old: &Octree,
    new_points: &[[f64; 3]],
    max_pts_per_leaf: usize,
    max_level: u8,
) -> Result<TreeUpdate, UpdateError> {
    let n = old.perm.len();
    if new_points.len() != n {
        return Err(UpdateError::PointCountChanged { old: n, new: new_points.len() });
    }
    let domain = old.domain;
    const CHUNK: usize = 1 << 16;
    // Pass 1 streams the points in storage order — the cache-friendly
    // direction for the coordinate reads — computing every new Morton
    // code and noting the first out-of-domain point, encoded
    // (point << 2) | dim so the atomic min picks the smallest offending
    // point index regardless of which worker saw it.
    let mut codes = vec![0u64; n];
    let overflow = AtomicU64::new(u64::MAX);
    kifmm_runtime::par_chunks_mut(&mut codes, CHUNK, |ci, chunk| {
        let base = ci * CHUNK;
        for (j, slot) in chunk.iter_mut().enumerate() {
            let i = base + j;
            match try_point_key(new_points[i], domain.center, domain.half, MAX_LEVEL) {
                Ok(k) => *slot = k.morton_code(),
                Err(dim) => {
                    overflow.fetch_min(((i as u64) << 2) | dim as u64, Ordering::Relaxed);
                }
            }
        }
    });
    let first = overflow.load(Ordering::Relaxed);
    if first != u64::MAX {
        return Err(UpdateError::DomainOverflow {
            point: (first >> 2) as usize,
            dim: (first & 3) as usize,
        });
    }

    // Pass 2 gathers the codes into the old Morton order (random access
    // into the compact code array, not the 3× wider point array),
    // recording per-chunk whether the chunk stayed non-decreasing; a
    // scan of the chunk seams completes the sortedness verdict without
    // another pass over the permutation.
    let chunks = n.div_ceil(CHUNK);
    let mut in_old_order = vec![0u64; n];
    let mut chunk_sorted = vec![0u8; chunks];
    kifmm_runtime::par_chunks2_mut(
        &mut in_old_order,
        CHUNK,
        &mut chunk_sorted,
        1,
        |ci, chunk, flag| {
            let base = ci * CHUNK;
            let mut sorted = true;
            let mut last = 0u64;
            for (j, slot) in chunk.iter_mut().enumerate() {
                let c = codes[old.perm[base + j] as usize];
                sorted &= last <= c;
                last = c;
                *slot = c;
            }
            flag[0] = sorted as u8;
        },
    );
    let still_sorted = chunk_sorted.iter().all(|&f| f == 1)
        && (1..chunks).all(|c| in_old_order[c * CHUNK - 1] <= in_old_order[c * CHUNK]);

    let (sorted_codes, perm, moved) = if still_sorted {
        // Fast path: motion below code resolution (or preserving Morton
        // order) leaves the old permutation valid — no pair vectors, no
        // sort, no merge.
        (in_old_order, old.perm.clone(), 0)
    } else {
        // Greedy backbone: walk the old permutation, keep every point
        // whose new code continues a non-decreasing run, peel off the
        // rest.
        let mut kept: Vec<(u64, u32)> = Vec::with_capacity(n);
        let mut displaced: Vec<(u64, u32)> = Vec::new();
        for (k, &c) in in_old_order.iter().enumerate() {
            let i = old.perm[k];
            if kept.last().map_or(true, |&(last, _)| last <= c) {
                kept.push((c, i));
            } else {
                displaced.push((c, i));
            }
        }
        let moved = displaced.len();

        let pairs: Vec<(u64, u32)> = if moved * 100 > n * FULL_SORT_PERCENT {
            // Too much motion for the hint to pay: full parallel sort
            // (the (code, index) multiset is order-independent, so
            // sorting the gathered array is sorting the codes).
            let mut pairs: Vec<(u64, u32)> =
                in_old_order.iter().zip(&old.perm).map(|(&c, &i)| (c, i)).collect();
            kifmm_runtime::par_sort_unstable(&mut pairs);
            pairs
        } else {
            displaced.sort_unstable();
            merge_runs(&kept, &displaced)
        };

        let sorted_codes: Vec<u64> = pairs.iter().map(|&(c, _)| c).collect();
        let perm: Vec<u32> = pairs.iter().map(|&(_, i)| i).collect();
        (sorted_codes, perm, moved)
    };
    let (nodes, levels) = structure_from_sorted_codes(&sorted_codes, max_pts_per_leaf, max_level);
    let same_structure = nodes.len() == old.nodes.len()
        && nodes.iter().zip(&old.nodes).all(|(a, b)| {
            a.key == b.key && a.parent == b.parent && a.children == b.children
        });
    let tree = Octree::from_parts(domain, nodes, perm, levels);
    Ok(TreeUpdate { tree, same_structure, moved })
}

/// Merge two sorted runs of (code, original index) pairs, taking from the
/// backbone on code ties so unmoved points keep their old relative order.
fn merge_runs(kept: &[(u64, u32)], displaced: &[(u64, u32)]) -> Vec<(u64, u32)> {
    let mut out = Vec::with_capacity(kept.len() + displaced.len());
    let (mut i, mut j) = (0, 0);
    while i < kept.len() && j < displaced.len() {
        if kept[i].0 <= displaced[j].0 {
            out.push(kept[i]);
            i += 1;
        } else {
            out.push(displaced[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&kept[i..]);
    out.extend_from_slice(&displaced[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::morton::point_key;

    fn cloud(n: usize, mut seed: u64) -> Vec<[f64; 3]> {
        (0..n)
            .map(|_| {
                std::array::from_fn(|_| {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
                })
            })
            .collect()
    }

    /// Shrink toward the domain center and jitter: guaranteed in-domain
    /// motion of bounded size.
    fn perturb(pts: &[[f64; 3]], domain: &crate::octree::Domain, scale: f64) -> Vec<[f64; 3]> {
        let mut seed = 0x7717u64;
        pts.iter()
            .map(|p| {
                std::array::from_fn(|d| {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let jitter = (((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0) * scale;
                    domain.center[d] + (p[d] - domain.center[d]) * (1.0 - 2.0 * scale) + jitter
                })
            })
            .collect()
    }

    /// The update must equal a fresh build over the same domain: identical
    /// structure and point ranges, and a permutation placing every point
    /// in a box that contains its code.
    fn assert_matches_fresh(upd: &TreeUpdate, new_pts: &[[f64; 3]], s: usize, max_level: u8) {
        let fresh =
            Octree::build_in_domain(upd.tree.domain, new_pts, s, max_level);
        assert_eq!(upd.tree.nodes, fresh.nodes, "node arrays differ from fresh build");
        assert_eq!(upd.tree.levels, fresh.levels);
        // Permutations may order coincident codes differently, but each
        // point must land in a box covering its code.
        for (i, nd) in upd.tree.nodes.iter().enumerate() {
            let (lo, hi) = crate::linearize::code_range(&nd.key);
            for &pi in upd.tree.point_indices(i as u32) {
                let code = point_key(
                    new_pts[pi as usize],
                    upd.tree.domain.center,
                    upd.tree.domain.half,
                    MAX_LEVEL,
                )
                .morton_code();
                assert!(code >= lo && code < hi, "point {pi} outside its box");
            }
        }
    }

    #[test]
    fn small_motion_patches_to_fresh_structure() {
        let pts = cloud(1200, 99);
        let s = 30;
        let old = Octree::build(&pts, s, MAX_LEVEL);
        let new_pts = perturb(&pts, &old.domain, 1e-4);
        let upd = update_octree(&old, &new_pts, s, MAX_LEVEL).unwrap();
        assert!(
            upd.moved * 100 <= new_pts.len() * FULL_SORT_PERCENT,
            "tiny motion must stay on the near-sorted path (moved {})",
            upd.moved
        );
        assert_matches_fresh(&upd, &new_pts, s, MAX_LEVEL);
    }

    #[test]
    fn identical_points_reproduce_the_tree_exactly() {
        let pts = cloud(800, 3);
        let old = Octree::build(&pts, 25, MAX_LEVEL);
        let upd = update_octree(&old, &pts, 25, MAX_LEVEL).unwrap();
        assert_eq!(upd.moved, 0);
        assert!(upd.same_structure);
        assert!(upd.tree.structure_eq(&old), "no motion must reproduce the tree bitwise");
    }

    #[test]
    fn large_motion_falls_back_to_full_sort() {
        let pts = cloud(1000, 11);
        let s = 20;
        let old = Octree::build(&pts, s, MAX_LEVEL);
        // Strong shuffle: reflect through the center (stays in-domain).
        let new_pts: Vec<[f64; 3]> = pts
            .iter()
            .map(|p| std::array::from_fn(|d| 2.0 * old.domain.center[d] - p[d]))
            .collect();
        let upd = update_octree(&old, &new_pts, s, MAX_LEVEL).unwrap();
        assert!(upd.moved * 100 > new_pts.len() * FULL_SORT_PERCENT);
        assert_matches_fresh(&upd, &new_pts, s, MAX_LEVEL);
    }

    #[test]
    fn domain_overflow_is_a_typed_error() {
        // Regression for the silent point_key clamp: drift outside the
        // domain must surface as DomainOverflow, not a corrupted tree.
        let pts = cloud(300, 5);
        let old = Octree::build(&pts, 20, MAX_LEVEL);
        let mut new_pts = pts.clone();
        new_pts[137][2] = old.domain.center[2] + old.domain.half * 1.001;
        let err = update_octree(&old, &new_pts, 20, MAX_LEVEL).map(|_| ()).unwrap_err();
        assert_eq!(err, UpdateError::DomainOverflow { point: 137, dim: 2 });
    }

    #[test]
    fn point_count_change_is_rejected() {
        let pts = cloud(100, 8);
        let old = Octree::build(&pts, 10, MAX_LEVEL);
        let err = update_octree(&old, &pts[..99], 10, MAX_LEVEL).map(|_| ()).unwrap_err();
        assert_eq!(err, UpdateError::PointCountChanged { old: 100, new: 99 });
    }

    #[test]
    fn coincident_points_update_cleanly() {
        let mut pts = cloud(50, 21);
        for i in 0..20 {
            pts[i] = [0.125, 0.125, 0.125];
        }
        let old = Octree::build(&pts, 5, 6);
        let new_pts = perturb(&pts, &old.domain, 1e-5);
        let upd = update_octree(&old, &new_pts, 5, 6).unwrap();
        assert_matches_fresh(&upd, &new_pts, 5, 6);
    }
}
