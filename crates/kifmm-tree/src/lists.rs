//! The four adaptive-FMM interaction lists (paper §3.1, following
//! Greengard and Cheng–Greengard–Rokhlin):
//!
//! * **U list** (leaf `B` only): `B` itself and all leaves adjacent to `B`
//!   — handled by dense (P2P) interaction.
//! * **V list**: children of `B`'s parent's colleagues that are not
//!   adjacent to `B` — handled by M2L translation.
//! * **W list** (leaf `B` only): descendants `A` of `B`'s colleagues with
//!   `parent(A)` adjacent to `B` but `A` not adjacent to `B` — `A`'s
//!   upward equivalent density is evaluated directly at `B`'s targets.
//! * **X list**: all `A` with `B ∈ W(A)` — `A`'s sources are evaluated on
//!   `B`'s downward check surface.
//!
//! Enumeration of `W` stops at the first non-adjacent box (its equivalent
//! density covers the whole subtree), so `W` members may be internal boxes;
//! `X` members are always leaves.

use crate::octree::{Octree, NO_NODE};

/// Interaction lists for every box of a tree, indexed by node id.
#[derive(Clone, Debug, Default)]
pub struct InteractionLists {
    /// Dense-interaction partners of each leaf (includes the leaf itself).
    pub u: Vec<Vec<u32>>,
    /// M2L partners (same level, well separated).
    pub v: Vec<Vec<u32>>,
    /// Finer, separated boxes whose equivalent densities act on this
    /// leaf's targets.
    pub w: Vec<Vec<u32>>,
    /// Coarser leaves whose raw sources act on this box's downward check
    /// surface.
    pub x: Vec<Vec<u32>>,
}

/// Build all four lists for `tree`.
pub fn build_lists(tree: &Octree) -> InteractionLists {
    let n = tree.num_nodes();
    let mut lists = InteractionLists {
        u: vec![Vec::new(); n],
        v: vec![Vec::new(); n],
        w: vec![Vec::new(); n],
        x: vec![Vec::new(); n],
    };

    for b in 0..n as u32 {
        let node = &tree.nodes[b as usize];
        let key = node.key;

        // V list: children of parent's colleagues, not adjacent to B.
        if node.parent != NO_NODE {
            for pc in tree.colleagues(node.parent) {
                for &c in &tree.nodes[pc as usize].children {
                    if c == NO_NODE {
                        continue;
                    }
                    let ck = tree.nodes[c as usize].key;
                    if !key.is_adjacent(&ck) {
                        lists.v[b as usize].push(c);
                    }
                }
            }
        }

        if node.is_leaf() {
            // U list: adjacent leaves of any level, including B itself.
            // Same-or-finer adjacent leaves come from recursing colleagues;
            // coarser ones from resolving non-existent neighbor keys to
            // their deepest existing ancestor.
            let mut u = vec![b];
            // W list filled during the same downward recursion.
            let mut w = Vec::new();
            for nk in key.neighbors() {
                match tree.find(&nk) {
                    Some(nb) => collect_adjacent_descendants(tree, b, nb, &mut u, &mut w),
                    None => {
                        let anc = tree.deepest_ancestor(&nk);
                        let anc_nd = &tree.nodes[anc as usize];
                        if anc_nd.is_leaf() && anc_nd.key.is_adjacent(&key) {
                            u.push(anc);
                        }
                    }
                }
            }
            u.sort_unstable();
            u.dedup();
            lists.u[b as usize] = u;
            lists.w[b as usize] = w;
        }
    }

    // X list by duality: A ∈ X(B) ⇔ B ∈ W(A).
    for a in 0..n as u32 {
        // Take the W list out to appease the borrow checker.
        let w = std::mem::take(&mut lists.w[a as usize]);
        for &b in &w {
            lists.x[b as usize].push(a);
        }
        lists.w[a as usize] = w;
    }

    lists
}

/// Recurse into colleague `nb` of leaf `b`: adjacent leaves go to `u`,
/// adjacent internals are recursed, and the first non-adjacent descendant
/// goes to `w` (its subtree is covered by its equivalent density).
fn collect_adjacent_descendants(
    tree: &Octree,
    b: u32,
    current: u32,
    u: &mut Vec<u32>,
    w: &mut Vec<u32>,
) {
    let bkey = tree.nodes[b as usize].key;
    let cur = &tree.nodes[current as usize];
    if !bkey.is_adjacent(&cur.key) {
        w.push(current);
        return;
    }
    if cur.is_leaf() {
        u.push(current);
        return;
    }
    for &c in &cur.children {
        if c != NO_NODE {
            collect_adjacent_descendants(tree, b, c, u, w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::morton::MAX_LEVEL;

    fn cloud(n: usize, seed: u64) -> Vec<[f64; 3]> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                std::array::from_fn(|_| {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
                })
            })
            .collect()
    }

    /// Clustered cloud producing strong level jumps (exercises W/X).
    fn clustered(n: usize) -> Vec<[f64; 3]> {
        let mut pts = cloud(n / 2, 11);
        for p in cloud(n / 2, 22) {
            pts.push([0.9 + p[0] * 0.05, 0.9 + p[1] * 0.05, 0.9 + p[2] * 0.05]);
        }
        pts
    }

    #[test]
    fn u_contains_self_and_is_leaves() {
        let pts = cloud(2000, 3);
        let t = Octree::build(&pts, 30, MAX_LEVEL);
        let l = build_lists(&t);
        for b in t.leaves() {
            assert!(l.u[b as usize].contains(&b), "U must contain the leaf itself");
            for &m in &l.u[b as usize] {
                assert!(t.nodes[m as usize].is_leaf(), "U members are leaves");
                assert!(t.nodes[m as usize]
                    .key
                    .is_adjacent(&t.nodes[b as usize].key));
            }
        }
        // Non-leaves have empty U and W.
        for (i, nd) in t.nodes.iter().enumerate() {
            if !nd.is_leaf() {
                assert!(l.u[i].is_empty());
                assert!(l.w[i].is_empty());
            }
        }
    }

    #[test]
    fn u_is_symmetric_between_leaves() {
        let t = Octree::build(&clustered(3000), 25, MAX_LEVEL);
        let l = build_lists(&t);
        for b in t.leaves() {
            for &m in &l.u[b as usize] {
                assert!(
                    l.u[m as usize].contains(&b),
                    "U symmetry violated between {b} and {m}"
                );
            }
        }
    }

    #[test]
    fn v_members_same_level_not_adjacent() {
        let t = Octree::build(&cloud(4000, 5), 30, MAX_LEVEL);
        let l = build_lists(&t);
        for (b, vs) in l.v.iter().enumerate() {
            let bk = t.nodes[b].key;
            for &m in vs {
                let mk = t.nodes[m as usize].key;
                assert_eq!(bk.level, mk.level, "V members share the level");
                assert!(!bk.is_adjacent(&mk), "V members are separated");
                // Parents are adjacent (they are colleagues).
                assert!(bk
                    .parent()
                    .unwrap()
                    .is_adjacent(&mk.parent().unwrap()));
                // Offset within the 316-direction stencil.
                let off = bk.offset_to(&mk);
                assert!(off.iter().all(|&o| (-3..=3).contains(&o)));
                assert!(off.iter().any(|&o| o.abs() > 1));
            }
        }
    }

    #[test]
    fn v_is_symmetric() {
        let t = Octree::build(&clustered(3000), 20, MAX_LEVEL);
        let l = build_lists(&t);
        for (b, vs) in l.v.iter().enumerate() {
            for &m in vs {
                assert!(l.v[m as usize].contains(&(b as u32)), "V symmetry");
            }
        }
    }

    #[test]
    fn w_x_duality_and_shape() {
        let t = Octree::build(&clustered(4000), 15, MAX_LEVEL);
        let l = build_lists(&t);
        let mut any_w = false;
        for b in 0..t.num_nodes() as u32 {
            let bk = t.nodes[b as usize].key;
            for &m in &l.w[b as usize] {
                any_w = true;
                let mk = t.nodes[m as usize].key;
                assert!(mk.level > bk.level, "W members are finer");
                assert!(!bk.is_adjacent(&mk));
                assert!(bk.is_adjacent(&t.nodes[t.nodes[m as usize].parent as usize].key));
                // Duality with X.
                assert!(l.x[m as usize].contains(&b));
            }
            for &m in &l.x[b as usize] {
                let mk = t.nodes[m as usize].key;
                assert!(t.nodes[m as usize].is_leaf(), "X members are leaves");
                assert!(mk.level < bk.level, "X members are coarser");
                assert!(l.w[m as usize].contains(&b));
            }
        }
        assert!(any_w, "clustered cloud should produce nonempty W lists");
    }

    /// The fundamental covering property: for every (target leaf T, source
    /// leaf S) pair, the sources of S reach the targets of T through
    /// exactly one mechanism.
    #[test]
    fn every_leaf_pair_covered_exactly_once() {
        let t = Octree::build(&clustered(1200), 12, MAX_LEVEL);
        let l = build_lists(&t);
        let leaves: Vec<u32> = t.leaves().collect();
        for &target in &leaves {
            // Ancestor-or-self chain of the target.
            let mut chain = vec![target];
            let mut cur = target;
            while t.nodes[cur as usize].parent != NO_NODE {
                cur = t.nodes[cur as usize].parent;
                chain.push(cur);
            }
            for &source in &leaves {
                let skey = t.nodes[source as usize].key;
                let mut count = 0;
                // 1. dense
                if l.u[target as usize].contains(&source) {
                    count += 1;
                }
                // 2. M2L into any ancestor-or-self of T from a box
                //    containing S.
                for &b in &chain {
                    for &m in &l.v[b as usize] {
                        if t.nodes[m as usize].key.contains(&skey) {
                            count += 1;
                        }
                    }
                    // 4. X: S's own sources onto b's check surface.
                    if l.x[b as usize].contains(&source) {
                        count += 1;
                    }
                }
                // 3. W: equivalent density of a box containing S.
                for &m in &l.w[target as usize] {
                    if t.nodes[m as usize].key.contains(&skey) {
                        count += 1;
                    }
                }
                assert_eq!(
                    count, 1,
                    "pair (T={target}, S={source}) covered {count} times"
                );
            }
        }
    }
}
