//! The four adaptive-FMM interaction lists (paper §3.1, following
//! Greengard and Cheng–Greengard–Rokhlin):
//!
//! * **U list** (leaf `B` only): `B` itself and all leaves adjacent to `B`
//!   — handled by dense (P2P) interaction.
//! * **V list**: children of `B`'s parent's colleagues that are not
//!   adjacent to `B` — handled by M2L translation.
//! * **W list** (leaf `B` only): descendants `A` of `B`'s colleagues with
//!   `parent(A)` adjacent to `B` but `A` not adjacent to `B` — `A`'s
//!   upward equivalent density is evaluated directly at `B`'s targets.
//! * **X list**: all `A` with `B ∈ W(A)` — `A`'s sources are evaluated on
//!   `B`'s downward check surface.
//!
//! Enumeration of `W` stops at the first non-adjacent box (its equivalent
//! density covers the whole subtree), so `W` members may be internal boxes;
//! `X` members are always leaves.

use crate::morton::MortonKey;
use crate::octree::{Octree, NO_NODE};

/// Interaction lists for every box of a tree, indexed by node id.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InteractionLists {
    /// Dense-interaction partners of each leaf (includes the leaf itself).
    pub u: Vec<Vec<u32>>,
    /// M2L partners (same level, well separated).
    pub v: Vec<Vec<u32>>,
    /// Finer, separated boxes whose equivalent densities act on this
    /// leaf's targets.
    pub w: Vec<Vec<u32>>,
    /// Coarser leaves whose raw sources act on this box's downward check
    /// surface.
    pub x: Vec<Vec<u32>>,
}

/// Per-level binary-search index over the tree's level arrays: the
/// sorted-key replacement for the hash-map lookup. The level arrays are
/// Morton-sorted by construction (parents are visited in Morton order and
/// children materialize in octant order), so a box resolves with one
/// binary search — no hash map to build or probe.
pub struct SortedKeyIndex<'a> {
    tree: &'a Octree,
    level_codes: Vec<Vec<u64>>,
}

impl<'a> SortedKeyIndex<'a> {
    /// Index `tree`'s level arrays.
    pub fn new(tree: &'a Octree) -> SortedKeyIndex<'a> {
        let level_codes: Vec<Vec<u64>> = tree
            .levels
            .iter()
            .map(|idxs| idxs.iter().map(|&i| tree.nodes[i as usize].key.morton_code()).collect())
            .collect();
        debug_assert!(
            level_codes.iter().all(|v| v.windows(2).all(|w| w[0] < w[1])),
            "level arrays must be strictly Morton-sorted"
        );
        SortedKeyIndex { tree, level_codes }
    }

    /// Node index for `key`, if the box exists (binary search).
    pub fn find(&self, key: &MortonKey) -> Option<u32> {
        let l = key.level as usize;
        let codes = self.level_codes.get(l)?;
        codes.binary_search(&key.morton_code()).ok().map(|i| self.tree.levels[l][i])
    }
}

/// Build all four lists for `tree` (hash-map key lookup).
pub fn build_lists(tree: &Octree) -> InteractionLists {
    build_lists_with(tree, &|k| tree.find(k))
}

/// Build all four lists deriving every key lookup from the sorted level
/// arrays ([`SortedKeyIndex`]) instead of the hash map — the list path of
/// the Morton-sort construction. Output is bitwise-identical to
/// [`build_lists`].
pub fn build_lists_sorted(tree: &Octree) -> InteractionLists {
    let idx = SortedKeyIndex::new(tree);
    build_lists_with(tree, &|k| idx.find(k))
}

/// Shared list construction, parameterized by the key-resolution
/// strategy. Every lookup goes through `find`, so both strategies walk
/// boxes in exactly the same order and emit identical lists.
fn build_lists_with(tree: &Octree, find: &dyn Fn(&MortonKey) -> Option<u32>) -> InteractionLists {
    let n = tree.num_nodes();
    let mut lists = InteractionLists {
        u: vec![Vec::new(); n],
        v: vec![Vec::new(); n],
        w: vec![Vec::new(); n],
        x: vec![Vec::new(); n],
    };
    let deepest_ancestor = |key: &MortonKey| -> u32 {
        let mut k = *key;
        loop {
            if let Some(i) = find(&k) {
                return i;
            }
            k = k.parent().expect("root always exists");
        }
    };

    for b in 0..n as u32 {
        let node = &tree.nodes[b as usize];
        let key = node.key;

        // V list: children of parent's colleagues, not adjacent to B.
        if node.parent != NO_NODE {
            let parent_key = tree.nodes[node.parent as usize].key;
            for pc in parent_key.neighbors().iter().filter_map(|k| find(k)) {
                for &c in &tree.nodes[pc as usize].children {
                    if c == NO_NODE {
                        continue;
                    }
                    let ck = tree.nodes[c as usize].key;
                    if !key.is_adjacent(&ck) {
                        lists.v[b as usize].push(c);
                    }
                }
            }
        }

        if node.is_leaf() {
            // U list: adjacent leaves of any level, including B itself.
            // Same-or-finer adjacent leaves come from recursing colleagues;
            // coarser ones from resolving non-existent neighbor keys to
            // their deepest existing ancestor.
            let mut u = vec![b];
            // W list filled during the same downward recursion.
            let mut w = Vec::new();
            for nk in key.neighbors() {
                match find(&nk) {
                    Some(nb) => collect_adjacent_descendants(tree, b, nb, &mut u, &mut w),
                    None => {
                        let anc = deepest_ancestor(&nk);
                        let anc_nd = &tree.nodes[anc as usize];
                        if anc_nd.is_leaf() && anc_nd.key.is_adjacent(&key) {
                            u.push(anc);
                        }
                    }
                }
            }
            u.sort_unstable();
            u.dedup();
            lists.u[b as usize] = u;
            lists.w[b as usize] = w;
        }
    }

    // X list by duality: A ∈ X(B) ⇔ B ∈ W(A).
    for a in 0..n as u32 {
        // Take the W list out to appease the borrow checker.
        let w = std::mem::take(&mut lists.w[a as usize]);
        for &b in &w {
            lists.x[b as usize].push(a);
        }
        lists.w[a as usize] = w;
    }

    lists
}

/// Recurse into colleague `nb` of leaf `b`: adjacent leaves go to `u`,
/// adjacent internals are recursed, and the first non-adjacent descendant
/// goes to `w` (its subtree is covered by its equivalent density).
fn collect_adjacent_descendants(
    tree: &Octree,
    b: u32,
    current: u32,
    u: &mut Vec<u32>,
    w: &mut Vec<u32>,
) {
    let bkey = tree.nodes[b as usize].key;
    let cur = &tree.nodes[current as usize];
    if !bkey.is_adjacent(&cur.key) {
        w.push(current);
        return;
    }
    if cur.is_leaf() {
        u.push(current);
        return;
    }
    for &c in &cur.children {
        if c != NO_NODE {
            collect_adjacent_descendants(tree, b, c, u, w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::morton::MAX_LEVEL;

    fn cloud(n: usize, seed: u64) -> Vec<[f64; 3]> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                std::array::from_fn(|_| {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
                })
            })
            .collect()
    }

    /// Clustered cloud producing strong level jumps (exercises W/X).
    fn clustered(n: usize) -> Vec<[f64; 3]> {
        let mut pts = cloud(n / 2, 11);
        for p in cloud(n / 2, 22) {
            pts.push([0.9 + p[0] * 0.05, 0.9 + p[1] * 0.05, 0.9 + p[2] * 0.05]);
        }
        pts
    }

    #[test]
    fn u_contains_self_and_is_leaves() {
        let pts = cloud(2000, 3);
        let t = Octree::build(&pts, 30, MAX_LEVEL);
        let l = build_lists(&t);
        for b in t.leaves() {
            assert!(l.u[b as usize].contains(&b), "U must contain the leaf itself");
            for &m in &l.u[b as usize] {
                assert!(t.nodes[m as usize].is_leaf(), "U members are leaves");
                assert!(t.nodes[m as usize]
                    .key
                    .is_adjacent(&t.nodes[b as usize].key));
            }
        }
        // Non-leaves have empty U and W.
        for (i, nd) in t.nodes.iter().enumerate() {
            if !nd.is_leaf() {
                assert!(l.u[i].is_empty());
                assert!(l.w[i].is_empty());
            }
        }
    }

    #[test]
    fn u_is_symmetric_between_leaves() {
        let t = Octree::build(&clustered(3000), 25, MAX_LEVEL);
        let l = build_lists(&t);
        for b in t.leaves() {
            for &m in &l.u[b as usize] {
                assert!(
                    l.u[m as usize].contains(&b),
                    "U symmetry violated between {b} and {m}"
                );
            }
        }
    }

    #[test]
    fn v_members_same_level_not_adjacent() {
        let t = Octree::build(&cloud(4000, 5), 30, MAX_LEVEL);
        let l = build_lists(&t);
        for (b, vs) in l.v.iter().enumerate() {
            let bk = t.nodes[b].key;
            for &m in vs {
                let mk = t.nodes[m as usize].key;
                assert_eq!(bk.level, mk.level, "V members share the level");
                assert!(!bk.is_adjacent(&mk), "V members are separated");
                // Parents are adjacent (they are colleagues).
                assert!(bk
                    .parent()
                    .unwrap()
                    .is_adjacent(&mk.parent().unwrap()));
                // Offset within the 316-direction stencil.
                let off = bk.offset_to(&mk);
                assert!(off.iter().all(|&o| (-3..=3).contains(&o)));
                assert!(off.iter().any(|&o| o.abs() > 1));
            }
        }
    }

    #[test]
    fn v_is_symmetric() {
        let t = Octree::build(&clustered(3000), 20, MAX_LEVEL);
        let l = build_lists(&t);
        for (b, vs) in l.v.iter().enumerate() {
            for &m in vs {
                assert!(l.v[m as usize].contains(&(b as u32)), "V symmetry");
            }
        }
    }

    #[test]
    fn w_x_duality_and_shape() {
        let t = Octree::build(&clustered(4000), 15, MAX_LEVEL);
        let l = build_lists(&t);
        let mut any_w = false;
        for b in 0..t.num_nodes() as u32 {
            let bk = t.nodes[b as usize].key;
            for &m in &l.w[b as usize] {
                any_w = true;
                let mk = t.nodes[m as usize].key;
                assert!(mk.level > bk.level, "W members are finer");
                assert!(!bk.is_adjacent(&mk));
                assert!(bk.is_adjacent(&t.nodes[t.nodes[m as usize].parent as usize].key));
                // Duality with X.
                assert!(l.x[m as usize].contains(&b));
            }
            for &m in &l.x[b as usize] {
                let mk = t.nodes[m as usize].key;
                assert!(t.nodes[m as usize].is_leaf(), "X members are leaves");
                assert!(mk.level < bk.level, "X members are coarser");
                assert!(l.w[m as usize].contains(&b));
            }
        }
        assert!(any_w, "clustered cloud should produce nonempty W lists");
    }

    #[test]
    fn sorted_key_index_agrees_with_hash_map() {
        let t = Octree::build(&clustered(2500), 18, MAX_LEVEL);
        let idx = SortedKeyIndex::new(&t);
        for nd in &t.nodes {
            assert_eq!(idx.find(&nd.key), t.find(&nd.key));
        }
        // Misses: siblings of leaves that do not exist, and over-deep keys.
        for i in t.leaves().take(50) {
            let k = t.nodes[i as usize].key;
            if k.level < MAX_LEVEL {
                let child = k.child(0);
                assert_eq!(idx.find(&child), t.find(&child));
            }
            for nk in k.neighbors() {
                assert_eq!(idx.find(&nk), t.find(&nk));
            }
        }
    }

    #[test]
    fn sorted_list_derivation_is_bitwise_identical() {
        for pts in [cloud(3000, 17), clustered(3000), vec![[0.3, 0.3, 0.3]; 64]] {
            let t = Octree::build(&pts, 22, MAX_LEVEL.min(6));
            assert_eq!(
                build_lists(&t),
                build_lists_sorted(&t),
                "sorted-key list derivation must match the hash-map path exactly"
            );
        }
    }

    /// The fundamental covering property: for every (target leaf T, source
    /// leaf S) pair, the sources of S reach the targets of T through
    /// exactly one mechanism.
    #[test]
    fn every_leaf_pair_covered_exactly_once() {
        let t = Octree::build(&clustered(1200), 12, MAX_LEVEL);
        let l = build_lists(&t);
        let leaves: Vec<u32> = t.leaves().collect();
        for &target in &leaves {
            // Ancestor-or-self chain of the target.
            let mut chain = vec![target];
            let mut cur = target;
            while t.nodes[cur as usize].parent != NO_NODE {
                cur = t.nodes[cur as usize].parent;
                chain.push(cur);
            }
            for &source in &leaves {
                let skey = t.nodes[source as usize].key;
                let mut count = 0;
                // 1. dense
                if l.u[target as usize].contains(&source) {
                    count += 1;
                }
                // 2. M2L into any ancestor-or-self of T from a box
                //    containing S.
                for &b in &chain {
                    for &m in &l.v[b as usize] {
                        if t.nodes[m as usize].key.contains(&skey) {
                            count += 1;
                        }
                    }
                    // 4. X: S's own sources onto b's check surface.
                    if l.x[b as usize].contains(&source) {
                        count += 1;
                    }
                }
                // 3. W: equivalent density of a box containing S.
                for &m in &l.w[target as usize] {
                    if t.nodes[m as usize].key.contains(&skey) {
                        count += 1;
                    }
                }
                assert_eq!(
                    count, 1,
                    "pair (T={target}, S={source}) covered {count} times"
                );
            }
        }
    }
}
