//! # kifmm-runtime — in-tree shared-memory parallel runtime
//!
//! A small spawn-join fork/join layer over [`std::thread::scope`] that
//! replaces rayon for the two shapes of data parallelism the FMM needs:
//!
//! * **chunked writes** — a flat output array split into disjoint chunks,
//!   each written by exactly one task ([`par_chunks_mut`],
//!   [`par_chunks2_mut`]);
//! * **indexed reads** — an ordered map over `0..n`
//!   ([`par_map`], [`par_index`], [`par_for_each`]).
//!
//! ## Determinism contract
//!
//! Every helper assigns output element `i` to exactly one task, and that
//! task computes it with the same instruction sequence the serial loop
//! would use. Worker threads race only over *which* index they claim next
//! (an atomic counter), never over the contents of an element, so results
//! are **bit-identical to the serial execution for any thread count** —
//! the property the pool-dispatch evaluation documents and tests.
//!
//! ## Pool model
//!
//! There is no persistent pool: each parallel region spawns workers under
//! `std::thread::scope` and joins them before returning. That keeps
//! borrowed (non-`'static`) closures safe without unsafe lifetime erasure
//! and makes a panicking task propagate out of the call like a serial
//! panic would. Region granularity in the FMM is a whole level or phase,
//! so spawn cost is amortized over milliseconds of work. Thread count
//! comes from `KIFMM_NUM_THREADS` (if set) or the machine's available
//! parallelism.

mod time;

pub use time::thread_cpu_time;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Worker count used by the `par_*` helpers: `KIFMM_NUM_THREADS` if set
/// (minimum 1), else [`std::thread::available_parallelism`].
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var("KIFMM_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Core fork/join loop: claim indices `0..n` off a shared counter with
/// `threads` workers (the caller's thread is one of them), giving each
/// worker one `init()` state for its lifetime.
fn run_pool<S>(
    threads: usize,
    n: usize,
    init: &(impl Fn() -> S + Sync),
    f: &(impl Fn(&mut S, usize) + Sync),
) {
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 || n <= 1 {
        let mut state = init();
        for i in 0..n {
            f(&mut state, i);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    let work = |next: &AtomicUsize| {
        let mut state = init();
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            f(&mut state, i);
        }
    };
    std::thread::scope(|scope| {
        for _ in 1..threads {
            scope.spawn(|| work(&next));
        }
        work(&next);
    });
}

/// Thread-dispatch policy handed to compute engines (notably the FMM pass
/// engine in `kifmm-core`): a caller-visible choice between running every
/// loop inline on the calling thread and fanning out over the worker pool.
///
/// Both policies produce bit-identical results (see the determinism
/// contract above); the distributed driver uses [`Dispatch::Serial`] so
/// per-rank work stays on the rank's own thread, while the shared-memory
/// driver uses [`Dispatch::Pool`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Dispatch {
    /// Run all engine loops inline on the calling thread.
    #[default]
    Serial,
    /// Fan engine loops out over [`num_threads`] workers.
    Pool,
}

impl Dispatch {
    /// Worker count this policy resolves to (1 for `Serial`).
    pub fn threads(self) -> usize {
        match self {
            Dispatch::Serial => 1,
            Dispatch::Pool => num_threads(),
        }
    }
}

/// Run `f(i)` for every `i` in `0..n`, in parallel.
pub fn par_index(n: usize, f: impl Fn(usize) + Sync) {
    run_pool(num_threads(), n, &|| (), &|(), i| f(i));
}

/// [`par_index`] with a per-worker scratch state: `init()` runs once per
/// worker thread, and `f` receives that worker's `&mut S` (the rayon
/// `for_each_init` pattern, used for reusable FFT accumulators).
pub fn par_index_init<S>(n: usize, init: impl Fn() -> S + Sync, f: impl Fn(&mut S, usize) + Sync) {
    run_pool(num_threads(), n, &init, &f);
}

/// Raw pointer that may cross thread boundaries. Safety rests on the
/// index-claiming discipline of [`run_pool`]: each index is handed to
/// exactly one task, and tasks only touch the disjoint region derived
/// from their index.
struct SyncPtr<T>(*mut T);
unsafe impl<T> Sync for SyncPtr<T> {}

impl<T> SyncPtr<T> {
    /// Accessor (rather than field access) so closures capture the whole
    /// `Sync` wrapper under edition-2021 disjoint capture, not the raw
    /// pointer field.
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Split `data` into chunks of `size` (last one may be short) and run
/// `f(chunk_index, chunk)` on each in parallel. Equivalent to rayon's
/// `par_chunks_mut(size).enumerate().for_each(...)`.
pub fn par_chunks_mut<T: Send>(data: &mut [T], size: usize, f: impl Fn(usize, &mut [T]) + Sync) {
    par_chunks_mut_init(data, size, || (), |(), i, c| f(i, c));
}

/// [`par_chunks_mut`] with an explicit worker count (1 runs inline on the
/// calling thread); used with [`Dispatch::threads`].
pub fn par_chunks_mut_with<T: Send>(
    threads: usize,
    data: &mut [T],
    size: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    par_chunks_mut_init_with(threads, data, size, || (), |(), i, c| f(i, c));
}

/// [`par_chunks_mut`] with a per-worker scratch state (see
/// [`par_index_init`]).
pub fn par_chunks_mut_init<T: Send, S>(
    data: &mut [T],
    size: usize,
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, usize, &mut [T]) + Sync,
) {
    par_chunks_mut_init_with(num_threads(), data, size, init, f);
}

/// [`par_chunks_mut_init`] with an explicit worker count (1 runs inline on
/// the calling thread); used with [`Dispatch::threads`].
pub fn par_chunks_mut_init_with<T: Send, S>(
    threads: usize,
    data: &mut [T],
    size: usize,
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, usize, &mut [T]) + Sync,
) {
    assert!(size > 0, "chunk size must be positive");
    let len = data.len();
    let base = SyncPtr(data.as_mut_ptr());
    run_pool(threads, len.div_ceil(size), &init, &|state, i| {
        let start = i * size;
        let end = (start + size).min(len);
        // Safety: chunk i covers [i*size, min((i+1)*size, len)); chunks are
        // pairwise disjoint and each index is claimed by exactly one task.
        let chunk = unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
        f(state, i, chunk);
    });
}

/// Chunk two mutable slices in lockstep and run `f(i, a_chunk, b_chunk)`
/// on each pair in parallel (rayon's zipped `par_chunks_mut`). Both
/// slices must split into the same number of chunks.
pub fn par_chunks2_mut<A: Send, B: Send>(
    a: &mut [A],
    size_a: usize,
    b: &mut [B],
    size_b: usize,
    f: impl Fn(usize, &mut [A], &mut [B]) + Sync,
) {
    assert!(size_a > 0 && size_b > 0, "chunk sizes must be positive");
    let (la, lb) = (a.len(), b.len());
    let n = la.div_ceil(size_a);
    assert_eq!(n, lb.div_ceil(size_b), "slices must chunk into the same task count");
    let pa = SyncPtr(a.as_mut_ptr());
    let pb = SyncPtr(b.as_mut_ptr());
    run_pool(num_threads(), n, &|| (), &|(), i| {
        let (sa, sb) = (i * size_a, i * size_b);
        let (ea, eb) = ((sa + size_a).min(la), (sb + size_b).min(lb));
        // Safety: as in `par_chunks_mut_init` — disjoint chunks, one task
        // per index, for both slices.
        let ca = unsafe { std::slice::from_raw_parts_mut(pa.get().add(sa), ea - sa) };
        let cb = unsafe { std::slice::from_raw_parts_mut(pb.get().add(sb), eb - sb) };
        f(i, ca, cb);
    });
}

/// Compute `f(i)` for `0..n` in parallel and return the results in index
/// order (rayon's indexed `par_iter().map().collect()`).
pub fn par_map<O: Send>(n: usize, f: impl Fn(usize) -> O + Sync) -> Vec<O> {
    let mut out: Vec<Option<O>> = std::iter::repeat_with(|| None).take(n).collect();
    par_chunks_mut(&mut out, 1, |i, slot| slot[0] = Some(f(i)));
    out.into_iter().map(|o| o.expect("every slot filled")).collect()
}

/// Consume `items`, running `f(i, item)` on each in parallel (rayon's
/// `into_par_iter().for_each`, for items that are not `Clone` — e.g.
/// disjoint `&mut` sub-slices).
pub fn par_for_each<I: Send>(items: Vec<I>, f: impl Fn(usize, I) + Sync) {
    par_for_each_with(num_threads(), items, f)
}

/// [`par_for_each`] with an explicit worker count (1 runs inline on the
/// calling thread); used with [`Dispatch::threads`].
pub fn par_for_each_with<I: Send>(threads: usize, items: Vec<I>, f: impl Fn(usize, I) + Sync) {
    let mut items: Vec<Option<I>> = items.into_iter().map(Some).collect();
    par_chunks_mut_init_with(threads, &mut items, 1, || (), |(), i, slot| {
        f(i, slot[0].take().expect("item taken once"))
    });
}

/// Below this length the parallel sort runs `sort_unstable` inline:
/// spawn-join overhead dominates any split win on small arrays.
const PAR_SORT_CUTOFF: usize = 1 << 13;

/// Parallel unstable sort: split into one run per worker, `sort_unstable`
/// each run in parallel, then merge runs pairwise. Like `sort_unstable`,
/// the relative order of elements that compare equal is unspecified; the
/// element *multiset* is exactly preserved for any thread count. Built for
/// the Morton-code sorts of the tree layer, where keys are `(code, index)`
/// pairs with a unique total order — there the output is the one sorted
/// sequence regardless of thread count.
pub fn par_sort_unstable<T: Ord + Copy + Send>(data: &mut [T]) {
    let threads = num_threads();
    if threads <= 1 || data.len() < PAR_SORT_CUTOFF {
        data.sort_unstable();
        return;
    }
    let n = data.len();
    let runs = threads.min(n);
    let size = n.div_ceil(runs);
    par_chunks_mut(data, size, |_, chunk| chunk.sort_unstable());
    // Merge passes: runs are [i*size, min((i+1)*size, n)); merge adjacent
    // pairs until one run remains. The merges are memory-bound single
    // passes, so they stay serial — the O(n log n) work above is what
    // parallelizes.
    let mut bounds: Vec<usize> = (0..runs).map(|i| i * size).collect();
    bounds.push(n);
    let mut scratch: Vec<T> = Vec::with_capacity(n);
    while bounds.len() > 2 {
        let mut next = Vec::with_capacity(bounds.len() / 2 + 1);
        let mut k = 0;
        while k + 2 < bounds.len() {
            merge_sorted(&data[bounds[k]..bounds[k + 1]], &data[bounds[k + 1]..bounds[k + 2]], &mut scratch);
            data[bounds[k]..bounds[k + 2]].copy_from_slice(&scratch);
            next.push(bounds[k]);
            k += 2;
        }
        // An unpaired trailing run carries over to the next pass.
        while k < bounds.len() - 1 {
            next.push(bounds[k]);
            k += 1;
        }
        next.push(n);
        bounds = next;
    }
}

/// Merge two sorted slices into `out` (cleared first), taking from `a` on
/// ties.
fn merge_sorted<T: Ord + Copy>(a: &[T], b: &[T], out: &mut Vec<T>) {
    out.clear();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

/// A lock-free fixed-capacity object pool.
///
/// `checkout()` pops any pooled object (or `None` when the pool is
/// drained — the caller then constructs a fresh one); `checkin(obj)`
/// returns an object to the pool, dropping it when every slot is
/// occupied. Both operations are wait-free scans over an array of
/// `AtomicPtr` slots: a checkout `swap`s a slot to null, a checkin
/// `compare_exchange`s a null slot to the object, so no slot can hand
/// the same object to two callers and there is no ABA hazard (a slot
/// holds either null or a uniquely-owned pointer).
///
/// Built for sharing `EngineWorkspace`-style scratch between session
/// threads: many concurrent evaluations check scratch out, run, and
/// check it back in without serializing on a mutex.
pub struct Freelist<T> {
    slots: Box<[std::sync::atomic::AtomicPtr<T>]>,
}

impl<T> Freelist<T> {
    /// An empty pool retaining at most `capacity` objects (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Freelist {
            slots: (0..capacity)
                .map(|_| std::sync::atomic::AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
        }
    }

    /// Pop any pooled object; `None` when the pool is empty.
    pub fn checkout(&self) -> Option<Box<T>> {
        for slot in self.slots.iter() {
            let p = slot.swap(std::ptr::null_mut(), atomic::Ordering::AcqRel);
            if !p.is_null() {
                // Owned by this thread now: the swap made the slot null,
                // so no other checkout can observe `p`.
                return Some(unsafe { Box::from_raw(p) });
            }
        }
        None
    }

    /// Return an object to the pool; drops it if every slot is full.
    pub fn checkin(&self, obj: Box<T>) {
        let p = Box::into_raw(obj);
        for slot in self.slots.iter() {
            if slot
                .compare_exchange(
                    std::ptr::null_mut(),
                    p,
                    atomic::Ordering::AcqRel,
                    atomic::Ordering::Relaxed,
                )
                .is_ok()
            {
                return;
            }
        }
        // Pool full: reclaim and drop.
        drop(unsafe { Box::from_raw(p) });
    }

    /// Number of objects currently pooled (racy snapshot, for tests).
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| !s.load(atomic::Ordering::Acquire).is_null()).count()
    }

    /// True when no object is pooled (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for Freelist<T> {
    fn drop(&mut self) {
        for slot in self.slots.iter() {
            let p = slot.swap(std::ptr::null_mut(), atomic::Ordering::AcqRel);
            if !p.is_null() {
                drop(unsafe { Box::from_raw(p) });
            }
        }
    }
}

// The pool owns its `T`s; moving/sharing the pool across threads is
// moving/sharing those owned objects.
unsafe impl<T: Send> Send for Freelist<T> {}
unsafe impl<T: Send> Sync for Freelist<T> {}

use std::sync::atomic;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Serial reference for the chunked-sum workload used below.
    fn serial_fill(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * 0.1).sin() + (i as f64).sqrt()).collect()
    }

    #[test]
    fn chunks_bit_identical_to_serial_any_thread_count() {
        let n = 1037;
        let expect = serial_fill(n);
        for threads in [1, 2, 3, 8, 64] {
            let mut out = vec![0.0f64; n];
            let len = out.len();
            // Exercise the explicit-thread path through run_pool.
            let base = SyncPtr(out.as_mut_ptr());
            run_pool(threads, len.div_ceil(16), &|| (), &|(), c| {
                let start = c * 16;
                let end = (start + 16).min(len);
                let chunk = unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
                for (j, v) in chunk.iter_mut().enumerate() {
                    let i = start + j;
                    *v = (i as f64 * 0.1).sin() + (i as f64).sqrt();
                }
            });
            assert_eq!(out, expect, "threads = {threads}");
        }
    }

    #[test]
    fn par_chunks_mut_covers_everything_once() {
        let mut data = vec![0u32; 503];
        par_chunks_mut(&mut data, 7, |_, c| {
            for v in c {
                *v += 1;
            }
        });
        assert!(data.iter().all(|&v| v == 1));
    }

    #[test]
    fn par_chunks_mut_ragged_tail_and_empty() {
        let mut data = vec![0usize; 10];
        let mut sizes = Vec::new();
        let sizes_ref = std::sync::Mutex::new(&mut sizes);
        par_chunks_mut(&mut data, 4, |i, c| sizes_ref.lock().unwrap().push((i, c.len())));
        sizes.sort_unstable();
        assert_eq!(sizes, vec![(0, 4), (1, 4), (2, 2)]);
        let mut empty: Vec<f64> = Vec::new();
        par_chunks_mut(&mut empty, 4, |_, _| panic!("no chunks on empty input"));
    }

    #[test]
    fn par_chunks2_mut_pairs_line_up() {
        let mut a = vec![0usize; 12];
        let mut b = vec![0usize; 6];
        par_chunks2_mut(&mut a, 4, &mut b, 2, |i, ca, cb| {
            for v in ca.iter_mut() {
                *v = i + 1;
            }
            for v in cb.iter_mut() {
                *v = 10 * (i + 1);
            }
        });
        assert_eq!(a, vec![1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3]);
        assert_eq!(b, vec![10, 10, 20, 20, 30, 30]);
    }

    #[test]
    #[should_panic(expected = "same task count")]
    fn par_chunks2_mut_rejects_mismatch() {
        let (mut a, mut b) = (vec![0; 8], vec![0; 8]);
        par_chunks2_mut(&mut a, 4, &mut b, 3, |_, _: &mut [i32], _: &mut [i32]| {});
    }

    #[test]
    fn par_map_preserves_order() {
        let out = par_map(1000, |i| i * i);
        assert_eq!(out, (0..1000).map(|i| i * i).collect::<Vec<_>>());
        assert!(par_map(0, |i| i).is_empty());
    }

    #[test]
    fn par_for_each_consumes_disjoint_mut_slices() {
        let mut data = vec![0u8; 9];
        let mut parts: Vec<&mut [u8]> = Vec::new();
        let mut rest: &mut [u8] = &mut data;
        for _ in 0..3 {
            let (head, tail) = std::mem::take(&mut rest).split_at_mut(3);
            parts.push(head);
            rest = tail;
        }
        par_for_each(parts, |i, part| part.fill(i as u8 + 1));
        assert_eq!(data, vec![1, 1, 1, 2, 2, 2, 3, 3, 3]);
    }

    #[test]
    fn init_state_is_per_worker_and_reused() {
        // Each worker's state counts its own tasks; the total must be n.
        let total = AtomicU64::new(0);
        struct Tally<'a>(u64, &'a AtomicU64);
        impl Drop for Tally<'_> {
            fn drop(&mut self) {
                self.1.fetch_add(self.0, Ordering::Relaxed);
            }
        }
        par_index_init(257, || Tally(0, &total), |t, _| t.0 += 1);
        assert_eq!(total.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn task_panic_propagates() {
        let hit = std::panic::catch_unwind(|| {
            par_index(100, |i| {
                if i == 37 {
                    panic!("task 37 failed");
                }
            });
        });
        assert!(hit.is_err(), "panic in a task must propagate to the caller");
    }

    #[test]
    fn num_threads_is_at_least_one() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn dispatch_thread_counts() {
        assert_eq!(Dispatch::Serial.threads(), 1);
        assert!(Dispatch::Pool.threads() >= 1);
        assert_eq!(Dispatch::default(), Dispatch::Serial);
    }

    #[test]
    fn explicit_thread_variants_match_serial() {
        let n = 533;
        let expect = serial_fill(n);
        for threads in [1, 2, 5, 16] {
            let mut out = vec![0.0f64; n];
            par_chunks_mut_with(threads, &mut out, 13, |c, chunk| {
                for (j, v) in chunk.iter_mut().enumerate() {
                    let i = c * 13 + j;
                    *v = (i as f64 * 0.1).sin() + (i as f64).sqrt();
                }
            });
            assert_eq!(out, expect, "threads = {threads}");
        }
        let mut data = vec![0u8; 9];
        let mut parts: Vec<&mut [u8]> = Vec::new();
        let mut rest: &mut [u8] = &mut data;
        for _ in 0..3 {
            let (head, tail) = std::mem::take(&mut rest).split_at_mut(3);
            parts.push(head);
            rest = tail;
        }
        par_for_each_with(2, parts, |i, part| part.fill(i as u8 + 1));
        assert_eq!(data, vec![1, 1, 1, 2, 2, 2, 3, 3, 3]);
    }

    #[test]
    fn freelist_checkout_checkin_roundtrip() {
        let pool: Freelist<Vec<u64>> = Freelist::new(4);
        assert!(pool.checkout().is_none(), "fresh pool is empty");
        pool.checkin(Box::new(vec![1, 2, 3]));
        pool.checkin(Box::new(vec![4]));
        assert_eq!(pool.len(), 2);
        let a = pool.checkout().expect("pooled object");
        let b = pool.checkout().expect("pooled object");
        assert!(pool.checkout().is_none());
        let mut got = vec![a.len(), b.len()];
        got.sort_unstable();
        assert_eq!(got, vec![1, 3]);
    }

    #[test]
    fn freelist_drops_overflow_and_remaining() {
        struct Count<'a>(&'a AtomicU64);
        impl Drop for Count<'_> {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let drops = AtomicU64::new(0);
        {
            let pool: Freelist<Count> = Freelist::new(2);
            pool.checkin(Box::new(Count(&drops)));
            pool.checkin(Box::new(Count(&drops)));
            pool.checkin(Box::new(Count(&drops))); // overflow: dropped now
            assert_eq!(drops.load(Ordering::Relaxed), 1);
        } // pool drop frees the two retained objects
        assert_eq!(drops.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn freelist_concurrent_unique_ownership() {
        // 8 threads hammer checkout/checkin; every checked-out object must
        // be exclusively owned (no slot may hand one object out twice).
        let pool: Freelist<AtomicU64> = Freelist::new(4);
        for _ in 0..4 {
            pool.checkin(Box::new(AtomicU64::new(0)));
        }
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..2000 {
                        if let Some(obj) = pool.checkout() {
                            let claimed = obj.fetch_add(1, Ordering::SeqCst);
                            assert_eq!(claimed, 0, "object handed to two owners");
                            obj.fetch_sub(1, Ordering::SeqCst);
                            pool.checkin(obj);
                        }
                    }
                });
            }
        });
        assert!(pool.len() <= 4);
    }

    #[test]
    fn par_sort_matches_std_on_duplicates() {
        // xorshift-ish deterministic fill with heavy duplication.
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut data: Vec<u64> = (0..100_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % 997
            })
            .collect();
        let mut expect = data.clone();
        expect.sort_unstable();
        par_sort_unstable(&mut data);
        assert_eq!(data, expect);
    }

    #[test]
    fn par_sort_unique_pairs_and_small_inputs() {
        let mut x = 1u64;
        let mut pairs: Vec<(u64, u32)> = (0..50_000u32)
            .map(|i| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (x % 512, i)
            })
            .collect();
        let mut expect = pairs.clone();
        expect.sort_unstable();
        par_sort_unstable(&mut pairs);
        assert_eq!(pairs, expect, "(code, index) pairs have a unique sorted order");
        for n in [0usize, 1, 2, 3, 100] {
            let mut small: Vec<u64> = (0..n as u64).rev().collect();
            par_sort_unstable(&mut small);
            assert_eq!(small, (0..n as u64).collect::<Vec<_>>());
        }
    }

    #[test]
    fn merge_sorted_takes_left_on_ties() {
        let mut out = Vec::new();
        merge_sorted(&[(1, 'a'), (2, 'a')], &[(1, 'b'), (3, 'b')], &mut out);
        assert_eq!(out, vec![(1, 'a'), (1, 'b'), (2, 'a'), (3, 'b')]);
    }

    #[test]
    fn thread_cpu_time_advances_and_is_monotonic() {
        let t0 = thread_cpu_time();
        // Burn a little CPU; volatile-ish accumulation so it isn't elided.
        let mut acc = 0.0f64;
        for i in 0..2_000_000u64 {
            acc += (i as f64).sqrt();
        }
        std::hint::black_box(acc);
        let t1 = thread_cpu_time();
        assert!(t1 >= t0, "thread CPU clock went backwards: {t0} -> {t1}");
        assert!(t1 - t0 < 60.0, "implausible CPU time delta: {}", t1 - t0);
    }
}
