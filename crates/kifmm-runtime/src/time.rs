//! Thread CPU clock without libc.
//!
//! The bench harness runs many virtual MPI ranks as threads on a few
//! cores; per-thread CPU time (`CLOCK_THREAD_CPUTIME_ID`) stays meaningful
//! under that oversubscription while wall time would charge a rank for
//! time it spent descheduled. The hermetic build has no libc binding, so
//! on Linux the clock is read with a raw `clock_gettime` syscall; other
//! platforms fall back to a process-wide monotonic wall clock (the two
//! agree on a dedicated core, which is the only place non-Linux numbers
//! would be quoted anyway).

/// Seconds of CPU time consumed by the calling thread.
#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
pub fn thread_cpu_time() -> f64 {
    const CLOCK_THREAD_CPUTIME_ID: usize = 3;
    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }
    let mut ts = Timespec { tv_sec: 0, tv_nsec: 0 };
    let ret: isize;
    // Safety: clock_gettime only writes the timespec we hand it; the
    // clock id is valid on all Linux kernels this crate supports.
    #[cfg(target_arch = "x86_64")]
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") 228isize => ret, // __NR_clock_gettime
            in("rdi") CLOCK_THREAD_CPUTIME_ID,
            in("rsi") &mut ts as *mut Timespec,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    #[cfg(target_arch = "aarch64")]
    unsafe {
        std::arch::asm!(
            "svc #0",
            inlateout("x0") CLOCK_THREAD_CPUTIME_ID as isize => ret,
            in("x1") &mut ts as *mut Timespec,
            in("x8") 113isize, // __NR_clock_gettime
            options(nostack),
        );
    }
    debug_assert_eq!(ret, 0, "clock_gettime(CLOCK_THREAD_CPUTIME_ID) failed");
    ts.tv_sec as f64 + ts.tv_nsec as f64 * 1e-9
}

/// Seconds of CPU time consumed by the calling thread (wall-clock
/// fallback for platforms without the raw-syscall binding).
#[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
pub fn thread_cpu_time() -> f64 {
    use std::sync::OnceLock;
    use std::time::Instant;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_secs_f64()
}
