//! # kifmm — a parallel kernel-independent fast multipole method
//!
//! A from-scratch Rust reproduction of **"A New Parallel Kernel-Independent
//! Fast Multipole Method"** (Ying, Biros, Zorin & Langston, SC 2003):
//! an `O(N)` evaluator for N-body potentials of non-oscillatory elliptic
//! kernels that needs *only kernel evaluations* — no analytic expansions —
//! plus the paper's MPI-style parallelization with overlapped computation
//! and communication.
//!
//! ## Quick start
//!
//! ```
//! use kifmm::{Fmm, Laplace};
//!
//! // Sample points and unit densities.
//! let points = kifmm::geom::uniform_cube(2000, 7);
//! let densities = vec![1.0; points.len()];
//!
//! // Build the tree + translation operators once, evaluate repeatedly.
//! let fmm = Fmm::builder(Laplace).points(&points).build();
//! let report = fmm.eval(&densities);
//! assert_eq!(report.potentials.len(), points.len());
//! assert!(report.stats.total_flops() > 0);
//! ```
//!
//! Under the hood `build()` produces an immutable, shareable [`Plan`]
//! (tree + interaction lists + precomputed operators) wrapped in a
//! [`Session`] (pooled evaluation scratch). Long-running services keep a
//! [`PlanCache`] keyed on (kernel, order, M2L mode, geometry) so repeated
//! geometries skip setup entirely, and batch `k` charge vectors through
//! one sweep with [`Evaluator::eval_many`].
//!
//! Attach a [`Tracer`] via [`FmmBuilder::trace`] to capture per-rank span
//! timelines, byte/message counters, and a Perfetto-loadable chrome-trace
//! export — see the [`trace`] module and DESIGN.md's "Observability".
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`kernels`] | [`Laplace`], [`ModifiedLaplace`], [`Stokes`], the [`Kernel`] trait |
//! | [`core`] | [`Fmm`], surfaces, translation operators, FFT M2L, phase stats |
//! | [`tree`] | Morton keys, adaptive octrees, U/V/W/X lists, partitioning |
//! | [`parallel`] | [`ParallelFmm`]: the distributed driver of paper §3 |
//! | [`mpi`] | the in-process message-passing substrate |
//! | [`solver`] | GMRES and FMM-backed boundary integral operators |
//! | [`geom`] | the paper's particle distributions (512 spheres, corners) |
//! | [`linalg`], [`fft`] | the numerical substrates (SVD/pinv, mixed-radix FFT) |
//! | [`trace`] | spans, counters, chrome-trace export, `BENCH_*.json` summaries |

pub use kifmm_core as core;
pub use kifmm_fft as fft;
pub use kifmm_geom as geom;
pub use kifmm_kernels as kernels;
pub use kifmm_linalg as linalg;
pub use kifmm_mpi as mpi;
pub use kifmm_parallel as parallel;
pub use kifmm_runtime as runtime;
pub use kifmm_solver as solver;
pub use kifmm_trace as trace;
pub use kifmm_tree as tree;

pub use kifmm_core::{
    direct_eval, direct_eval_grad, direct_eval_grad_src_trg, direct_eval_src_trg, geometry_hash,
    kernel_name_hash, rel_l2_error, BuildError,
    EvalReport, Evaluator, Fmm, FmmBuilder, FmmOptions, M2lChoice, M2lMode, OutputSpec, Phase,
    PhaseStats, Plan, PlanCache, PlanKey, Session, TreeBuild, UpdateError, PHASES, PHASE_NAMES,
};
pub use kifmm_kernels::{
    BoxedKernel, CustomKernel, DynKernel, Gaussian, Kelvin, Kernel, Laplace, ModifiedLaplace,
    Point3, Stokes,
};
pub use kifmm_mpi::PeerTraffic;
pub use kifmm_parallel::{BoundParallelFmm, BuildParallel, ParallelFmm};
pub use kifmm_solver::{gmres, GmresOptions, SingleLayerOperator, SurfaceQuadrature};
pub use kifmm_trace::{BenchSummary, Counter, Tracer};
