//! Property sweep for the tentpole equivalence gate of the sample-sort
//! tree build: for random point distributions (uniform, clustered,
//! degenerate plane/line, duplicate-heavy) scattered across random rank
//! counts by random ownership strategies, the [`TreeBuild::SampleSort`]
//! build, the [`TreeBuild::Paper`] per-level-Allreduce build, and the
//! serial [`Octree::build`] must produce bitwise-identical structure:
//! the same node array, the same global counts, and — between the two
//! distributed algorithms — the same globally sorted point order.
//!
//! The serial comparison only holds when every point is inside the
//! distributed domain *and* the domains match; the distributed build
//! computes its bounding cube by Allreduce over exactly the same points,
//! so it does. What the sweep is really hunting is splitter pathologies:
//! duplicate Morton keys straddling rank boundaries, empty ranks, one
//! rank hoarding everything, or clusters so tight that whole subtrees
//! live on one rank while the others see none of it.

use kifmm_mpi::run;
use kifmm_parallel::build_distributed_tree_with;
use kifmm_testkit::{check, Gen};
use kifmm_tree::{MortonKey, Octree, TreeBuild, MAX_LEVEL};
use std::sync::Arc;

/// Random point cloud of one of four shapes (uniform cube, tight
/// cluster + background, degenerate plane/line, duplicate-heavy).
fn random_points(g: &mut Gen) -> Vec<[f64; 3]> {
    let n = g.usize(40, 700);
    let shape = g.usize(0, 4);
    let mut pts = Vec::with_capacity(n);
    match shape {
        // Uniform cube.
        0 => {
            for _ in 0..n {
                pts.push([g.f64(0.0, 1.0), g.f64(0.0, 1.0), g.f64(0.0, 1.0)]);
            }
        }
        // Tight cluster (forces deep refinement) over a sparse background.
        1 => {
            let c = [g.f64(0.2, 0.8), g.f64(0.2, 0.8), g.f64(0.2, 0.8)];
            let w = g.f64(1e-5, 1e-2);
            for i in 0..n {
                if i % 4 == 0 {
                    pts.push([g.f64(0.0, 1.0), g.f64(0.0, 1.0), g.f64(0.0, 1.0)]);
                } else {
                    pts.push([
                        c[0] + g.f64(-w, w),
                        c[1] + g.f64(-w, w),
                        c[2] + g.f64(-w, w),
                    ]);
                }
            }
        }
        // Degenerate: all points on an axis-aligned plane or line.
        2 => {
            let fixed = g.f64(0.0, 1.0);
            let line = g.usize(0, 2) == 0;
            for _ in 0..n {
                let (a, b) = (g.f64(0.0, 1.0), g.f64(0.0, 1.0));
                pts.push(if line { [a, fixed, fixed] } else { [a, b, fixed] });
            }
        }
        // Duplicate-heavy: few distinct sites, many copies each — the
        // worst case for splitter selection (equal keys must never
        // straddle a rank boundary).
        _ => {
            let sites = g.usize(1, 8);
            let base: Vec<[f64; 3]> = (0..sites)
                .map(|_| [g.f64(0.0, 1.0), g.f64(0.0, 1.0), g.f64(0.0, 1.0)])
                .collect();
            for i in 0..n {
                pts.push(base[i % sites]);
            }
        }
    }
    pts
}

/// Scatter `all` across `ranks` by one of four ownership strategies.
fn random_split(g: &mut Gen, all: &[[f64; 3]], ranks: usize) -> Vec<Vec<[f64; 3]>> {
    let mut chunks = vec![Vec::new(); ranks];
    match g.usize(0, 4) {
        // Contiguous equal chunks.
        0 => {
            for (i, &p) in all.iter().enumerate() {
                chunks[i * ranks / all.len().max(1)].push(p);
            }
        }
        // Round-robin.
        1 => {
            for (i, &p) in all.iter().enumerate() {
                chunks[i % ranks].push(p);
            }
        }
        // One rank hoards everything; the rest start empty.
        2 => {
            let hoarder = g.usize(0, ranks);
            chunks[hoarder].extend_from_slice(all);
        }
        // Independent random owner per point (some ranks may be empty).
        _ => {
            for &p in all {
                let r = g.usize(0, ranks);
                chunks[r].push(p);
            }
        }
    }
    chunks
}

#[test]
fn sample_sort_paper_and_serial_agree_on_random_inputs() {
    check("tree_equivalence", 24, |g| {
        let all = random_points(g);
        let ranks = [1usize, 2, 4, 8][g.usize(0, 4)];
        let leaf = g.usize(4, 64);
        let max_level = [6u8, MAX_LEVEL][g.usize(0, 2)];
        let chunks = Arc::new(random_split(g, &all, ranks));

        // Serial reference over the union (the distributed domain is the
        // Allreduce bounding cube of the same points, so they coincide).
        let serial = Octree::build(&all, leaf, max_level);
        let serial_keys: Vec<MortonKey> = serial.nodes.iter().map(|n| n.key).collect();
        let serial_counts: Vec<u64> =
            serial.nodes.iter().map(|n| n.num_points() as u64).collect();

        let out = run(ranks, {
            let chunks = chunks.clone();
            move |comm| {
                let local = &chunks[comm.rank()];
                let a = build_distributed_tree_with(
                    comm,
                    local,
                    leaf,
                    max_level,
                    TreeBuild::SampleSort,
                );
                let b =
                    build_distributed_tree_with(comm, local, leaf, max_level, TreeBuild::Paper);
                let keys: Vec<MortonKey> = a.tree.nodes.iter().map(|n| n.key).collect();
                (
                    keys,
                    a.global_counts.clone(),
                    a.tree.structure_eq(&b.tree),
                    a.global_counts == b.global_counts,
                    a.sorted_points == b.sorted_points,
                )
            }
        });
        for (keys, counts, structure_eq, counts_eq, points_eq) in out {
            kifmm_testkit::prop_assert!(
                structure_eq,
                "sample-sort vs paper structure (P={ranks}, n={}, s={leaf})",
                all.len()
            );
            kifmm_testkit::prop_assert!(counts_eq, "sample-sort vs paper global counts");
            kifmm_testkit::prop_assert!(points_eq, "sample-sort vs paper sorted points");
            kifmm_testkit::prop_assert_eq!(keys, serial_keys, "distributed vs serial keys");
            kifmm_testkit::prop_assert_eq!(
                counts,
                serial_counts,
                "distributed vs serial counts"
            );
        }
    });
}
