//! Algorithm 1: owner-coordinated gather/scatter of per-box payloads,
//! coalesced into one packed message per `(phase, peer)` pair.
//!
//! Two payload kinds flow through the same two-step pattern:
//!
//! * **leaf source geometry/densities** (ghost information): contributors
//!   send their local slice to the owner, the owner *concatenates* (in
//!   ascending rank order, so every rank assembles the identical global
//!   list) and scatters to the source users;
//! * **upward equivalent densities**: contributors send their partial
//!   densities, the owner *sums* (the translations are linear in the
//!   sources, so partial equivalents add) and scatters to the equivalent
//!   users.
//!
//! ## Per-peer coalescing
//!
//! The first implementation posted one message *per box* — the
//! many-small-messages anti-pattern: at P8 the comm phase was dominated by
//! per-message overhead, O(boxes) messages when the information content is
//! O(peers). An [`ExchangeRoute`], precomputed once per `(box set, user
//! relation)`, groups boxes by peer; every contributor→owner gather and
//! every owner→user scatter is then exactly **one**
//! [`kifmm_mpi::packet`]-encoded message. Message tags carry
//! `(namespace, salt, 0)` via the checked [`kifmm_mpi::encode_tag`]
//! bitfields — the per-box sub-id is gone from the tag entirely (the box
//! ids travel inside the packet header), which also retires the additive
//! tag arithmetic that could collide across salt namespaces.
//!
//! ## Overlap surface
//!
//! [`ExchangeRoute::begin`] posts all outgoing gather packets (eager,
//! returns immediately) and yields an [`ExchangePlan`] — a poll-driven
//! state machine. [`ExchangePlan::poll`] makes progress without blocking
//! (drain gather packets → combine + scatter once all parts are in → drain
//! scatter packets), so the driver can interleave it between compute
//! stages; [`ExchangePlan::complete`] drives the remainder, parking in
//! [`Comm::wait_any`] instead of spinning. The combine folds contributor
//! parts in ascending rank order with this rank's part produced by the
//! same payload closure, so results are bitwise identical to the per-box
//! path — [`legacy_exchange`] keeps that path alive for equivalence tests.

use crate::ownership::Ownership;
use kifmm_mpi::{decode_f64s, decode_packet, encode_f64s, encode_packet, encode_tag, Comm};
use std::collections::HashMap;

/// Tag namespace of gather (contributor → owner) packets.
pub const NS_GATHER: u64 = 1;
/// Tag namespace of scatter (owner → user) packets.
pub const NS_SCATTER: u64 = 2;

/// How the owner combines contributor payloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Combine {
    /// Concatenate in ascending contributor-rank order (point lists).
    Concat,
    /// Elementwise sum (partial equivalent densities).
    Sum,
    /// Per-RHS concatenation for multi-RHS payloads: every part carries
    /// `k` equal-length RHS-major segments, and the combined payload is,
    /// for each RHS `q`, the ascending-rank concatenation of the
    /// contributors' segment `q` — so the result is again RHS-major.
    /// `ConcatRhs(1)` is exactly [`Combine::Concat`].
    ConcatRhs(usize),
}

/// Fold one contributor part into the accumulator (ascending-rank order is
/// the caller's responsibility). Shared by the coalesced and legacy paths
/// so both produce bitwise-identical combines.
fn combine_fold(acc: Option<Vec<f64>>, part: Vec<f64>, combine: Combine) -> Vec<f64> {
    match (acc, combine) {
        (None, _) => part,
        (Some(mut a), Combine::Concat) => {
            a.extend_from_slice(&part);
            a
        }
        (Some(mut a), Combine::Sum) => {
            assert_eq!(a.len(), part.len(), "partial payload length mismatch");
            for (x, p) in a.iter_mut().zip(part) {
                *x += p;
            }
            a
        }
        (Some(a), Combine::ConcatRhs(k)) => {
            assert!(k >= 1 && a.len() % k == 0 && part.len() % k == 0, "RHS-major payload");
            let (al, pl) = (a.len() / k, part.len() / k);
            let mut out = Vec::with_capacity(a.len() + part.len());
            for q in 0..k {
                out.extend_from_slice(&a[q * al..(q + 1) * al]);
                out.extend_from_slice(&part[q * pl..(q + 1) * pl]);
            }
            out
        }
    }
}

/// Which user relation receives the combined payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UserKind {
    /// U/X-list consumers of global sources.
    Source,
    /// V/W-list consumers of global equivalent densities.
    Equiv,
}

/// Per-peer box lists for one exchange, precomputed at plan time.
///
/// Derived from the (globally identical) ownership masks in the caller's
/// `boxes` order, so the sender's packet entries and the receiver's
/// expectations agree by construction. Box sets and roles are fixed for
/// the lifetime of a [`ParallelFmm`](crate::ParallelFmm); only payloads
/// change between evaluations, so the route is built once and reused.
pub struct ExchangeRoute {
    /// Boxes this rank contributes to, grouped by owning peer (ascending).
    gather_sends: Vec<(usize, Vec<u32>)>,
    /// Boxes this rank owns, grouped by contributing peer (ascending).
    gather_recvs: Vec<(usize, Vec<u32>)>,
    /// Boxes this rank owns, grouped by using peer (ascending).
    scatter_sends: Vec<(usize, Vec<u32>)>,
    /// Boxes this rank uses, grouped by owning peer (ascending).
    scatter_recvs: Vec<(usize, Vec<u32>)>,
    /// Boxes this rank owns, each with its ascending contributor ranks.
    owned: Vec<(u32, Vec<usize>)>,
    /// The subset of owned boxes this rank also uses itself.
    owned_used: Vec<u32>,
}

impl ExchangeRoute {
    /// Group `boxes` by peer for every role this rank plays.
    pub fn build(comm: &Comm, own: &Ownership, boxes: &[u32], users: UserKind) -> ExchangeRoute {
        let me = comm.rank();
        let size = comm.size();
        let mut gs: Vec<Vec<u32>> = vec![Vec::new(); size];
        let mut gr: Vec<Vec<u32>> = vec![Vec::new(); size];
        let mut ss: Vec<Vec<u32>> = vec![Vec::new(); size];
        let mut sr: Vec<Vec<u32>> = vec![Vec::new(); size];
        let mut owned = Vec::new();
        let mut owned_used = Vec::new();
        for &b in boxes {
            let bi = b as usize;
            let owner = own.owner[bi] as usize;
            let me_uses = match users {
                UserKind::Source => own.is_src_user(bi, me),
                UserKind::Equiv => own.is_equiv_user(bi, me),
            };
            if owner == me {
                let contributors = own.contributors(bi);
                for &src in &contributors {
                    if src != me {
                        gr[src].push(b);
                    }
                }
                let user_ranks = match users {
                    UserKind::Source => own.src_users(bi),
                    UserKind::Equiv => own.equiv_users(bi),
                };
                for dst in user_ranks {
                    if dst != me {
                        ss[dst].push(b);
                    }
                }
                if me_uses {
                    owned_used.push(b);
                }
                owned.push((b, contributors));
            } else {
                if own.is_contributor(bi, me) {
                    gs[owner].push(b);
                }
                if me_uses {
                    sr[owner].push(b);
                }
            }
        }
        let compress = |v: Vec<Vec<u32>>| -> Vec<(usize, Vec<u32>)> {
            v.into_iter().enumerate().filter(|(_, l)| !l.is_empty()).collect()
        };
        ExchangeRoute {
            gather_sends: compress(gs),
            gather_recvs: compress(gr),
            scatter_sends: compress(ss),
            scatter_recvs: compress(sr),
            owned,
            owned_used,
        }
    }

    /// Peers this rank sends a gather packet to (one message each).
    pub fn gather_peers(&self) -> usize {
        self.gather_sends.len()
    }

    /// Peers this rank sends a scatter packet to (one message each).
    pub fn scatter_peers(&self) -> usize {
        self.scatter_sends.len()
    }

    /// Total messages this rank sends per exchange: exactly one per
    /// gather peer plus one per scatter peer — O(peers), never O(boxes).
    pub fn messages_out(&self) -> usize {
        self.gather_sends.len() + self.scatter_sends.len()
    }

    /// Boxes whose combined global payload this rank receives from the
    /// exchange (owned-and-used boxes plus every scatter-received box) —
    /// exactly the keys the finished plan's map will hold. Everything the
    /// rank reads *outside* this set is final the moment its local
    /// contribution exists, which is what lets the driver start compute
    /// stages that avoid these boxes before the exchange completes.
    pub fn installed_boxes(&self) -> impl Iterator<Item = u32> + '_ {
        self.owned_used
            .iter()
            .chain(self.scatter_recvs.iter().flat_map(|(_, boxes)| boxes))
            .copied()
    }

    /// Boxes the payload closure may be called for on this rank: boxes it
    /// ships to other owners plus boxes it owns (whose local part enters
    /// the combine fold). Lets a caller snapshot exactly the values the
    /// exchange will read instead of holding a borrow across the plan's
    /// lifetime.
    pub fn payload_boxes(&self) -> impl Iterator<Item = u32> + '_ {
        self.gather_sends
            .iter()
            .flat_map(|(_, boxes)| boxes)
            .copied()
            .chain(self.owned.iter().map(|(b, _)| *b))
    }

    /// Post this rank's gather packets (eager — one packed send per owning
    /// peer) and return the pending plan. `payload` is called once per
    /// contributed box; `salt` keeps concurrent exchanges (points vs
    /// densities vs equivalents) in disjoint tag spaces.
    pub fn begin<'r>(
        &'r self,
        comm: &Comm,
        salt: u64,
        combine: Combine,
        payload: &mut impl FnMut(u32) -> Vec<f64>,
    ) -> ExchangePlan<'r> {
        let gtag = encode_tag(NS_GATHER, salt, 0);
        for (peer, boxes) in &self.gather_sends {
            let payloads: Vec<Vec<f64>> = boxes.iter().map(|&b| payload(b)).collect();
            let entries: Vec<(u32, &[f64])> =
                boxes.iter().zip(&payloads).map(|(&b, p)| (b, p.as_slice())).collect();
            comm.send(*peer, gtag, &encode_packet(&entries));
        }
        ExchangePlan {
            route: self,
            salt,
            combine,
            pending_gather: (0..self.gather_recvs.len()).collect(),
            parts: HashMap::new(),
            scattered: false,
            pending_scatter: (0..self.scatter_recvs.len()).collect(),
            global: HashMap::new(),
        }
    }
}

/// A coalesced gather/scatter in flight: gather packets posted, owner
/// combine/scatter and user receives outstanding. Drive with
/// [`ExchangePlan::poll`] between compute stages, or [`ExchangePlan::complete`]
/// to block until done.
pub struct ExchangePlan<'r> {
    route: &'r ExchangeRoute,
    salt: u64,
    combine: Combine,
    /// Indices into `route.gather_recvs` not yet received.
    pending_gather: Vec<usize>,
    /// Received contributor parts, keyed by `(contributor, box)`.
    parts: HashMap<(usize, u32), Vec<f64>>,
    /// Owner duties done: parts combined, scatter packets posted.
    scattered: bool,
    /// Indices into `route.scatter_recvs` not yet received.
    pending_scatter: Vec<usize>,
    /// Combined global payload per box this rank uses.
    global: HashMap<u32, Vec<f64>>,
}

impl ExchangePlan<'_> {
    /// Make all progress possible without blocking; returns true once the
    /// exchange is finished (every used box's global payload assembled).
    ///
    /// `payload` must be the same function handed to
    /// [`ExchangeRoute::begin`] — the owner's own contribution is produced
    /// locally, never sent.
    pub fn poll(&mut self, comm: &Comm, payload: &mut impl FnMut(u32) -> Vec<f64>) -> bool {
        // 1. Drain arrived gather packets.
        let gtag = encode_tag(NS_GATHER, self.salt, 0);
        let mut still = Vec::with_capacity(self.pending_gather.len());
        for &i in &self.pending_gather {
            let peer = self.route.gather_recvs[i].0;
            if let Some(bytes) = comm.try_recv(peer, gtag) {
                for (b, v) in decode_packet(&bytes) {
                    self.parts.insert((peer, b), v);
                }
            } else {
                still.push(i);
            }
        }
        self.pending_gather = still;

        // 2. All parts in: combine (ascending contributor order, identical
        //    fold to the legacy per-box path) and post scatter packets.
        if !self.scattered && self.pending_gather.is_empty() {
            let me = comm.rank();
            let mut combined: HashMap<u32, Vec<f64>> =
                HashMap::with_capacity(self.route.owned.len());
            for (b, contributors) in &self.route.owned {
                let mut acc: Option<Vec<f64>> = None;
                for &src in contributors {
                    let part = if src == me {
                        payload(*b)
                    } else {
                        self.parts
                            .remove(&(src, *b))
                            .expect("contributor's gather packet carried this box")
                    };
                    acc = Some(combine_fold(acc, part, self.combine));
                }
                combined.insert(*b, acc.expect("owner contributes, so at least one part"));
            }
            let stag = encode_tag(NS_SCATTER, self.salt, 0);
            for (peer, boxes) in &self.route.scatter_sends {
                let entries: Vec<(u32, &[f64])> =
                    boxes.iter().map(|b| (*b, combined[b].as_slice())).collect();
                comm.send(*peer, stag, &encode_packet(&entries));
            }
            for &b in &self.route.owned_used {
                let v = combined.remove(&b).expect("owned_used is a subset of owned");
                self.global.insert(b, v);
            }
            self.scattered = true;
        }

        // 3. Drain arrived scatter packets.
        let stag = encode_tag(NS_SCATTER, self.salt, 0);
        let mut still = Vec::with_capacity(self.pending_scatter.len());
        for &i in &self.pending_scatter {
            let peer = self.route.scatter_recvs[i].0;
            if let Some(bytes) = comm.try_recv(peer, stag) {
                for (b, v) in decode_packet(&bytes) {
                    self.global.insert(b, v);
                }
            } else {
                still.push(i);
            }
        }
        self.pending_scatter = still;

        self.scattered && self.pending_scatter.is_empty()
    }

    /// Append the `(source, tag)` keys of every outstanding receive — the
    /// argument for [`Comm::wait_any`] when the caller has run out of
    /// compute to overlap. Nonempty whenever [`ExchangePlan::poll`]
    /// returned false.
    pub fn pending_keys(&self, out: &mut Vec<(usize, u64)>) {
        let gtag = encode_tag(NS_GATHER, self.salt, 0);
        for &i in &self.pending_gather {
            out.push((self.route.gather_recvs[i].0, gtag));
        }
        let stag = encode_tag(NS_SCATTER, self.salt, 0);
        for &i in &self.pending_scatter {
            out.push((self.route.scatter_recvs[i].0, stag));
        }
    }

    /// Drive the exchange to completion, parking in [`Comm::wait_any`]
    /// between polls, and return the global payload of every used box.
    pub fn complete(
        mut self,
        comm: &Comm,
        mut payload: impl FnMut(u32) -> Vec<f64>,
    ) -> HashMap<u32, Vec<f64>> {
        let mut keys = Vec::new();
        while !self.poll(comm, &mut payload) {
            keys.clear();
            self.pending_keys(&mut keys);
            comm.wait_any(&keys);
        }
        self.finish()
    }

    /// Consume a finished plan (i.e. after [`ExchangePlan::poll`] returned
    /// true) and take the assembled global payloads.
    pub fn finish(self) -> HashMap<u32, Vec<f64>> {
        assert!(
            self.scattered && self.pending_gather.is_empty() && self.pending_scatter.is_empty(),
            "finish() on an exchange that is still in flight"
        );
        self.global
    }
}

/// The original per-box blocking exchange, kept as the reference
/// implementation: one gather message per (contributed box, owner) and one
/// scatter message per (owned box, user), tagged per box. Used by the
/// coalesced-vs-legacy equivalence tests; production code uses
/// [`ExchangeRoute`].
pub fn legacy_exchange(
    comm: &Comm,
    own: &Ownership,
    boxes: &[u32],
    salt: u64,
    combine: Combine,
    users: UserKind,
    mut payload: impl FnMut(u32) -> Vec<f64>,
) -> HashMap<u32, Vec<f64>> {
    let me = comm.rank();
    let is_user = |bi: usize, rank: usize| match users {
        UserKind::Source => own.is_src_user(bi, rank),
        UserKind::Equiv => own.is_equiv_user(bi, rank),
    };
    // Contributor sends (eager, so no deadlock against the owner loop).
    for &b in boxes {
        let bi = b as usize;
        if own.is_contributor(bi, me) && own.owner[bi] as usize != me {
            let tag = encode_tag(NS_GATHER, salt, b as u64);
            comm.send(own.owner[bi] as usize, tag, &encode_f64s(&payload(b)));
        }
    }
    let mut global: HashMap<u32, Vec<f64>> = HashMap::new();
    // Owner duties: gather + combine + scatter.
    for &b in boxes {
        let bi = b as usize;
        if own.owner[bi] as usize != me {
            continue;
        }
        let mut acc: Option<Vec<f64>> = None;
        for src in own.contributors(bi) {
            let part = if src == me {
                payload(b)
            } else {
                decode_f64s(&comm.recv(src, encode_tag(NS_GATHER, salt, b as u64)))
            };
            acc = Some(combine_fold(acc, part, combine));
        }
        let combined = acc.expect("owner contributes, so at least one part");
        let wire = encode_f64s(&combined);
        let user_ranks = match users {
            UserKind::Source => own.src_users(bi),
            UserKind::Equiv => own.equiv_users(bi),
        };
        for dst in user_ranks {
            if dst != me {
                comm.send(dst, encode_tag(NS_SCATTER, salt, b as u64), &wire);
            }
        }
        if is_user(bi, me) {
            global.insert(b, combined);
        }
    }
    // User duties: receive from owners.
    for &b in boxes {
        let bi = b as usize;
        let owner = own.owner[bi] as usize;
        if owner != me && is_user(bi, me) {
            let payload = decode_f64s(&comm.recv(owner, encode_tag(NS_SCATTER, salt, b as u64)));
            global.insert(b, payload);
        }
    }
    global
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global_tree::build_distributed_tree;
    use kifmm_geom::uniform_cube;
    use kifmm_mpi::run;
    use kifmm_tree::{build_lists, partition_points, MAX_LEVEL};

    fn setup(
        comm: &Comm,
        chunks: &[Vec<[f64; 3]>],
        leaf: usize,
    ) -> (crate::global_tree::DistributedTree, Ownership) {
        let dt = build_distributed_tree(comm, &chunks[comm.rank()], leaf, MAX_LEVEL);
        let lists = build_lists(&dt.tree);
        let nn = dt.tree.num_nodes();
        let own = Ownership::build(
            comm,
            |b| dt.tree.nodes[b].num_points(),
            &dt.global_counts,
            &lists,
            nn,
        );
        (dt, own)
    }

    fn chunked(all: &[[f64; 3]], ranks: usize) -> Vec<Vec<[f64; 3]>> {
        partition_points(all, ranks)
            .groups
            .iter()
            .map(|g| g.iter().map(|&i| all[i]).collect())
            .collect()
    }

    /// Ghost-point exchange: every rank ends up with the full global point
    /// list of every leaf it uses, while sending exactly one message per
    /// gather/scatter peer.
    #[test]
    fn ghost_points_reconstruct_global_leaves() {
        let all = uniform_cube(1500, 21);
        let chunks = chunked(&all, 3);
        run(3, |comm| {
            let (dt, own) = setup(comm, &chunks, 40);
            let leaves: Vec<u32> = dt
                .tree
                .leaves()
                .filter(|&b| own.has_src_users(b as usize))
                .collect();
            let mut payload = |b: u32| -> Vec<f64> {
                let nd = &dt.tree.nodes[b as usize];
                dt.sorted_points[nd.pt_start as usize..nd.pt_end as usize]
                    .iter()
                    .flat_map(|p| p.iter().copied())
                    .collect()
            };
            let route = ExchangeRoute::build(comm, &own, &leaves, UserKind::Source);
            let sent_before = comm.stats().messages_sent;
            let plan = route.begin(comm, 0, Combine::Concat, &mut payload);
            let global = plan.complete(comm, payload);
            let sent = comm.stats().messages_sent - sent_before;
            assert_eq!(
                sent as usize,
                route.messages_out(),
                "one packed message per peer, O(peers) not O(boxes)"
            );
            // Every used leaf's global list has exactly the global count.
            for &b in &leaves {
                if own.is_src_user(b as usize, comm.rank()) {
                    let pts = &global[&b];
                    assert_eq!(
                        pts.len() as u64,
                        3 * dt.global_counts[b as usize],
                        "global leaf payload size"
                    );
                }
            }
        });
    }

    /// Sum combine: partial equivalents add to the global value.
    #[test]
    fn sum_combine_adds_partials() {
        let all = uniform_cube(900, 8);
        let chunks = chunked(&all, 3);
        run(3, |comm| {
            let (dt, own) = setup(comm, &chunks, 30);
            let nn = dt.tree.num_nodes();
            let boxes: Vec<u32> =
                (0..nn as u32).filter(|&b| own.has_equiv_users(b as usize)).collect();
            // Fake partial payload: [local_count] so the global sum must be
            // the global count.
            let mut payload =
                |b: u32| -> Vec<f64> { vec![dt.tree.nodes[b as usize].num_points() as f64] };
            let route = ExchangeRoute::build(comm, &own, &boxes, UserKind::Equiv);
            let plan = route.begin(comm, 7, Combine::Sum, &mut payload);
            let global = plan.complete(comm, payload);
            for &b in &boxes {
                if own.is_equiv_user(b as usize, comm.rank()) {
                    assert_eq!(global[&b][0], dt.global_counts[b as usize] as f64);
                }
            }
        });
    }

    /// ConcatRhs keeps RHS-major segment ordering: combining `k` RHS-major
    /// parts yields, per RHS, the ascending-rank concatenation — and
    /// `ConcatRhs(1)` is bitwise `Concat`.
    #[test]
    fn concat_rhs_combine_is_rhs_major() {
        let all = uniform_cube(1100, 17);
        let chunks = chunked(&all, 3);
        run(3, |comm| {
            let (dt, own) = setup(comm, &chunks, 40);
            let leaves: Vec<u32> = dt
                .tree
                .leaves()
                .filter(|&b| own.has_src_users(b as usize))
                .collect();
            const K: usize = 3;
            // Per box: K RHS-major segments of one value each, tagged so
            // the RHS a value belongs to is recoverable.
            let mut payload = |b: u32| -> Vec<f64> {
                let n = dt.tree.nodes[b as usize].num_points() as f64;
                (0..K).map(|q| q as f64 * 1000.0 + n).collect()
            };
            let route = ExchangeRoute::build(comm, &own, &leaves, UserKind::Source);
            let plan = route.begin(comm, 3, Combine::ConcatRhs(K), &mut payload);
            let global = plan.complete(comm, payload);
            for &b in &leaves {
                if own.is_src_user(b as usize, comm.rank()) {
                    let nc = own.contributors(b as usize).len();
                    let v = &global[&b];
                    assert_eq!(v.len(), K * nc, "K equal segments");
                    for q in 0..K {
                        let seg = &v[q * nc..(q + 1) * nc];
                        let sum: f64 = seg.iter().map(|x| x - q as f64 * 1000.0).sum();
                        assert_eq!(
                            sum, dt.global_counts[b as usize] as f64,
                            "segment q holds every contributor's RHS-q value"
                        );
                    }
                }
            }
            // ConcatRhs(1) == Concat, bitwise.
            let mut pts_payload = |b: u32| -> Vec<f64> {
                vec![dt.tree.nodes[b as usize].num_points() as f64; 2]
            };
            let p1 = route
                .begin(comm, 4, Combine::Concat, &mut pts_payload)
                .complete(comm, &mut pts_payload);
            let p2 = route
                .begin(comm, 5, Combine::ConcatRhs(1), &mut pts_payload)
                .complete(comm, &mut pts_payload);
            assert_eq!(p1, p2);
        });
    }

    /// Two exchanges in flight at once (distinct salts), driven by
    /// interleaved polls — the overlap pattern the driver uses.
    #[test]
    fn interleaved_polling_of_two_exchanges() {
        let all = uniform_cube(1200, 33);
        let chunks = chunked(&all, 4);
        run(4, |comm| {
            let (dt, own) = setup(comm, &chunks, 35);
            let nn = dt.tree.num_nodes();
            let leaves: Vec<u32> = dt
                .tree
                .leaves()
                .filter(|&b| own.has_src_users(b as usize))
                .collect();
            let boxes: Vec<u32> =
                (0..nn as u32).filter(|&b| own.has_equiv_users(b as usize)).collect();
            let mut pt_payload = |b: u32| -> Vec<f64> {
                vec![dt.tree.nodes[b as usize].num_points() as f64; 2]
            };
            let mut eq_payload =
                |b: u32| -> Vec<f64> { vec![dt.tree.nodes[b as usize].num_points() as f64] };
            let r1 = ExchangeRoute::build(comm, &own, &leaves, UserKind::Source);
            let r2 = ExchangeRoute::build(comm, &own, &boxes, UserKind::Equiv);
            let mut p1 = r1.begin(comm, 1, Combine::Concat, &mut pt_payload);
            let mut p2 = r2.begin(comm, 2, Combine::Sum, &mut eq_payload);
            let (mut d1, mut d2) = (false, false);
            let mut keys = Vec::new();
            while !(d1 && d2) {
                d1 = p1.poll(comm, &mut pt_payload);
                d2 = p2.poll(comm, &mut eq_payload);
                if d1 && d2 {
                    break;
                }
                keys.clear();
                if !d1 {
                    p1.pending_keys(&mut keys);
                }
                if !d2 {
                    p2.pending_keys(&mut keys);
                }
                comm.wait_any(&keys);
            }
            let g2 = p2.finish();
            for &b in &boxes {
                if own.is_equiv_user(b as usize, comm.rank()) {
                    assert_eq!(g2[&b][0], dt.global_counts[b as usize] as f64);
                }
            }
            let g1 = p1.finish();
            for &b in &leaves {
                if own.is_src_user(b as usize, comm.rank()) {
                    // Concat: two floats per contributor, ascending order.
                    assert_eq!(g1[&b].len(), 2 * own.contributors(b as usize).len());
                }
            }
        });
    }
}
